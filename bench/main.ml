(* Experiment harness: regenerates every quantitative claim of the paper
   (see DESIGN.md section 4 for the experiment index and EXPERIMENTS.md for
   paper-vs-measured numbers).

     dune exec bench/main.exe            # run everything
     dune exec bench/main.exe -- E3 E5   # selected experiments *)

module Runtime = Base_core.Runtime
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time
module Objrepo = Base_core.Objrepo
module Service = Base_core.Service
module St = Base_core.State_transfer
module Replica = Base_bft.Replica
module Systems = Base_workload.Systems
module Fs_iface = Base_workload.Fs_iface
module Andrew = Base_workload.Andrew
module Faults = Base_workload.Faults
module C = Base_nfs.Nfs_client
open Base_nfs.Nfs_types

let section id title =
  Printf.printf "\n==========================================================\n";
  Printf.printf "%s - %s\n" id title;
  Printf.printf "==========================================================\n%!"

let nfs_of rt ~client =
  C.make (fun ~read_only ~operation -> Runtime.invoke_sync rt ~client ~read_only ~operation ())

(* --- E2: software architecture trace (Figure 2) ------------------------------- *)

let e2 () =
  section "E2" "software architecture: the path of one NFS write (Fig. 2)";
  let sys = Systems.make_basefs ~hetero:true ~n_clients:1 () in
  let rt = sys.Systems.runtime in
  let nfs = nfs_of rt ~client:0 in
  let f, _ = C.ok (C.create nfs root_oid "traced" sattr_empty) in
  (* Trace only the interesting op. *)
  let lines = ref [] in
  Engine.set_tracer (Runtime.engine rt) (fun t line ->
      lines := Printf.sprintf "  %8.6fs %s" (Sim_time.to_sec t) line :: !lines);
  ignore (C.ok (C.write nfs f ~off:0 "through the whole stack"));
  let all = List.rev !lines in
  let shown = List.filteri (fun i _ -> i < 28) all in
  List.iter print_endline shown;
  if List.length all > 28 then
    Printf.printf "  ... (%d more protocol messages)\n" (List.length all - 28);
  Printf.printf
    "\n\
     client 4 -> replicas 0-3 (REQUEST), primary orders it (PRE-PREPARE),\n\
     backups agree (PREPARE/COMMIT), each conformance wrapper drives its own\n\
     off-the-shelf file system, replicas answer (REPLY), client accepts f+1\n\
     matching replies.  Implementations per replica: %s\n"
    (String.concat ", " (Array.to_list sys.Systems.impl_of))

(* --- E3: scaled Andrew benchmark (Section 4) ----------------------------------- *)

let print_andrew (r : Andrew.result) = Format.printf "%a" Andrew.pp_result r

let e3 () =
  section "E3" "scaled Andrew benchmark: BASE-FS vs the unwrapped implementation";
  let scale = 3 in
  (* Baseline: the off-the-shelf implementation, unreplicated. *)
  let raw = Systems.make_direct ~impl:"inode" () in
  let r_raw = Andrew.run ~scale (Fs_iface.of_direct raw) in
  print_andrew r_raw;
  (* BASE-FS, heterogeneous replicas, with a message census. *)
  let sys = Systems.make_basefs ~hetero:true ~checkpoint_period:128 ~n_clients:1 () in
  let census = Base_workload.Msg_census.create () in
  Base_workload.Msg_census.install census (Runtime.engine sys.Systems.runtime);
  let r_rep = Andrew.run ~scale (Fs_iface.of_runtime ~client:0 sys.Systems.runtime) in
  print_andrew r_rep;
  Printf.printf "  protocol traffic during the run (%d messages):\n"
    (Base_workload.Msg_census.total census);
  List.iter
    (fun (label, count) -> Printf.printf "    %-14s %8d\n" label count)
    (Base_workload.Msg_census.rows census);
  let overhead = 100.0 *. ((r_rep.Andrew.total_seconds /. r_raw.Andrew.total_seconds) -. 1.0) in
  (* BASE-FS with proactive recovery: scale the window of vulnerability to
     the run as the paper scales 17 minutes to its Andrew run. *)
  let sys2 = Systems.make_basefs ~seed:2L ~hetero:true ~checkpoint_period:128 ~n_clients:1 () in
  (* Each replica recovers about once during the run; the stagger (period/n)
     comfortably exceeds the reboot time so at most one replica is down. *)
  let period_us = int_of_float (r_rep.Andrew.total_seconds *. 1e6 *. 1.5) in
  Runtime.enable_proactive_recovery ~reboot_us:30_000 ~period_us sys2.Systems.runtime;
  let r_pr = Andrew.run ~scale (Fs_iface.of_runtime ~client:0 sys2.Systems.runtime) in
  print_andrew { r_pr with Andrew.label = "base-fs+PR" };
  let overhead_pr =
    100.0 *. ((r_pr.Andrew.total_seconds /. r_raw.Andrew.total_seconds) -. 1.0)
  in
  let recoveries =
    Array.fold_left
      (fun acc node -> acc + node.Runtime.recovery_stats.Runtime.recoveries)
      0
      (Runtime.replicas sys2.Systems.runtime)
  in
  Printf.printf
    "\n\
     paper:    ~30%% overhead vs the off-the-shelf NFS it wraps (17-min window)\n\
     measured: %+.1f%% overhead (no recovery), %+.1f%% with proactive recovery\n\
    \          (%d recoveries during the run, window ~ %.1f s of a %.1f s run)\n"
    overhead overhead_pr recoveries
    (2.0 *. float_of_int period_us /. 1e6)
    r_pr.Andrew.total_seconds

let e3_ablation () =
  section "E3b" "ablation: checkpoint period k (cost of checkpointing)";
  let scale = 1 in
  Printf.printf "  %-6s %-10s %-14s %-12s\n" "k" "total(s)" "checkpoints" "cow copies";
  List.iter
    (fun k ->
      let sys = Systems.make_basefs ~hetero:true ~checkpoint_period:k ~n_clients:1 () in
      let r = Andrew.run ~scale (Fs_iface.of_runtime ~client:0 sys.Systems.runtime) in
      let cps, copies =
        Array.fold_left
          (fun (c, o) node ->
            let s = Replica.stats node.Runtime.replica in
            let cow = Objrepo.stats node.Runtime.repo in
            (c + s.Replica.checkpoints_taken, o + cow.Objrepo.objects_copied))
          (0, 0)
          (Runtime.replicas sys.Systems.runtime)
      in
      Printf.printf "  %-6d %-10.3f %-14d %-12d\n%!" k r.Andrew.total_seconds cps copies)
    [ 8; 32; 128 ];
  Printf.printf
    "  smaller k -> more checkpoints and more copy-on-write copies; elapsed\n\
    \  time is protocol-dominated, which is the paper's point: checkpointing\n\
    \  through the abstraction is cheap.\n" 

let e3_micro () =
  section "E3c" "operation-level latency: replicated vs unreplicated (protocol cost)";
  let rows = Base_workload.Micro.run () in
  Format.printf "%a" Base_workload.Micro.pp_rows rows;
  Printf.printf
    "  read-only calls answer in one round (close to raw); read-write calls\n\
    \  pay the three-phase agreement - the asymmetry the BFT library reports.\n"

(* --- E11: request batching under concurrent load --------------------------------- *)

let e11 () =
  section "E11" "request batching: throughput with 16 concurrent clients";
  Printf.printf "  %-22s %10s %12s %12s %12s %10s\n" "config" "ops" "instances" "avg-batch"
    "msgs" "msgs/op";
  let run label ~batch_max ~max_inflight =
    let sys =
      Systems.make_basefs ~seed:8L ~hetero:true ~checkpoint_period:128 ~n_clients:16
        ~batch_max ~max_inflight ()
    in
    let rt = sys.Systems.runtime in
    let engine = Runtime.engine rt in
    (* One private file per client, created synchronously. *)
    let files =
      List.init 16 (fun c ->
          let nfs = nfs_of rt ~client:c in
          let fh, _ = C.ok (C.create nfs root_oid (Printf.sprintf "cl%d" c) sattr_empty) in
          fh)
    in
    let msgs0 = (Engine.total_counters engine).Engine.sent_msgs in
    let completed = ref 0 in
    let payload = String.make 128 'b' in
    let rec issue c fh =
      Runtime.invoke rt ~client:c
        ~operation:(Base_nfs.Nfs_proto.encode_call (Base_nfs.Nfs_proto.Write (fh, 0, payload)))
        (fun _ ->
          incr completed;
          issue c fh)
    in
    List.iteri issue files;
    let stop = Sim_time.add (Runtime.now rt) (Sim_time.of_sec 1.0) in
    Engine.run ~until:stop engine;
    let instances, requests =
      Array.fold_left
        (fun (i, r) node ->
          let st = Replica.stats node.Runtime.replica in
          (max i st.Replica.executed, max r st.Replica.executed_requests))
        (0, 0) (Runtime.replicas rt)
    in
    let msgs = (Engine.total_counters engine).Engine.sent_msgs - msgs0 in
    Printf.printf "  %-22s %10d %12d %12.2f %12d %10.1f\n%!" label !completed instances
      (float_of_int requests /. float_of_int (max 1 instances))
      msgs
      (float_of_int msgs /. float_of_int (max 1 !completed))
  in
  run "unbatched (b=1,w=1)" ~batch_max:1 ~max_inflight:1;
  run "pipelined (b=1,w=8)" ~batch_max:1 ~max_inflight:8;
  run "batched (b=16,w=2)" ~batch_max:16 ~max_inflight:2;
  Printf.printf
    "  batching amortises agreement: fewer consensus instances and fewer\n\
    \  protocol messages per completed request at the same offered load.\n"

(* --- E4: code-size argument ---------------------------------------------------- *)

let e4 () =
  section "E4" "code size: conformance wrapper + state conversions vs everything else";
  let count = Base_util.Loc_count.count_dir in
  if not (Sys.file_exists "lib") then
    print_endline "  (run from the repository root to measure sources)"
  else begin
    let wrapper = count "lib/wrapper" in
    let whole = count "lib" in
    let substrate =
      List.fold_left
        (fun acc d -> Base_util.Loc_count.add acc (count d))
        Base_util.Loc_count.zero
        [ "lib/bft"; "lib/base_core"; "lib/sim"; "lib/crypto"; "lib/codec" ]
    in
    let p fmt = Printf.printf fmt in
    p "  %-44s %8s %8s %8s\n" "component" "files" "lines" "semis";
    let row name (c : Base_util.Loc_count.counts) =
      p "  %-44s %8d %8d %8d\n" name c.Base_util.Loc_count.files c.Base_util.Loc_count.lines
        c.Base_util.Loc_count.semicolons
    in
    row "wrapper + state conversions (lib/wrapper)" wrapper;
    row "replication substrate (bft+core+sim+crypto)" substrate;
    row "all libraries (lib/)" whole;
    p "\n";
    p "  paper:    wrapper + conversions = 1105 semicolons, two orders of\n";
    p "            magnitude less than the Linux 2.2 kernel (~1.7M lines)\n";
    p "  measured: wrapper = %d lines (%d semicolons), %.1fx smaller than the\n"
      wrapper.Base_util.Loc_count.lines wrapper.Base_util.Loc_count.semicolons
      (float_of_int whole.Base_util.Loc_count.lines
      /. float_of_int wrapper.Base_util.Loc_count.lines);
    p "            rest of this system, ~%.0fx smaller than Linux 2.2\n"
      (1_700_000.0 /. float_of_int wrapper.Base_util.Loc_count.lines)
  end

(* --- E5: proactive recovery & availability ------------------------------------- *)

let e5 () =
  section "E5" "availability during staggered proactive recovery";
  let duration_s = 16.0 and window_s = 1.0 in
  let _, base = Faults.throughput_trace ~duration_s ~window_s ~recovery:None () in
  let sys, recovered =
    Faults.throughput_trace ~duration_s ~window_s ~recovery:(Some (4_000_000, 100_000)) ()
  in
  Printf.printf "  window(s)   no-recovery ops   with-recovery ops\n";
  List.iter2
    (fun (a : Faults.window) (b : Faults.window) ->
      Printf.printf "  %8.1f   %15d   %17d\n" a.Faults.w_start_s a.Faults.w_ops b.Faults.w_ops)
    base recovered;
  let tot ws = List.fold_left (fun acc (w : Faults.window) -> acc + w.Faults.w_ops) 0 ws in
  let min_w ws =
    List.fold_left
      (fun acc (w : Faults.window) -> min acc w.Faults.w_ops)
      max_int
      (List.filteri (fun i _ -> i > 0 && i < 15) ws)
  in
  Printf.printf "\n  totals: %d ops without recovery, %d with (%.1f%% throughput cost)\n"
    (tot base) (tot recovered)
    (100.0 *. (1.0 -. (float_of_int (tot recovered) /. float_of_int (tot base))));
  Printf.printf "  worst window with recovery: %d ops (service never unavailable)\n"
    (min_w recovered);
  let replicas = Runtime.replicas sys.Systems.runtime in
  let total_objs = Objrepo.n_objects (Array.get replicas 0).Runtime.repo in
  Printf.printf "\n  per-replica recovery cost (hierarchical state transfer):\n";
  Array.iter
    (fun node ->
      let rs = node.Runtime.recovery_stats in
      Printf.printf
        "    replica %d: %d recoveries, %d objects fetched in total (of %d slots)\n"
        node.Runtime.rid rs.Runtime.recoveries rs.Runtime.total_objects_fetched total_objs)
    replicas;
  Printf.printf
    "  paper: recoveries are staggered so the service stays available and a\n\
    \  recovering replica fetches only out-of-date objects - both visible above.\n"

(* --- E6: opportunistic N-version programming ------------------------------------ *)

let e6 () =
  section "E6" "deterministic software bug: heterogeneous vs homogeneous replicas";
  let report (o : Faults.poison_outcome) =
    Printf.printf "  %-36s buggy=%d  correct-read=%b  divergent=%d\n" o.Faults.configuration
      o.Faults.buggy_replicas o.Faults.read_back_correct o.Faults.divergent
  in
  report (Faults.poison_experiment ~hetero:true ());
  report (Faults.poison_experiment ~hetero:false ());
  Printf.printf
    "\n\
     paper: running distinct off-the-shelf implementations reduces the\n\
     probability of common-mode failures - with 4 distinct implementations\n\
     the bug is outvoted; with 4 identical ones it corrupts the data on\n\
     every replica and the wrong result is served with a full quorum.\n"

(* --- E7: checkpointing & hierarchical state-transfer costs ---------------------- *)

let synthetic_repo ~n_objects ~obj_bytes ~seed =
  let prng = Base_util.Prng.create seed in
  let store =
    Array.init n_objects (fun _ -> Bytes.to_string (Base_util.Prng.bytes prng obj_bytes))
  in
  let wrapper =
    {
      Service.name = "synthetic";
      n_objects;
      execute = (fun ~client:_ ~operation:_ ~nondet:_ ~read_only:_ ~modify:_ -> "");
      get_obj = (fun i -> store.(i));
      put_objs = (fun objs -> List.iter (fun (i, v) -> store.(i) <- v) objs);
      restart = (fun () -> ());
      propose_nondet = (fun ~clock_us:_ ~operation:_ -> "");
      check_nondet = (fun ~clock_us:_ ~operation:_ ~nondet:_ -> true);
      oids_of_op = Service.no_footprint;
    }
  in
  (store, Objrepo.create ~wrapper ~branching:16 ())

(* Drive a fetch to completion over a direct in-process "network" with a
   single source replica. *)
let run_transfer ~src ~dst ~target_seq ~target_digest =
  let q = Queue.create () in
  let completed = ref false in
  let fetcher =
    St.start ~repo:dst ~sources:[ 0 ] ~target_seq ~target_digest
      ~send:(fun ~dst:_ m -> Queue.add m q)
      ~on_complete:(fun ~seq:_ ~app_root:_ ~client_rows:_ -> completed := true)
      ()
  in
  while not (Queue.is_empty q) do
    let m = Queue.pop q in
    match St.serve src m with
    | Some reply -> St.handle_reply fetcher ~from:0 reply
    | None -> ()
  done;
  assert !completed;
  St.stats fetcher

let e7_transfer_sweep () =
  section "E7" "hierarchical state transfer: bytes fetched vs fraction of dirty objects";
  let n_objects = 1024 and obj_bytes = 1024 in
  let full_bytes = n_objects * obj_bytes in
  Printf.printf "  %-10s %-12s %-14s %-12s %-10s\n" "dirty%" "objs-fetched" "bytes-fetched"
    "meta-msgs" "vs-full";
  List.iter
    (fun pct ->
      let store_src, src = synthetic_repo ~n_objects ~obj_bytes ~seed:1L in
      let _store_dst, dst = synthetic_repo ~n_objects ~obj_bytes ~seed:1L in
      (* Same seed: identical states.  Dirty pct% of the source's objects. *)
      let prng = Base_util.Prng.create 42L in
      let dirty = max 1 (n_objects * pct / 100) in
      let order = Array.init n_objects Fun.id in
      Base_util.Prng.shuffle prng order;
      for k = 0 to dirty - 1 do
        let i = order.(k) in
        Objrepo.modify src i;
        store_src.(i) <- Bytes.to_string (Base_util.Prng.bytes prng obj_bytes)
      done;
      let root = Objrepo.take_checkpoint src ~seq:1 ~client_rows:[] in
      let target = St.combined_digest ~app_root:root ~client_rows:[] in
      let stats = run_transfer ~src ~dst ~target_seq:1 ~target_digest:target in
      Printf.printf "  %-10d %-12d %-14d %-12d %8.1f%%\n%!" pct stats.St.objects_fetched
        stats.St.bytes_fetched stats.St.meta_fetched
        (100.0 *. float_of_int stats.St.bytes_fetched /. float_of_int full_bytes))
    [ 1; 5; 10; 25; 50; 100 ];
  Printf.printf
    "  paper: a replica recurses down the partition hierarchy and fetches only\n\
    \  the objects that are out of date - cost tracks the dirty fraction.\n"

let e7_micro () =
  section "E7b" "micro-benchmarks (bechamel): crypto and checkpointing machinery";
  let open Bechamel in
  let data4k = String.make 4096 'x' in
  let store, repo = synthetic_repo ~n_objects:1024 ~obj_bytes:1024 ~seed:9L in
  let seq = ref 1 in
  let prng = Base_util.Prng.create 5L in
  let t_sha =
    Test.make ~name:"sha256-4KB" (Staged.stage (fun () -> Base_crypto.Sha256.digest data4k))
  in
  let t_hmac =
    let key = String.make 32 'k' in
    let msg = String.make 256 'm' in
    Test.make ~name:"hmac-seal-256B" (Staged.stage (fun () -> Base_crypto.Hmac.mac ~key msg))
  in
  let t_cow =
    Test.make ~name:"checkpoint-cow-1%dirty"
      (Staged.stage (fun () ->
           for _ = 1 to 10 do
             let i = Base_util.Prng.int prng 1024 in
             Objrepo.modify repo i;
             store.(i) <- Bytes.to_string (Base_util.Prng.bytes prng 1024)
           done;
           incr seq;
           ignore (Objrepo.take_checkpoint repo ~seq:!seq ~client_rows:[]);
           Objrepo.discard_below repo !seq))
  in
  let t_full =
    Test.make ~name:"checkpoint-full-copy"
      (Staged.stage (fun () ->
           (* The naive alternative: copy and hash the whole abstract state. *)
           ignore (Array.map (fun (s : string) -> String.sub s 0 (String.length s)) store);
           ignore (Base_crypto.Sha256.digest_list (Array.to_list store))))
  in
  let tests = Test.make_grouped ~name:"micro" [ t_sha; t_hmac; t_cow; t_full ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> Printf.printf "  %-30s %12.0f ns/op\n" name est
      | Some [] | None -> Printf.printf "  %-30s (no estimate)\n" name)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  Printf.printf
    "  copy-on-write checkpoints cost a small multiple of the dirty set;\n\
    \  the full-copy alternative pays for the whole state every time.\n"

(* --- E8: agreement on non-deterministic timestamps ------------------------------ *)

let e8 () =
  section "E8" "non-determinism: divergent replica clocks, agreed timestamps";
  let sys = Systems.make_basefs ~hetero:true ~n_clients:1 () in
  let rt = sys.Systems.runtime in
  let nfs = nfs_of rt ~client:0 in
  let f, _ = C.ok (C.create nfs root_oid "stamped" sattr_empty) in
  ignore (C.ok (C.write nfs f ~off:0 "tick"));
  let a = C.ok (C.getattr nfs f) in
  Printf.printf "  virtual time now        : %.6f s\n" (Sim_time.to_sec (Runtime.now rt));
  Printf.printf "  replica local clocks    :";
  Array.iter
    (fun node ->
      Printf.printf " %.6f"
        (Int64.to_float (Engine.local_clock (Runtime.engine rt) node.Runtime.rid) /. 1e6))
    (Runtime.replicas rt);
  Printf.printf " s (skewed, drifting)\n";
  Printf.printf "  agreed mtime of the file: %.6f s - identical at every replica\n"
    (Int64.to_float a.mtime /. 1e6);
  Printf.printf "  abstract-state divergence across replicas: %d\n"
    (Faults.divergent_replicas sys);
  Printf.printf
    "  paper: time-last-modified comes from the agreement protocol, not the\n\
    \  server clocks, so replica states cannot diverge through timestamps.\n"

(* --- E9: fault injection (corruption + repair) ----------------------------------- *)

let e9 () =
  section "E9" "fault injection: silent state corruption, masking and repair";
  Printf.printf "  %-18s %-10s %-14s %-12s %-16s\n" "corrupt-replicas" "damaged"
    "reads-correct" "objs-fetched" "divergent-after";
  List.iter
    (fun k ->
      let o = Faults.corruption_experiment ~corrupt_replicas:k ~objects_per_replica:4 () in
      Printf.printf "  %-18d %-10d %-14b %-12d %-16d\n%!" o.Faults.corrupt_replicas
        o.Faults.objects_damaged o.Faults.reads_correct_before_repair
        o.Faults.objects_repaired o.Faults.divergent_after_repair)
    [ 1; 2 ];
  Printf.printf
    "\n\
     paper (the fault-injection study it calls for): corrupt concrete states\n\
     are hidden by the abstraction, faulty replicas are outvoted, and\n\
     proactive recovery restores every replica to the group's abstract state.\n"

(* --- E10: the non-deterministic OODB ---------------------------------------------- *)

let e10 () =
  section "E10" "object database: same non-deterministic implementation at every replica";
  let open Base_oodb.Oodb_proto in
  let config =
    Base_bft.Types.make_config ~checkpoint_period:16 ~log_window:32 ~f:1 ~n_clients:1 ()
  in
  let engine_cell = ref None in
  let make_wrapper rid =
    let now () = match !engine_cell with Some e -> Engine.local_clock e rid | None -> 0L in
    Base_oodb.Oodb_wrapper.make ~seed:(Int64.of_int (7000 + rid)) ~now ~n_objects:128 ()
  in
  let sys = Runtime.create ~config ~make_wrapper ~n_clients:1 () in
  engine_cell := Some (Runtime.engine sys);
  let call c =
    decode_reply
      (Runtime.invoke_sync sys ~client:0 ~read_only:(read_only_call c)
         ~operation:(encode_call c) ())
  in
  let objs = List.init 20 (fun _ -> match call New with R_oid o -> o | _ -> failwith "new") in
  List.iteri (fun i o -> ignore (call (Set_field (o, "n", string_of_int i)))) objs;
  List.iteri
    (fun i o -> if i > 0 then ignore (call (Set_ref (List.nth objs (i - 1), "next", o))))
    objs;
  Runtime.enable_proactive_recovery ~reboot_us:50_000 ~period_us:1_000_000 sys;
  for i = 0 to 19 do
    ignore (call (Set_field (List.nth objs (i mod 20), "touched", string_of_int i)));
    Engine.advance_to (Runtime.engine sys)
      (Sim_time.add (Runtime.now sys) (Sim_time.of_ms 150))
  done;
  (* Let the last recovery's repair land before inspecting the group. *)
  Engine.run
    ~until:(Sim_time.add (Runtime.now sys) (Sim_time.of_sec 3.0))
    (Runtime.engine sys);
  let count = match call Count with R_count n -> n | _ -> -1 in
  let divergent =
    let roots =
      Array.map (fun node -> Objrepo.current_root node.Runtime.repo) (Runtime.replicas sys)
    in
    let tbl = Hashtbl.create 4 in
    Array.iter
      (fun r ->
        let k = Base_crypto.Digest_t.raw r in
        Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0))
      roots;
    let tallies =
      Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    Array.length roots - List.fold_left (fun acc (_, c) -> max c acc) 0 tallies
  in
  let recoveries =
    Array.fold_left
      (fun acc node -> acc + node.Runtime.recovery_stats.Runtime.recoveries)
      0 (Runtime.replicas sys)
  in
  Printf.printf "  objects stored: %d (plus root)\n" count;
  Printf.printf "  proactive recoveries completed: %d\n" recoveries;
  Printf.printf "  replicas diverging from majority abstract state: %d\n" divergent;
  Printf.printf
    "  paper (abstract): an OODB whose replicas run the same non-deterministic\n\
    \  implementation - random internal oids, local clocks - masked by BASE.\n"

(* --- E12/E13: blessed observability exports ---------------------------------------- *)

(* The regression artifact CI gates on.  Each contributing experiment
   registers its deterministic report here; the driver writes the file only
   when every section ran, so a partial run can never bless a partial
   file. *)
let blessed : (string * Base_obs.Json.t) list ref = ref []

let bless id report = blessed := (id, report) :: !blessed

let write_blessed () =
  let have id = List.mem_assoc id !blessed in
  if have "e12" && have "e13" && have "e14" && have "e15" && have "e16" && have "e17"
     && have "e18"
  then begin
    let json = Base_obs.Json.to_string_pretty (Base_obs.Json.obj !blessed) ^ "\n" in
    let path = "BENCH_metrics.json" in
    let oc = open_out path in
    output_string oc json;
    close_out oc;
    Printf.printf "\nwrote %s (%d bytes, sections: %s)\n" path (String.length json)
      (String.concat " " (List.sort String.compare (List.map fst !blessed)))
  end

(* One loaded run with proactive recovery on, exporting the full
   observability report.  Everything in the JSON is a function of the seed
   (virtual clock, sorted keys, canonical floats), so the file is the
   regression artifact CI diffs across two consecutive runs. *)
let e12_run ?profile seed =
  (* checkpoint_period 16 so a ~50-instance run crosses several checkpoint
     boundaries: the cadence histogram fills, CHECKPOINT traffic shows up in
     the label table, and recoveries have certified targets to fetch. *)
  let sys =
    Systems.make_basefs ~seed ~hetero:true ~checkpoint_period:16 ~n_clients:1 ?profile ()
  in
  let rt = sys.Systems.runtime in
  Runtime.enable_proactive_recovery ~reboot_us:100_000 ~period_us:2_000_000 rt;
  let nfs = nfs_of rt ~client:0 in
  let f, _ = C.ok (C.create nfs root_oid "obs" sattr_empty) in
  for i = 1 to 50 do
    ignore (C.ok (C.write nfs f ~off:(i * 16) (String.make 64 'o')))
  done;
  (* Let every replica complete at least one recovery round. *)
  Engine.run
    ~until:(Sim_time.add (Runtime.now rt) (Sim_time.of_sec 9.0))
    (Runtime.engine rt);
  rt

let e12 () =
  section "E12" "observability: phase metrics, traffic breakdown, recovery timelines";
  let seed = 11L in
  let rt = e12_run seed in
  let report = Runtime.metrics_report rt in
  Format.printf "%a" Base_obs.Metrics.pp (Runtime.metrics rt);
  Printf.printf "\n  traffic by message type:\n";
  Printf.printf "  %-14s %10s %14s %10s %8s\n" "label" "sent" "sent-bytes" "recv" "drop";
  List.iter
    (fun (label, c) ->
      Printf.printf "  %-14s %10d %14d %10d %8d\n" label c.Engine.sent_msgs c.Engine.sent_bytes
        c.Engine.recv_msgs c.Engine.dropped_msgs)
    (Engine.label_counters (Runtime.engine rt));
  let timelines = Runtime.recovery_timelines rt in
  let fetch_ms =
    List.filter_map
      (fun tl ->
        match (Runtime.timeline_handoff_us tl, Runtime.timeline_window_us tl) with
        | Some handoff, Some window -> Some (float_of_int (window - handoff) /. 1e3)
        | _ -> None)
      timelines
  in
  let s = Base_util.Stats.summarize fetch_ms in
  Printf.printf "\n  recoveries: %d episodes; fetch phase (ms) %s\n" (List.length timelines)
    (Format.asprintf "%a" Base_util.Stats.pp_summary s);
  (* Self-check the property CI gates on: a same-seed re-run exports the
     same bytes. *)
  let json = Base_obs.Json.to_string_pretty report in
  let json2 = Base_obs.Json.to_string_pretty (Runtime.metrics_report (e12_run seed)) in
  Printf.printf "  same-seed re-run: %s\n"
    (if String.equal json json2 then "byte-identical" else "MISMATCH");
  bless "e12" report

(* --- E13: chaos sweep -------------------------------------------------------------- *)

let e13_run seed =
  let sys, o = Faults.chaos_experiment ~seed () in
  (Runtime.metrics_report sys.Systems.runtime, o)

let e13 () =
  section "E13" "chaos sweep: scheduled faults and a Byzantine primary under load";
  let seed = 21L in
  let report, o = e13_run seed in
  Printf.printf "  fault plan (canonical form):\n";
  String.split_on_char '\n' (Base_sim.Faultplan.to_string o.Faults.ch_plan)
  |> List.iter (fun l -> if not (String.equal l "") then Printf.printf "    %s\n" l);
  Printf.printf "\n  writes: %d attempted, %d completed, %d liveness stalls\n" o.Faults.ch_ops
    o.Faults.ch_completed o.Faults.ch_stalls;
  Printf.printf "  reads : %d checked, %d linearizability violations\n" o.Faults.ch_read_checks
    o.Faults.ch_read_errors;
  Printf.printf "  view changes completed: %d (latencies in bft.view_change_us)\n"
    o.Faults.ch_view_changes;
  Printf.printf "  equivocation detected : %d conflicting-digest observations\n"
    o.Faults.ch_equivocations;
  Printf.printf "  adversary             : %d pre-prepares muted, %d messages corrupted\n"
    o.Faults.ch_pp_muted o.Faults.ch_corrupted;
  Printf.printf "  divergent replicas after settling: %d\n" o.Faults.ch_divergent;
  (* The acceptance criteria: the group survives every scheduled window plus
     the misbehaving primary without losing liveness or linearizability, and
     the missing view-change path actually ran. *)
  assert (o.Faults.ch_stalls = 0 && o.Faults.ch_completed = o.Faults.ch_ops);
  assert (o.Faults.ch_read_errors = 0);
  assert (o.Faults.ch_view_changes > 0);
  assert (o.Faults.ch_equivocations > 0);
  Printf.printf "  liveness and read linearizability held throughout the storm\n";
  (* Same-seed determinism, the property CI's double run gates on. *)
  let report2, _ = e13_run seed in
  Printf.printf "  same-seed re-run: %s\n"
    (if
       String.equal
         (Base_obs.Json.to_string_pretty report)
         (Base_obs.Json.to_string_pretty report2)
     then "byte-identical"
     else "MISMATCH");
  bless "e13" report

(* --- E14: recovery under load with the pipelined state transfer --------------------- *)

(* One seeded recovery-under-load episode.  A client lays down a few dozen
   files and, after a checkpoint boundary, overwrites most of them — so the
   recovering replica's state has moved past the last certified checkpoint
   and those objects must roll back to it.  Replica 1 then goes through
   proactive recovery while a second client keeps writing in the
   background; the episode ends when the recovery fetch completes.
   [st_window = 1] degenerates the fetcher to the old serial
   one-request-at-a-time behaviour — the control the pipelined run is
   compared against.  The deliberately small leaf cache means only the most
   recently rolled-back objects hit it; the rest are fetched over the
   network, striped across the three live sources. *)
let e14_files = 32

let e14_run ~st_window seed =
  let sys =
    Systems.make_basefs ~seed ~hetero:true ~checkpoint_period:64 ~n_clients:2 ~st_window
      ~st_cache_objs:8 ()
  in
  let rt = sys.Systems.runtime in
  let engine = Runtime.engine rt in
  let nfs = nfs_of rt ~client:0 in
  (* Phase 1 (~65 requests, crossing the k=64 checkpoint boundary): create
     the working set — each file holds ~6 KB, larger than one 4 KB chunk. *)
  let files =
    List.init e14_files (fun i ->
        let fh, _ = C.ok (C.create nfs root_oid (Printf.sprintf "f%02d" i) sattr_empty) in
        ignore (C.ok (C.write nfs fh ~off:0 (String.make 6000 'a')));
        fh)
  in
  (* Phase 2: overwrite most files past the certified checkpoint.  The
     modify upcall records each file's checkpointed value in the leaf
     cache as it is first dirtied. *)
  List.iteri
    (fun i fh ->
      if i < 24 then ignore (C.ok (C.write nfs fh ~off:2048 (String.make 300 'z'))))
    files;
  (* Phase 3: background load for the whole recovery — client 1 keeps
     dirtying its own files so the fetch happens on a moving, loaded
     system. *)
  let nfs1 = nfs_of rt ~client:1 in
  let g, _ = C.ok (C.create nfs1 root_oid "bg" sattr_empty) in
  let stop_load = ref false in
  let tick = ref 0 in
  let rec issue () =
    if not !stop_load then begin
      incr tick;
      Runtime.invoke rt ~client:1
        ~operation:
          (Base_nfs.Nfs_proto.encode_call
             (Base_nfs.Nfs_proto.Write (g, !tick mod 8 * 700, String.make 256 'b')))
        (fun _ -> issue ())
    end
  in
  issue ();
  (* A short reboot: the group executes only a handful of requests while
     the replica is down, so the certified checkpoint it targets is still
     held by the sources when the fetch starts. *)
  Runtime.recover_now ~reboot_us:5_000 rt 1;
  let fetched () =
    List.exists
      (fun tl -> tl.Runtime.tl_rid = 1 && Runtime.timeline_window_us tl <> None)
      (Runtime.recovery_timelines rt)
  in
  let events = ref 0 in
  while (not (fetched ())) && !events < 3_000_000 && Engine.step engine do
    incr events
  done;
  assert (fetched ());
  stop_load := true;
  Runtime.run_until_idle rt;
  rt

let e14_rebuild_us rt =
  List.find_map
    (fun tl ->
      if tl.Runtime.tl_rid <> 1 then None
      else
        match (Runtime.timeline_handoff_us tl, Runtime.timeline_window_us tl) with
        | Some handoff, Some window -> Some (window - handoff)
        | _ -> None)
    (Runtime.recovery_timelines rt)
  |> Option.get

let e14_report rt =
  let open Base_obs.Json in
  let m = Runtime.metrics rt in
  let cnt name = Base_obs.Metrics.counter_value (Base_obs.Metrics.counter m name) in
  let st = Runtime.st_totals rt in
  let sources = List.filter (fun r -> r <> 1) (Base_bft.Types.replica_ids (Runtime.config rt)) in
  obj
    [
      ("bytes_fetched", Int st.St.bytes_fetched);
      ("cache_hits", Int st.St.cache_hits);
      ("chunks_fetched", Int st.St.chunks_fetched);
      ("meta_fetched", Int st.St.meta_fetched);
      ("objects_fetched", Int st.St.objects_fetched);
      ( "peak_inflight",
        Int
          (int_of_float
             (Base_obs.Metrics.gauge_value (Base_obs.Metrics.gauge m "base.st.inflight"))) );
      ("quarantines", Int st.St.quarantines);
      ("rebuild_us", Int (e14_rebuild_us rt));
      ( "source_bytes",
        obj
          (List.map
             (fun rid ->
               (string_of_int rid, Int (cnt (Printf.sprintf "base.st.source_bytes.%d" rid))))
             sources) );
    ]

let e14 () =
  section "E14" "recovery under load: windowed load-spread fetch vs serial control";
  let seed = 31L in
  let rt = e14_run ~st_window:8 seed in
  let rt1 = e14_run ~st_window:1 seed in
  let report = e14_report rt in
  let report1 = e14_report rt1 in
  let show label rt =
    let st = Runtime.st_totals rt in
    let m = Runtime.metrics rt in
    let cnt name = Base_obs.Metrics.counter_value (Base_obs.Metrics.counter m name) in
    Printf.printf
      "  %-18s rebuild %7.1f ms  objs %4d  bytes %7d  cache-hits %3d  inflight-peak %2.0f\n"
      label
      (float_of_int (e14_rebuild_us rt) /. 1e3)
      st.St.objects_fetched st.St.bytes_fetched st.St.cache_hits
      (Base_obs.Metrics.gauge_value (Base_obs.Metrics.gauge m "base.st.inflight"));
    Printf.printf "  %-18s bytes per source:" "";
    List.iter
      (fun rid ->
        Printf.printf " r%d=%d" rid (cnt (Printf.sprintf "base.st.source_bytes.%d" rid)))
      (List.filter (fun r -> r <> 1) (Base_bft.Types.replica_ids (Runtime.config rt)));
    Printf.printf "\n"
  in
  show "pipelined (w=8)" rt;
  show "serial (w=1)" rt1;
  let fast = e14_rebuild_us rt and slow = e14_rebuild_us rt1 in
  Printf.printf "\n  rebuild speedup vs serial control: %.2fx\n"
    (float_of_int slow /. float_of_int fast);
  (* The acceptance criteria: the pipeline spreads load over several
     sources, reuses cached leaves, and beats the serial fetcher. *)
  let st = Runtime.st_totals rt in
  assert (st.St.cache_hits > 0);
  let m = Runtime.metrics rt in
  let busy_sources =
    List.filter
      (fun rid ->
        rid <> 1
        && Base_obs.Metrics.counter_value
             (Base_obs.Metrics.counter m (Printf.sprintf "base.st.source_bytes.%d" rid))
           > 0)
      (Base_bft.Types.replica_ids (Runtime.config rt))
  in
  assert (List.length busy_sources >= 2);
  assert (fast < slow);
  bless "e14" (Base_obs.Json.obj [ ("pipelined", report); ("window1", report1) ])

(* --- E15: open-loop saturation: offered load vs delivered throughput ---------------- *)

(* The saturation experiment the closed-loop E11 cannot run: a Poisson
   open-loop injector (Base_workload.Load) offers a configured load to the
   stamp-free registers service, independent of completions, and we read off
   where delivered throughput stops tracking offered load.  Pipelining is
   disabled (max_inflight = 1) so the ceiling is the sequential consensus
   instance rate and batching is the only amortisation under test: batch_max
   = 64 must lift the saturation ceiling well past the unbatched one.  The
   workload is 1/4 writes, 3/4 reads; with the read-only fast path on, the
   reads answer tentatively in one round and skip consensus entirely. *)
module Load = Base_workload.Load

let e15_rates = [ 1_000.0; 2_000.0; 4_000.0; 8_000.0; 16_000.0; 32_000.0 ]

let e15_duration_us = 500_000

let e15_pool = 256

type e15_point = {
  pt_rate : float;
  pt_tput : float;  (* completed-req/s over the injection window *)
  pt_occupancy : float;  (* mean requests per consensus instance *)
  pt_p50_us : float;
  pt_p99_us : float;
  pt_completed : int;
  pt_shed : int;
}

let e15_run ~batch_max ~ro ~rate =
  let sys =
    Systems.make_registers ~seed:51L ~n_clients:e15_pool ~n_objects:256
      ~checkpoint_period:128 ~batch_max ~max_inflight:1 ()
  in
  let rt = sys.Systems.reg_runtime in
  let load =
    Load.create ~seed:17L ~arrivals:Load.Poisson ~max_backlog:2_000
      ~operation:(fun i ->
        if i land 3 = 0 then Printf.sprintf "set:%d:v%d" (i * 5 mod 256) i
        else Printf.sprintf "get:%d" (i * 7 mod 256))
      ~read_only:(fun i -> ro && i land 3 <> 0)
      ~rate_per_s:rate ~duration_us:e15_duration_us rt
  in
  (match Load.run load with
  | Ok () -> ()
  | Error e -> failwith ("E15: " ^ e));
  let s = Load.stats load in
  let instances, requests =
    Array.fold_left
      (fun (i, r) node ->
        let st = Replica.stats node.Runtime.replica in
        (max i st.Replica.executed, max r st.Replica.executed_requests))
      (0, 0) (Runtime.replicas rt)
  in
  {
    pt_rate = rate;
    pt_tput = Load.throughput_per_s load;
    pt_occupancy = float_of_int requests /. float_of_int (max 1 instances);
    pt_p50_us = Base_obs.Metrics.quantile s.Load.latency_us 0.5;
    pt_p99_us = Base_obs.Metrics.quantile s.Load.latency_us 0.99;
    pt_completed = s.Load.completed;
    pt_shed = s.Load.shed;
  }

let e15_point_json p =
  let open Base_obs.Json in
  obj
    [
      ("completed", Int p.pt_completed);
      ("occupancy", Float p.pt_occupancy);
      ("offered_per_s", Float p.pt_rate);
      ("p50_us", Float p.pt_p50_us);
      ("p99_us", Float p.pt_p99_us);
      ("shed", Int p.pt_shed);
      ("throughput_per_s", Float p.pt_tput);
    ]

let e15 () =
  section "E15" "open-loop saturation: throughput vs offered load, by batch size";
  let total_completed = ref 0 in
  let sweep ~batch_max ~ro =
    Printf.printf "\n  batch_max=%-3d read-only fast path %s\n" batch_max
      (if ro then "ON " else "off");
    Printf.printf "  %12s %14s %10s %12s %12s %8s\n" "offered/s" "completed/s" "avg-batch"
      "p50(us)" "p99(us)" "shed";
    let points =
      List.map
        (fun rate ->
          let p = e15_run ~batch_max ~ro ~rate in
          total_completed := !total_completed + p.pt_completed;
          Printf.printf "  %12.0f %14.1f %10.2f %12.0f %12.0f %8d\n%!" p.pt_rate p.pt_tput
            p.pt_occupancy p.pt_p50_us p.pt_p99_us p.pt_shed;
          p)
        e15_rates
    in
    points
  in
  let saturation points = List.fold_left (fun m p -> Float.max m p.pt_tput) 0.0 points in
  let sections = ref [] in
  let grid =
    List.map
      (fun batch_max ->
        let ordered = sweep ~batch_max ~ro:false in
        let fast = sweep ~batch_max ~ro:true in
        sections :=
          (Printf.sprintf "batch%d_ro" batch_max, Base_obs.Json.List (List.map e15_point_json fast))
          :: (Printf.sprintf "batch%d" batch_max, Base_obs.Json.List (List.map e15_point_json ordered))
          :: !sections;
        (batch_max, saturation ordered))
      [ 1; 16; 64 ]
  in
  let sat b = List.assoc b grid in
  Printf.printf "\n  saturation (ordered ops): b=1 %.0f/s, b=16 %.0f/s, b=64 %.0f/s\n" (sat 1)
    (sat 16) (sat 64);
  Printf.printf "  total requests completed across the sweep: %d\n" !total_completed;
  (* Acceptance criteria: the sweep is big enough to mean something, and
     batching actually lifts the saturation ceiling. *)
  assert (!total_completed >= 100_000);
  assert (sat 64 >= 3.0 *. sat 1);
  Printf.printf
    "  batching amortises the per-instance agreement cost: the saturation\n\
    \  ceiling scales with batch size while pre-saturation latency stays flat.\n";
  bless "e15"
    (Base_obs.Json.obj
       (List.sort (fun (a, _) (b, _) -> String.compare a b) !sections))

(* The recovery analogue of E15's saturation question: what does proactive
   recovery cost the service while it runs?  The same open-loop injector
   offers a fixed load while the recovery watchdog rolls through the
   replica slots, once rebooting in place (classic BASE/PBFT proactive
   recovery) and once promoting warm standbys from the n+s pool (migration,
   after Zhao's proactive service migration).  The window of vulnerability —
   recovery start to fully recovered state — shrinks from reboot-dominated
   to handshake-dominated, and tail latency under churn must not get
   worse. *)

let e16_rate = 1_000.0

let e16_duration_us = 2_500_000

type e16_mode = {
  md_windows_us : int list;  (* completed episodes, start -> fetch done *)
  md_handoffs_us : int list;  (* slot dark time: reboot or promote handshake *)
  md_staleness : int list;  (* migration: seqnos the promoted state trailed by *)
  md_promotions : int;
  md_aborted : int;
  md_skipped : int;
  md_p50_us : float;
  md_p99_us : float;
  md_completed : int;
  md_episodes : Base_obs.Json.t list;
}

let e16_run ~migrate =
  let sys =
    Systems.make_registers ~seed:52L ~standbys:2 ~checkpoint_period:32 ~n_objects:256
      ~n_clients:40 ()
  in
  let rt = sys.Systems.reg_runtime in
  (* Warm-up: cross checkpoint boundaries so the pool has a certified
     watermark to shadow-sync before the first roll. *)
  for i = 0 to 63 do
    ignore
      (Runtime.invoke_sync rt ~client:(i mod 40)
         ~operation:(Printf.sprintf "set:%d:w%d" (i * 3 mod 256) i)
         ())
  done;
  Engine.run ~until:(Sim_time.add (Runtime.now rt) (Sim_time.of_sec 1.0)) (Runtime.engine rt);
  Runtime.enable_proactive_recovery ~migrate ~reboot_us:400_000 ~promote_us:20_000
    ~period_us:2_000_000 rt;
  let load =
    Load.create ~seed:19L ~arrivals:Load.Poisson ~max_backlog:2_000
      ~operation:(fun i ->
        if i land 3 = 0 then Printf.sprintf "set:%d:v%d" (i * 5 mod 256) i
        else Printf.sprintf "get:%d" (i * 7 mod 256))
      ~rate_per_s:e16_rate ~duration_us:e16_duration_us rt
  in
  (match Load.run load with
  | Ok () -> ()
  | Error e -> failwith ("E16: " ^ e));
  (* Stop the watchdog and let in-flight episodes close before reading the
     timelines. *)
  Runtime.disable_proactive_recovery rt;
  Engine.run ~until:(Sim_time.add (Runtime.now rt) (Sim_time.of_sec 2.0)) (Runtime.engine rt);
  let s = Load.stats load in
  let counter name =
    Base_obs.Metrics.counter_value (Base_obs.Metrics.counter (Runtime.metrics rt) name)
  in
  let episodes = Runtime.recovery_timelines rt in
  let opt = function Some v -> Base_obs.Json.Int v | None -> Base_obs.Json.Null in
  {
    md_windows_us = List.filter_map Runtime.timeline_window_us episodes;
    md_handoffs_us = List.filter_map Runtime.timeline_handoff_us episodes;
    md_staleness =
      List.filter_map
        (fun tl ->
          if tl.Runtime.tl_migrated && tl.Runtime.tl_staleness_seqs >= 0 then
            Some tl.Runtime.tl_staleness_seqs
          else None)
        episodes;
    md_promotions = counter "base.standby.promotions";
    md_aborted = counter "base.standby.promotions_aborted";
    md_skipped = counter "base.standby.rounds_skipped";
    md_p50_us = Base_obs.Metrics.quantile s.Load.latency_us 0.5;
    md_p99_us = Base_obs.Metrics.quantile s.Load.latency_us 0.99;
    md_completed = s.Load.completed;
    md_episodes =
      List.map
        (fun tl ->
          Base_obs.Json.obj
            [
              ("handoff_us", opt (Runtime.timeline_handoff_us tl));
              ("migrated", Base_obs.Json.Bool tl.Runtime.tl_migrated);
              ("rid", Base_obs.Json.Int tl.Runtime.tl_rid);
              ( "staleness_seqs",
                if tl.Runtime.tl_migrated && tl.Runtime.tl_staleness_seqs >= 0 then
                  Base_obs.Json.Int tl.Runtime.tl_staleness_seqs
                else Base_obs.Json.Null );
              ("window_us", opt (Runtime.timeline_window_us tl));
            ])
        episodes;
  }

let e16_mean = function
  | [] -> 0.0
  | l -> float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)

let e16_mode_json md =
  let open Base_obs.Json in
  obj
    [
      ("completed", Int md.md_completed);
      ("episodes", List md.md_episodes);
      ("mean_handoff_us", Float (e16_mean md.md_handoffs_us));
      ("mean_window_us", Float (e16_mean md.md_windows_us));
      ("p50_us", Float md.md_p50_us);
      ("p99_us", Float md.md_p99_us);
      ("promotions", Int md.md_promotions);
      ("promotions_aborted", Int md.md_aborted);
      ("rounds_skipped", Int md.md_skipped);
    ]

let e16 () =
  section "E16"
    "migration-based recovery: window of vulnerability, warm standbys vs reboot in place";
  let inplace = e16_run ~migrate:false in
  let mig = e16_run ~migrate:true in
  let row label md =
    Printf.printf "  %-12s %9d %14.0f %14.0f %12.0f %12.0f %10d\n" label
      (List.length md.md_windows_us)
      (e16_mean md.md_handoffs_us) (e16_mean md.md_windows_us) md.md_p50_us md.md_p99_us
      md.md_completed
  in
  Printf.printf "  %-12s %9s %14s %14s %12s %12s %10s\n" "mode" "episodes" "handoff(us)"
    "window(us)" "p50(us)" "p99(us)" "completed";
  row "in-place" inplace;
  row "migration" mig;
  Printf.printf "  migration: %d promotions, %d aborted, %d rounds skipped, staleness %s seqs\n"
    mig.md_promotions mig.md_aborted mig.md_skipped
    (match mig.md_staleness with
    | [] -> "-"
    | l -> Printf.sprintf "%.1f mean" (e16_mean l));
  (* Acceptance criteria: both modes completed full rolls under load; the
     promoted state was genuinely warm (bounded staleness); migration cuts
     the mean window of vulnerability at least fivefold and does not
     degrade the latency tail. *)
  assert (List.length inplace.md_windows_us >= 4);
  assert (mig.md_promotions >= 4);
  assert (e16_mean mig.md_windows_us <= e16_mean inplace.md_windows_us /. 5.0);
  assert (mig.md_p99_us <= inplace.md_p99_us);
  Printf.printf
    "  a warm standby turns recovery from reboot-plus-refetch into a key handoff:\n\
    \  the slot is dark for the handshake only, and the catch-up fetch runs on\n\
    \  state that is already behind the certified watermark by seconds, not epochs.\n";
  bless "e16"
    (Base_obs.Json.obj [ ("inplace", e16_mode_json inplace); ("migration", e16_mode_json mig) ])

(* --- E17: hot-path profile and the million-request scale run ------------------------ *)

(* The profiling harness built for the hot-path overhaul (doc/profiling.md):
   every replica, client and the engine share one [Base_obs.Profile], whose
   probes bracket the protocol phases (bft.verify/seal/handle/execute,
   client.verify/seal, engine.send/dispatch).  The nanosecond clock is
   injected here — the libraries never read wall time — and only the
   deterministic part of the export (call counts, allocation deltas) goes
   into the blessed file; the timing table below is for humans. *)

let e17_profile () =
  let p = Base_obs.Profile.create ~now_ns:Monotonic_clock.now () in
  Base_obs.Profile.enable p;
  p

let print_profile p = Format.printf "%a%!" Base_obs.Profile.pp p

(* A million-request E15-style run: the open-loop injector against the
   stamp-free registers service with the read-only fast path and b=64
   batching — the configuration E15 shows saturating highest — driven hard
   enough to push one million completed requests through the full protocol
   stack in one run.  This is the scale claim for the hot-path overhaul:
   digest memoisation, batch MACs, slice decoding and the flat event heap
   are what make this run fit a CI budget. *)
let e17_scale_rate = 40_000.0

let e17_scale_duration_us = 26_000_000

let e17_scale profile =
  let sys =
    Systems.make_registers ~seed:53L ~n_clients:e15_pool ~n_objects:256
      ~checkpoint_period:128 ~batch_max:64 ~max_inflight:1 ~profile ()
  in
  let rt = sys.Systems.reg_runtime in
  let load =
    Load.create ~seed:23L ~arrivals:Load.Poisson ~max_backlog:2_000
      ~operation:(fun i ->
        if i land 3 = 0 then Printf.sprintf "set:%d:v%d" (i * 5 mod 256) i
        else Printf.sprintf "get:%d" (i * 7 mod 256))
      ~read_only:(fun i -> i land 3 <> 0)
      ~rate_per_s:e17_scale_rate ~duration_us:e17_scale_duration_us rt
  in
  (match Load.run load with
  | Ok () -> ()
  | Error e -> failwith ("E17: " ^ e));
  let s = Load.stats load in
  (rt, s)

let e17_probe_names =
  [
    "bft.verify"; "bft.seal"; "bft.handle"; "bft.execute";
    "client.verify"; "client.seal"; "engine.send"; "engine.dispatch";
  ]

let assert_probes_fired profs =
  List.iter
    (fun prof ->
      List.iter
        (fun name ->
          let probe = Base_obs.Profile.probe prof name in
          assert (Base_obs.Profile.probe_calls probe > 0))
        e17_probe_names)
    profs

(* The blessed observability workload (same seed as E12), probes on: where
   do its cycles and allocations go? *)
let e17_profiled_e12 () =
  let p12 = e17_profile () in
  let wall0 = Monotonic_clock.now () in
  ignore (e12_run ~profile:p12 11L);
  let e12_wall_ms = Int64.to_float (Int64.sub (Monotonic_clock.now ()) wall0) /. 1e6 in
  Printf.printf "  E12 workload under the profiler (%.0f ms wall):\n\n" e12_wall_ms;
  print_profile p12;
  p12

(* Sub-second CI smoke for the profiling harness: probes attach, fire on
   every protocol phase, and the deterministic export is well-formed —
   without paying for the E17 scale run. *)
let e17_smoke () =
  section "E17-SMOKE" "profiling harness smoke: probes fire on every phase";
  let p12 = e17_profiled_e12 () in
  assert_probes_fired [ p12 ];
  ignore (Base_obs.Json.to_string_pretty (Base_obs.Profile.to_json ~deterministic:true p12));
  Printf.printf "\n  all %d probes fired; deterministic export OK\n"
    (List.length e17_probe_names)

let e17 () =
  section "E17" "hot-path profile: phase costs, and one million requests in one run";
  let p12 = e17_profiled_e12 () in
  (* The scale run. *)
  let psc = e17_profile () in
  let wall1 = Monotonic_clock.now () in
  let rt, s = e17_scale psc in
  let scale_wall_s = Int64.to_float (Int64.sub (Monotonic_clock.now ()) wall1) /. 1e9 in
  let sent = (Engine.total_counters (Runtime.engine rt)).Engine.sent_msgs in
  Printf.printf "\n  scale run: %d requests completed (%d shed) in %.1f s wall\n"
    s.Load.completed s.Load.shed scale_wall_s;
  Printf.printf "  %d protocol messages; %.0f requests/s of wall time\n\n" sent
    (float_of_int s.Load.completed /. scale_wall_s);
  print_profile psc;
  (* Acceptance criteria: a genuinely million-request run, and the probes
     saw every protocol phase actually firing on both workloads. *)
  assert (s.Load.completed >= 1_000_000);
  assert_probes_fired [ p12; psc ];
  bless "e17"
    (Base_obs.Json.obj
       [
         ("e12_profile", Base_obs.Profile.to_json ~deterministic:true p12);
         ("scale_completed", Base_obs.Json.Int s.Load.completed);
         ("scale_profile", Base_obs.Profile.to_json ~deterministic:true psc);
         ("scale_shed", Base_obs.Json.Int s.Load.shed);
       ])

(* --- E18: shard scaling over the abstract object space ----------------------------- *)

(* The sharding question: with the abstract object space split across S
   independent agreement instances (distinct primaries over the same 3f+1
   nodes), does aggregate ordered throughput scale with S?  Pipelining is
   off (max_inflight = 1) so each shard's ceiling is its sequential
   consensus-instance rate times the batch size, and adding shards is the
   only parallelism under test.  Two oid distributions drive the same
   Andrew-style 50/50 read-write mix of single-object operations
   (conflict-free by construction — no footprint crosses a shard):

   - uniform: a coprime stride spreads arrivals evenly over the contiguous
     shard ranges; aggregate throughput must scale (S=4 at least twice S=1).
   - hot-spot: 90% of arrivals hit the first n/8 oids, which contiguous
     sharding maps into shard 0; that shard's instance rate bounds the
     aggregate, so extra shards buy little — the negative control that the
     scaling is real routing, not noise. *)

module Oid_dist = Base_workload.Oid_dist

let e18_rate = 110_000.0

let e18_duration_us = 400_000

let e18_objects = 256

let e18_shards = [ 1; 2; 4 ]

let e18_run ~shards ~oid_of =
  let sys =
    Systems.make_registers ~seed:57L ~n_clients:e15_pool ~n_objects:e18_objects
      ~checkpoint_period:128 ~batch_max:16 ~max_inflight:1 ~shards ()
  in
  let rt = sys.Systems.reg_runtime in
  let load =
    Load.create ~seed:19L ~arrivals:Load.Poisson ~max_backlog:2_000
      ~operation:(fun i ->
        let oid = oid_of i in
        if i land 1 = 0 then Printf.sprintf "set:%d:v%d" oid i
        else Printf.sprintf "get:%d" oid)
      ~rate_per_s:e18_rate ~duration_us:e18_duration_us rt
  in
  (match Load.run load with
  | Ok () -> ()
  | Error e -> failwith ("E18: " ^ e));
  let s = Load.stats load in
  {
    pt_rate = e18_rate;
    pt_tput = Load.throughput_per_s load;
    pt_occupancy = 0.0;
    pt_p50_us = Base_obs.Metrics.quantile s.Load.latency_us 0.5;
    pt_p99_us = Base_obs.Metrics.quantile s.Load.latency_us 0.99;
    pt_completed = s.Load.completed;
    pt_shed = s.Load.shed;
  }

let e18_point_json p =
  let open Base_obs.Json in
  obj
    [
      ("completed", Int p.pt_completed);
      ("p50_us", Float p.pt_p50_us);
      ("p99_us", Float p.pt_p99_us);
      ("shed", Int p.pt_shed);
      ("throughput_per_s", Float p.pt_tput);
    ]

let e18 () =
  section "E18" "shard scaling: aggregate throughput vs shard count, by oid skew";
  let sweep ~name ~oid_of =
    Printf.printf "\n  %s oids\n" name;
    Printf.printf "  %8s %14s %12s %12s %8s\n" "shards" "completed/s" "p50(us)" "p99(us)" "shed";
    List.map
      (fun shards ->
        let p = e18_run ~shards ~oid_of in
        Printf.printf "  %8d %14.1f %12.0f %12.0f %8d\n%!" shards p.pt_tput p.pt_p50_us
          p.pt_p99_us p.pt_shed;
        (shards, p))
      e18_shards
  in
  let uniform = sweep ~name:"uniform" ~oid_of:(Oid_dist.uniform ~n_objects:e18_objects) in
  let hotspot = sweep ~name:"hot-spot" ~oid_of:(Oid_dist.hotspot ~n_objects:e18_objects) in
  let tput pts s = (List.assoc s pts).pt_tput in
  let speedup pts s = tput pts s /. Float.max 1.0 (tput pts 1) in
  Printf.printf "\n  uniform speedup over S=1: S=2 %.2fx, S=4 %.2fx\n" (speedup uniform 2)
    (speedup uniform 4);
  Printf.printf "  hot-spot speedup over S=1: S=2 %.2fx, S=4 %.2fx\n" (speedup hotspot 2)
    (speedup hotspot 4);
  (* Acceptance criteria: sharding scales the conflict-free workload, and
     the hot shard bounds the skewed one well below the uniform scaling. *)
  assert (speedup uniform 4 >= 2.0);
  assert (speedup hotspot 4 < speedup uniform 4);
  Printf.printf
    "  independent per-shard agreement multiplies the sequential instance rate;\n\
    \  an oid hot-spot re-serialises it on the owning shard's primary.\n";
  let sect name pts =
    ( name,
      Base_obs.Json.obj
        (List.map (fun (s, p) -> (Printf.sprintf "shards%d" s, e18_point_json p)) pts) )
  in
  bless "e18" (Base_obs.Json.obj [ sect "hotspot" hotspot; sect "uniform" uniform ])

(* --- driver ------------------------------------------------------------------------ *)

let experiments =
  [
    ("E2", e2);
    ("E3", e3);
    ("E3b", e3_ablation);
    ("E3c", e3_micro);
    ("E4", e4);
    ("E5", e5);
    ("E6", e6);
    ("E7", e7_transfer_sweep);
    ("E7b", e7_micro);
    ("E8", e8);
    ("E9", e9);
    ("E10", e10);
    ("E11", e11);
    ("E12", e12);
    ("E13", e13);
    ("E14", e14);
    ("E15", e15);
    ("E16", e16);
    ("E17", e17);
    ("E17-SMOKE", e17_smoke);
    ("E18", e18);
  ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let to_run =
    if requested = [] then experiments
    else List.filter (fun (id, _) -> List.mem id requested) experiments
  in
  if to_run = [] then begin
    Printf.printf "unknown experiment; available: %s\n"
      (String.concat " " (List.map fst experiments));
    exit 1
  end;
  Printf.printf "BASE reproduction - experiment harness (see EXPERIMENTS.md)\n";
  List.iter (fun (_, f) -> f ()) to_run;
  write_blessed ()
