(* Tolerance-based comparison of two BENCH_metrics.json files.

     bench_diff.exe BLESSED CURRENT

   The benchmark export is a pure function of its seeds, so CI checks
   determinism by requiring two consecutive runs to be byte-identical.  The
   comparison against the blessed copy in the repository is different in
   kind: an intentional change anywhere in the stack (a wire-size tweak, a
   new metric draw) legitimately shifts timing-derived numbers without
   invalidating the claims the artifact records.  Requiring byte equality
   there turns every such change into a wholesale re-bless, which reviewers
   cannot distinguish from a regression.  So structure is compared exactly
   — same sections, same keys, same strings and booleans — while numbers
   are compared per top-level section with a relative tolerance (plus a
   small absolute slack for event counts).  Exit status 0 means within
   tolerance; 1 prints every violation with its JSON path. *)

module Json = Base_obs.Json

(* Per-section relative tolerance.  E14 and E16 are dominated by a handful
   of recovery episodes' timings, so they get the widest band. *)
let tolerance_for = function
  | "e14" | "e16" -> 0.30
  (* e17 carries the profile's alloc_bytes, which drifts with compiler
     version (inlining decides what allocates) even though call counts are
     exact; same band as the load-sensitive sections.  e18 is an open-loop
     saturation sweep like e15: throughput at the ceiling is load-sensitive. *)
  | "e12" | "e13" | "e15" | "e17" | "e18" -> 0.15
  | _ -> 0.10

(* Counts of discrete events (retransmissions, cache hits, recoveries) sit
   near zero where a relative band is meaningless; allow a small absolute
   drift on top. *)
let abs_slack = 2.0

let close ~rtol a b =
  let d = Float.abs (a -. b) in
  d <= abs_slack || d <= rtol *. Float.max (Float.abs a) (Float.abs b)

let violations = ref []

let report path msg = violations := Printf.sprintf "%s: %s" path msg :: !violations

let same_keys a b = List.length a = List.length b && List.for_all2 String.equal a b

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let rec compare_values ~rtol path a b =
  match (number a, number b) with
  | Some x, Some y ->
    if not (close ~rtol x y) then
      report path (Printf.sprintf "%.6g vs %.6g exceeds %.0f%% tolerance" x y (100.0 *. rtol))
  | _ -> (
    match (a, b) with
    | Json.Null, Json.Null -> ()
    | Json.Bool x, Json.Bool y ->
      if x <> y then report path (Printf.sprintf "%b vs %b" x y)
    | Json.Str x, Json.Str y ->
      if not (String.equal x y) then report path (Printf.sprintf "%S vs %S" x y)
    | Json.List xs, Json.List ys ->
      if List.length xs <> List.length ys then
        report path
          (Printf.sprintf "list length %d vs %d" (List.length xs) (List.length ys))
      else
        List.iteri
          (fun i (x, y) -> compare_values ~rtol (Printf.sprintf "%s[%d]" path i) x y)
          (List.combine xs ys)
    | Json.Obj xs, Json.Obj ys ->
      let sort = List.sort (fun (a, _) (b, _) -> String.compare a b) in
      let xs = sort xs and ys = sort ys in
      let keys l = List.map fst l in
      if not (same_keys (keys xs) (keys ys)) then
        report path
          (Printf.sprintf "key sets differ: {%s} vs {%s}"
             (String.concat "," (keys xs))
             (String.concat "," (keys ys)))
      else
        List.iter2
          (fun (k, x) (_, y) -> compare_values ~rtol (path ^ "." ^ k) x y)
          xs ys
    | _ -> report path "type mismatch")

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  match Json.of_string contents with
  | Ok v -> v
  | Error e ->
    Printf.eprintf "bench_diff: %s: %s\n" path e;
    exit 2

let () =
  let blessed_path, current_path =
    match Sys.argv with
    | [| _; a; b |] -> (a, b)
    | _ ->
      Printf.eprintf "usage: bench_diff BLESSED CURRENT\n";
      exit 2
  in
  let blessed = load blessed_path and current = load current_path in
  (match (blessed, current) with
  | Json.Obj bs, Json.Obj cs ->
    let sort = List.sort (fun (a, _) (b, _) -> String.compare a b) in
    let bs = sort bs and cs = sort cs in
    if not (same_keys (List.map fst bs) (List.map fst cs)) then
      report "$"
        (Printf.sprintf "section sets differ: {%s} vs {%s}"
           (String.concat "," (List.map fst bs))
           (String.concat "," (List.map fst cs)))
    else
      List.iter2
        (fun (section, b) (_, c) ->
          compare_values ~rtol:(tolerance_for section) ("$." ^ section) b c)
        bs cs
  | _ -> report "$" "top level is not an object in both files");
  match !violations with
  | [] -> print_endline "bench_diff: within tolerance"
  | vs ->
    Printf.printf "bench_diff: %d violation(s):\n" (List.length vs);
    List.iter (fun v -> Printf.printf "  %s\n" v) (List.rev vs);
    exit 1
