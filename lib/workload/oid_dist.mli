(** Deterministic object-id streams for oid-routed workloads (E18).

    Each generator maps an arrival index to the oid the operation should
    touch, with no pseudo-random state: the stream depends only on the
    index, never on scheduling, shard count or the engine's PRNG.  That is
    what makes shard-scaling comparisons meaningful — every configuration
    serves the {e identical} operation sequence. *)

val uniform : n_objects:int -> int -> int
(** [uniform ~n_objects i] spreads arrivals evenly over the object space
    with a coprime stride (11), so contiguous shard ranges each receive a
    near-equal share.  [n_objects] should not be a multiple of 11. *)

val hot_range : n_objects:int -> int
(** Size of the hot prefix used by {!hotspot}: [n_objects / 8] (at least
    1). *)

val hotspot : ?hot_pct:int -> n_objects:int -> int -> int
(** [hotspot ~n_objects i] skews traffic: [hot_pct]% (default 90) of
    arrivals land in the hot prefix [\[0, hot_range)], the rest spread over
    the remaining oids.  Under contiguous sharding the hot prefix maps to
    one shard, whose agreement instance becomes the bottleneck — the
    anti-scaling workload for E18. *)
