(** Open-loop load generation over a {!Base_core.Runtime} deployment.

    Closed-loop drivers (a fixed set of clients, each issuing its next
    request the instant the previous one completes) cannot measure
    saturation: their offered load collapses to whatever the system
    sustains, hiding queueing delay entirely.  This injector is open-loop —
    arrivals are generated on an engine timer at a configured offered rate,
    independent of completions, in the style of the saturation experiments
    in the PBFT/BASE evaluations.

    Each arrival is handed to a free client from the pool (every client of
    the runtime); when the whole pool is busy the arrival waits in a bounded
    backlog, and its eventual latency {e includes} that wait — the quantity
    that blows up past the saturation point.  Arrivals beyond the backlog
    bound are shed and counted, never silently dropped.

    The injector draws interarrival gaps from its own seeded PRNG, not the
    engine's, so the same offered workload replays identically against
    systems whose network consumes engine randomness differently (different
    batch sizes, drop rates, ...).  It runs as its own pseudo-node (one id
    past the recovery orchestrator), so a run remains a pure function of the
    two seeds. *)

type arrivals =
  | Fixed  (** constant interarrival gap [1/rate] *)
  | Poisson  (** exponential gaps with mean [1/rate] *)

type stats = {
  mutable offered : int;  (** arrivals generated (the open-loop demand) *)
  mutable started : int;  (** arrivals handed to a client so far *)
  mutable completed : int;
  mutable completed_in_window : int;
      (** completions at or before the injection window's end — the
          numerator of {!throughput_per_s} *)
  mutable shed : int;  (** arrivals dropped because the backlog was full *)
  mutable backlog_peak : int;
  latency_us : Base_obs.Metrics.histogram;
      (** arrival to completion, including backlog wait; registered as
          [load.latency_us] in the runtime's registry *)
}

type t

val create :
  ?seed:int64 ->
  ?arrivals:arrivals ->
  ?max_backlog:int ->
  ?operation:(int -> string) ->
  ?read_only:(int -> bool) ->
  rate_per_s:float ->
  duration_us:int ->
  Base_core.Runtime.t ->
  t
(** Arms the injector on the runtime's engine: the first arrival fires at
    the current virtual time and generation continues for [duration_us].
    [operation i] and [read_only i] describe the [i]-th arrival (defaults: a
    write round-robin over 8 registers, never read-only).  [arrivals]
    defaults to [Poisson], [max_backlog] to 100_000.  One injector per
    runtime (it claims the pseudo-node id after the orchestrator). *)

val run : ?max_events:int -> t -> (unit, string) result
(** Step the engine until injection has ended, the backlog has drained and
    every pool client is idle.  An [Error] reports a stall (quiescent queue
    or exhausted budget) instead of raising, so saturation sweeps can treat
    a wedged configuration as data. *)

val finished : t -> bool

val stats : t -> stats

val offered_rate_per_s : t -> float

val duration_s : t -> float

val throughput_per_s : t -> float
(** [completed_in_window / duration] — completed requests per second over
    the injection window. *)
