(* PRNG-free: both streams are pure functions of the arrival index, so the
   exact same oid sequence replays against systems whose network consumes
   engine randomness differently (different shard counts, batch sizes). *)

let uniform ~n_objects i = i * 11 mod n_objects

let hot_range ~n_objects = max 1 (n_objects / 8)

let hotspot ?(hot_pct = 90) ~n_objects i =
  let hot = hot_range ~n_objects in
  if n_objects <= hot then uniform ~n_objects i
  else if i * 13 mod 100 < hot_pct then i * 7 mod hot
  else hot + (i * 11 mod (n_objects - hot))
