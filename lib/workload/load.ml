module Runtime = Base_core.Runtime
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time
module Types = Base_bft.Types
module Client = Base_bft.Client
module Prng = Base_util.Prng

type arrivals = Fixed | Poisson

type stats = {
  mutable offered : int;
  mutable started : int;
  mutable completed : int;
  mutable completed_in_window : int;
  mutable shed : int;
  mutable backlog_peak : int;
  latency_us : Base_obs.Metrics.histogram;
}

type t = {
  runtime : Runtime.t;
  engine : Runtime.msg Engine.t;
  prng : Prng.t;
      (* The injector's own stream, NOT the engine's: arrival times must be a
         function of the load seed alone, so the same offered workload can be
         replayed against systems whose network consumes engine randomness
         differently (batching on/off, drops, ...). *)
  rate_per_s : float;
  arrivals : arrivals;
  operation : int -> string;
  read_only : int -> bool;
  max_backlog : int;
  start_us : Sim_time.t;
  end_us : Sim_time.t;  (* injection and measurement window end *)
  free : int Queue.t;  (* pool: client indices with no outstanding op *)
  pool_size : int;
  backlog : (Sim_time.t * int) Queue.t;  (* (arrival time, arrival index) *)
  mutable sched_us : float;  (* absolute virtual time of the next arrival *)
  mutable injecting : bool;
  stats : stats;
}

(* Latency under overload is dominated by backlog wait, so the histogram
   range extends well past the protocol's own round-trip times. *)
let latency_buckets =
  [|
    100.; 200.; 500.; 1_000.; 2_000.; 5_000.; 10_000.; 20_000.; 50_000.; 100_000.;
    200_000.; 500_000.; 1_000_000.; 2_000_000.; 5_000_000.; 10_000_000.; 30_000_000.;
  |]

(* A freed client immediately serves the oldest backlogged arrival, so the
   pool stays work-conserving under overload. *)
let rec dispatch t ~arrival_us ~idx client =
  t.stats.started <- t.stats.started + 1;
  Runtime.invoke t.runtime ~client ~read_only:(t.read_only idx) ~operation:(t.operation idx)
    (fun _result ->
      let now = Engine.now t.engine in
      t.stats.completed <- t.stats.completed + 1;
      if Sim_time.(now <= t.end_us) then
        t.stats.completed_in_window <- t.stats.completed_in_window + 1;
      Base_obs.Metrics.observe t.stats.latency_us
        (Int64.to_float (Sim_time.sub now arrival_us));
      match Queue.take_opt t.backlog with
      | Some (arrival_us, idx) -> dispatch t ~arrival_us ~idx client
      | None -> Queue.add client t.free)

let arrive t =
  let idx = t.stats.offered in
  t.stats.offered <- idx + 1;
  let now = Engine.now t.engine in
  match Queue.take_opt t.free with
  | Some client -> dispatch t ~arrival_us:now ~idx client
  | None ->
    (* Open loop: the arrival happened whether or not a client is free.  A
       bounded backlog keeps memory finite past saturation; arrivals beyond
       it are shed and counted, never silently dropped. *)
    if Queue.length t.backlog >= t.max_backlog then t.stats.shed <- t.stats.shed + 1
    else begin
      Queue.add (now, idx) t.backlog;
      if Queue.length t.backlog > t.stats.backlog_peak then
        t.stats.backlog_peak <- Queue.length t.backlog
    end

let interarrival_us t =
  let mean = 1e6 /. t.rate_per_s in
  match t.arrivals with
  | Fixed -> mean
  | Poisson -> Prng.exponential t.prng ~mean

let injector_node t = (Runtime.config t.runtime).Types.n_principals + 1

let schedule_next t =
  t.sched_us <- t.sched_us +. interarrival_us t;
  if t.sched_us < Int64.to_float t.end_us then begin
    let now = Int64.to_float (Engine.now t.engine) in
    let after = int_of_float (Float.max 0.0 (Float.round (t.sched_us -. now))) in
    ignore
      (Engine.set_timer t.engine ~node:(injector_node t) ~after:(Sim_time.of_us after)
         ~tag:"arrive" ~payload:0)
  end
  else t.injecting <- false

let create ?(seed = 42L) ?(arrivals = Poisson) ?(max_backlog = 100_000)
    ?(operation = fun i -> Printf.sprintf "set:%d:v%d" (i mod 8) i)
    ?(read_only = fun _ -> false) ~rate_per_s ~duration_us runtime =
  if rate_per_s <= 0.0 then invalid_arg "Load.create: rate must be positive";
  if duration_us <= 0 then invalid_arg "Load.create: duration must be positive";
  let engine = Runtime.engine runtime in
  let config = Runtime.config runtime in
  let pool_size = config.Types.n_principals - Types.group_size config in
  if pool_size = 0 then invalid_arg "Load.create: runtime has no clients";
  let free = Queue.create () in
  for c = 0 to pool_size - 1 do
    Queue.add c free
  done;
  let start_us = Engine.now engine in
  let t =
    {
      runtime;
      engine;
      prng = Prng.create seed;
      rate_per_s;
      arrivals;
      operation;
      read_only;
      max_backlog;
      start_us;
      end_us = Sim_time.add start_us (Sim_time.of_us duration_us);
      free;
      pool_size;
      backlog = Queue.create ();
      sched_us = Int64.to_float start_us;
      injecting = true;
      stats =
        {
          offered = 0;
          started = 0;
          completed = 0;
          completed_in_window = 0;
          shed = 0;
          backlog_peak = 0;
          latency_us =
            Base_obs.Metrics.histogram ~buckets:latency_buckets (Runtime.metrics runtime)
              "load.latency_us";
        };
    }
  in
  (* The injector is its own pseudo-node (one past the orchestrator), so its
     arrival timers ride the same deterministic event queue as the protocol. *)
  Engine.add_node engine ~id:(injector_node t) (fun _engine ev ->
      match ev with
      | Engine.Timer { tag = "arrive"; _ } ->
        arrive t;
        schedule_next t
      | Engine.Timer _ | Engine.Deliver _ -> ());
  (* First arrival fires at the window start; subsequent ones chain. *)
  ignore
    (Engine.set_timer engine ~node:(injector_node t) ~after:Sim_time.zero ~tag:"arrive"
       ~payload:0);
  t

let stats t = t.stats

let finished t =
  (not t.injecting) && Queue.is_empty t.backlog && Queue.length t.free = t.pool_size

let run ?(max_events = 500_000_000) t =
  let events = ref 0 in
  let quiescent = ref false in
  while (not (finished t)) && (not !quiescent) && !events < max_events do
    if Engine.step t.engine then incr events else quiescent := true
  done;
  if finished t then Ok ()
  else if !quiescent then Error "Load.run: simulation went quiescent mid-load"
  else Error "Load.run: event budget exceeded"

let offered_rate_per_s t = t.rate_per_s

let duration_s t = Sim_time.to_sec (Sim_time.sub t.end_us t.start_us)

let throughput_per_s t =
  let d = duration_s t in
  if d <= 0.0 then 0.0 else float_of_int t.stats.completed_in_window /. d
