(** Fault-injection scenarios: opportunistic N-version programming against a
    deterministic software bug (E6), state corruption with proactive-recovery
    repair (E9), availability probes used by the recovery experiment (E5),
    and the scheduled chaos sweep with a Byzantine primary (E13). *)

open Base_nfs.Nfs_types
module Runtime = Base_core.Runtime
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time
module Objrepo = Base_core.Objrepo
module S = Base_fs.Server_intf

let nfs_of sys ~client =
  Base_nfs.Nfs_client.make (fun ~read_only ~operation ->
      Runtime.invoke_sync sys.Systems.runtime ~client ~read_only ~operation ())

(* Distinct abstract-state roots across the replica group (0 divergent =
   everybody agrees). *)
let divergent_replicas sys =
  let roots =
    Array.map
      (fun node -> Objrepo.current_root node.Runtime.repo)
      (Runtime.replicas sys.Systems.runtime)
  in
  let counts = Hashtbl.create 4 in
  Array.iter
    (fun r ->
      let k = Base_crypto.Digest_t.raw r in
      Hashtbl.replace counts k (1 + Option.value (Hashtbl.find_opt counts k) ~default:0))
    roots;
  let tallies =
    Hashtbl.fold (fun k c acc -> (k, c) :: acc) counts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let majority = List.fold_left (fun acc (_, c) -> max c acc) 0 tallies in
  Array.length roots - majority

(* --- E6: deterministic bug vs N-version programming -------------------------- *)

type poison_outcome = {
  configuration : string;
  read_back_correct : bool;  (** did the client read what it wrote? *)
  divergent : int;  (** replicas whose abstract state differs from majority *)
  buggy_replicas : int;
}

(* Arm the latent bug on every replica running [buggy_impl], then have the
   client write data that triggers it and read the data back. *)
let poison_experiment ?(seed = 5L) ~hetero () =
  let sys = Systems.make_basefs ~seed ~hetero ~n_clients:1 () in
  let buggy = ref 0 in
  Array.iteri
    (fun rid name ->
      if String.equal name "hash" then begin
        incr buggy;
        sys.Systems.servers.(rid).S.set_poison (Some "BUG")
      end)
    sys.Systems.impl_of;
  let nfs = nfs_of sys ~client:0 in
  let module C = Base_nfs.Nfs_client in
  let payload = "static int BUG_trigger = 42; /* crosses the bad code path */" in
  let file, _ = C.ok (C.create nfs root_oid "poisoned.c" sattr_empty) in
  ignore (C.ok (C.write nfs file ~off:0 payload));
  let got, _ = C.ok (C.read nfs file ~off:0 ~count:(String.length payload)) in
  (* Let in-flight protocol traffic settle before inspecting the replicas. *)
  Engine.run
    ~until:(Sim_time.add (Runtime.now sys.Systems.runtime) (Sim_time.of_ms 100))
    (Runtime.engine sys.Systems.runtime);
  {
    configuration = (if hetero then "heterogeneous (4 distinct impls)" else "homogeneous (4 x hash)");
    read_back_correct = String.equal got payload;
    divergent = divergent_replicas sys;
    buggy_replicas = !buggy;
  }

(* --- E9: concrete-state corruption and repair --------------------------------- *)

type corruption_outcome = {
  corrupt_replicas : int;
  objects_damaged : int;
  reads_correct_before_repair : bool;
  objects_repaired : int;  (** fetched during proactive recovery *)
  divergent_after_repair : int;
}

let populate nfs ~files ~len =
  let module C = Base_nfs.Nfs_client in
  List.init files (fun i ->
      let name = Printf.sprintf "data%02d" i in
      let body = String.init len (fun k -> Char.chr (((i * 31) + k) mod 256)) in
      let fh, _ = C.ok (C.create nfs root_oid name sattr_empty) in
      ignore (C.ok (C.write nfs fh ~off:0 body));
      (fh, body))

let corruption_experiment ?(seed = 9L) ~corrupt_replicas ~objects_per_replica () =
  let sys = Systems.make_basefs ~seed ~hetero:true ~checkpoint_period:16 ~n_clients:1 () in
  let rt = sys.Systems.runtime in
  let nfs = nfs_of sys ~client:0 in
  let module C = Base_nfs.Nfs_client in
  let files = populate nfs ~files:12 ~len:4096 in
  (* Silent bit rot on the first [corrupt_replicas] replicas. *)
  let prng = Base_util.Prng.create (Int64.add seed 1000L) in
  let damaged = ref 0 in
  for rid = 0 to corrupt_replicas - 1 do
    damaged := !damaged + sys.Systems.servers.(rid).S.corrupt ~prng ~count:objects_per_replica
  done;
  (* Reads must still be correct while no more than f replicas are corrupt:
     the wrapped, corrupted replicas are simply outvoted. *)
  let reads_ok =
    List.for_all
      (fun (fh, body) ->
        let got, _ = C.ok (C.read nfs fh ~off:0 ~count:(String.length body)) in
        String.equal got body)
      files
  in
  (* Proactive recovery sweeps every replica; keep light load running so
     checkpoints keep certifying fresh states. *)
  Runtime.enable_proactive_recovery ~reboot_us:50_000 ~period_us:1_500_000 rt;
  for i = 0 to 40 do
    let fh, _ = List.nth files (i mod 12) in
    ignore (C.ok (C.write nfs fh ~off:0 (Printf.sprintf "tick %d" i)));
    Engine.advance_to (Runtime.engine rt)
      (Sim_time.add (Runtime.now rt) (Sim_time.of_ms 200))
  done;
  Runtime.disable_proactive_recovery rt;
  Engine.run ~until:(Sim_time.add (Runtime.now rt) (Sim_time.of_sec 3.0)) (Runtime.engine rt);
  let repaired =
    Array.fold_left
      (fun acc node -> acc + node.Runtime.recovery_stats.Runtime.total_objects_fetched)
      0 (Runtime.replicas rt)
  in
  {
    corrupt_replicas;
    objects_damaged = !damaged;
    reads_correct_before_repair = reads_ok;
    objects_repaired = repaired;
    divergent_after_repair = divergent_replicas sys;
  }

(* --- E5: availability probe ---------------------------------------------------- *)

type window = { w_start_s : float; w_ops : int }

(* Continuous closed-loop load; returns completed-operation counts per
   [window_s]-second window of virtual time. *)
let throughput_trace ?(seed = 13L) ~duration_s ~window_s ~recovery () =
  let sys = Systems.make_basefs ~seed ~hetero:true ~checkpoint_period:32 ~n_clients:1 () in
  let rt = sys.Systems.runtime in
  (match recovery with
  | Some (period_us, reboot_us) ->
    Runtime.enable_proactive_recovery ~reboot_us ~period_us rt
  | None -> ());
  let nfs = nfs_of sys ~client:0 in
  let module C = Base_nfs.Nfs_client in
  let fh, _ = C.ok (C.create nfs root_oid "probe" sattr_empty) in
  let completions = ref [] in
  let n = ref 0 in
  while Sim_time.to_sec (Runtime.now rt) < duration_s do
    incr n;
    ignore (C.ok (C.write nfs fh ~off:0 (Printf.sprintf "op%d" !n)));
    completions := Sim_time.to_sec (Runtime.now rt) :: !completions
  done;
  let buckets = int_of_float (Float.ceil (duration_s /. window_s)) in
  let counts = Array.make buckets 0 in
  List.iter
    (fun t ->
      let b = int_of_float (t /. window_s) in
      if b >= 0 && b < buckets then counts.(b) <- counts.(b) + 1)
    !completions;
  ( sys,
    Array.to_list (Array.mapi (fun i c -> { w_start_s = float_of_int i *. window_s; w_ops = c }) counts)
  )

(* --- E13: chaos sweep — scheduled faults plus a Byzantine primary --------------- *)

module Faultplan = Base_sim.Faultplan
module Metrics = Base_obs.Metrics
module P = Base_nfs.Nfs_proto

type chaos_outcome = {
  ch_plan : Faultplan.t;
  ch_ops : int;  (** writes attempted while the storm was running *)
  ch_completed : int;
  ch_stalls : int;  (** liveness losses: the event budget ran out *)
  ch_read_checks : int;
  ch_read_errors : int;  (** linearizability violations (read-your-writes) *)
  ch_view_changes : int;  (** completed view changes ([bft.view_change_us] samples) *)
  ch_equivocations : int;  (** [bft.equivocation_detected] *)
  ch_corrupted : int;  (** [engine.corrupted_msgs] *)
  ch_pp_muted : int;  (** [adversary.pp_muted] *)
  ch_divergent : int;  (** replicas off the majority abstract state after settling *)
}

(* The blessed f=1 schedule: at most one replica is faulty at any moment, so
   every window is survivable, yet each window exercises a different
   view-change trigger — an equivocating primary, an omission/delay attack on
   its successor, a primary crash, an isolated primary — followed by
   link-level noise (delay spike, loss, corruption) and a mute backup. *)
let chaos_plan_text =
  "# f=1 chaos schedule: never more than one faulty replica at a time.\n\
   at 50ms behavior 0 equivocate\n\
   at 450ms behavior 0 honest\n\
   at 600ms attack-preprepare 1 mute=0.7 delay=3ms for 400ms\n\
   at 1200ms crash 2\n\
   at 1700ms reboot 2\n\
   at 2100ms partition 3 / 0 1 2\n\
   at 2500ms heal\n\
   at 2700ms delay *->1 extra=2ms for 200ms\n\
   at 2950ms drop 1->* p=0.3 for 200ms\n\
   at 3200ms corrupt *->* p=0.2 for 200ms\n\
   at 3450ms behavior 3 mute\n\
   at 3750ms behavior 3 honest\n"

let counter_value m name = Metrics.counter_value (Metrics.counter m name)

(* Closed-loop writes with periodic read-back checks while the fault plan
   fires around the group.  Every operation uses the [try_] driver: a stall
   is counted, not fatal, so the experiment reports liveness instead of
   crashing.  Reads go through the read-only optimisation, whose 2f+1
   matching replies must intersect every commit quorum — the linearizability
   property checked against the last completed write. *)
let chaos_experiment ?(seed = 21L) () =
  let sys =
    Systems.make_basefs ~seed ~hetero:true ~checkpoint_period:16 ~n_clients:1
      ~client_timeout_us:60_000 ~viewchange_timeout_us:120_000 ()
  in
  let rt = sys.Systems.runtime in
  let plan =
    match Faultplan.parse chaos_plan_text with
    | Ok p -> p
    | Error e -> invalid_arg ("chaos_experiment: bad plan: " ^ e)
  in
  let nfs = nfs_of sys ~client:0 in
  let module C = Base_nfs.Nfs_client in
  let fh, _ = C.ok (C.create nfs root_oid "chaos" sattr_empty) in
  let t0 = Sim_time.to_sec (Runtime.now rt) in
  Runtime.apply_faultplan rt plan;
  let ops = ref 0 and completed = ref 0 and stalls = ref 0 in
  let read_checks = ref 0 and read_errors = ref 0 in
  let last_write = ref None in
  let i = ref 0 in
  while Sim_time.to_sec (Runtime.now rt) < t0 +. 4.2 do
    incr i;
    let payload = Printf.sprintf "chaos-op-%04d" !i in
    incr ops;
    (match
       Runtime.try_invoke_sync rt ~client:0
         ~operation:(P.encode_call (P.Write (fh, 0, payload)))
         ()
     with
    | Ok _ -> incr completed; last_write := Some payload
    | Error _ -> incr stalls);
    match !last_write with
    | Some expect when !i mod 4 = 0 -> (
      incr read_checks;
      match
        Runtime.try_invoke_sync rt ~client:0 ~read_only:true
          ~operation:(P.encode_call (P.Read (fh, 0, String.length expect)))
          ()
      with
      | Ok reply -> (
        match P.decode_reply reply with
        | P.R_read (data, _) -> if not (String.equal data expect) then incr read_errors
        | _ -> incr read_errors)
      | Error _ -> incr stalls)
    | Some _ | None -> ()
  done;
  (* The storm is over (the last window closes at 3.75 s): drain in-flight
     traffic and give the rebooted/partitioned replicas time to catch up via
     status gossip and state transfer before judging divergence. *)
  Engine.run ~until:(Sim_time.add (Runtime.now rt) (Sim_time.of_sec 2.0)) (Runtime.engine rt);
  let m = Runtime.metrics rt in
  ( sys,
    {
      ch_plan = plan;
      ch_ops = !ops;
      ch_completed = !completed;
      ch_stalls = !stalls;
      ch_read_checks = !read_checks;
      ch_read_errors = !read_errors;
      ch_view_changes = Metrics.hist_count (Metrics.histogram m "bft.view_change_us");
      ch_equivocations = counter_value m "bft.equivocation_detected";
      ch_corrupted = counter_value m "engine.corrupted_msgs";
      ch_pp_muted = counter_value m "adversary.pp_muted";
      ch_divergent = divergent_replicas sys;
    } )
