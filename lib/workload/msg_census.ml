(** Message census: counts protocol traffic by message type through the
    simulator's tracer, for the experiment harness ("how many PREPAREs does
    an NFS write cost?"). *)

type t = {
  counts : (string, int) Hashtbl.t;
  mutable sends : int;
  mutable installed : bool;
}

let create () = { counts = Hashtbl.create 16; sends = 0; installed = false }

(* Trace lines look like "send  0->2 PRE-PREPARE(v=0,n=2) (180B)". *)
let classify line =
  if String.length line < 6 || not (String.equal (String.sub line 0 5) "send ") then None
  else begin
    match String.index_opt line '>' with
    | None -> None
    | Some gt ->
      let rest = String.sub line (gt + 1) (String.length line - gt - 1) in
      let rest = String.trim rest in
      (* Skip the destination id, then take the label up to '('. *)
      (match String.index_opt rest ' ' with
      | None -> None
      | Some sp ->
        let label = String.sub rest (sp + 1) (String.length rest - sp - 1) in
        let stop =
          match String.index_opt label '(' with Some i -> i | None -> String.length label
        in
        Some (String.trim (String.sub label 0 stop)))
  end

let install t engine =
  t.installed <- true;
  Base_sim.Engine.set_tracer engine (fun _time line ->
      match classify line with
      | None -> ()
      | Some label ->
        t.sends <- t.sends + 1;
        Hashtbl.replace t.counts label
          (1 + Option.value (Hashtbl.find_opt t.counts label) ~default:0))

let rows t =
  Hashtbl.fold (fun label count acc -> (label, count) :: acc) t.counts []
  |> List.sort (fun (la, a) (lb, b) ->
         match Int.compare b a with 0 -> String.compare la lb | c -> c)

let total t = t.sends

let pp ppf t =
  Format.fprintf ppf "  %-14s %10s@." "message" "sent";
  List.iter (fun (label, count) -> Format.fprintf ppf "  %-14s %10d@." label count) (rows t)
