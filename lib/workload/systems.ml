(** Builders for complete replicated file-service deployments (BASE-FS) and
    for the unreplicated off-the-shelf baseline they are compared against. *)

module Runtime = Base_core.Runtime
module Engine = Base_sim.Engine
module Types = Base_bft.Types
module Service = Base_core.Service
module S = Base_fs.Server_intf

let impl_names = [| "inode"; "hash"; "log"; "btree"; "fat" |]

let make_impl name ~seed ~now : S.t =
  match name with
  | "inode" -> Base_fs.Fs_inode.create (Base_fs.Fs_inode.make ~seed ~now)
  | "hash" -> Base_fs.Fs_hash.create (Base_fs.Fs_hash.make ~seed ~now)
  | "log" -> Base_fs.Fs_log.create (Base_fs.Fs_log.make ~seed ~now)
  | "btree" -> Base_fs.Fs_btree.create (Base_fs.Fs_btree.make ~seed ~now)
  | "fat" -> Base_fs.Fs_fat.create (Base_fs.Fs_fat.make ~seed ~now)
  | other -> invalid_arg ("Systems.make_impl: unknown implementation " ^ other)

type basefs = {
  runtime : Runtime.t;
  servers : S.t array;  (** the wrapped off-the-shelf implementations *)
  impl_of : string array;  (** implementation name per replica *)
}

(** [make_basefs ~hetero ...] builds an n=3f+1 BASE-FS deployment.  With
    [hetero = true] each replica runs a different implementation
    (opportunistic N-version programming); otherwise all replicas run
    [homogeneous_impl] (default "hash", the one with the latent bug). *)
let make_basefs ?(seed = 1L) ?(f = 1) ?(checkpoint_period = 64) ?(n_objects = 512)
    ?(n_clients = 1) ?(homogeneous_impl = "hash") ?drop_p ?batch_max ?max_inflight
    ?client_timeout_us ?viewchange_timeout_us ?st_window ?st_chunk_bytes ?st_cache_objs
    ?standbys ?profile ~hetero () =
  let config =
    Types.make_config ~checkpoint_period ~log_window:(2 * checkpoint_period) ?batch_max
      ?max_inflight ?client_timeout_us ?viewchange_timeout_us ?st_window ?st_chunk_bytes
      ?st_cache_objs ?standbys ~f ~n_clients ()
  in
  let engine_config =
    let base =
      Engine.default_config ~size_of:Runtime.msg_size ~label_of:Runtime.msg_label
    in
    {
      base with
      seed;
      drop_p = Option.value drop_p ~default:base.drop_p;
      kind_of = Runtime.msg_kind;
    }
  in
  (* Warm standbys run a wrapped implementation of their own, so the server
     and implementation-name tables cover the whole n+s group. *)
  let group = Types.group_size config in
  let servers = Array.make group None in
  let impl_of = Array.make group "" in
  (* The implementations read their replica's local (skewed, drifting)
     clock; the engine does not exist until Runtime.create runs, so route
     through a cell.  During construction the clock reads zero, which only
     affects concrete timestamps that the wrapper masks anyway. *)
  let engine_cell = ref None in
  let make_wrapper rid =
    let name = if hetero then impl_names.(rid mod Array.length impl_names) else homogeneous_impl in
    impl_of.(rid) <- name;
    let now () =
      match !engine_cell with
      | Some engine -> Engine.local_clock engine rid
      | None -> 0L
    in
    let server = make_impl name ~seed:(Int64.add seed (Int64.of_int (100 + rid))) ~now in
    servers.(rid) <- Some server;
    Base_wrapper.Conformance.make ~server ~n_objects ()
  in
  let runtime = Runtime.create ~engine_config ?profile ~config ~make_wrapper ~n_clients () in
  engine_cell := Some (Runtime.engine runtime);
  { runtime; servers = Array.map Option.get servers; impl_of }

(** A deterministic register-array service: the lightest replicated system
    the runtime can host, used by the saturation benchmarks (E15) and the
    batching-equivalence property test.  Unlike the test kv service and the
    NFS wrapper it is {e stamp-free} — no agreed clock value enters the
    state — so the abstract-state digest after a workload is a function of
    the writes alone, identical across batch sizes, pipelining windows and
    schedules.  Operations: ["set:<i>:<v>"] -> ["ok"], ["get:<i>"] -> the
    slot's value. *)
type registers = {
  reg_runtime : Runtime.t;
  slots : string array array;  (** concrete state, per replica *)
}

let registers_wrapper ~n_objects slots : Service.wrapper =
  let execute ~client:_ ~operation ~nondet:_ ~read_only:_ ~modify =
    match String.split_on_char ':' operation with
    | [ "set"; i; v ] ->
      let i = int_of_string i in
      modify i;
      slots.(i) <- v;
      "ok"
    | [ "get"; i ] -> slots.(int_of_string i)
    | _ -> "bad-op"
  in
  {
    Service.name = "registers";
    n_objects;
    execute;
    get_obj = (fun i -> slots.(i));
    put_objs = (fun objs -> List.iter (fun (i, data) -> slots.(i) <- data) objs);
    restart = (fun () -> ());
    (* Stamp-free: the service consumes no non-determinism, so the primary
       proposes nothing and backups accept exactly that. *)
    propose_nondet = (fun ~clock_us:_ ~operation:_ -> "");
    check_nondet = (fun ~clock_us:_ ~operation:_ ~nondet -> String.equal nondet "");
    (* Both operations name their slot in the second field; that index is
       the whole footprint, which makes the registers service the natural
       conflict-free workload for the shard-scaling bench (E18). *)
    oids_of_op =
      (fun ~operation ->
        match String.split_on_char ':' operation with
        | [ "set"; i; _ ] | [ "get"; i ] -> (
          match int_of_string_opt i with
          | Some i when i >= 0 && i < n_objects -> [ i ]
          | Some _ | None -> [])
        | _ -> []);
  }

let make_registers ?(seed = 1L) ?(f = 1) ?(checkpoint_period = 64) ?(n_objects = 64)
    ?(n_clients = 1) ?(shards = 1) ?drop_p ?batch_max ?max_inflight ?client_timeout_us
    ?viewchange_timeout_us ?standbys ?profile () =
  let shard_bounds =
    if shards <= 1 then [||] else Types.uniform_shards ~shards ~n_objects
  in
  let config =
    Types.make_config ~checkpoint_period ~log_window:(2 * checkpoint_period) ~shard_bounds
      ?batch_max ?max_inflight ?client_timeout_us ?viewchange_timeout_us ?standbys ~f
      ~n_clients ()
  in
  let engine_config =
    let base =
      Engine.default_config ~size_of:Runtime.msg_size ~label_of:Runtime.msg_label
    in
    {
      base with
      seed;
      drop_p = Option.value drop_p ~default:base.drop_p;
      kind_of = Runtime.msg_kind;
    }
  in
  let slots = Array.init (Types.group_size config) (fun _ -> Array.make n_objects "") in
  let make_wrapper rid = registers_wrapper ~n_objects slots.(rid) in
  let runtime = Runtime.create ~engine_config ?profile ~config ~make_wrapper ~n_clients () in
  { reg_runtime = runtime; slots }

(** An unreplicated off-the-shelf server used as the comparison baseline:
    direct calls, with network and service time accounted analytically using
    the same constants as the simulator. *)
type direct = {
  server : S.t;
  mutable elapsed_us : float;
  cost : Cost_model.t;
  rtt_us : float;
}

let make_direct ?(seed = 77L) ?(impl = "inode") ?(cost = Cost_model.default) () =
  let clock = ref 0L in
  let now () =
    clock := Int64.add !clock 211L;
    !clock
  in
  let server = make_impl impl ~seed ~now in
  (* Same switched LAN as the simulator's default: 60 us propagation each
     way plus the average exponential jitter. *)
  { server; elapsed_us = 0.0; cost; rtt_us = 2.0 *. (60.0 +. 15.0) }

let direct_charge d ~read_only ~bytes =
  d.elapsed_us <-
    d.elapsed_us +. d.rtt_us
    +. (float_of_int (bytes * 8) /. 100e6 *. 1e6)
    +. Cost_model.op_cost_us d.cost ~read_only ~bytes
