type behavior = B_honest | B_mute | B_lie | B_equivocate

type action =
  | Crash of int
  | Reboot of int
  | Promote of int
  | Crash_standby of int
  | Partition of int list * int list
  | Heal
  | Delay_link of { src : int; dst : int; extra_us : int; for_us : int }
  | Drop_link of { src : int; dst : int; p : float; for_us : int }
  | Corrupt_link of { src : int; dst : int; p : float; for_us : int }
  | Set_behavior of { node : int; behavior : behavior; shard : int option }
  | Attack_pre_prepare of {
      node : int;
      mute_p : float;
      delay_us : int;
      for_us : int;
      shard : int option;
    }

type event = { at_us : int; action : action }

type t = event list

let behavior_name = function
  | B_honest -> "honest"
  | B_mute -> "mute"
  | B_lie -> "lie"
  | B_equivocate -> "equivocate"

let behavior_of_name = function
  | "honest" -> Some B_honest
  | "mute" -> Some B_mute
  | "lie" -> Some B_lie
  | "equivocate" -> Some B_equivocate
  | _ -> None

(* --- parsing --------------------------------------------------------------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

(* "500ms" -> 500_000; suffix is mandatory so a bare number can never be
   misread as the wrong unit. *)
let duration_us s =
  let n = String.length s in
  let digits = ref 0 in
  while !digits < n && s.[!digits] >= '0' && s.[!digits] <= '9' do
    incr digits
  done;
  if !digits = 0 then bad "expected a duration, got %S" s;
  let value =
    match int_of_string_opt (String.sub s 0 !digits) with
    | Some v -> v
    | None -> bad "duration out of range: %S" s
  in
  match String.sub s !digits (n - !digits) with
  | "us" -> value
  | "ms" -> value * 1_000
  | "s" -> value * 1_000_000
  | u -> bad "unknown time unit %S in %S (use us/ms/s)" u s

let node_id s =
  match int_of_string_opt s with
  | Some v when v >= 0 -> v
  | Some _ | None -> bad "expected a node id, got %S" s

(* A link endpoint: a node id or the '*' wildcard (encoded as -1). *)
let endpoint s = if String.equal s "*" then -1 else node_id s

(* "1->2", "*->3" *)
let link s =
  match String.index_opt s '-' with
  | Some i
    when i + 1 < String.length s
         && s.[i + 1] = '>'
         && i > 0
         && i + 2 < String.length s ->
    (endpoint (String.sub s 0 i), endpoint (String.sub s (i + 2) (String.length s - i - 2)))
  | _ -> bad "expected a link SRC->DST, got %S" s

(* "key=value" with a specific expected key. *)
let keyed key s =
  match String.index_opt s '=' with
  | Some i when String.equal (String.sub s 0 i) key ->
    String.sub s (i + 1) (String.length s - i - 1)
  | _ -> bad "expected %s=..., got %S" key s

(* Optional "shard=K" qualifier at the head of [toks]; omitted means the
   fault targets the node across every shard. *)
let shard_qualifier toks =
  match toks with
  | s :: rest when String.length s > 6 && String.equal (String.sub s 0 6) "shard=" ->
    (Some (node_id (keyed "shard" s)), rest)
  | _ -> (None, toks)

let probability s =
  match float_of_string_opt s with
  | Some p when p >= 0.0 && p <= 1.0 -> p
  | Some _ | None -> bad "expected a probability in [0,1], got %S" s

let window = function
  | [ "for"; d ] -> duration_us d
  | toks -> bad "expected 'for DURATION', got %S" (String.concat " " toks)

let split_groups toks =
  let rec go acc = function
    | [] -> bad "partition needs a '/' separating the two groups"
    | "/" :: rest -> (List.rev acc, rest)
    | x :: rest -> go (node_id x :: acc) rest
  in
  let a, b = go [] toks in
  if a = [] || b = [] then bad "partition groups must be non-empty";
  (a, List.map node_id b)

let action_of_tokens = function
  | [ "crash"; n ] -> Crash (node_id n)
  | [ "reboot"; n ] -> Reboot (node_id n)
  | [ "promote"; n ] -> Promote (node_id n)
  | [ "crash-standby"; n ] -> Crash_standby (node_id n)
  | "partition" :: groups ->
    let a, b = split_groups groups in
    Partition (a, b)
  | [ "heal" ] -> Heal
  | "delay" :: l :: extra :: rest ->
    let src, dst = link l in
    Delay_link { src; dst; extra_us = duration_us (keyed "extra" extra); for_us = window rest }
  | "drop" :: l :: p :: rest ->
    let src, dst = link l in
    Drop_link { src; dst; p = probability (keyed "p" p); for_us = window rest }
  | "corrupt" :: l :: p :: rest ->
    let src, dst = link l in
    Corrupt_link { src; dst; p = probability (keyed "p" p); for_us = window rest }
  | "behavior" :: n :: b :: rest -> (
    let shard, rest = shard_qualifier rest in
    match (behavior_of_name b, rest) with
    | Some behavior, [] -> Set_behavior { node = node_id n; behavior; shard }
    | Some _, toks -> bad "unexpected tokens after behavior: %S" (String.concat " " toks)
    | None, _ -> bad "unknown behavior %S (honest/mute/lie/equivocate)" b)
  | "attack-preprepare" :: n :: mute :: delay :: rest ->
    let shard, rest = shard_qualifier rest in
    Attack_pre_prepare
      {
        node = node_id n;
        mute_p = probability (keyed "mute" mute);
        delay_us = duration_us (keyed "delay" delay);
        for_us = window rest;
        shard;
      }
  | toks -> bad "unknown action %S" (String.concat " " toks)

let event_of_line line =
  match String.split_on_char ' ' line |> List.filter (fun s -> not (String.equal s "")) with
  | [] -> None
  | [ "at"; time ] -> bad "line %S has a time but no action" time
  | "at" :: time :: action -> Some { at_us = duration_us time; action = action_of_tokens action }
  | tok :: _ -> bad "expected 'at TIME ACTION', got %S..." tok

let strip_comment line =
  match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go ln acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      let line = strip_comment line |> String.trim in
      match event_of_line line with
      | None -> go (ln + 1) acc rest
      | Some ev -> go (ln + 1) (ev :: acc) rest
      | exception Bad msg -> Error (Printf.sprintf "line %d: %s" ln msg))
  in
  go 1 [] lines

(* --- printing -------------------------------------------------------------- *)

let endpoint_str e = if e = -1 then "*" else string_of_int e

let shard_str = function Some k -> Printf.sprintf " shard=%d" k | None -> ""

let ints xs = String.concat " " (List.map string_of_int xs)

let action_to_string = function
  | Crash n -> Printf.sprintf "crash %d" n
  | Reboot n -> Printf.sprintf "reboot %d" n
  | Promote n -> Printf.sprintf "promote %d" n
  | Crash_standby n -> Printf.sprintf "crash-standby %d" n
  | Partition (a, b) -> Printf.sprintf "partition %s / %s" (ints a) (ints b)
  | Heal -> "heal"
  | Delay_link { src; dst; extra_us; for_us } ->
    Printf.sprintf "delay %s->%s extra=%dus for %dus" (endpoint_str src) (endpoint_str dst)
      extra_us for_us
  | Drop_link { src; dst; p; for_us } ->
    Printf.sprintf "drop %s->%s p=%g for %dus" (endpoint_str src) (endpoint_str dst) p for_us
  | Corrupt_link { src; dst; p; for_us } ->
    Printf.sprintf "corrupt %s->%s p=%g for %dus" (endpoint_str src) (endpoint_str dst) p
      for_us
  | Set_behavior { node; behavior; shard } ->
    Printf.sprintf "behavior %d %s%s" node (behavior_name behavior) (shard_str shard)
  | Attack_pre_prepare { node; mute_p; delay_us; for_us; shard } ->
    Printf.sprintf "attack-preprepare %d mute=%g delay=%dus%s for %dus" node mute_p delay_us
      (shard_str shard) for_us

let event_to_string ev = Printf.sprintf "at %dus %s" ev.at_us (action_to_string ev.action)

let to_string plan = String.concat "" (List.map (fun ev -> event_to_string ev ^ "\n") plan)

let pp fmt plan = Format.pp_print_string fmt (to_string plan)
