(** Declarative fault plans: a timed schedule of faults to inject into a
    running system.

    A plan is a list of events, each firing at a virtual-time offset from
    the start of the run.  The DSL is line-oriented (one event per line,
    [#] starts a comment); times and durations take a [us]/[ms]/[s]
    suffix.  Link endpoints are node ids or [*] (any node):

    {v
    # crash-fault schedule
    at 500ms crash 0
    at 900ms reboot 0
    at 700ms promote 4
    at 750ms crash-standby 4
    at 1s partition 0 1 / 2 3
    at 2s heal
    at 1s delay 1->2 extra=300us for 500ms
    at 1s drop *->2 p=0.3 for 500ms
    at 1s corrupt 1->* p=0.25 for 200ms
    at 1s behavior 0 equivocate
    at 1s behavior 1 mute shard=1
    at 1s attack-preprepare 0 mute=0.5 delay=2ms for 1s
    v}

    The module is deliberately protocol-agnostic: it names node ids and
    abstract behaviours, never replica types, so it lives with the
    simulator and is interpreted by the BASE runtime
    ([Base_core.Runtime.apply_faultplan]). *)

(** Abstract replica behaviours; the runtime maps these onto the protocol's
    fault-injection modes. *)
type behavior = B_honest | B_mute | B_lie | B_equivocate

type action =
  | Crash of int  (** fail-stop: the node loses every message and timer *)
  | Reboot of int  (** the crashed node comes back with its state intact *)
  | Promote of int
      (** migration recovery: promote warm standby [id] into the next slot
          of the runtime's rolling cursor (see
          [Base_core.Runtime.apply_faultplan]); used to stage promotion
          races against [crash-standby] *)
  | Crash_standby of int
      (** fail-stop a warm standby — like [Crash] but validated against the
          standby id range by the executor, so plans read unambiguously *)
  | Partition of int list * int list  (** block traffic between two groups *)
  | Heal  (** remove the current partition *)
  | Delay_link of { src : int; dst : int; extra_us : int; for_us : int }
      (** add [extra_us] of delay on matching links for [for_us] *)
  | Drop_link of { src : int; dst : int; p : float; for_us : int }
  | Corrupt_link of { src : int; dst : int; p : float; for_us : int }
  | Set_behavior of { node : int; behavior : behavior; shard : int option }
      (** [shard]: when the object space is sharded, restrict the behaviour
          to the node's replica cell for that one agreement instance
          (["behavior 0 mute shard=1"]); [None] applies it across every
          shard the node hosts *)
  | Attack_pre_prepare of {
      node : int;
      mute_p : float;
      delay_us : int;
      for_us : int;
      shard : int option;
    }
      (** Byzantine primary: while the window is open, node [node] mutes
          each of its pre-prepares with probability [mute_p] and delays the
          ones it does send by [delay_us].  [shard] restricts the attack to
          pre-prepares of one agreement instance
          (["attack-preprepare 0 mute=0.5 delay=2ms shard=1 for 1s"]). *)

type event = { at_us : int; action : action }

type t = event list

val parse : string -> (t, string) result
(** Parse DSL text; errors carry the 1-based line number.  Events keep
    their textual order (the executor's timers order them by [at_us]
    anyway). *)

val to_string : t -> string
(** Canonical rendering, one event per line with every duration in [us];
    [parse (to_string p)] reproduces [p] whenever the plan's probabilities
    have short decimal forms (the round-trip property fuzzed by the test
    suite). *)

val behavior_name : behavior -> string

val pp : Format.formatter -> t -> unit
