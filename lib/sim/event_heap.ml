(* Flat binary min-heap specialised for the engine's event queue.

   The generic Base_util.Heap boxes every element in an {value; seq}
   record and calls a closure comparator through two indirections per
   sift step; at simulator scale (one push+pop per message and timer)
   that is pure allocator and branch-predictor pressure.  Here the key
   is split into two unboxed [int array]s — event time and insertion
   sequence — so sift comparisons touch no heap blocks, and payloads
   live in a parallel array moved only by index.

   Ordering is the same total order the generic heap used: (time, seq)
   lexicographic, where [seq] is the global insertion counter.  Keys are
   therefore unique, so pop order is exactly sorted (time, seq) — any
   heap implementing this order dequeues identically, which is what the
   engine-determinism differential suite pins.

   Times are simulator microseconds: [Sim_time.t] values built via
   [of_us]/[add] always fit in a native [int] (63 bits = ~292,000 years
   of simulated time), checked at [push]. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable size : int;
  mutable next_seq : int;
  mutable last_time : int;  (* time key of the most recently popped event *)
}

let create () =
  { times = [||]; seqs = [||]; payloads = [||]; size = 0; next_seq = 0; last_time = 0 }

let length t = t.size

let is_empty t = t.size = 0

(* (time, seq) at [i] orders strictly before (time, seq) at [j]. *)
let before t i j =
  let ti = Array.unsafe_get t.times i and tj = Array.unsafe_get t.times j in
  ti < tj || (ti = tj && Array.unsafe_get t.seqs i < Array.unsafe_get t.seqs j)

let swap t i j =
  let tt = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tt;
  let ts = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- ts;
  let tp = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- tp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t l !smallest then smallest := l;
  if r < t.size && before t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t payload =
  let cap = Array.length t.times in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let times = Array.make new_cap 0 in
  Array.blit t.times 0 times 0 t.size;
  t.times <- times;
  let seqs = Array.make new_cap 0 in
  Array.blit t.seqs 0 seqs 0 t.size;
  t.seqs <- seqs;
  (* The pushed payload doubles as the filler: fresh cells are written
     before they are ever read, and using it avoids needing a dummy. *)
  let payloads = Array.make new_cap payload in
  Array.blit t.payloads 0 payloads 0 t.size;
  t.payloads <- payloads

let push t ~time payload =
  Base_util.Invariant.require
    (Int64.compare time 0L >= 0 && Int64.compare time (Int64.of_int max_int) <= 0)
    "Event_heap.push: time out of native int range";
  if t.size = Array.length t.times then grow t payload;
  let i = t.size in
  t.times.(i) <- Int64.to_int time;
  t.seqs.(i) <- t.next_seq;
  t.payloads.(i) <- payload;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t i

let min_time t = if t.size = 0 then None else Some (Int64.of_int t.times.(0))

let pop_exn t =
  Base_util.Invariant.require (t.size > 0) "Event_heap.pop_exn: empty";
  let payload = t.payloads.(0) in
  t.last_time <- t.times.(0);
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.times.(0) <- t.times.(t.size);
    t.seqs.(0) <- t.seqs.(t.size);
    t.payloads.(0) <- t.payloads.(t.size);
    sift_down t 0
  end;
  payload

let last_time t = Int64.of_int t.last_time

let pop t =
  if t.size = 0 then None
  else begin
    let payload = pop_exn t in
    Some (last_time t, payload)
  end
