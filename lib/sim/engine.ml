module Prng = Base_util.Prng

type 'msg event =
  | Deliver of { src : int; msg : 'msg }
  | Timer of { tag : string; payload : int }

type 'msg config = {
  seed : int64;
  size_of : 'msg -> int;
  label_of : 'msg -> string;
  kind_of : 'msg -> string;
  latency_us : int;
  jitter_us : int;
  bandwidth_bps : int;
  drop_p : float;
  clock_skew_us : int;
  clock_drift_ppm : int;
}

let base_label label =
  match String.index_opt label '(' with Some i -> String.sub label 0 i | None -> label

let default_config ~size_of ~label_of =
  (* Default [kind_of] derives the accounting key from the trace label.
     Correct, but it formats the label's parameters on every send — hot
     message types should override the field with a constant-string
     function ([{ base with kind_of = ... }]). *)
  let kind_of msg = base_label (label_of msg) in
  {
    seed = 1L;
    size_of;
    label_of;
    kind_of;
    latency_us = 60;
    jitter_us = 15;
    bandwidth_bps = 100_000_000;
    drop_p = 0.0;
    clock_skew_us = 50_000;
    clock_drift_ppm = 100;
  }

type counters = {
  mutable sent_msgs : int;
  mutable sent_bytes : int;
  mutable recv_msgs : int;
  mutable recv_bytes : int;
  mutable dropped_msgs : int;
  mutable corrupted_msgs : int;
}

let fresh_counters () =
  {
    sent_msgs = 0;
    sent_bytes = 0;
    recv_msgs = 0;
    recv_bytes = 0;
    dropped_msgs = 0;
    corrupted_msgs = 0;
  }

(* A scheduled fault on a set of links; [-1] endpoints are wildcards.
   Expired windows are pruned lazily on the next send. *)
type fault_kind = F_delay of int | F_drop of float | F_corrupt of float

type link_fault = {
  lf_src : int;
  lf_dst : int;
  lf_kind : fault_kind;
  lf_until : Sim_time.t;
}

(* Live gauges exported when a metrics registry is attached; the engine is
   otherwise observable only through its counter records. *)
type obs = {
  om : Base_obs.Metrics.t;
  og_queue : Base_obs.Metrics.gauge;
  oc_corrupted : Base_obs.Metrics.counter;
  og_inflight : (int, Base_obs.Metrics.gauge) Hashtbl.t;
}

type 'msg node = {
  handler : 'msg t -> 'msg event -> unit;
  mutable up : bool;
  clock_offset : int64;
  clock_drift : float; (* multiplicative, close to 1.0 *)
  counters : counters;
  mutable inflight : int;  (* queued deliveries addressed to this node *)
}

and 'msg queued =
  | Q_deliver of { src : int; dst : int; msg : 'msg; size : int }
  | Q_timer of { id : int; node : int; tag : string; payload : int }

and 'msg t = {
  config : 'msg config;
  rng : Prng.t;
  queue : 'msg queued Event_heap.t;
  (* Nodes indexed by id: ids are dense (replicas, clients, then the
     orchestrator/injector pseudo-nodes), so an option array turns the
     two table lookups per message into loads. *)
  mutable nodes : 'msg node option array;
  mutable n_nodes : int;
  mutable time : Sim_time.t;
  mutable next_timer_id : int;
  cancelled : (int, unit) Hashtbl.t;
  mutable partition_groups : (int list * int list) option;
  totals : counters;
  (* Per-message-type traffic breakdown, keyed by [config.kind_of]. *)
  labels : (string, counters) Hashtbl.t;
  mutable max_queue_depth : int;
  mutable tracers : (Sim_time.t -> string -> unit) list;
  mutable link_faults : link_fault list;
  mutable corruptor : (Prng.t -> 'msg -> 'msg option) option;
  mutable obs : obs option;
  mutable prof : Base_obs.Profile.t;
  mutable p_send : Base_obs.Profile.probe;
  mutable p_dispatch : Base_obs.Profile.probe;
}

let create config =
  {
    config;
    rng = Prng.create config.seed;
    queue = Event_heap.create ();
    nodes = [||];
    n_nodes = 0;
    time = Sim_time.zero;
    next_timer_id = 0;
    cancelled = Hashtbl.create 16;
    partition_groups = None;
    totals = fresh_counters ();
    labels = Hashtbl.create 16;
    max_queue_depth = 0;
    tracers = [];
    link_faults = [];
    corruptor = None;
    obs = None;
    prof = Base_obs.Profile.disabled;
    p_send = Base_obs.Profile.probe Base_obs.Profile.disabled "engine.send";
    p_dispatch = Base_obs.Profile.probe Base_obs.Profile.disabled "engine.dispatch";
  }

let label_counters_of t msg =
  let key = t.config.kind_of msg in
  match Hashtbl.find_opt t.labels key with
  | Some c -> c
  | None ->
    let c = fresh_counters () in
    Hashtbl.replace t.labels key c;
    c

let note_queue_depth t =
  let depth = Event_heap.length t.queue in
  if depth > t.max_queue_depth then t.max_queue_depth <- depth;
  match t.obs with
  | None -> ()
  | Some o -> Base_obs.Metrics.set o.og_queue (float_of_int depth)

let inflight_gauge o id =
  match Hashtbl.find_opt o.og_inflight id with
  | Some g -> g
  | None ->
    let g = Base_obs.Metrics.gauge o.om (Printf.sprintf "engine.inflight.n%02d" id) in
    Hashtbl.replace o.og_inflight id g;
    g

let find_node t id = if id >= 0 && id < Array.length t.nodes then t.nodes.(id) else None

let note_inflight t id delta =
  match find_node t id with
  | None -> ()
  | Some n ->
    n.inflight <- n.inflight + delta;
    (match t.obs with
    | None -> ()
    | Some o -> Base_obs.Metrics.set (inflight_gauge o id) (float_of_int n.inflight))

(* Callers guard every call on [t.tracers <> []]: kasprintf renders the
   format eagerly, which would otherwise put a sprintf on the per-message
   hot path of every untraced run. *)
let trace t fmt =
  Format.kasprintf (fun s -> List.iter (fun f -> f t.time s) t.tracers) fmt

let add_node t ~id handler =
  if find_node t id <> None then invalid_arg "Engine.add_node: duplicate id";
  if id < 0 then invalid_arg "Engine.add_node: negative id";
  if id >= Array.length t.nodes then begin
    let cap = max 16 (max (id + 1) (2 * Array.length t.nodes)) in
    let nodes = Array.make cap None in
    Array.blit t.nodes 0 nodes 0 (Array.length t.nodes);
    t.nodes <- nodes
  end;
  (* Offsets are non-negative (clocks ahead of virtual time by up to twice
     the skew) so local wall clocks never read negative near the origin. *)
  let skew = t.config.clock_skew_us in
  let offset = if skew = 0 then 0L else Int64.of_int (Prng.int t.rng (2 * skew)) in
  let ppm = t.config.clock_drift_ppm in
  let drift =
    if ppm = 0 then 1.0 else 1.0 +. (float_of_int (Prng.int t.rng (2 * ppm) - ppm) /. 1e6)
  in
  t.nodes.(id) <-
    Some
      {
        handler;
        up = true;
        clock_offset = offset;
        clock_drift = drift;
        counters = fresh_counters ();
        inflight = 0;
      };
  t.n_nodes <- t.n_nodes + 1

let node_count t = t.n_nodes

let get_node t id =
  match find_node t id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Engine: unknown node %d" id)

let set_node_up t id up = (get_node t id).up <- up

let node_is_up t id = (get_node t id).up

let now t = t.time

let local_clock t id =
  let n = get_node t id in
  Int64.add (Int64.of_float (Int64.to_float t.time *. n.clock_drift)) n.clock_offset

let blocked t src dst =
  match t.partition_groups with
  | None -> false
  | Some (a, b) -> (List.mem src a && List.mem dst b) || (List.mem src b && List.mem dst a)

let link_matches f ~src ~dst =
  (f.lf_src = -1 || f.lf_src = src) && (f.lf_dst = -1 || f.lf_dst = dst)

(* Prune expired windows, then select the ones covering this link.  Pruning
   happens on the send path so an idle engine holds expired faults — harmless,
   they match nothing once [lf_until] passes. *)
let active_faults t ~src ~dst =
  match t.link_faults with
  | [] -> []
  | fs ->
    t.link_faults <- List.filter (fun f -> Sim_time.compare f.lf_until t.time > 0) fs;
    List.filter (fun f -> link_matches f ~src ~dst) t.link_faults

let add_fault t ~src ~dst ~until kind =
  t.link_faults <- { lf_src = src; lf_dst = dst; lf_kind = kind; lf_until = until } :: t.link_faults

let fault_delay t ~src ~dst ~extra_us ~until = add_fault t ~src ~dst ~until (F_delay extra_us)

let fault_drop t ~src ~dst ~p ~until = add_fault t ~src ~dst ~until (F_drop p)

let fault_corrupt t ~src ~dst ~p ~until = add_fault t ~src ~dst ~until (F_corrupt p)

let clear_link_faults t = t.link_faults <- []

let set_corruptor t f = t.corruptor <- Some f

let send t ?(extra_us = 0) ~src ~dst msg =
  Base_obs.Profile.start t.prof t.p_send;
  let size = t.config.size_of msg in
  let sender = get_node t src in
  let per_label = label_counters_of t msg in
  sender.counters.sent_msgs <- sender.counters.sent_msgs + 1;
  sender.counters.sent_bytes <- sender.counters.sent_bytes + size;
  t.totals.sent_msgs <- t.totals.sent_msgs + 1;
  t.totals.sent_bytes <- t.totals.sent_bytes + size;
  per_label.sent_msgs <- per_label.sent_msgs + 1;
  per_label.sent_bytes <- per_label.sent_bytes + size;
  let faults = active_faults t ~src ~dst in
  let drop why =
    t.totals.dropped_msgs <- t.totals.dropped_msgs + 1;
    sender.counters.dropped_msgs <- sender.counters.dropped_msgs + 1;
    per_label.dropped_msgs <- per_label.dropped_msgs + 1;
    if t.tracers <> [] then
      trace t "drop  %d->%d %s (%dB)%s" src dst (t.config.label_of msg) size why
  in
  let dropped =
    blocked t src dst
    || (t.config.drop_p > 0.0 && Prng.bernoulli t.rng t.config.drop_p)
    || List.exists
         (fun f ->
           match f.lf_kind with
           | F_drop p -> p > 0.0 && Prng.bernoulli t.rng p
           | F_delay _ | F_corrupt _ -> false)
         faults
  in
  (if dropped then drop ""
   else begin
     let deliver ~corrupted msg' =
       if corrupted then begin
         t.totals.corrupted_msgs <- t.totals.corrupted_msgs + 1;
         sender.counters.corrupted_msgs <- sender.counters.corrupted_msgs + 1;
         per_label.corrupted_msgs <- per_label.corrupted_msgs + 1;
         (match t.obs with
         | None -> ()
         | Some o -> Base_obs.Metrics.incr o.oc_corrupted);
         if t.tracers <> [] then
           trace t "crpt  %d->%d %s (%dB)" src dst (t.config.label_of msg) size
       end;
       let fault_extra =
         List.fold_left
           (fun acc f -> match f.lf_kind with F_delay d -> acc + d | _ -> acc)
           extra_us faults
       in
       let jitter =
         if t.config.jitter_us = 0 then 0.0
         else Prng.exponential t.rng ~mean:(float_of_int t.config.jitter_us)
       in
       let tx_us =
         if t.config.bandwidth_bps = 0 then 0.0
         else float_of_int (size * 8) /. float_of_int t.config.bandwidth_bps *. 1e6
       in
       let delay =
         Sim_time.of_us (t.config.latency_us + fault_extra + int_of_float (jitter +. tx_us))
       in
       if t.tracers <> [] then
         trace t "send  %d->%d %s (%dB)" src dst (t.config.label_of msg) size;
       Event_heap.push t.queue ~time:(Sim_time.add t.time delay)
         (Q_deliver { src; dst; msg = msg'; size });
       note_inflight t dst 1;
       note_queue_depth t
     in
     let wants_corrupt =
       List.exists
         (fun f ->
           match f.lf_kind with
           | F_corrupt p -> p > 0.0 && Prng.bernoulli t.rng p
           | F_delay _ | F_drop _ -> false)
         faults
     in
     if not wants_corrupt then deliver ~corrupted:false msg
     else
       (* A corrupt window needs a message-type-aware corruptor; without one
          (or when it declines) the mangled bytes are unparseable noise and
          the message is simply lost. *)
       match t.corruptor with
       | None -> drop " (corrupt)"
       | Some c -> (
         match c t.rng msg with
         | Some msg' -> deliver ~corrupted:true msg'
         | None -> drop " (corrupt)")
   end);
  Base_obs.Profile.stop t.prof t.p_send

let multicast t ?extra_us ~src ~dsts msg =
  List.iter (fun dst -> send t ?extra_us ~src ~dst msg) dsts

let partition t a b = t.partition_groups <- Some (a, b)

let heal t = t.partition_groups <- None

let set_timer t ~node ~after ~tag ~payload =
  let id = t.next_timer_id in
  t.next_timer_id <- id + 1;
  Event_heap.push t.queue ~time:(Sim_time.add t.time after)
    (Q_timer { id; node; tag; payload });
  note_queue_depth t;
  id

let cancel_timer t id = Hashtbl.replace t.cancelled id ()

let dispatch t queued =
  Base_obs.Profile.start t.prof t.p_dispatch;
  (match queued with
  | Q_deliver { src; dst; msg; size } -> begin
    note_inflight t dst (-1);
    match find_node t dst with
    | None -> ()
    | Some node ->
      let per_label = label_counters_of t msg in
      if node.up then begin
        node.counters.recv_msgs <- node.counters.recv_msgs + 1;
        node.counters.recv_bytes <- node.counters.recv_bytes + size;
        t.totals.recv_msgs <- t.totals.recv_msgs + 1;
        t.totals.recv_bytes <- t.totals.recv_bytes + size;
        per_label.recv_msgs <- per_label.recv_msgs + 1;
        per_label.recv_bytes <- per_label.recv_bytes + size;
        if t.tracers <> [] then trace t "deliv %d->%d %s" src dst (t.config.label_of msg);
        node.handler t (Deliver { src; msg })
      end
      else begin
        t.totals.dropped_msgs <- t.totals.dropped_msgs + 1;
        per_label.dropped_msgs <- per_label.dropped_msgs + 1;
        if t.tracers <> [] then
          trace t "lost  %d->%d %s (node down)" src dst (t.config.label_of msg)
      end
  end
  | Q_timer { id; node; tag; payload } ->
    if not (Hashtbl.mem t.cancelled id) then begin
      match find_node t node with
      | Some n when n.up -> n.handler t (Timer { tag; payload })
      | Some _ | None -> ()
    end
    else Hashtbl.remove t.cancelled id);
  Base_obs.Profile.stop t.prof t.p_dispatch

let step t =
  if Event_heap.is_empty t.queue then false
  else begin
    let queued = Event_heap.pop_exn t.queue in
    let time = Event_heap.last_time t.queue in
    if Sim_time.compare time t.time > 0 then t.time <- time;
    note_queue_depth t;
    dispatch t queued;
    true
  end

let run ?until ?max_events t =
  let handled = ref 0 in
  let continue () =
    (match max_events with Some m -> !handled < m | None -> true)
    &&
    match (until, Event_heap.min_time t.queue) with
    | _, None -> false
    | None, Some _ -> true
    | Some limit, Some next -> Sim_time.(next <= limit)
  in
  while continue () do
    ignore (step t);
    incr handled
  done;
  match until with
  | Some limit when Sim_time.(t.time < limit) -> t.time <- limit
  | _ -> ()

let advance_to t limit = run ~until:limit t

let prng t = t.rng

let node_counters t id = (get_node t id).counters

let total_counters t = t.totals

let label_counters t =
  Hashtbl.fold (fun label c acc -> (label, c) :: acc) t.labels []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let queue_depth t = Event_heap.length t.queue

let max_queue_depth t = t.max_queue_depth

let node_inflight t id = (get_node t id).inflight

let set_tracer t f = t.tracers <- t.tracers @ [ f ]

let attach_metrics t m =
  let o =
    {
      om = m;
      og_queue = Base_obs.Metrics.gauge m "engine.queue_depth";
      oc_corrupted = Base_obs.Metrics.counter m "engine.corrupted_msgs";
      og_inflight = Hashtbl.create 16;
    }
  in
  t.obs <- Some o;
  note_queue_depth t

let attach_profile t p =
  t.prof <- p;
  t.p_send <- Base_obs.Profile.probe p "engine.send";
  t.p_dispatch <- Base_obs.Profile.probe p "engine.dispatch"
