module Prng = Base_util.Prng

type 'msg event =
  | Deliver of { src : int; msg : 'msg }
  | Timer of { tag : string; payload : int }

type 'msg config = {
  seed : int64;
  size_of : 'msg -> int;
  label_of : 'msg -> string;
  latency_us : int;
  jitter_us : int;
  bandwidth_bps : int;
  drop_p : float;
  clock_skew_us : int;
  clock_drift_ppm : int;
}

let default_config ~size_of ~label_of =
  {
    seed = 1L;
    size_of;
    label_of;
    latency_us = 60;
    jitter_us = 15;
    bandwidth_bps = 100_000_000;
    drop_p = 0.0;
    clock_skew_us = 50_000;
    clock_drift_ppm = 100;
  }

type counters = {
  mutable sent_msgs : int;
  mutable sent_bytes : int;
  mutable recv_msgs : int;
  mutable recv_bytes : int;
  mutable dropped_msgs : int;
}

let fresh_counters () =
  { sent_msgs = 0; sent_bytes = 0; recv_msgs = 0; recv_bytes = 0; dropped_msgs = 0 }

type 'msg node = {
  handler : 'msg t -> 'msg event -> unit;
  mutable up : bool;
  clock_offset : int64;
  clock_drift : float; (* multiplicative, close to 1.0 *)
  counters : counters;
}

and 'msg queued =
  | Q_deliver of { src : int; dst : int; msg : 'msg; size : int }
  | Q_timer of { id : int; node : int; tag : string; payload : int }

and 'msg t = {
  config : 'msg config;
  rng : Prng.t;
  queue : (Sim_time.t * 'msg queued) Base_util.Heap.t;
  nodes : (int, 'msg node) Hashtbl.t;
  mutable time : Sim_time.t;
  mutable next_timer_id : int;
  cancelled : (int, unit) Hashtbl.t;
  mutable partition_groups : (int list * int list) option;
  totals : counters;
  (* Per-message-type traffic breakdown, keyed by the label with its
     parameter list stripped ("PRE-PREPARE(v=0,n=2)" -> "PRE-PREPARE"). *)
  labels : (string, counters) Hashtbl.t;
  mutable max_queue_depth : int;
  mutable tracer : (Sim_time.t -> string -> unit) option;
}

let create config =
  {
    config;
    rng = Prng.create config.seed;
    queue = Base_util.Heap.create ~cmp:(fun (a, _) (b, _) -> Sim_time.compare a b);
    nodes = Hashtbl.create 16;
    time = Sim_time.zero;
    next_timer_id = 0;
    cancelled = Hashtbl.create 16;
    partition_groups = None;
    totals = fresh_counters ();
    labels = Hashtbl.create 16;
    max_queue_depth = 0;
    tracer = None;
  }

let base_label label =
  match String.index_opt label '(' with Some i -> String.sub label 0 i | None -> label

let label_counters_of t msg =
  let key = base_label (t.config.label_of msg) in
  match Hashtbl.find_opt t.labels key with
  | Some c -> c
  | None ->
    let c = fresh_counters () in
    Hashtbl.replace t.labels key c;
    c

let note_queue_depth t =
  let depth = Base_util.Heap.length t.queue in
  if depth > t.max_queue_depth then t.max_queue_depth <- depth

let trace t fmt =
  Format.kasprintf
    (fun s -> match t.tracer with None -> () | Some f -> f t.time s)
    fmt

let add_node t ~id handler =
  if Hashtbl.mem t.nodes id then invalid_arg "Engine.add_node: duplicate id";
  (* Offsets are non-negative (clocks ahead of virtual time by up to twice
     the skew) so local wall clocks never read negative near the origin. *)
  let skew = t.config.clock_skew_us in
  let offset = if skew = 0 then 0L else Int64.of_int (Prng.int t.rng (2 * skew)) in
  let ppm = t.config.clock_drift_ppm in
  let drift =
    if ppm = 0 then 1.0 else 1.0 +. (float_of_int (Prng.int t.rng (2 * ppm) - ppm) /. 1e6)
  in
  Hashtbl.replace t.nodes id
    { handler; up = true; clock_offset = offset; clock_drift = drift; counters = fresh_counters () }

let node_count t = Hashtbl.length t.nodes

let get_node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Engine: unknown node %d" id)

let set_node_up t id up = (get_node t id).up <- up

let node_is_up t id = (get_node t id).up

let now t = t.time

let local_clock t id =
  let n = get_node t id in
  Int64.add (Int64.of_float (Int64.to_float t.time *. n.clock_drift)) n.clock_offset

let blocked t src dst =
  match t.partition_groups with
  | None -> false
  | Some (a, b) -> (List.mem src a && List.mem dst b) || (List.mem src b && List.mem dst a)

let send t ~src ~dst msg =
  let size = t.config.size_of msg in
  let sender = get_node t src in
  let per_label = label_counters_of t msg in
  sender.counters.sent_msgs <- sender.counters.sent_msgs + 1;
  sender.counters.sent_bytes <- sender.counters.sent_bytes + size;
  t.totals.sent_msgs <- t.totals.sent_msgs + 1;
  t.totals.sent_bytes <- t.totals.sent_bytes + size;
  per_label.sent_msgs <- per_label.sent_msgs + 1;
  per_label.sent_bytes <- per_label.sent_bytes + size;
  let dropped =
    blocked t src dst
    || (t.config.drop_p > 0.0 && Prng.bernoulli t.rng t.config.drop_p)
  in
  if dropped then begin
    t.totals.dropped_msgs <- t.totals.dropped_msgs + 1;
    sender.counters.dropped_msgs <- sender.counters.dropped_msgs + 1;
    per_label.dropped_msgs <- per_label.dropped_msgs + 1;
    trace t "drop  %d->%d %s (%dB)" src dst (t.config.label_of msg) size
  end
  else begin
    let jitter =
      if t.config.jitter_us = 0 then 0.0
      else Prng.exponential t.rng ~mean:(float_of_int t.config.jitter_us)
    in
    let tx_us =
      if t.config.bandwidth_bps = 0 then 0.0
      else float_of_int (size * 8) /. float_of_int t.config.bandwidth_bps *. 1e6
    in
    let delay =
      Sim_time.of_us (t.config.latency_us + int_of_float (jitter +. tx_us))
    in
    trace t "send  %d->%d %s (%dB)" src dst (t.config.label_of msg) size;
    Base_util.Heap.push t.queue (Sim_time.add t.time delay, Q_deliver { src; dst; msg; size });
    note_queue_depth t
  end

let multicast t ~src ~dsts msg = List.iter (fun dst -> send t ~src ~dst msg) dsts

let partition t a b = t.partition_groups <- Some (a, b)

let heal t = t.partition_groups <- None

let set_timer t ~node ~after ~tag ~payload =
  let id = t.next_timer_id in
  t.next_timer_id <- id + 1;
  Base_util.Heap.push t.queue (Sim_time.add t.time after, Q_timer { id; node; tag; payload });
  note_queue_depth t;
  id

let cancel_timer t id = Hashtbl.replace t.cancelled id ()

let dispatch t queued =
  match queued with
  | Q_deliver { src; dst; msg; size } -> begin
    match Hashtbl.find_opt t.nodes dst with
    | None -> ()
    | Some node ->
      let per_label = label_counters_of t msg in
      if node.up then begin
        node.counters.recv_msgs <- node.counters.recv_msgs + 1;
        node.counters.recv_bytes <- node.counters.recv_bytes + size;
        t.totals.recv_msgs <- t.totals.recv_msgs + 1;
        t.totals.recv_bytes <- t.totals.recv_bytes + size;
        per_label.recv_msgs <- per_label.recv_msgs + 1;
        per_label.recv_bytes <- per_label.recv_bytes + size;
        trace t "deliv %d->%d %s" src dst (t.config.label_of msg);
        node.handler t (Deliver { src; msg })
      end
      else begin
        t.totals.dropped_msgs <- t.totals.dropped_msgs + 1;
        per_label.dropped_msgs <- per_label.dropped_msgs + 1;
        trace t "lost  %d->%d %s (node down)" src dst (t.config.label_of msg)
      end
  end
  | Q_timer { id; node; tag; payload } ->
    if not (Hashtbl.mem t.cancelled id) then begin
      match Hashtbl.find_opt t.nodes node with
      | Some n when n.up -> n.handler t (Timer { tag; payload })
      | Some _ | None -> ()
    end
    else Hashtbl.remove t.cancelled id

let step t =
  match Base_util.Heap.pop t.queue with
  | None -> false
  | Some (time, queued) ->
    if Sim_time.compare time t.time > 0 then t.time <- time;
    dispatch t queued;
    true

let run ?until ?max_events t =
  let handled = ref 0 in
  let continue () =
    (match max_events with Some m -> !handled < m | None -> true)
    &&
    match (until, Base_util.Heap.peek t.queue) with
    | _, None -> false
    | None, Some _ -> true
    | Some limit, Some (next, _) -> Sim_time.(next <= limit)
  in
  while continue () do
    ignore (step t);
    incr handled
  done;
  match until with
  | Some limit when Sim_time.(t.time < limit) -> t.time <- limit
  | _ -> ()

let advance_to t limit = run ~until:limit t

let prng t = t.rng

let node_counters t id = (get_node t id).counters

let total_counters t = t.totals

let label_counters t =
  Hashtbl.fold (fun label c acc -> (label, c) :: acc) t.labels []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let queue_depth t = Base_util.Heap.length t.queue

let max_queue_depth t = t.max_queue_depth

let set_tracer t f = t.tracer <- Some f
