(** Flat array-backed min-heap for the engine's event queue.

    Keys are (event time, insertion sequence) pairs held in parallel
    unboxed [int] arrays, so a push/pop performs no allocation beyond
    occasional capacity doubling and sift comparisons touch no heap
    blocks.  Pop order is exactly sorted (time, seq) — keys are unique —
    so it dequeues identically to the generic [Base_util.Heap] ordered by
    time with its insertion-sequence tie-break (the engine-determinism
    differential suite pins this equivalence). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> time:Sim_time.t -> 'a -> unit
(** Raises [Base_util.Invariant.Violation] if [time] is negative or
    exceeds the native-int range (~292,000 simulated years). *)

val min_time : 'a t -> Sim_time.t option
(** Time key of the next event to pop, without popping it. *)

val pop_exn : 'a t -> 'a
(** Remove and return the earliest event's payload; its time key is then
    readable via {!last_time} without allocating an option.  Raises
    [Base_util.Invariant.Violation] when empty. *)

val last_time : 'a t -> Sim_time.t
(** Time key of the most recently popped event (0 before any pop). *)

val pop : 'a t -> (Sim_time.t * 'a) option
(** Allocating convenience wrapper over {!pop_exn}/{!last_time}. *)
