(** Deterministic discrete-event network simulator.

    The engine multiplexes a set of numbered nodes (replicas and clients of
    the replicated service) over a virtual network.  Nodes communicate only
    through {!send}/{!multicast} and react to {!event}s delivered by the
    scheduler; all latencies, drops and clock skews are drawn from a seeded
    PRNG, so a run is a pure function of its seed.

    The network model captures what the BASE evaluation depends on: per-link
    latency with jitter, per-byte transmission cost (bandwidth), message
    loss, partitions, and node crash/reboot.  Per-node logical clocks with
    configurable skew and drift model the divergent local clocks that make
    off-the-shelf service implementations non-deterministic. *)

type 'msg t

type 'msg event =
  | Deliver of { src : int; msg : 'msg }
      (** A network message from [src] arrived. *)
  | Timer of { tag : string; payload : int }
      (** A timer set by this node fired. *)

type 'msg config = {
  seed : int64;
  size_of : 'msg -> int;  (** wire size estimate, drives bandwidth cost *)
  label_of : 'msg -> string;  (** one-line label used by traces *)
  kind_of : 'msg -> string;
      (** accounting key for {!label_counters} — should return a constant
          string per message type (allocation-free: it runs on every send
          and delivery) *)
  latency_us : int;  (** one-way propagation delay *)
  jitter_us : int;  (** mean of the exponential jitter component *)
  bandwidth_bps : int;  (** link bandwidth; 0 = infinite *)
  drop_p : float;  (** iid message-loss probability *)
  clock_skew_us : int;  (** max |offset| of a node's local clock *)
  clock_drift_ppm : int;  (** max |drift| of a node's local clock *)
}

val default_config : size_of:('msg -> int) -> label_of:('msg -> string) -> 'msg config
(** A switched-LAN-like setup: 60 us latency, 15 us jitter, 100 Mbit/s, no
    loss, 50 ms skew, 100 ppm drift, seed 1.  [kind_of] defaults to
    [label_of] with its parameter list stripped
    (["PRE-PREPARE(v=0,n=2)"] -> ["PRE-PREPARE"]) — correct but it formats
    the full label per send; override the field with a constant-string
    function on hot paths ([{ base with kind_of = ... }]). *)

val create : 'msg config -> 'msg t

(** {1 Nodes} *)

val add_node : 'msg t -> id:int -> ('msg t -> 'msg event -> unit) -> unit
(** Register node [id] with its event handler.  Ids must be unique. *)

val node_count : 'msg t -> int

val set_node_up : 'msg t -> int -> bool -> unit
(** A down node loses every message and timer addressed to it. *)

val node_is_up : 'msg t -> int -> bool

(** {1 Communication} *)

val send : 'msg t -> ?extra_us:int -> src:int -> dst:int -> 'msg -> unit
(** [extra_us] adds a per-message delay on top of the modelled network cost —
    the hook an adversary uses to selectively slow down individual protocol
    messages without touching the link configuration. *)

val multicast : 'msg t -> ?extra_us:int -> src:int -> dsts:int list -> 'msg -> unit

val partition : 'msg t -> int list -> int list -> unit
(** [partition t a b] blocks traffic between groups [a] and [b] until
    {!heal}. *)

val heal : 'msg t -> unit

(** {1 Scheduled link faults}

    Timed fault windows composable per link: each window applies to messages
    sent while virtual time is before [until], on links matching
    [src]/[dst] ([-1] is a wildcard endpoint).  Windows stack — two delay
    windows on the same link add up, and every matching drop/corrupt window
    draws its own Bernoulli trial.  Expired windows are pruned lazily. *)

val fault_delay :
  'msg t -> src:int -> dst:int -> extra_us:int -> until:Sim_time.t -> unit
(** Add [extra_us] of one-way delay to matching messages. *)

val fault_drop : 'msg t -> src:int -> dst:int -> p:float -> until:Sim_time.t -> unit
(** Drop matching messages with probability [p] (on top of the base
    [drop_p]). *)

val fault_corrupt : 'msg t -> src:int -> dst:int -> p:float -> until:Sim_time.t -> unit
(** With probability [p], pass a matching message through the corruptor
    installed by {!set_corruptor}.  Without a corruptor — or when it returns
    [None] — the message is dropped instead (mangled beyond recognition). *)

val clear_link_faults : 'msg t -> unit

val set_corruptor : 'msg t -> (Base_util.Prng.t -> 'msg -> 'msg option) -> unit
(** Install the message corruptor used by {!fault_corrupt} windows: given
    engine randomness and the in-flight message, produce the damaged variant
    actually delivered ([None] = not corruptible, drop it).  Corrupted
    deliveries are counted in [corrupted_msgs] and, when {!attach_metrics}
    was called, in the [engine.corrupted_msgs] counter. *)

(** {1 Time and timers} *)

val now : 'msg t -> Sim_time.t

val local_clock : 'msg t -> int -> int64
(** The node's own wall clock in microseconds: virtual time distorted by the
    node's skew and drift.  This is the clock a service implementation reads
    for timestamps — different at every replica. *)

val set_timer : 'msg t -> node:int -> after:Sim_time.t -> tag:string -> payload:int -> int
(** Returns a timer id usable with {!cancel_timer}. *)

val cancel_timer : 'msg t -> int -> unit

(** {1 Execution} *)

val run : ?until:Sim_time.t -> ?max_events:int -> 'msg t -> unit
(** Process events in timestamp order until the queue drains, [until] is
    reached, or [max_events] have been handled. *)

val step : 'msg t -> bool
(** Process one event; [false] when the queue is empty. *)

val advance_to : 'msg t -> Sim_time.t -> unit
(** Move virtual time forward with an empty-queue check: processes all events
    up to the given instant. *)

val prng : 'msg t -> Base_util.Prng.t
(** Engine-owned randomness (for workloads that need it). *)

(** {1 Accounting and tracing} *)

type counters = {
  mutable sent_msgs : int;
  mutable sent_bytes : int;
  mutable recv_msgs : int;
  mutable recv_bytes : int;
  mutable dropped_msgs : int;
  mutable corrupted_msgs : int;  (** delivered after in-flight corruption *)
}

val node_counters : 'msg t -> int -> counters

val total_counters : 'msg t -> counters

val label_counters : 'msg t -> (string * counters) list
(** Traffic broken down by message type, keyed by [config.kind_of] (by
    default the label with its parameter list stripped:
    ["PRE-PREPARE(v=0,n=2)"] counts under ["PRE-PREPARE"]).  Sorted by
    key; [dropped_msgs] includes messages lost to a down destination. *)

val queue_depth : 'msg t -> int
(** Events (messages and timers) currently queued. *)

val max_queue_depth : 'msg t -> int
(** High-water mark of {!queue_depth} over the run. *)

val node_inflight : 'msg t -> int -> int
(** Deliveries currently queued for this node. *)

val set_tracer : 'msg t -> (Sim_time.t -> string -> unit) -> unit
(** Register a callback receiving a line per network event (send, deliver,
    drop, corrupt).  Tracers compose: every registered callback sees every
    line, so the architecture-trace experiment and the structured trace ring
    can share the event stream. *)

val attach_metrics : 'msg t -> Base_obs.Metrics.t -> unit
(** Export live engine state into a metrics registry: the
    [engine.queue_depth] gauge (updated on every push/pop), per-node
    [engine.inflight.nXX] gauges, and the [engine.corrupted_msgs] counter.
    Values remain pure functions of the seed — the registry only mirrors
    simulator state. *)

val attach_profile : 'msg t -> Base_obs.Profile.t -> unit
(** Bracket the engine's two hot entry points with profiling probes:
    [engine.send] (accounting, fault draws, queue push) and
    [engine.dispatch] (event pop and handler invocation — node handler
    time, including nested protocol probes, accrues here too). *)
