(** Shared protocol types and static configuration for the PBFT substrate. *)

type view = int

type seqno = int

(** Static system configuration.  Active replicas occupy simulator node ids
    [0 .. n-1]; warm standbys (if any) use [n .. n+s-1]; clients use
    [n+s ..]; one extra id is reserved for the recovery orchestrator. *)
type config = {
  n : int;  (** number of active replicas, always [3f + 1] *)
  s : int;
      (** warm standbys: extra group members that hold keys and shadow-sync
          the stable checkpoint but never vote ([0] recovers plain 3f+1) *)
  f : int;  (** tolerated Byzantine faults *)
  checkpoint_period : int;  (** the paper's [k]: checkpoint every k-th request *)
  log_window : int;  (** [L]: the high watermark is [h + L]; a multiple of [k] *)
  client_timeout_us : int;  (** client retransmission timer *)
  viewchange_timeout_us : int;  (** backup progress timer before a view change *)
  n_principals : int;  (** replicas + standbys + clients (MAC keychain universe) *)
  batch_max : int;  (** max client requests ordered per consensus instance *)
  max_inflight : int;  (** proposals outstanding before the primary batches *)
  st_window : int;
      (** state transfer: max meta/object fetch requests in flight per
          recovering replica (the pipeline window; [1] recovers the serial
          fetcher) *)
  st_chunk_bytes : int;
      (** state transfer: objects larger than this are fetched as ranged
          chunks striped across sources *)
  st_cache_objs : int;
      (** capacity of {!Base_core.Objrepo}'s digest-keyed leaf cache
          ([0] disables caching) *)
}

val make_config :
  ?checkpoint_period:int ->
  ?log_window:int ->
  ?client_timeout_us:int ->
  ?viewchange_timeout_us:int ->
  ?batch_max:int ->
  ?max_inflight:int ->
  ?st_window:int ->
  ?st_chunk_bytes:int ->
  ?st_cache_objs:int ->
  ?standbys:int ->
  f:int ->
  n_clients:int ->
  unit ->
  config
(** Defaults: [checkpoint_period = 128], [log_window = 256],
    [client_timeout_us = 150_000], [viewchange_timeout_us = 500_000],
    [batch_max = 16], [max_inflight = 8], [st_window = 8],
    [st_chunk_bytes = 4096], [st_cache_objs = 256], [standbys = 0]. *)

val primary : config -> view -> int
(** The primary of a view: [view mod n]. *)

val replica_ids : config -> int list

val quorum : config -> int
(** [2f + 1]. *)

val weak_quorum : config -> int
(** [f + 1]: any set this large contains a correct replica. *)

val is_replica : config -> int -> bool
(** Active replica id ([0 <= id < n]); standbys are {e not} replicas. *)

val group_size : config -> int
(** [n + s]: active replicas plus warm standbys — the principals that hold
    replica-side keys.  Client ids start at [group_size]. *)

val standby_ids : config -> int list
(** The standby node ids, [n .. n+s-1]. *)

val is_standby : config -> int -> bool
