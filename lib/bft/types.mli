(** Shared protocol types and static configuration for the PBFT substrate. *)

type view = int

type seqno = int

(** Static system configuration.  Active replicas occupy simulator node ids
    [0 .. n-1]; warm standbys (if any) use [n .. n+s-1]; clients use
    [n+s ..]; one extra id is reserved for the recovery orchestrator. *)
type config = {
  n : int;  (** number of active replicas, always [3f + 1] *)
  s : int;
      (** warm standbys: extra group members that hold keys and shadow-sync
          the stable checkpoint but never vote ([0] recovers plain 3f+1) *)
  f : int;  (** tolerated Byzantine faults *)
  checkpoint_period : int;  (** the paper's [k]: checkpoint every k-th request *)
  log_window : int;  (** [L]: the high watermark is [h + L]; a multiple of [k] *)
  client_timeout_us : int;  (** client retransmission timer *)
  viewchange_timeout_us : int;  (** backup progress timer before a view change *)
  n_principals : int;  (** replicas + standbys + clients (MAC keychain universe) *)
  batch_max : int;  (** max client requests ordered per consensus instance *)
  max_inflight : int;  (** proposals outstanding before the primary batches *)
  st_window : int;
      (** state transfer: max meta/object fetch requests in flight per
          recovering replica (the pipeline window; [1] recovers the serial
          fetcher) *)
  st_chunk_bytes : int;
      (** state transfer: objects larger than this are fetched as ranged
          chunks striped across sources *)
  st_cache_objs : int;
      (** capacity of {!Base_core.Objrepo}'s digest-keyed leaf cache
          ([0] disables caching) *)
  shard_bounds : int array;
      (** oid-range -> shard map: strictly ascending exclusive upper bounds,
          one per shard, so shard [k] owns oids [bounds.(k-1) .. bounds.(k)-1]
          (shard 0 starts at oid 0).  [[||]] means a single unsharded
          agreement instance owning the whole object space. *)
}

val make_config :
  ?checkpoint_period:int ->
  ?log_window:int ->
  ?client_timeout_us:int ->
  ?viewchange_timeout_us:int ->
  ?batch_max:int ->
  ?max_inflight:int ->
  ?st_window:int ->
  ?st_chunk_bytes:int ->
  ?st_cache_objs:int ->
  ?standbys:int ->
  ?shard_bounds:int array ->
  f:int ->
  n_clients:int ->
  unit ->
  config
(** Defaults: [checkpoint_period = 128], [log_window = 256],
    [client_timeout_us = 150_000], [viewchange_timeout_us = 500_000],
    [batch_max = 16], [max_inflight = 8], [st_window = 8],
    [st_chunk_bytes = 4096], [st_cache_objs = 256], [standbys = 0],
    [shard_bounds = [||]] (unsharded).  Raises [Invalid_argument] when
    [shard_bounds] is not strictly ascending positive. *)

val primary : config -> view -> int
(** The primary of a view: [view mod n]. *)

(** {1 Shards}

    The abstract object space can be partitioned into [S] shards, each an
    independent agreement instance (own sequence space, checkpoints and view
    changes) over the {e same} [3f+1] replicas.  Shard [k]'s primary in view
    [v] is replica [(v + k) mod n], so concurrent shards are led by distinct
    nodes and shard 0's rotation coincides with {!primary}. *)

val n_shards : config -> int
(** Number of shards; [1] when [shard_bounds] is empty. *)

val shard_primary : config -> shard:int -> view -> int
(** The node currently leading [shard]: [(view + shard) mod n].
    [shard_primary ~shard:0] is {!primary}. *)

val shard_of_oid : config -> int -> int
(** The shard owning an abstract object id.  Oids at or beyond the last
    bound are clamped into the last shard; unsharded configs return [0]. *)

val shard_range : config -> n_objects:int -> int -> (int * int)
(** [[lo, hi)] oid range owned by a shard of a service with [n_objects]
    abstract objects.  The last shard absorbs any objects beyond the final
    bound, matching {!shard_of_oid}'s clamping. *)

val uniform_shards : shards:int -> n_objects:int -> int array
(** An even [shard_bounds] split of [n_objects] oids into [shards] ranges
    (the empty array for [shards <= 1]). *)

val internal_client : shard:int -> int
(** The virtual client id for runtime-injected internal requests of
    [shard]'s coordinator (cross-shard locks).  Far above any real principal
    id and non-negative, so it wire-encodes like any other client id. *)

val is_internal_client : int -> bool
(** Whether a client id names a virtual internal client. *)

val replica_ids : config -> int list

val quorum : config -> int
(** [2f + 1]. *)

val weak_quorum : config -> int
(** [f + 1]: any set this large contains a correct replica. *)

val is_replica : config -> int -> bool
(** Active replica id ([0 <= id < n]); standbys are {e not} replicas. *)

val group_size : config -> int
(** [n + s]: active replicas plus warm standbys — the principals that hold
    replica-side keys.  Client ids start at [group_size]. *)

val standby_ids : config -> int list
(** The standby node ids, [n .. n+s-1]. *)

val is_standby : config -> int -> bool
