module Digest = Base_crypto.Digest_t
module Auth = Base_crypto.Auth
module M = Message

type app = {
  execute :
    client:int ->
    timestamp:int64 ->
    operation:string ->
    nondet:string ->
    read_only:bool ->
    string;
  propose_nondet : operation:string -> string;
  check_nondet : operation:string -> nondet:string -> bool;
  ready : client:int -> timestamp:int64 -> operation:string -> bool;
  take_checkpoint : seq:Types.seqno -> Digest.t;
  discard_checkpoints_below : Types.seqno -> unit;
  start_fetch : seq:Types.seqno -> digest:Digest.t -> unit;
}

let always_ready ~client:_ ~timestamp:_ ~operation:_ = true

type net = {
  send : dst:int -> Message.envelope -> unit;
  set_timer : after_us:int -> tag:string -> payload:int -> int;
  cancel_timer : int -> unit;
  now_us : unit -> int64;
}

type behavior = Honest | Mute | Lie_in_replies | Equivocate

(* A standby holds replica-side keys and collects checkpoint certificates
   (so the runtime can shadow-sync it and later promote it into a failed
   replica's slot), but it never votes, proposes, executes, or broadcasts —
   it is invisible to the agreement protocol. *)
type role = Active | Standby

type status = Normal | View_changing | Fetching

type stats = {
  mutable executed : int;  (* consensus instances executed *)
  mutable executed_requests : int;  (* client requests executed (>= executed with batching) *)
  mutable checkpoints_taken : int;
  mutable view_changes : int;
  mutable fetches : int;
  mutable rejected_macs : int;
  mutable rejected_decode : int;
  mutable rejected_insane : int;  (* well-formed but protocol-implausible messages *)
}

(* Protocol-phase instrumentation: latency histograms over the local
   timeline of each log slot (pre-prepare accepted -> prepared -> committed
   -> executed), plus view-change duration and checkpoint cadence.  The
   registry is normally shared by every replica of a system, so histograms
   aggregate across the group. *)
type obs = {
  m_pre_prepare : Base_obs.Metrics.histogram;
  m_prepare : Base_obs.Metrics.histogram;
  m_commit : Base_obs.Metrics.histogram;
  m_execute : Base_obs.Metrics.histogram;
  m_total : Base_obs.Metrics.histogram;
  m_view_change : Base_obs.Metrics.histogram;
  m_cp_interval : Base_obs.Metrics.histogram;
  c_reject_mac : Base_obs.Metrics.counter;
  c_reject_decode : Base_obs.Metrics.counter;
  c_reject_insane : Base_obs.Metrics.counter;
  c_equivocation : Base_obs.Metrics.counter;
  mutable vc_started : int64;  (* -1 when no view change is in progress *)
  mutable last_cp : int64;  (* timestamp of the previous checkpoint; -1 before the first *)
}

(* [suffix] distinguishes shards sharing one registry (".s1", ".s2", ...);
   shard 0 keeps the historical unsuffixed names. *)
let make_obs ?(suffix = "") metrics =
  let h name = Base_obs.Metrics.histogram metrics (name ^ suffix) in
  let c name = Base_obs.Metrics.counter metrics (name ^ suffix) in
  {
    m_pre_prepare = h "bft.phase.pre_prepare_us";
    m_prepare = h "bft.phase.prepare_us";
    m_commit = h "bft.phase.commit_us";
    m_execute = h "bft.phase.execute_us";
    m_total = h "bft.phase.total_us";
    m_view_change = h "bft.view_change_us";
    m_cp_interval = h "bft.checkpoint_interval_us";
    c_reject_mac = c "bft.reject.mac";
    c_reject_decode = c "bft.reject.decode";
    c_reject_insane = c "bft.reject.insane";
    c_equivocation = c "bft.equivocation_detected";
    vc_started = -1L;
    last_cp = -1L;
  }

(* Per-sequence-number log slot.  The prepare/commit tables are keyed by
   replica id; certificates are counted over matching digests.  The [t_*]
   fields are local phase timestamps (-1 = milestone not reached). *)
type entry = {
  mutable pre_prepare : M.pre_prepare option;
  prepares : (int, Digest.t) Hashtbl.t;
  commits : (int, Digest.t) Hashtbl.t;
  mutable sent_commit : bool;
  mutable committed : bool;
  mutable prepared_proof : M.prepared_proof option;
  mutable t_pp : int64;
  mutable t_prepared : int64;
  mutable t_committed : int64;
}

type client_rec = {
  mutable last_ts : int64;  (* timestamp of last executed request *)
  mutable last_reply : M.reply option;
  mutable pending : M.request option;  (* received but not yet executed *)
  mutable pending_since : int64;  (* local arrival time of [pending]; -1 = none *)
  mutable assigned_ts : int64;  (* primary: highest timestamp given a seqno *)
  mutable assigned_seq : Types.seqno;
}

type t = {
  config : Types.config;
  id : int;
  shard : int;  (* agreement instance this replica serves; 0 when unsharded *)
  keychain : Auth.keychain;
  net : net;
  app : app;
  role : role;
  mutable behavior : behavior;
  mutable view : Types.view;
  mutable status : status;
  entries : (Types.seqno, entry) Hashtbl.t;
  clients : (int, client_rec) Hashtbl.t;
  cp_msgs : (Types.seqno, (int, Digest.t) Hashtbl.t) Hashtbl.t;
  own_cps : (Types.seqno, Digest.t) Hashtbl.t;
  mutable h : Types.seqno;  (* low watermark = last stable checkpoint *)
  mutable stable_digest : Digest.t;
  mutable last_exec : Types.seqno;
  mutable next_seq : Types.seqno;  (* primary: last assigned seqno *)
  queued_requests : M.request Queue.t;  (* primary: waiting for window space *)
  vcs : (Types.view, (int, M.view_change) Hashtbl.t) Hashtbl.t;
  mutable vc_timer : int option;
  mutable vc_timeout_us : int;
  mutable status_timer : int option;
  mutable last_progress_exec : Types.seqno;
  mutable fetch_in_progress : (Types.seqno * Digest.t) option;
  mutable resume_vc_after_fetch : bool;
  mutable external_pending : int;
      (* runtime-tracked obligations (cross-shard locks held or awaited) that
         must keep the progress timer armed even with no client pending *)
  mutable in_try_execute : bool;  (* reentrancy guard: see [try_execute] *)
  mutable exec_again : bool;
  peer_views : (int, Types.view) Hashtbl.t;  (* latest STATUS-reported views *)
  mutable last_nv : M.new_view option;
      (* the NEW-VIEW this primary broadcast for its current view, kept for
         retransmission to replicas that were down when the view changed *)
  stats : stats;
  obs : obs;
  prof : Base_obs.Profile.t;
  p_verify : Base_obs.Profile.probe;  (* MAC check on every received envelope *)
  p_seal : Base_obs.Profile.probe;  (* encode + digest + authenticate on send *)
  p_handle : Base_obs.Profile.probe;  (* protocol handling after MAC acceptance *)
  p_exec : Base_obs.Profile.probe;  (* application execute calls *)
}

let fresh_entry () =
  {
    pre_prepare = None;
    prepares = Hashtbl.create 8;
    commits = Hashtbl.create 8;
    sent_commit = false;
    committed = false;
    prepared_proof = None;
    t_pp = -1L;
    t_prepared = -1L;
    t_committed = -1L;
  }

let now t = t.net.now_us ()

(* Every primary computation below goes through this: each shard runs its own
   rotation, offset so concurrent shards spread their primaries over distinct
   replicas in any given view. *)
let primary_of t view = Types.shard_primary t.config ~shard:t.shard view

(* Record [until - since] in [hist]; skipped when the earlier milestone was
   never seen locally (e.g. the slot arrived pre-committed via new-view). *)
let observe_span hist ~since ~until =
  if Int64.compare since 0L >= 0 && Int64.compare until since >= 0 then
    Base_obs.Metrics.observe hist (Int64.to_float (Int64.sub until since))

let get_entry t seq =
  match Hashtbl.find_opt t.entries seq with
  | Some e -> e
  | None ->
    let e = fresh_entry () in
    Hashtbl.replace t.entries seq e;
    e

let client_rec t c =
  match Hashtbl.find_opt t.clients c with
  | Some r -> r
  | None ->
    let r =
      {
        last_ts = -1L;
        last_reply = None;
        pending = None;
        pending_since = -1L;
        assigned_ts = -1L;
        assigned_seq = -1;
      }
    in
    Hashtbl.replace t.clients c r;
    r

(* Deterministic traversal of an int-keyed table: snapshot the bindings and
   sort by key.  Every table scan below goes through this, so certificate
   counting, retransmission order, and wire-visible new-view summaries are
   independent of hash-table iteration order. *)
let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* --- digests ------------------------------------------------------------ *)

(* The ordering digest binds the whole request batch *and* the agreed
   non-deterministic values, so an equivocating primary cannot get two
   nondet choices (or two batch compositions) past the prepare phase.
   One SHA-256 pass over the injective batch encoding — this runs at the
   primary per proposal and at every backup per PRE-PREPARE acceptance. *)
let ordering_digest requests nondet = Digest.of_string (M.encode_batch requests ~nondet)

(* Client ids are unique within the table, so the id alone orders rows; the
   full comparison keeps the digest well-defined on arbitrary row lists. *)
let compare_client_row (c1, ts1, res1) (c2, ts2, res2) =
  match Int.compare c1 c2 with
  | 0 -> ( match Int64.compare ts1 ts2 with 0 -> String.compare res1 res2 | c -> c)
  | c -> c

let client_rows_of_table clients =
  List.filter_map
    (fun (c, (r : client_rec)) ->
      match r.last_reply with
      | Some rep -> Some (c, r.last_ts, rep.result)
      | None -> None)
    (sorted_bindings clients)
  |> List.sort compare_client_row

let digest_of_rows rows =
  let e = Base_codec.Xdr.encoder () in
  Base_codec.Xdr.list e
    (fun e (c, ts, res) ->
      Base_codec.Xdr.u32 e c;
      Base_codec.Xdr.i64 e ts;
      Base_codec.Xdr.opaque e res)
    rows;
  Digest.of_string (Base_codec.Xdr.contents e)

let client_table_digest t = digest_of_rows (client_rows_of_table t.clients)

let checkpoint_digest ~app_digest ~client_digest =
  Digest.combine [ app_digest; client_digest ]

let export_client_table t = client_rows_of_table t.clients

(* --- sending ------------------------------------------------------------ *)

(* Replica-to-replica messages authenticate to the n replicas only; replies
   carry a single MAC for their client (see [send_reply]). *)
let seal t body =
  Base_obs.Profile.start t.prof t.p_seal;
  let env = M.seal t.keychain ~shard:t.shard ~sender:t.id ~n_receivers:t.config.n body in
  Base_obs.Profile.stop t.prof t.p_seal;
  env

let send_one t ~dst body =
  if t.behavior <> Mute then t.net.send ~dst (seal t body)

let broadcast t body =
  if t.behavior <> Mute then begin
    let env = seal t body in
    for r = 0 to t.config.n - 1 do
      if r <> t.id then t.net.send ~dst:r env
    done
  end

(* Checkpoint announcements go to the whole n+s group, sealed so standbys
   can verify them too: the certificates standbys build from these are
   their only evidence of what the stable abstract state is, so they must
   be first-class MACed messages, not hearsay.  With [s = 0] this is
   exactly [broadcast]. *)
let broadcast_group t body =
  if t.behavior <> Mute then begin
    Base_obs.Profile.start t.prof t.p_seal;
    let env =
      M.seal t.keychain ~shard:t.shard ~sender:t.id ~n_receivers:(Types.group_size t.config)
        body
    in
    Base_obs.Profile.stop t.prof t.p_seal;
    for r = 0 to Types.group_size t.config - 1 do
      if r <> t.id then t.net.send ~dst:r env
    done
  end

let send_reply t (reply : M.reply) =
  let reply =
    match t.behavior with
    | Lie_in_replies ->
      (* Corrupt the result: a faulty replica answering with garbage. *)
      { reply with result = String.map (fun c -> Char.chr (Char.code c lxor 0x5a)) reply.result }
    | Honest | Mute | Equivocate -> reply
  in
  if t.behavior <> Mute then begin
    Base_obs.Profile.start t.prof t.p_seal;
    let env =
      M.seal_for t.keychain ~shard:t.shard ~sender:t.id ~receiver:reply.client (M.Reply reply)
    in
    Base_obs.Profile.stop t.prof t.p_seal;
    t.net.send ~dst:reply.client env
  end

(* --- timers ------------------------------------------------------------- *)

let has_pending t =
  t.external_pending > 0
  || List.exists (fun (_, r) -> r.pending <> None) (sorted_bindings t.clients)

let cancel_vc_timer t =
  match t.vc_timer with
  | Some id ->
    t.net.cancel_timer id;
    t.vc_timer <- None
  | None -> ()

let start_vc_timer t =
  if t.vc_timer = None && t.status = Normal then
    t.vc_timer <-
      Some (t.net.set_timer ~after_us:t.vc_timeout_us ~tag:"vc" ~payload:t.view)

let restart_vc_timer t =
  cancel_vc_timer t;
  if has_pending t then start_vc_timer t

(* --- checkpoints -------------------------------------------------------- *)

let cp_table t seq =
  match Hashtbl.find_opt t.cp_msgs seq with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    Hashtbl.replace t.cp_msgs seq tbl;
    tbl

let count_matching tbl digest =
  List.fold_left
    (fun acc (_, d) -> if Digest.equal d digest then acc + 1 else acc)
    0 (sorted_bindings tbl)

let discard_log_below t seq =
  let stale_keys tbl below =
    List.filter_map (fun (s, _) -> if s < below then Some s else None) (sorted_bindings tbl)
  in
  List.iter (Hashtbl.remove t.entries) (stale_keys t.entries (seq + 1));
  List.iter (Hashtbl.remove t.cp_msgs) (stale_keys t.cp_msgs seq);
  List.iter (Hashtbl.remove t.own_cps) (stale_keys t.own_cps seq)

let rec make_stable t seq digest =
  if seq > t.h then begin
    t.h <- seq;
    t.stable_digest <- digest;
    discard_log_below t seq;
    t.app.discard_checkpoints_below seq;
    if t.next_seq < seq then t.next_seq <- seq;
    (* The primary may now have window space for queued requests. *)
    drain_queue t
  end

and maybe_stable t seq =
  match Hashtbl.find_opt t.own_cps seq with
  | None -> ()
  | Some own ->
    if seq > t.h && count_matching (cp_table t seq) own + 1 >= Types.quorum t.config then
      make_stable t seq own

and take_checkpoint t =
  let seq = t.last_exec in
  let app_digest = t.app.take_checkpoint ~seq in
  let d = checkpoint_digest ~app_digest ~client_digest:(client_table_digest t) in
  Hashtbl.replace t.own_cps seq d;
  t.stats.checkpoints_taken <- t.stats.checkpoints_taken + 1;
  observe_span t.obs.m_cp_interval ~since:t.obs.last_cp ~until:(now t);
  t.obs.last_cp <- now t;
  broadcast_group t (M.Checkpoint { seq; digest = d; replica = t.id });
  maybe_stable t seq

(* --- execution ---------------------------------------------------------- *)

(* An entry may only execute when every not-yet-executed request in its batch
   passes the runtime's [ready] gate.  The gate is consulted for internal
   (cross-shard) requests too: the runtime uses the first ready-query on a
   lock request as the lock-acquisition event, so arrival at the gate — not
   execution — is what orders the lock on every replica identically.  The
   whole batch parks together: executing a prefix would split one consensus
   instance across checkpoints. *)
and entry_ready t (pp : M.pre_prepare) =
  List.for_all
    (fun (r : M.request) ->
      r.client = -1
      ||
      let cr = client_rec t r.client in
      r.timestamp <= cr.last_ts
      || t.app.ready ~client:r.client ~timestamp:r.timestamp ~operation:r.operation)
    pp.requests

and execute_entry t seq entry (pp : M.pre_prepare) =
  List.iter
    (fun (r : M.request) ->
      if r.client >= 0 && not (Types.is_internal_client r.client) then begin
        let cr = client_rec t r.client in
        (* A request can be ordered twice across view changes; only its
           first ordering executes (exactly-once semantics via the
           client-table timestamp). *)
        if r.timestamp > cr.last_ts then begin
          t.stats.executed_requests <- t.stats.executed_requests + 1;
          Base_obs.Profile.start t.prof t.p_exec;
          let result =
            t.app.execute ~client:r.client ~timestamp:r.timestamp ~operation:r.operation
              ~nondet:pp.nondet ~read_only:false
          in
          Base_obs.Profile.stop t.prof t.p_exec;
          cr.last_ts <- r.timestamp;
          let reply =
            { M.view = t.view; timestamp = r.timestamp; client = r.client; replica = t.id;
              result }
          in
          cr.last_reply <- Some reply;
          (match cr.pending with
          | Some p when p.timestamp <= r.timestamp -> cr.pending <- None
          | Some _ | None -> ());
          send_reply t reply
        end
        else begin
          match cr.pending with
          | Some p when p.timestamp <= r.timestamp -> cr.pending <- None
          | Some _ | None -> ()
        end
      end
      else if Types.is_internal_client r.client then begin
        (* Internal (runtime-injected) request, e.g. a cross-shard lock: it
           executes through the same upcall — the runtime recognises the
           virtual client id — but no reply is sent and no pending
           bookkeeping applies.  The timestamp dedupe still guards against
           re-ordering across view changes. *)
        let cr = client_rec t r.client in
        if r.timestamp > cr.last_ts then begin
          t.stats.executed_requests <- t.stats.executed_requests + 1;
          Base_obs.Profile.start t.prof t.p_exec;
          ignore
            (t.app.execute ~client:r.client ~timestamp:r.timestamp ~operation:r.operation
               ~nondet:pp.nondet ~read_only:false);
          Base_obs.Profile.stop t.prof t.p_exec;
          cr.last_ts <- r.timestamp
        end
      end)
    pp.requests;
  t.last_exec <- seq;
  t.stats.executed <- t.stats.executed + 1;
  observe_span t.obs.m_execute ~since:entry.t_committed ~until:(now t);
  observe_span t.obs.m_total ~since:entry.t_pp ~until:(now t);
  restart_vc_timer t;
  drain_queue t;
  if seq mod t.config.checkpoint_period = 0 then take_checkpoint t

and try_execute t =
  (* The ready/execute upcalls can re-enter (releasing a cross-shard lock on
     one replica kicks execution on another replica of the same node, whose
     execute upcall can release back).  A nested call only records that more
     work may be possible; the outermost activation re-checks. *)
  if t.in_try_execute then t.exec_again <- true
  else begin
    t.in_try_execute <- true;
    Fun.protect
      ~finally:(fun () -> t.in_try_execute <- false)
      (fun () ->
        let continue = ref (t.status <> Fetching) in
        while !continue do
          t.exec_again <- false;
          let seq = t.last_exec + 1 in
          (match Hashtbl.find_opt t.entries seq with
          | Some ({ committed = true; pre_prepare = Some pp; _ } as entry) ->
            if entry_ready t pp then execute_entry t seq entry pp
            else continue := false
          | Some _ | None -> continue := false);
          if (not !continue) && t.exec_again && t.status <> Fetching then continue := true
        done)
  end

(* --- certificates ------------------------------------------------------- *)

and maybe_committed t _seq entry =
  match entry.pre_prepare with
  | Some pp when entry.prepared_proof <> None && not entry.committed ->
    if count_matching entry.commits pp.digest >= Types.quorum t.config then begin
      entry.committed <- true;
      entry.t_committed <- now t;
      observe_span t.obs.m_commit ~since:entry.t_prepared ~until:entry.t_committed;
      try_execute t
    end
  | Some _ | None -> ()

and maybe_prepared t seq entry =
  match entry.pre_prepare with
  | Some pp ->
    let primary = primary_of t pp.view in
    let count =
      List.fold_left
        (fun acc (r, d) -> if r <> primary && Digest.equal d pp.digest then acc + 1 else acc)
        0 (sorted_bindings entry.prepares)
    in
    if count >= 2 * t.config.f && entry.prepared_proof = None then begin
      entry.prepared_proof <-
        Some
          {
            M.pp_view = pp.view;
            pp_seq = pp.seq;
            pp_digest = pp.digest;
            pp_requests = pp.requests;
            pp_nondet = pp.nondet;
          };
      entry.t_prepared <- now t;
      observe_span t.obs.m_prepare ~since:entry.t_pp ~until:entry.t_prepared;
      if not entry.sent_commit then begin
        entry.sent_commit <- true;
        Hashtbl.replace entry.commits t.id pp.digest;
        broadcast t (M.Commit { view = pp.view; seq; digest = pp.digest; replica = t.id })
      end;
      maybe_committed t seq entry
    end
    else if entry.prepared_proof <> None then maybe_committed t seq entry
  | None -> ()

(* --- primary proposal --------------------------------------------------- *)

(* Order a batch of requests as one consensus instance. *)
and assign t (batch : M.request list) =
  t.next_seq <- t.next_seq + 1;
  let seq = t.next_seq in
  let operation = match batch with r :: _ -> r.M.operation | [] -> "" in
  let nondet = t.app.propose_nondet ~operation in
  let digest = ordering_digest batch nondet in
  let pp = { M.view = t.view; seq; digest; requests = batch; nondet } in
  let entry = get_entry t seq in
  entry.pre_prepare <- Some pp;
  entry.t_pp <- now t;
  List.iter
    (fun (r : M.request) ->
      let cr = client_rec t r.client in
      cr.assigned_ts <- r.timestamp;
      cr.assigned_seq <- seq;
      if Int64.compare cr.pending_since 0L >= 0 then begin
        observe_span t.obs.m_pre_prepare ~since:cr.pending_since ~until:entry.t_pp;
        cr.pending_since <- -1L
      end)
    batch;
  (match t.behavior with
  | Equivocate ->
    (* Send conflicting nondet values to odd and even backups. *)
    let nondet' = nondet ^ "\001" in
    let digest' = ordering_digest batch nondet' in
    let pp' = { pp with digest = digest'; nondet = nondet' } in
    for dst = 0 to t.config.n - 1 do
      if dst <> t.id then send_one t ~dst (M.Pre_prepare (if dst mod 2 = 0 then pp else pp'))
    done
  | Honest | Mute | Lie_in_replies -> broadcast t (M.Pre_prepare pp));
  maybe_prepared t seq entry

and inflight t = t.next_seq - t.last_exec

and window_full t = t.next_seq + 1 > t.h + t.config.log_window

and propose t (r : M.request) =
  let cr = client_rec t r.client in
  if r.timestamp < cr.assigned_ts || r.timestamp <= cr.last_ts then ()
  else if
    Int64.equal r.timestamp cr.assigned_ts
    && (match Hashtbl.find_opt t.entries cr.assigned_seq with
       | Some { pre_prepare = Some pp; _ } -> pp.view = t.view
       | Some _ | None -> false)
  then begin
    (* Assigned in this view already: retransmit so lost copies recover. *)
    match Hashtbl.find_opt t.entries cr.assigned_seq with
    | Some { pre_prepare = Some pp; _ } -> broadcast t (M.Pre_prepare pp)
    | Some _ | None -> ()
  end
  else if window_full t || inflight t >= t.config.max_inflight then
    (* Defer: the request is ordered in a batch as soon as earlier
       instances make progress (this is where batching comes from). *)
    Queue.add r t.queued_requests
  else
    (* Fresh assignment, including when an earlier assignment died with its
       view (it never reached a quorum, or the new-view O set would have
       re-proposed it); exactly-once execution is enforced by the
       client-table timestamp at execution time. *)
    assign t [ r ]

and drain_queue t =
  if primary_of t t.view = t.id && t.status = Normal then begin
    let continue = ref true in
    while (not (Queue.is_empty t.queued_requests)) && !continue do
      if window_full t || inflight t >= t.config.max_inflight then continue := false
      else begin
        (* Pop up to batch_max still-relevant requests into one instance. *)
        let batch = ref [] in
        let size = ref 0 in
        while !size < t.config.batch_max && not (Queue.is_empty t.queued_requests) do
          let r = Queue.pop t.queued_requests in
          let cr = client_rec t r.M.client in
          if r.M.timestamp > cr.assigned_ts && r.M.timestamp > cr.last_ts then begin
            batch := r :: !batch;
            incr size
          end
        done;
        match List.rev !batch with [] -> () | batch -> assign t batch
      end
    done
  end

let is_primary t = primary_of t t.view = t.id

let in_window t seq = seq > t.h && seq <= t.h + t.config.log_window

(* --- read-only requests ------------------------------------------------- *)

let execute_read_only t (r : M.request) =
  Base_obs.Profile.start t.prof t.p_exec;
  let result =
    t.app.execute ~client:r.client ~timestamp:r.timestamp ~operation:r.operation ~nondet:""
      ~read_only:true
  in
  Base_obs.Profile.stop t.prof t.p_exec;
  send_reply t
    { M.view = t.view; timestamp = r.timestamp; client = r.client; replica = t.id; result }

(* --- request handling --------------------------------------------------- *)

let handle_request t env (r : M.request) =
  if r.read_only then execute_read_only t r
  else begin
    let cr = client_rec t r.client in
    if r.timestamp < cr.last_ts then ()
    else if Int64.equal r.timestamp cr.last_ts then begin
      (* Retransmission of an executed request: resend the stored reply. *)
      match cr.last_reply with
      | Some reply -> send_reply t { reply with view = t.view; replica = t.id }
      | None -> ()
    end
    else begin
      (match cr.pending with
      | Some p when p.timestamp >= r.timestamp -> ()
      | Some _ | None ->
        if cr.pending = None then cr.pending_since <- now t;
        cr.pending <- Some r);
      if t.status = Normal then begin
        if is_primary t then propose t r
        else begin
          (* Relay the client's own envelope so the primary can check the
             client's MAC, and start the progress timer. *)
          t.net.send ~dst:(primary_of t t.view) env;
          start_vc_timer t
        end
      end
    end
  end

(* --- pre-prepare / prepare / commit ------------------------------------- *)

let handle_pre_prepare t sender (pp : M.pre_prepare) =
  let primary = primary_of t pp.view in
  if
    sender = primary && pp.view = t.view && t.status = Normal && in_window t pp.seq
    && t.id <> primary
  then begin
    let entry = get_entry t pp.seq in
    (* A pre-prepare left over from an earlier view is void in this one: a
       slot the old primary proposed but that never reached a quorum may be
       re-proposed with different contents after the view change (observed
       by replicas that were rebooting through the change).  Supersede it —
       unless the entry committed, in which case the new-view computation
       guarantees the digests agree anyway. *)
    (match entry.pre_prepare with
    | Some existing when existing.view < pp.view && not entry.committed ->
      entry.pre_prepare <- None;
      Hashtbl.reset entry.prepares;
      Hashtbl.reset entry.commits;
      entry.sent_commit <- false;
      entry.prepared_proof <- None;
      entry.t_pp <- -1L;
      entry.t_prepared <- -1L;
      entry.t_committed <- -1L
    | Some _ | None -> ());
    let acceptable =
      match entry.pre_prepare with
      | Some existing ->
        let same = Digest.equal existing.digest pp.digest in
        (* Same view, same slot, different digest: the primary signed two
           conflicting orderings — direct evidence of equivocation. *)
        if not same then Base_obs.Metrics.incr t.obs.c_equivocation;
        same
      | None ->
        Digest.equal (ordering_digest pp.requests pp.nondet) pp.digest
        && List.length pp.requests <= t.config.batch_max
        && (match pp.requests with
           | [] -> true
           | r :: _ -> t.app.check_nondet ~operation:r.M.operation ~nondet:pp.nondet)
    in
    if acceptable && entry.pre_prepare = None then begin
      entry.pre_prepare <- Some pp;
      entry.t_pp <- now t;
      List.iter
        (fun (r : M.request) ->
          if r.client >= 0 then begin
            let cr = client_rec t r.client in
            (* The pre-prepare span is only meaningful when the request was
               already known here (relayed to the primary earlier); requests
               first learned from the pre-prepare itself would record 0. *)
            if Int64.compare cr.pending_since 0L >= 0 then begin
              observe_span t.obs.m_pre_prepare ~since:cr.pending_since ~until:entry.t_pp;
              cr.pending_since <- -1L
            end;
            match cr.pending with
            | Some p when p.timestamp >= r.timestamp -> ()
            | Some _ | None -> if r.timestamp > cr.last_ts then cr.pending <- Some r
          end)
        pp.requests;
      start_vc_timer t;
      Hashtbl.replace entry.prepares t.id pp.digest;
      broadcast t (M.Prepare { view = pp.view; seq = pp.seq; digest = pp.digest; replica = t.id });
      maybe_prepared t pp.seq entry
    end
  end

let handle_prepare t sender (p : M.prepare) =
  if
    sender = p.replica && p.view = t.view && t.status = Normal && in_window t p.seq
    && sender <> primary_of t p.view
  then begin
    let entry = get_entry t p.seq in
    if not (Hashtbl.mem entry.prepares sender) then begin
      (match entry.pre_prepare with
      | Some accepted
        when accepted.view = p.view && not (Digest.equal accepted.digest p.digest) ->
        (* A peer prepared a different digest for the slot we accepted: it
           must have seen a conflicting pre-prepare from the primary. *)
        Base_obs.Metrics.incr t.obs.c_equivocation
      | Some _ | None -> ());
      Hashtbl.replace entry.prepares sender p.digest;
      maybe_prepared t p.seq entry
    end
  end

let handle_commit t sender (c : M.commit) =
  if sender = c.replica && c.view <= t.view && in_window t c.seq then begin
    let entry = get_entry t c.seq in
    if not (Hashtbl.mem entry.commits sender) then begin
      Hashtbl.replace entry.commits sender c.digest;
      maybe_prepared t c.seq entry
    end
  end

(* --- checkpoints and state transfer ------------------------------------- *)

let fetch_target t =
  let weak = Types.weak_quorum t.config in
  List.fold_left
    (fun best (seq, tbl) ->
      if seq < t.h then best
      else begin
        (* Find a digest with >= f+1 votes at this seqno. *)
        let certified =
          List.fold_left
            (fun acc (_, d) ->
              match acc with
              | Some _ -> acc
              | None -> if count_matching tbl d >= weak then Some d else None)
            None (sorted_bindings tbl)
        in
        match (certified, best) with
        | Some d, None -> Some (seq, d)
        | Some d, Some (bs, _) when seq > bs -> Some (seq, d)
        | _ -> best
      end)
    None (sorted_bindings t.cp_msgs)

(* A repair fetch may target a checkpoint at or below our own execution
   point: the replica rolls back to it and re-executes the committed log
   suffix (deterministically), which restores any corrupt concrete state. *)
let start_fetch_internal ?(allow_repair = false) t (seq, digest) =
  if t.fetch_in_progress = None && (seq > t.last_exec || (allow_repair && seq >= t.h))
  then begin
    t.fetch_in_progress <- Some (seq, digest);
    t.resume_vc_after_fetch <- t.status = View_changing;
    t.status <- Fetching;
    t.stats.fetches <- t.stats.fetches + 1;
    cancel_vc_timer t;
    t.app.start_fetch ~seq ~digest
  end

let maybe_fetch_check t ~stalled =
  match fetch_target t with
  | Some (seq, d) when seq > t.last_exec && (seq >= t.h + t.config.log_window || stalled) ->
    (* Transfer when the log can no longer bridge the gap, or when we are
       demonstrably stuck and a certified state exists ahead of us. *)
    start_fetch_internal t (seq, d)
  | Some _ | None -> ()

let handle_checkpoint t sender (c : M.checkpoint) =
  (* Only votes from active replicas count: a checkpoint certificate built
     from f+1 of them always contains a correct replica, which would not
     hold if clients (or standbys) could stuff the table. *)
  if sender = c.replica && Types.is_replica t.config sender && c.seq > t.h then begin
    let tbl = cp_table t c.seq in
    Hashtbl.replace tbl sender c.digest;
    if t.role = Active then begin
      maybe_stable t c.seq;
      maybe_fetch_check t ~stalled:false
    end
  end

let initiate_fetch t =
  match fetch_target t with
  | Some target -> start_fetch_internal ~allow_repair:true t target
  | None -> ()

let force_fetch t ~seq ~digest = start_fetch_internal ~allow_repair:true t (seq, digest)

let fetch_complete t ~seq ~app_digest ~client_rows =
  let client_digest = digest_of_rows client_rows in
  let combined = checkpoint_digest ~app_digest ~client_digest in
  (match t.fetch_in_progress with
  | Some (target_seq, target_digest) when target_seq = seq ->
    assert (Digest.equal combined target_digest)
  | Some _ | None -> ());
  (* Install the transferred last-reply table. *)
  Hashtbl.reset t.clients;
  List.iter
    (fun (c, ts, result) ->
      let cr = client_rec t c in
      cr.last_ts <- ts;
      cr.last_reply <-
        Some { M.view = t.view; timestamp = ts; client = c; replica = t.id; result })
    client_rows;
  (* Move the execution cursor to the transferred checkpoint.  When it lies
     below our previous position this is a rollback: the committed entries
     still in the log re-execute deterministically on the restored state.
     The cursor must follow the state unconditionally — the transfer
     installed the at-[seq] state, so leaving the cursor anywhere else
     would silently drop every operation between them. *)
  t.last_exec <- seq;
  if seq > t.h then begin
    t.h <- seq;
    t.stable_digest <- combined;
    Hashtbl.replace t.own_cps seq combined;
    discard_log_below t seq
  end;
  t.fetch_in_progress <- None;
  if t.status = Fetching then begin
    if t.resume_vc_after_fetch then begin
      (* The fetch interrupted an unresolved view change: stay in it, with
         its escalation timer re-armed, until NEW-VIEW or abandonment. *)
      t.status <- View_changing;
      t.vc_timer <-
        Some (t.net.set_timer ~after_us:t.vc_timeout_us ~tag:"vc" ~payload:t.view)
    end
    else t.status <- Normal
  end;
  t.resume_vc_after_fetch <- false;
  if t.next_seq < t.h then t.next_seq <- t.h;
  if seq < t.h then
    (* The stable watermark overtook the fetch target while the transfer
       was in flight (checkpoints keep certifying while we are Fetching),
       and the log below the new watermark is gone — re-execution cannot
       bridge the gap.  The replica is now simply behind: fetch again,
       against the freshest certified checkpoint (>= h). *)
    initiate_fetch t;
  try_execute t;
  drain_queue t

(* --- view changes -------------------------------------------------------- *)

let prepared_proofs t =
  Hashtbl.fold
    (fun seq entry acc ->
      if seq > t.h then
        match entry.prepared_proof with Some p -> p :: acc | None -> acc
      else acc)
    t.entries []
  |> List.sort (fun a b -> Int.compare a.M.pp_seq b.M.pp_seq)

let vc_table t view =
  match Hashtbl.find_opt t.vcs view with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    Hashtbl.replace t.vcs view tbl;
    tbl

(* Compute the new-view pre-prepare set O from a view-change set.  The
   rebuilt window is capped at [log_window] slots below [max_s]: honest
   view-changes only carry prepared proofs within one window of their
   stable checkpoint, so the cap is invisible to them, while a Byzantine
   proof claiming a far-away [pp_seq] can no longer make this loop (and
   the pre-prepares it allocates) arbitrarily long. *)
let compute_o ~log_window v' (vc_list : M.view_change list) =
  let min_s = List.fold_left (fun acc vc -> max acc vc.M.last_stable) 0 vc_list in
  let max_s =
    List.fold_left
      (fun acc vc ->
        List.fold_left (fun acc p -> max acc p.M.pp_seq) acc vc.M.prepared)
      min_s vc_list
  in
  let count = min (max_s - min_s) log_window in
  let o = ref [] in
  for k = 0 to count - 1 do
    let seq = max_s - k in
    let best =
      List.fold_left
        (fun acc vc ->
          List.fold_left
            (fun acc p ->
              if p.M.pp_seq <> seq then acc
              else
                match acc with
                | Some b when b.M.pp_view >= p.M.pp_view -> acc
                | Some _ | None -> Some p)
            acc vc.M.prepared)
        None vc_list
    in
    let pp =
      match best with
      | Some p ->
        {
          M.view = v';
          seq;
          digest = p.M.pp_digest;
          requests = p.M.pp_requests;
          nondet = p.M.pp_nondet;
        }
      | None -> { M.view = v'; seq; digest = ordering_digest [] ""; requests = []; nondet = "" }
    in
    o := pp :: !o
  done;
  (min_s, !o)

let rec do_view_change t v' =
  if v' > t.view || (v' = t.view && t.status = Normal) then begin
    t.view <- v';
    t.status <- View_changing;
    if Int64.compare t.obs.vc_started 0L < 0 then t.obs.vc_started <- now t;
    t.stats.view_changes <- t.stats.view_changes + 1;
    cancel_vc_timer t;
    let vc =
      {
        M.new_view = v';
        last_stable = t.h;
        stable_digest = t.stable_digest;
        prepared = prepared_proofs t;
        replica = t.id;
      }
    in
    Hashtbl.replace (vc_table t v') t.id vc;
    broadcast t (M.View_change vc);
    (* Escalate with a doubled (but bounded) timeout if this view change
       stalls. *)
    t.vc_timeout_us <- min (t.vc_timeout_us * 2) (20 * t.config.viewchange_timeout_us);
    t.vc_timer <- Some (t.net.set_timer ~after_us:t.vc_timeout_us ~tag:"vc" ~payload:v');
    check_new_view t v'
  end

and install_new_view t v' min_s (o : M.pre_prepare list) =
  t.view <- v';
  t.status <- Normal;
  observe_span t.obs.m_view_change ~since:t.obs.vc_started ~until:(now t);
  t.obs.vc_started <- -1L;
  t.resume_vc_after_fetch <- false;
  t.vc_timeout_us <- t.config.viewchange_timeout_us;
  cancel_vc_timer t;
  (* Certificates from earlier views are void in the new view. *)
  List.iter
    (fun (pp : M.pre_prepare) ->
      let entry = get_entry t pp.seq in
      if not entry.committed then begin
        entry.pre_prepare <- Some pp;
        entry.t_pp <- now t;
        Hashtbl.reset entry.prepares;
        if not entry.sent_commit then Hashtbl.reset entry.commits;
        entry.prepared_proof <- None;
        entry.sent_commit <- false;
        if not (is_primary t) then begin
          Hashtbl.replace entry.prepares t.id pp.digest;
          broadcast t
            (M.Prepare { view = v'; seq = pp.seq; digest = pp.digest; replica = t.id })
        end
      end)
    o;
  if t.next_seq < min_s then t.next_seq <- min_s;
  let max_o = List.fold_left (fun acc (pp : M.pre_prepare) -> max acc pp.seq) min_s o in
  if t.next_seq < max_o then t.next_seq <- max_o;
  if min_s > t.h then begin
    (* We are behind the new-view's stable checkpoint: transfer state. *)
    match fetch_target t with
    | Some target -> start_fetch_internal t target
    | None -> ()
  end;
  List.iter (fun (pp : M.pre_prepare) -> maybe_prepared t pp.seq (get_entry t pp.seq)) o;
  if has_pending t then start_vc_timer t;
  drain_queue t;
  (* The new primary immediately proposes the client requests it knows are
     still waiting; without this, liveness depends on a client
     retransmission landing inside the view's timeout window. *)
  if is_primary t then
    List.iter
      (fun (_, cr) ->
        match cr.pending with
        | Some r when r.timestamp > cr.last_ts -> propose t r
        | Some _ | None -> ())
      (sorted_bindings t.clients)

and check_new_view t v' =
  if primary_of t v' = t.id && t.status = View_changing && t.view = v' then begin
    let tbl = vc_table t v' in
    if Hashtbl.length tbl >= Types.quorum t.config then begin
      let vc_list = List.map snd (sorted_bindings tbl) in
      let min_s, o = compute_o ~log_window:t.config.log_window v' vc_list in
      let summary = List.map (fun vc -> (vc.M.replica, vc.M.last_stable)) vc_list in
      let nv = { M.nv_view = v'; nv_view_changes = summary; nv_pre_prepares = o } in
      t.last_nv <- Some nv;
      broadcast t (M.New_view nv);
      install_new_view t v' min_s o
    end
  end

(* A view-change passes the MAC check on its own authority, so every field
   is still just the sender's claim.  Before it enters the [vcs] table —
   where [compute_o] and the liveness rule consume it as fact — require
   the claims to be mutually plausible: non-negative watermarks, and every
   prepared proof within one log window above the stable checkpoint (the
   only place an honest replica can have prepared anything).  A proof
   outside that range could otherwise widen the reconstructed new-view
   window to an attacker-chosen span. *)
let vc_sane t (vc : M.view_change) =
  vc.last_stable >= 0
  && List.for_all
       (fun (p : M.prepared_proof) ->
         p.pp_seq > vc.last_stable
         && p.pp_seq <= vc.last_stable + t.config.log_window
         && p.pp_view >= 0 && p.pp_view < vc.new_view
         && List.length p.pp_requests <= t.config.batch_max)
       vc.prepared

let handle_view_change t sender (vc : M.view_change) =
  if not (vc_sane t vc) then begin
    t.stats.rejected_insane <- t.stats.rejected_insane + 1;
    Base_obs.Metrics.incr t.obs.c_reject_insane
  end
  else if sender = vc.replica && vc.new_view > 0 then begin
    Hashtbl.replace (vc_table t vc.new_view) sender vc;
    (* Liveness rule: join the smallest view for which f+1 replicas already
       asked for a view change above ours. *)
    if vc.new_view > t.view then begin
      (* Every (replica, view) vote above our view; the per-replica minimum
         view over these attains its minimum at the overall minimum, so the
         target view is just the smallest voted view. *)
      let votes =
        List.concat_map
          (fun (v, tbl) ->
            if v > t.view then List.map (fun (r, _) -> (r, v)) (sorted_bindings tbl) else [])
          (sorted_bindings t.vcs)
      in
      let voters = List.sort_uniq Int.compare (List.map fst votes) in
      if List.length voters >= Types.weak_quorum t.config then begin
        let target = List.fold_left (fun acc (_, v) -> min acc v) max_int votes in
        do_view_change t target
      end
    end;
    check_new_view t vc.new_view
  end

(* Shape check on a NEW-VIEW before we adopt any of its numbers: the
   claimed stable seqnos must be non-negative and every bundled
   pre-prepare must sit inside one log window above the highest claimed
   checkpoint, in the new view itself.  Without this a Byzantine primary
   could teleport [next_seq] (and thus the whole log window) to an
   arbitrary seqno of its choosing. *)
let nv_sane t (nv : M.new_view) =
  let min_s = List.fold_left (fun acc (_, s) -> max acc s) 0 nv.nv_view_changes in
  nv.nv_view > 0
  && List.for_all (fun (_, s) -> s >= 0) nv.nv_view_changes
  && List.for_all
       (fun (pp : M.pre_prepare) ->
         pp.view = nv.nv_view
         && pp.seq > min_s
         && pp.seq <= min_s + t.config.log_window)
       nv.nv_pre_prepares

let handle_new_view t sender (nv : M.new_view) =
  let v' = nv.nv_view in
  if sender = primary_of t v' && v' >= t.view && sender <> t.id then begin
    (* Recompute O from the view-change messages the primary claims to have
       used; if we hold them all, the result must match exactly. *)
    let tbl = vc_table t v' in
    let vcs_used =
      List.filter_map (fun (r, _) -> Hashtbl.find_opt tbl r) nv.nv_view_changes
    in
    let verifiable = List.length vcs_used = List.length nv.nv_view_changes in
    let sane = nv_sane t nv in
    if not sane then begin
      t.stats.rejected_insane <- t.stats.rejected_insane + 1;
      Base_obs.Metrics.incr t.obs.c_reject_insane
    end;
    let ok =
      if not sane then false
      else if not verifiable then List.length nv.nv_view_changes >= Types.quorum t.config
      else begin
        let min_s, o = compute_o ~log_window:t.config.log_window v' vcs_used in
        ignore min_s;
        List.length o = List.length nv.nv_pre_prepares
        && List.for_all2
             (fun (a : M.pre_prepare) (b : M.pre_prepare) ->
               a.seq = b.seq && Digest.equal a.digest b.digest)
             o nv.nv_pre_prepares
      end
    in
    if ok then begin
      let min_s =
        List.fold_left (fun acc (_, s) -> max acc s) 0 nv.nv_view_changes
      in
      install_new_view t v' min_s nv.nv_pre_prepares
    end
    else do_view_change t (v' + 1)
  end

(* --- retransmission / progress timer ------------------------------------ *)

let arm_status_timer t =
  (match t.status_timer with Some id -> t.net.cancel_timer id | None -> ());
  t.status_timer <-
    Some (t.net.set_timer ~after_us:(t.config.viewchange_timeout_us / 2) ~tag:"status" ~payload:0)

let on_status_timer t =
  (* Re-announce the latest own checkpoint so laggards find fetch targets,
     and gossip progress so peers can retransmit what we are missing. *)
  (match Hashtbl.find_opt t.own_cps t.h with
  | Some d when t.h > 0 ->
    broadcast_group t (M.Checkpoint { seq = t.h; digest = d; replica = t.id })
  | Some _ | None -> ());
  broadcast t
    (M.Status { st_view = t.view; st_last_exec = t.last_exec; st_h = t.h; st_replica = t.id });
  let stalled = t.last_exec = t.last_progress_exec in
  if stalled && t.status = Normal then begin
    (* Retransmit protocol messages for in-flight slots, in seqno order. *)
    List.iter
      (fun (seq, entry) ->
        if seq > t.last_exec then begin
          match entry.pre_prepare with
          | Some pp when pp.view = t.view ->
            if is_primary t then broadcast t (M.Pre_prepare pp)
            else if Hashtbl.mem entry.prepares t.id then
              broadcast t
                (M.Prepare { view = pp.view; seq; digest = pp.digest; replica = t.id });
            if entry.sent_commit then
              broadcast t
                (M.Commit { view = pp.view; seq; digest = pp.digest; replica = t.id })
          | Some _ | None -> ()
        end)
      (sorted_bindings t.entries);
    maybe_fetch_check t ~stalled:true
  end;
  t.last_progress_exec <- t.last_exec;
  arm_status_timer t

let start_status_timer t = if t.status_timer = None then arm_status_timer t

(* Called after a proactive-recovery reboot: timers that fired while the
   node was down were dropped, so re-arm them. *)
let on_reboot t =
  t.vc_timer <- None;
  if has_pending t then start_vc_timer t;
  arm_status_timer t

let abort_fetch t =
  t.fetch_in_progress <- None;
  if t.status = Fetching then t.status <- Normal

(* Standby bookkeeping after a completed shadow sync: advance the watermark
   to the synced checkpoint and drop certificate tables below it, so the
   certificate store stays bounded however long the standby shadows the
   group.  Called by the runtime's shadow-sync driver only. *)
let standby_note_synced t ~seq ~digest =
  if t.role = Standby && seq > t.h then begin
    t.h <- seq;
    t.stable_digest <- digest;
    t.last_exec <- seq;
    discard_log_below t seq
  end

(* A peer announced it is behind us: retransmit, directly to it, the
   protocol messages it needs to make progress — our pre-prepares if we led
   their view of those slots, plus our prepares, commits and checkpoint.
   This is PBFT's status/retransmission mechanism, which gives liveness when
   a replica missed messages while rebooting. *)
let handle_status t sender (st : M.status_msg) =
  if sender = st.st_replica then Hashtbl.replace t.peer_views sender st.st_view;
  (* View abandonment: a replica that escalated views alone (e.g. around a
     proactive recovery) can never gather 2f+1 VIEW-CHANGEs — had f+1 peers
     been with it, the group would have joined.  When a quorum of peers
     reports lower views and we hold no prepared certificate above them,
     rejoin the group's view; nothing could have committed in ours. *)
  if sender = st.st_replica && t.status = View_changing && st.st_view < t.view then begin
    let lower, target =
      List.fold_left
        (fun (count, best) (_, v) ->
          if v < t.view then (count + 1, max best v) else (count, best))
        (0, 0) (sorted_bindings t.peer_views)
    in
    let prepared_above =
      List.exists
        (fun (_, e) ->
          match e.prepared_proof with Some p -> p.M.pp_view > target | None -> false)
        (sorted_bindings t.entries)
    in
    if lower >= Types.quorum t.config - 1 && not prepared_above then begin
      t.view <- target;
      t.status <- Normal;
      t.obs.vc_started <- -1L;
      t.vc_timeout_us <- t.config.viewchange_timeout_us;
      cancel_vc_timer t;
      if has_pending t then start_vc_timer t
    end
  end;
  (* A peer stuck in an older view missed the view change while it was down
     (proactive recovery, crash): a replica rejoining the group this way has
     no other path back, because clients have moved on to the new primary and
     only pending client requests escalate views locally.  The primary that
     installed the current view retransmits its NEW-VIEW, which the laggard
     verifies and installs through the normal quorum-trusting path. *)
  if sender = st.st_replica && st.st_view < t.view then begin
    match t.last_nv with
    | Some nv when nv.M.nv_view = t.view && primary_of t t.view = t.id ->
      send_one t ~dst:sender (M.New_view nv)
    | Some _ | None -> ()
  end;
  if sender = st.st_replica && st.st_view <= t.view then begin
    (* Checkpoint proof so it can garbage-collect / find fetch targets. *)
    (match Hashtbl.find_opt t.own_cps t.h with
    | Some d when t.h > st.st_h -> send_one t ~dst:sender (M.Checkpoint { seq = t.h; digest = d; replica = t.id })
    | Some _ | None -> ());
    if st.st_view = t.view && st.st_last_exec < t.last_exec then begin
      let upper = min t.last_exec (st.st_h + t.config.log_window) in
      (* A Byzantine STATUS can claim an arbitrarily low [st_last_exec];
         iterating from it would replay (and allocate protocol messages
         for) an attacker-chosen number of slots.  An honest laggard's gap
         within [upper] never exceeds the log window, so cap the replay
         count there and serve the top of the range. *)
      let count = min (upper - st.st_last_exec) t.config.log_window in
      let unreplayable = ref false in
      for off = 1 to count do
        let seq = upper - count + off in
        (match Hashtbl.find_opt t.entries seq with
        | Some ({ pre_prepare = Some pp; _ } as entry) when pp.view = t.view ->
          if primary_of t pp.view = t.id then
            send_one t ~dst:sender (M.Pre_prepare pp)
          else if Hashtbl.mem entry.prepares t.id then
            send_one t ~dst:sender
              (M.Prepare { view = pp.view; seq; digest = pp.digest; replica = t.id });
          if entry.sent_commit then
            send_one t ~dst:sender
              (M.Commit { view = pp.view; seq; digest = pp.digest; replica = t.id })
        | Some { pre_prepare = Some pp; committed = true; _ } when pp.view < t.view ->
          (* Committed under an earlier primary: the agreement messages are
             void in this view and will never be re-run. *)
          unreplayable := true
        | Some _ -> ()
        | None -> unreplayable := true)
      done;
      (* The laggard cannot be fed messages for part of its gap; give it a
         state-transfer target instead by checkpointing our current state
         off-schedule (every up-to-date replica does the same on seeing the
         laggard's STATUS, so the checkpoint gets certified). *)
      if !unreplayable && not (Hashtbl.mem t.own_cps t.last_exec) then take_checkpoint t
    end
  end

(* --- entry points -------------------------------------------------------- *)

let on_timer t ~tag ~payload =
  match tag with
  | "vc" ->
    if t.behavior <> Mute then begin
      if t.status = View_changing && t.view = payload then do_view_change t (t.view + 1)
      else if t.status = Normal && t.view = payload && has_pending t then begin
        t.vc_timer <- None;
        do_view_change t (t.view + 1)
      end
    end
  | "status" -> if t.behavior <> Mute then on_status_timer t else ()
  | _ -> ()

let receive t (env : M.envelope) =
  Base_obs.Profile.start t.prof t.p_verify;
  let authentic = M.verify t.keychain ~receiver:t.id env in
  Base_obs.Profile.stop t.prof t.p_verify;
  if not authentic then begin
    t.stats.rejected_macs <- t.stats.rejected_macs + 1;
    Base_obs.Metrics.incr t.obs.c_reject_mac
  end
  else if env.shard <> t.shard then begin
    (* The MAC binds the shard tag, so this is a well-authenticated message
       for a different agreement instance — mis-routed, not forged.  It is
       meaningless here (seqnos and views are per-shard namespaces). *)
    t.stats.rejected_insane <- t.stats.rejected_insane + 1;
    Base_obs.Metrics.incr t.obs.c_reject_insane
  end
  else begin
    Base_obs.Profile.start t.prof t.p_handle;
    (if t.role = Standby then begin
       (* A standby only ever learns checkpoint certificates; every agreement
          message is noise to it (and processing one could make it broadcast,
          which a non-voting group member must never do). *)
       match env.body with
       | M.Checkpoint c -> handle_checkpoint t env.sender c
       | M.Request _ | M.Pre_prepare _ | M.Prepare _ | M.Commit _ | M.View_change _
       | M.New_view _ | M.Status _ | M.Reply _ -> ()
     end
     else
       match env.body with
       | M.Request r ->
         (* Only the client's own (possibly relayed) envelope is acceptable:
            the MAC was checked under the key shared with [env.sender], so a
            replica cannot forge requests on a client's behalf. *)
         if r.client = env.sender then handle_request t env r
       | M.Pre_prepare pp -> handle_pre_prepare t env.sender pp
       | M.Prepare p -> handle_prepare t env.sender p
       | M.Commit c -> handle_commit t env.sender c
       | M.Checkpoint c -> handle_checkpoint t env.sender c
       | M.View_change vc -> handle_view_change t env.sender vc
       | M.New_view nv -> handle_new_view t env.sender nv
       | M.Status st -> handle_status t env.sender st
       | M.Reply _ -> ());
    Base_obs.Profile.stop t.prof t.p_handle
  end

let receive_wire ?(shard = 0) t ~sender ~macs raw =
  match M.of_wire ~shard ~sender ~macs raw with
  | Error _ ->
    t.stats.rejected_decode <- t.stats.rejected_decode + 1;
    Base_obs.Metrics.incr t.obs.c_reject_decode
  | Ok env -> receive t env

let create ?metrics ?(profile = Base_obs.Profile.disabled) ?(role = Active) ?(shard = 0) ~config
    ~id ~keychain ~net ~app () =
  let metrics =
    match metrics with Some m -> m | None -> Base_obs.Metrics.create ()
  in
  let t =
    {
      config;
      id;
      shard;
      keychain;
      net;
      app;
      role;
      behavior = Honest;
      view = 0;
      status = Normal;
      entries = Hashtbl.create 64;
      clients = Hashtbl.create 16;
      cp_msgs = Hashtbl.create 16;
      own_cps = Hashtbl.create 16;
      h = 0;
      stable_digest = Digest.zero;
      last_exec = 0;
      next_seq = 0;
      queued_requests = Queue.create ();
      vcs = Hashtbl.create 8;
      vc_timer = None;
      vc_timeout_us = config.viewchange_timeout_us;
      status_timer = None;
      last_progress_exec = 0;
      fetch_in_progress = None;
      resume_vc_after_fetch = false;
      external_pending = 0;
      in_try_execute = false;
      exec_again = false;
      peer_views = Hashtbl.create 8;
      last_nv = None;
      stats =
        {
          executed = 0;
          executed_requests = 0;
          checkpoints_taken = 0;
          view_changes = 0;
          fetches = 0;
          rejected_macs = 0;
          rejected_decode = 0;
          rejected_insane = 0;
        };
      obs = make_obs ~suffix:(if shard = 0 then "" else Printf.sprintf ".s%d" shard) metrics;
      prof = profile;
      p_verify = Base_obs.Profile.probe profile "bft.verify";
      p_seal = Base_obs.Profile.probe profile "bft.seal";
      p_handle = Base_obs.Profile.probe profile "bft.handle";
      p_exec = Base_obs.Profile.probe profile "bft.execute";
    }
  in
  (* Initial checkpoint at seqno 0 so watermark logic is uniform. *)
  let app_digest = app.take_checkpoint ~seq:0 in
  let d = checkpoint_digest ~app_digest ~client_digest:(client_table_digest t) in
  Hashtbl.replace t.own_cps 0 d;
  t.stable_digest <- d;
  t

let id t = t.id

let shard t = t.shard

let role t = t.role

(* --- cross-shard runtime hooks ------------------------------------------- *)

let submit_internal t (r : M.request) =
  if t.role = Active && t.status = Normal && is_primary t then propose t r

let resume_execution t =
  try_execute t;
  drain_queue t

let add_external_pending t =
  t.external_pending <- t.external_pending + 1;
  start_vc_timer t

let clear_external_pending t =
  t.external_pending <- max 0 (t.external_pending - 1);
  restart_vc_timer t

let view t = t.view

let last_executed t = t.last_exec

let low_watermark t = t.h

let status t = t.status

let stats t = t.stats

let set_behavior t b = t.behavior <- b

let behavior t = t.behavior
