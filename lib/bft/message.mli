(** PBFT protocol messages, their canonical encodings and MAC envelopes.

    Every message body has a canonical XDR encoding used for three purposes:
    request digests, MAC computation, and wire-size accounting in the
    simulator.  Messages travel inside an {!envelope} carrying an
    authenticator — one HMAC per receiver — so a Byzantine sender cannot
    impersonate another principal (the MACs are really checked). *)

module Digest = Base_crypto.Digest_t

type request = {
  client : int;
  timestamp : int64;  (** client-local, strictly increasing; identifies the request *)
  operation : string;  (** opaque payload interpreted by the service *)
  read_only : bool;
}

val null_request : request
(** Placeholder ordered by new-view for gaps; executes as a no-op. *)

type pre_prepare = {
  view : Types.view;
  seq : Types.seqno;
  digest : Digest.t;  (** digest of the batch and the nondet proposal *)
  requests : request list;  (** the piggybacked batch; empty = null request *)
  nondet : string;  (** primary's proposal for non-deterministic values *)
}

type prepare = { view : Types.view; seq : Types.seqno; digest : Digest.t; replica : int }

type commit = { view : Types.view; seq : Types.seqno; digest : Digest.t; replica : int }

type reply = {
  view : Types.view;
  timestamp : int64;
  client : int;
  replica : int;
  result : string;
}

type checkpoint = { seq : Types.seqno; digest : Digest.t; replica : int }

(** Certificate that (seq, digest) prepared in some view: the pre-prepare
    data plus 2f matching prepares, carried inside view-change messages. *)
type prepared_proof = {
  pp_view : Types.view;
  pp_seq : Types.seqno;
  pp_digest : Digest.t;
  pp_requests : request list;
  pp_nondet : string;
}

type view_change = {
  new_view : Types.view;
  last_stable : Types.seqno;
  stable_digest : Digest.t;
  prepared : prepared_proof list;
  replica : int;
}

type new_view = {
  nv_view : Types.view;
  nv_view_changes : (int * Types.seqno) list;
      (** summary of the accepted view-change set: (replica, last_stable) *)
  nv_pre_prepares : pre_prepare list;  (** the O set, re-proposed in the new view *)
}

(** Periodic liveness gossip: lets peers retransmit what a lagging replica
    is missing (PBFT's status messages). *)
type status_msg = { st_view : Types.view; st_last_exec : Types.seqno; st_h : Types.seqno; st_replica : int }

type body =
  | Request of request
  | Pre_prepare of pre_prepare
  | Prepare of prepare
  | Commit of commit
  | Reply of reply
  | Checkpoint of checkpoint
  | View_change of view_change
  | New_view of new_view
  | Status of status_msg

(** Content-addressed envelope.  [wire] is the canonical encoding the body
    was sealed from (or, on the wire path, the bytes as received), and
    [digest_memo] memoises its SHA-256 — computed at most once per
    envelope, never per receiver.  MACs cover the digest, so they bind the
    exact wire bytes: construct envelopes only through {!seal},
    {!seal_for} or {!of_wire}, which keep [body], [wire] and the MACs
    consistent. *)
type envelope = {
  sender : int;
  shard : int;
      (** the agreement instance (shard) this envelope belongs to; [0] for
          unsharded deployments.  The MACs bind it (see {!seal}), so a
          certificate from one shard cannot be replayed into another. *)
  body : body;
  wire : string;  (** canonical encoding of [body] / bytes as received *)
  mutable digest_memo : Digest.t option;  (** memoised SHA-256 of [wire] *)
  macs : string array;
      (** authenticator; [macs.(r - mac_lo)] is receiver [r]'s MAC *)
  mac_lo : int;  (** id of the first receiver the authenticator covers *)
  size : int;  (** wire size: encoded body + authenticator *)
}

val envelope_digest : envelope -> Digest.t
(** The (memoised) digest of [wire]; equals a from-scratch SHA-256 of the
    canonical encoding — the differential digest suite pins this. *)

val encode_request : request -> string

val request_digest : request -> Digest.t

val encode_batch : request list -> nondet:string -> string
(** Injective canonical encoding of (batch, nondet) — the preimage of the
    ordering digest, hashed in one pass. *)

val encode_body : body -> string

val decode_body : string -> (body, string) result
(** Inverse of {!encode_body}.  Malformed input yields [Error msg] — decode
    failures must never raise across a message boundary, since the bytes come
    from untrusted (possibly Byzantine) senders.  The simulator passes message
    values directly, but the wire format round-trips for real transports
    (property-tested). *)

val seal :
  Base_crypto.Auth.keychain -> ?shard:int -> sender:int -> n_receivers:int -> body -> envelope
(** Build an authenticated envelope for receivers [0 .. n_receivers - 1] —
    the form every replica-bound message uses ([n_receivers = n]).  The MAC
    vector no longer scales with the total principal count, which is what
    keeps sealing affordable with thousands of registered clients.
    [?shard] (default [0]) tags the envelope with its agreement instance;
    for shard [k > 0] the MAC input mixes in the shard id, while shard 0
    MACs are byte-identical to pre-sharding envelopes. *)

val seal_for :
  Base_crypto.Auth.keychain -> ?shard:int -> sender:int -> receiver:int -> body -> envelope
(** Build a unicast envelope carrying a single MAC for [receiver] — the form
    replica-to-client replies use.  [?shard] as in {!seal}. *)

val shard_overhead : int -> int
(** Accounted wire bytes of the shard tag: [0] for shard 0 (the tag is
    implicit, keeping unsharded traffic byte-identical to pre-sharding
    deployments) and [4] for any other shard. *)

val of_wire :
  ?shard:int -> sender:int -> macs:string array -> string -> (envelope, string) result
(** Build an envelope from raw received bytes: decode, then adopt the bytes
    as the envelope's [wire] so MAC checks cover exactly what arrived —
    corruption that decoding happens to tolerate (a flipped padding byte)
    still voids every MAC. *)

val verify : Base_crypto.Auth.keychain -> receiver:int -> envelope -> bool
(** Check the receiver's MAC slot against the memoised wire digest under
    the claimed sender's key (one 32-byte HMAC; the body is never
    re-encoded). *)

val kind_label : body -> string
(** Constant constructor tag (["PRE-PREPARE"]), allocation-free; the
    engine's per-type traffic accounting keys on this. *)

val label : body -> string
(** Short tag for traces, e.g. ["PRE-PREPARE(v=0,n=5)"]. *)
