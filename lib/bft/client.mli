(** PBFT client: the [invoke] side of the library interface (Figure 1).

    A client sends an authenticated request to the primary (retransmitting to
    all replicas on timeout) and accepts a result once enough replicas sent
    matching replies: f+1 for read-write operations, 2f+1 for the read-only
    optimisation.  A read-only request that cannot gather a 2f+1 quorum is
    retried as a regular request {e under a fresh timestamp}, as in the BFT
    library — reusing the timestamp would let stale tentative replies from
    the abandoned read-only attempt count toward the weaker ordered quorum.

    The simulator is event-driven, so [invoke] takes a completion callback
    rather than blocking; one request is outstanding at a time and further
    invocations queue.  Hosts that need many requests in flight multiplex a
    pool of clients (see {!Base_workload.Load}). *)

type net = {
  send : dst:int -> Message.envelope -> unit;
  set_timer : after_us:int -> tag:string -> payload:int -> int;
  cancel_timer : int -> unit;
  now_us : unit -> int64;
}

type stats = {
  mutable completed : int;
  mutable retransmissions : int;
  mutable read_only_fallbacks : int;
  latency_us : Base_obs.Metrics.histogram;
      (** per completed operation, streaming (O(buckets) memory however many
          requests complete); shared with every other client registered over
          the same [?metrics] registry *)
}

type t

val create :
  ?metrics:Base_obs.Metrics.t ->
  ?profile:Base_obs.Profile.t ->
  ?route:(string -> int) ->
  config:Types.config ->
  id:int ->
  keychain:Base_crypto.Auth.keychain ->
  net:net ->
  unit ->
  t
(** [id] must be [>= config.n] (replica ids come first).  [metrics] is the
    registry the latency histogram registers in ([bft.client.latency_us]);
    clients sharing a registry share the histogram, which is how a large
    client pool keeps one aggregate latency series.  Defaults to a private
    registry.  [profile] attaches hot-path probes ([client.verify],
    [client.seal]); defaults to the shared disabled instance.

    [route] maps an operation to the shard whose agreement instance must
    order it (normally derived from the service's
    {!Base_core.Service.wrapper.oids_of_op} footprint and
    {!Types.shard_of_oid}); requests are tagged and MACed with its answer.
    The default routes everything to shard 0 — correct for unsharded
    systems and byte-identical to the pre-sharding wire format. *)

val id : t -> int

val invoke : t -> ?read_only:bool -> operation:string -> (string -> unit) -> unit
(** [invoke t ~operation k] schedules the operation and calls [k result] when
    the reply quorum arrives. *)

val receive : t -> Message.envelope -> unit
(** Feed a network delivery (replies) to the client. *)

val on_timer : t -> tag:string -> payload:int -> unit

val outstanding : t -> int
(** Number of queued + in-flight operations (0 when idle). *)

val stats : t -> stats

val quorum_winner : needed:int -> (int, string) Hashtbl.t -> string option
(** Deterministic quorum selection over a replica->result reply table: the
    lexicographically smallest result with [>= needed] votes, or [None].
    Exposed so the selection rule itself can be pinned by tests. *)
