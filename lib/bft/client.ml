module M = Message

type net = {
  send : dst:int -> Message.envelope -> unit;
  set_timer : after_us:int -> tag:string -> payload:int -> int;
  cancel_timer : int -> unit;
  now_us : unit -> int64;
}

type stats = {
  mutable completed : int;
  mutable retransmissions : int;
  mutable read_only_fallbacks : int;
  latency_us : Base_obs.Metrics.histogram;
}

type pending = {
  request : M.request;
  callback : string -> unit;
  replies : (int, string) Hashtbl.t;  (* replica -> result *)
  mutable timer : int;
  mutable attempts : int;
  started_us : int64;
}

type t = {
  config : Types.config;
  id : int;
  keychain : Base_crypto.Auth.keychain;
  net : net;
  route : string -> int;  (* operation -> shard whose agreement orders it *)
  mutable next_ts : int64;
  mutable current : pending option;
  queue : (string * bool * (string -> unit)) Queue.t;
  stats : stats;
  prof : Base_obs.Profile.t;
  p_verify : Base_obs.Profile.probe;
  p_seal : Base_obs.Profile.probe;
}

let create ?metrics ?(profile = Base_obs.Profile.disabled) ?(route = fun _ -> 0) ~config ~id
    ~keychain ~net () =
  Base_util.Invariant.require
    (id >= Types.group_size (config : Types.config))
    "Client.create: id collides with a replica or standby";
  (* Latency is a streaming histogram, not a per-request list: registration
     is get-or-create, so every client built over the same registry shares
     one [bft.client.latency_us] series and memory stays O(buckets) no
     matter how many requests complete — the property the open-loop load
     harness depends on at 10^5..10^6 requests. *)
  let registry = match metrics with Some m -> m | None -> Base_obs.Metrics.create () in
  let latency_us = Base_obs.Metrics.histogram registry "bft.client.latency_us" in
  {
    config;
    id;
    keychain;
    net;
    route;
    next_ts = 0L;
    current = None;
    queue = Queue.create ();
    stats = { completed = 0; retransmissions = 0; read_only_fallbacks = 0; latency_us };
    prof = profile;
    p_verify = Base_obs.Profile.probe profile "client.verify";
    p_seal = Base_obs.Profile.probe profile "client.seal";
  }

let id t = t.id

let outstanding t = Queue.length t.queue + (match t.current with Some _ -> 1 | None -> 0)

let stats t = t.stats

(* Requests authenticate to the n replicas; replies come back with a
   client-specific MAC, so nothing a client seals scales with the total
   principal population. *)
let seal t ~shard body =
  Base_obs.Profile.start t.prof t.p_seal;
  let env = M.seal t.keychain ~shard ~sender:t.id ~n_receivers:t.config.n body in
  Base_obs.Profile.stop t.prof t.p_seal;
  env

(* All n replicas host every shard, so a request broadcast reaches the right
   agreement instance whatever the shard — the tag decides which instance
   (and thus which primary rotation) orders it. *)
let send_request t (request : M.request) =
  let env = seal t ~shard:(t.route request.operation) (M.Request request) in
  for r = 0 to t.config.n - 1 do
    t.net.send ~dst:r env
  done

(* The needed number of matching replies: replies are self-verifying only in
   quorum, so read-write needs f+1 (one correct replica among them) and
   read-only needs 2f+1 (a quorum that intersects every commit quorum). *)
let needed t (r : M.request) =
  if r.read_only then Types.quorum t.config else Types.weak_quorum t.config

let fresh_ts t =
  let ts = t.next_ts in
  t.next_ts <- Int64.add ts 1L;
  ts

let rec start_request t operation read_only callback =
  let ts = fresh_ts t in
  let request = { M.client = t.id; timestamp = ts; operation; read_only } in
  let p =
    {
      request;
      callback;
      replies = Hashtbl.create 8;
      timer = 0;
      attempts = 0;
      started_us = t.net.now_us ();
    }
  in
  t.current <- Some p;
  (* First transmission goes to all replicas: backups relay to the primary
     and start their progress timers, which also covers primary failure. *)
  send_request t request;
  p.timer <-
    t.net.set_timer ~after_us:t.config.client_timeout_us ~tag:"client"
      ~payload:(Int64.to_int ts)

and finish t p result =
  t.net.cancel_timer p.timer;
  t.current <- None;
  t.stats.completed <- t.stats.completed + 1;
  let elapsed = Int64.sub (t.net.now_us ()) p.started_us in
  Base_obs.Metrics.observe t.stats.latency_us (Int64.to_float elapsed);
  p.callback result;
  match Queue.take_opt t.queue with
  | Some (operation, read_only, callback) -> start_request t operation read_only callback
  | None -> ()

let invoke t ?(read_only = false) ~operation callback =
  match t.current with
  | Some _ -> Queue.add (operation, read_only, callback) t.queue
  | None -> start_request t operation read_only callback

(* Deterministic winner selection: of every result that reached its quorum,
   take the lexicographically smallest.  The reply values are snapshotted
   and sorted before tallying, so equal results are adjacent and the first
   qualifying run is the smallest winner by construction — no decision ever
   reads the table in hash order. *)
let quorum_winner ~needed replies =
  let results =
    Hashtbl.fold (fun _ result acc -> result :: acc) replies []
    |> List.sort String.compare
  in
  let rec scan = function
    | [] -> None
    | r :: _ as run ->
      let same, rest = List.partition (String.equal r) run in
      if List.length same >= needed then Some r else scan rest
  in
  scan results

let check_quorum t p =
  match quorum_winner ~needed:(needed t p.request) p.replies with
  | Some result -> finish t p result
  | None -> ()

let receive t (env : M.envelope) =
  Base_obs.Profile.start t.prof t.p_verify;
  let authentic = M.verify t.keychain ~receiver:t.id env in
  Base_obs.Profile.stop t.prof t.p_verify;
  if authentic then begin
    match (env.body, t.current) with
    | M.Reply r, Some p
      when r.client = t.id
           && Int64.equal r.timestamp p.request.timestamp
           && r.replica = env.sender
           && Types.is_replica t.config env.sender ->
      Hashtbl.replace p.replies env.sender r.result;
      check_quorum t p
    | _ -> ()
  end

let on_timer t ~tag ~payload =
  match (tag, t.current) with
  | "client", Some p when Int64.equal (Int64.of_int payload) p.request.timestamp ->
    p.attempts <- p.attempts + 1;
    t.stats.retransmissions <- t.stats.retransmissions + 1;
    if p.request.read_only && p.attempts >= 2 then begin
      (* Read-only quorum unreachable (e.g. concurrent writes or recovering
         replicas): fall back to a regular, ordered request — under a FRESH
         timestamp.  Reusing the read-only attempt's timestamp would let its
         late tentative replies match the fallback in [receive] and count
         toward the weaker f+1 quorum, so f+1 stale tentative replies could
         complete a read that was never ordered — a linearizability hole. *)
      t.stats.read_only_fallbacks <- t.stats.read_only_fallbacks + 1;
      let request = { p.request with read_only = false; timestamp = fresh_ts t } in
      let p' = { p with request; attempts = 0 } in
      Hashtbl.reset p'.replies;
      t.current <- Some p';
      send_request t request;
      p'.timer <-
        t.net.set_timer ~after_us:t.config.client_timeout_us ~tag:"client"
          ~payload:(Int64.to_int request.timestamp)
    end
    else begin
      send_request t p.request;
      (* Exponential backoff, capped at 16x: during a network partition or a
         view change the client must keep probing without flooding the
         recovering group. *)
      p.timer <-
        t.net.set_timer ~after_us:(t.config.client_timeout_us * (1 lsl min p.attempts 4))
          ~tag:"client"
          ~payload:(Int64.to_int p.request.timestamp)
    end
  | _ -> ()
