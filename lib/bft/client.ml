module M = Message

type net = {
  send : dst:int -> Message.envelope -> unit;
  set_timer : after_us:int -> tag:string -> payload:int -> int;
  cancel_timer : int -> unit;
  now_us : unit -> int64;
}

type stats = {
  mutable completed : int;
  mutable retransmissions : int;
  mutable read_only_fallbacks : int;
  mutable latencies_us : float list;
}

type pending = {
  request : M.request;
  callback : string -> unit;
  replies : (int, string) Hashtbl.t;  (* replica -> result *)
  mutable timer : int;
  mutable attempts : int;
  started_us : int64;
}

type t = {
  config : Types.config;
  id : int;
  keychain : Base_crypto.Auth.keychain;
  net : net;
  mutable next_ts : int64;
  mutable current : pending option;
  queue : (string * bool * (string -> unit)) Queue.t;
  stats : stats;
}

let create ~config ~id ~keychain ~net =
  if id < (config : Types.config).n then invalid_arg "Client.create: id collides with a replica";
  {
    config;
    id;
    keychain;
    net;
    next_ts = 0L;
    current = None;
    queue = Queue.create ();
    stats =
      { completed = 0; retransmissions = 0; read_only_fallbacks = 0; latencies_us = [] };
  }

let id t = t.id

let outstanding t = Queue.length t.queue + (match t.current with Some _ -> 1 | None -> 0)

let stats t = t.stats

let seal t body = M.seal t.keychain ~sender:t.id ~n_principals:t.config.n_principals body

let send_to_all t body =
  let env = seal t body in
  for r = 0 to t.config.n - 1 do
    t.net.send ~dst:r env
  done

(* The needed number of matching replies: replies are self-verifying only in
   quorum, so read-write needs f+1 (one correct replica among them) and
   read-only needs 2f+1 (a quorum that intersects every commit quorum). *)
let needed t (r : M.request) =
  if r.read_only then Types.quorum t.config else Types.weak_quorum t.config

let rec start_request t operation read_only callback =
  let ts = t.next_ts in
  t.next_ts <- Int64.add ts 1L;
  let request = { M.client = t.id; timestamp = ts; operation; read_only } in
  let p =
    {
      request;
      callback;
      replies = Hashtbl.create 8;
      timer = 0;
      attempts = 0;
      started_us = t.net.now_us ();
    }
  in
  t.current <- Some p;
  (* First transmission goes to all replicas: backups relay to the primary
     and start their progress timers, which also covers primary failure. *)
  send_to_all t (M.Request request);
  p.timer <-
    t.net.set_timer ~after_us:t.config.client_timeout_us ~tag:"client"
      ~payload:(Int64.to_int ts)

and finish t p result =
  t.net.cancel_timer p.timer;
  t.current <- None;
  t.stats.completed <- t.stats.completed + 1;
  let elapsed = Int64.sub (t.net.now_us ()) p.started_us in
  t.stats.latencies_us <- Int64.to_float elapsed :: t.stats.latencies_us;
  p.callback result;
  match Queue.take_opt t.queue with
  | Some (operation, read_only, callback) -> start_request t operation read_only callback
  | None -> ()

let invoke t ?(read_only = false) ~operation callback =
  match t.current with
  | Some _ -> Queue.add (operation, read_only, callback) t.queue
  | None -> start_request t operation read_only callback

let check_quorum t p =
  (* Count replicas agreeing on each result value. *)
  let counts = Hashtbl.create 4 in
  Hashtbl.iter
    (fun _ result ->
      let c = try Hashtbl.find counts result with Not_found -> 0 in
      Hashtbl.replace counts result (c + 1))
    p.replies;
  let winner =
    Hashtbl.fold
      (fun result c acc -> if c >= needed t p.request then Some result else acc)
      counts None
  in
  match winner with Some result -> finish t p result | None -> ()

let receive t (env : M.envelope) =
  if M.verify t.keychain ~receiver:t.id env then begin
    match (env.body, t.current) with
    | M.Reply r, Some p
      when r.client = t.id
           && Int64.equal r.timestamp p.request.timestamp
           && r.replica = env.sender
           && Types.is_replica t.config env.sender ->
      Hashtbl.replace p.replies env.sender r.result;
      check_quorum t p
    | _ -> ()
  end

let on_timer t ~tag ~payload =
  match (tag, t.current) with
  | "client", Some p when Int64.equal (Int64.of_int payload) p.request.timestamp ->
    p.attempts <- p.attempts + 1;
    t.stats.retransmissions <- t.stats.retransmissions + 1;
    if p.request.read_only && p.attempts >= 2 then begin
      (* Read-only quorum unreachable (e.g. concurrent writes or recovering
         replicas): fall back to a regular, ordered request. *)
      t.stats.read_only_fallbacks <- t.stats.read_only_fallbacks + 1;
      let request = { p.request with read_only = false } in
      let p' = { p with request; attempts = 0 } in
      Hashtbl.reset p'.replies;
      t.current <- Some p';
      send_to_all t (M.Request request);
      p'.timer <-
        t.net.set_timer ~after_us:t.config.client_timeout_us ~tag:"client"
          ~payload:(Int64.to_int request.timestamp)
    end
    else begin
      send_to_all t (M.Request p.request);
      (* Exponential backoff, capped at 16x: during a network partition or a
         view change the client must keep probing without flooding the
         recovering group. *)
      p.timer <-
        t.net.set_timer ~after_us:(t.config.client_timeout_us * (1 lsl min p.attempts 4))
          ~tag:"client"
          ~payload:(Int64.to_int p.request.timestamp)
    end
  | _ -> ()
