(** The PBFT replica protocol state machine.

    One value of type {!t} implements the full replica side of the
    Castro-Liskov protocol: request ordering through pre-prepare / prepare /
    commit, checkpointing with log garbage collection, view changes, and the
    triggers for hierarchical state transfer (the transfer itself is run by
    the BASE runtime through the {!app} hooks).

    The module is transport-agnostic: it never touches the simulator
    directly.  The runtime supplies {!net} callbacks for sending envelopes
    and arming timers, and an {!app} record implementing the service
    (normally a BASE conformance wrapper). *)

module Digest = Base_crypto.Digest_t

(** Upcalls into the replicated service (implemented by [Base_core]). *)
type app = {
  execute :
    client:int ->
    timestamp:int64 ->
    operation:string ->
    nondet:string ->
    read_only:bool ->
    string;
      (** Execute one operation and return the marshalled result.
          [(client, timestamp)] is the request's globally unique identity —
          the cross-shard commit keys its bookkeeping on it. *)
  propose_nondet : operation:string -> string;
      (** Primary-side proposal of non-deterministic values (e.g. the
          operation timestamp read from the local clock). *)
  check_nondet : operation:string -> nondet:string -> bool;
      (** Backup-side sanity check of the primary's proposal. *)
  ready : client:int -> timestamp:int64 -> operation:string -> bool;
      (** Execution gate, consulted for every not-yet-executed request of the
          next committed batch.  Returning [false] parks the whole batch (the
          replica stays committed-but-unexecuted at that slot) until the
          runtime calls {!resume_execution}.  The cross-shard commit protocol
          uses the {e first} [false] answer on a lock request as the
          deterministic lock-acquisition event.  Use {!always_ready} when the
          service needs no gating. *)
  take_checkpoint : seq:Types.seqno -> Digest.t;
      (** Record a checkpoint of the abstract state at [seq] and return its
          digest. *)
  discard_checkpoints_below : Types.seqno -> unit;
  start_fetch : seq:Types.seqno -> digest:Digest.t -> unit;
      (** Bring the service to the certified checkpoint [(seq, digest)]
          (asynchronously); the runtime calls {!fetch_complete} when done.
          [digest] is the {e combined} checkpoint digest (see
          {!checkpoint_digest}). *)
}

val always_ready : client:int -> timestamp:int64 -> operation:string -> bool
(** The trivial {!app.ready} gate: every request executes as soon as it
    commits. *)

(** Transport callbacks provided by the runtime. *)
type net = {
  send : dst:int -> Message.envelope -> unit;
  set_timer : after_us:int -> tag:string -> payload:int -> int;
  cancel_timer : int -> unit;
  now_us : unit -> int64;
      (** Virtual time (simulation clock, {e not} the replica's skewed local
          clock) — used only for protocol-phase instrumentation. *)
}

(** Group role.  An [Active] replica runs the full agreement protocol; a
    [Standby] is a warm spare: it holds replica-side keys and collects
    checkpoint certificates from the group-sealed CHECKPOINT broadcasts (so
    {!fetch_target} works and the runtime can shadow-sync it), but it never
    votes, proposes, executes or broadcasts.  Promotion into a failed
    replica's slot is a runtime operation — see
    {!Base_core.Runtime.promote_now}. *)
type role = Active | Standby

(** Fault-injection behaviours (Byzantine replicas for E6/E9). *)
type behavior =
  | Honest
  | Mute  (** participates in nothing — a crashed or wedged replica *)
  | Lie_in_replies  (** sends corrupted results to clients *)
  | Equivocate  (** as primary, proposes conflicting pre-prepares *)

type status = Normal | View_changing | Fetching

type stats = {
  mutable executed : int;  (** consensus instances executed *)
  mutable executed_requests : int;  (** client requests executed (batching makes this larger) *)
  mutable checkpoints_taken : int;
  mutable view_changes : int;
  mutable fetches : int;
  mutable rejected_macs : int;
  mutable rejected_decode : int;  (** wire bytes that failed to decode *)
  mutable rejected_insane : int;
      (** well-formed, authenticated messages whose claims are
          protocol-implausible (e.g. prepared proofs outside the log
          window above the claimed checkpoint) *)
}

type t

val create :
  ?metrics:Base_obs.Metrics.t ->
  ?profile:Base_obs.Profile.t ->
  ?role:role ->
  ?shard:int ->
  config:Types.config ->
  id:int ->
  keychain:Base_crypto.Auth.keychain ->
  net:net ->
  app:app ->
  unit ->
  t
(** A fresh replica in view 0 with an empty log.  The initial-state
    checkpoint (seq 0) is taken immediately.  [role] defaults to [Active];
    a [Standby] instance only processes CHECKPOINT messages.

    [shard] (default 0) names the agreement instance this replica serves
    when the object space is sharded (see {!Types.config.shard_bounds}):
    the primary rotation is offset by it ({!Types.shard_primary}), every
    outgoing envelope is tagged and MACed with it, and authenticated
    messages tagged for a different shard are rejected as insane.  With the
    default, wire traffic is byte-identical to an unsharded replica.

    [metrics] receives per-phase latency histograms
    ([bft.phase.{pre_prepare,prepare,commit,execute,total}_us] — each slot's
    local milestone-to-milestone latency), view-change durations
    ([bft.view_change_us]) and checkpoint cadence
    ([bft.checkpoint_interval_us]).  Pass the same registry to every replica
    of a system to aggregate across the group; when omitted, a private
    (unobservable) registry is used.

    [profile] attaches hot-path probes ([bft.verify], [bft.seal],
    [bft.handle], [bft.execute]); defaults to the shared disabled
    instance, whose probe sites cost a branch. *)

val id : t -> int

val shard : t -> int
(** The agreement instance this replica serves; 0 when unsharded. *)

val role : t -> role

val view : t -> Types.view

val is_primary : t -> bool

val last_executed : t -> Types.seqno

val low_watermark : t -> Types.seqno

val status : t -> status

val stats : t -> stats

val set_behavior : t -> behavior -> unit

val behavior : t -> behavior

val receive : t -> Message.envelope -> unit
(** Handle one authenticated protocol message (invalid MACs are counted and
    dropped). *)

val receive_wire : ?shard:int -> t -> sender:int -> macs:string array -> string -> unit
(** Handle a raw encoded message body as it would arrive off the wire.
    Malformed bytes are counted ([stats.rejected_decode], metrics counter
    [bft.reject.decode]) and dropped — a Byzantine sender can never crash a
    replica with garbage input.  Well-formed bodies go through {!receive}
    and the usual MAC check.  [shard] (default 0) is the shard tag carried
    alongside the wire bytes. *)

val on_timer : t -> tag:string -> payload:int -> unit

val client_table_digest : t -> Digest.t
(** Digest of the last-reply table; part of every checkpoint digest. *)

val checkpoint_digest : app_digest:Digest.t -> client_digest:Digest.t -> Digest.t
(** The combined digest bound by CHECKPOINT messages:
    [combine [app; client]]. *)

val export_client_table : t -> (int * int64 * string) list
(** [(client, timestamp, result)] rows, sorted by client; transferred
    alongside abstract objects during state transfer. *)

val fetch_complete :
  t -> seq:Types.seqno -> app_digest:Digest.t -> client_rows:(int * int64 * string) list -> unit
(** Called by the runtime when state transfer finished: installs the client
    table, moves the execution cursor to [seq] (down, for a rollback
    repair), advances watermarks when [seq] is ahead of them, and resumes
    normal processing.  If the stable watermark overtook [seq] while the
    transfer was in flight — the log needed to roll forward is gone — the
    replica immediately starts another fetch against the freshest certified
    checkpoint instead of resuming from stale state. *)

val initiate_fetch : t -> unit
(** Force a state-transfer round against the best certified checkpoint known
    (used right after proactive recovery). *)

val fetch_target : t -> (Types.seqno * Digest.t) option
(** Highest checkpoint certified by f+1 distinct replicas, if any. *)

val start_status_timer : t -> unit
(** Arm the periodic retransmission/progress timer (idempotent). *)

val on_reboot : t -> unit
(** Re-arm timers that were dropped while the node was down (proactive
    recovery). *)

val abort_fetch : t -> unit
(** Abandon an in-flight state transfer (e.g. the watchdog rebooted us in
    the middle of one). *)

val force_fetch : t -> seq:Types.seqno -> digest:Digest.t -> unit
(** Start a state transfer even when [seq] equals the replica's own last
    executed seqno — used after proactive recovery to {e repair} a possibly
    corrupt local state against the certified checkpoint. *)

val standby_note_synced : t -> seq:Types.seqno -> digest:Digest.t -> unit
(** Standby bookkeeping after a completed shadow sync: advance the low
    watermark to the synced checkpoint [seq] (whose {e combined} digest is
    [digest]) and discard certificate tables below it, bounding the standby's
    memory over an arbitrarily long shadowing period.  No-op on an [Active]
    replica. *)

(** {1 Cross-shard runtime hooks}

    Used by the BASE runtime's deterministic two-phase cross-shard commit
    (see [doc/sharding.md]); no-ops or inert in unsharded systems. *)

val submit_internal : t -> Message.request -> unit
(** Propose a runtime-injected internal request (a virtual
    {!Types.internal_client} id, e.g. a cross-shard lock).  Only a
    Normal-status primary accepts it;
    callers re-submit on view change via their own retry timer.  Internal
    requests execute through {!app.execute} like any other, but produce no
    reply and skip client-table pending bookkeeping. *)

val resume_execution : t -> unit
(** Re-run the execution loop after an {!app.ready} gate opened (a parked
    batch may now execute), then drain the primary's request queue. *)

val add_external_pending : t -> unit
(** Register a runtime-tracked obligation (a cross-shard lock held or
    awaited) that must keep the view-change progress timer armed even when
    no client request is pending — otherwise a faulty coordinator primary
    could park a participant shard forever without triggering a view
    change. *)

val clear_external_pending : t -> unit
(** Drop one obligation registered with {!add_external_pending}. *)
