(** Shared protocol types and configuration for the PBFT substrate. *)

type view = int

type seqno = int

(** Static system configuration.  Active replicas occupy engine node ids
    [0 .. n-1], warm standbys [n .. n+s-1], clients [>= n+s]. *)
type config = {
  n : int;  (** number of active replicas, [n = 3f + 1] *)
  s : int;  (** warm standbys shadowing the group (0 = plain 3f+1) *)
  f : int;  (** tolerated faults *)
  checkpoint_period : int;  (** the paper's [k]: checkpoint every k-th request *)
  log_window : int;  (** [L]: high watermark is [h + L]; a multiple of [k] *)
  client_timeout_us : int;  (** client retransmission timer *)
  viewchange_timeout_us : int;  (** backup progress timer *)
  n_principals : int;  (** replicas + clients, for MAC keychains *)
  batch_max : int;  (** max client requests ordered per consensus instance *)
  max_inflight : int;  (** proposals outstanding before the primary batches *)
  st_window : int;  (** state transfer: max fetch requests in flight *)
  st_chunk_bytes : int;  (** state transfer: max object bytes per reply *)
  st_cache_objs : int;  (** state transfer: digest-keyed leaf-cache capacity *)
}

let make_config ?(checkpoint_period = 128) ?(log_window = 256)
    ?(client_timeout_us = 150_000) ?(viewchange_timeout_us = 500_000) ?(batch_max = 16)
    ?(max_inflight = 8) ?(st_window = 8) ?(st_chunk_bytes = 4096) ?(st_cache_objs = 256)
    ?(standbys = 0) ~f ~n_clients () =
  let n = (3 * f) + 1 in
  {
    n;
    s = standbys;
    f;
    checkpoint_period;
    log_window;
    client_timeout_us;
    viewchange_timeout_us;
    n_principals = n + standbys + n_clients;
    batch_max;
    max_inflight;
    st_window;
    st_chunk_bytes;
    st_cache_objs;
  }

let primary config view = view mod config.n

let replica_ids config = List.init config.n Fun.id

(** Quorum sizes. *)
let quorum config = (2 * config.f) + 1

let weak_quorum config = config.f + 1

let is_replica config id = id >= 0 && id < config.n

(* Replicas plus standbys: the principals that hold replica-side keys and
   receive group-sealed checkpoint announcements.  Clients start here. *)
let group_size config = config.n + config.s

let standby_ids config = List.init config.s (fun i -> config.n + i)

let is_standby config id = id >= config.n && id < config.n + config.s
