(** Shared protocol types and configuration for the PBFT substrate. *)

type view = int

type seqno = int

(** Static system configuration.  Active replicas occupy engine node ids
    [0 .. n-1], warm standbys [n .. n+s-1], clients [>= n+s]. *)
type config = {
  n : int;  (** number of active replicas, [n = 3f + 1] *)
  s : int;  (** warm standbys shadowing the group (0 = plain 3f+1) *)
  f : int;  (** tolerated faults *)
  checkpoint_period : int;  (** the paper's [k]: checkpoint every k-th request *)
  log_window : int;  (** [L]: high watermark is [h + L]; a multiple of [k] *)
  client_timeout_us : int;  (** client retransmission timer *)
  viewchange_timeout_us : int;  (** backup progress timer *)
  n_principals : int;  (** replicas + clients, for MAC keychains *)
  batch_max : int;  (** max client requests ordered per consensus instance *)
  max_inflight : int;  (** proposals outstanding before the primary batches *)
  st_window : int;  (** state transfer: max fetch requests in flight *)
  st_chunk_bytes : int;  (** state transfer: max object bytes per reply *)
  st_cache_objs : int;  (** state transfer: digest-keyed leaf-cache capacity *)
  shard_bounds : int array;
      (** oid-range -> shard map: ascending exclusive upper bounds, one per
          shard; shard [k] owns oids [bounds.(k-1) .. bounds.(k) - 1].  The
          empty array means a single unsharded instance owning every oid —
          the configuration every pre-sharding deployment runs. *)
}

let make_config ?(checkpoint_period = 128) ?(log_window = 256)
    ?(client_timeout_us = 150_000) ?(viewchange_timeout_us = 500_000) ?(batch_max = 16)
    ?(max_inflight = 8) ?(st_window = 8) ?(st_chunk_bytes = 4096) ?(st_cache_objs = 256)
    ?(standbys = 0) ?(shard_bounds = [||]) ~f ~n_clients () =
  let n = (3 * f) + 1 in
  (let ok = ref true in
   Array.iteri
     (fun k b -> if b <= 0 || (k > 0 && b <= shard_bounds.(k - 1)) then ok := false)
     shard_bounds;
   Base_util.Invariant.require !ok
     "make_config: shard_bounds must be strictly ascending positive");
  {
    n;
    s = standbys;
    f;
    checkpoint_period;
    log_window;
    client_timeout_us;
    viewchange_timeout_us;
    n_principals = n + standbys + n_clients;
    batch_max;
    max_inflight;
    st_window;
    st_chunk_bytes;
    st_cache_objs;
    shard_bounds;
  }

let primary config view = view mod config.n

(** {1 Shards} *)

let n_shards config = max 1 (Array.length config.shard_bounds)

(* Each shard rotates its primary through the same replica set with a
   per-shard offset, so in any view the S primaries sit on S distinct nodes
   (for S <= n) and shard 0's rotation coincides with the unsharded one. *)
let shard_primary config ~shard view = (view + shard) mod config.n

let shard_of_oid config oid =
  let bounds = config.shard_bounds in
  let last = Array.length bounds - 1 in
  if last < 0 then 0
  else begin
    (* Linear scan: S is small (<= a handful) and this sits on the client's
       routing path, where a branchy binary search would not pay off. *)
    let k = ref last in
    for i = last - 1 downto 0 do
      if oid < bounds.(i) then k := i
    done;
    !k
  end

(* [lo, hi) oid range owned by a shard. [hi] of the last shard is the last
   bound; callers with more objects than the final bound keep the excess in
   the last shard by [shard_of_oid]'s clamping. *)
let shard_range config ~n_objects shard =
  let bounds = config.shard_bounds in
  if Array.length bounds = 0 then (0, n_objects)
  else
    let lo = if shard = 0 then 0 else bounds.(shard - 1) in
    let hi = if shard = Array.length bounds - 1 then max bounds.(shard) n_objects else bounds.(shard) in
    (lo, hi)

let uniform_shards ~shards ~n_objects =
  if shards <= 1 then [||]
  else Array.init shards (fun k -> (k + 1) * n_objects / shards)

(* Internal (runtime-injected) requests, e.g. cross-shard locks, carry a
   virtual client id well above any real principal id — it must stay
   non-negative because batches encode client ids as XDR u32 on the wire. *)
let internal_client_base = 0x4000_0000

let internal_client ~shard = internal_client_base + shard

let is_internal_client c = c >= internal_client_base

let replica_ids config = List.init config.n Fun.id

(** Quorum sizes. *)
let quorum config = (2 * config.f) + 1

let weak_quorum config = config.f + 1

let is_replica config id = id >= 0 && id < config.n

(* Replicas plus standbys: the principals that hold replica-side keys and
   receive group-sealed checkpoint announcements.  Clients start here. *)
let group_size config = config.n + config.s

let standby_ids config = List.init config.s (fun i -> config.n + i)

let is_standby config id = id >= config.n && id < config.n + config.s
