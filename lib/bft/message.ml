module Digest = Base_crypto.Digest_t
module Xdr = Base_codec.Xdr

type request = { client : int; timestamp : int64; operation : string; read_only : bool }

let null_request = { client = -1; timestamp = 0L; operation = ""; read_only = false }

type pre_prepare = {
  view : Types.view;
  seq : Types.seqno;
  digest : Digest.t;
  requests : request list;  (* the batch; empty = null request *)
  nondet : string;
}

type prepare = { view : Types.view; seq : Types.seqno; digest : Digest.t; replica : int }

type commit = { view : Types.view; seq : Types.seqno; digest : Digest.t; replica : int }

type reply = {
  view : Types.view;
  timestamp : int64;
  client : int;
  replica : int;
  result : string;
}

type checkpoint = { seq : Types.seqno; digest : Digest.t; replica : int }

type prepared_proof = {
  pp_view : Types.view;
  pp_seq : Types.seqno;
  pp_digest : Digest.t;
  pp_requests : request list;
  pp_nondet : string;
}

type view_change = {
  new_view : Types.view;
  last_stable : Types.seqno;
  stable_digest : Digest.t;
  prepared : prepared_proof list;
  replica : int;
}

type new_view = {
  nv_view : Types.view;
  nv_view_changes : (int * Types.seqno) list;
  nv_pre_prepares : pre_prepare list;
}

type status_msg = { st_view : Types.view; st_last_exec : Types.seqno; st_h : Types.seqno; st_replica : int }

type body =
  | Request of request
  | Pre_prepare of pre_prepare
  | Prepare of prepare
  | Commit of commit
  | Reply of reply
  | Checkpoint of checkpoint
  | View_change of view_change
  | New_view of new_view
  | Status of status_msg

(* The envelope is content-addressed: [wire] is the canonical encoding the
   body was sealed (or decoded) from, and [digest_memo] caches its SHA-256.
   Both are established at construction — seal computes them, the wire path
   adopts the received bytes — so the hot receive path never re-encodes or
   re-digests a body.  MACs cover the digest (Castro-Liskov batch
   authenticators), which ties every check back to the wire bytes: any
   single-byte change to [wire] fails every receiver's verification. *)
type envelope = {
  sender : int;
  shard : int;  (* agreement instance this envelope belongs to; 0 = unsharded *)
  body : body;
  wire : string;  (* canonical encoding of [body]; raw bytes on the wire path *)
  mutable digest_memo : Digest.t option;  (* memoised SHA-256 of [wire] *)
  macs : string array;  (* authenticator; macs.(r - mac_lo) is receiver r's MAC *)
  mac_lo : int;  (* id of the first receiver the authenticator covers *)
  size : int;
}

(* Clients use small signed ints (-1 for null requests); bias into u32 space. *)
let enc_id e id = Xdr.u32 e (id + 1)

let enc_request e (r : request) =
  enc_id e r.client;
  Xdr.i64 e r.timestamp;
  Xdr.opaque e r.operation;
  Xdr.bool e r.read_only

let encode_request r =
  let e = Xdr.encoder () in
  enc_request e r;
  Xdr.contents e

let request_digest r = Digest.of_string (encode_request r)

(* Canonical encoding of a proposed ordering: the XDR batch (count-prefixed)
   plus the length-prefixed nondet proposal.  Both prefixes matter — they
   make the encoding injective, so one SHA-256 pass over it binds the batch
   composition and the nondet choice at once (the per-request digest-then-
   combine scheme this replaces cost one hash per request per replica). *)
let encode_batch requests ~nondet =
  let e = Xdr.encoder () in
  Xdr.list e enc_request requests;
  Xdr.opaque e nondet;
  Xdr.contents e

let enc_digest e d = Xdr.opaque e (Digest.raw d)

let enc_pre_prepare e (p : pre_prepare) =
  Xdr.u32 e p.view;
  Xdr.u32 e p.seq;
  enc_digest e p.digest;
  Xdr.list e enc_request p.requests;
  Xdr.opaque e p.nondet

let enc_proof e (p : prepared_proof) =
  Xdr.u32 e p.pp_view;
  Xdr.u32 e p.pp_seq;
  enc_digest e p.pp_digest;
  Xdr.list e enc_request p.pp_requests;
  Xdr.opaque e p.pp_nondet

let encode_body body =
  let e = Xdr.encoder () in
  (match body with
  | Request r ->
    Xdr.u32 e 0;
    enc_request e r
  | Pre_prepare p ->
    Xdr.u32 e 1;
    enc_pre_prepare e p
  | Prepare p ->
    Xdr.u32 e 2;
    Xdr.u32 e p.view;
    Xdr.u32 e p.seq;
    enc_digest e p.digest;
    enc_id e p.replica
  | Commit c ->
    Xdr.u32 e 3;
    Xdr.u32 e c.view;
    Xdr.u32 e c.seq;
    enc_digest e c.digest;
    enc_id e c.replica
  | Reply r ->
    Xdr.u32 e 4;
    Xdr.u32 e r.view;
    Xdr.i64 e r.timestamp;
    enc_id e r.client;
    enc_id e r.replica;
    Xdr.opaque e r.result
  | Checkpoint c ->
    Xdr.u32 e 5;
    Xdr.u32 e c.seq;
    enc_digest e c.digest;
    enc_id e c.replica
  | View_change v ->
    Xdr.u32 e 6;
    Xdr.u32 e v.new_view;
    Xdr.u32 e v.last_stable;
    enc_digest e v.stable_digest;
    Xdr.list e enc_proof v.prepared;
    enc_id e v.replica
  | New_view n ->
    Xdr.u32 e 7;
    Xdr.u32 e n.nv_view;
    Xdr.list e
      (fun e (r, s) ->
        enc_id e r;
        Xdr.u32 e s)
      n.nv_view_changes;
    Xdr.list e enc_pre_prepare n.nv_pre_prepares
  | Status st ->
    Xdr.u32 e 8;
    Xdr.u32 e st.st_view;
    Xdr.u32 e st.st_last_exec;
    Xdr.u32 e st.st_h;
    enc_id e st.st_replica);
  Xdr.contents e

(* --- decoding (wire-format completeness; the simulator passes values, but
   the format must round-trip for real deployments and is property-tested) *)


let dec_id d = Xdr.read_u32 d - 1

let dec_request d =
  let client = dec_id d in
  let timestamp = Xdr.read_i64 d in
  let operation = Xdr.read_opaque d in
  let read_only = Xdr.read_bool d in
  { client; timestamp; operation; read_only }

(* A corrupted length prefix can yield an opaque of any size; a digest-width
   violation must surface as a decode error, not Digest_t's Invalid_argument
   (message corruption is within the fault model, broken callers are not).
   The width check runs on the view so oversized claims never copy. *)
let dec_digest d =
  let v = Xdr.read_view d in
  if v.Xdr.view_len <> 32 then
    raise (Xdr.Decode_error (Printf.sprintf "digest: expected 32 bytes, got %d" v.Xdr.view_len));
  Digest.of_raw (Xdr.view_to_string v)

let dec_pre_prepare d =
  let view = Xdr.read_u32 d in
  let seq = Xdr.read_u32 d in
  let digest = dec_digest d in
  let requests = Xdr.read_list d dec_request in
  let nondet = Xdr.read_opaque d in
  { view; seq; digest; requests; nondet }

let dec_proof d =
  let pp_view = Xdr.read_u32 d in
  let pp_seq = Xdr.read_u32 d in
  let pp_digest = dec_digest d in
  let pp_requests = Xdr.read_list d dec_request in
  let pp_nondet = Xdr.read_opaque d in
  { pp_view; pp_seq; pp_digest; pp_requests; pp_nondet }

let decode_body data =
  match
    let d = Xdr.decoder data in
    let body =
    match Xdr.read_u32 d with
    | 0 -> Request (dec_request d)
    | 1 -> Pre_prepare (dec_pre_prepare d)
    | 2 ->
      let view = Xdr.read_u32 d in
      let seq = Xdr.read_u32 d in
      let digest = dec_digest d in
      let replica = dec_id d in
      Prepare { view; seq; digest; replica }
    | 3 ->
      let view = Xdr.read_u32 d in
      let seq = Xdr.read_u32 d in
      let digest = dec_digest d in
      let replica = dec_id d in
      Commit { view; seq; digest; replica }
    | 4 ->
      let view = Xdr.read_u32 d in
      let timestamp = Xdr.read_i64 d in
      let client = dec_id d in
      let replica = dec_id d in
      let result = Xdr.read_opaque d in
      Reply { view; timestamp; client; replica; result }
    | 5 ->
      let seq = Xdr.read_u32 d in
      let digest = dec_digest d in
      let replica = dec_id d in
      Checkpoint { seq; digest; replica }
    | 6 ->
      let new_view = Xdr.read_u32 d in
      let last_stable = Xdr.read_u32 d in
      let stable_digest = dec_digest d in
      let prepared = Xdr.read_list d dec_proof in
      let replica = dec_id d in
      View_change { new_view; last_stable; stable_digest; prepared; replica }
    | 7 ->
      let nv_view = Xdr.read_u32 d in
      let nv_view_changes =
        Xdr.read_list d (fun d ->
            let r = dec_id d in
            let s = Xdr.read_u32 d in
            (r, s))
      in
      let nv_pre_prepares = Xdr.read_list d dec_pre_prepare in
      New_view { nv_view; nv_view_changes; nv_pre_prepares }
    | 8 ->
      let st_view = Xdr.read_u32 d in
      let st_last_exec = Xdr.read_u32 d in
      let st_h = Xdr.read_u32 d in
      let st_replica = dec_id d in
      Status { st_view; st_last_exec; st_h; st_replica }
    | n -> raise (Xdr.Decode_error (Printf.sprintf "bad message tag %d" n))
    in
    Xdr.expect_end d;
    body
  with
  | body -> Ok body
  | exception Xdr.Decode_error msg -> Error msg

let envelope_digest env =
  match env.digest_memo with
  | Some d -> d
  | None ->
    let d = Digest.of_string env.wire in
    env.digest_memo <- Some d;
    d

(* What the MACs authenticate.  Shard 0 signs the bare digest — byte-for-byte
   what every pre-sharding deployment signed, so unsharded MAC streams (and
   the blessed benches over them) are unchanged.  Shard k > 0 appends the
   shard id, which binds the envelope to its agreement instance: a validly
   MACed message replayed from shard j into shard k fails verification
   instead of splicing one shard's certificate into another's log. *)
let mac_input ~shard d =
  if shard = 0 then Digest.raw d else Digest.raw d ^ String.make 1 (Char.chr (shard land 0xff))

(* Shard k > 0 also pays 4 wire bytes for the shard tag in the header; the
   unsharded size formula is unchanged. *)
let shard_overhead shard = if shard = 0 then 0 else 4

let seal chain ?(shard = 0) ~sender ~n_receivers body =
  let wire = encode_body body in
  let d = Digest.of_string wire in
  let macs = Base_crypto.Auth.digest_authenticator chain ~n:n_receivers (mac_input ~shard d) in
  (* Wire size: body + one 8-byte truncated MAC per receiver + small header. *)
  {
    sender;
    shard;
    body;
    wire;
    digest_memo = Some d;
    macs;
    mac_lo = 0;
    size = String.length wire + (8 * n_receivers) + 16 + shard_overhead shard;
  }

let seal_for chain ?(shard = 0) ~sender ~receiver body =
  let wire = encode_body body in
  let d = Digest.of_string wire in
  let macs = [| Base_crypto.Auth.mac_digest_for chain ~receiver (mac_input ~shard d) |] in
  {
    sender;
    shard;
    body;
    wire;
    digest_memo = Some d;
    macs;
    mac_lo = receiver;
    size = String.length wire + 8 + 16 + shard_overhead shard;
  }

(* Adopt bytes as they arrived: the digest (hence every MAC check) covers
   what was actually received, so in-flight corruption that decode happens
   to tolerate — e.g. a flipped padding byte — still voids the MACs. *)
let of_wire ?(shard = 0) ~sender ~macs raw =
  match decode_body raw with
  | Error _ as e -> e
  | Ok body ->
    Ok
      {
        sender;
        shard;
        body;
        wire = raw;
        digest_memo = None;
        macs;
        mac_lo = 0;
        size = String.length raw + (8 * Array.length macs) + 16 + shard_overhead shard;
      }

let verify chain ~receiver env =
  let slot = receiver - env.mac_lo in
  slot >= 0
  && slot < Array.length env.macs
  && Base_crypto.Auth.check_digest chain ~sender:env.sender
       (mac_input ~shard:env.shard (envelope_digest env))
       ~mac:env.macs.(slot)

(* Constant per-constructor tag: what the engine's per-type traffic tables
   key on.  [label] formats parameters and is for traces only — calling it
   per send was a measurable share of the pre-profiling E12 wall clock. *)
let kind_label = function
  | Request _ -> "REQUEST"
  | Pre_prepare _ -> "PRE-PREPARE"
  | Prepare _ -> "PREPARE"
  | Commit _ -> "COMMIT"
  | Reply _ -> "REPLY"
  | Checkpoint _ -> "CHECKPOINT"
  | View_change _ -> "VIEW-CHANGE"
  | New_view _ -> "NEW-VIEW"
  | Status _ -> "STATUS"

let label = function
  | Request r -> Printf.sprintf "REQUEST(c=%d,t=%Ld%s)" r.client r.timestamp
                   (if r.read_only then ",ro" else "")
  | Pre_prepare p ->
    Printf.sprintf "PRE-PREPARE(v=%d,n=%d,b=%d)" p.view p.seq (List.length p.requests)
  | Prepare p -> Printf.sprintf "PREPARE(v=%d,n=%d,i=%d)" p.view p.seq p.replica
  | Commit c -> Printf.sprintf "COMMIT(v=%d,n=%d,i=%d)" c.view c.seq c.replica
  | Reply r -> Printf.sprintf "REPLY(c=%d,t=%Ld,i=%d)" r.client r.timestamp r.replica
  | Checkpoint c -> Printf.sprintf "CHECKPOINT(n=%d,i=%d)" c.seq c.replica
  | View_change v -> Printf.sprintf "VIEW-CHANGE(v=%d,i=%d)" v.new_view v.replica
  | New_view n -> Printf.sprintf "NEW-VIEW(v=%d)" n.nv_view
  | Status st -> Printf.sprintf "STATUS(v=%d,e=%d,i=%d)" st.st_view st.st_last_exec st.st_replica
