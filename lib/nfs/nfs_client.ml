(** Client-side library for the replicated file service.

    Plays the role of the relay + NFS client of Figure 2: it turns typed
    file-system calls into encoded operations submitted through an [invoke]
    function (normally {!Base_core.Runtime.invoke_sync}) and decodes the
    replies.  Read-only calls are flagged so the replication library can use
    its read-only optimisation. *)

open Nfs_types

type invoke = read_only:bool -> operation:string -> string

type t = { invoke : invoke }

let make invoke = { invoke }

exception Protocol_error of string

let call t (c : Nfs_proto.call) =
  let operation = Nfs_proto.encode_call c in
  let read_only = Nfs_proto.read_only_call c in
  match Nfs_proto.decode_reply (t.invoke ~read_only ~operation) with
  | reply -> reply
  | exception Base_codec.Xdr.Decode_error m -> raise (Protocol_error m)

let unexpected what = raise (Protocol_error ("unexpected reply to " ^ what))

let getattr t o =
  match call t (Getattr o) with
  | R_attr a -> Ok a
  | R_err e -> Error e
  | _ -> unexpected "getattr"

let setattr t o s =
  match call t (Setattr (o, s)) with
  | R_attr a -> Ok a
  | R_err e -> Error e
  | _ -> unexpected "setattr"

let lookup t dir name =
  match call t (Lookup (dir, name)) with
  | R_lookup (o, a) -> Ok (o, a)
  | R_err e -> Error e
  | _ -> unexpected "lookup"

let readlink t o =
  match call t (Readlink o) with
  | R_readlink s -> Ok s
  | R_err e -> Error e
  | _ -> unexpected "readlink"

let read t o ~off ~count =
  match call t (Read (o, off, count)) with
  | R_read (data, a) -> Ok (data, a)
  | R_err e -> Error e
  | _ -> unexpected "read"

let write t o ~off data =
  match call t (Write (o, off, data)) with
  | R_attr a -> Ok a
  | R_err e -> Error e
  | _ -> unexpected "write"

let create t dir name s =
  match call t (Create (dir, name, s)) with
  | R_create (o, a) -> Ok (o, a)
  | R_err e -> Error e
  | _ -> unexpected "create"

let remove t dir name =
  match call t (Remove (dir, name)) with
  | R_ok -> Ok ()
  | R_err e -> Error e
  | _ -> unexpected "remove"

let rename t sdir sname ddir dname =
  match call t (Rename (sdir, sname, ddir, dname)) with
  | R_ok -> Ok ()
  | R_err e -> Error e
  | _ -> unexpected "rename"

let symlink t dir name target s =
  match call t (Symlink (dir, name, target, s)) with
  | R_create (o, a) -> Ok (o, a)
  | R_err e -> Error e
  | _ -> unexpected "symlink"

let mkdir t dir name s =
  match call t (Mkdir (dir, name, s)) with
  | R_create (o, a) -> Ok (o, a)
  | R_err e -> Error e
  | _ -> unexpected "mkdir"

let rmdir t dir name =
  match call t (Rmdir (dir, name)) with
  | R_ok -> Ok ()
  | R_err e -> Error e
  | _ -> unexpected "rmdir"

let readdir t dir =
  match call t (Readdir dir) with
  | R_readdir entries -> Ok entries
  | R_err e -> Error e
  | _ -> unexpected "readdir"

let statfs t =
  match call t Statfs with
  | R_statfs { total_slots; free_slots } -> Ok (total_slots, free_slots)
  | R_err e -> Error e
  | _ -> unexpected "statfs"

(* --- path conveniences -------------------------------------------------------- *)

let ok = function Ok v -> v | Error e -> failwith ("nfs error: " ^ err_to_string e)

let split_path path =
  String.split_on_char '/' path |> List.filter (fun s -> not (String.equal s ""))

let resolve_path t path =
  match split_path path with
  | [] -> ( match getattr t root_oid with Ok a -> Ok (root_oid, a) | Error e -> Error e)
  | names ->
    let rec walk o = function
      | [] -> ( match getattr t o with Ok a -> Ok (o, a) | Error e -> Error e)
      | name :: rest -> (
        match lookup t o name with Error e -> Error e | Ok (o', _) -> walk o' rest)
    in
    walk root_oid names

let mkdir_p t path =
  List.fold_left
    (fun dir name ->
      match lookup t dir name with
      | Ok (o, _) -> o
      | Error Enoent -> fst (ok (mkdir t dir name sattr_empty))
      | Error e -> failwith ("mkdir_p: " ^ err_to_string e))
    root_oid (split_path path)

let write_file t dir name ~chunk data =
  let o =
    match lookup t dir name with
    | Ok (o, _) -> o
    | Error Enoent -> fst (ok (create t dir name sattr_empty))
    | Error e -> failwith ("write_file: " ^ err_to_string e)
  in
  let len = String.length data in
  let rec loop off =
    if off < len then begin
      let n = min chunk (len - off) in
      ignore (ok (write t o ~off (String.sub data off n)));
      loop (off + n)
    end
  in
  loop 0;
  o

let read_file t o ~chunk =
  let buf = Buffer.create 1024 in
  let rec loop off =
    let data, _ = ok (read t o ~off ~count:chunk) in
    Buffer.add_string buf data;
    if String.length data = chunk then loop (off + chunk)
  in
  loop 0;
  Buffer.contents buf
