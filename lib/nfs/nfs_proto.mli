(** NFS protocol calls and replies with their XDR wire encodings.

    The encoded call is the opaque operation payload carried by a BFT
    request; the encoded reply is the result returned through the
    replication library.  Clients and conformance wrappers share these
    codecs, so replies from replicas running different implementations are
    byte-identical whenever they are abstractly equal — which is what lets
    the client vote on them. *)

open Nfs_types

type call =
  | Getattr of oid
  | Setattr of oid * sattr
  | Lookup of oid * string
  | Readlink of oid
  | Read of oid * int * int  (** offset, count *)
  | Write of oid * int * string  (** offset, data *)
  | Create of oid * string * sattr
  | Remove of oid * string
  | Rename of oid * string * oid * string  (** src dir, src name, dst dir, dst name *)
  | Symlink of oid * string * string * sattr  (** dir, name, target *)
  | Mkdir of oid * string * sattr
  | Rmdir of oid * string
  | Readdir of oid
  | Statfs

type reply =
  | R_err of err
  | R_attr of fattr
  | R_lookup of oid * fattr
  | R_readlink of string
  | R_read of string * fattr
  | R_create of oid * fattr
  | R_ok
  | R_readdir of (string * oid) list  (** sorted lexicographically *)
  | R_statfs of { total_slots : int; free_slots : int }

val read_only_call : call -> bool
(** Calls eligible for the replication library's read-only optimisation. *)

val footprint : call -> int list
(** The slot indices the call names statically — the shard-routing
    footprint ({!Base_core.Service.wrapper}'s [oids_of_op]).  [Rename]
    across two directories is the one two-element case; [Statfs] has no
    anchor object and returns [[]]. *)

val encode_call : call -> string

val decode_call : string -> call
(** Raises {!Base_codec.Xdr.Decode_error} on malformed input. *)

val encode_reply : reply -> string

val decode_reply : string -> reply

val call_label : call -> string
(** Operation name, for traces and statistics. *)
