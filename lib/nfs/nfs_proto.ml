(** NFS protocol calls and replies, with their XDR wire encodings.

    The encoded call is the opaque [operation] payload carried by the BFT
    request; the encoded reply is the [result] returned through the
    replication library.  Clients and conformance wrappers share these
    codecs, so replies from replicas running different implementations are
    byte-identical whenever they are abstractly equal. *)

open Nfs_types
module Xdr = Base_codec.Xdr

type call =
  | Getattr of oid
  | Setattr of oid * sattr
  | Lookup of oid * string
  | Readlink of oid
  | Read of oid * int * int  (** offset, count *)
  | Write of oid * int * string  (** offset, data *)
  | Create of oid * string * sattr
  | Remove of oid * string
  | Rename of oid * string * oid * string
  | Symlink of oid * string * string * sattr  (** dir, name, target *)
  | Mkdir of oid * string * sattr
  | Rmdir of oid * string
  | Readdir of oid
  | Statfs

type reply =
  | R_err of err
  | R_attr of fattr
  | R_lookup of oid * fattr
  | R_readlink of string
  | R_read of string * fattr
  | R_create of oid * fattr
  | R_ok
  | R_readdir of (string * oid) list
  | R_statfs of { total_slots : int; free_slots : int }

let read_only_call = function
  | Getattr _ | Lookup _ | Readlink _ | Read _ | Readdir _ | Statfs -> true
  | Setattr _ | Write _ | Create _ | Remove _ | Rename _ | Symlink _ | Mkdir _ | Rmdir _ ->
    false

(* The static footprint sharded deployments route by: the slot indices named
   in the call itself.  Rename is the one two-object call — its source and
   destination directories may live in different shards.  Dynamically reached
   slots (a Create's allocated slot, a Remove's child, a Rename overwrite
   victim) are not statically knowable; the runtime constrains them to the
   coordinating shard's range and aborts deterministically otherwise (see
   doc/sharding.md). *)
let footprint = function
  | Getattr o | Setattr (o, _) | Lookup (o, _) | Readlink o
  | Read (o, _, _) | Write (o, _, _)
  | Create (o, _, _) | Remove (o, _)
  | Symlink (o, _, _, _) | Mkdir (o, _, _) | Rmdir (o, _) | Readdir o -> [ o.index ]
  | Rename (so, _, dd, _) ->
    if so.index = dd.index then [ so.index ] else [ so.index; dd.index ]
  | Statfs -> []

(* --- encoders --------------------------------------------------------------- *)

let enc_oid e (o : oid) =
  Xdr.u32 e o.index;
  Xdr.u32 e o.gen

let enc_opt_u32 e v = Xdr.option e Xdr.u32 v

let enc_sattr e (s : sattr) =
  enc_opt_u32 e s.s_mode;
  enc_opt_u32 e s.s_uid;
  enc_opt_u32 e s.s_gid;
  enc_opt_u32 e s.s_size;
  Xdr.option e Xdr.i64 s.s_mtime

let encode_call call =
  let e = Xdr.encoder () in
  (match call with
  | Getattr o ->
    Xdr.u32 e 1;
    enc_oid e o
  | Setattr (o, s) ->
    Xdr.u32 e 2;
    enc_oid e o;
    enc_sattr e s
  | Lookup (o, name) ->
    Xdr.u32 e 4;
    enc_oid e o;
    Xdr.str e name
  | Readlink o ->
    Xdr.u32 e 5;
    enc_oid e o
  | Read (o, off, count) ->
    Xdr.u32 e 6;
    enc_oid e o;
    Xdr.u32 e off;
    Xdr.u32 e count
  | Write (o, off, data) ->
    Xdr.u32 e 8;
    enc_oid e o;
    Xdr.u32 e off;
    Xdr.opaque e data
  | Create (o, name, s) ->
    Xdr.u32 e 9;
    enc_oid e o;
    Xdr.str e name;
    enc_sattr e s
  | Remove (o, name) ->
    Xdr.u32 e 10;
    enc_oid e o;
    Xdr.str e name
  | Rename (so, sn, do_, dn) ->
    Xdr.u32 e 11;
    enc_oid e so;
    Xdr.str e sn;
    enc_oid e do_;
    Xdr.str e dn
  | Symlink (o, name, target, s) ->
    Xdr.u32 e 13;
    enc_oid e o;
    Xdr.str e name;
    Xdr.str e target;
    enc_sattr e s
  | Mkdir (o, name, s) ->
    Xdr.u32 e 14;
    enc_oid e o;
    Xdr.str e name;
    enc_sattr e s
  | Rmdir (o, name) ->
    Xdr.u32 e 15;
    enc_oid e o;
    Xdr.str e name
  | Readdir o ->
    Xdr.u32 e 16;
    enc_oid e o
  | Statfs -> Xdr.u32 e 17);
  Xdr.contents e

let enc_fattr e (a : fattr) =
  Xdr.u32 e (match a.ftype with Reg -> 1 | Dir -> 2 | Lnk -> 5);
  Xdr.u32 e a.mode;
  Xdr.u32 e a.nlink;
  Xdr.u32 e a.uid;
  Xdr.u32 e a.gid;
  Xdr.u32 e a.size;
  Xdr.u32 e a.fsid;
  Xdr.u32 e a.fileid;
  Xdr.i64 e a.atime;
  Xdr.i64 e a.mtime;
  Xdr.i64 e a.ctime

let encode_reply reply =
  let e = Xdr.encoder () in
  (match reply with
  | R_err err ->
    Xdr.u32 e 0;
    Xdr.u32 e (err_code err)
  | R_attr a ->
    Xdr.u32 e 1;
    enc_fattr e a
  | R_lookup (o, a) ->
    Xdr.u32 e 2;
    enc_oid e o;
    enc_fattr e a
  | R_readlink target ->
    Xdr.u32 e 3;
    Xdr.str e target
  | R_read (data, a) ->
    Xdr.u32 e 4;
    Xdr.opaque e data;
    enc_fattr e a
  | R_create (o, a) ->
    Xdr.u32 e 5;
    enc_oid e o;
    enc_fattr e a
  | R_ok -> Xdr.u32 e 6
  | R_readdir entries ->
    Xdr.u32 e 7;
    Xdr.list e
      (fun e (name, o) ->
        Xdr.str e name;
        enc_oid e o)
      entries
  | R_statfs { total_slots; free_slots } ->
    Xdr.u32 e 8;
    Xdr.u32 e total_slots;
    Xdr.u32 e free_slots);
  Xdr.contents e

(* --- decoders --------------------------------------------------------------- *)

let dec_oid d =
  let index = Xdr.read_u32 d in
  let gen = Xdr.read_u32 d in
  { index; gen }

let dec_opt_u32 d = Xdr.read_option d Xdr.read_u32

let dec_sattr d =
  let s_mode = dec_opt_u32 d in
  let s_uid = dec_opt_u32 d in
  let s_gid = dec_opt_u32 d in
  let s_size = dec_opt_u32 d in
  let s_mtime = Xdr.read_option d Xdr.read_i64 in
  { s_mode; s_uid; s_gid; s_size; s_mtime }

let decode_call s =
  let d = Xdr.decoder s in
  let call =
    match Xdr.read_u32 d with
    | 1 -> Getattr (dec_oid d)
    | 2 ->
      let o = dec_oid d in
      Setattr (o, dec_sattr d)
    | 4 ->
      let o = dec_oid d in
      Lookup (o, Xdr.read_str d)
    | 5 -> Readlink (dec_oid d)
    | 6 ->
      let o = dec_oid d in
      let off = Xdr.read_u32 d in
      Read (o, off, Xdr.read_u32 d)
    | 8 ->
      let o = dec_oid d in
      let off = Xdr.read_u32 d in
      Write (o, off, Xdr.read_opaque d)
    | 9 ->
      let o = dec_oid d in
      let name = Xdr.read_str d in
      Create (o, name, dec_sattr d)
    | 10 ->
      let o = dec_oid d in
      Remove (o, Xdr.read_str d)
    | 11 ->
      let so = dec_oid d in
      let sn = Xdr.read_str d in
      let dd = dec_oid d in
      Rename (so, sn, dd, Xdr.read_str d)
    | 13 ->
      let o = dec_oid d in
      let name = Xdr.read_str d in
      let target = Xdr.read_str d in
      Symlink (o, name, target, dec_sattr d)
    | 14 ->
      let o = dec_oid d in
      let name = Xdr.read_str d in
      Mkdir (o, name, dec_sattr d)
    | 15 ->
      let o = dec_oid d in
      Rmdir (o, Xdr.read_str d)
    | 16 -> Readdir (dec_oid d)
    | 17 -> Statfs
    | n -> raise (Xdr.Decode_error (Printf.sprintf "bad call tag %d" n))
  in
  Xdr.expect_end d;
  call

let dec_fattr d =
  let ftype =
    match Xdr.read_u32 d with
    | 1 -> Reg
    | 2 -> Dir
    | 5 -> Lnk
    | n -> raise (Xdr.Decode_error (Printf.sprintf "bad ftype %d" n))
  in
  let mode = Xdr.read_u32 d in
  let nlink = Xdr.read_u32 d in
  let uid = Xdr.read_u32 d in
  let gid = Xdr.read_u32 d in
  let size = Xdr.read_u32 d in
  let fsid = Xdr.read_u32 d in
  let fileid = Xdr.read_u32 d in
  let atime = Xdr.read_i64 d in
  let mtime = Xdr.read_i64 d in
  let ctime = Xdr.read_i64 d in
  { ftype; mode; nlink; uid; gid; size; fsid; fileid; atime; mtime; ctime }

let decode_reply s =
  let d = Xdr.decoder s in
  let reply =
    match Xdr.read_u32 d with
    | 0 -> R_err (err_of_code (Xdr.read_u32 d))
    | 1 -> R_attr (dec_fattr d)
    | 2 ->
      let o = dec_oid d in
      R_lookup (o, dec_fattr d)
    | 3 -> R_readlink (Xdr.read_str d)
    | 4 ->
      let data = Xdr.read_opaque d in
      R_read (data, dec_fattr d)
    | 5 ->
      let o = dec_oid d in
      R_create (o, dec_fattr d)
    | 6 -> R_ok
    | 7 ->
      R_readdir
        (Xdr.read_list d (fun d ->
             let name = Xdr.read_str d in
             (name, dec_oid d)))
    | 8 ->
      let total_slots = Xdr.read_u32 d in
      R_statfs { total_slots; free_slots = Xdr.read_u32 d }
    | n -> raise (Xdr.Decode_error (Printf.sprintf "bad reply tag %d" n))
  in
  Xdr.expect_end d;
  reply

let call_label = function
  | Getattr _ -> "getattr"
  | Setattr _ -> "setattr"
  | Lookup _ -> "lookup"
  | Readlink _ -> "readlink"
  | Read _ -> "read"
  | Write _ -> "write"
  | Create _ -> "create"
  | Remove _ -> "remove"
  | Rename _ -> "rename"
  | Symlink _ -> "symlink"
  | Mkdir _ -> "mkdir"
  | Rmdir _ -> "rmdir"
  | Readdir _ -> "readdir"
  | Statfs -> "statfs"
