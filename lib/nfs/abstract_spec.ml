(** The common abstract specification [S] of the file service (Section 3.1),
    as an executable model.

    The abstract state is a fixed-size array of entries, each a pair of a
    generation number and an object.  Objects are files (byte array),
    directories (lexicographically sorted [name -> oid] sequences), symbolic
    links, or the special null object marking a free entry.  Entry 0 is the
    root directory.  Oids are assigned deterministically: the lowest free
    index, with the entry's generation number incremented.

    Every conformance wrapper must make its off-the-shelf implementation
    behave exactly like this model: the model is both the specification the
    wrappers are tested against (differentially, on random operation
    sequences) and the definition of the canonical abstract-object encoding
    ({!encode_entry}) that all replicas' [get_obj] upcalls produce. *)

open Nfs_types
module Xdr = Base_codec.Xdr

type meta = { mode : int; uid : int; gid : int; mtime : int64; ctime : int64 }

type obj =
  | Null
  | File of { meta : meta; data : string }
  | Directory of { meta : meta; entries : (string * oid) list (* sorted by name *) }
  | Symlink of { meta : meta; target : string }

type entry = { gen : int; obj : obj }

type t = { slots : entry array }

let n_objects t = Array.length t.slots

let create ~n_objects =
  if n_objects < 2 then invalid_arg "Abstract_spec.create: need at least 2 slots";
  let slots = Array.make n_objects { gen = 0; obj = Null } in
  slots.(0) <-
    {
      gen = 0;
      obj = Directory { meta = { mode = 0o755; uid = 0; gid = 0; mtime = 0L; ctime = 0L }; entries = [] };
    };
  { slots }

let slot t i = t.slots.(i)

(* --- canonical encoding ---------------------------------------------------- *)

let enc_meta e (m : meta) =
  Xdr.u32 e m.mode;
  Xdr.u32 e m.uid;
  Xdr.u32 e m.gid;
  Xdr.i64 e m.mtime;
  Xdr.i64 e m.ctime

let encode_entry (en : entry) =
  let e = Xdr.encoder () in
  Xdr.u32 e en.gen;
  (match en.obj with
  | Null -> Xdr.u32 e 0
  | File { meta; data } ->
    Xdr.u32 e 1;
    enc_meta e meta;
    Xdr.opaque e data
  | Directory { meta; entries } ->
    Xdr.u32 e 2;
    enc_meta e meta;
    Xdr.list e
      (fun e (name, o) ->
        Xdr.str e name;
        Xdr.u32 e o.index;
        Xdr.u32 e o.gen)
      entries
  | Symlink { meta; target } ->
    Xdr.u32 e 3;
    enc_meta e meta;
    Xdr.str e target);
  Xdr.contents e

let dec_meta d =
  let mode = Xdr.read_u32 d in
  let uid = Xdr.read_u32 d in
  let gid = Xdr.read_u32 d in
  let mtime = Xdr.read_i64 d in
  let ctime = Xdr.read_i64 d in
  { mode; uid; gid; mtime; ctime }

let decode_entry s =
  let d = Xdr.decoder s in
  let gen = Xdr.read_u32 d in
  let obj =
    match Xdr.read_u32 d with
    | 0 -> Null
    | 1 ->
      let meta = dec_meta d in
      File { meta; data = Xdr.read_opaque d }
    | 2 ->
      let meta = dec_meta d in
      Directory
        {
          meta;
          entries =
            Xdr.read_list d (fun d ->
                let name = Xdr.read_str d in
                let index = Xdr.read_u32 d in
                let gen = Xdr.read_u32 d in
                (name, { index; gen }));
        }
    | 3 ->
      let meta = dec_meta d in
      Symlink { meta; target = Xdr.read_str d }
    | n -> raise (Xdr.Decode_error (Printf.sprintf "bad abstract object tag %d" n))
  in
  Xdr.expect_end d;
  { gen; obj }

(* --- derived attributes ----------------------------------------------------- *)

let dir_size entries = 32 + (24 * List.length entries)

let attr_of ~index (en : entry) =
  match en.obj with
  | Null -> invalid_arg "Abstract_spec.attr_of: null object"
  | File { meta; data } ->
    {
      ftype = Reg;
      mode = meta.mode;
      nlink = 1;
      uid = meta.uid;
      gid = meta.gid;
      size = String.length data;
      fsid = 1;
      fileid = index;
      atime = meta.mtime;
      mtime = meta.mtime;
      ctime = meta.ctime;
    }
  | Directory { meta; entries } ->
    {
      ftype = Dir;
      mode = meta.mode;
      nlink = 2;
      uid = meta.uid;
      gid = meta.gid;
      size = dir_size entries;
      fsid = 1;
      fileid = index;
      atime = meta.mtime;
      mtime = meta.mtime;
      ctime = meta.ctime;
    }
  | Symlink { meta; target } ->
    {
      ftype = Lnk;
      mode = meta.mode;
      nlink = 1;
      uid = meta.uid;
      gid = meta.gid;
      size = String.length target;
      fsid = 1;
      fileid = index;
      atime = meta.mtime;
      mtime = meta.mtime;
      ctime = meta.ctime;
    }

(* --- the operational semantics ---------------------------------------------- *)

type resolved = { r_index : int; r_entry : entry }

let resolve t (o : oid) =
  if o.index < 0 || o.index >= n_objects t then Error Estale
  else begin
    let en = t.slots.(o.index) in
    if en.gen <> o.gen || en.obj = Null then Error Estale
    else Ok { r_index = o.index; r_entry = en }
  end

let find_free t =
  let rec loop i =
    if i >= n_objects t then None
    else if t.slots.(i).obj = Null then Some i
    else loop (i + 1)
  in
  loop 1

let sorted_insert entries name o =
  let rec ins = function
    | [] -> [ (name, o) ]
    | (n, _) :: _ as rest when String.compare name n < 0 -> (name, o) :: rest
    | e :: rest -> e :: ins rest
  in
  ins (List.remove_assoc name entries)

(* Is [idx] inside the subtree rooted at [root_idx]?  Used for the
   rename-into-own-descendant check. *)
let in_subtree t ~root_idx idx =
  let rec walk at =
    at = idx
    ||
    match t.slots.(at).obj with
    | Directory { entries; _ } -> List.exists (fun (_, o) -> walk o.index) entries
    | File _ | Symlink _ | Null -> false
  in
  walk root_idx

let oid_at t index = { index; gen = t.slots.(index).gen }

(* All slot mutation funnels through [set] so copy-on-write checkpointing
   sees every modification before it happens. *)
let execute ?(modify = fun (_ : int) -> ()) t ~ts (call : Nfs_proto.call) : Nfs_proto.reply =
  let set i entry =
    modify i;
    t.slots.(i) <- entry
  in
  let touch_dir i (meta : meta) entries = set i { gen = t.slots.(i).gen; obj = Directory { meta = { meta with mtime = ts; ctime = ts }; entries } } in
  let dir_of r =
    match r.r_entry.obj with
    | Directory { meta; entries } -> Ok (meta, entries)
    | File _ | Symlink _ -> Error Enotdir
    | Null -> Error Estale
  in
  let with_dir o k =
    match resolve t o with
    | Error e -> Nfs_proto.R_err e
    | Ok r -> (
      match dir_of r with Error e -> Nfs_proto.R_err e | Ok (meta, entries) -> k r meta entries)
  in
  let with_named_dir o name k =
    with_dir o (fun r meta entries ->
        if not (name_ok name) then Nfs_proto.R_err Einval else k r meta entries)
  in
  let allocate obj =
    match find_free t with
    | None -> Error Enospc
    | Some i ->
      let gen = t.slots.(i).gen + 1 in
      set i { gen; obj };
      Ok { index = i; gen }
  in
  let free i =
    (* The generation number stays; it is bumped at the next allocation. *)
    set i { gen = t.slots.(i).gen; obj = Null }
  in
  match call with
  | Getattr o -> (
    match resolve t o with
    | Error e -> R_err e
    | Ok r -> R_attr (attr_of ~index:r.r_index r.r_entry))
  | Setattr (o, s) -> (
    match resolve t o with
    | Error e -> R_err e
    | Ok r -> (
      let upd (m : meta) =
        {
          mode = Option.value s.s_mode ~default:m.mode;
          uid = Option.value s.s_uid ~default:m.uid;
          gid = Option.value s.s_gid ~default:m.gid;
          ctime = ts;
          mtime = Option.value s.s_mtime ~default:m.mtime;
        }
      in
      match (r.r_entry.obj, s.s_size) with
      | Directory _, Some _ -> R_err Eisdir
      | Symlink _, Some _ -> R_err Einval
      | File { meta; data }, size_opt ->
        let data =
          match size_opt with
          | None -> data
          | Some size ->
            if size > max_file_size then data (* handled below *)
            else if size <= String.length data then String.sub data 0 size
            else data ^ String.make (size - String.length data) '\000'
        in
        if (match size_opt with Some size -> size > max_file_size | None -> false) then
          R_err Efbig
        else begin
          let meta = upd meta in
          let meta =
            if s.s_size <> None && s.s_mtime = None then { meta with mtime = ts } else meta
          in
          set r.r_index { gen = r.r_entry.gen; obj = File { meta; data } };
          R_attr (attr_of ~index:r.r_index t.slots.(r.r_index))
        end
      | Directory { meta; entries }, None ->
        set r.r_index { gen = r.r_entry.gen; obj = Directory { meta = upd meta; entries } };
        R_attr (attr_of ~index:r.r_index t.slots.(r.r_index))
      | Symlink { meta; target }, None ->
        set r.r_index { gen = r.r_entry.gen; obj = Symlink { meta = upd meta; target } };
        R_attr (attr_of ~index:r.r_index t.slots.(r.r_index))
      | Null, _ -> R_err Estale))
  | Lookup (o, name) ->
    with_dir o (fun _r _meta entries ->
        if not (name_ok name) then R_err Einval
        else
          match List.assoc_opt name entries with
          | None -> R_err Enoent
          | Some child -> R_lookup (child, attr_of ~index:child.index t.slots.(child.index)))
  | Readlink o -> (
    match resolve t o with
    | Error e -> R_err e
    | Ok r -> (
      match r.r_entry.obj with
      | Symlink { target; _ } -> R_readlink target
      | File _ | Directory _ | Null -> R_err Einval))
  | Read (o, off, count) -> (
    match resolve t o with
    | Error e -> R_err e
    | Ok r -> (
      match r.r_entry.obj with
      | File { data; _ } ->
        let len = String.length data in
        let off = min off len in
        let count = min count (len - off) in
        R_read (String.sub data off count, attr_of ~index:r.r_index r.r_entry)
      | Directory _ -> R_err Eisdir
      | Symlink _ -> R_err Einval
      | Null -> R_err Estale))
  | Write (o, off, wdata) -> (
    match resolve t o with
    | Error e -> R_err e
    | Ok r -> (
      match r.r_entry.obj with
      | File { meta; data } ->
        if off + String.length wdata > max_file_size then R_err Efbig
        else begin
          let len = String.length data in
          let base =
            if off > len then data ^ String.make (off - len) '\000' else data
          in
          let head = String.sub base 0 off in
          let tail_start = off + String.length wdata in
          let tail =
            if tail_start < String.length base then
              String.sub base tail_start (String.length base - tail_start)
            else ""
          in
          let meta = { meta with mtime = ts; ctime = ts } in
          set r.r_index { gen = r.r_entry.gen; obj = File { meta; data = head ^ wdata ^ tail } };
          R_attr (attr_of ~index:r.r_index t.slots.(r.r_index))
        end
      | Directory _ -> R_err Eisdir
      | Symlink _ -> R_err Einval
      | Null -> R_err Estale))
  | Create (o, name, s) ->
    with_named_dir o name (fun r meta entries ->
        if List.mem_assoc name entries then R_err Eexist
        else begin
          let m =
            {
              mode = Option.value s.s_mode ~default:0o644;
              uid = Option.value s.s_uid ~default:0;
              gid = Option.value s.s_gid ~default:0;
              mtime = ts;
              ctime = ts;
            }
          in
          match allocate (File { meta = m; data = "" }) with
          | Error e -> R_err e
          | Ok child ->
            touch_dir r.r_index meta (sorted_insert entries name child);
            R_create (child, attr_of ~index:child.index t.slots.(child.index))
        end)
  | Remove (o, name) ->
    with_named_dir o name (fun r meta entries ->
        match List.assoc_opt name entries with
        | None -> R_err Enoent
        | Some child -> (
          match t.slots.(child.index).obj with
          | Directory _ -> R_err Eisdir
          | File _ | Symlink _ ->
            free child.index;
            touch_dir r.r_index meta (List.remove_assoc name entries);
            R_ok
          | Null -> R_err Estale))
  | Rename (so, sn, dd, dn) ->
    with_named_dir so sn (fun sr smeta sentries ->
        with_named_dir dd dn (fun dr _dmeta _dentries ->
            match List.assoc_opt sn sentries with
            | None -> R_err Enoent
            | Some child ->
              if so.index = dd.index && String.equal sn dn then R_ok
              else begin
                let child_is_dir =
                  match t.slots.(child.index).obj with Directory _ -> true | _ -> false
                in
                if child_is_dir && in_subtree t ~root_idx:child.index dr.r_index then
                  R_err Einval
                else begin
                  (* Re-read the destination directory: it may be the same
                     object as the source. *)
                  let dest_entries =
                    match t.slots.(dr.r_index).obj with
                    | Directory { entries; _ } -> entries
                    | _ -> assert false
                  in
                  let replace =
                    match List.assoc_opt dn dest_entries with
                    | None -> Ok None
                    | Some existing -> (
                      match (child_is_dir, t.slots.(existing.index).obj) with
                      | true, Directory { entries = []; _ } -> Ok (Some existing)
                      | true, Directory _ -> Error Enotempty
                      | true, (File _ | Symlink _) -> Error Enotdir
                      | false, Directory _ -> Error Eisdir
                      | false, (File _ | Symlink _) -> Ok (Some existing)
                      | _, Null -> Error Estale)
                  in
                  match replace with
                  | Error e -> R_err e
                  | Ok replaced ->
                    (match replaced with
                    | Some existing -> free existing.index
                    | None -> ());
                    (* Remove from source, insert into destination; the two
                       may be the same directory. *)
                    if sr.r_index = dr.r_index then begin
                      let entries = List.remove_assoc sn sentries in
                      touch_dir sr.r_index smeta (sorted_insert entries dn child)
                    end
                    else begin
                      touch_dir sr.r_index smeta (List.remove_assoc sn sentries);
                      let dmeta, dentries =
                        match t.slots.(dr.r_index).obj with
                        | Directory { meta; entries } -> (meta, entries)
                        | _ -> assert false
                      in
                      touch_dir dr.r_index dmeta (sorted_insert dentries dn child)
                    end;
                    R_ok
                end
              end))
  | Symlink (o, name, target, s) ->
    with_named_dir o name (fun r meta entries ->
        if String.length target > 1024 then R_err Einval
        else if List.mem_assoc name entries then R_err Eexist
        else begin
          let m =
            {
              mode = Option.value s.s_mode ~default:0o777;
              uid = Option.value s.s_uid ~default:0;
              gid = Option.value s.s_gid ~default:0;
              mtime = ts;
              ctime = ts;
            }
          in
          match allocate (Symlink { meta = m; target }) with
          | Error e -> R_err e
          | Ok child ->
            touch_dir r.r_index meta (sorted_insert entries name child);
            R_create (child, attr_of ~index:child.index t.slots.(child.index))
        end)
  | Mkdir (o, name, s) ->
    with_named_dir o name (fun r meta entries ->
        if List.mem_assoc name entries then R_err Eexist
        else begin
          let m =
            {
              mode = Option.value s.s_mode ~default:0o755;
              uid = Option.value s.s_uid ~default:0;
              gid = Option.value s.s_gid ~default:0;
              mtime = ts;
              ctime = ts;
            }
          in
          match allocate (Directory { meta = m; entries = [] }) with
          | Error e -> R_err e
          | Ok child ->
            touch_dir r.r_index meta (sorted_insert entries name child);
            R_create (child, attr_of ~index:child.index t.slots.(child.index))
        end)
  | Rmdir (o, name) ->
    with_named_dir o name (fun r meta entries ->
        match List.assoc_opt name entries with
        | None -> R_err Enoent
        | Some child -> (
          match t.slots.(child.index).obj with
          | Directory { entries = []; _ } ->
            free child.index;
            touch_dir r.r_index meta (List.remove_assoc name entries);
            R_ok
          | Directory _ -> R_err Enotempty
          | File _ | Symlink _ -> R_err Enotdir
          | Null -> R_err Estale))
  | Readdir o -> with_dir o (fun _r _meta entries -> R_readdir entries)
  | Statfs ->
    let free_slots =
      Array.fold_left (fun acc en -> if en.obj = Null then acc + 1 else acc) 0 t.slots
    in
    R_statfs { total_slots = n_objects t; free_slots }
