(** Core types of the NFS-like file service (RFC 1094 subset).

    The client-visible file handle is an {!oid}: the index of the object in
    the abstract-state array concatenated with its generation number, as in
    Section 3.1 of the paper.  Concrete (per-implementation) file handles
    are opaque strings and never escape the conformance wrapper. *)

type oid = { index : int; gen : int }

let oid_equal a b = a.index = b.index && a.gen = b.gen

let pp_oid ppf o = Format.fprintf ppf "%d.%d" o.index o.gen

let root_oid = { index = 0; gen = 0 }

type ftype = Reg | Dir | Lnk

let ftype_to_string = function Reg -> "REG" | Dir -> "DIR" | Lnk -> "LNK"

(** Abstract file attributes, every field deterministic.  [fileid] is the
    oid index; [fsid] is constant; [atime] mirrors [mtime] (the service
    behaves as a [noatime] mount so reads stay read-only). *)
type fattr = {
  ftype : ftype;
  mode : int;
  nlink : int;
  uid : int;
  gid : int;
  size : int;
  fsid : int;
  fileid : int;
  atime : int64;  (** microseconds *)
  mtime : int64;
  ctime : int64;
}

(** Settable attributes ([None] = leave unchanged). *)
type sattr = {
  s_mode : int option;
  s_uid : int option;
  s_gid : int option;
  s_size : int option;
  s_mtime : int64 option;
}

let sattr_empty = { s_mode = None; s_uid = None; s_gid = None; s_size = None; s_mtime = None }

type err =
  | Eperm
  | Enoent
  | Eio
  | Eexist
  | Enotdir
  | Eisdir
  | Einval
  | Efbig
  | Enospc
  | Enotempty
  | Estale

let err_to_string = function
  | Eperm -> "EPERM"
  | Enoent -> "ENOENT"
  | Eio -> "EIO"
  | Eexist -> "EEXIST"
  | Enotdir -> "ENOTDIR"
  | Eisdir -> "EISDIR"
  | Einval -> "EINVAL"
  | Efbig -> "EFBIG"
  | Enospc -> "ENOSPC"
  | Enotempty -> "ENOTEMPTY"
  | Estale -> "ESTALE"

let err_code = function
  | Eperm -> 1
  | Enoent -> 2
  | Eio -> 5
  | Eexist -> 17
  | Enotdir -> 20
  | Eisdir -> 21
  | Einval -> 22
  | Efbig -> 27
  | Enospc -> 28
  | Enotempty -> 66
  | Estale -> 70

let err_of_code = function
  | 1 -> Eperm
  | 2 -> Enoent
  | 5 -> Eio
  | 17 -> Eexist
  | 20 -> Enotdir
  | 21 -> Eisdir
  | 22 -> Einval
  | 27 -> Efbig
  | 28 -> Enospc
  | 66 -> Enotempty
  | 70 -> Estale
  | n -> invalid_arg (Printf.sprintf "Nfs_types.err_of_code: %d" n)

(** Service limits, part of the common abstract specification so that every
    implementation rejects the same requests. *)
let max_file_size = 1 lsl 20

let max_name_len = 255

(* Names are validated by the conformance wrapper, uniformly across
   implementations.  '#'-prefixed names are reserved for the wrapper's
   hidden staging directory. *)
let name_ok name =
  let len = String.length name in
  len > 0 && len <= max_name_len
  && (not (String.equal name "."))
  && not (String.equal name "..")
  && (not (String.contains name '/'))
  && name.[0] <> '#'
