(** Conformance wrapper for the object database.

    The common abstract specification mirrors the file service's structure:
    a fixed array of (generation, object) slots, deterministic slot
    allocation (lowest free index), canonical XDR encoding with fields and
    references sorted by name, and version stamps taken from the agreed
    non-deterministic values instead of the engine's local clock.

    The conformance rep maps slots to the engine's random internal tokens
    (and back), exactly as the NFS wrapper maps oids to file handles. *)

module Xdr = Base_codec.Xdr
module Service = Base_core.Service
open Oodb_proto

type slot = {
  mutable gen : int;
  mutable token : string option;  (* internal oid; None = free *)
  mutable stamp : int64;  (* abstract version stamp *)
}

type t = {
  db : Oodb.t;
  slots : slot array;
  token2slot : (string, int) Hashtbl.t;
}

let resolve t (o : aoid) =
  if o.index < 0 || o.index >= Array.length t.slots then None
  else begin
    let s = t.slots.(o.index) in
    match s.token with
    | Some token when s.gen = o.gen -> Some (o.index, token)
    | Some _ | None -> None
  end

let find_free t =
  let rec loop i =
    if i >= Array.length t.slots then None
    else if t.slots.(i).token = None then Some i
    else loop (i + 1)
  in
  loop 1

let aoid_of t i = { index = i; gen = t.slots.(i).gen }

(* Canonical field order of the abstract encoding: by field name, then by
   value/target so duplicate names (which the engine never produces) would
   still encode identically on every replica. *)
let compare_field (f1, v1) (f2, v2) =
  match String.compare f1 f2 with 0 -> String.compare v1 v2 | c -> c

let compare_ref (f1, (o1 : aoid)) (f2, (o2 : aoid)) =
  match String.compare f1 f2 with
  | 0 -> ( match Int.compare o1.index o2.index with 0 -> Int.compare o1.gen o2.gen | c -> c)
  | c -> c

(* Abstract view of one slot: fields sorted, refs sorted and translated to
   abstract oids. *)
let abstract_value t i =
  let token = Option.get t.slots.(i).token in
  match Oodb.get t.db token with
  | None -> failwith "oodb wrapper: token vanished"
  | Some r ->
    let fields = List.sort compare_field r.Oodb.fields in
    let refs =
      r.Oodb.refs
      |> List.filter_map (fun (f, target) ->
             match Hashtbl.find_opt t.token2slot target with
             | Some ti
               when Option.equal String.equal t.slots.(ti).token (Some target) ->
               Some (f, aoid_of t ti)
             | Some _ | None -> None (* dangling: target was deleted *))
      |> List.sort compare_ref
    in
    (fields, refs)

let encode_slot t i =
  let e = Xdr.encoder () in
  let s = t.slots.(i) in
  Xdr.u32 e s.gen;
  (match s.token with
  | None -> Xdr.u32 e 0
  | Some _ ->
    Xdr.u32 e 1;
    let fields, refs = abstract_value t i in
    Xdr.list e
      (fun e (f, v) ->
        Xdr.str e f;
        Xdr.str e v)
      fields;
    Xdr.list e
      (fun e (f, (o : aoid)) ->
        Xdr.str e f;
        Xdr.u32 e o.index;
        Xdr.u32 e o.gen)
      refs;
    Xdr.i64 e s.stamp);
  Xdr.contents e

type decoded_slot = {
  d_gen : int;
  d_value : ((string * string) list * (string * aoid) list * int64) option;
}

let decode_slot data =
  let d = Xdr.decoder data in
  let d_gen = Xdr.read_u32 d in
  let d_value =
    match Xdr.read_u32 d with
    | 0 -> None
    | 1 ->
      let fields =
        Xdr.read_list d (fun d ->
            let f = Xdr.read_str d in
            (f, Xdr.read_str d))
      in
      let refs =
        Xdr.read_list d (fun d ->
            let f = Xdr.read_str d in
            let index = Xdr.read_u32 d in
            let gen = Xdr.read_u32 d in
            (f, { index; gen }))
      in
      let stamp = Xdr.read_i64 d in
      Some (fields, refs, stamp)
    | n -> raise (Xdr.Decode_error (Printf.sprintf "bad slot tag %d" n))
  in
  Xdr.expect_end d;
  { d_gen; d_value }

let execute_call t ~modify ~ts (call : call) : reply =
  match call with
  | New -> (
    match find_free t with
    | None -> R_full
    | Some i ->
      modify i;
      let token = Oodb.alloc t.db in
      let s = t.slots.(i) in
      s.gen <- s.gen + 1;
      s.token <- Some token;
      s.stamp <- ts;
      Hashtbl.replace t.token2slot token i;
      R_oid (aoid_of t i))
  | Get o -> (
    match resolve t o with
    | None -> R_stale
    | Some (i, _) ->
      let fields, refs = abstract_value t i in
      R_value { fields; refs; stamp = t.slots.(i).stamp })
  | Set_field (o, f, v) -> (
    match resolve t o with
    | None -> R_stale
    | Some (i, token) ->
      modify i;
      ignore (Oodb.set_field t.db token f v);
      t.slots.(i).stamp <- ts;
      R_unit)
  | Get_field (o, f) -> (
    match resolve t o with
    | None -> R_stale
    | Some (_, token) -> R_field (Oodb.get_field t.db token f))
  | Set_ref (o, f, target) -> (
    match (resolve t o, resolve t target) with
    | None, _ | _, None -> R_stale
    | Some (i, token), Some (_, target_token) ->
      modify i;
      ignore (Oodb.set_ref t.db token f target_token);
      t.slots.(i).stamp <- ts;
      R_unit)
  | Clear_ref (o, f) -> (
    match resolve t o with
    | None -> R_stale
    | Some (i, token) ->
      modify i;
      ignore (Oodb.clear_ref t.db token f);
      t.slots.(i).stamp <- ts;
      R_unit)
  | Delete o -> (
    match resolve t o with
    | None -> R_stale
    | Some (i, token) ->
      if i = 0 then R_stale (* the root object is permanent *)
      else begin
        modify i;
        (* Objects referencing the victim change abstractly too (their
           dangling refs disappear from the abstract view). *)
        Array.iteri
          (fun j s ->
            match s.token with
            | Some holder -> (
              match Oodb.get t.db holder with
              | Some r when List.exists (fun (_, tgt) -> String.equal tgt token) r.Oodb.refs ->
                modify j;
                r.Oodb.refs <-
                  List.filter (fun (_, tgt) -> not (String.equal tgt token)) r.Oodb.refs
              | Some _ | None -> ())
            | None -> ())
          t.slots;
        Oodb.delete t.db token;
        Hashtbl.remove t.token2slot token;
        t.slots.(i).token <- None;
        R_unit
      end)
  | Count -> R_count (Oodb.count t.db)

let put_objs t objs =
  let decoded = List.map (fun (i, data) -> (i, decode_slot data)) objs in
  (* Drop slots that are freed or reassigned; free slots still adopt the
     batch's generation number (it is part of the abstract state). *)
  List.iter
    (fun (i, ds) ->
      let s = t.slots.(i) in
      (match s.token with
      | Some token when ds.d_value = None || ds.d_gen <> s.gen ->
        Oodb.delete t.db token;
        Hashtbl.remove t.token2slot token;
        s.token <- None
      | Some _ | None -> ());
      if ds.d_value = None then s.gen <- ds.d_gen)
    decoded;
  (* Materialise missing objects. *)
  List.iter
    (fun (i, ds) ->
      match ds.d_value with
      | Some _ when t.slots.(i).token = None ->
        let token = Oodb.alloc t.db in
        let s = t.slots.(i) in
        s.gen <- ds.d_gen;
        s.token <- Some token;
        Hashtbl.replace t.token2slot token i
      | Some _ | None -> ())
    decoded;
  (* Install values; references may point at slots created above or at
     slots outside the batch. *)
  List.iter
    (fun (i, ds) ->
      match ds.d_value with
      | None -> ()
      | Some (fields, refs, stamp) -> (
        let s = t.slots.(i) in
        s.gen <- ds.d_gen;
        s.stamp <- stamp;
        let token = Option.get s.token in
        match Oodb.get t.db token with
        | None -> failwith "oodb put_objs: token vanished"
        | Some r ->
          r.Oodb.fields <- fields;
          r.Oodb.refs <-
            List.filter_map
              (fun (f, (o : aoid)) ->
                match t.slots.(o.index).token with
                | Some target when t.slots.(o.index).gen = o.gen -> Some (f, target)
                | Some _ | None -> None)
              refs))
    decoded

let make ?(max_skew_us = 5_000_000L) ~seed ~now ~n_objects () =
  let db = Oodb.create ~seed ~now in
  let t =
    {
      db;
      slots = Array.init n_objects (fun _ -> { gen = 0; token = None; stamp = 0L });
      token2slot = Hashtbl.create 64;
    }
  in
  (* Slot 0 is the root object. *)
  t.slots.(0).token <- Some (Oodb.root db);
  Hashtbl.replace t.token2slot (Oodb.root db) 0;
  let execute ~client:_ ~operation ~nondet ~read_only:_ ~modify =
    let ts = Service.clock_of_nondet nondet in
    let reply =
      match decode_call operation with
      | call -> execute_call t ~modify ~ts call
      | exception Xdr.Decode_error _ -> R_stale
    in
    encode_reply reply
  in
  {
    Service.name = "oodb";
    n_objects;
    execute;
    get_obj = (fun i -> encode_slot t i);
    put_objs = (fun objs -> put_objs t objs);
    restart = (fun () -> () (* tokens are stable within this engine *));
    propose_nondet = (fun ~clock_us ~operation:_ -> Service.nondet_of_clock clock_us);
    check_nondet =
      (fun ~clock_us ~operation:_ ~nondet ->
        Service.default_check_nondet ~max_skew_us ~clock_us ~nondet);
    (* Slots are reached through concrete tokens the client holds, not named
       statically in the call, so the OODB declares no routing footprint and
       always runs unsharded. *)
    oids_of_op = Service.no_footprint;
  }
