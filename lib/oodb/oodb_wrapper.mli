(** Conformance wrapper for the object database: the "same non-deterministic
    implementation at every replica" configuration from the paper's
    abstract.

    The abstract state mirrors the file service's structure — a fixed array
    of (generation, object) slots with deterministic lowest-free-index
    allocation, canonical sorted encodings, and version stamps taken from
    the agreed non-deterministic values. *)

val compare_field : string * string -> string * string -> int
(** Canonical order of the abstract encoding's field list: by field name,
    then value, so every replica encodes identical abstract objects to
    identical bytes regardless of the engine's internal field order. *)

val compare_ref : string * Oodb_proto.aoid -> string * Oodb_proto.aoid -> int
(** Same, for reference lists: by field name, then (index, gen). *)

val make :
  ?max_skew_us:int64 ->
  seed:int64 ->
  now:(unit -> int64) ->
  n_objects:int ->
  unit ->
  Base_core.Service.wrapper
