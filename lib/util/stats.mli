(** Small descriptive-statistics helpers for the benchmark harness.

    All functions are total: the empty series yields {!empty_summary}
    (count 0, every aggregate 0.0) instead of raising, NaN observations are
    dropped before aggregation, and sorting uses [Float.compare] (a total
    order) rather than polymorphic compare. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** population standard deviation (divides by n, not n-1) *)
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val empty_summary : summary
(** The summary of the empty series: count 0, all aggregates 0.0. *)

val summarize : float list -> summary
(** Never raises.  NaN elements are ignored; an empty (or all-NaN) series
    returns {!empty_summary}. *)

val summarize_opt : float list -> summary option
(** [None] when the series is empty after NaN filtering — for callers that
    need to distinguish "no data" from "all zeros". *)

val percentile : float array -> float -> float
(** [percentile sorted p] with [p] clamped to [\[0,1\]]; [sorted] must be
    ascending.  Linear interpolation between ranks; [0.0] on the empty
    array. *)

val mean : float list -> float

val pp_summary : Format.formatter -> summary -> unit
