type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64 finaliser: xor-shift-multiply mixing of the incremented state. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (next64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Drop two bits so the value fits OCaml's 63-bit native int positively. *)
  let r = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  r mod bound

let int64 t bound =
  if Int64.compare bound 0L <= 0 then invalid_arg "Prng.int64: bound must be positive";
  Int64.rem (Int64.shift_right_logical (next64 t) 1) bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.equal (Int64.logand (next64 t) 1L) 1L

let bernoulli t p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  b

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
