type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let empty_summary =
  { count = 0; mean = 0.0; stddev = 0.0; min = 0.0; max = 0.0; p50 = 0.0; p90 = 0.0; p99 = 0.0 }

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else if n = 1 then sorted.(0)
  else begin
    let p = Float.max 0.0 (Float.min 1.0 p) in
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize xs =
  (* NaN would poison every aggregate and has no meaningful order; drop it
     up front so the sort (Float.compare: a total order, -0 < +0, no
     polymorphic-compare boxing) only sees comparable values. *)
  match List.filter (fun x -> not (Float.is_nan x)) xs with
  | [] -> empty_summary
  | xs ->
    let arr = Array.of_list xs in
    Array.sort Float.compare arr;
    let n = Array.length arr in
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs /. float_of_int n
    in
    {
      count = n;
      mean = m;
      stddev = sqrt var;
      min = arr.(0);
      max = arr.(n - 1);
      p50 = percentile arr 0.5;
      p90 = percentile arr 0.9;
      p99 = percentile arr 0.99;
    }

let summarize_opt xs = match summarize xs with { count = 0; _ } -> None | s -> Some s

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
