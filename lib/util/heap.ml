type 'a entry = { value : 'a; seq : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~cmp = { cmp; data = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

(* Order by user comparator, then by insertion sequence for determinism. *)
let entry_cmp t a b =
  let c = t.cmp a.value b.value in
  if c <> 0 then c else Int.compare a.seq b.seq

let grow t =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  (* The dummy cell is only read before being overwritten. *)
  let dummy = t.data.(0) in
  let data = Array.make new_cap dummy in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_cmp t t.data.(i) t.data.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_cmp t t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && entry_cmp t t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t value =
  let e = { value; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.data = 0 then t.data <- Array.make 16 e;
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top.value
  end

let peek t = if t.size = 0 then None else Some t.data.(0).value

let clear t =
  t.size <- 0;
  t.data <- [||]

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i).value :: acc) in
  loop (t.size - 1) []
