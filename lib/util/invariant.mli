(** Checked internal invariants.

    [require cond msg] replaces the [if not cond then invalid_arg msg]
    idiom at trust boundaries.  Two reasons it exists as a named helper
    rather than raw [invalid_arg]:

    - The taint lint (basecheck --taint) registers it as a [require]-kind
      sanitizer: code after [require (0 <= n && n <= cap) _] is analyzed
      under the condition's refinements, so the bounds check it performs
      is machine-verified rather than waived as prose.
    - [Violation] is distinct from [Invalid_argument], so protocol tests
      can assert that malformed *wire* input is rejected by validation
      (returning [None]/ignoring) and never reaches an internal invariant
      crash. *)

exception Violation of string

val require : bool -> string -> unit
(** [require cond msg] raises [Violation msg] unless [cond] holds. *)

val violated : string -> 'a
(** [violated msg] raises [Violation msg]; marks unreachable branches. *)
