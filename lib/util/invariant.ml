exception Violation of string

let require cond msg = if not cond then raise (Violation msg)

let violated msg = raise (Violation msg)
