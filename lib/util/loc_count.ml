type counts = { files : int; lines : int; semicolons : int }

let zero = { files = 0; lines = 0; semicolons = 0 }

let add a b =
  {
    files = a.files + b.files;
    lines = a.lines + b.lines;
    semicolons = a.semicolons + b.semicolons;
  }

(* One-pass scanner tracking OCaml comment nesting and string literals. A
   line counts when it contains at least one code character. *)
let count_string src =
  let n = String.length src in
  let lines = ref 0 and semis = ref 0 in
  let depth = ref 0 and in_string = ref false in
  let line_has_code = ref false in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      if !line_has_code then incr lines;
      line_has_code := false;
      incr i
    end
    else if !in_string then begin
      if c = '\\' then i := !i + 2
      else begin
        if c = '"' then in_string := false;
        incr i
      end
    end
    else if !depth > 0 then begin
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        incr depth;
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        decr depth;
        i := !i + 2
      end
      else incr i
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      depth := 1;
      i := !i + 2
    end
    else begin
      if c = '"' then in_string := true;
      if c = ';' then incr semis;
      if c <> ' ' && c <> '\t' && c <> '\r' then line_has_code := true;
      incr i
    end
  done;
  if !line_has_code then incr lines;
  { files = 1; lines = !lines; semicolons = !semis }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let count_file path = count_string (read_file path)

let rec count_dir ?(ext = [ ".ml"; ".mli" ]) dir =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc name ->
      let path = Filename.concat dir name in
      if Sys.is_directory path then add acc (count_dir ~ext path)
      else if List.exists (fun e -> Filename.check_suffix name e) ext then
        add acc (count_file path)
      else acc)
    zero entries
