open Base_nfs.Nfs_types
module Proto = Base_nfs.Nfs_proto
module Spec = Base_nfs.Abstract_spec
module S = Base_fs.Server_intf
module Service = Base_core.Service

(* Conformance rep (Section 3.2): one slot per abstract object.  [fh] is the
   concrete handle the underlying server assigned to the object (volatile);
   [mtime]/[ctime] are the object's *abstract* timestamps; [parent]/[name]
   locate the object concretely ([parent = staging_parent] while it sits in
   the hidden staging directory). *)
type rentry = {
  mutable gen : int;
  mutable fh : string option;
  mutable ftype : ftype;
  mutable mtime : int64;
  mutable ctime : int64;
  mutable parent : int;
  mutable name : string;
}

let staging_parent = -1

type t = {
  server : S.t;
  entries : rentry array;
  fh2oid : (string, int) Hashtbl.t;  (* volatile *)
  id2oid : (int * int, int) Hashtbl.t;  (* persistent <fsid,fileid> -> index *)
  mutable staging_fh : string;
  mutable staging_seq : int;
}

let staging_name = "#staging"

exception Wrapper_bug of string

let bug fmt = Printf.ksprintf (fun s -> raise (Wrapper_bug s)) fmt

(* --- rep maintenance -------------------------------------------------------- *)

let entry_fh t i =
  match t.entries.(i).fh with
  | Some fh -> fh
  | None -> bug "oid %d has no concrete handle" i

let location_fh t (e : rentry) =
  if e.parent = staging_parent then t.staging_fh else entry_fh t e.parent

let set_fh t i fh =
  let e = t.entries.(i) in
  (match e.fh with Some old -> Hashtbl.remove t.fh2oid old | None -> ());
  e.fh <- Some fh;
  Hashtbl.replace t.fh2oid fh i

let register t i ~gen ~fh ~ftype ~parent ~name ~mtime ~ctime =
  let e = t.entries.(i) in
  e.gen <- gen;
  e.ftype <- ftype;
  e.mtime <- mtime;
  e.ctime <- ctime;
  e.parent <- parent;
  e.name <- name;
  set_fh t i fh;
  match t.server.S.identity ~fh with
  | Ok id -> Hashtbl.replace t.id2oid id i
  | Error _ -> bug "identity of fresh object %d failed" i

let unregister t i =
  let e = t.entries.(i) in
  (match e.fh with
  | Some fh ->
    Hashtbl.remove t.fh2oid fh;
    (match t.server.S.identity ~fh with
    | Ok id -> Hashtbl.remove t.id2oid id
    | Error _ -> ())
  | None -> ());
  e.fh <- None

(* After a rename, implementations with path-dependent handles (e.g. the
   hash file system) hand out new handles for the whole moved subtree.
   Recover them through lookup + the persistent identity map. *)
let rec refresh_subtree t i =
  let e = t.entries.(i) in
  match t.server.S.lookup ~dir:(location_fh t e) ~name:e.name with
  | Error _ -> bug "refresh: object %d vanished from %d/%s" i e.parent e.name
  | Ok (fh, _) ->
    if not (Option.equal String.equal e.fh (Some fh)) then set_fh t i fh;
    if e.ftype = Dir then refresh_children t i

and refresh_children t i =
  match t.server.S.readdir ~dir:(entry_fh t i) with
  | Error _ -> bug "refresh: readdir of %d failed" i
  | Ok listing ->
    List.iter
      (fun (name, cfh) ->
        if String.length name > 0 && name.[0] <> '#' then begin
          match t.server.S.identity ~fh:cfh with
          | Error _ -> bug "refresh: identity of %s failed" name
          | Ok id -> (
            match Hashtbl.find_opt t.id2oid id with
            | None -> bug "refresh: unknown object %s" name
            | Some ci ->
              let ce = t.entries.(ci) in
              if not (Option.equal String.equal ce.fh (Some cfh)) then set_fh t ci cfh;
              ce.parent <- i;
              ce.name <- name;
              if ce.ftype = Dir then refresh_children t ci)
        end)
      listing

(* --- abstract views ---------------------------------------------------------- *)

let oid_of t i = { index = i; gen = t.entries.(i).gen }

let abstract_dir_entries t i =
  match t.server.S.readdir ~dir:(entry_fh t i) with
  | Error _ -> bug "readdir of %d failed" i
  | Ok listing ->
    listing
    |> List.filter_map (fun (name, cfh) ->
           if String.length name > 0 && name.[0] = '#' then None
           else
             match Hashtbl.find_opt t.fh2oid cfh with
             | Some ci -> Some (name, oid_of t ci)
             | None -> bug "readdir: handle for %s not in rep" name)
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let concrete_attr t i =
  match t.server.S.getattr ~fh:(entry_fh t i) with
  | Ok a -> a
  | Error _ -> bug "getattr of %d failed" i

(* Abstract fattr: everything deterministic; concrete sizes and times are
   replaced by abstract ones. *)
let build_fattr t i =
  let e = t.entries.(i) in
  let ca = concrete_attr t i in
  let size =
    match e.ftype with
    | Reg -> ca.S.a_size
    | Dir -> Spec.dir_size (abstract_dir_entries t i)
    | Lnk -> (
      match t.server.S.readlink ~fh:(entry_fh t i) with
      | Ok target -> String.length target
      | Error _ -> bug "readlink of %d failed" i)
  in
  {
    ftype = e.ftype;
    mode = ca.S.a_mode;
    nlink = (match e.ftype with Dir -> 2 | Reg | Lnk -> 1);
    uid = ca.S.a_uid;
    gid = ca.S.a_gid;
    size;
    fsid = 1;
    fileid = i;
    atime = e.mtime;
    mtime = e.mtime;
    ctime = e.ctime;
  }

let resolve t (o : oid) =
  if o.index < 0 || o.index >= Array.length t.entries then Error Estale
  else begin
    let e = t.entries.(o.index) in
    if e.fh = None || e.gen <> o.gen then Error Estale else Ok o.index
  end

let find_free t =
  let rec loop i =
    if i >= Array.length t.entries then None
    else if t.entries.(i).fh = None then Some i
    else loop (i + 1)
  in
  loop 1

let fresh_staging_name t =
  t.staging_seq <- t.staging_seq + 1;
  Printf.sprintf "s%d" t.staging_seq

(* Is directory [cand] equal to [root] or inside its subtree?  Walk the rep's
   parent chain (deterministic, no server calls). *)
let under t ~root cand =
  let rec walk at steps =
    if steps > Array.length t.entries then false
    else if at = root then true
    else if at = 0 then false
    else walk t.entries.(at).parent (steps + 1)
  in
  walk cand 0

(* --- the execute upcall ------------------------------------------------------ *)

let err e = Proto.R_err e

let dir_times t i ~ts =
  let e = t.entries.(i) in
  e.mtime <- ts;
  e.ctime <- ts

let with_dir t o k =
  match resolve t o with
  | Error e -> err e
  | Ok i -> if t.entries.(i).ftype <> Dir then err Enotdir else k i

let with_named_dir t o name k =
  with_dir t o (fun i -> if not (name_ok name) then err Einval else k i)

(* Create-like operations share allocation and registration. *)
let do_create t ~modify ~ts ~dir:i ~name ~ftype ~mode ~uid ~gid ~build =
  match t.server.S.lookup ~dir:(entry_fh t i) ~name with
  | Ok _ -> err Eexist
  | Error _ -> (
    match find_free t with
    | None -> err Enospc
    | Some slot -> (
      modify slot;
      modify i;
      match build ~dir_fh:(entry_fh t i) ~name ~mode ~uid ~gid with
      | Error e -> err e
      | Ok (cfh, _) ->
        register t slot ~gen:(t.entries.(slot).gen + 1) ~fh:cfh ~ftype ~parent:i ~name
          ~mtime:ts ~ctime:ts;
        dir_times t i ~ts;
        Proto.R_create (oid_of t slot, build_fattr t slot)))

let execute_call t ~modify ~ts (call : Proto.call) : Proto.reply =
  match call with
  | Getattr o -> (
    match resolve t o with Error e -> err e | Ok i -> Proto.R_attr (build_fattr t i))
  | Setattr (o, s) -> (
    match resolve t o with
    | Error e -> err e
    | Ok i -> (
      let e = t.entries.(i) in
      match (e.ftype, s.s_size) with
      | Dir, Some _ -> err Eisdir
      | Lnk, Some _ -> err Einval
      | Reg, Some size when size > max_file_size -> err Efbig
      | (Reg | Dir | Lnk), _ -> (
        let csattr =
          { S.c_mode = s.s_mode; c_uid = s.s_uid; c_gid = s.s_gid; c_size = s.s_size }
        in
        modify i;
        match t.server.S.setattr ~fh:(entry_fh t i) csattr with
        | Error _ -> err Eio
        | Ok _ ->
          e.ctime <- ts;
          (match (s.s_mtime, s.s_size) with
          | Some m, _ -> e.mtime <- m
          | None, Some _ -> e.mtime <- ts
          | None, None -> ());
          Proto.R_attr (build_fattr t i))))
  | Lookup (o, name) ->
    with_dir t o (fun i ->
        if not (name_ok name) then err Einval
        else
          match t.server.S.lookup ~dir:(entry_fh t i) ~name with
          | Error _ -> err Enoent
          | Ok (cfh, _) -> (
            match Hashtbl.find_opt t.fh2oid cfh with
            | None -> bug "lookup: handle for %s not in rep" name
            | Some ci -> Proto.R_lookup (oid_of t ci, build_fattr t ci)))
  | Readlink o -> (
    match resolve t o with
    | Error e -> err e
    | Ok i ->
      if t.entries.(i).ftype <> Lnk then err Einval
      else (
        match t.server.S.readlink ~fh:(entry_fh t i) with
        | Ok target -> Proto.R_readlink target
        | Error _ -> err Eio))
  | Read (o, off, count) -> (
    match resolve t o with
    | Error e -> err e
    | Ok i -> (
      match t.entries.(i).ftype with
      | Dir -> err Eisdir
      | Lnk -> err Einval
      | Reg -> (
        match t.server.S.read ~fh:(entry_fh t i) ~off ~count with
        | Ok data -> Proto.R_read (data, build_fattr t i)
        | Error _ -> err Eio)))
  | Write (o, off, data) -> (
    match resolve t o with
    | Error e -> err e
    | Ok i -> (
      match t.entries.(i).ftype with
      | Dir -> err Eisdir
      | Lnk -> err Einval
      | Reg ->
        if off + String.length data > max_file_size then err Efbig
        else begin
          modify i;
          match t.server.S.write ~fh:(entry_fh t i) ~off ~data with
          | Error _ -> err Eio
          | Ok () ->
            let e = t.entries.(i) in
            e.mtime <- ts;
            e.ctime <- ts;
            Proto.R_attr (build_fattr t i)
        end))
  | Create (o, name, s) ->
    with_named_dir t o name (fun i ->
        do_create t ~modify ~ts ~dir:i ~name ~ftype:Reg
          ~mode:(Option.value s.s_mode ~default:0o644)
          ~uid:(Option.value s.s_uid ~default:0)
          ~gid:(Option.value s.s_gid ~default:0)
          ~build:(fun ~dir_fh ~name ~mode ~uid ~gid ->
            t.server.S.create ~dir:dir_fh ~name ~mode ~uid ~gid))
  | Mkdir (o, name, s) ->
    with_named_dir t o name (fun i ->
        do_create t ~modify ~ts ~dir:i ~name ~ftype:Dir
          ~mode:(Option.value s.s_mode ~default:0o755)
          ~uid:(Option.value s.s_uid ~default:0)
          ~gid:(Option.value s.s_gid ~default:0)
          ~build:(fun ~dir_fh ~name ~mode ~uid ~gid ->
            t.server.S.mkdir ~dir:dir_fh ~name ~mode ~uid ~gid))
  | Symlink (o, name, target, s) ->
    with_named_dir t o name (fun i ->
        if String.length target > 1024 then err Einval
        else
          do_create t ~modify ~ts ~dir:i ~name ~ftype:Lnk
            ~mode:(Option.value s.s_mode ~default:0o777)
            ~uid:(Option.value s.s_uid ~default:0)
            ~gid:(Option.value s.s_gid ~default:0)
            ~build:(fun ~dir_fh ~name ~mode ~uid ~gid ->
              t.server.S.symlink ~dir:dir_fh ~name ~target ~mode ~uid ~gid))
  | Remove (o, name) ->
    with_named_dir t o name (fun i ->
        match t.server.S.lookup ~dir:(entry_fh t i) ~name with
        | Error _ -> err Enoent
        | Ok (cfh, _) -> (
          match Hashtbl.find_opt t.fh2oid cfh with
          | None -> bug "remove: handle for %s not in rep" name
          | Some ci ->
            if t.entries.(ci).ftype = Dir then err Eisdir
            else begin
              modify ci;
              modify i;
              match t.server.S.remove ~dir:(entry_fh t i) ~name with
              | Error _ -> err Eio
              | Ok () ->
                unregister t ci;
                dir_times t i ~ts;
                Proto.R_ok
            end))
  | Rmdir (o, name) ->
    with_named_dir t o name (fun i ->
        match t.server.S.lookup ~dir:(entry_fh t i) ~name with
        | Error _ -> err Enoent
        | Ok (cfh, _) -> (
          match Hashtbl.find_opt t.fh2oid cfh with
          | None -> bug "rmdir: handle for %s not in rep" name
          | Some ci ->
            if t.entries.(ci).ftype <> Dir then err Enotdir
            else if abstract_dir_entries t ci <> [] then err Enotempty
            else begin
              modify ci;
              modify i;
              match t.server.S.rmdir ~dir:(entry_fh t i) ~name with
              | Error _ -> err Eio
              | Ok () ->
                unregister t ci;
                dir_times t i ~ts;
                Proto.R_ok
            end))
  | Rename (so, sn, dd, dn) ->
    with_named_dir t so sn (fun si ->
        with_named_dir t dd dn (fun di ->
            match t.server.S.lookup ~dir:(entry_fh t si) ~name:sn with
            | Error _ -> err Enoent
            | Ok (cfh, _) -> (
              match Hashtbl.find_opt t.fh2oid cfh with
              | None -> bug "rename: handle for %s not in rep" sn
              | Some ci ->
                if si = di && String.equal sn dn then Proto.R_ok
                else begin
                  let child_is_dir = t.entries.(ci).ftype = Dir in
                  if child_is_dir && under t ~root:ci di then err Einval
                  else begin
                    (* Validate the destination against the abstract rules
                       before letting the implementation overwrite it. *)
                    let victim =
                      match t.server.S.lookup ~dir:(entry_fh t di) ~name:dn with
                      | Error _ -> Ok None
                      | Ok (vfh, _) -> (
                        match Hashtbl.find_opt t.fh2oid vfh with
                        | None -> Ok None
                        | Some vi -> (
                          match (child_is_dir, t.entries.(vi).ftype) with
                          | true, Dir ->
                            if abstract_dir_entries t vi = [] then Ok (Some vi)
                            else Error Enotempty
                          | true, (Reg | Lnk) -> Error Enotdir
                          | false, Dir -> Error Eisdir
                          | false, (Reg | Lnk) -> Ok (Some vi)))
                    in
                    match victim with
                    | Error e -> err e
                    | Ok victim -> (
                      (match victim with Some vi -> modify vi | None -> ());
                      modify si;
                      modify di;
                      match
                        t.server.S.rename ~sdir:(entry_fh t si) ~sname:sn
                          ~ddir:(entry_fh t di) ~dname:dn
                      with
                      | Error _ -> err Eio
                      | Ok () ->
                        (match victim with
                        | Some vi -> unregister t vi
                        | None -> ());
                        let ce = t.entries.(ci) in
                        ce.parent <- di;
                        ce.name <- dn;
                        refresh_subtree t ci;
                        dir_times t si ~ts;
                        dir_times t di ~ts;
                        Proto.R_ok)
                  end
                end)))
  | Readdir o -> with_dir t o (fun i -> Proto.R_readdir (abstract_dir_entries t i))
  | Statfs ->
    let free =
      Array.fold_left (fun acc (e : rentry) -> if e.fh = None then acc + 1 else acc) 0 t.entries
    in
    Proto.R_statfs { total_slots = Array.length t.entries; free_slots = free }

(* --- the abstraction function (get_obj) -------------------------------------- *)

let get_obj t i =
  let e = t.entries.(i) in
  match e.fh with
  | None -> Spec.encode_entry { Spec.gen = e.gen; obj = Spec.Null }
  | Some fh ->
    let meta =
      let ca = concrete_attr t i in
      { Spec.mode = ca.S.a_mode; uid = ca.S.a_uid; gid = ca.S.a_gid; mtime = e.mtime; ctime = e.ctime }
    in
    let obj =
      match e.ftype with
      | Reg -> (
        let ca = concrete_attr t i in
        match t.server.S.read ~fh ~off:0 ~count:ca.S.a_size with
        | Ok data -> Spec.File { meta; data }
        | Error _ -> bug "get_obj: read of %d failed" i)
      | Dir -> Spec.Directory { meta; entries = abstract_dir_entries t i }
      | Lnk -> (
        match t.server.S.readlink ~fh with
        | Ok target -> Spec.Symlink { meta; target }
        | Error _ -> bug "get_obj: readlink of %d failed" i)
    in
    Spec.encode_entry { Spec.gen = e.gen; obj }

(* --- the inverse abstraction function (put_objs) ----------------------------- *)

let move_to_staging t i =
  let e = t.entries.(i) in
  let tmp = fresh_staging_name t in
  (match
     t.server.S.rename ~sdir:(location_fh t e) ~sname:e.name ~ddir:t.staging_fh ~dname:tmp
   with
  | Ok () -> ()
  | Error _ -> bug "staging move of %d failed" i);
  e.parent <- staging_parent;
  e.name <- tmp;
  refresh_subtree t i

let put_objs t objs =
  let batch = List.map (fun (i, data) -> (i, Spec.decode_entry data)) objs in
  let desired_of = Hashtbl.create 64 in
  List.iter (fun (i, en) -> Hashtbl.replace desired_of i en) batch;
  let meta_of (en : Spec.entry) =
    match en.obj with
    | Spec.File { meta; _ } | Spec.Directory { meta; _ } | Spec.Symlink { meta; _ } -> meta
    | Spec.Null -> bug "meta of null object"
  in
  (* Phase 1: discard pass — objects whose slot is reassigned or freed are
     evacuated to the staging directory (case 2 / deletion of Section 3.3).
     Slots that are (or stay) free still adopt the batch's generation
     number: generations are part of the abstract state and must match the
     certified checkpoint exactly, or later allocations diverge. *)
  let discarded = ref [] in
  List.iter
    (fun (i, (en : Spec.entry)) ->
      let e = t.entries.(i) in
      if e.fh <> None && (en.obj = Spec.Null || en.gen <> e.gen) then begin
        if i = 0 then bug "root cannot be discarded";
        move_to_staging t i;
        discarded := i :: !discarded
      end;
      if en.obj = Spec.Null then e.gen <- en.gen)
    batch;
  (* Phase 2: evacuate stale entries of every directory in the batch, so
     link-in cannot hit name collisions.  Children of discarded directories
     always evacuate. *)
  List.iter
    (fun (i, (en : Spec.entry)) ->
      match en.obj with
      | Spec.Directory { entries = desired; _ }
        when t.entries.(i).fh <> None && t.entries.(i).gen = en.gen ->
        (* Only directories kept in place reconcile here; discarded ones are
           emptied below.  A current child stays iff the desired listing
           binds the same slot to the same name. *)
        let current = abstract_dir_entries t i in
        List.iter
          (fun (name, o) ->
            let keep =
              match List.assoc_opt name desired with
              | Some want -> want.index = o.index
              | None -> false
            in
            if not keep then move_to_staging t o.index)
          current
      | Spec.Directory _ | Spec.File _ | Spec.Symlink _ | Spec.Null -> ())
    batch;
  (* Children of discarded directories were evacuated when the directory
     itself still held them?  No: the directory moved wholesale to staging
     with its children inside.  Evacuate them now so the directory can be
     deleted. *)
  List.iter
    (fun i ->
      if t.entries.(i).ftype = Dir then begin
        match t.server.S.readdir ~dir:(entry_fh t i) with
        | Error _ -> bug "readdir of discarded dir %d failed" i
        | Ok listing ->
          List.iter
            (fun (name, cfh) ->
              ignore name;
              match Hashtbl.find_opt t.fh2oid cfh with
              | Some ci -> move_to_staging t ci
              | None -> bug "discarded dir child not in rep")
            listing
      end)
    !discarded;
  (* Phase 3: delete discarded objects (now empty / childless). *)
  List.iter
    (fun i ->
      let e = t.entries.(i) in
      let del =
        match e.ftype with
        | Dir -> t.server.S.rmdir ~dir:t.staging_fh ~name:e.name
        | Reg | Lnk -> t.server.S.remove ~dir:t.staging_fh ~name:e.name
      in
      (match del with Ok () -> () | Error _ -> bug "deletion of discarded %d failed" i);
      unregister t i)
    !discarded;
  (* Phase 4: create brand-new objects in staging (case 3). *)
  List.iter
    (fun (i, (en : Spec.entry)) ->
      if en.obj <> Spec.Null && t.entries.(i).fh = None then begin
        let m = meta_of en in
        let tmp = fresh_staging_name t in
        let created =
          match en.obj with
          | Spec.File { data; _ } -> (
            match
              t.server.S.create ~dir:t.staging_fh ~name:tmp ~mode:m.Spec.mode ~uid:m.Spec.uid
                ~gid:m.Spec.gid
            with
            | Error _ -> bug "create of %d failed" i
            | Ok (fh, _) ->
              if not (String.equal data "") then begin
                match t.server.S.write ~fh ~off:0 ~data with
                | Ok () -> ()
                | Error _ -> bug "write of %d failed" i
              end;
              (fh, Reg))
          | Spec.Directory _ -> (
            match
              t.server.S.mkdir ~dir:t.staging_fh ~name:tmp ~mode:m.Spec.mode ~uid:m.Spec.uid
                ~gid:m.Spec.gid
            with
            | Error _ -> bug "mkdir of %d failed" i
            | Ok (fh, _) -> (fh, Dir))
          | Spec.Symlink { target; _ } -> (
            match
              t.server.S.symlink ~dir:t.staging_fh ~name:tmp ~target ~mode:m.Spec.mode
                ~uid:m.Spec.uid ~gid:m.Spec.gid
            with
            | Error _ -> bug "symlink of %d failed" i
            | Ok (fh, _) -> (fh, Lnk))
          | Spec.Null -> assert false
        in
        let fh, ftype = created in
        register t i ~gen:en.gen ~fh ~ftype ~parent:staging_parent ~name:tmp
          ~mtime:m.Spec.mtime ~ctime:m.Spec.ctime
      end)
    batch;
  (* Phase 5: update objects kept in place (case 1). *)
  List.iter
    (fun (i, (en : Spec.entry)) ->
      match en.obj with
      | Spec.Null -> ()
      | Spec.File { meta; data } ->
        (* Freshly created files already hold their data; rewriting is
           idempotent and keeps this pass simple. *)
        let e = t.entries.(i) in
        begin
          let fh = entry_fh t i in
          (match
             t.server.S.setattr ~fh
               {
                 S.c_mode = Some meta.Spec.mode;
                 c_uid = Some meta.Spec.uid;
                 c_gid = Some meta.Spec.gid;
                 c_size = Some (String.length data);
               }
           with
          | Ok _ -> ()
          | Error _ -> bug "setattr of %d failed" i);
          (if not (String.equal data "") then
             match t.server.S.write ~fh ~off:0 ~data with
             | Ok () -> ()
             | Error _ -> bug "write of %d failed" i);
          e.mtime <- meta.Spec.mtime;
          e.ctime <- meta.Spec.ctime;
          e.gen <- en.gen
        end
      | Spec.Directory { meta; _ } ->
        let fh = entry_fh t i in
        (match
           t.server.S.setattr ~fh
             {
               S.c_mode = Some meta.Spec.mode;
               c_uid = Some meta.Spec.uid;
               c_gid = Some meta.Spec.gid;
               c_size = None;
             }
         with
        | Ok _ -> ()
        | Error _ -> bug "setattr of dir %d failed" i);
        let e = t.entries.(i) in
        e.mtime <- meta.Spec.mtime;
        e.ctime <- meta.Spec.ctime;
        e.gen <- en.gen
      | Spec.Symlink { meta; target } ->
        (* Symlink targets are immutable concretely: recreate if changed. *)
        let fh = entry_fh t i in
        let current_target =
          match t.server.S.readlink ~fh with Ok x -> x | Error _ -> ""
        in
        let e = t.entries.(i) in
        if not (String.equal current_target target) then begin
          move_to_staging t i;
          let old = t.entries.(i) in
          (match t.server.S.remove ~dir:t.staging_fh ~name:old.name with
          | Ok () -> ()
          | Error _ -> bug "symlink replace of %d failed" i);
          unregister t i;
          let tmp = fresh_staging_name t in
          match
            t.server.S.symlink ~dir:t.staging_fh ~name:tmp ~target ~mode:meta.Spec.mode
              ~uid:meta.Spec.uid ~gid:meta.Spec.gid
          with
          | Error _ -> bug "symlink recreate of %d failed" i
          | Ok (fh', _) ->
            register t i ~gen:en.gen ~fh:fh' ~ftype:Lnk ~parent:staging_parent ~name:tmp
              ~mtime:meta.Spec.mtime ~ctime:meta.Spec.ctime
        end
        else begin
          (match
             t.server.S.setattr ~fh
               {
                 S.c_mode = Some meta.Spec.mode;
                 c_uid = Some meta.Spec.uid;
                 c_gid = Some meta.Spec.gid;
                 c_size = None;
               }
           with
          | Ok _ -> ()
          | Error _ -> bug "setattr of symlink %d failed" i);
          e.mtime <- meta.Spec.mtime;
          e.ctime <- meta.Spec.ctime;
          e.gen <- en.gen
        end)
    batch;
  (* Phase 6: link every directory's children into place. *)
  List.iter
    (fun (i, (en : Spec.entry)) ->
      match en.obj with
      | Spec.Directory { entries = desired; _ } ->
        List.iter
          (fun (name, o) ->
            let ce = t.entries.(o.index) in
            if ce.fh = None then bug "link-in: missing child %d for %s" o.index name;
            if not (ce.parent = i && String.equal ce.name name) then begin
              (match
                 t.server.S.rename ~sdir:(location_fh t ce) ~sname:ce.name
                   ~ddir:(entry_fh t i) ~dname:name
               with
              | Ok () -> ()
              | Error _ -> bug "link-in of %s into %d failed" name i);
              ce.parent <- i;
              ce.name <- name;
              refresh_subtree t o.index
            end)
          desired
      | Spec.File _ | Spec.Symlink _ | Spec.Null -> ())
    batch

(* --- restart (proactive recovery, Section 3.4) -------------------------------- *)

let restart t =
  t.server.S.restart ();
  Hashtbl.reset t.fh2oid;
  Array.iter (fun (e : rentry) -> e.fh <- None) t.entries;
  let root_fh = t.server.S.root () in
  t.entries.(0).fh <- Some root_fh;
  t.entries.(0).parent <- 0;
  t.entries.(0).name <- "";
  Hashtbl.replace t.fh2oid root_fh 0;
  (* Depth-first traversal from the root, recovering each object's oid from
     the persistent <fsid,fileid> map. *)
  let rec walk dir_idx dir_fh =
    match t.server.S.readdir ~dir:dir_fh with
    | Error _ -> bug "restart: readdir failed"
    | Ok listing ->
      List.iter
        (fun (name, cfh) ->
          if String.length name > 0 && name.[0] = '#' then t.staging_fh <- cfh
          else
            match t.server.S.identity ~fh:cfh with
            | Error _ -> bug "restart: identity of %s failed" name
            | Ok id -> (
              match Hashtbl.find_opt t.id2oid id with
              | None -> bug "restart: no oid for %s" name
              | Some i ->
                let e = t.entries.(i) in
                e.fh <- Some cfh;
                e.parent <- dir_idx;
                e.name <- name;
                Hashtbl.replace t.fh2oid cfh i;
                if e.ftype = Dir then walk i cfh))
        listing
  in
  walk 0 root_fh

(* --- construction ------------------------------------------------------------- *)

let wrapper_source_files = [ "lib/wrapper/conformance.ml"; "lib/wrapper/conformance.mli" ]

let make ?(max_skew_us = 5_000_000L) ~server ~n_objects () =
  let t =
    {
      server;
      entries =
        Array.init n_objects (fun _ ->
            {
              gen = 0;
              fh = None;
              ftype = Reg;
              mtime = 0L;
              ctime = 0L;
              parent = 0;
              name = "";
            });
      fh2oid = Hashtbl.create 256;
      id2oid = Hashtbl.create 256;
      staging_fh = "";
      staging_seq = 0;
    }
  in
  let root_fh = server.S.root () in
  let e0 = t.entries.(0) in
  e0.ftype <- Dir;
  e0.fh <- Some root_fh;
  Hashtbl.replace t.fh2oid root_fh 0;
  (match server.S.identity ~fh:root_fh with
  | Ok id -> Hashtbl.replace t.id2oid id 0
  | Error _ -> bug "root identity failed");
  (match server.S.mkdir ~dir:root_fh ~name:staging_name ~mode:0o700 ~uid:0 ~gid:0 with
  | Ok (fh, _) -> t.staging_fh <- fh
  | Error _ -> bug "staging mkdir failed");
  let execute ~client:_ ~operation ~nondet ~read_only:_ ~modify =
    let ts = Service.clock_of_nondet nondet in
    let reply =
      match Proto.decode_call operation with
      | call -> execute_call t ~modify ~ts call
      | exception Base_codec.Xdr.Decode_error _ -> err Einval
    in
    Proto.encode_reply reply
  in
  {
    Service.name = server.S.name;
    n_objects;
    execute;
    get_obj = (fun i -> get_obj t i);
    put_objs = (fun objs -> put_objs t objs);
    restart = (fun () -> restart t);
    propose_nondet = (fun ~clock_us ~operation:_ -> Service.nondet_of_clock clock_us);
    check_nondet =
      (fun ~clock_us ~operation:_ ~nondet ->
        Service.default_check_nondet ~max_skew_us ~clock_us ~nondet);
    oids_of_op =
      (* Routing must agree across clients and replicas, so the footprint is
         a pure function of the encoded call; malformed operations carry no
         routing information and fall to shard 0, where [execute] turns
         them into EINVAL under that shard's order. *)
      (fun ~operation ->
        match Proto.decode_call operation with
        | call -> Proto.footprint call
        | exception Base_codec.Xdr.Decode_error _ -> []);
  }
