(** Pairwise MAC authenticators, as used by the BFT library.

    Every pair of principals (replicas and clients) shares a symmetric session
    key.  A message multicast to all replicas carries an {e authenticator}: a
    vector with one MAC per receiver.  A Byzantine principal can send
    arbitrary messages but cannot forge a MAC for a key it does not hold —
    this module computes and checks real HMACs, so the simulator enforces
    that property by construction rather than by fiat.  (Pairwise keys are
    derived from a group master secret the simulator holds in trust; a
    keychain's API only ever derives keys for pairs the holder belongs to,
    which preserves the pairwise-secrecy property at the interface.)

    Proactive recovery refreshes a replica's keys ({!refresh_keys}), which
    invalidates MACs an attacker might have stolen before the recovery. *)

type keychain
(** The key material held by one principal. *)

val create : seed:int64 -> n_principals:int -> keychain array
(** [create ~seed ~n_principals] builds a consistent set of keychains: the
    session key between principals [i] and [j] is shared by keychains [i] and
    [j] and known to nobody else.  Keys are derived lazily from a group
    master secret, so creation is O(n_principals) — large simulated client
    populations are cheap to register. *)

val epoch : keychain -> int -> int
(** Current key epoch between the holder and the given peer. *)

val refresh_keys : keychain array -> int -> unit
(** [refresh_keys chains i] gives principal [i] fresh session keys with every
    peer (simulating the key exchange performed after a reboot); the peers'
    keychains are updated accordingly and the epoch bumps. *)

val mac_for : keychain -> receiver:int -> string -> string
(** MAC of the message for one receiver, under the sender/receiver key. *)

val authenticator : keychain -> n:int -> string -> string array
(** MAC vector for receivers [0 .. n-1]. *)

val check : keychain -> sender:int -> string -> mac:string -> bool
(** Verify a received MAC under the receiver's key with [sender]. *)

(** {1 Batch (digest) authenticators}

    The hot path seals a broadcast by hashing the body once and MACing the
    32-byte digest for every receiver, over precomputed per-session-key
    HMAC midstates.  [mac_digest_for chain ~receiver d] equals
    [mac_for chain ~receiver d] for every receiver — the equivalence the
    batch-MAC differential suite pins — the batching is in what gets
    MACed (the shared digest) and in the precomputation, not in the tag
    values. *)

val mac_digest_for : keychain -> receiver:int -> string -> string

val digest_authenticator : keychain -> n:int -> string -> string array
(** MAC vector over a digest for receivers [0 .. n-1]. *)

val check_digest : keychain -> sender:int -> string -> mac:string -> bool
