(** HMAC-SHA256 (RFC 2104). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key]. *)

val mac_list : key:string -> string list -> string
(** Tag over the concatenation of the inputs. *)

val verify : key:string -> string -> tag:string -> bool
(** Constant-shape comparison of the expected tag with [tag]. *)

type prepared
(** A key with its ipad/opad blocks pre-compressed: one SHA-256 block per
    direction paid at {!prepare} instead of on every MAC. *)

val prepare : key:string -> prepared

val mac_prepared : prepared -> string -> string
(** Same tag as [mac ~key msg] for the key given to {!prepare} — the batch
    authenticator equivalence suite pins this. *)

val verify_prepared : prepared -> string -> tag:string -> bool
(** Constant-shape comparison, like {!verify}. *)
