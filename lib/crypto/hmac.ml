let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  if String.length key < block_size then
    key ^ String.make (block_size - String.length key) '\000'
  else key

let xor_pad key pad =
  String.init block_size (fun i -> Char.chr (Char.code key.[i] lxor Char.code pad))

let mac_list ~key msgs =
  let key = normalize_key key in
  let ipad = xor_pad key '\x36' in
  let opad = xor_pad key '\x5c' in
  let inner = Sha256.digest_list (ipad :: msgs) in
  Sha256.digest_list [ opad; inner ]

let mac ~key msg = mac_list ~key [ msg ]

(* Precomputed keys: the ipad/opad blocks depend only on the key, so their
   compression (one SHA-256 block each) can be paid once per session key.
   [mac_prepared] then costs two midstate clones plus hashing the message
   and the 32-byte inner digest — for the short digests the batch
   authenticators MAC, that is 2 compressions instead of 4. *)
type prepared = { p_inner : Sha256.ctx; p_outer : Sha256.ctx }

let prepare ~key =
  let key = normalize_key key in
  let inner = Sha256.init () in
  Sha256.update inner (xor_pad key '\x36');
  let outer = Sha256.init () in
  Sha256.update outer (xor_pad key '\x5c');
  { p_inner = inner; p_outer = outer }

let mac_prepared p msg =
  let ictx = Sha256.copy p.p_inner in
  Sha256.update ictx msg;
  let inner = Sha256.finalize ictx in
  let octx = Sha256.copy p.p_outer in
  Sha256.update octx inner;
  Sha256.finalize octx

let equal_ct expected tag =
  if String.length expected <> String.length tag then false
  else begin
    (* Fold over all bytes rather than short-circuiting. *)
    let diff = ref 0 in
    String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code tag.[i])) expected;
    !diff = 0
  end

let verify_prepared p msg ~tag = equal_ct (mac_prepared p msg) tag

let verify ~key msg ~tag = equal_ct (mac ~key msg) tag
