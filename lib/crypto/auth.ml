(* Pairwise session keys, derived lazily.

   The original implementation materialised the full P x P key matrix at
   [create], which is O(P^2) time and memory — prohibitive once the client
   population reaches the thousands the open-loop load harness simulates.
   Keys are instead derived on demand from a group master secret:

     key(i, j) = HMAC(master, lo || hi || epoch(lo) || epoch(hi))

   with lo = min i j, hi = max i j, so both endpoints derive the same key
   without ever exchanging it.  Epochs live in one array shared by every
   keychain (the simulator plays the trusted key-exchange channel);
   refreshing principal [i] bumps [epochs.(i)], which atomically invalidates
   every key [i] shares — exactly the post-reboot key change proactive
   recovery relies on.  Derived keys are memoised per chain, keyed by the
   epoch pair they were derived under, so steady-state MAC cost is one HMAC
   as before and memory is proportional to the pairs that actually
   communicate, not to P^2. *)

type cached = {
  ck_epoch_lo : int;
  ck_epoch_hi : int;
  ck_key : string;
  ck_prep : Hmac.prepared;  (* key pad blocks pre-compressed, see Hmac.prepare *)
}

type keychain = {
  id : int;
  master : string;  (* group secret; shared by all chains of one [create] *)
  epochs : int array;  (* per-principal refresh counters; shared *)
  cache : (int, cached) Hashtbl.t;  (* peer -> memoised session key *)
}

let create ~seed ~n_principals =
  let prng = Base_util.Prng.create seed in
  let master = Bytes.unsafe_to_string (Base_util.Prng.bytes prng 32) in
  let epochs = Array.make n_principals 0 in
  Array.init n_principals (fun id -> { id; master; epochs; cache = Hashtbl.create 8 })

let derive chain ~lo ~hi ~epoch_lo ~epoch_hi =
  Hmac.mac ~key:chain.master (Printf.sprintf "%d.%d.%d.%d" lo hi epoch_lo epoch_hi)

let session chain peer =
  let lo = min chain.id peer and hi = max chain.id peer in
  let epoch_lo = chain.epochs.(lo) and epoch_hi = chain.epochs.(hi) in
  match Hashtbl.find_opt chain.cache peer with
  | Some c when c.ck_epoch_lo = epoch_lo && c.ck_epoch_hi = epoch_hi -> c
  | Some _ | None ->
    let key = derive chain ~lo ~hi ~epoch_lo ~epoch_hi in
    let c =
      { ck_epoch_lo = epoch_lo; ck_epoch_hi = epoch_hi; ck_key = key; ck_prep = Hmac.prepare ~key }
    in
    Hashtbl.replace chain.cache peer c;
    c

let session_key chain peer = (session chain peer).ck_key

let epoch chain peer = chain.epochs.(chain.id) + chain.epochs.(peer)

let refresh_keys chains i =
  (* All chains share the epoch array; bumping one slot re-keys principal
     [i] with every peer (stale cache entries fail their epoch check). *)
  if Array.length chains > 0 then begin
    let any = chains.(0) in
    any.epochs.(i) <- any.epochs.(i) + 1
  end

let mac_for chain ~receiver msg = Hmac.mac ~key:(session_key chain receiver) msg

let authenticator chain ~n msg = Array.init n (fun receiver -> mac_for chain ~receiver msg)

let check chain ~sender msg ~mac = Hmac.verify ~key:(session_key chain sender) msg ~tag:mac

(* Castro-Liskov batch authenticators: the broadcast body is hashed once and
   each receiver's MAC covers the 32-byte digest, so sealing for 3f+1
   receivers costs one body-sized hash plus n small HMACs — and those small
   HMACs run over precomputed key midstates (2 compressions each) instead of
   re-deriving the pad blocks per MAC. *)

let mac_digest_for chain ~receiver digest = Hmac.mac_prepared (session chain receiver).ck_prep digest

let digest_authenticator chain ~n digest =
  Array.init n (fun receiver -> mac_digest_for chain ~receiver digest)

let check_digest chain ~sender digest ~mac =
  Hmac.verify_prepared (session chain sender).ck_prep digest ~tag:mac
