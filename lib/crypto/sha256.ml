(* SHA-256 over 32-bit words represented as OCaml ints (63-bit), masked to 32
   bits after each operation.  The compression function follows FIPS 180-4
   section 6.2.2 directly. *)

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array; (* 8 state words *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int64; (* bytes processed *)
  w : int array; (* message schedule scratch *)
}

let mask = 0xffffffff

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let init () =
  {
    h =
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
        0x1f83d9ab; 0x5be0cd19;
      |];
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0L;
    w = Array.make 64 0;
  }

(* The inner loops run once per 64 input bytes on every digest and MAC in
   the system, so they use unsafe array/byte accesses; the single bounds
   check below is the only one per block.  Indices into [w]/[k] are loop
   constants in [0, 63], and the block slice is checked on entry. *)
let compress ctx block pos =
  Base_util.Invariant.require
    (pos >= 0 && pos + 64 <= Bytes.length block)
    "Sha256.compress: block out of bounds";
  let w = ctx.w in
  for t = 0 to 15 do
    let j = pos + (4 * t) in
    Array.unsafe_set w t
      ((Char.code (Bytes.unsafe_get block j) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (j + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (j + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (j + 3)))
  done;
  for t = 16 to 63 do
    let w15 = Array.unsafe_get w (t - 15) and w2 = Array.unsafe_get w (t - 2) in
    let s0 = rotr w15 7 lxor rotr w15 18 lxor (w15 lsr 3) in
    let s1 = rotr w2 17 lxor rotr w2 19 lxor (w2 lsr 10) in
    Array.unsafe_set w t
      ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1) land mask)
  done;
  let h = ctx.h in
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) land mask in
    let t1 =
      (!hh + s1 + ch + Array.unsafe_get k t + Array.unsafe_get w t) land mask
    in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask
  done;
  h.(0) <- (h.(0) + !a) land mask;
  h.(1) <- (h.(1) + !b) land mask;
  h.(2) <- (h.(2) + !c) land mask;
  h.(3) <- (h.(3) + !d) land mask;
  h.(4) <- (h.(4) + !e) land mask;
  h.(5) <- (h.(5) + !f) land mask;
  h.(6) <- (h.(6) + !g) land mask;
  h.(7) <- (h.(7) + !hh) land mask

let update_bytes ctx data ~pos ~len =
  ctx.total <- Int64.add ctx.total (Int64.of_int len);
  let pos = ref pos and remaining = ref len in
  (* Fill a partially filled block buffer first. *)
  if ctx.buf_len > 0 then begin
    let take = min !remaining (64 - ctx.buf_len) in
    Bytes.blit data !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= 64 do
    compress ctx data !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit data !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let update ctx s = update_bytes ctx (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

(* Midstate cloning: lets a fixed prefix (e.g. an HMAC key pad block) be
   compressed once and reused for every message hashed under it.  The
   scratch schedule [w] is per-use state, so the copy gets its own. *)
let copy ctx =
  {
    h = Array.copy ctx.h;
    buf = Bytes.copy ctx.buf;
    buf_len = ctx.buf_len;
    total = ctx.total;
    w = Array.make 64 0;
  }

let finalize ctx =
  let bit_len = Int64.mul ctx.total 8L in
  (* Padding: 0x80, zeros, 64-bit big-endian length. *)
  let pad_len =
    let rem = Int64.to_int (Int64.rem ctx.total 64L) in
    if rem < 56 then 56 - rem else 120 - rem
  in
  let pad = Bytes.make (pad_len + 8) '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad (pad_len + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical bit_len (8 * (7 - i))) 0xffL)))
  done;
  (* Bypass the total counter: padding is not message data. *)
  let saved = ctx.total in
  update_bytes ctx pad ~pos:0 ~len:(Bytes.length pad);
  ctx.total <- saved;
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    let v = ctx.h.(i) in
    Bytes.set out (4 * i) (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr (v land 0xff))
  done;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  finalize ctx

let digest_list ss =
  let ctx = init () in
  List.iter (update ctx) ss;
  finalize ctx

let hex s = Base_util.Hex.encode (digest s)
