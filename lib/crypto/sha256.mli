(** SHA-256 (FIPS 180-4), implemented from the specification.

    Used for message digests, Merkle partition trees and as the PRF inside
    {!Hmac}.  The implementation is pure OCaml and processes input
    incrementally, so large abstract objects can be hashed without copies. *)

type ctx

val init : unit -> ctx

val update : ctx -> string -> unit

val update_bytes : ctx -> bytes -> pos:int -> len:int -> unit

val copy : ctx -> ctx
(** Independent clone of the context's midstate.  Hashing a fixed prefix
    once and cloning per message is what makes precomputed HMAC keys one
    compression per direction instead of two. *)

val finalize : ctx -> string
(** 32-byte binary digest. The context must not be reused afterwards. *)

val digest : string -> string
(** One-shot hash: 32-byte binary digest of the input. *)

val digest_list : string list -> string
(** Hash of the concatenation of the inputs, without materialising it. *)

val hex : string -> string
(** [hex s] is the conventional lowercase hex rendering of [digest s]. *)
