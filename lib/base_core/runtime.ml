module Digest = Base_crypto.Digest_t
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time
module Faultplan = Base_sim.Faultplan
module Types = Base_bft.Types
module Message = Base_bft.Message
module Replica = Base_bft.Replica
module Client = Base_bft.Client
module Auth = Base_crypto.Auth

type msg =
  | Bft of Message.envelope
  | St of { from : int; shard : int; body : State_transfer.msg }
  | Raw of { from : int; shard : int; macs : string array; bytes : string }

exception Stalled of string

(* Broken internal wiring (a node record referenced before construction
   finishes).  Unreachable by design and never message-triggered; kept as a
   dedicated exception so Byzantine-facing paths stay free of [assert]. *)
exception Internal_error of string

type recovery_stats = {
  mutable recoveries : int;
  mutable last_objects_fetched : int;
  mutable last_bytes_fetched : int;
  mutable total_objects_fetched : int;
  mutable total_bytes_fetched : int;
}

(* One proactive-recovery episode: either reboot-in-place then differential
   fetch, or (migration) a standby promotion then a catch-up fetch.  The
   [-1L] sentinels mean "not reached yet" — an episode cut short (e.g. the
   run ended mid-reboot) keeps them; all duration math goes through the
   total [span] helper below, never raw field subtraction. *)
type recovery_timeline = {
  tl_rid : int;
  tl_migrated : bool;
  tl_start_us : int64;
  mutable tl_reboot_done_us : int64;  (* in-place episodes *)
  mutable tl_promote_done_us : int64;  (* migration episodes *)
  mutable tl_staleness_seqs : int;
      (* migration: certified checkpoint head minus the promoted standby's
         synced seqno at promotion time (-1 until promotion completes) *)
  mutable tl_staleness_us : int64;
      (* migration: promotion time minus the standby's last sync completion *)
  mutable tl_fetch_done_us : int64;
  mutable tl_objects : int;
  mutable tl_bytes : int;
}

(* [until - since] as a total duration: [None] whenever the earlier or the
   later milestone was never reached.  The sentinel encoding stays private
   to this module; everything downstream (report JSON, benches) consumes
   options. *)
let span ~since ~until =
  if Int64.compare since 0L >= 0 && Int64.compare until since >= 0 then
    Some (Int64.to_int (Int64.sub until since))
  else None

let timeline_window_us tl = span ~since:tl.tl_start_us ~until:tl.tl_fetch_done_us

let timeline_handoff_us tl =
  if tl.tl_migrated then span ~since:tl.tl_start_us ~until:tl.tl_promote_done_us
  else span ~since:tl.tl_start_us ~until:tl.tl_reboot_done_us

(* Shadow-sync state of one warm standby (the [standby] field of its node). *)
type standby_sync = {
  mutable ss_synced_seq : int;  (* -1 before the first completed shadow sync *)
  mutable ss_synced_at_us : int64;
  mutable ss_root : Digest.t;  (* abstract-state root at [ss_synced_seq] *)
  mutable ss_client_rows : (int * int64 * string) list;
  mutable ss_promotions : int;
}

type replica_node = {
  rid : int;
  shard : int;  (* the agreement instance this cell serves; 0 when unsharded *)
  replica : Replica.t;
  mutable repo : Objrepo.t;
  mutable wrapper : Service.wrapper;
      (* [repo]/[wrapper] are mutable because promotion swaps them between
         the slot node and the standby node: the standby machine's warm
         state takes over the slot identity, the demoted machine keeps the
         suspect state under the standby identity.  All service upcalls read
         them through the node record, so the swap takes effect atomically
         for certificate handling, execution and fetch serving alike. *)
  standby : standby_sync option;  (* [Some] iff this node is a warm standby *)
  mutable fetcher : State_transfer.t option;
  mutable st_retries : int;
  mutable st_progress : int;
  mutable st_stalled : int;
  mutable recovering : bool;
  recovery_stats : recovery_stats;
  mutable timeline : recovery_timeline option;
      (* the episode currently waiting for its reboot/fetch milestones *)
}

(* An active Byzantine-primary attack window: while [atk_until] is in the
   future, pre-prepares sent by [atk_node] are muted with probability
   [atk_mute_p] and the surviving ones delayed by [atk_delay_us]. *)
type pp_attack = {
  atk_node : int;
  atk_shard : int option;  (* [None] attacks the node's pre-prepares in every shard *)
  atk_mute_p : float;
  atk_delay_us : int;
  atk_until : int64;
}

(* --- cross-shard commit state ---------------------------------------------- *)

(* One participant shard of a cross-shard operation, as seen by one node.
   [xp_arrived] is the deterministic lock-acquisition event: the shard's
   agreement instance reached the lock request at its committed execution
   head and parked.  [xp_obliged] pairs the liveness obligation registered
   with {!Replica.add_external_pending} so it is cleared exactly once. *)
type xpart = {
  xp_shard : int;
  mutable xp_obliged : bool;
  mutable xp_arrived : bool;
}

(* Per-node record of one cross-shard operation, keyed by the client
   request's globally unique [(client, timestamp)] identity.  Entries are
   never removed: a missing entry is indistinguishable from a completed one,
   and late duplicate locks (view-change re-proposals) must keep resolving
   to "done" rather than re-opening the protocol. *)
type xop = {
  x_client : int;
  x_ts : int64;
  x_coord : int;  (* coordinator shard: the smallest in the footprint *)
  x_parts : xpart list;  (* ascending shard order *)
  mutable x_lock_ts : int64;  (* agreed lock timestamp; [-1L] until derived *)
  mutable x_done : bool;  (* the joint operation executed on this node *)
}

(* Cross-shard bookkeeping of one physical node (shared by its per-shard
   replica cells).  [xn_lock_mark] derives duplicate-free lock timestamps
   when one committed batch carries several cross-shard operations: queries
   at head sequence [seq] hand out [seq * (batch_max + 1) + k] with [k]
   counting up in batch order, which is agreed — so every node derives the
   same timestamps without communicating. *)
type xnode = {
  xn_rid : int;
  xn_ops : (string, xop) Hashtbl.t;  (* key "client:timestamp" *)
  xn_lock_mark : (int * int) array;  (* per coordinator shard: (head seq, next k) *)
  mutable xn_kick_armed : bool;
}

type t = {
  engine : msg Engine.t;
  config : Types.config;
  chains : Auth.keychain array;
  replicas : replica_node array;
  cells : replica_node array array;
      (* [cells.(shard).(rid)]: every node hosts one replica cell per shard
         of the object space; [cells.(0) == replicas].  Unsharded systems
         have exactly one row. *)
  xnodes : xnode array;  (* per-node cross-shard commit state, indexed by rid *)
  standbys : replica_node array;  (* warm pool, node ids n .. n+s-1 *)
  clients : Client.t array;
  orchestrator : int;  (** pseudo-node owning recovery watchdog timers *)
  mutable recovery_period_us : int;
  mutable reboot_us : int;
  mutable promote_us : int;  (* simulated role-switch handshake time *)
  mutable migrate : bool;  (* watchdog recovers by promotion, not reboot *)
  mutable recovery_on : bool;
  mutable pending_promotions : (int * int) list;  (* (slot, standby) handshakes *)
  mutable roll_cursor : int;  (* next slot a faultplan [promote] fills *)
  metrics : Base_obs.Metrics.t;
  profile : Base_obs.Profile.t;
  trace : Base_obs.Trace.t;
  (* System-wide state-transfer totals, accumulated as per-fetch deltas so
     they survive the fetchers (which are discarded on completion). *)
  st_totals : State_transfer.stats;
  mutable timelines : recovery_timeline list;  (* newest first *)
  mutable plan : Faultplan.event array;  (* scheduled chaos, indexed by timer payload *)
  mutable pp_attack : pp_attack option;
}

let msg_size = function
  | Bft env -> env.Message.size
  | St { body; shard; _ } -> State_transfer.size body + Message.shard_overhead shard
  | Raw { bytes; macs; shard; _ } ->
    Array.fold_left (fun acc m -> acc + String.length m) (String.length bytes) macs
    + Message.shard_overhead shard

let msg_label = function
  | Bft env -> Message.label env.Message.body
  | St { body; _ } -> State_transfer.label body
  | Raw _ -> "RAW"

(* Allocation-free accounting key: the engine calls this once per send and
   per delivery, so it must not format anything. *)
let msg_kind = function
  | Bft env -> Message.kind_label env.Message.body
  | St { body; _ } -> State_transfer.kind_label body
  | Raw _ -> "RAW"

let engine t = t.engine

let config t = t.config

let replica t i = t.replicas.(i)

let replicas t = t.replicas

let standbys t = t.standbys

let standby t i = t.standbys.(i - t.config.Types.n)

let client t i = t.clients.(i)

let now t = Engine.now t.engine

let metrics t = t.metrics

let profile t = t.profile

let trace t = t.trace

let st_totals t = t.st_totals

let recovery_timelines t = List.rev t.timelines

let trace_event t name attrs = Base_obs.Trace.event t.trace ~ts:(now t) ~name attrs

(* --- state-transfer plumbing --------------------------------------------- *)

let st_send t ~src ~dst ~shard body =
  Engine.send t.engine ~src ~dst (St { from = src; shard; body })

(* Retry/stall-poll cadence for an active fetch.  Under load the group
   certifies a fresh checkpoint every few tens of milliseconds, so a fetch
   that loses the race with garbage collection must notice and re-target on
   that timescale: a coarse retry period quantizes every unlucky fetch —
   and hence the recovery window — up to multiples of itself. *)
let st_retry_period_us = 50_000

(* Verification failures tolerated on one fetch before we conclude the
   target itself is bad (stale or fabricated) and re-certify.  Rejections
   only accumulate for still-pending pieces, so a healthy fetch — where a
   correct reply races every faulty one — stays well below this. *)
let st_reject_threshold = 12

(* Finish the recovery episode attached to [node], if one is waiting for
   its fetch milestone. *)
let close_timeline t node =
  match node.timeline with
  | Some tl ->
    tl.tl_fetch_done_us <- Engine.now t.engine;
    tl.tl_objects <- node.recovery_stats.last_objects_fetched;
    tl.tl_bytes <- node.recovery_stats.last_bytes_fetched;
    node.timeline <- None;
    (* The episode's window of vulnerability, as a derived duration; raw
       timestamps never leave this module. *)
    (match timeline_window_us tl with
    | Some w ->
      Base_obs.Metrics.observe
        (Base_obs.Metrics.histogram t.metrics "base.recovery.window_us")
        (float_of_int w)
    | None -> ());
    trace_event t "recovery.fetch_done"
      [
        ("bytes", string_of_int tl.tl_bytes);
        ("objects", string_of_int tl.tl_objects);
        ("rid", string_of_int node.rid);
      ]
  | None -> ()

(* Abandon the current fetch and restart against the freshest certified
   checkpoint — the escape hatch for a garbage-collected target, a target
   digest we can no longer verify anything against, or an inverse
   abstraction that failed to reproduce the certified state.  A standby has
   no protocol status to repair and no urgency: dropping the fetcher is
   enough, the next shadow-sync tick re-targets on its own. *)
let retarget_fetch t node ~reason =
  node.fetcher <- None;
  trace_event t "st.retarget" [ ("reason", reason); ("rid", string_of_int node.rid) ];
  match node.standby with
  | Some _ -> ()
  | None ->
    Replica.abort_fetch node.replica;
    Replica.initiate_fetch node.replica

(* Common fetcher construction for both the recovery path and the standby
   shadow sync; only the completion continuation differs.  Sources are
   always the active replicas (standbys are never authoritative). *)
let launch_fetch t node ~target_seq ~target_digest ~on_complete =
  let params =
    {
      State_transfer.default_params with
      State_transfer.window = t.config.Types.st_window;
      chunk_bytes = t.config.Types.st_chunk_bytes;
    }
  in
  let sources = List.filter (fun r -> r <> node.rid) (Types.replica_ids t.config) in
  let fetcher =
    State_transfer.start ~params
      ~trace:(fun line ->
        trace_event t "st.debug" [ ("line", line); ("rid", string_of_int node.rid) ])
      ~repo:node.repo ~sources ~target_seq ~target_digest
      ~send:(fun ~dst body -> st_send t ~src:node.rid ~dst ~shard:node.shard body)
      ~on_complete ()
  in
  if State_transfer.finished fetcher then ()
  else begin
    node.fetcher <- Some fetcher;
    node.st_retries <- 0;
    node.st_progress <- 0;
    node.st_stalled <- 0;
    (* The timer payload names the shard, so the per-node dispatcher can
       route the retry tick to the right cell's fetcher. *)
    ignore
      (Engine.set_timer t.engine ~node:node.rid ~after:(Sim_time.of_us st_retry_period_us)
         ~tag:"st_retry" ~payload:node.shard)
  end

(* Forward declaration hack: replica creation needs an app record whose
   closures refer to the node being created. *)
let start_fetch t node ~seq ~digest =
  launch_fetch t node ~target_seq:seq ~target_digest:digest
    ~on_complete:(fun ~seq ~app_root ~client_rows ->
      node.fetcher <- None;
      (* Register the transferred checkpoint so this replica can serve it,
         then resume the protocol. *)
      let root = Objrepo.take_checkpoint node.repo ~seq ~client_rows in
      if not (Digest.equal root app_root) then begin
        (* The inverse abstraction produced a state whose digest does not
           match the certified checkpoint: the local implementation is
           faulty in a way reinstalation did not mask.  Degrade gracefully —
           count it and re-run the transfer — instead of crashing the
           replica (a crash here would turn one faulty node into a
           liveness hit for the group). *)
        Base_obs.Metrics.incr (Base_obs.Metrics.counter t.metrics "st.inverse_divergence");
        retarget_fetch t node ~reason:"inverse-divergence"
      end
      else begin
        close_timeline t node;
        Replica.fetch_complete node.replica ~seq ~app_digest:app_root ~client_rows
      end)

(* --- standby shadow sync ---------------------------------------------------- *)

(* Pool warmth is bounded by this cadence: a promoted standby's catch-up
   fetch covers at most one period's worth of writes (plus the sync in
   flight), so the period must sit well below the recovery period for the
   window of vulnerability to stay handshake-dominated. *)
let shadow_sync_period_us = 50_000

(* Chase the stable checkpoint watermark: fetch the freshest certified
   checkpoint into the standby's repo through the normal self-verifying
   pipeline, then register it so (a) the next sync is an incremental diff
   against it and (b) a promoted standby can serve it to other fetchers. *)
let start_shadow_sync t node ~seq ~digest =
  node.recovery_stats.last_objects_fetched <- 0;
  node.recovery_stats.last_bytes_fetched <- 0;
  launch_fetch t node ~target_seq:seq ~target_digest:digest
    ~on_complete:(fun ~seq ~app_root ~client_rows ->
      node.fetcher <- None;
      let root = Objrepo.take_checkpoint node.repo ~seq ~client_rows in
      if not (Digest.equal root app_root) then
        (* The standby's own implementation diverged under inverse
           abstraction; count it and let the next tick re-sync. *)
        Base_obs.Metrics.incr (Base_obs.Metrics.counter t.metrics "st.inverse_divergence")
      else begin
        Objrepo.discard_below node.repo seq;
        let client_digest = State_transfer.combined_digest ~app_root ~client_rows in
        Replica.standby_note_synced node.replica ~seq ~digest:client_digest;
        (match node.standby with
        | Some ss ->
          ss.ss_synced_seq <- seq;
          ss.ss_synced_at_us <- Engine.now t.engine;
          ss.ss_root <- app_root;
          ss.ss_client_rows <- client_rows
        | None -> ());
        Base_obs.Metrics.incr ~by:node.recovery_stats.last_bytes_fetched
          (Base_obs.Metrics.counter t.metrics "base.standby.shadow_bytes");
        trace_event t "standby.synced"
          [
            ("bytes", string_of_int node.recovery_stats.last_bytes_fetched);
            ("rid", string_of_int node.rid);
            ("seq", string_of_int seq);
          ]
      end)

let arm_shadow_timer t node =
  ignore
    (Engine.set_timer t.engine ~node:node.rid
       ~after:(Sim_time.of_us shadow_sync_period_us) ~tag:"shadow_sync" ~payload:0)

let shadow_tick t node =
  (match node.fetcher with
  | Some _ -> ()  (* a sync is in flight; the st_retry chain drives it *)
  | None -> (
    match (Replica.fetch_target node.replica, node.standby) with
    | Some (seq, digest), Some ss when seq > ss.ss_synced_seq ->
      start_shadow_sync t node ~seq ~digest
    | (Some _ | None), _ -> ()));
  arm_shadow_timer t node

let handle_st t node ~from body =
  match body with
  | State_transfer.Fetch_head _ | State_transfer.Fetch_meta _ | State_transfer.Fetch_obj _ -> (
    match State_transfer.serve node.repo body with
    | Some reply -> st_send t ~src:node.rid ~dst:from ~shard:node.shard reply
    | None -> ())
  | State_transfer.Head_reply _ | State_transfer.Meta_reply _ | State_transfer.Obj_reply _ -> (
    match node.fetcher with
    | Some fetcher ->
      let st = State_transfer.stats fetcher in
      let bytes_before = st.State_transfer.bytes_fetched in
      let objs_before = st.State_transfer.objects_fetched in
      let meta_before = st.State_transfer.meta_fetched in
      let chunks_before = st.State_transfer.chunks_fetched in
      let cache_before = st.State_transfer.cache_hits in
      let quar_before = st.State_transfer.quarantines in
      let heads_rej_before = st.State_transfer.heads_rejected in
      let meta_rej_before = st.State_transfer.meta_rejected in
      let objs_rej_before = st.State_transfer.objects_rejected in
      let source_entry =
        Array.fold_left
          (fun acc s -> if s.State_transfer.src_id = from then Some s else acc)
          None
          (State_transfer.scoreboard fetcher)
      in
      let src_bytes_before =
        match source_entry with Some s -> s.State_transfer.bytes | None -> 0
      in
      State_transfer.handle_reply fetcher ~from body;
      let bytes_delta = st.State_transfer.bytes_fetched - bytes_before in
      let objs_delta = st.State_transfer.objects_fetched - objs_before in
      node.recovery_stats.total_bytes_fetched <-
        node.recovery_stats.total_bytes_fetched + bytes_delta;
      node.recovery_stats.last_bytes_fetched <-
        node.recovery_stats.last_bytes_fetched + bytes_delta;
      node.recovery_stats.total_objects_fetched <-
        node.recovery_stats.total_objects_fetched + objs_delta;
      node.recovery_stats.last_objects_fetched <-
        node.recovery_stats.last_objects_fetched + objs_delta;
      let tot = t.st_totals in
      tot.State_transfer.bytes_fetched <- tot.State_transfer.bytes_fetched + bytes_delta;
      tot.State_transfer.objects_fetched <- tot.State_transfer.objects_fetched + objs_delta;
      tot.State_transfer.meta_fetched <-
        tot.State_transfer.meta_fetched + (st.State_transfer.meta_fetched - meta_before);
      tot.State_transfer.chunks_fetched <-
        tot.State_transfer.chunks_fetched + (st.State_transfer.chunks_fetched - chunks_before);
      tot.State_transfer.cache_hits <-
        tot.State_transfer.cache_hits + (st.State_transfer.cache_hits - cache_before);
      tot.State_transfer.quarantines <-
        tot.State_transfer.quarantines + (st.State_transfer.quarantines - quar_before);
      tot.State_transfer.heads_rejected <-
        tot.State_transfer.heads_rejected + (st.State_transfer.heads_rejected - heads_rej_before);
      tot.State_transfer.meta_rejected <-
        tot.State_transfer.meta_rejected + (st.State_transfer.meta_rejected - meta_rej_before);
      tot.State_transfer.objects_rejected <-
        tot.State_transfer.objects_rejected
        + (st.State_transfer.objects_rejected - objs_rej_before);
      Base_obs.Metrics.set_max
        (Base_obs.Metrics.gauge t.metrics "base.st.inflight")
        (float_of_int (State_transfer.inflight fetcher));
      let cache_delta = st.State_transfer.cache_hits - cache_before in
      if cache_delta > 0 then
        Base_obs.Metrics.incr ~by:cache_delta
          (Base_obs.Metrics.counter t.metrics "base.st.cache_hits");
      let quar_delta = st.State_transfer.quarantines - quar_before in
      if quar_delta > 0 then
        Base_obs.Metrics.incr ~by:quar_delta
          (Base_obs.Metrics.counter t.metrics "base.st.source_quarantined");
      (match source_entry with
      | Some s when s.State_transfer.bytes > src_bytes_before ->
        Base_obs.Metrics.incr
          ~by:(s.State_transfer.bytes - src_bytes_before)
          (Base_obs.Metrics.counter t.metrics
             (Printf.sprintf "base.st.source_bytes.%d" from))
      | Some _ | None -> ());
      if State_transfer.rejected st > heads_rej_before + meta_rej_before + objs_rej_before
      then begin
        trace_event t "st.reject"
          [ ("from", string_of_int from); ("rid", string_of_int node.rid) ];
        if State_transfer.rejected st >= st_reject_threshold then
          retarget_fetch t node ~reason:"rejections"
      end
    | None -> ())

(* Factored out of the per-node event dispatcher so replica cells and
   standbys share it: one retry/stall-detection round of the cell's active
   fetch. *)
let st_retry_tick t node =
  match node.fetcher with
  | Some fetcher when not (State_transfer.finished fetcher) ->
    node.st_retries <- node.st_retries + 1;
    (* Progress detection: a fetch whose counters have not moved for several
       consecutive rounds is talking to replicas that no longer hold the
       target (garbage-collected under load) — re-target quickly rather than
       sitting out the full retry budget against a dead checkpoint. *)
    let st0 = State_transfer.stats fetcher in
    let progress =
      st0.State_transfer.meta_fetched + st0.State_transfer.objects_fetched
      + st0.State_transfer.chunks_fetched + st0.State_transfer.cache_hits
      + st0.State_transfer.bytes_fetched
    in
    if progress = node.st_progress then node.st_stalled <- node.st_stalled + 1
    else begin
      node.st_progress <- progress;
      node.st_stalled <- 0
    end;
    if node.st_retries > 8 then
      (* The target checkpoint was probably garbage-collected by the group
         while we fetched; restart against the freshest certified one. *)
      retarget_fetch t node ~reason:"timeout"
    else if node.st_stalled >= 3 then retarget_fetch t node ~reason:"stalled"
    else begin
      let st = State_transfer.stats fetcher in
      let quar_before = st.State_transfer.quarantines in
      State_transfer.retry fetcher;
      t.st_totals.State_transfer.retries <- t.st_totals.State_transfer.retries + 1;
      let quar_delta = st.State_transfer.quarantines - quar_before in
      if quar_delta > 0 then begin
        t.st_totals.State_transfer.quarantines <-
          t.st_totals.State_transfer.quarantines + quar_delta;
        Base_obs.Metrics.incr ~by:quar_delta
          (Base_obs.Metrics.counter t.metrics "base.st.source_quarantined")
      end;
      trace_event t "st.retry"
        [ ("attempt", string_of_int node.st_retries); ("rid", string_of_int node.rid) ];
      ignore
        (Engine.set_timer t.engine ~node:node.rid ~after:(Sim_time.of_us st_retry_period_us)
           ~tag:"st_retry" ~payload:node.shard)
    end
  | Some _ | None -> ()

(* --- cross-shard two-phase commit ------------------------------------------ *)

(* See doc/sharding.md.  Each shard is an independent agreement instance
   over a slice of the abstract object array; an operation whose declared
   footprint spans several shards is ordered by the lowest one (the
   coordinator) and blocked on lock requests the runtime injects into every
   other involved shard (the participants).  All events below are derived
   from committed sequence numbers, so every correct node drives the
   protocol through exactly the same states without extra communication. *)

(* An operation's [modify] touched an object outside the shards it is
   entitled to.  Raised before any mutation of the foreign object (wrappers
   call [modify] first), so aborting here is deterministic and leaves every
   shard's state consistent. *)
exception Xshard_footprint

(* The deterministic reply of an aborted out-of-footprint execution: every
   correct replica of the shard returns it, so agreement is unaffected; the
   client sees it as a service-level error. *)
let xabort_result = "#xshard-abort"

let xkey ~client ~ts = Printf.sprintf "%d:%Ld" client ts

(* Find-or-create: the first side to observe the operation on this node —
   coordinator gate or participant lock — materialises the record. *)
let xget xn ~client ~ts ~coord ~parts =
  let key = xkey ~client ~ts in
  match Hashtbl.find_opt xn.xn_ops key with
  | Some x -> x
  | None ->
    let x =
      {
        x_client = client;
        x_ts = ts;
        x_coord = coord;
        x_parts =
          List.map (fun s -> { xp_shard = s; xp_obliged = false; xp_arrived = false }) parts;
        x_lock_ts = -1L;
        x_done = false;
      }
    in
    Hashtbl.add xn.xn_ops key x;
    x

(* Lock requests ride the ordinary MACed request/pre-prepare path under a
   virtual client id ([Types.internal_client ~shard:coordinator_shard]); the
   operation string names the cross-shard operation they guard. *)
let lock_operation x =
  Printf.sprintf "xlock:%d:%d:%Ld:%s" x.x_coord x.x_client x.x_ts
    (String.concat "," (List.map (fun p -> string_of_int p.xp_shard) x.x_parts))

let parse_lock operation =
  match String.split_on_char ':' operation with
  | [ "xlock"; coord; client; ts; parts ] -> (
    match
      ( int_of_string_opt coord,
        int_of_string_opt client,
        Int64.of_string_opt ts,
        List.filter_map int_of_string_opt (String.split_on_char ',' parts) )
    with
    | Some coord, Some client, Some ts, (_ :: _ as parts) -> Some (coord, client, ts, parts)
    | _, _, _, _ -> None)
  | _ -> None

let assign_lock_ts t xn ~coord ~seq =
  let mark_seq, k = xn.xn_lock_mark.(coord) in
  let k = if mark_seq = seq then k else 0 in
  xn.xn_lock_mark.(coord) <- (seq, k + 1);
  Int64.of_int ((seq * (t.config.Types.batch_max + 1)) + k)

(* Re-submission heartbeat: a participant primary that crashed (or lied)
   before ordering a lock would otherwise stall the coordinator forever.
   The cadence matches the view-change timeout, so by the time the kick
   fires a wedged participant shard has rotated its primary.  Iteration is
   in sorted key order — never in hash order — to keep runs deterministic. *)
let arm_xkick t xn =
  if not xn.xn_kick_armed then begin
    xn.xn_kick_armed <- true;
    ignore
      (Engine.set_timer t.engine ~node:xn.xn_rid
         ~after:(Sim_time.of_us t.config.Types.viewchange_timeout_us) ~tag:"xkick" ~payload:0)
  end

let submit_lock t xn (x : xop) (p : xpart) =
  let cell = t.cells.(p.xp_shard).(xn.xn_rid) in
  Replica.submit_internal cell.replica
    {
      Message.client = Types.internal_client ~shard:x.x_coord;
      timestamp = x.x_lock_ts;
      operation = lock_operation x;
      read_only = false;
    }

let xshard_kick t xn =
  xn.xn_kick_armed <- false;
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) xn.xn_ops [] |> List.sort String.compare
  in
  let live = ref false in
  List.iter
    (fun key ->
      match Hashtbl.find_opt xn.xn_ops key with
      | Some x when (not x.x_done) && Int64.compare x.x_lock_ts 0L >= 0 ->
        live := true;
        List.iter (fun p -> if not p.xp_arrived then submit_lock t xn x p) x.x_parts
      | Some _ | None -> ())
    keys;
  if !live then arm_xkick t xn

(* The declared footprint of [operation], as the ascending list of shards it
   touches.  Pure protocol decode — every node's wrapper answers alike. *)
let footprint_shards t (w : Service.wrapper) ~operation =
  match w.Service.oids_of_op ~operation with
  | [] -> []
  | oids ->
    List.sort_uniq Int.compare (List.map (fun oid -> Types.shard_of_oid t.config oid) oids)

(* The execution gate of shard [shard]'s cell on node [xn.xn_rid] (the
   {!Replica.app.ready} hook; only installed when the space is sharded).

   Participant side (internal virtual clients): the first query on a lock
   request is the lock acquisition — the shard is parked at its committed
   head, so the acquisition point is the same sequence number on every
   replica.  The lock holds (gate closed) until the coordinator cell
   executes the joint operation.

   Coordinator side: a multi-shard client operation waits until every
   participant cell on this node has parked at its lock. *)
let xready t xn ~shard ~client ~timestamp ~operation =
  if Types.is_internal_client client then begin
    match parse_lock operation with
    | None -> true  (* malformed internal request: execute as a no-op *)
    | Some (coord, xclient, xts, parts) ->
      let x = xget xn ~client:xclient ~ts:xts ~coord ~parts in
      if Int64.compare x.x_lock_ts 0L < 0 then x.x_lock_ts <- timestamp;
      if x.x_done then true
      else begin
        (match List.find_opt (fun p -> p.xp_shard = shard) x.x_parts with
        | Some p when not p.xp_arrived ->
          p.xp_arrived <- true;
          if p.xp_obliged then begin
            p.xp_obliged <- false;
            Replica.clear_external_pending t.cells.(shard).(xn.xn_rid).replica
          end;
          (* The coordinator cell may be parked waiting for this arrival. *)
          if List.for_all (fun q -> q.xp_arrived) x.x_parts then
            Replica.resume_execution t.cells.(x.x_coord).(xn.xn_rid).replica
        | Some _ | None -> ());
        x.x_done
      end
  end
  else begin
    let node = t.cells.(shard).(xn.xn_rid) in
    match footprint_shards t node.wrapper ~operation with
    | [] | [ _ ] -> true
    | coord :: parts when coord = shard ->
      let x = xget xn ~client ~ts:timestamp ~coord ~parts in
      if x.x_done then true
      else begin
        if Int64.compare x.x_lock_ts 0L < 0 then begin
          (* First query: the committed head sequence is agreed, so the
             derived lock timestamp is identical on every node. *)
          let seq = Replica.last_executed node.replica + 1 in
          x.x_lock_ts <- assign_lock_ts t xn ~coord ~seq
        end;
        let waiting = List.filter (fun p -> not p.xp_arrived) x.x_parts in
        List.iter
          (fun p ->
            if not p.xp_obliged then begin
              p.xp_obliged <- true;
              (* Keep the participant shard's view-change timer armed while
                 the lock is outstanding: a mute participant primary must
                 not be able to park the coordinator forever. *)
              Replica.add_external_pending t.cells.(p.xp_shard).(xn.xn_rid).replica
            end;
            submit_lock t xn x p)
          waiting;
        (match waiting with
        | [] -> true
        | _ :: _ ->
          arm_xkick t xn;
          false)
      end
    | _ :: _ -> true  (* misrouted: execute; foreign modifies abort deterministically *)
  end

(* Route one [modify] upcall to the owning shard's repo (index-shifted into
   its slice).  [allowed] is the shard set the current execution holds: its
   own shard, plus — for a joint operation on the coordinator — every
   participant currently parked at its lock. *)
let xmodify t xn ~allowed i =
  let owner = Types.shard_of_oid t.config i in
  if not (List.exists (fun s -> s = owner) allowed) then raise Xshard_footprint;
  let cell = t.cells.(owner).(xn.xn_rid) in
  let lo, _ = Types.shard_range t.config ~n_objects:cell.wrapper.Service.n_objects owner in
  Objrepo.modify cell.repo (i - lo)

(* The {!Replica.app.execute} hook of a sharded cell.  Lock requests reach
   execution only once released, and mutate nothing.  A joint operation
   executes on the coordinator cell while every participant is parked, with
   [modify] routed per-object to the owning shard's repo — the mutation
   lands between two fixed points of each participant's execution sequence,
   so per-shard checkpoint digests stay identical across nodes — and then
   releases the participants. *)
let xexecute t xn ~shard ~client ~timestamp ~operation ~nondet ~read_only =
  if Types.is_internal_client client then ""
  else begin
    let node = t.cells.(shard).(xn.xn_rid) in
    let shards = footprint_shards t node.wrapper ~operation in
    let joint =
      match shards with
      | coord :: _ :: _ when coord = shard && not read_only -> true
      | _ :: _ | [] -> false
    in
    let allowed = if joint then shards else [ shard ] in
    let result =
      try
        node.wrapper.Service.execute ~client ~operation ~nondet ~read_only
          ~modify:(fun i -> xmodify t xn ~allowed i)
      with Xshard_footprint -> xabort_result
    in
    (if joint then
       match shards with
       | coord :: parts ->
         let x = xget xn ~client ~ts:timestamp ~coord ~parts in
         if not x.x_done then begin
           x.x_done <- true;
           (* Release: each participant's gate now answers true; kick their
              execution loops so the parked batches drain. *)
           List.iter
             (fun p -> Replica.resume_execution t.cells.(p.xp_shard).(xn.xn_rid).replica)
             x.x_parts
         end
       | [] -> ());
    result
  end

(* Index-shifted restriction of a node's wrapper to one shard's slice of
   the abstract object array: the per-shard {!Objrepo} digests, checkpoints
   and serves exactly the objects its agreement instance is responsible
   for, while the concrete service state stays node-wide. *)
let shard_view config ~shard (w : Service.wrapper) =
  if Types.n_shards config <= 1 then w
  else begin
    let lo, hi = Types.shard_range config ~n_objects:w.Service.n_objects shard in
    {
      w with
      Service.n_objects = hi - lo;
      get_obj = (fun i -> w.Service.get_obj (lo + i));
      put_objs = (fun objs -> w.Service.put_objs (List.map (fun (i, v) -> (lo + i, v)) objs));
    }
  end

(* --- recovery -------------------------------------------------------------- *)

let begin_reintegration t node =
  (* The machine is back up: fresh session keys (stolen ones are now
     useless), restart the implementation from its persistent state, and
     recompute the abstraction function over the whole concrete state — the
     depth-first traversal of Section 3.4. *)
  Auth.refresh_keys t.chains node.rid;
  node.wrapper.Service.restart ();
  Objrepo.rebuild_all_digests node.repo;
  node.recovery_stats.last_objects_fetched <- 0;
  node.recovery_stats.last_bytes_fetched <- 0;
  Replica.on_reboot node.replica;
  (* Compare with the rest of the group and fetch only what differs.  If no
     suitable certified checkpoint is known (quiet system, or the group is
     behind us), the local state is deemed up to date until the next
     checkpoint exposes any divergence. *)
  (match Replica.fetch_target node.replica with
  | Some (seq, digest) -> Replica.force_fetch node.replica ~seq ~digest
  | None -> close_timeline t node);
  node.recovering <- false

let recover_now ?reboot_us t rid =
  Base_util.Invariant.require
    (Array.length t.cells = 1)
    "Runtime.recover_now: proactive recovery requires an unsharded object space";
  let reboot_us = Option.value reboot_us ~default:t.reboot_us in
  let node = t.replicas.(rid) in
  if not node.recovering then begin
    node.recovering <- true;
    node.recovery_stats.recoveries <- node.recovery_stats.recoveries + 1;
    let tl =
      {
        tl_rid = rid;
        tl_migrated = false;
        tl_start_us = now t;
        tl_reboot_done_us = -1L;
        tl_promote_done_us = -1L;
        tl_staleness_seqs = -1;
        tl_staleness_us = -1L;
        tl_fetch_done_us = -1L;
        tl_objects = 0;
        tl_bytes = 0;
      }
    in
    node.timeline <- Some tl;
    t.timelines <- tl :: t.timelines;
    trace_event t "recovery.start" [ ("rid", string_of_int rid) ];
    (* Abandon any in-flight fetch: its timers die with the reboot. *)
    node.fetcher <- None;
    Replica.abort_fetch node.replica;
    (* Reboot: the node is unreachable while restarting. *)
    Engine.set_node_up t.engine rid false;
    ignore
      (Engine.set_timer t.engine ~node:t.orchestrator ~after:(Sim_time.of_us reboot_us)
         ~tag:"reboot_done" ~payload:rid)
  end

(* --- migration-based recovery ---------------------------------------------- *)

(* Freshest promotable standby: it has completed at least one shadow sync,
   the machine is up, and it is not already half-way through a promotion
   handshake.  Ties go to the lowest id, keeping runs deterministic. *)
let eligible_standby t =
  Array.fold_left
    (fun best sb ->
      match sb.standby with
      | Some ss
        when ss.ss_synced_seq >= 0
             && Engine.node_is_up t.engine sb.rid
             && not (List.exists (fun (_, b) -> b = sb.rid) t.pending_promotions) -> (
        match best with
        | Some (_, best_seq) when best_seq >= ss.ss_synced_seq -> best
        | Some _ | None -> Some (sb, ss.ss_synced_seq))
      | Some _ | None -> best)
    None t.standbys
  |> Option.map fst

(* Begin promoting standby [sb] into replica slot [slot]: take the slot
   machine offline and start the role-switch handshake (key distribution,
   address takeover), modelled as a [promote_us] delay on the orchestrator.
   If the pair is not promotable right now, degrade to in-place recovery —
   the watchdog's job is to recover the slot, one way or the other. *)
let promote_specific ?promote_us t ~slot ~standby:sb =
  let promote_us = Option.value promote_us ~default:t.promote_us in
  let node = t.replicas.(slot) in
  let promotable =
    (not node.recovering)
    && (match sb.standby with Some ss -> ss.ss_synced_seq >= 0 | None -> false)
    && Engine.node_is_up t.engine sb.rid
    && not (List.exists (fun (s, b) -> s = slot || b = sb.rid) t.pending_promotions)
  in
  if not promotable then recover_now t slot
  else begin
    node.recovering <- true;
    node.recovery_stats.recoveries <- node.recovery_stats.recoveries + 1;
    let tl =
      {
        tl_rid = slot;
        tl_migrated = true;
        tl_start_us = now t;
        tl_reboot_done_us = -1L;
        tl_promote_done_us = -1L;
        tl_staleness_seqs = -1;
        tl_staleness_us = -1L;
        tl_fetch_done_us = -1L;
        tl_objects = 0;
        tl_bytes = 0;
      }
    in
    node.timeline <- Some tl;
    t.timelines <- tl :: t.timelines;
    trace_event t "recovery.promote_start"
      [ ("sb", string_of_int sb.rid); ("slot", string_of_int slot) ];
    (* Abandon in-flight fetches on both sides: the slot machine goes down,
       and the standby's shadow state must stay frozen at its last completed
       sync for the duration of the handshake. *)
    node.fetcher <- None;
    Replica.abort_fetch node.replica;
    sb.fetcher <- None;
    Engine.set_node_up t.engine slot false;
    t.pending_promotions <- (slot, sb.rid) :: t.pending_promotions;
    ignore
      (Engine.set_timer t.engine ~node:t.orchestrator ~after:(Sim_time.of_us promote_us)
         ~tag:"promote_done" ~payload:slot)
  end

let promote_now ?promote_us t slot =
  match eligible_standby t with
  | Some sb -> promote_specific ?promote_us t ~slot ~standby:sb
  | None -> recover_now t slot

(* --- chaos: fault-plan execution and the Byzantine-primary adversary ------- *)

let replica_behavior = function
  | Faultplan.B_honest -> Replica.Honest
  | Faultplan.B_mute -> Replica.Mute
  | Faultplan.B_lie -> Replica.Lie_in_replies
  | Faultplan.B_equivocate -> Replica.Equivocate

let link_attr src dst =
  let e v = if v = -1 then "*" else string_of_int v in
  Printf.sprintf "%s->%s" (e src) (e dst)

let exec_fault t (ev : Faultplan.event) =
  let until for_us = Sim_time.add (Engine.now t.engine) (Sim_time.of_us for_us) in
  match ev.Faultplan.action with
  | Faultplan.Crash n ->
    Engine.set_node_up t.engine n false;
    trace_event t "fault.crash" [ ("rid", string_of_int n) ]
  | Faultplan.Reboot n ->
    Engine.set_node_up t.engine n true;
    (* A rebooted replica lost its pending timers with the crash; re-arm —
       every per-shard cell the node hosts, plus the cross-shard kick. *)
    if n < t.config.Types.n then begin
      Array.iter
        (fun row ->
          let node = row.(n) in
          Replica.on_reboot node.replica;
          (* The st_retry chain is a runtime-level timer, so it died with
             the crash too.  A fetch that was in flight would otherwise sit
             wedged forever (status Fetching, no retries, no retarget) —
             restart it against the freshest certified checkpoint. *)
          match node.fetcher with
          | Some fetcher when not (State_transfer.finished fetcher) ->
            retarget_fetch t node ~reason:"reboot"
          | Some _ | None -> ())
        t.cells;
      let xn = t.xnodes.(n) in
      xn.xn_kick_armed <- false;
      let keys =
        Hashtbl.fold (fun k _ acc -> k :: acc) xn.xn_ops [] |> List.sort String.compare
      in
      if List.exists (fun k -> not (Hashtbl.find xn.xn_ops k).x_done) keys then
        arm_xkick t xn
    end
    else if Types.is_standby t.config n then begin
      (* A rebooted standby lost its shadow-sync timer (and any in-flight
         sync) with the crash; drop the dead fetcher and restart the tick. *)
      let sb = t.standbys.(n - t.config.Types.n) in
      sb.fetcher <- None;
      arm_shadow_timer t sb
    end;
    trace_event t "fault.reboot" [ ("rid", string_of_int n) ]
  | Faultplan.Promote sbid ->
    if Types.is_standby t.config sbid then begin
      (* Faultplan promotions roll through the replica slots in order, like
         the migrating watchdog would; the verb exists to stage promotion
         races (promote just after crash-standby) deterministically. *)
      let slot = t.roll_cursor mod t.config.Types.n in
      t.roll_cursor <- t.roll_cursor + 1;
      trace_event t "fault.promote" [ ("sb", string_of_int sbid); ("slot", string_of_int slot) ];
      promote_specific t ~slot ~standby:t.standbys.(sbid - t.config.Types.n)
    end
  | Faultplan.Crash_standby sbid ->
    if Types.is_standby t.config sbid then begin
      Engine.set_node_up t.engine sbid false;
      trace_event t "fault.crash_standby" [ ("sb", string_of_int sbid) ]
    end
  | Faultplan.Partition (a, b) ->
    Engine.partition t.engine a b;
    trace_event t "fault.partition"
      [
        ("a", String.concat "," (List.map string_of_int a));
        ("b", String.concat "," (List.map string_of_int b));
      ]
  | Faultplan.Heal ->
    Engine.heal t.engine;
    trace_event t "fault.heal" []
  | Faultplan.Delay_link { src; dst; extra_us; for_us } ->
    Engine.fault_delay t.engine ~src ~dst ~extra_us ~until:(until for_us);
    trace_event t "fault.delay"
      [ ("extra_us", string_of_int extra_us); ("link", link_attr src dst) ]
  | Faultplan.Drop_link { src; dst; p; for_us } ->
    Engine.fault_drop t.engine ~src ~dst ~p ~until:(until for_us);
    trace_event t "fault.drop" [ ("link", link_attr src dst); ("p", Printf.sprintf "%g" p) ]
  | Faultplan.Corrupt_link { src; dst; p; for_us } ->
    Engine.fault_corrupt t.engine ~src ~dst ~p ~until:(until for_us);
    trace_event t "fault.corrupt"
      [ ("link", link_attr src dst); ("p", Printf.sprintf "%g" p) ]
  | Faultplan.Set_behavior { node; behavior; shard } ->
    let b = replica_behavior behavior in
    (match shard with
    | Some s ->
      if s >= 0 && s < Array.length t.cells then Replica.set_behavior t.cells.(s).(node).replica b
    | None -> Array.iter (fun row -> Replica.set_behavior row.(node).replica b) t.cells);
    trace_event t "fault.behavior"
      ([ ("behavior", Faultplan.behavior_name behavior); ("rid", string_of_int node) ]
      @ match shard with Some s -> [ ("shard", string_of_int s) ] | None -> [])
  | Faultplan.Attack_pre_prepare { node; mute_p; delay_us; for_us; shard } ->
    t.pp_attack <-
      Some
        {
          atk_node = node;
          atk_shard = shard;
          atk_mute_p = mute_p;
          atk_delay_us = delay_us;
          atk_until = until for_us;
        };
    trace_event t "fault.attack_preprepare"
      ([
         ("delay_us", string_of_int delay_us);
         ("mute", Printf.sprintf "%g" mute_p);
         ("rid", string_of_int node);
       ]
      @ match shard with Some s -> [ ("shard", string_of_int s) ] | None -> [])

let apply_faultplan t plan =
  let base = Array.length t.plan in
  t.plan <- Array.append t.plan (Array.of_list plan);
  List.iteri
    (fun i (ev : Faultplan.event) ->
      ignore
        (Engine.set_timer t.engine ~node:t.orchestrator
           ~after:(Sim_time.of_us ev.Faultplan.at_us) ~tag:"fault" ~payload:(base + i)))
    plan

(* The adversary's view of one outgoing replica message: [None] means the
   attacked primary mutes it, [Some extra_us] lets it through with that much
   added delay.  Muting draws per destination, so a broadcast can reach an
   arbitrary subset of the backups — omission-style equivocation. *)
let pp_attack_extra t rid (env : Message.envelope) =
  match t.pp_attack with
  | Some atk
    when atk.atk_node = rid
         && Sim_time.compare (Engine.now t.engine) atk.atk_until < 0
         && (match atk.atk_shard with
            | Some s -> env.Message.shard = s
            | None -> true)
         && (match env.Message.body with Message.Pre_prepare _ -> true | _ -> false) ->
    if
      atk.atk_mute_p > 0.0
      && Base_util.Prng.bernoulli (Engine.prng t.engine) atk.atk_mute_p
    then begin
      Base_obs.Metrics.incr (Base_obs.Metrics.counter t.metrics "adversary.pp_muted");
      None
    end
    else begin
      if atk.atk_delay_us > 0 then
        Base_obs.Metrics.incr (Base_obs.Metrics.counter t.metrics "adversary.pp_delayed");
      Some atk.atk_delay_us
    end
  | _ -> Some 0

let on_orchestrator_timer t ~tag ~payload =
  match tag with
  | "fault" -> if payload >= 0 && payload < Array.length t.plan then exec_fault t t.plan.(payload)
  | "watchdog" ->
    if t.recovery_on then begin
      (if t.migrate then
         (* The migrating watchdog never takes a healthy replica down
            without a warm spare to put in its place: with no eligible
            standby (pool still cold, all mid-handshake, or all crashed)
            it skips the round and retries next period.  Degrading to an
            in-place reboot here would turn a cold pool into gratuitous
            downtime — that fallback is reserved for promotion races,
            where the slot machine is already down. *)
         match eligible_standby t with
         | Some sb -> promote_specific t ~slot:payload ~standby:sb
         | None ->
           Base_obs.Metrics.incr
             (Base_obs.Metrics.counter t.metrics "base.standby.rounds_skipped");
           trace_event t "recovery.promote_skipped" [ ("slot", string_of_int payload) ]
       else recover_now t payload);
      ignore
        (Engine.set_timer t.engine ~node:t.orchestrator
           ~after:(Sim_time.of_us t.recovery_period_us) ~tag:"watchdog" ~payload)
    end
  | "reboot_done" ->
    let node = t.replicas.(payload) in
    Engine.set_node_up t.engine payload true;
    (match node.timeline with
    | Some tl -> tl.tl_reboot_done_us <- now t
    | None -> ());
    trace_event t "recovery.reboot_done" [ ("rid", string_of_int payload) ];
    begin_reintegration t node
  | "promote_done" -> (
    match List.assoc_opt payload t.pending_promotions with
    | None -> ()
    | Some sbid ->
      t.pending_promotions <- List.filter (fun (s, _) -> s <> payload) t.pending_promotions;
      let node = t.replicas.(payload) in
      let sb = t.standbys.(sbid - t.config.Types.n) in
      let viable =
        Engine.node_is_up t.engine sbid
        && (match sb.standby with Some ss -> ss.ss_synced_seq >= 0 | None -> false)
      in
      if not viable then begin
        (* Promotion race: the standby died (or was wiped) mid-handshake.
           The slot machine is already down, so fall back to the in-place
           path — reboot it and differential-fetch as usual.  The episode's
           timeline keeps [tl_migrated = true] with a null handoff, which is
           exactly what happened: an attempted migration that degraded. *)
        Base_obs.Metrics.incr
          (Base_obs.Metrics.counter t.metrics "base.standby.promotions_aborted");
        trace_event t "recovery.promote_aborted"
          [ ("sb", string_of_int sbid); ("slot", string_of_int payload) ];
        ignore
          (Engine.set_timer t.engine ~node:t.orchestrator ~after:(Sim_time.of_us t.reboot_us)
             ~tag:"reboot_done" ~payload)
      end
      else begin
        let ss =
          match sb.standby with
          | Some ss -> ss
          | None -> raise (Internal_error "Runtime: standby node without sync state")
        in
        Engine.set_node_up t.engine payload true;
        (* Key handoff: fresh session keys for both identities — the slot
           because a different machine now speaks for it, the demoted
           machine because its old keys are suspect. *)
        Auth.refresh_keys t.chains payload;
        Auth.refresh_keys t.chains sbid;
        (* The swap itself: the standby's warm repo and implementation take
           over the slot identity; the suspect state moves to the standby
           identity to be wiped at leisure. *)
        let slot_repo = node.repo and slot_wrapper = node.wrapper in
        node.repo <- sb.repo;
        node.wrapper <- sb.wrapper;
        sb.repo <- slot_repo;
        sb.wrapper <- slot_wrapper;
        ss.ss_promotions <- ss.ss_promotions + 1;
        Base_obs.Metrics.incr (Base_obs.Metrics.counter t.metrics "base.standby.promotions");
        let lag = Int64.sub (now t) ss.ss_synced_at_us in
        Base_obs.Metrics.observe
          (Base_obs.Metrics.histogram t.metrics "base.standby.lag_us")
          (Int64.to_float lag);
        (match node.timeline with
        | Some tl ->
          tl.tl_promote_done_us <- now t;
          tl.tl_staleness_us <- lag;
          let head =
            match Replica.fetch_target node.replica with
            | Some (seq, _) -> seq
            | None -> ss.ss_synced_seq
          in
          tl.tl_staleness_seqs <- max 0 (head - ss.ss_synced_seq)
        | None -> ());
        node.recovery_stats.last_objects_fetched <- 0;
        node.recovery_stats.last_bytes_fetched <- 0;
        Replica.on_reboot node.replica;
        (* Install the shadow-synced checkpoint as the slot's recovered
           state.  [fetch_complete] handles the stale-standby edge itself:
           if the group's stable watermark overtook the shadow seqno while
           the handshake ran, it starts a differential fetch instead of
           resuming from unusable state. *)
        Replica.fetch_complete node.replica ~seq:ss.ss_synced_seq ~app_digest:ss.ss_root
          ~client_rows:ss.ss_client_rows;
        (* Catch up past the shadow watermark when the group moved on but
           the log gap is still fetchable. *)
        (match (node.fetcher, Replica.fetch_target node.replica) with
        | None, Some (seq, digest)
          when seq > ss.ss_synced_seq && Replica.status node.replica <> Replica.Fetching ->
          Replica.force_fetch node.replica ~seq ~digest
        | (Some _ | None), _ -> ());
        (match node.fetcher with None -> close_timeline t node | Some _ -> ());
        node.recovering <- false;
        (* Demotion: the old slot machine is now the next standby.  Wipe its
           suspect warm state — restart the implementation, recompute every
           digest, drop cached checkpoints — and let the shadow-sync timer
           refetch from scratch at leisure. *)
        ss.ss_synced_seq <- -1;
        ss.ss_client_rows <- [];
        sb.wrapper.Service.restart ();
        Objrepo.rebuild_all_digests sb.repo;
        Objrepo.discard_below sb.repo max_int;
        trace_event t "recovery.promote_done"
          [ ("sb", string_of_int sbid); ("slot", string_of_int payload) ]
      end)
  | _ -> ()

let disable_proactive_recovery t = t.recovery_on <- false

let enable_proactive_recovery ?(reboot_us = 2_000_000) ?promote_us ?(migrate = false)
    ~period_us t =
  (* Reintegration rebuilds and re-fetches the node's single repo; teaching
     it to repair every per-shard cell is future work, so the watchdog is
     gated to unsharded systems (as is the standby pool, in [create]). *)
  Base_util.Invariant.require
    (Array.length t.cells = 1)
    "Runtime.enable_proactive_recovery: requires an unsharded object space";
  t.recovery_period_us <- period_us;
  t.reboot_us <- reboot_us;
  (match promote_us with Some v -> t.promote_us <- v | None -> ());
  t.migrate <- migrate && Array.length t.standbys > 0;
  t.recovery_on <- true;
  (* Stagger: replica i's watchdog first fires at (i+1) * period / n, so
     less than 1/3 of the replicas are ever recovering together. *)
  Array.iter
    (fun node ->
      let offset = period_us / t.config.n * (node.rid + 1) in
      ignore
        (Engine.set_timer t.engine ~node:t.orchestrator ~after:(Sim_time.of_us offset)
           ~tag:"watchdog" ~payload:node.rid))
    t.replicas

(* --- construction ---------------------------------------------------------- *)

(* Inverse of the per-shard timer-tag namespace the replica nets install:
   "vc.s2" -> ("vc", 2); a tag without the suffix belongs to shard 0. *)
let split_shard_tag tag =
  match String.rindex_opt tag '.' with
  | Some i when i + 2 < String.length tag && tag.[i + 1] = 's' -> (
    match int_of_string_opt (String.sub tag (i + 2) (String.length tag - i - 2)) with
    | Some k -> (String.sub tag 0 i, k)
    | None -> (tag, 0))
  | Some _ | None -> (tag, 0)

let create ?engine_config ?profile ?(branching = 16) ~config ~make_wrapper ~n_clients () =
  let engine_config =
    match engine_config with
    | Some c -> c
    | None ->
      {
        (Engine.default_config ~size_of:msg_size ~label_of:msg_label) with
        Engine.kind_of = msg_kind;
      }
  in
  let engine = Engine.create engine_config in
  (* One profile for the whole system: probes aggregate across replicas,
     clients and the engine (same sharing model as [metrics]).  Disabled —
     and a couple of loads plus a branch per probe site — until the caller
     enables it. *)
  let profile =
    match profile with Some p -> p | None -> Base_obs.Profile.create ()
  in
  Engine.attach_profile engine profile;
  (* One registry for the whole system: replica histograms aggregate across
     the group, which is what the benchmark tables report.  The engine
     exports its live queue-depth / per-node inflight gauges into the same
     registry. *)
  let metrics = Base_obs.Metrics.create () in
  Engine.attach_metrics engine metrics;
  (* In-flight corruption model: flip one byte of the encoded protocol body
     and deliver it as raw wire bytes, so it exercises the replica's
     decode-and-MAC rejection path exactly like a Byzantine network would.
     State-transfer messages (simulator values, no wire codec) are mangled
     beyond recognition instead: the corruptor declines and the engine drops
     them. *)
  Engine.set_corruptor engine (fun rng msg ->
      match msg with
      | Bft env ->
        let body = env.Message.wire in
        let len = String.length body in
        if len = 0 then None
        else begin
          let bytes = Bytes.of_string body in
          let i = Base_util.Prng.int rng len in
          let flip = 1 + Base_util.Prng.int rng 255 in
          Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor flip));
          Some
            (Raw
               {
                 from = env.Message.sender;
                 shard = env.Message.shard;
                 macs = env.Message.macs;
                 bytes = Bytes.to_string bytes;
               })
        end
      | St _ | Raw _ -> None);
  let trace = Base_obs.Trace.create () in
  let chains =
    Auth.create ~seed:(Int64.add engine_config.Engine.seed 7919L)
      ~n_principals:config.Types.n_principals
  in
  let n = config.Types.n in
  let n_shards = Types.n_shards config in
  let group = Types.group_size config in
  let replica_cells = Array.make_matrix n_shards group None in
  let t_cell = ref None in
  let the () =
    match !t_cell with
    | Some t -> t
    | None -> raise (Internal_error "Runtime: node callback ran before wiring finished")
  in
  let replica_net ~shard rid =
    (* Per-shard timer namespace: every cell arms "vc"/"status" through its
       own net, the engine carries one flat tag space per physical node, so
       non-zero shards get a ".s<k>" suffix that the dispatcher strips
       again.  Shard 0 keeps the bare tags — the exact unsharded wiring. *)
    let tag_vc = if shard = 0 then "vc" else Printf.sprintf "vc.s%d" shard in
    let tag_status = if shard = 0 then "status" else Printf.sprintf "status.s%d" shard in
    {
      Replica.send =
        (fun ~dst env ->
          match !t_cell with
          (* Sends during construction (the seq-0 checkpoint) predate any
             adversary; the plain path also keeps them safe. *)
          | None -> Engine.send engine ~src:rid ~dst (Bft env)
          | Some t -> (
            match pp_attack_extra t rid env with
            | None -> ()  (* the adversary muted this pre-prepare *)
            | Some extra_us -> Engine.send engine ~extra_us ~src:rid ~dst (Bft env)));
      set_timer =
        (fun ~after_us ~tag ~payload ->
          let tag =
            if String.equal tag "vc" then tag_vc
            else if String.equal tag "status" then tag_status
            else tag
          in
          Engine.set_timer engine ~node:rid ~after:(Sim_time.of_us after_us) ~tag ~payload);
      cancel_timer = (fun id -> Engine.cancel_timer engine id);
      now_us = (fun () -> Engine.now engine);
    }
  in
  let xnodes =
    Array.init n (fun rid ->
        {
          xn_rid = rid;
          xn_ops = Hashtbl.create 16;
          xn_lock_mark = Array.make n_shards (-1, 0);
          xn_kick_armed = false;
        })
  in
  let make_cell ~role ~shard ~wrapper rid =
    let repo =
      Objrepo.create ~cache_objs:config.Types.st_cache_objs
        ~wrapper:(shard_view config ~shard wrapper) ~branching ()
    in
    let node_lazy () =
      match replica_cells.(shard).(rid) with
      | Some node -> node
      | None -> raise (Internal_error "Runtime: replica node referenced before construction")
    in
    (* Every app upcall reads [repo]/[wrapper] through the node record (not
       the construction-time bindings), so a promotion's repo/wrapper swap
       takes effect for execution and checkpointing alike.  The only
       exception is the seq-0 checkpoint taken from inside [Replica.create],
       which necessarily predates the node record. *)
    let app =
      {
        Replica.execute =
          (if n_shards <= 1 then
             fun ~client ~timestamp:_ ~operation ~nondet ~read_only ->
               let node = node_lazy () in
               node.wrapper.Service.execute ~client ~operation ~nondet ~read_only
                 ~modify:(fun i -> Objrepo.modify node.repo i)
           else
             fun ~client ~timestamp ~operation ~nondet ~read_only ->
               xexecute (the ()) xnodes.(rid) ~shard ~client ~timestamp ~operation ~nondet
                 ~read_only);
        propose_nondet =
          (fun ~operation ->
            (node_lazy ()).wrapper.Service.propose_nondet
              ~clock_us:(Engine.local_clock engine rid) ~operation);
        check_nondet =
          (fun ~operation ~nondet ->
            (node_lazy ()).wrapper.Service.check_nondet
              ~clock_us:(Engine.local_clock engine rid) ~operation ~nondet);
        ready =
          (if n_shards <= 1 then Replica.always_ready
           else
             fun ~client ~timestamp ~operation ->
               xready (the ()) xnodes.(rid) ~shard ~client ~timestamp ~operation);
        take_checkpoint =
          (fun ~seq ->
            match replica_cells.(shard).(rid) with
            | Some node ->
              Objrepo.take_checkpoint node.repo ~seq
                ~client_rows:(Replica.export_client_table node.replica)
            | None -> Objrepo.take_checkpoint repo ~seq ~client_rows:[]);
        discard_checkpoints_below =
          (fun seq ->
            match replica_cells.(shard).(rid) with
            | Some node -> Objrepo.discard_below node.repo seq
            | None -> Objrepo.discard_below repo seq);
        start_fetch =
          (fun ~seq ~digest ->
            let node = node_lazy () in
            start_fetch (the ()) node ~seq ~digest);
      }
    in
    let replica =
      Replica.create ~metrics ~profile ~role ~shard ~config ~id:rid ~keychain:chains.(rid)
        ~net:(replica_net ~shard rid) ~app ()
    in
    let standby =
      match role with
      | Replica.Active -> None
      | Replica.Standby ->
        Some
          {
            ss_synced_seq = -1;
            ss_synced_at_us = -1L;
            ss_root = Digest.zero;
            ss_client_rows = [];
            ss_promotions = 0;
          }
    in
    let node =
      {
        rid;
        shard;
        replica;
        repo;
        wrapper;
        standby;
        fetcher = None;
        st_retries = 0;
        st_progress = 0;
        st_stalled = 0;
        recovering = false;
        recovery_stats =
          {
            recoveries = 0;
            last_objects_fetched = 0;
            last_bytes_fetched = 0;
            total_objects_fetched = 0;
            total_bytes_fetched = 0;
          };
        timeline = None;
      }
    in
    replica_cells.(shard).(rid) <- Some node;
    node
  in
  let wrappers = Array.init group (fun rid -> make_wrapper rid) in
  if n_shards > 1 then begin
    (* Promotion swaps a node's single repo/wrapper pair; per-shard repos
       make that a per-cell operation the pool machinery does not implement,
       so sharded systems run without warm standbys. *)
    Base_util.Invariant.require (config.Types.s = 0)
      "Runtime.create: a sharded object space cannot run a standby pool";
    let n_objects = wrappers.(0).Service.n_objects in
    for shard = 0 to n_shards - 1 do
      let lo, hi = Types.shard_range config ~n_objects shard in
      Base_util.Invariant.require (hi > lo)
        "Runtime.create: every shard must own at least one abstract object"
    done
  end;
  let cells =
    Array.init n_shards (fun shard ->
        Array.init n (fun rid ->
            make_cell ~role:Replica.Active ~shard ~wrapper:wrappers.(rid) rid))
  in
  let replicas = cells.(0) in
  let standbys =
    Array.init config.Types.s (fun i ->
        make_cell ~role:Replica.Standby ~shard:0 ~wrapper:wrappers.(n + i) (n + i))
  in
  (* Clients route each request to the agreement instance owning its
     footprint; multi-shard footprints go to the lowest shard, which
     coordinates the cross-shard commit.  The decode is pure protocol, so
     replica 0's wrapper answers for everyone. *)
  let route =
    if n_shards <= 1 then fun _ -> 0
    else
      let w = wrappers.(0) in
      fun operation ->
        match w.Service.oids_of_op ~operation with
        | [] -> 0
        | oids ->
          List.fold_left
            (fun acc oid -> min acc (Types.shard_of_oid config oid))
            (n_shards - 1) oids
  in
  let clients =
    Array.init n_clients (fun k ->
        let cid = group + k in
        let net =
          {
            Client.send = (fun ~dst env -> Engine.send engine ~src:cid ~dst (Bft env));
            set_timer =
              (fun ~after_us ~tag ~payload ->
                Engine.set_timer engine ~node:cid ~after:(Sim_time.of_us after_us) ~tag ~payload);
            cancel_timer = (fun id -> Engine.cancel_timer engine id);
            now_us = (fun () -> Engine.now engine);
          }
        in
        (* All clients share the registry (and so one aggregate latency
           histogram) — constant memory per client, however many complete. *)
        Client.create ~metrics ~profile ~route ~config ~id:cid ~keychain:chains.(cid) ~net ())
  in
  let orchestrator = config.Types.n_principals in
  let t =
    {
      engine;
      config;
      chains;
      replicas;
      cells;
      xnodes;
      standbys;
      clients;
      orchestrator;
      recovery_period_us = 0;
      reboot_us = 2_000_000;
      promote_us = 30_000;
      migrate = false;
      recovery_on = false;
      pending_promotions = [];
      roll_cursor = 0;
      metrics;
      profile;
      trace;
      st_totals =
        {
          State_transfer.meta_fetched = 0;
          objects_fetched = 0;
          bytes_fetched = 0;
          chunks_fetched = 0;
          cache_hits = 0;
          retries = 0;
          quarantines = 0;
          heads_rejected = 0;
          meta_rejected = 0;
          objects_rejected = 0;
        };
      timelines = [];
      plan = [||];
      pp_attack = None;
    }
  in
  t_cell := Some t;
  (* Register event handlers.  Each active physical node registers once and
     dispatches to its per-shard cells: protocol envelopes by their shard
     tag, state transfer by the St/Raw shard field, timers by payload
     ("st_retry"), by tag suffix ("vc.s1"), or to the node-level cross-shard
     kick.  Standbys (shard 0 only, enforced at create) keep the flat
     single-cell handler plus the shadow tick. *)
  let register_replica rid =
    Engine.add_node engine ~id:rid (fun _engine ev ->
        let cell shard =
          if shard >= 0 && shard < n_shards then Some cells.(shard).(rid) else None
        in
        match ev with
        | Engine.Deliver { src = _; msg = Bft env } -> (
          match cell env.Message.shard with
          | Some node -> Replica.receive node.replica env
          | None -> ())  (* shard tag out of range: drop *)
        | Engine.Deliver { src = _; msg = St { from; shard; body } } -> (
          match cell shard with
          | Some node -> handle_st t node ~from body
          | None -> ())
        | Engine.Deliver { src = _; msg = Raw { from; shard; macs; bytes } } -> (
          (* Corrupted-in-flight bytes: feed the wire-decode path, which
             counts and drops them (bft.reject.decode / bft.reject.mac). *)
          match cell shard with
          | Some node -> Replica.receive_wire ~shard node.replica ~sender:from ~macs bytes
          | None -> ())
        | Engine.Timer { tag = "st_retry"; payload } -> (
          match cell payload with Some node -> st_retry_tick t node | None -> ())
        | Engine.Timer { tag = "xkick"; _ } -> xshard_kick t xnodes.(rid)
        | Engine.Timer { tag; payload } -> (
          let base, shard = split_shard_tag tag in
          match cell shard with
          | Some node -> Replica.on_timer node.replica ~tag:base ~payload
          | None -> ()))
  in
  for rid = 0 to n - 1 do
    register_replica rid;
    Array.iter (fun row -> Replica.start_status_timer row.(rid).replica) cells
  done;
  Array.iter
    (fun node ->
      Engine.add_node engine ~id:node.rid (fun _engine ev ->
          match ev with
          | Engine.Deliver { msg = Bft env; _ } -> Replica.receive node.replica env
          | Engine.Deliver { msg = St { from; body; _ }; _ } -> handle_st t node ~from body
          | Engine.Deliver { msg = Raw { from; macs; bytes; _ }; _ } ->
            Replica.receive_wire node.replica ~sender:from ~macs bytes
          | Engine.Timer { tag = "st_retry"; _ } -> st_retry_tick t node
          | Engine.Timer { tag = "shadow_sync"; _ } -> shadow_tick t node
          | Engine.Timer { tag; payload } -> Replica.on_timer node.replica ~tag ~payload);
      arm_shadow_timer t node)
    standbys;
  Array.iter
    (fun c ->
      Engine.add_node engine ~id:(Client.id c) (fun _engine ev ->
          match ev with
          | Engine.Deliver { msg = Bft env; _ } -> Client.receive c env
          | Engine.Deliver { msg = St _ | Raw _; _ } -> ()
          | Engine.Timer { tag; payload } -> Client.on_timer c ~tag ~payload))
    clients;
  Engine.add_node engine ~id:orchestrator (fun _engine ev ->
      match ev with
      | Engine.Timer { tag; payload } -> on_orchestrator_timer t ~tag ~payload
      | Engine.Deliver _ -> ());
  t

(* --- client-facing API ------------------------------------------------------ *)

let invoke t ~client:idx ?read_only ~operation k =
  Client.invoke t.clients.(idx) ?read_only ~operation k

(* Step the simulation until [done_ ()] holds; [Error] reports a stall
   (quiescent queue or exhausted budget) instead of raising, so chaos
   experiments can treat a liveness loss as data. *)
let step_until t ~what ~max_events done_ =
  let events = ref 0 in
  let quiescent = ref false in
  while (not (done_ ())) && (not !quiescent) && !events < max_events do
    if Engine.step t.engine then incr events else quiescent := true
  done;
  if done_ () then Ok ()
  else if !quiescent then Error (Printf.sprintf "Runtime.%s: simulation went quiescent" what)
  else Error (Printf.sprintf "Runtime.%s: event budget exceeded" what)

let try_run_until_idle ?(max_events = 5_000_000) t =
  step_until t ~what:"run_until_idle" ~max_events (fun () ->
      not (Array.exists (fun c -> Client.outstanding c > 0) t.clients))

let run_until_idle ?max_events t =
  match try_run_until_idle ?max_events t with Ok () -> () | Error e -> raise (Stalled e)

let try_invoke_sync ?(max_events = 5_000_000) t ~client:idx ?read_only ~operation () =
  let result = ref None in
  invoke t ~client:idx ?read_only ~operation (fun r -> result := Some r);
  match
    step_until t ~what:"invoke_sync" ~max_events (fun () ->
        match !result with Some _ -> true | None -> false)
  with
  | Error e -> Error e
  | Ok () -> (
    match !result with
    | Some r -> Ok r
    | None -> Error "Runtime.invoke_sync: no result")

let invoke_sync t ~client ?read_only ~operation () =
  match try_invoke_sync t ~client ?read_only ~operation () with
  | Ok r -> r
  | Error e -> raise (Stalled e)

let set_behavior ?shard t rid b =
  match shard with
  | Some s -> Replica.set_behavior t.cells.(s).(rid).replica b
  | None -> Array.iter (fun row -> Replica.set_behavior row.(rid).replica b) t.cells

let n_shards t = Array.length t.cells

let shard_replica t ~shard rid = t.cells.(shard).(rid)

(* --- observability export --------------------------------------------------- *)

let enable_net_trace t =
  Engine.set_tracer t.engine (fun ts line ->
      Base_obs.Trace.event t.trace ~ts ~name:"net" [ ("line", line) ])

let counters_json (c : Engine.counters) =
  Base_obs.Json.obj
    [
      ("corrupted_msgs", Base_obs.Json.Int c.Engine.corrupted_msgs);
      ("dropped_msgs", Base_obs.Json.Int c.Engine.dropped_msgs);
      ("recv_bytes", Base_obs.Json.Int c.Engine.recv_bytes);
      ("recv_msgs", Base_obs.Json.Int c.Engine.recv_msgs);
      ("sent_bytes", Base_obs.Json.Int c.Engine.sent_bytes);
      ("sent_msgs", Base_obs.Json.Int c.Engine.sent_msgs);
    ]

(* Episode export: derived durations only, never raw milestone timestamps —
   a milestone the episode did not reach renders as [null], not as a
   sentinel the consumer has to know about. *)
let timeline_json tl =
  let opt = function Some v -> Base_obs.Json.Int v | None -> Base_obs.Json.Null in
  Base_obs.Json.obj
    [
      ("bytes", Base_obs.Json.Int tl.tl_bytes);
      ("handoff_us", opt (timeline_handoff_us tl));
      ("migrated", Base_obs.Json.Bool tl.tl_migrated);
      ("objects", Base_obs.Json.Int tl.tl_objects);
      ("rid", Base_obs.Json.Int tl.tl_rid);
      ( "staleness_seqs",
        if tl.tl_migrated && tl.tl_staleness_seqs >= 0 then
          Base_obs.Json.Int tl.tl_staleness_seqs
        else Base_obs.Json.Null );
      ( "staleness_us",
        if tl.tl_migrated && Int64.compare tl.tl_staleness_us 0L >= 0 then
          Base_obs.Json.Int (Int64.to_int tl.tl_staleness_us)
        else Base_obs.Json.Null );
      ("start_us", Base_obs.Json.Int (Int64.to_int tl.tl_start_us));
      ("window_us", opt (timeline_window_us tl));
    ]

let metrics_report t =
  let open Base_obs.Json in
  let st = t.st_totals in
  obj
    [
      ( "net",
        obj
          [
            ( "labels",
              obj
                (List.map
                   (fun (label, c) -> (label, counters_json c))
                   (Engine.label_counters t.engine)) );
            ("max_queue_depth", Int (Engine.max_queue_depth t.engine));
            ("queue_depth", Int (Engine.queue_depth t.engine));
            ("totals", counters_json (Engine.total_counters t.engine));
          ] );
      ("metrics", Base_obs.Metrics.to_json t.metrics);
      ("recoveries", List (List.map timeline_json (recovery_timelines t)));
      ( "state_transfer",
        obj
          [
            ("bytes_fetched", Int st.State_transfer.bytes_fetched);
            ("cache_hits", Int st.State_transfer.cache_hits);
            ("chunks_fetched", Int st.State_transfer.chunks_fetched);
            ("heads_rejected", Int st.State_transfer.heads_rejected);
            ("meta_fetched", Int st.State_transfer.meta_fetched);
            ("meta_rejected", Int st.State_transfer.meta_rejected);
            ("objects_fetched", Int st.State_transfer.objects_fetched);
            ("objects_rejected", Int st.State_transfer.objects_rejected);
            ("quarantines", Int st.State_transfer.quarantines);
            ("rejected", Int (State_transfer.rejected st));
            ("retries", Int st.State_transfer.retries);
          ] );
      ("trace_events", Int (Base_obs.Trace.length t.trace));
    ]
