(** Hierarchical state transfer between replicas (Section 2.2).

    A replica that is out of date (because it missed messages that were
    garbage-collected, or because it just went through proactive recovery)
    brings itself to a {e certified} checkpoint [(seq, digest)] — one vouched
    for by f+1 distinct replicas, hence by at least one correct one.

    The fetch is self-verifying from the root down, so each piece can be
    accepted from a single (possibly faulty) replica:

    + [Fetch_head] obtains the partition-tree root and the last-reply table;
      they verify against the certified checkpoint digest.
    + [Fetch_meta] walks down the partition tree, descending only into
      partitions whose digest differs from the local state; every reply
      verifies against the already-certified parent digest.
    + [Fetch_obj] retrieves only the objects that are out of date or
      corrupt; each verifies against its certified leaf digest.

    When everything needed has arrived, the whole batch is installed with a
    single [put_objs] call — the library's guarantee that the inverse
    abstraction function always sees a consistent abstract state. *)

module Digest = Base_crypto.Digest_t

type msg =
  | Fetch_head of { seq : int }
  | Head_reply of {
      seq : int;
      app_root : Digest.t;
      client_rows : (int * int64 * string) list;
    }
  | Fetch_meta of { seq : int; level : int; index : int }
  | Meta_reply of { seq : int; level : int; index : int; children : Digest.t array }
  | Fetch_obj of { seq : int; index : int }
  | Obj_reply of { seq : int; index : int; data : string }

val size : msg -> int
(** Wire-size estimate for the simulator. *)

val label : msg -> string

val combined_digest :
  app_root:Digest.t -> client_rows:(int * int64 * string) list -> Digest.t
(** The checkpoint digest bound by CHECKPOINT messages for a given
    partition-tree root and last-reply table (used by tests and by the
    benchmark harness to fabricate fetch targets). *)

(** {1 Server side} *)

val serve : Objrepo.t -> msg -> msg option
(** Answer a fetch request from the local checkpoint store; [None] if we do
    not hold the requested checkpoint (or the message is not a request). *)

(** {1 Fetcher side} *)

type stats = {
  mutable meta_fetched : int;
  mutable objects_fetched : int;
  mutable bytes_fetched : int;
  mutable retries : int;  (** {!retry} rounds driven by the runtime timer *)
  (* Replies whose payload failed digest verification against the certified
     target — the signature of a Byzantine or stale responder. *)
  mutable heads_rejected : int;
  mutable meta_rejected : int;
  mutable objects_rejected : int;
}

val compare_obj : int * string -> int * string -> int
(** Order in which fetched objects are handed to [put_objs]: ascending
    object index.  Part of the module's determinism contract (the install
    batch must not depend on hash-table iteration order). *)

val rejected : stats -> int
(** Total verification failures across heads, meta nodes and objects.  A
    fetch accumulating rejections is talking to a faulty responder; the
    runtime uses this to re-target instead of retrying blindly. *)

type t

val start :
  repo:Objrepo.t ->
  target_seq:int ->
  target_digest:Digest.t ->
  send:(msg -> unit) ->
  on_complete:
    (seq:int -> app_root:Digest.t -> client_rows:(int * int64 * string) list -> unit) ->
  t
(** Begin fetching.  [send] transmits a request to the peer replicas;
    [on_complete] fires once after the batch has been installed in the
    repo.  [target_digest] is the combined checkpoint digest certified by
    f+1 CHECKPOINT messages. *)

val handle_reply : t -> msg -> unit
(** Feed a state-transfer reply to the fetcher (requests are ignored). *)

val retry : t -> unit
(** Re-send all outstanding requests (driven by a runtime timer). *)

val debug : bool ref
(** When set, {!retry} dumps fetcher progress to stderr (diagnostics). *)

val finished : t -> bool

val stats : t -> stats
