(** Hierarchical state transfer between replicas (Section 2.2).

    A replica that is out of date (because it missed messages that were
    garbage-collected, or because it just went through proactive recovery)
    brings itself to a {e certified} checkpoint [(seq, digest)] — one vouched
    for by f+1 distinct replicas, hence by at least one correct one.

    The fetch is self-verifying from the root down, so each piece can be
    accepted from a single (possibly faulty) replica:

    + [Fetch_head] obtains the partition-tree root and the last-reply table;
      they verify against the certified checkpoint digest.
    + [Fetch_meta] walks down the partition tree, descending only into
      partitions whose digest differs from the local state; every reply
      verifies against the already-certified parent digest.
    + [Fetch_obj] retrieves only the objects that are out of date or
      corrupt, in ranges of at most {!params.chunk_bytes} bytes; each
      assembled object verifies against its certified leaf digest.

    The fetcher is a {e windowed, load-spread pipeline}: up to
    {!params.window} meta/object requests are in flight at once, striped
    across all peer replicas by a per-source scoreboard (outstanding count,
    reject/timeout strikes, capped quarantine backoff) so recovery time
    scales with the group's aggregate bandwidth, not with round trips to a
    single source.  Before fetching a leaf it consults {!Objrepo.cache_find},
    so values this replica has already seen (old checkpoint values saved by
    copy-on-write, previously fetched objects) install without a round trip.

    When everything needed has arrived, the whole batch is installed with a
    single [put_objs] call — the library's guarantee that the inverse
    abstraction function always sees a consistent abstract state.

    [doc/state_transfer.md] documents the wire protocol, the verification
    argument and the pipeline design with a worked trace. *)

module Digest = Base_crypto.Digest_t

(** Wire messages.  [Fetch_obj] asks for at most [max_bytes] of object
    [index] starting at byte [off]; [Obj_reply] carries the range plus the
    object's [total] length so the fetcher can schedule the remaining
    chunks across other sources. *)
type msg =
  | Fetch_head of { seq : int }
  | Head_reply of {
      seq : int;
      app_root : Digest.t;
      client_rows : (int * int64 * string) list;
    }
  | Fetch_meta of { seq : int; level : int; index : int }
  | Meta_reply of { seq : int; level : int; index : int; children : Digest.t array }
  | Fetch_obj of { seq : int; index : int; off : int; max_bytes : int }
  | Obj_reply of { seq : int; index : int; off : int; total : int; data : string }

val size : msg -> int
(** Wire-size estimate for the simulator. *)

val kind_label : msg -> string
(** Constant constructor tag (["FETCH-OBJ"]), allocation-free; the
    simulator's per-type traffic census keys on this. *)

val label : msg -> string
(** Short human-readable tag (["FETCH-OBJ(n=8,i=3,o=4096)"]) used by
    traces. *)

val combined_digest :
  app_root:Digest.t -> client_rows:(int * int64 * string) list -> Digest.t
(** The checkpoint digest bound by CHECKPOINT messages for a given
    partition-tree root and last-reply table (used by tests and by the
    benchmark harness to fabricate fetch targets). *)

(** {1 Server side} *)

val serve : Objrepo.t -> msg -> msg option
(** Answer a fetch request from the local checkpoint store; [None] if we do
    not hold the requested checkpoint, the requested object range is out of
    bounds, or the message is not a request. *)

(** {1 Fetcher side} *)

(** Pipeline tuning.  All limits are per-fetch. *)
type params = {
  window : int;  (** max meta/object requests in flight at once *)
  chunk_bytes : int;  (** max object bytes per [Obj_reply]; larger objects
                          are fetched as ranges striped across sources *)
  strike_limit : int;  (** rejects/timeouts before a source is quarantined *)
  max_backoff_rounds : int;
      (** quarantine cap, in retry rounds; actual backoff doubles with each
          quarantine of the same source up to this cap *)
  max_obj_bytes : int;
      (** sanity cap on an [Obj_reply.total] claim — a Byzantine server
          cannot make the fetcher allocate unbounded reassembly buffers *)
}

val default_params : params
(** [window = 8], [chunk_bytes = 4096], [strike_limit = 3],
    [max_backoff_rounds = 8], [max_obj_bytes = 16 MiB].  The runtime
    overrides [window] and [chunk_bytes] from
    {!Base_bft.Types.config.st_window} / [st_chunk_bytes]. *)

(** Per-source scoreboard entry, exposed for observability (the runtime
    exports per-source byte counters from these). *)
type source = {
  src_id : int;  (** replica id of the peer *)
  mutable out : int;  (** requests currently assigned to this source *)
  mutable sent : int;  (** total requests sent to this source *)
  mutable bytes : int;  (** verified payload bytes received from it *)
  mutable strikes : int;  (** rejects/timeouts since the last quarantine
                              (verified replies decay one strike each) *)
  mutable quarantine : int;  (** retry rounds of quarantine remaining; 0 =
                                 eligible for new assignments *)
  mutable quarantines : int;  (** times this source has been quarantined *)
}

(** Cumulative fetch statistics (also aggregated system-wide by the
    runtime as [Runtime.st_totals]). *)
type stats = {
  mutable meta_fetched : int;
  mutable objects_fetched : int;
  mutable bytes_fetched : int;  (** verified object payload bytes *)
  mutable chunks_fetched : int;
      (** accepted ranged replies for multi-chunk objects (single-reply
          objects do not count) *)
  mutable cache_hits : int;
      (** leaves satisfied from {!Objrepo}'s digest-keyed cache without a
          network fetch *)
  mutable retries : int;  (** {!retry} rounds driven by the runtime timer *)
  mutable quarantines : int;  (** sources quarantined (sum over sources) *)
  mutable heads_rejected : int;
      (** replies whose payload failed digest verification against the
          certified target — the signature of a Byzantine or stale
          responder *)
  mutable meta_rejected : int;
  mutable objects_rejected : int;
}

val compare_obj : int * string -> int * string -> int
(** Order in which fetched objects are handed to [put_objs]: ascending
    object index.  Part of the module's determinism contract (the install
    batch must not depend on hash-table iteration order). *)

val rejected : stats -> int
(** Total verification failures across heads, meta nodes and objects.  A
    fetch accumulating rejections is talking to faulty responders; the
    runtime uses this to re-target instead of retrying blindly. *)

type t

val start :
  ?params:params ->
  ?trace:(string -> unit) ->
  repo:Objrepo.t ->
  sources:int list ->
  target_seq:int ->
  target_digest:Digest.t ->
  send:(dst:int -> msg -> unit) ->
  on_complete:
    (seq:int -> app_root:Digest.t -> client_rows:(int * int64 * string) list -> unit) ->
  unit ->
  t
(** Begin fetching.  [sources] are the peer replica ids to stripe requests
    over (must be non-empty; duplicates are dropped).  [send] transmits one
    request to one peer; [on_complete] fires once after the batch has been
    installed in the repo.  [target_digest] is the combined checkpoint
    digest certified by f+1 CHECKPOINT messages.  [trace] receives one-line
    diagnostic events (quarantines, rejected assemblies, timeout
    re-stripes); the runtime routes it into the shared structured trace
    sink — nothing here writes to stderr. *)

val handle_reply : t -> from:int -> msg -> unit
(** Feed a state-transfer reply to the fetcher (requests are ignored).
    [from] is the replica the reply arrived from: verified payloads credit
    its scoreboard entry, verification failures count a strike against
    it. *)

val retry : t -> unit
(** One watchdog round, driven by a runtime timer: decrement quarantines,
    re-broadcast the head request if still unanswered, count a timeout
    strike against every source holding a request older than one full
    round, and re-stripe those requests over the other sources. *)

val finished : t -> bool

val stats : t -> stats

val inflight : t -> int
(** Meta/object requests currently in flight (always [<= params.window]). *)

val scoreboard : t -> source array
(** Per-source scoreboard, sorted by replica id.  The array is live: the
    fetcher keeps mutating it. *)
