(** Hierarchical state-partition (Merkle) tree over the abstract objects.

    The abstract state is an array of objects; each leaf holds the digest of
    one object and each interior node the digest of its children's digests.
    A replica fetching state recurses down this hierarchy, descending only
    into partitions whose digest differs from its own, and finally fetches
    only the objects that are out of date or corrupt (Section 2.2).

    Levels are numbered from the root: level 0 is the root, [levels t - 1]
    is the leaf level. *)

type t

module Digest = Base_crypto.Digest_t

val create : n_leaves:int -> branching:int -> t
(** All leaves start as {!Digest.zero}. [branching >= 2]. *)

val n_leaves : t -> int

val branching : t -> int

val levels : t -> int
(** Number of levels including the leaf level (>= 1; 1 when the tree is a
    single leaf... never happens in practice since n_leaves > 1). *)

val set_leaf : t -> int -> Digest.t -> unit
(** Incrementally update one leaf and the digests on its path to the root. *)

val set_leaves : t -> (int * Digest.t) list -> unit
(** Bulk [set_leaf]: writes every leaf, then recomputes each touched
    interior node exactly once (bottom-up).  Produces the same tree as
    folding {!set_leaf} over the list, without re-hashing shared ancestors
    once per update — the difference between O(k log k) and O(k) node
    hashes for a k-leaf flush.  Later entries for a duplicate index win,
    as in the sequential fold. *)

val leaf : t -> int -> Digest.t

val root : t -> Digest.t

val node : t -> level:int -> index:int -> Digest.t

val width : t -> level:int -> int
(** Number of nodes at a level. *)

val children : t -> level:int -> index:int -> Digest.t array
(** Digests of the children of the node at [(level, index)]; the children
    live at [level + 1].  Raises [Invalid_argument] on the leaf level. *)

val child_span : t -> level:int -> index:int -> int * int
(** [(first, last)] indices at [level+1] covered by node [(level, index)]. *)

val copy : t -> t
(** Snapshot (used for checkpoints). *)

val equal_root : t -> t -> bool
