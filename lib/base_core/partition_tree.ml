module Digest = Base_crypto.Digest_t

(* [nodes.(0)] is the root level (one node), [nodes.(levels-1)] the leaves.
   Interior node (l, i) covers children (l+1, i*b .. min((i+1)*b, width)-1). *)
type t = { b : int; nodes : Digest.t array array }

(* Widths of each level, root first: e.g. 8 leaves at branching 4 gives
   [1; 2; 8].  The root is always a single node, even for one leaf. *)
let level_widths ~n_leaves ~branching =
  let rec up acc w =
    if w = 1 then acc else up (w :: acc) ((w + branching - 1) / branching)
  in
  1 :: up [] n_leaves

let create ~n_leaves ~branching =
  Base_util.Invariant.require (n_leaves >= 1) "Partition_tree.create: need at least one leaf";
  Base_util.Invariant.require (branching >= 2) "Partition_tree.create: branching must be >= 2";
  let widths = level_widths ~n_leaves ~branching in
  let nodes = Array.of_list (List.map (fun w -> Array.make w Digest.zero) widths) in
  let t = { b = branching; nodes } in
  (* Establish interior digests consistent with all-zero leaves. *)
  for l = Array.length nodes - 2 downto 0 do
    for i = 0 to Array.length nodes.(l) - 1 do
      let first = i * branching in
      let last = min ((i + 1) * branching) (Array.length nodes.(l + 1)) - 1 in
      let ds = List.init (last - first + 1) (fun k -> Digest.raw nodes.(l + 1).(first + k)) in
      nodes.(l).(i) <- Digest.of_list ds
    done
  done;
  t

let levels t = Array.length t.nodes

let n_leaves t = Array.length t.nodes.(levels t - 1)

let branching t = t.b

let width t ~level = Array.length t.nodes.(level)

let node t ~level ~index = t.nodes.(level).(index)

let leaf t i = t.nodes.(levels t - 1).(i)

let root t = t.nodes.(0).(0)

let child_span t ~level ~index =
  Base_util.Invariant.require (level < levels t - 1) "Partition_tree.child_span: leaf level";
  let first = index * t.b in
  let last = min ((index + 1) * t.b) (width t ~level:(level + 1)) - 1 in
  (first, last)

let children t ~level ~index =
  let first, last = child_span t ~level ~index in
  Array.init (last - first + 1) (fun k -> t.nodes.(level + 1).(first + k))

let recompute_node t ~level ~index =
  let first, last = child_span t ~level ~index in
  let ds = List.init (last - first + 1) (fun k -> Digest.raw t.nodes.(level + 1).(first + k)) in
  t.nodes.(level).(index) <- Digest.of_list ds

let set_leaf t i d =
  let leaf_level = levels t - 1 in
  t.nodes.(leaf_level).(i) <- d;
  let idx = ref i in
  for l = leaf_level - 1 downto 0 do
    idx := !idx / t.b;
    recompute_node t ~level:l ~index:!idx
  done

(* Bulk form of [set_leaf]: write every leaf first, then recompute each
   touched interior node once per level, bottom-up.  [set_leaf] in a loop
   re-hashes the shared ancestors once per leaf — O(k log k) node hashes for
   k updates — where one pass over the distinct parents is O(k + interior).
   The resulting digests are identical; only the work is deduplicated.  This
   is the path a post-reboot full rebuild and a checkpoint flush take. *)
let set_leaves t updates =
  match updates with
  | [] -> ()
  | [ (i, d) ] -> set_leaf t i d
  | _ ->
    let leaf_level = levels t - 1 in
    List.iter (fun (i, d) -> t.nodes.(leaf_level).(i) <- d) updates;
    if leaf_level > 0 then begin
      let parents idxs = List.sort_uniq Int.compare (List.map (fun i -> i / t.b) idxs) in
      let touched = ref (parents (List.map fst updates)) in
      for l = leaf_level - 1 downto 0 do
        List.iter (fun i -> recompute_node t ~level:l ~index:i) !touched;
        if l > 0 then touched := parents !touched
      done
    end

let copy t = { b = t.b; nodes = Array.map Array.copy t.nodes }

let equal_root a b = Digest.equal (root a) (root b)
