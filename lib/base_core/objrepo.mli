(** Library-side abstract-state bookkeeping: digests, partition tree and
    copy-on-write checkpoints.

    The library never stores the service state itself — the conformance
    wrapper does, concretely.  What the library keeps is (a) the digest of
    every abstract object, organised in the {!Partition_tree}, and (b) for
    each live checkpoint, lazily-made copies of the abstract objects that
    were modified after the checkpoint was taken (Section 2.2's
    copy-on-write scheme, driven by the [modify] upcall). *)

module Digest = Base_crypto.Digest_t

type t

type checkpoint = {
  seq : int;
  tree : Partition_tree.t;  (** partition tree snapshot at the checkpoint *)
  copies : (int, string) Hashtbl.t;  (** objects modified since, old values *)
  client_rows : (int * int64 * string) list;  (** last-reply table snapshot *)
}

type cow_stats = {
  mutable objects_copied : int;  (** total copy-on-write copies made *)
  mutable bytes_copied : int;
  mutable digests_recomputed : int;
}

val create : ?cache_objs:int -> wrapper:Service.wrapper -> branching:int -> unit -> t
(** Builds the initial tree by applying the abstraction function to every
    object (a full traversal, as at replica start-up).  [cache_objs]
    (default 256, [0] disables) bounds the digest-keyed leaf cache consulted
    by state transfer — see {!cache_find}. *)

val wrapper : t -> Service.wrapper

val n_objects : t -> int

val modify : t -> int -> unit
(** The [modify] upcall: called by the wrapper before changing object [i].
    Saves the current value into every live checkpoint that does not have a
    copy yet, records it in the leaf cache under its pre-modification
    digest, and marks the digest dirty. *)

val take_checkpoint : t -> seq:int -> client_rows:(int * int64 * string) list -> Digest.t
(** Refresh dirty digests, snapshot the tree, register the checkpoint and
    return the new root digest (the abstract-state component of the BFT
    checkpoint digest). *)

val discard_below : t -> int -> unit

val checkpoints : t -> checkpoint list
(** Live checkpoints, oldest first. *)

val find_checkpoint : t -> seq:int -> checkpoint option

val object_at : t -> seq:int -> int -> string option
(** Value of object [i] as of checkpoint [seq] (copy if modified since,
    otherwise the current value via the abstraction function).  [None] if
    no checkpoint is held at [seq] or [i] is out of range — the index
    usually comes off the wire, so the function is total over it. *)

val current_tree : t -> Partition_tree.t
(** The tree with all dirty digests refreshed. *)

val current_root : t -> Digest.t

val install : t -> (int * string) list -> unit
(** Inverse abstraction for a fetched object batch: first preserves the
    values being overwritten (copy-on-write into every live checkpoint
    without its own copy — a rollback install must not corrupt newer
    snapshots still served to other fetchers — and into the leaf cache),
    then calls the wrapper's [put_objs] once with the whole batch,
    refreshes the affected digests and caches the installed values. *)

(** {1 Digest-keyed leaf cache}

    A bounded FIFO cache of object values this replica has held, keyed by
    leaf digest (which covers the object index, so a hit is always for the
    right object).  Populated by {!modify} (the copy-on-write path: the old
    value under its old digest) and {!install} (fetched values); consulted
    by {!State_transfer} so a certified leaf whose value already passed
    through this replica — typically a checkpoint value that proactive
    recovery rolls back to while the replica keeps executing under load —
    installs without a network round trip. *)

val cache_find : t -> Digest.t -> string option
(** The cached object value whose leaf digest is exactly [digest], if the
    cache still holds it.  The digest key makes the value self-certifying:
    it is byte-for-byte the value the certified digest commits to. *)

val cache_put : t -> Digest.t -> string -> unit
(** Record [data] under its leaf [digest]; a duplicate key is ignored, and
    the oldest entry is evicted once the cache exceeds its capacity. *)

val cache_length : t -> int
(** Number of values currently cached (for tests and observability). *)

val rebuild_all_digests : t -> unit
(** Recompute every leaf digest via the abstraction function — the full
    traversal a replica performs after proactive-recovery reboot. *)

val stats : t -> cow_stats
