type wrapper = {
  name : string;
  n_objects : int;
  execute :
    client:int ->
    operation:string ->
    nondet:string ->
    read_only:bool ->
    modify:(int -> unit) ->
    string;
  get_obj : int -> string;
  put_objs : (int * string) list -> unit;
  restart : unit -> unit;
  propose_nondet : clock_us:int64 -> operation:string -> string;
  check_nondet : clock_us:int64 -> operation:string -> nondet:string -> bool;
  oids_of_op : operation:string -> int list;
}

(* The footprint every pre-sharding service declares: "no routing
   information" — the runtime maps it to shard 0, which owns the whole
   object space in unsharded configs. *)
let no_footprint ~operation:_ = []

let object_digest i data =
  let e = Base_codec.Xdr.encoder () in
  Base_codec.Xdr.u32 e i;
  Base_codec.Xdr.opaque e data;
  Base_crypto.Digest_t.of_string (Base_codec.Xdr.contents e)

let nondet_of_clock clock_us =
  let e = Base_codec.Xdr.encoder () in
  Base_codec.Xdr.i64 e clock_us;
  Base_codec.Xdr.contents e

let clock_of_nondet s =
  if String.length s = 0 then 0L
  else begin
    let d = Base_codec.Xdr.decoder s in
    Base_codec.Xdr.read_i64 d
  end

let default_check_nondet ~max_skew_us ~clock_us ~nondet =
  match clock_of_nondet nondet with
  | proposed ->
    let delta = Int64.abs (Int64.sub proposed clock_us) in
    Int64.compare delta max_skew_us <= 0
  | exception Base_codec.Xdr.Decode_error _ -> false
