module Digest = Base_crypto.Digest_t

type msg =
  | Fetch_head of { seq : int }
  | Head_reply of {
      seq : int;
      app_root : Digest.t;
      client_rows : (int * int64 * string) list;
    }
  | Fetch_meta of { seq : int; level : int; index : int }
  | Meta_reply of { seq : int; level : int; index : int; children : Digest.t array }
  | Fetch_obj of { seq : int; index : int; off : int; max_bytes : int }
  | Obj_reply of { seq : int; index : int; off : int; total : int; data : string }

(* Exact size of the XDR encoding produced by [rows_digest]: a u32 list
   header, then per row u32 client + i64 timestamp + length-prefixed opaque
   result padded to a 4-byte boundary.  Keeping this in lockstep with the
   encoder is what makes the simulator's bandwidth accounting honest. *)
let xdr_opaque_size s =
  let n = String.length s in
  4 + n + ((4 - (n mod 4)) mod 4)

let rows_size rows =
  List.fold_left (fun acc (_, _, res) -> acc + 4 + 8 + xdr_opaque_size res) 4 rows

let size = function
  | Fetch_head _ -> 16
  | Head_reply { client_rows; _ } -> 48 + rows_size client_rows
  | Fetch_meta _ -> 20
  | Meta_reply { children; _ } -> 24 + (32 * Array.length children)
  | Fetch_obj _ -> 24
  | Obj_reply { data; _ } -> 28 + String.length data

let kind_label = function
  | Fetch_head _ -> "FETCH-HEAD"
  | Head_reply _ -> "HEAD-REPLY"
  | Fetch_meta _ -> "FETCH-META"
  | Meta_reply _ -> "META-REPLY"
  | Fetch_obj _ -> "FETCH-OBJ"
  | Obj_reply _ -> "OBJ-REPLY"

let label = function
  | Fetch_head { seq } -> Printf.sprintf "FETCH-HEAD(n=%d)" seq
  | Head_reply { seq; _ } -> Printf.sprintf "HEAD-REPLY(n=%d)" seq
  | Fetch_meta { seq; level; index } -> Printf.sprintf "FETCH-META(n=%d,%d.%d)" seq level index
  | Meta_reply { seq; level; index; _ } ->
    Printf.sprintf "META-REPLY(n=%d,%d.%d)" seq level index
  | Fetch_obj { seq; index; off; _ } ->
    Printf.sprintf "FETCH-OBJ(n=%d,i=%d,o=%d)" seq index off
  | Obj_reply { seq; index; off; data; _ } ->
    Printf.sprintf "OBJ-REPLY(n=%d,i=%d,o=%d,%dB)" seq index off (String.length data)

let rows_digest rows =
  let e = Base_codec.Xdr.encoder () in
  Base_codec.Xdr.list e
    (fun e (c, ts, res) ->
      Base_codec.Xdr.u32 e c;
      Base_codec.Xdr.i64 e ts;
      Base_codec.Xdr.opaque e res)
    rows;
  Digest.of_string (Base_codec.Xdr.contents e)

let combined_digest ~app_root ~client_rows =
  Digest.combine [ app_root; rows_digest client_rows ]

(* --- server ---------------------------------------------------------------- *)

let serve repo msg =
  match msg with
  | Fetch_head { seq } -> (
    match Objrepo.find_checkpoint repo ~seq with
    | Some cp ->
      Some
        (Head_reply
           { seq; app_root = Partition_tree.root cp.Objrepo.tree; client_rows = cp.client_rows })
    | None -> None)
  | Fetch_meta { seq; level; index } -> (
    match Objrepo.find_checkpoint repo ~seq with
    | Some cp when level >= 0 && index >= 0
                   && level < Partition_tree.levels cp.Objrepo.tree - 1
                   && index < Partition_tree.width cp.Objrepo.tree ~level ->
      let children = Partition_tree.children cp.Objrepo.tree ~level ~index in
      Some (Meta_reply { seq; level; index; children })
    | Some _ | None -> None)
  | Fetch_obj { seq; index; off; max_bytes } ->
    if index < 0 || index >= Objrepo.n_objects repo then None
    else (
      match Objrepo.object_at repo ~seq index with
      | Some data ->
        let total = String.length data in
        if off < 0 || off > total || max_bytes <= 0 then None
        else
          let len = min max_bytes (total - off) in
          Some (Obj_reply { seq; index; off; total; data = String.sub data off len })
      | None -> None)
  | Head_reply _ | Meta_reply _ | Obj_reply _ -> None

(* --- fetcher ---------------------------------------------------------------- *)

type params = {
  window : int;
  chunk_bytes : int;
  strike_limit : int;
  max_backoff_rounds : int;
  max_obj_bytes : int;
}

let default_params =
  {
    window = 8;
    chunk_bytes = 4096;
    strike_limit = 3;
    max_backoff_rounds = 8;
    max_obj_bytes = 1 lsl 24;
  }

type source = {
  src_id : int;
  mutable out : int;
  mutable sent : int;
  mutable bytes : int;
  mutable strikes : int;
  mutable quarantine : int;
  mutable quarantines : int;
}

type stats = {
  mutable meta_fetched : int;
  mutable objects_fetched : int;
  mutable bytes_fetched : int;
  mutable chunks_fetched : int;
  mutable cache_hits : int;
  mutable retries : int;
  mutable quarantines : int;
  (* Replies whose payload failed digest verification against the certified
     target — the signature of a Byzantine or stale responder.  Exposed so
     the runtime can re-target a fetch instead of stalling on retries. *)
  mutable heads_rejected : int;
  mutable meta_rejected : int;
  mutable objects_rejected : int;
}

let rejected s = s.heads_rejected + s.meta_rejected + s.objects_rejected

(* Fetched objects install in ascending index order (indices are unique, so
   the payload never participates in the comparison). *)
let compare_obj (i, _) (j, _) = Int.compare i j

(* A unit of pipelined work: the head is broadcast outside the window (it is
   16 bytes and any of the f+1 certifying replicas can answer), so only meta
   and object-chunk requests are keyed here. *)
type rkey =
  | K_meta of int * int  (* level, index *)
  | K_obj of int * int  (* object index, chunk number *)

let rkey_equal a b =
  match (a, b) with
  | K_meta (l, i), K_meta (l', i') -> Int.equal l l' && Int.equal i i'
  | K_obj (i, c), K_obj (i', c') -> Int.equal i i' && Int.equal c c'
  | K_meta _, K_obj _ | K_obj _, K_meta _ -> false

type flight = { fl_key : rkey; fl_src : int; fl_round : int }

(* Reassembly state of one object being fetched in chunked ranges.  The
   shape ([of_total], and hence the chunk count) is unknown until the first
   reply and is itself unverified until the assembled object checks against
   the certified leaf digest — a lying server can at worst waste the
   bandwidth of one assembly round before it is struck. *)
type objfetch = {
  of_digest : Digest.t;
  mutable of_total : int;  (* -1 until the first reply fixes the shape *)
  mutable of_buf : Bytes.t;
  mutable of_have : bool array;  (* per-chunk received flags *)
  mutable of_srcs : int list;  (* contributors, newest first, deduplicated *)
}

type t = {
  repo : Objrepo.t;
  target_seq : int;
  target_digest : Digest.t;
  params : params;
  sources : source array;  (* sorted by id *)
  send : dst:int -> msg -> unit;
  trace : string -> unit;
  on_complete : seq:int -> app_root:Digest.t -> client_rows:(int * int64 * string) list -> unit;
  mutable app_root : Digest.t option;
  mutable client_rows : (int * int64 * string) list;
  (* Certified digests of tree nodes we are waiting on, keyed by (level, index). *)
  pending_meta : (int * int, Digest.t) Hashtbl.t;
  (* Chunked-fetch state of the objects we are waiting on, keyed by index. *)
  pending_objs : (int, objfetch) Hashtbl.t;
  fetched : (int, string) Hashtbl.t;
  queue : rkey Queue.t;  (* work admitted but not yet in flight *)
  mutable inflight : flight list;  (* newest first *)
  mutable n_inflight : int;
  mutable round : int;  (* retry rounds elapsed; stamps flights for timeout *)
  mutable done_ : bool;
  stats : stats;
}

let finished t = t.done_

let stats t = t.stats

let inflight t = t.n_inflight

let scoreboard t = t.sources

let find_source t id =
  let found = ref None in
  Array.iter (fun s -> if Int.equal s.src_id id then found := Some s) t.sources;
  !found

let n_chunks ~total ~chunk = max 1 ((total + chunk - 1) / chunk)

(* Is this key still worth sending?  Keys can go stale in the queue when a
   cache hit or another source satisfies the work first. *)
let still_wanted t key =
  match key with
  | K_meta (level, index) -> Hashtbl.mem t.pending_meta (level, index)
  | K_obj (index, c) -> (
    match Hashtbl.find_opt t.pending_objs index with
    | None -> false
    | Some ofe ->
      if ofe.of_total < 0 then c = 0
      else c < n_chunks ~total:ofe.of_total ~chunk:t.params.chunk_bytes && not ofe.of_have.(c))

let request_of t key =
  match key with
  | K_meta (level, index) -> Fetch_meta { seq = t.target_seq; level; index }
  | K_obj (index, c) ->
    Fetch_obj
      {
        seq = t.target_seq;
        index;
        off = c * t.params.chunk_bytes;
        max_bytes = t.params.chunk_bytes;
      }

(* Deterministic source choice: the available source with the fewest
   outstanding requests, breaking ties by fewest strikes then lowest id —
   this is what stripes a burst of requests across the whole group.  If
   every source is quarantined, the least-punished one is released instead
   of stalling the fetch. *)
let pick_source t =
  let better a b =
    match Int.compare a.out b.out with
    | 0 -> (
      match Int.compare a.strikes b.strikes with
      | 0 -> a.src_id < b.src_id
      | c -> c < 0)
    | c -> c < 0
  in
  let best = ref None in
  Array.iter
    (fun s ->
      if s.quarantine = 0 then
        match !best with
        | None -> best := Some s
        | Some b -> if better s b then best := Some s)
    t.sources;
  match !best with
  | Some s -> s
  | None ->
    let least = ref None in
    Array.iter
      (fun s ->
        match !least with
        | None -> least := Some s
        | Some b ->
          if s.quarantine < b.quarantine || (s.quarantine = b.quarantine && s.src_id < b.src_id)
          then least := Some s)
      t.sources;
    (match !least with
    | Some s ->
      s.quarantine <- 0;
      s
    | None -> Base_util.Invariant.violated "State_transfer: no fetch sources")

(* Admit queued work into the window. *)
let pump t =
  while (not t.done_) && t.n_inflight < t.params.window && not (Queue.is_empty t.queue) do
    let key = Queue.pop t.queue in
    if still_wanted t key then begin
      let s = pick_source t in
      s.out <- s.out + 1;
      s.sent <- s.sent + 1;
      t.inflight <- { fl_key = key; fl_src = s.src_id; fl_round = t.round } :: t.inflight;
      t.n_inflight <- t.n_inflight + 1;
      t.send ~dst:s.src_id (request_of t key)
    end
  done

(* Retire the flight carrying [key] (at most one exists). *)
let complete_flight t key =
  let found = ref false in
  t.inflight <-
    List.filter
      (fun fl ->
        if (not !found) && rkey_equal fl.fl_key key then begin
          found := true;
          t.n_inflight <- t.n_inflight - 1;
          (match find_source t fl.fl_src with
          | Some s -> s.out <- s.out - 1
          | None -> ());
          false
        end
        else true)
      t.inflight

(* Pull every assignment of [s] back into the queue (used when [s] is
   quarantined: its outstanding requests re-stripe over the other sources
   immediately instead of waiting out the retry timer). *)
let reassign_from t s =
  let mine, rest = List.partition (fun fl -> Int.equal fl.fl_src s.src_id) t.inflight in
  t.inflight <- rest;
  t.n_inflight <- t.n_inflight - List.length mine;
  s.out <- s.out - List.length mine;
  List.iter (fun fl -> Queue.add fl.fl_key t.queue) mine

(* One verification failure (or timeout) attributed to [from].  Reaching
   [strike_limit] quarantines the source for a capped-exponential number of
   retry rounds and re-stripes its outstanding work. *)
let strike t from =
  match find_source t from with
  | None -> ()
  | Some s ->
    s.strikes <- s.strikes + 1;
    if s.strikes >= t.params.strike_limit then begin
      s.strikes <- 0;
      s.quarantines <- s.quarantines + 1;
      s.quarantine <- min t.params.max_backoff_rounds (1 lsl min 6 s.quarantines);
      t.stats.quarantines <- t.stats.quarantines + 1;
      t.trace
        (Printf.sprintf "quarantine src=%d rounds=%d (total %d)" s.src_id s.quarantine
           s.quarantines);
      reassign_from t s
    end

(* A verified reply decays one strike: occasional timeout strikes against a
   healthy source must not accumulate into a quarantine. *)
let credit t from ~bytes =
  match find_source t from with
  | None -> ()
  | Some s ->
    s.bytes <- s.bytes + bytes;
    s.strikes <- max 0 (s.strikes - 1)

(* Transport accounting only — an accepted chunk of a multi-chunk object
   is NOT yet verified (only the assembled whole can be checked against
   the leaf digest), so it must not decay strikes: a liar whose corrupt
   chunks are each "accepted" would otherwise earn back every strike its
   rejected assemblies cost it and never be quarantined.  Strike decay for
   chunk contributors happens when their assembly verifies. *)
let note_bytes t from ~bytes =
  match find_source t from with None -> () | Some s -> s.bytes <- s.bytes + bytes

let broadcast_head t =
  Array.iter (fun s -> t.send ~dst:s.src_id (Fetch_head { seq = t.target_seq })) t.sources

let start ?(params = default_params) ?(trace = fun _ -> ()) ~repo ~sources ~target_seq
    ~target_digest ~send ~on_complete () =
  Base_util.Invariant.require (sources <> []) "State_transfer.start: no sources";
  let t =
    {
      repo;
      target_seq;
      target_digest;
      params;
      sources =
        Array.of_list
          (List.map
             (fun id ->
               { src_id = id; out = 0; sent = 0; bytes = 0; strikes = 0; quarantine = 0;
                 quarantines = 0 })
             (List.sort_uniq Int.compare sources));
      send;
      trace;
      on_complete;
      app_root = None;
      client_rows = [];
      pending_meta = Hashtbl.create 16;
      pending_objs = Hashtbl.create 64;
      fetched = Hashtbl.create 64;
      queue = Queue.create ();
      inflight = [];
      n_inflight = 0;
      round = 0;
      done_ = false;
      stats =
        {
          meta_fetched = 0;
          objects_fetched = 0;
          bytes_fetched = 0;
          chunks_fetched = 0;
          cache_hits = 0;
          retries = 0;
          quarantines = 0;
          heads_rejected = 0;
          meta_rejected = 0;
          objects_rejected = 0;
        };
    }
  in
  broadcast_head t;
  t

let local_tree t = Objrepo.current_tree t.repo

let maybe_complete t =
  if
    (not t.done_) && t.app_root <> None
    && Hashtbl.length t.pending_meta = 0
    && Hashtbl.length t.pending_objs = 0
  then begin
    t.done_ <- true;
    let objs = Hashtbl.fold (fun i data acc -> (i, data) :: acc) t.fetched [] in
    let objs = List.sort compare_obj objs in
    (* Invalidate stale local checkpoints before mutating the concrete
       state, then install the whole batch with one put_objs call. *)
    Objrepo.discard_below t.repo (t.target_seq + 1);
    if objs <> [] then Objrepo.install t.repo objs;
    let app_root = Option.get t.app_root in
    t.on_complete ~seq:t.target_seq ~app_root ~client_rows:t.client_rows
  end

(* Descend into a certified node: if our local digest already matches, the
   whole partition is up to date; if the leaf cache holds the certified
   value, install it without a fetch; otherwise queue the children request
   (or the first object chunk at the leaf level). *)
let expand t ~level ~index certified =
  let tree = local_tree t in
  let leaf_level = Partition_tree.levels tree - 1 in
  let local = Partition_tree.node tree ~level ~index in
  if not (Digest.equal local certified) then begin
    if level = leaf_level then begin
      if not (Hashtbl.mem t.pending_objs index) && not (Hashtbl.mem t.fetched index) then begin
        match Objrepo.cache_find t.repo certified with
        | Some data ->
          (* The certified value passed through this replica before (an old
             checkpoint value saved by copy-on-write, or a previous fetch):
             no network round trip needed. *)
          Hashtbl.replace t.fetched index data;
          t.stats.cache_hits <- t.stats.cache_hits + 1
        | None ->
          Hashtbl.replace t.pending_objs index
            { of_digest = certified; of_total = -1; of_buf = Bytes.empty; of_have = [||];
              of_srcs = [] };
          Queue.add (K_obj (index, 0)) t.queue
      end
    end
    else if not (Hashtbl.mem t.pending_meta (level, index)) then begin
      Hashtbl.replace t.pending_meta (level, index) certified;
      Queue.add (K_meta (level, index)) t.queue
    end
  end

(* The whole object [index] verified and is ready to install. *)
let accept_object t ~index ~data =
  Hashtbl.remove t.pending_objs index;
  Hashtbl.replace t.fetched index data;
  t.stats.objects_fetched <- t.stats.objects_fetched + 1;
  t.stats.bytes_fetched <- t.stats.bytes_fetched + String.length data

let add_contributor ofe from =
  if not (List.exists (fun s -> Int.equal s from) ofe.of_srcs) then
    ofe.of_srcs <- from :: ofe.of_srcs

(* The assembled bytes did not match the certified leaf digest: at least one
   contributor lied.  Strike them all (the honest ones decay the strike with
   their next verified reply), reset the assembly and re-stripe from chunk
   zero. *)
let reject_assembly t ~index ofe =
  t.stats.objects_rejected <- t.stats.objects_rejected + 1;
  t.trace
    (Printf.sprintf "obj %d assembly rejected (contributors: %s)" index
       (String.concat "," (List.map string_of_int (List.sort Int.compare ofe.of_srcs))));
  List.iter (fun s -> strike t s) (List.sort Int.compare ofe.of_srcs);
  ofe.of_total <- -1;
  ofe.of_buf <- Bytes.empty;
  ofe.of_have <- [||];
  ofe.of_srcs <- [];
  Queue.add (K_obj (index, 0)) t.queue

let handle_obj_reply t ~from ~index ~off ~total ~data =
  match Hashtbl.find_opt t.pending_objs index with
  | None -> ()  (* already satisfied (duplicate or unsolicited) *)
  | Some ofe ->
    let chunk = t.params.chunk_bytes in
    let reject () =
      t.stats.objects_rejected <- t.stats.objects_rejected + 1;
      strike t from
    in
    if off < 0 || total < 0 || total > t.params.max_obj_bytes || off mod chunk <> 0 then reject ()
    else begin
      let c = off / chunk in
      if ofe.of_total < 0 then begin
        (* First reply: it fixes the claimed shape.  Only chunk 0 is ever
           requested before the shape is known. *)
        if c <> 0 then ()
        else if total <= chunk then begin
          if
            String.length data = total
            && Digest.equal (Service.object_digest index data) ofe.of_digest
          then begin
            complete_flight t (K_obj (index, 0));
            credit t from ~bytes:total;
            accept_object t ~index ~data;
            maybe_complete t
          end
          else reject ()
        end
        else if String.length data <> chunk then reject ()
        else begin
          ofe.of_total <- total;
          ofe.of_buf <- Bytes.create total;
          ofe.of_have <- Array.make (n_chunks ~total ~chunk) false;
          Bytes.blit_string data 0 ofe.of_buf 0 chunk;
          ofe.of_have.(0) <- true;
          add_contributor ofe from;
          t.stats.chunks_fetched <- t.stats.chunks_fetched + 1;
          complete_flight t (K_obj (index, 0));
          note_bytes t from ~bytes:chunk;
          for c' = 1 to Array.length ofe.of_have - 1 do
            Queue.add (K_obj (index, c')) t.queue
          done
        end
      end
      else if total <> ofe.of_total then reject ()
      else begin
        let n = Array.length ofe.of_have in
        if c >= n || ofe.of_have.(c) then ()  (* duplicate: ignore *)
        else begin
          (* Recompute the offset from the validated chunk number: [c] is
             in-range here, so [off] is provably inside the buffer, which
             the wire value alone is not. *)
          let off = c * chunk in
          let expect = min chunk (ofe.of_total - off) in
          if String.length data <> expect then reject ()
          else begin
            Bytes.blit_string data 0 ofe.of_buf off expect;
            ofe.of_have.(c) <- true;
            add_contributor ofe from;
            t.stats.chunks_fetched <- t.stats.chunks_fetched + 1;
            complete_flight t (K_obj (index, c));
            note_bytes t from ~bytes:expect;
            if Array.for_all Fun.id ofe.of_have then begin
              let assembled = Bytes.to_string ofe.of_buf in
              if Digest.equal (Service.object_digest index assembled) ofe.of_digest then begin
                (* The assembly verified: only now do the chunk
                   contributors earn their strike decay. *)
                List.iter (fun s -> credit t s ~bytes:0) (List.sort Int.compare ofe.of_srcs);
                accept_object t ~index ~data:assembled;
                maybe_complete t
              end
              else reject_assembly t ~index ofe
            end
          end
        end
      end
    end

let handle_reply t ~from msg =
  if not t.done_ then begin
    (match msg with
    | Head_reply { seq; app_root; client_rows } when seq = t.target_seq && t.app_root = None ->
      let combined = Digest.combine [ app_root; rows_digest client_rows ] in
      if Digest.equal combined t.target_digest then begin
        t.app_root <- Some app_root;
        t.client_rows <- client_rows;
        credit t from ~bytes:0;
        expand t ~level:0 ~index:0 app_root;
        maybe_complete t
      end
      else begin
        (* A head that does not verify against the certified checkpoint
           digest: Byzantine or stale responder.  Count it so the runtime
           can re-target instead of stalling on blind retries. *)
        t.stats.heads_rejected <- t.stats.heads_rejected + 1;
        strike t from
      end
    | Meta_reply { seq; level; index; children } when seq = t.target_seq -> (
      match Hashtbl.find_opt t.pending_meta (level, index) with
      | Some certified
        when Digest.equal (Digest.of_list (Array.to_list (Array.map Digest.raw children))) certified
        ->
        Hashtbl.remove t.pending_meta (level, index);
        complete_flight t (K_meta (level, index));
        credit t from ~bytes:0;
        t.stats.meta_fetched <- t.stats.meta_fetched + 1;
        let tree = local_tree t in
        let first, _last = Partition_tree.child_span tree ~level ~index in
        Array.iteri (fun k d -> expand t ~level:(level + 1) ~index:(first + k) d) children;
        maybe_complete t
      | Some _ ->
        t.stats.meta_rejected <- t.stats.meta_rejected + 1;
        strike t from
      | None -> ())
    | Obj_reply { seq; index; off; total; data } when seq = t.target_seq ->
      handle_obj_reply t ~from ~index ~off ~total ~data
    | Head_reply _ | Meta_reply _ | Obj_reply _
    | Fetch_head _ | Fetch_meta _ | Fetch_obj _ -> ());
    pump t
  end

let retry t =
  if not t.done_ then begin
    t.stats.retries <- t.stats.retries + 1;
    t.round <- t.round + 1;
    Array.iter (fun s -> if s.quarantine > 0 then s.quarantine <- s.quarantine - 1) t.sources;
    if t.app_root = None then broadcast_head t;
    (* Flights armed before the previous round have had at least one full
       retry period to answer: count a timeout strike against the slow
       source and re-stripe the request.  (A flight sent just before this
       tick is NOT stale — it gets the next full round.) *)
    let stale, live = List.partition (fun fl -> fl.fl_round < t.round - 1) t.inflight in
    t.inflight <- live;
    t.n_inflight <- t.n_inflight - List.length stale;
    List.iter
      (fun fl ->
        (match find_source t fl.fl_src with Some s -> s.out <- s.out - 1 | None -> ());
        Queue.add fl.fl_key t.queue)
      stale;
    List.iter (fun fl -> strike t fl.fl_src) stale;
    if stale <> [] then
      t.trace (Printf.sprintf "retry round %d: %d timed-out requests re-striped" t.round
                 (List.length stale));
    pump t
  end
