module Digest = Base_crypto.Digest_t

let debug = ref false

type msg =
  | Fetch_head of { seq : int }
  | Head_reply of {
      seq : int;
      app_root : Digest.t;
      client_rows : (int * int64 * string) list;
    }
  | Fetch_meta of { seq : int; level : int; index : int }
  | Meta_reply of { seq : int; level : int; index : int; children : Digest.t array }
  | Fetch_obj of { seq : int; index : int }
  | Obj_reply of { seq : int; index : int; data : string }

(* Exact size of the XDR encoding produced by [rows_digest]: a u32 list
   header, then per row u32 client + i64 timestamp + length-prefixed opaque
   result padded to a 4-byte boundary.  Keeping this in lockstep with the
   encoder is what makes the simulator's bandwidth accounting honest. *)
let xdr_opaque_size s =
  let n = String.length s in
  4 + n + ((4 - (n mod 4)) mod 4)

let rows_size rows =
  List.fold_left (fun acc (_, _, res) -> acc + 4 + 8 + xdr_opaque_size res) 4 rows

let size = function
  | Fetch_head _ -> 16
  | Head_reply { client_rows; _ } -> 48 + rows_size client_rows
  | Fetch_meta _ -> 20
  | Meta_reply { children; _ } -> 24 + (32 * Array.length children)
  | Fetch_obj _ -> 16
  | Obj_reply { data; _ } -> 20 + String.length data

let label = function
  | Fetch_head { seq } -> Printf.sprintf "FETCH-HEAD(n=%d)" seq
  | Head_reply { seq; _ } -> Printf.sprintf "HEAD-REPLY(n=%d)" seq
  | Fetch_meta { seq; level; index } -> Printf.sprintf "FETCH-META(n=%d,%d.%d)" seq level index
  | Meta_reply { seq; level; index; _ } ->
    Printf.sprintf "META-REPLY(n=%d,%d.%d)" seq level index
  | Fetch_obj { seq; index } -> Printf.sprintf "FETCH-OBJ(n=%d,i=%d)" seq index
  | Obj_reply { seq; index; data } ->
    Printf.sprintf "OBJ-REPLY(n=%d,i=%d,%dB)" seq index (String.length data)

let rows_digest rows =
  let e = Base_codec.Xdr.encoder () in
  Base_codec.Xdr.list e
    (fun e (c, ts, res) ->
      Base_codec.Xdr.u32 e c;
      Base_codec.Xdr.i64 e ts;
      Base_codec.Xdr.opaque e res)
    rows;
  Digest.of_string (Base_codec.Xdr.contents e)

let combined_digest ~app_root ~client_rows =
  Digest.combine [ app_root; rows_digest client_rows ]

(* --- server ---------------------------------------------------------------- *)

let serve repo msg =
  match msg with
  | Fetch_head { seq } -> (
    match Objrepo.find_checkpoint repo ~seq with
    | Some cp ->
      Some
        (Head_reply
           { seq; app_root = Partition_tree.root cp.Objrepo.tree; client_rows = cp.client_rows })
    | None -> None)
  | Fetch_meta { seq; level; index } -> (
    match Objrepo.find_checkpoint repo ~seq with
    | Some cp when level < Partition_tree.levels cp.Objrepo.tree - 1
                   && index < Partition_tree.width cp.Objrepo.tree ~level ->
      let children = Partition_tree.children cp.Objrepo.tree ~level ~index in
      Some (Meta_reply { seq; level; index; children })
    | Some _ | None -> None)
  | Fetch_obj { seq; index } -> (
    match Objrepo.object_at repo ~seq index with
    | Some data -> Some (Obj_reply { seq; index; data })
    | None -> None)
  | Head_reply _ | Meta_reply _ | Obj_reply _ -> None

(* --- fetcher ---------------------------------------------------------------- *)

type stats = {
  mutable meta_fetched : int;
  mutable objects_fetched : int;
  mutable bytes_fetched : int;
  mutable retries : int;
  (* Replies whose payload failed digest verification against the certified
     target — the signature of a Byzantine or stale responder.  Exposed so
     the runtime can re-target a fetch instead of stalling on retries. *)
  mutable heads_rejected : int;
  mutable meta_rejected : int;
  mutable objects_rejected : int;
}

let rejected s = s.heads_rejected + s.meta_rejected + s.objects_rejected

(* Fetched objects install in ascending index order (indices are unique, so
   the payload never participates in the comparison). *)
let compare_obj (i, _) (j, _) = Int.compare i j

type t = {
  repo : Objrepo.t;
  target_seq : int;
  target_digest : Digest.t;
  send : msg -> unit;
  on_complete : seq:int -> app_root:Digest.t -> client_rows:(int * int64 * string) list -> unit;
  mutable app_root : Digest.t option;
  mutable client_rows : (int * int64 * string) list;
  (* Certified digests of tree nodes we are waiting on, keyed by (level, index). *)
  pending_meta : (int * int, Digest.t) Hashtbl.t;
  (* Certified leaf digests of objects we are waiting on. *)
  pending_objs : (int, Digest.t) Hashtbl.t;
  fetched : (int, string) Hashtbl.t;
  mutable done_ : bool;
  stats : stats;
}

let finished t = t.done_

let stats t = t.stats

let start ~repo ~target_seq ~target_digest ~send ~on_complete =
  let t =
    {
      repo;
      target_seq;
      target_digest;
      send;
      on_complete;
      app_root = None;
      client_rows = [];
      pending_meta = Hashtbl.create 16;
      pending_objs = Hashtbl.create 64;
      fetched = Hashtbl.create 64;
      done_ = false;
      stats =
        {
          meta_fetched = 0;
          objects_fetched = 0;
          bytes_fetched = 0;
          retries = 0;
          heads_rejected = 0;
          meta_rejected = 0;
          objects_rejected = 0;
        };
    }
  in
  send (Fetch_head { seq = target_seq });
  t

let local_tree t = Objrepo.current_tree t.repo

let maybe_complete t =
  if
    (not t.done_) && t.app_root <> None
    && Hashtbl.length t.pending_meta = 0
    && Hashtbl.length t.pending_objs = 0
  then begin
    t.done_ <- true;
    let objs = Hashtbl.fold (fun i data acc -> (i, data) :: acc) t.fetched [] in
    let objs = List.sort compare_obj objs in
    (* Invalidate stale local checkpoints before mutating the concrete
       state, then install the whole batch with one put_objs call. *)
    Objrepo.discard_below t.repo (t.target_seq + 1);
    if objs <> [] then Objrepo.install t.repo objs;
    let app_root = Option.get t.app_root in
    t.on_complete ~seq:t.target_seq ~app_root ~client_rows:t.client_rows
  end

(* Descend into a certified node: if our local digest already matches, the
   whole partition is up to date; otherwise request its children (or the
   object itself at the leaf level). *)
let expand t ~level ~index certified =
  let tree = local_tree t in
  let leaf_level = Partition_tree.levels tree - 1 in
  let local = Partition_tree.node tree ~level ~index in
  if not (Digest.equal local certified) then begin
    if level = leaf_level then begin
      if not (Hashtbl.mem t.pending_objs index) then begin
        Hashtbl.replace t.pending_objs index certified;
        t.send (Fetch_obj { seq = t.target_seq; index })
      end
    end
    else if not (Hashtbl.mem t.pending_meta (level, index)) then begin
      Hashtbl.replace t.pending_meta (level, index) certified;
      t.send (Fetch_meta { seq = t.target_seq; level; index })
    end
  end

let handle_reply t msg =
  if not t.done_ then begin
    match msg with
    | Head_reply { seq; app_root; client_rows } when seq = t.target_seq && t.app_root = None ->
      let combined = Digest.combine [ app_root; rows_digest client_rows ] in
      if Digest.equal combined t.target_digest then begin
        t.app_root <- Some app_root;
        t.client_rows <- client_rows;
        expand t ~level:0 ~index:0 app_root;
        maybe_complete t
      end
      else
        (* A head that does not verify against the certified checkpoint
           digest: Byzantine or stale responder.  Count it so the runtime
           can re-target instead of stalling on blind retries. *)
        t.stats.heads_rejected <- t.stats.heads_rejected + 1
    | Meta_reply { seq; level; index; children } when seq = t.target_seq -> (
      match Hashtbl.find_opt t.pending_meta (level, index) with
      | Some certified
        when Digest.equal (Digest.of_list (Array.to_list (Array.map Digest.raw children))) certified
        ->
        Hashtbl.remove t.pending_meta (level, index);
        t.stats.meta_fetched <- t.stats.meta_fetched + 1;
        let tree = local_tree t in
        let first, _last = Partition_tree.child_span tree ~level ~index in
        Array.iteri (fun k d -> expand t ~level:(level + 1) ~index:(first + k) d) children;
        maybe_complete t
      | Some _ ->
        t.stats.meta_rejected <- t.stats.meta_rejected + 1
      | None -> ())
    | Obj_reply { seq; index; data } when seq = t.target_seq -> (
      (if !debug then
         match Hashtbl.find_opt t.pending_objs index with
         | Some certified when not (Digest.equal (Service.object_digest index data) certified) ->
           Printf.eprintf "  [st] obj %d reply REJECTED: got %s want %s (%d B)\n%!" index
             (Base_util.Hex.short (Digest.raw (Service.object_digest index data)))
             (Base_util.Hex.short (Digest.raw certified))
             (String.length data)
         | _ -> ());
      match Hashtbl.find_opt t.pending_objs index with
      | Some certified when Digest.equal (Service.object_digest index data) certified ->
        Hashtbl.remove t.pending_objs index;
        Hashtbl.replace t.fetched index data;
        t.stats.objects_fetched <- t.stats.objects_fetched + 1;
        t.stats.bytes_fetched <- t.stats.bytes_fetched + String.length data;
        maybe_complete t
      | Some _ ->
        t.stats.objects_rejected <- t.stats.objects_rejected + 1
      | None -> ())
    | Head_reply _ | Meta_reply _ | Obj_reply _
    | Fetch_head _ | Fetch_meta _ | Fetch_obj _ -> ()
  end

let dump t =
  let objs = Hashtbl.fold (fun i _ acc -> string_of_int i :: acc) t.pending_objs [] in
  Printf.eprintf "  [st] target=%d head=%b pending_meta=%d pending_objs=[%s] fetched=%d\n%!"
    t.target_seq (t.app_root <> None) (Hashtbl.length t.pending_meta)
    (String.concat "," objs) (Hashtbl.length t.fetched)

let retry t =
  if !debug then dump t;
  if not t.done_ then begin
    t.stats.retries <- t.stats.retries + 1;
    if t.app_root = None then t.send (Fetch_head { seq = t.target_seq });
    Hashtbl.iter (fun (level, index) _ -> t.send (Fetch_meta { seq = t.target_seq; level; index }))
      t.pending_meta;
    Hashtbl.iter (fun index _ -> t.send (Fetch_obj { seq = t.target_seq; index })) t.pending_objs
  end
