(** The BASE service interface: what a conformance wrapper provides.

    This is the OCaml rendering of the library interface in Figure 1 of the
    paper.  A conformance wrapper makes an off-the-shelf implementation
    behave according to the common abstract specification [S]:

    - [execute] is the execution upcall.  It receives the operation, the
      agreed non-deterministic values chosen by the primary, and a [modify]
      callback that {e must} be invoked with the index of every abstract
      object the operation is about to change (this drives the library's
      copy-on-write checkpointing).
    - [get_obj] is the abstraction function, per object: it computes the
      value of abstract object [i] from the concrete state.
    - [put_objs] is one inverse of the abstraction function: it updates the
      concrete state so that the given abstract objects take the given
      values.  The library always calls it with a set of objects that takes
      the abstract state to a consistent checkpoint value.
    - [restart] simulates rebooting the underlying implementation during
      proactive recovery: volatile identifiers (file handles, caches) are
      lost and the conformance rep is rebuilt from its persistent map.
    - [propose_nondet]/[check_nondet] implement the agreement mechanism for
      non-deterministic values such as time-last-modified: the primary
      proposes a value derived from its local clock and backups sanity-check
      it.
    - [oids_of_op] is the {e footprint} hook sharded deployments route by:
      the abstract object ids an operation (statically) touches, derived
      from the encoded operation alone, before execution.  It must be a
      pure function of the operation string so every client and replica
      computes the same footprint.  Returning [[]] means "no routing
      information" and maps the operation to shard 0 (see doc/sharding.md). *)

type wrapper = {
  name : string;  (** which implementation this replica runs *)
  n_objects : int;  (** size of the abstract-state object array *)
  execute :
    client:int ->
    operation:string ->
    nondet:string ->
    read_only:bool ->
    modify:(int -> unit) ->
    string;
  get_obj : int -> string;
  put_objs : (int * string) list -> unit;
  restart : unit -> unit;
  propose_nondet : clock_us:int64 -> operation:string -> string;
  check_nondet : clock_us:int64 -> operation:string -> nondet:string -> bool;
  oids_of_op : operation:string -> int list;
}

val no_footprint : operation:string -> int list
(** The default footprint hook: always [[]] ("no routing information",
    operation handled by shard 0) — what every unsharded service uses. *)

val object_digest : int -> string -> Base_crypto.Digest_t.t
(** Digest of one abstract object, bound to its index; the leaf value of the
    state-partition tree. *)

val nondet_of_clock : int64 -> string
(** Canonical encoding of a timestamp proposal. *)

val clock_of_nondet : string -> int64
(** Inverse of {!nondet_of_clock}; returns 0 on the empty string (read-only
    execution). *)

val default_check_nondet : max_skew_us:int64 -> clock_us:int64 -> nondet:string -> bool
(** Accept a proposal iff it is within [max_skew_us] of the local clock — the
    generic backup-side validation. *)
