(** The BASE runtime: a complete replicated system inside the simulator.

    [create] builds n = 3f+1 replicas — each running its own conformance
    wrapper, possibly over a {e different} service implementation — plus the
    requested clients, and wires them to the discrete-event network: BFT
    protocol messages, state-transfer messages, timers, MAC keychains, and
    the proactive-recovery watchdog.

    This is the deployment surface a user of the library sees: build a
    system from wrappers, add clients, call {!invoke}. *)

module Digest = Base_crypto.Digest_t

type msg =
  | Bft of Base_bft.Message.envelope
  | St of { from : int; shard : int; body : State_transfer.msg }
      (** [shard] routes the transfer to the per-shard replica cell that
          owns the checkpoint being fetched; always [0] when unsharded *)
  | Raw of { from : int; shard : int; macs : string array; bytes : string }
      (** a protocol message corrupted in flight, delivered as wire bytes;
          replicas feed it to {!Base_bft.Replica.receive_wire}, which counts
          and rejects it *)

exception Stalled of string
(** The simulation could not make the requested progress: the event queue
    went quiescent or the event budget ran out.  Raised by the non-[try_]
    drivers only; never from a message handler. *)

exception Internal_error of string
(** Broken runtime wiring (a node callback ran before construction
    finished).  Unreachable by design. *)

type recovery_stats = {
  mutable recoveries : int;
  mutable last_objects_fetched : int;
  mutable last_bytes_fetched : int;
  mutable total_objects_fetched : int;
  mutable total_bytes_fetched : int;
}

(** One proactive-recovery episode: either reboot-in-place then
    differential fetch, or ([tl_migrated]) a standby promotion then a
    catch-up fetch.  Timestamps are simulation time; [-1L] means the
    milestone was not reached (run ended mid-episode).  Consume durations
    through {!timeline_window_us} / {!timeline_handoff_us} — they are total
    over the sentinels — rather than subtracting raw fields. *)
type recovery_timeline = {
  tl_rid : int;
  tl_migrated : bool;
  tl_start_us : int64;
  mutable tl_reboot_done_us : int64;  (** in-place episodes *)
  mutable tl_promote_done_us : int64;  (** migration episodes *)
  mutable tl_staleness_seqs : int;
      (** migration: certified checkpoint head minus the promoted standby's
          synced seqno at promotion time ([-1] until promotion completes) *)
  mutable tl_staleness_us : int64;
      (** migration: promotion time minus the standby's last completed
          shadow sync *)
  mutable tl_fetch_done_us : int64;
      (** also set, equal to the handoff milestone, when there was nothing
          to fetch *)
  mutable tl_objects : int;
  mutable tl_bytes : int;
}

val timeline_window_us : recovery_timeline -> int option
(** The episode's window of vulnerability: start to fetch-done.  [None] if
    the episode never completed. *)

val timeline_handoff_us : recovery_timeline -> int option
(** Start to the role-switch milestone — reboot-done for in-place episodes,
    promote-done for migrations.  [None] if not reached. *)

(** Shadow-sync state of one warm standby. *)
type standby_sync = {
  mutable ss_synced_seq : int;
      (** seqno of the last fully shadow-synced checkpoint; [-1] before the
          first sync completes (and again right after the machine is wiped
          on demotion) *)
  mutable ss_synced_at_us : int64;
  mutable ss_root : Digest.t;  (** abstract-state root at [ss_synced_seq] *)
  mutable ss_client_rows : (int * int64 * string) list;
  mutable ss_promotions : int;  (** times this pool slot was promoted *)
}

type replica_node = {
  rid : int;
  shard : int;
      (** the agreement instance this cell serves; a physical node hosts one
          cell per shard, all sharing its node id on the network *)
  replica : Base_bft.Replica.t;
  mutable repo : Objrepo.t;
  mutable wrapper : Service.wrapper;
      (** [repo]/[wrapper] are mutable because promotion swaps them between
          the slot node and the standby node — the warm state takes over the
          slot identity, the suspect state is demoted for wiping *)
  standby : standby_sync option;  (** [Some] iff this node is a warm standby *)
  mutable fetcher : State_transfer.t option;
  mutable st_retries : int;  (** retries of the current fetch before re-targeting *)
  mutable st_progress : int;
      (** progress mark (sum of fetch counters) at the last retry round *)
  mutable st_stalled : int;
      (** consecutive retry rounds without progress; 3 triggers an early
          re-target (the target was likely garbage-collected under load) *)
  mutable recovering : bool;
  recovery_stats : recovery_stats;
  mutable timeline : recovery_timeline option;
}

val msg_size : msg -> int
(** Wire-size estimate, for building a custom engine config. *)

val msg_label : msg -> string

val msg_kind : msg -> string
(** Constant per-constructor tag ("PRE-PREPARE", "FETCH-OBJ", "RAW"):
    the allocation-free accounting key.  Custom engine configs should set
    [Engine.kind_of] to this — the default derives the kind by formatting
    the full label on every send. *)

type t

val create :
  ?engine_config:msg Base_sim.Engine.config ->
  ?profile:Base_obs.Profile.t ->
  ?branching:int ->
  config:Base_bft.Types.config ->
  make_wrapper:(int -> Service.wrapper) ->
  n_clients:int ->
  unit ->
  t
(** [make_wrapper i] supplies the conformance wrapper run by replica [i] —
    pass different implementations for opportunistic N-version programming.
    [branching] is the partition-tree fan-out (default 16).  Each replica's
    {!Objrepo} leaf cache is sized by [config.st_cache_objs], and its
    state-transfer pipeline by [config.st_window] / [config.st_chunk_bytes].

    When [config.shard_bounds] names S > 1 shards, every physical node runs
    S replica cells — one agreement instance per shard, each over an
    index-shifted view of the node's single wrapper — and clients route each
    request by its object footprint ({!Service.wrapper.oids_of_op}).
    Multi-object operations spanning shards commit through the runtime's
    deterministic two-phase protocol (see [doc/sharding.md]).  Sharded
    systems require [config.s = 0] (no warm-standby pool) and every shard to
    own at least one object of [make_wrapper 0]'s space.

    [profile] is shared by every replica, client and the engine (same
    aggregation model as the metrics registry); the default is a fresh
    disabled instance — pass one built with a real clock and
    {!Base_obs.Profile.enable} it to collect per-phase timings. *)

val engine : t -> msg Base_sim.Engine.t

val config : t -> Base_bft.Types.config

val replica : t -> int -> replica_node
(** Shard-0 cell of replica [rid] — the whole node when unsharded. *)

val replicas : t -> replica_node array
(** The shard-0 row of cells (all active nodes when unsharded). *)

val n_shards : t -> int
(** Number of agreement instances; 1 when unsharded. *)

val shard_replica : t -> shard:int -> int -> replica_node
(** The cell of replica [rid] serving [shard]. *)

val standbys : t -> replica_node array
(** The warm pool, indexed [0 .. s-1]; node ids are [n .. n+s-1]. *)

val standby : t -> int -> replica_node
(** Standby by {e node id} (in [n .. n+s-1]). *)

val client : t -> int -> Base_bft.Client.t
(** Client by index [0 .. n_clients-1]. *)

val invoke :
  t -> client:int -> ?read_only:bool -> operation:string -> (string -> unit) -> unit
(** Asynchronous invocation through the client's protocol stack. *)

val invoke_sync : t -> client:int -> ?read_only:bool -> operation:string -> unit -> string
(** Run the simulation until the operation completes and return its result.
    Raises {!Stalled} if the simulation goes quiescent or exceeds its event
    budget first. *)

val try_invoke_sync :
  ?max_events:int ->
  t ->
  client:int ->
  ?read_only:bool ->
  operation:string ->
  unit ->
  (string, string) result
(** Like {!invoke_sync} but a stall is data, not an exception — the form
    chaos experiments use to count liveness losses. *)

val run_until_idle : ?max_events:int -> t -> unit
(** Run until all clients have no outstanding operations.  Raises {!Stalled}
    on a stall. *)

val try_run_until_idle : ?max_events:int -> t -> (unit, string) result

val now : t -> Base_sim.Sim_time.t

val set_behavior : ?shard:int -> t -> int -> Base_bft.Replica.behavior -> unit
(** Fault-injection behaviour of replica [rid]; [?shard] restricts it to one
    agreement instance's cell, the default applies it to every cell the node
    hosts. *)

(** {1 Proactive recovery} *)

val enable_proactive_recovery :
  ?reboot_us:int -> ?promote_us:int -> ?migrate:bool -> period_us:int -> t -> unit
(** Stagger watchdog-driven recoveries so each replica recovers once every
    [period_us], with replicas offset by [period_us / n]; the window of
    vulnerability is roughly [2 * period_us] (a replica may be compromised
    just after its recovery).  [reboot_us] is the simulated reboot time
    (default 2 s).

    With [migrate = true] (and a non-empty standby pool) the watchdog
    recovers by {e migration}: it promotes the freshest warm standby into
    the slot instead of rebooting in place, shrinking the window from
    reboot-plus-fetch to the role-switch handshake [promote_us] (default
    30 ms) plus a small catch-up fetch.  When no standby is promotable the
    watchdog falls back to in-place recovery. *)

val disable_proactive_recovery : t -> unit
(** Stop scheduling further watchdog recoveries (in-flight ones finish). *)

val recover_now : ?reboot_us:int -> t -> int -> unit
(** Force one replica through the in-place recovery procedure immediately. *)

val promote_now : ?promote_us:int -> t -> int -> unit
(** Migration recovery of slot [rid] right now: promote the freshest
    promotable standby into it (in-place fallback when none exists).  The
    demoted machine joins the pool under the standby's id with its state
    wiped, and re-syncs at leisure. *)

(** {1 Chaos}

    Scheduled fault injection, driven by a declarative
    {!Base_sim.Faultplan}.  Every fault draws its randomness from the
    engine's seeded PRNG, so a chaos run is as reproducible as a healthy
    one. *)

val apply_faultplan : t -> Base_sim.Faultplan.t -> unit
(** Schedule every event of the plan, with [at_us] offsets measured from
    the moment of this call.  Crash/reboot map to node up/down (plus timer
    re-arming on reboot), partitions and link faults map to the engine's
    scheduled windows, [behavior] maps onto
    {!Base_bft.Replica.set_behavior}, and [attack-preprepare] arms the
    Byzantine-primary adversary: while its window is open, pre-prepares
    sent by the attacked node are muted per-destination with the given
    probability (omission equivocation) and survivors are delayed.  Muted
    and delayed pre-prepares are counted as [adversary.pp_muted] /
    [adversary.pp_delayed]; corrupted deliveries as
    [engine.corrupted_msgs]. *)

val enable_net_trace : t -> unit
(** Mirror the engine's free-form tracer lines into the structured
    {!trace} ring as ["net"] events — one shared sink for both trace
    streams.  Composes with any other tracer registered on the engine. *)

(** {1 Observability}

    Every value below is a pure function of the simulation seed: metrics
    are driven by the virtual clock, traces carry virtual timestamps, and
    all JSON renders with sorted keys — two runs with the same seed export
    byte-identical reports. *)

val profile : t -> Base_obs.Profile.t
(** The shared profiling harness: protocol-phase probes [bft.verify] /
    [bft.seal] / [bft.handle] / [bft.execute], client-side [client.verify] /
    [client.seal], and the engine's [engine.send] / [engine.dispatch].
    Disabled (near-zero overhead) unless the caller enables it. *)

val metrics : t -> Base_obs.Metrics.t
(** The system-wide registry: per-phase replica histograms
    ([bft.phase.*_us], [bft.view_change_us], [bft.checkpoint_interval_us])
    aggregated across the whole group, plus the state-transfer pipeline
    series — [base.st.inflight] (peak requests in flight),
    [base.st.cache_hits], [base.st.source_quarantined] and the per-source
    load-spread counters [base.st.source_bytes.<rid>]. *)

val trace : t -> Base_obs.Trace.t
(** Structured runtime events: [recovery.start] / [recovery.reboot_done] /
    [recovery.fetch_done], [st.retry] / [st.reject] / [st.retarget], and
    the fetcher's own diagnostics as [st.debug] (quarantines, rejected
    chunk assemblies, timeout re-stripes). *)

val st_totals : t -> State_transfer.stats
(** State-transfer traffic summed over every fetch by every replica,
    including fetchers already discarded. *)

val recovery_timelines : t -> recovery_timeline list
(** Every recovery episode so far, oldest first. *)

val metrics_report : t -> Base_obs.Json.t
(** One deterministic report object: network totals and per-label
    breakdowns, queue depths, the metrics registry, recovery timelines and
    state-transfer totals. *)
