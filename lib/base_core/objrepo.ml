module Digest = Base_crypto.Digest_t

type checkpoint = {
  seq : int;
  tree : Partition_tree.t;
  copies : (int, string) Hashtbl.t;
  client_rows : (int * int64 * string) list;
}

type cow_stats = {
  mutable objects_copied : int;
  mutable bytes_copied : int;
  mutable digests_recomputed : int;
}

type t = {
  wrapper : Service.wrapper;
  tree : Partition_tree.t;
  dirty : (int, unit) Hashtbl.t;
  mutable cps : checkpoint list;  (* oldest first *)
  stats : cow_stats;
  (* Digest-keyed leaf cache: object values this replica has held before,
     keyed by the raw leaf digest (which covers the object index, so an
     entry can only ever hit on the object it was cached for).  Entries are
     inserted on copy-on-write [modify] (the pre-modification value under
     its pre-modification digest) and on [install] (fetched values), and
     evicted FIFO at [cache_cap].  State transfer consults it so a
     certified leaf whose value passed through this replica — the common
     case when proactive recovery rolls a loaded replica back to the last
     certified checkpoint — installs without a network fetch. *)
  cache : (string, string) Hashtbl.t;
  cache_fifo : string Queue.t;
  cache_cap : int;
}

let leaf_update t i =
  let data = t.wrapper.Service.get_obj i in
  t.stats.digests_recomputed <- t.stats.digests_recomputed + 1;
  (i, Service.object_digest i data)

let create ?(cache_objs = 256) ~wrapper ~branching () =
  let t =
    {
      wrapper;
      tree = Partition_tree.create ~n_leaves:wrapper.Service.n_objects ~branching;
      dirty = Hashtbl.create 64;
      cps = [];
      stats = { objects_copied = 0; bytes_copied = 0; digests_recomputed = 0 };
      cache = Hashtbl.create 64;
      cache_fifo = Queue.create ();
      cache_cap = max 0 cache_objs;
    }
  in
  Partition_tree.set_leaves t.tree (List.init wrapper.Service.n_objects (leaf_update t));
  t

let wrapper t = t.wrapper

let n_objects t = t.wrapper.Service.n_objects

let cache_put t digest data =
  if t.cache_cap > 0 then begin
    let k = Digest.raw digest in
    if not (Hashtbl.mem t.cache k) then begin
      Hashtbl.replace t.cache k data;
      Queue.add k t.cache_fifo;
      if Queue.length t.cache_fifo > t.cache_cap then
        Hashtbl.remove t.cache (Queue.pop t.cache_fifo)
    end
  end

let cache_find t digest = Hashtbl.find_opt t.cache (Digest.raw digest)

let cache_length t = Hashtbl.length t.cache

(* Preserve the current value of object [i] before it is overwritten —
   by an execution upcall ([modify]) or a state-transfer install alike.
   Every checkpoint snapshot without its own copy of [i] reads through to
   the current value, so it needs a copy now; and the value goes into the
   leaf cache under its pre-overwrite digest — but only while the tree
   leaf is clean, because a dirty leaf's digest no longer describes the
   current value.  This is what lets a later state transfer roll this
   object back to a checkpointed value without refetching it. *)
let preserve_current t i =
  if t.cache_cap > 0 && not (Hashtbl.mem t.dirty i) then
    cache_put t (Partition_tree.leaf t.tree i) (t.wrapper.Service.get_obj i);
  List.iter
    (fun cp ->
      if not (Hashtbl.mem cp.copies i) then begin
        let v = t.wrapper.Service.get_obj i in
        Hashtbl.replace cp.copies i v;
        t.stats.objects_copied <- t.stats.objects_copied + 1;
        t.stats.bytes_copied <- t.stats.bytes_copied + String.length v
      end)
    t.cps

let modify t i =
  Base_util.Invariant.require
    (i >= 0 && i < n_objects t)
    "Objrepo.modify: bad object index";
  preserve_current t i;
  Hashtbl.replace t.dirty i ()

let flush_dirty t =
  Hashtbl.fold (fun i () acc -> i :: acc) t.dirty []
  |> List.sort Int.compare
  |> List.map (leaf_update t)
  |> Partition_tree.set_leaves t.tree;
  Hashtbl.reset t.dirty

let take_checkpoint t ~seq ~client_rows =
  flush_dirty t;
  let snapshot =
    { seq; tree = Partition_tree.copy t.tree; copies = Hashtbl.create 16; client_rows }
  in
  (* Replace any previous checkpoint at the same seqno (re-checkpointing
     after a state transfer lands on an already-known boundary) and keep the
     list sorted: a rollback transfer can register a checkpoint older than
     ones already held. *)
  t.cps <-
    List.sort
      (fun a b -> Int.compare a.seq b.seq)
      (snapshot :: List.filter (fun cp -> cp.seq <> seq) t.cps);
  Partition_tree.root snapshot.tree

let discard_below t seq = t.cps <- List.filter (fun cp -> cp.seq >= seq) t.cps

let checkpoints t = t.cps

let find_checkpoint t ~seq = List.find_opt (fun cp -> cp.seq = seq) t.cps

(* Total over the index: [i] typically arrives off the wire (a FETCH for
   this checkpoint), so an out-of-range request answers [None] rather than
   letting the wrapper see an index it never promised to handle. *)
let object_at t ~seq i =
  if i < 0 || i >= n_objects t then None
  else
    match find_checkpoint t ~seq with
    | None -> None
    | Some cp -> (
      match Hashtbl.find_opt cp.copies i with
      | Some v -> Some v
      | None -> Some (t.wrapper.Service.get_obj i))

let current_tree t =
  flush_dirty t;
  t.tree

let current_root t = Partition_tree.root (current_tree t)

let install t objs =
  (* A rollback install overwrites values that existing snapshots (taken at
     higher seqnos, still served to other fetchers) read through to: save
     those copies first, exactly as [modify] would, or the install silently
     corrupts every snapshot without its own copy. *)
  List.iter (fun (i, _) -> preserve_current t i) objs;
  t.wrapper.Service.put_objs objs;
  Partition_tree.set_leaves t.tree
    (List.map
       (fun (i, data) ->
         let d = Service.object_digest i data in
         (* Fetched values go straight into the leaf cache: a later recovery
            that needs this same certified value again skips the refetch. *)
         cache_put t d data;
         (i, d))
       objs);
  List.iter (fun (i, _) -> Hashtbl.remove t.dirty i) objs

let rebuild_all_digests t =
  Hashtbl.reset t.dirty;
  Partition_tree.set_leaves t.tree (List.init (n_objects t) (leaf_update t))

let stats t = t.stats
