module Digest = Base_crypto.Digest_t

type checkpoint = {
  seq : int;
  tree : Partition_tree.t;
  copies : (int, string) Hashtbl.t;
  client_rows : (int * int64 * string) list;
}

type cow_stats = {
  mutable objects_copied : int;
  mutable bytes_copied : int;
  mutable digests_recomputed : int;
}

type t = {
  wrapper : Service.wrapper;
  tree : Partition_tree.t;
  dirty : (int, unit) Hashtbl.t;
  mutable cps : checkpoint list;  (* oldest first *)
  stats : cow_stats;
}

let refresh_leaf t i =
  let data = t.wrapper.Service.get_obj i in
  Partition_tree.set_leaf t.tree i (Service.object_digest i data);
  t.stats.digests_recomputed <- t.stats.digests_recomputed + 1

let create ~wrapper ~branching =
  let t =
    {
      wrapper;
      tree = Partition_tree.create ~n_leaves:wrapper.Service.n_objects ~branching;
      dirty = Hashtbl.create 64;
      cps = [];
      stats = { objects_copied = 0; bytes_copied = 0; digests_recomputed = 0 };
    }
  in
  for i = 0 to wrapper.Service.n_objects - 1 do
    refresh_leaf t i
  done;
  t

let wrapper t = t.wrapper

let n_objects t = t.wrapper.Service.n_objects

let modify t i =
  if i < 0 || i >= n_objects t then invalid_arg "Objrepo.modify: bad object index";
  List.iter
    (fun cp ->
      if not (Hashtbl.mem cp.copies i) then begin
        let v = t.wrapper.Service.get_obj i in
        Hashtbl.replace cp.copies i v;
        t.stats.objects_copied <- t.stats.objects_copied + 1;
        t.stats.bytes_copied <- t.stats.bytes_copied + String.length v
      end)
    t.cps;
  Hashtbl.replace t.dirty i ()

let flush_dirty t =
  Hashtbl.fold (fun i () acc -> i :: acc) t.dirty []
  |> List.sort Int.compare
  |> List.iter (refresh_leaf t);
  Hashtbl.reset t.dirty

let take_checkpoint t ~seq ~client_rows =
  flush_dirty t;
  let snapshot =
    { seq; tree = Partition_tree.copy t.tree; copies = Hashtbl.create 16; client_rows }
  in
  (* Replace any previous checkpoint at the same seqno (re-checkpointing
     after a state transfer lands on an already-known boundary). *)
  t.cps <- List.filter (fun cp -> cp.seq <> seq) t.cps @ [ snapshot ];
  Partition_tree.root snapshot.tree

let discard_below t seq = t.cps <- List.filter (fun cp -> cp.seq >= seq) t.cps

let checkpoints t = t.cps

let find_checkpoint t ~seq = List.find_opt (fun cp -> cp.seq = seq) t.cps

let object_at t ~seq i =
  match find_checkpoint t ~seq with
  | None -> None
  | Some cp -> (
    match Hashtbl.find_opt cp.copies i with
    | Some v -> Some v
    | None -> Some (t.wrapper.Service.get_obj i))

let current_tree t =
  flush_dirty t;
  t.tree

let current_root t = Partition_tree.root (current_tree t)

let install t objs =
  t.wrapper.Service.put_objs objs;
  List.iter (fun (i, data) -> Partition_tree.set_leaf t.tree i (Service.object_digest i data)) objs;
  List.iter (fun (i, _) -> Hashtbl.remove t.dirty i) objs

let rebuild_all_digests t =
  Hashtbl.reset t.dirty;
  for i = 0 to n_objects t - 1 do
    refresh_leaf t i
  done

let stats t = t.stats
