(** Hot-path profiling probes: per-phase call counts, allocation, and time.

    A {!probe} brackets a named code region.  Each outermost
    {!start}/{!stop} pair accumulates one call, the [Gc.allocated_bytes]
    delta, and the elapsed time read from the clock injected at
    {!create} — the library itself never reads ambient time, which keeps
    the determinism lint (D2) and the byte-reproducible benchmark exports
    honest.  A disabled profile (the default, and the shared {!disabled}
    instance) makes every probe site cost a couple of loads and a branch,
    so probes stay compiled into production paths.

    Exports: {!to_json} with [~deterministic:true] (the default) emits
    only call counts and allocation bytes — pure functions of the executed
    code path, safe for the blessed [profile] section of
    [BENCH_metrics.json] — while [~deterministic:false] adds nanosecond
    totals for local inspection.  {!pp} prints the human-facing table. *)

type t

type probe

val create : ?now_ns:(unit -> int64) -> unit -> t
(** A fresh, disabled profile.  [now_ns] supplies the clock used for the
    time column; it defaults to a constant (time accumulates as zero). *)

val disabled : t
(** Shared permanently-disabled instance for components built without an
    explicit profile. *)

val enable : t -> unit

val enabled : t -> bool

val probe : t -> string -> probe
(** Get-or-register the probe with this name. *)

val probe_calls : probe -> int
(** Completed outermost spans so far (what the [calls] export reports). *)

val start : t -> probe -> unit

val stop : t -> probe -> unit
(** Re-entrant: only the outermost [start]/[stop] pair of a probe samples
    the clocks, so recursive spans count once. *)

val span : t -> probe -> (unit -> 'a) -> 'a
(** [span t p f] runs [f] bracketed by {!start}/{!stop} (exception-safe).
    Prefer explicit {!start}/{!stop} on paths where the closure allocation
    matters. *)

val reset : t -> unit

val to_json : ?deterministic:bool -> t -> Json.t
(** Probes sorted by name.  With [deterministic] (default [true]) the
    object carries [calls] and [alloc_bytes] only; otherwise an [ns] field
    is added. *)

val pp : Format.formatter -> t -> unit
