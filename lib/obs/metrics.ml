type counter = { c_name : string; mutable c_value : int }

type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_bounds : float array;
  h_counts : int array; (* length h_bounds + 1; last slot counts overflows *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = (string, metric) Hashtbl.t

let create () : t = Hashtbl.create 64

(* Latency buckets in microseconds: sub-millisecond through multi-second,
   matching the range of the simulated network (60 us links) up to reboot
   times (seconds). *)
let default_latency_buckets_us =
  [|
    100.; 250.; 500.; 1_000.; 2_500.; 5_000.; 10_000.; 25_000.; 50_000.; 100_000.; 250_000.;
    500_000.; 1_000_000.; 2_500_000.; 5_000_000.;
  |]

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let clash name existing wanted =
  invalid_arg
    (Printf.sprintf "Metrics: %s already registered as a %s (wanted a %s)" name
       (kind_name existing) wanted)

let counter t name =
  match Hashtbl.find_opt t name with
  | Some (Counter c) -> c
  | Some m -> clash name m "counter"
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace t name (Counter c);
    c

let incr ?(by = 1) c = c.c_value <- c.c_value + by

let counter_value c = c.c_value

let gauge t name =
  match Hashtbl.find_opt t name with
  | Some (Gauge g) -> g
  | Some m -> clash name m "gauge"
  | None ->
    let g = { g_name = name; g_value = 0.0 } in
    Hashtbl.replace t name (Gauge g);
    g

let set g v = g.g_value <- v

let set_max g v = if v > g.g_value then g.g_value <- v

let gauge_value g = g.g_value

let check_bounds bounds =
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: empty bucket bounds";
  Array.iteri
    (fun i b ->
      if Float.is_nan b then invalid_arg "Metrics.histogram: NaN bucket bound";
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Metrics.histogram: bucket bounds must be strictly increasing")
    bounds

let histogram ?(buckets = default_latency_buckets_us) t name =
  match Hashtbl.find_opt t name with
  | Some (Histogram h) ->
    if
      not
        (Array.length h.h_bounds = Array.length buckets
        && Array.for_all2 Float.equal h.h_bounds buckets)
    then
      invalid_arg (Printf.sprintf "Metrics: histogram %s re-registered with different buckets" name);
    h
  | Some m -> clash name m "histogram"
  | None ->
    check_bounds buckets;
    let h =
      {
        h_name = name;
        h_bounds = Array.copy buckets;
        h_counts = Array.make (Array.length buckets + 1) 0;
        h_count = 0;
        h_sum = 0.0;
        h_min = Float.infinity;
        h_max = Float.neg_infinity;
      }
    in
    Hashtbl.replace t name (Histogram h);
    h

(* A value lands in the first bucket whose upper bound is >= v; values above
   every bound land in the overflow slot. *)
let bucket_index h v =
  let n = Array.length h.h_bounds in
  let rec find i = if i >= n then n else if v <= h.h_bounds.(i) then i else find (i + 1) in
  find 0

let observe h v =
  if not (Float.is_nan v) then begin
    h.h_counts.(bucket_index h v) <- h.h_counts.(bucket_index h v) + 1;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end

let hist_count h = h.h_count

let hist_sum h = h.h_sum

let hist_mean h = if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count

let bucket_counts h = Array.copy h.h_counts

(* Bucket-interpolated quantile estimate (q in [0,1]); exact only at bucket
   edges, which is all the regression gates need. *)
let quantile h q =
  if h.h_count = 0 then 0.0
  else begin
    let rank = q *. float_of_int h.h_count in
    let n = Array.length h.h_bounds in
    let rec walk i cum =
      if i > n then h.h_max
      else begin
        let cum' = cum + h.h_counts.(i) in
        if float_of_int cum' >= rank && h.h_counts.(i) > 0 then begin
          let lo = if i = 0 then Float.min h.h_min h.h_bounds.(0) else h.h_bounds.(i - 1) in
          let hi = if i = n then h.h_max else h.h_bounds.(i) in
          let lo = Float.max lo h.h_min and hi = Float.min hi h.h_max in
          if hi <= lo then lo
          else begin
            let frac = (rank -. float_of_int cum) /. float_of_int h.h_counts.(i) in
            lo +. (Float.min 1.0 (Float.max 0.0 frac) *. (hi -. lo))
          end
        end
        else walk (i + 1) cum'
      end
    in
    walk 0 0
  end

let reset t =
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (_, m) ->
         match m with
         | Counter c -> c.c_value <- 0
         | Gauge g -> g.g_value <- 0.0
         | Histogram h ->
           Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
           h.h_count <- 0;
           h.h_sum <- 0.0;
           h.h_min <- Float.infinity;
           h.h_max <- Float.neg_infinity)

let names t = Hashtbl.fold (fun name _ acc -> name :: acc) t [] |> List.sort String.compare

let hist_json h =
  let buckets =
    List.init
      (Array.length h.h_bounds + 1)
      (fun i ->
        Json.obj
          [
            ("le", if i < Array.length h.h_bounds then Json.Float h.h_bounds.(i) else Json.Str "+inf");
            ("count", Json.Int h.h_counts.(i));
          ])
  in
  Json.obj
    [
      ("count", Json.Int h.h_count);
      ("sum", Json.Float h.h_sum);
      ("min", if h.h_count = 0 then Json.Null else Json.Float h.h_min);
      ("max", if h.h_count = 0 then Json.Null else Json.Float h.h_max);
      ("buckets", Json.List buckets);
    ]

let to_json t =
  Json.obj
    (List.map
       (fun name ->
         match Hashtbl.find t name with
         | Counter c -> (name, Json.Int c.c_value)
         | Gauge g -> (name, Json.Float g.g_value)
         | Histogram h -> (name, hist_json h))
       (names t))

let pp ppf t =
  List.iter
    (fun name ->
      match Hashtbl.find t name with
      | Counter c -> Format.fprintf ppf "  %-44s %12d@." c.c_name c.c_value
      | Gauge g -> Format.fprintf ppf "  %-44s %12.1f@." g.g_name g.g_value
      | Histogram h ->
        if h.h_count = 0 then Format.fprintf ppf "  %-44s %12s@." h.h_name "(empty)"
        else
          Format.fprintf ppf "  %-44s n=%-8d mean=%-10.1f p50=%-10.1f p99=%-10.1f max=%-10.1f@."
            h.h_name h.h_count (hist_mean h) (quantile h 0.5) (quantile h 0.99) h.h_max)
    (names t)
