(** Structured trace events: a timestamped name plus string attributes.

    Unlike the simulator's free-form line tracer, events here carry their
    fields separately, render to JSON-lines deterministically (attributes
    sorted by key), and are retained in memory so a harness can compare two
    runs byte-for-byte.  Timestamps are {!Base_sim.Sim_time} microseconds —
    never a wall clock. *)

type event = { ts : int64; name : string; attrs : (string * string) list }

type t

val create : ?limit:int -> unit -> t
(** Retains at most [limit] events (default 100_000); later events are
    dropped, keeping the prefix — truncation must not change what was
    already recorded. *)

val event : t -> ts:int64 -> name:string -> (string * string) list -> unit

val length : t -> int

val clear : t -> unit

val events : t -> event list
(** In record order. *)

val to_json : t -> Json.t

val to_string : t -> string
(** JSON-lines rendering, one event per line; byte-identical for identical
    event sequences. *)

val pp : Format.formatter -> t -> unit
