(** Metrics registry: counters, gauges and fixed-bucket histograms.

    A registry is a flat namespace of metrics identified by dotted names
    (["net.sent_bytes"], ["bft.phase.prepare_us"]).  Registration is
    get-or-create and idempotent; registering the same name with a
    different kind (or different histogram buckets) raises
    [Invalid_argument].

    Nothing here reads a wall clock: latency observations are produced by
    the caller from {!Base_sim.Sim_time}, which keeps every exported value
    a pure function of the simulation seed — the property that makes the
    benchmark JSON byte-reproducible. *)

type t

type counter

type gauge

type histogram

val create : unit -> t

(** {1 Counters} *)

val counter : t -> string -> counter

val incr : ?by:int -> counter -> unit

val counter_value : counter -> int

(** {1 Gauges} *)

val gauge : t -> string -> gauge

val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Keep the running maximum (used for peak queue depth). *)

val gauge_value : gauge -> float

(** {1 Histograms} *)

val default_latency_buckets_us : float array
(** Microsecond buckets from 100 us to 5 s, matching the simulated network
    and reboot time scales. *)

val histogram : ?buckets:float array -> t -> string -> histogram
(** [buckets] are strictly increasing upper bounds; an implicit overflow
    bucket catches everything above the last bound.  Defaults to
    {!default_latency_buckets_us}. *)

val observe : histogram -> float -> unit
(** NaN observations are ignored.  A value lands in the first bucket whose
    upper bound is [>=] the value. *)

val hist_count : histogram -> int

val hist_sum : histogram -> float

val hist_mean : histogram -> float

val bucket_counts : histogram -> int array
(** Per-bucket counts, length [bounds + 1] (the last slot is overflow). *)

val quantile : histogram -> float -> float
(** Bucket-interpolated quantile estimate; exact at bucket edges. *)

(** {1 Registry} *)

val reset : t -> unit
(** Zero every value but keep all registrations — used when a counter's
    lifetime is one recovery epoch. *)

val names : t -> string list
(** Sorted. *)

val to_json : t -> Json.t
(** Deterministic: metrics sorted by name, histogram buckets in bound
    order. *)

val pp : Format.formatter -> t -> unit
(** Human-readable table (histograms as n/mean/p50/p99/max). *)
