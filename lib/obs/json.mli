(** Minimal deterministic JSON emitter (and matching parser) for the
    observability subsystem.

    Every rendering function sorts object keys, prints floats canonically
    ("<n>.0" for integral values, shortest round-trippable form otherwise)
    and maps non-finite floats to [null], so the same value always renders
    to the same bytes — the property the benchmark regression gates rely
    on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val obj : (string * t) list -> t
(** [Obj] with the fields sorted by key (rendering re-sorts anyway; this
    keeps values canonical when compared structurally). *)

val to_string : t -> string
(** Compact single-line rendering. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering for humans; same ordering guarantees. *)

val of_string : string -> (t, string) result
(** Parse the subset of JSON this module emits — which is everything the
    repository's artifacts (e.g. [BENCH_metrics.json]) contain.  A number
    literal parses as [Int] unless it carries a fraction or exponent, so
    [to_string] o [of_string] is the identity on this module's own output.
    Object keys keep their file order; wrap in {!obj} (or re-render) for the
    canonical sorted form.  [Error] carries a message with a byte offset. *)
