(** Minimal deterministic JSON emitter for the observability subsystem.

    Every rendering function sorts object keys, prints floats canonically
    ("<n>.0" for integral values, shortest round-trippable form otherwise)
    and maps non-finite floats to [null], so the same value always renders
    to the same bytes — the property the benchmark regression gates rely
    on.  There is deliberately no parser: this is an output format. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val obj : (string * t) list -> t
(** [Obj] with the fields sorted by key (rendering re-sorts anyway; this
    keeps values canonical when compared structurally). *)

val to_string : t -> string
(** Compact single-line rendering. *)

val to_string_pretty : t -> string
(** Two-space-indented rendering for humans; same ordering guarantees. *)
