(* Hot-path profiling probes.

   A probe accumulates three things per named code region: entry count,
   bytes allocated (from [Gc.allocated_bytes] deltas), and elapsed time
   from an *injected* nanosecond clock.  The clock is a constructor
   argument rather than an ambient read so this module stays inside the
   determinism discipline: the library never touches a wall clock, the
   caller (the benchmark binary) decides what "now" means.  A disabled
   profile costs two loads and a branch per probe site, so production
   paths keep their probes permanently.

   Exported JSON comes in two flavours: [~deterministic:true] drops the
   time fields, leaving only call counts and allocation deltas — both pure
   functions of the code path executed — so the [profile] section of
   BENCH_metrics.json survives the double-run byte-identity gate.  Times
   are for the human-facing table printed alongside. *)

type probe = {
  name : string;
  mutable calls : int;
  mutable ns : int64;
  mutable alloc_b : float;
  mutable depth : int;  (* re-entrant sections count outermost spans only *)
  mutable t0 : int64;
  mutable a0 : float;
}

type t = {
  mutable on : bool;
  now_ns : unit -> int64;
  mutable probes : probe list;  (* registration order; sorted at export *)
}

let create ?(now_ns = fun () -> 0L) () = { on = false; now_ns; probes = [] }

(* A shared permanently-off instance: components that were built without an
   explicit profile attach their probes here, where they stay inert. *)
let disabled = create ()

let enable t = t.on <- true

let enabled t = t.on

let probe t name =
  match List.find_opt (fun p -> String.equal p.name name) t.probes with
  | Some p -> p
  | None ->
    let p = { name; calls = 0; ns = 0L; alloc_b = 0.0; depth = 0; t0 = 0L; a0 = 0.0 } in
    t.probes <- t.probes @ [ p ];
    p

let probe_calls p = p.calls

let start t p =
  if t.on then begin
    p.depth <- p.depth + 1;
    if p.depth = 1 then begin
      p.t0 <- t.now_ns ();
      p.a0 <- Gc.allocated_bytes ()
    end
  end

let stop t p =
  if t.on && p.depth > 0 then begin
    p.depth <- p.depth - 1;
    if p.depth = 0 then begin
      p.calls <- p.calls + 1;
      p.ns <- Int64.add p.ns (Int64.sub (t.now_ns ()) p.t0);
      p.alloc_b <- p.alloc_b +. (Gc.allocated_bytes () -. p.a0)
    end
  end

let span t p f =
  start t p;
  match f () with
  | v ->
    stop t p;
    v
  | exception e ->
    stop t p;
    raise e

let reset t =
  List.iter
    (fun p ->
      p.calls <- 0;
      p.ns <- 0L;
      p.alloc_b <- 0.0;
      p.depth <- 0)
    t.probes

let sorted t = List.sort (fun a b -> String.compare a.name b.name) t.probes

let to_json ?(deterministic = true) t =
  Json.obj
    (List.map
       (fun p ->
         let fields =
           [ ("calls", Json.Int p.calls); ("alloc_bytes", Json.Int (int_of_float p.alloc_b)) ]
         in
         let fields =
           if deterministic then fields
           else fields @ [ ("ns", Json.Int (Int64.to_int p.ns)) ]
         in
         (p.name, Json.obj fields))
       (sorted t))

let pp ppf t =
  let total_ns =
    List.fold_left (fun acc p -> Int64.add acc p.ns) 0L t.probes |> Int64.to_float
  in
  Format.fprintf ppf "%-28s %12s %14s %12s %8s@." "probe" "calls" "alloc(B)" "time(ms)" "time%";
  List.iter
    (fun p ->
      let ns = Int64.to_float p.ns in
      Format.fprintf ppf "%-28s %12d %14.0f %12.2f %7.1f%%@." p.name p.calls p.alloc_b
        (ns /. 1e6)
        (if total_ns > 0.0 then 100.0 *. ns /. total_ns else 0.0))
    (sorted t)
