type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let obj fields = Obj (List.sort (fun (a, _) (b, _) -> String.compare a b) fields)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Canonical float rendering: integers without a fractional part print as
   "<n>.0" so a value's type never flips between runs; non-finite values have
   no JSON encoding and become null. *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
    if Float.is_nan f || Float.equal (Float.abs f) Float.infinity then
      Buffer.add_string b "null"
    else Buffer.add_string b (float_str f)
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        write b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    (* Sort defensively so a directly-built Obj is still deterministic. *)
    let fields = List.sort (fun (a, _) (b, _) -> String.compare a b) fields in
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\":";
        write b v)
      fields;
    Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 1024 in
  write b t;
  Buffer.contents b

(* Minimal recursive-descent parser, the inverse of [to_string] /
   [to_string_pretty].  It accepts exactly the subset this module emits
   (which is all the repository's artifacts use): no comments, no leading
   [+], \u escapes only for code points below 0x100.  Object keys keep their
   file order; [obj]'s sorting makes re-emission canonical again. *)
exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let peek_is c = match peek () with Some d -> Char.equal c d | None -> false in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when Char.equal c d -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.equal (String.sub s !pos (String.length word)) word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'
        | Some '\\' -> Buffer.add_char b '\\'
        | Some '/' -> Buffer.add_char b '/'
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'b' -> Buffer.add_char b '\b'
        | Some 'f' -> Buffer.add_char b '\012'
        | Some 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let code =
            try int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
            with Failure _ -> fail "bad \\u escape"
          in
          if code > 0xff then fail "\\u escape beyond one byte";
          pos := !pos + 4;
          Buffer.add_char b (Char.chr code)
        | Some _ | None -> fail "bad escape");
        advance ();
        go ()
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-') ->
        advance ();
        go ()
      | Some ('.' | 'e' | 'E' | '+') ->
        is_float := true;
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    let lit = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt lit with Some f -> Float f | None -> fail "bad number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
        (* An integer literal too wide for [int]: keep the value as a float
           rather than failing (it compares numerically downstream). *)
        match float_of_string_opt lit with Some f -> Float f | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek_is ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek_is ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek_is '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek_is ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* Indented rendering for humans; same ordering rules as [to_string]. *)
let to_string_pretty t =
  let b = Buffer.create 4096 in
  let pad n = Buffer.add_string b (String.make (2 * n) ' ') in
  let rec go depth = function
    | (Null | Bool _ | Int _ | Float _ | Str _) as v -> write b v
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      Buffer.add_char b '\n';
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      let fields = List.sort (fun (a, _) (b, _) -> String.compare a b) fields in
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (depth + 1);
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          go (depth + 1) v)
        fields;
      Buffer.add_char b '\n';
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b
