type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let obj fields = Obj (List.sort (fun (a, _) (b, _) -> String.compare a b) fields)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Canonical float rendering: integers without a fractional part print as
   "<n>.0" so a value's type never flips between runs; non-finite values have
   no JSON encoding and become null. *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.9g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
    if Float.is_nan f || Float.equal (Float.abs f) Float.infinity then
      Buffer.add_string b "null"
    else Buffer.add_string b (float_str f)
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (escape s);
    Buffer.add_char b '"'
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        write b x)
      xs;
    Buffer.add_char b ']'
  | Obj fields ->
    (* Sort defensively so a directly-built Obj is still deterministic. *)
    let fields = List.sort (fun (a, _) (b, _) -> String.compare a b) fields in
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (escape k);
        Buffer.add_string b "\":";
        write b v)
      fields;
    Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 1024 in
  write b t;
  Buffer.contents b

(* Indented rendering for humans; same ordering rules as [to_string]. *)
let to_string_pretty t =
  let b = Buffer.create 4096 in
  let pad n = Buffer.add_string b (String.make (2 * n) ' ') in
  let rec go depth = function
    | (Null | Bool _ | Int _ | Float _ | Str _) as v -> write b v
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      Buffer.add_char b '\n';
      pad depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      let fields = List.sort (fun (a, _) (b, _) -> String.compare a b) fields in
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (depth + 1);
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\": ";
          go (depth + 1) v)
        fields;
      Buffer.add_char b '\n';
      pad depth;
      Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b
