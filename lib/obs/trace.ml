type event = { ts : int64; name : string; attrs : (string * string) list }

type t = { mutable events : event list; mutable n : int; limit : int }

let create ?(limit = 100_000) () = { events = []; n = 0; limit }

let event t ~ts ~name attrs =
  if t.n < t.limit then begin
    (* Attributes sorted at record time so rendering never depends on the
       caller's argument order. *)
    let attrs = List.sort (fun (a, _) (b, _) -> String.compare a b) attrs in
    t.events <- { ts; name; attrs } :: t.events;
    t.n <- t.n + 1
  end

let length t = t.n

let clear t =
  t.events <- [];
  t.n <- 0

let events t = List.rev t.events

let event_json e =
  Json.obj
    (("ts_us", Json.Int (Int64.to_int e.ts))
    :: ("event", Json.Str e.name)
    :: List.map (fun (k, v) -> ("attr." ^ k, Json.Str v)) e.attrs)

let to_json t = Json.List (List.map event_json (events t))

(* One JSON object per line, in event order: greppable and diffable. *)
let to_string t =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (Json.to_string (event_json e));
      Buffer.add_char b '\n')
    (events t);
  Buffer.contents b

let pp ppf t =
  List.iter
    (fun e ->
      Format.fprintf ppf "  %10.6fs %-24s %s@."
        (Int64.to_float e.ts /. 1e6)
        e.name
        (String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) e.attrs)))
    (events t)
