(** "CatFS": a catalogue-based file system (HFS-flavoured).

    A single ordered catalogue maps [(parent id, name)] keys to child ids;
    node bodies live in a separate table.  Quirks:
    - node ids are recycled smallest-first, so fileids are reused quickly;
    - readdir is ordered case-insensitively (then case-sensitively), unlike
      the abstract spec's plain lexicographic order;
    - handles embed a session nonce and go stale on restart;
    - the catalogue clock ticks in whole milliseconds. *)

open Base_nfs.Nfs_types
module Prng = Base_util.Prng

module Key = struct
  type t = int * string

  (* Case-insensitive order, case-sensitive tiebreak: the catalogue's
     on-disk collation. *)
  let compare (p1, n1) (p2, n2) =
    match Int.compare p1 p2 with
    | 0 -> (
      match String.compare (String.lowercase_ascii n1) (String.lowercase_ascii n2) with
      | 0 -> String.compare n1 n2
      | c -> c)
    | c -> c
end

module Catalogue = Map.Make (Key)

type node = {
  id : int;
  mutable kind : ftype;
  mutable mode : int;
  mutable uid : int;
  mutable gid : int;
  mutable data : string;
  mutable atime : int64;
  mutable mtime : int64;
  mutable ctime : int64;
  mutable parent : int;  (* catalogue threading *)
  mutable name : string;
}

type t = {
  now : unit -> int64;
  fsid : int;
  mutable catalogue : int Catalogue.t;
  nodes : (int, node) Hashtbl.t;
  mutable free_ids : int list;  (* kept sorted ascending: smallest reused first *)
  mutable next_id : int;
  mutable session : string;
  prng : Prng.t;
  mutable poison : string option;
}

let clock t = Int64.mul (Int64.div (t.now ()) 1000L) 1000L (* millisecond granularity *)

let fh_of t id = Printf.sprintf "B:%d:%s" id t.session

let node_of_fh t fh =
  match String.split_on_char ':' fh with
  | [ "B"; id; session ] when String.equal session t.session -> (
    match int_of_string_opt id with
    | Some i -> ( match Hashtbl.find_opt t.nodes i with Some n -> Ok n | None -> Error Estale)
    | None -> Error Estale)
  | _ -> Error Estale

let alloc_id t =
  match t.free_ids with
  | id :: rest ->
    t.free_ids <- rest;
    id
  | [] ->
    let id = t.next_id in
    t.next_id <- id + 1;
    id

let release_id t id = t.free_ids <- List.sort Int.compare (id :: t.free_ids)

let attr_of t (n : node) =
  let size =
    match n.kind with Reg | Lnk -> String.length n.data | Dir -> 4096
  in
  {
    Server_intf.a_ftype = n.kind;
    a_mode = n.mode;
    a_uid = n.uid;
    a_gid = n.gid;
    a_size = size;
    a_fsid = t.fsid;
    a_fileid = n.id;
    a_atime = n.atime;
    a_mtime = n.mtime;
    a_ctime = n.ctime;
  }

(* Deterministic latent bug: when armed, writes whose payload contains the
   poison string are silently corrupted. *)
let poison_filter t data =
  match t.poison with
  | Some p when Base_util.Str_contains.contains data p ->
    String.map (fun c -> Char.chr (Char.code c lxor 0x01)) data
  | Some _ | None -> data

let children t dir_id =
  (* Range scan over the catalogue: keys (dir_id, * ) in collation order. *)
  Catalogue.fold
    (fun (p, name) id acc -> if p = dir_id then (name, id) :: acc else acc)
    t.catalogue []
  |> List.rev

let make ~seed ~now =
  let prng = Prng.create seed in
  let t =
    {
      now;
      fsid = 0x8000 + Prng.int prng 0x7fff;
      catalogue = Catalogue.empty;
      nodes = Hashtbl.create 256;
      free_ids = [];
      next_id = 3;
      session = Base_util.Hex.encode (Bytes.to_string (Prng.bytes prng 3));
      prng;
      poison = None;
    }
  in
  let now0 = clock t in
  Hashtbl.replace t.nodes 2
    {
      id = 2;
      kind = Dir;
      mode = 0o755;
      uid = 0;
      gid = 0;
      data = "";
      atime = now0;
      mtime = now0;
      ctime = now0;
      parent = 2;
      name = "";
    };
  t

let fresh t kind ~mode ~uid ~gid ~data ~parent ~name =
  let id = alloc_id t in
  let now = clock t in
  let n =
    { id; kind; mode; uid; gid; data; atime = now; mtime = now; ctime = now; parent; name }
  in
  Hashtbl.replace t.nodes id n;
  n

let with_dir t fh k =
  match node_of_fh t fh with
  | Error e -> Error e
  | Ok n -> if n.kind <> Dir then Error Enotdir else k n

let touch t (n : node) =
  n.mtime <- clock t;
  n.ctime <- n.mtime

let add t ~dir ~name kind ~mode ~uid ~gid ~data =
    with_dir t dir (fun dn ->
        if Catalogue.mem (dn.id, name) t.catalogue then Error Eexist
        else begin
          let n = fresh t kind ~mode ~uid ~gid ~data ~parent:dn.id ~name in
          t.catalogue <- Catalogue.add (dn.id, name) n.id t.catalogue;
          touch t dn;
          Ok (fh_of t n.id, attr_of t n)
        end)

let unlink t dir_id name child_id =
  t.catalogue <- Catalogue.remove (dir_id, name) t.catalogue;
  Hashtbl.remove t.nodes child_id;
  release_id t child_id

let create t =
  {
    Server_intf.name = "catfs(btree)";
    root = (fun () -> fh_of t 2);
    lookup =
      (fun ~dir ~name ->
        with_dir t dir (fun dn ->
            match Catalogue.find_opt (dn.id, name) t.catalogue with
            | None -> Error Enoent
            | Some id -> (
              match Hashtbl.find_opt t.nodes id with
              | Some n -> Ok (fh_of t id, attr_of t n)
              | None -> Error Eio)));
    getattr =
      (fun ~fh -> match node_of_fh t fh with Error e -> Error e | Ok n -> Ok (attr_of t n));
    setattr =
      (fun ~fh (c : Server_intf.csattr) ->
        match node_of_fh t fh with
        | Error e -> Error e
        | Ok n -> (
          Option.iter (fun m -> n.mode <- m) c.c_mode;
          Option.iter (fun u -> n.uid <- u) c.c_uid;
          Option.iter (fun g -> n.gid <- g) c.c_gid;
          n.ctime <- clock t;
          match (c.c_size, n.kind) with
          | None, _ -> Ok (attr_of t n)
          | Some size, Reg ->
            n.data <- Server_intf.string_resize n.data size;
            n.mtime <- clock t;
            Ok (attr_of t n)
          | Some _, Dir -> Error Eisdir
          | Some _, Lnk -> Error Einval));
    read =
      (fun ~fh ~off ~count ->
        match node_of_fh t fh with
        | Error e -> Error e
        | Ok n -> (
          match n.kind with
          | Reg ->
            n.atime <- clock t;
            Ok (Server_intf.substr n.data ~off ~count)
          | Dir -> Error Eisdir
          | Lnk -> Error Einval));
    write =
      (fun ~fh ~off ~data ->
        match node_of_fh t fh with
        | Error e -> Error e
        | Ok n -> (
          match n.kind with
          | Reg -> (
            let data = poison_filter t data in
            match Server_intf.string_splice n.data ~off ~data ~max_size:max_file_size with
            | Error e -> Error e
            | Ok data' ->
              n.data <- data';
              touch t n;
              Ok ())
          | Dir -> Error Eisdir
          | Lnk -> Error Einval));
    create = (fun ~dir ~name ~mode ~uid ~gid -> add t ~dir ~name Reg ~mode ~uid ~gid ~data:"");
    mkdir = (fun ~dir ~name ~mode ~uid ~gid -> add t ~dir ~name Dir ~mode ~uid ~gid ~data:"");
    symlink =
      (fun ~dir ~name ~target ~mode ~uid ~gid ->
        add t ~dir ~name Lnk ~mode ~uid ~gid ~data:target);
    readlink =
      (fun ~fh ->
        match node_of_fh t fh with
        | Error e -> Error e
        | Ok n -> if n.kind = Lnk then Ok n.data else Error Einval);
    remove =
      (fun ~dir ~name ->
        with_dir t dir (fun dn ->
            match Catalogue.find_opt (dn.id, name) t.catalogue with
            | None -> Error Enoent
            | Some id -> (
              match Hashtbl.find_opt t.nodes id with
              | None -> Error Eio
              | Some n ->
                if n.kind = Dir then Error Eisdir
                else begin
                  unlink t dn.id name id;
                  touch t dn;
                  Ok ()
                end)));
    rmdir =
      (fun ~dir ~name ->
        with_dir t dir (fun dn ->
            match Catalogue.find_opt (dn.id, name) t.catalogue with
            | None -> Error Enoent
            | Some id -> (
              match Hashtbl.find_opt t.nodes id with
              | None -> Error Eio
              | Some n ->
                if n.kind <> Dir then Error Enotdir
                else if children t id <> [] then Error Enotempty
                else begin
                  unlink t dn.id name id;
                  touch t dn;
                  Ok ()
                end)));
    rename =
      (fun ~sdir ~sname ~ddir ~dname ->
          with_dir t sdir (fun sdn ->
              with_dir t ddir (fun ddn ->
                  match Catalogue.find_opt (sdn.id, sname) t.catalogue with
                  | None -> Error Enoent
                  | Some id ->
                    if sdn.id = ddn.id && String.equal sname dname then Ok ()
                    else begin
                      (match Catalogue.find_opt (ddn.id, dname) t.catalogue with
                      | Some victim -> unlink t ddn.id dname victim
                      | None -> ());
                      t.catalogue <- Catalogue.remove (sdn.id, sname) t.catalogue;
                      t.catalogue <- Catalogue.add (ddn.id, dname) id t.catalogue;
                      (match Hashtbl.find_opt t.nodes id with
                      | Some n ->
                        n.parent <- ddn.id;
                        n.name <- dname
                      | None -> ());
                      touch t sdn;
                      touch t ddn;
                      Ok ()
                    end)));
    readdir =
      (fun ~dir ->
        with_dir t dir (fun dn ->
            Ok (List.map (fun (name, id) -> (name, fh_of t id)) (children t dn.id))));
    identity =
      (fun ~fh -> match node_of_fh t fh with Error e -> Error e | Ok n -> Ok (t.fsid, n.id));
    restart =
      (fun () -> t.session <- Base_util.Hex.encode (Bytes.to_string (Prng.bytes t.prng 3)));
    corrupt =
      (fun ~prng ~count ->
        let files =
          Hashtbl.fold
            (fun _ n acc -> if n.kind = Reg && String.length n.data > 0 then n :: acc else acc)
            t.nodes []
          |> Array.of_list
        in
        let damaged = min count (Array.length files) in
        for _ = 1 to damaged do
          let n = Prng.pick prng files in
          let pos = Prng.int prng (String.length n.data) in
          let b = Bytes.of_string n.data in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
          n.data <- Bytes.to_string b
        done;
        damaged);
    set_poison = (fun p -> t.poison <- p);
  }
