(** "UnixFS": a classic inode-table file system.

    Design quirks (the non-determinism the wrapper must mask):
    - inode numbers are recycled LIFO from a free list;
    - directory entries are kept in insertion order;
    - file handles embed a per-boot salt, so they go stale on restart;
    - timestamps come from the host's own drifting clock. *)

open Base_nfs.Nfs_types
module Prng = Base_util.Prng

type filerec = { mutable data : string }

type dirrec = { mutable entries : (string * int) list (* insertion order *) }

type payload = P_file of filerec | P_dir of dirrec | P_link of { target : string }

type node = {
  ino : int;
  mutable mode : int;
  mutable uid : int;
  mutable gid : int;
  mutable atime : int64;
  mutable mtime : int64;
  mutable ctime : int64;
  mutable payload : payload;
}

type t = {
  now : unit -> int64;
  fsid : int;
  mutable table : node option array;
  mutable free : int list;  (* LIFO recycled inode numbers *)
  mutable next_ino : int;
  mutable boot_salt : string;
  prng : Prng.t;
  mutable poison : string option;
}

let fh_of t ino = Printf.sprintf "I:%d:%s" ino t.boot_salt

let node_of_fh t fh =
  match String.split_on_char ':' fh with
  | [ "I"; ino; salt ] when String.equal salt t.boot_salt -> (
    match int_of_string_opt ino with
    | Some i when i >= 0 && i < Array.length t.table -> (
      match t.table.(i) with Some n -> Ok n | None -> Error Estale)
    | Some _ | None -> Error Estale)
  | _ -> Error Estale

let alloc_ino t =
  match t.free with
  | ino :: rest ->
    t.free <- rest;
    ino
  | [] ->
    let ino = t.next_ino in
    t.next_ino <- ino + 1;
    if ino >= Array.length t.table then begin
      let bigger = Array.make (2 * Array.length t.table) None in
      Array.blit t.table 0 bigger 0 (Array.length t.table);
      t.table <- bigger
    end;
    ino

(* The implementation's deterministic latent bug: when armed, any write
   whose payload contains the poison string is silently corrupted before it
   reaches the disk. *)
let poison_filter t data =
  match t.poison with
  | Some p when Base_util.Str_contains.contains data p ->
    String.map (fun c -> Char.chr (Char.code c lxor 0x01)) data
  | Some _ | None -> data

let attr_of t (n : node) =
  let ftype, size =
    match n.payload with
    | P_file { data } -> (Reg, String.length data)
    | P_dir { entries } -> (Dir, 512 * (1 + (List.length entries / 16)))
    | P_link { target } -> (Lnk, String.length target)
  in
  {
    Server_intf.a_ftype = ftype;
    a_mode = n.mode;
    a_uid = n.uid;
    a_gid = n.gid;
    a_size = size;
    a_fsid = t.fsid;
    a_fileid = n.ino;
    a_atime = n.atime;
    a_mtime = n.mtime;
    a_ctime = n.ctime;
  }

let new_node t ~mode ~uid ~gid payload =
  let ino = alloc_ino t in
  let now = t.now () in
  let n = { ino; mode; uid; gid; atime = now; mtime = now; ctime = now; payload } in
  t.table.(ino) <- Some n;
  n

let dir_entries n =
  match n.payload with P_dir d -> Ok d | P_file _ | P_link _ -> Error Enotdir

let touch t n =
  n.mtime <- t.now ();
  n.ctime <- n.mtime

let make ~seed ~now =
  let prng = Prng.create seed in
  let fsid = 0x1000 + Prng.int prng 0xefff in
  let t =
    {
      now;
      fsid;
      table = Array.make 64 None;
      free = [];
      next_ino = 0;
      boot_salt = Base_util.Hex.encode (Bytes.to_string (Prng.bytes prng 4));
      prng;
      poison = None;
    }
  in
  let root = new_node t ~mode:0o755 ~uid:0 ~gid:0 (P_dir { entries = [] }) in
  assert (root.ino = 0);
  t

let lookup_in t dir name =
  match node_of_fh t dir with
  | Error e -> Error e
  | Ok dn -> (
    match dir_entries dn with
    | Error e -> Error e
    | Ok d -> (
      match List.assoc_opt name d.entries with
      | None -> Error Enoent
      | Some ino -> (
        match t.table.(ino) with Some n -> Ok (dn, d, n) | None -> Error Eio)))

let add_entry t ~dir ~name ~mode ~uid ~gid payload =
    match node_of_fh t dir with
    | Error e -> Error e
    | Ok dn -> (
      match dir_entries dn with
      | Error e -> Error e
      | Ok d ->
        if List.mem_assoc name d.entries then Error Eexist
        else begin
          let n = new_node t ~mode ~uid ~gid payload in
          d.entries <- d.entries @ [ (name, n.ino) ];
          touch t dn;
          Ok (fh_of t n.ino, attr_of t n)
        end)

(* Remove a whole subtree rooted at inode (used by overwriting renames of
   empty dirs and by remove). *)
let release t ino =
  t.table.(ino) <- None;
  t.free <- ino :: t.free

let create t =
  {
    Server_intf.name = "unixfs(inode)";
    root = (fun () -> fh_of t 0);
    lookup =
      (fun ~dir ~name ->
        match lookup_in t dir name with
        | Error e -> Error e
        | Ok (_, _, n) -> Ok (fh_of t n.ino, attr_of t n));
    getattr =
      (fun ~fh ->
        match node_of_fh t fh with Error e -> Error e | Ok n -> Ok (attr_of t n));
    setattr =
      (fun ~fh (c : Server_intf.csattr) ->
        match node_of_fh t fh with
        | Error e -> Error e
        | Ok n -> (
          Option.iter (fun m -> n.mode <- m) c.c_mode;
          Option.iter (fun u -> n.uid <- u) c.c_uid;
          Option.iter (fun g -> n.gid <- g) c.c_gid;
          n.ctime <- t.now ();
          match (c.c_size, n.payload) with
          | None, _ -> Ok (attr_of t n)
          | Some size, P_file f ->
            f.data <- Server_intf.string_resize f.data size;
            touch t n;
            Ok (attr_of t n)
          | Some _, P_dir _ -> Error Eisdir
          | Some _, P_link _ -> Error Einval));
    read =
      (fun ~fh ~off ~count ->
        match node_of_fh t fh with
        | Error e -> Error e
        | Ok n -> (
          match n.payload with
          | P_file { data } ->
            n.atime <- t.now ();
            Ok (Server_intf.substr data ~off ~count)
          | P_dir _ -> Error Eisdir
          | P_link _ -> Error Einval));
    write =
      (fun ~fh ~off ~data ->
        match node_of_fh t fh with
        | Error e -> Error e
        | Ok n -> (
          match n.payload with
          | P_file f -> (
            let data = poison_filter t data in
            match Server_intf.string_splice f.data ~off ~data ~max_size:max_file_size with
            | Error e -> Error e
            | Ok data' ->
              f.data <- data';
              touch t n;
              Ok ())
          | P_dir _ -> Error Eisdir
          | P_link _ -> Error Einval));
    create =
      (fun ~dir ~name ~mode ~uid ~gid ->
        add_entry t ~dir ~name ~mode ~uid ~gid (P_file { data = "" }));
    mkdir =
      (fun ~dir ~name ~mode ~uid ~gid ->
        add_entry t ~dir ~name ~mode ~uid ~gid (P_dir { entries = [] }));
    symlink =
      (fun ~dir ~name ~target ~mode ~uid ~gid ->
        add_entry t ~dir ~name ~mode ~uid ~gid (P_link { target }));
    readlink =
      (fun ~fh ->
        match node_of_fh t fh with
        | Error e -> Error e
        | Ok n -> (
          match n.payload with
          | P_link { target } -> Ok target
          | P_file _ | P_dir _ -> Error Einval));
    remove =
      (fun ~dir ~name ->
        match lookup_in t dir name with
        | Error e -> Error e
        | Ok (dn, d, n) -> (
          match n.payload with
          | P_dir _ -> Error Eisdir
          | P_file _ | P_link _ ->
            d.entries <- List.remove_assoc name d.entries;
            release t n.ino;
            touch t dn;
            Ok ()));
    rmdir =
      (fun ~dir ~name ->
        match lookup_in t dir name with
        | Error e -> Error e
        | Ok (dn, d, n) -> (
          match n.payload with
          | P_dir { entries = [] } ->
            d.entries <- List.remove_assoc name d.entries;
            release t n.ino;
            touch t dn;
            Ok ()
          | P_dir _ -> Error Enotempty
          | P_file _ | P_link _ -> Error Enotdir));
    rename =
      (fun ~sdir ~sname ~ddir ~dname ->
          match lookup_in t sdir sname with
          | Error e -> Error e
          | Ok (sdn, sd, n) -> (
            match node_of_fh t ddir with
            | Error e -> Error e
            | Ok ddn -> (
              match dir_entries ddn with
              | Error e -> Error e
              | Ok dd ->
                if sdn.ino = ddn.ino && String.equal sname dname then Ok ()
                else begin
                  (* Overwrite semantics: caller (the wrapper) has validated
                     kind compatibility and emptiness. *)
                  (match List.assoc_opt dname dd.entries with
                  | Some existing ->
                    dd.entries <- List.remove_assoc dname dd.entries;
                    release t existing
                  | None -> ());
                  sd.entries <- List.remove_assoc sname sd.entries;
                  dd.entries <- dd.entries @ [ (dname, n.ino) ];
                  touch t sdn;
                  touch t ddn;
                  Ok ()
                end)));
    readdir =
      (fun ~dir ->
        match node_of_fh t dir with
        | Error e -> Error e
        | Ok dn -> (
          match dir_entries dn with
          | Error e -> Error e
          | Ok d -> Ok (List.map (fun (name, ino) -> (name, fh_of t ino)) d.entries)));
    identity =
      (fun ~fh ->
        match node_of_fh t fh with Error e -> Error e | Ok n -> Ok (t.fsid, n.ino));
    restart =
      (fun () ->
        (* New boot: volatile handles change, persistent state survives. *)
        t.boot_salt <- Base_util.Hex.encode (Bytes.to_string (Prng.bytes t.prng 4)));
    corrupt =
      (fun ~prng ~count ->
        let files =
          Array.to_list t.table
          |> List.filter_map (fun n ->
                 match n with
                 | Some ({ payload = P_file f; _ } as node) when String.length f.data > 0 ->
                   Some (node, f)
                 | Some _ | None -> None)
        in
        let files = Array.of_list files in
        let damaged = min count (Array.length files) in
        for _ = 1 to damaged do
          let _, f = Prng.pick prng files in
          let pos = Prng.int prng (String.length f.data) in
          let b = Bytes.of_string f.data in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
          f.data <- Bytes.to_string b
        done;
        damaged);
    set_poison = (fun p -> t.poison <- p);
  }
