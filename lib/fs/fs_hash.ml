(** "HashFS": a path-keyed file system.

    Every object lives in one hash table keyed by its full path; directories
    are implicit (readdir scans the table for children).  Quirks:
    - readdir order is hash-table order, which depends on the instance seed;
    - file handles are random tokens resolved through a volatile table that
      is lost on restart;
    - rename rewrites the keys of a whole subtree;
    - this is the implementation with the {e deterministic software bug}
      used by the N-version experiment: once armed, any operation that
      creates or renames a name containing the poison string fails with an
      internal error. *)

open Base_nfs.Nfs_types
module Prng = Base_util.Prng

type node = {
  id : int;  (* persistent fileid *)
  mutable kind : ftype;
  mutable mode : int;
  mutable uid : int;
  mutable gid : int;
  mutable data : string;  (* file content or symlink target *)
  mutable atime : int64;
  mutable mtime : int64;
  mutable ctime : int64;
}

type t = {
  now : unit -> int64;
  fsid : int;
  nodes : (string, node) Hashtbl.t;  (* path -> node; root = "" *)
  mutable handles : (string, string) Hashtbl.t;  (* token -> path; volatile *)
  mutable paths2h : (string, string) Hashtbl.t;  (* path -> token; volatile *)
  mutable next_id : int;
  prng : Prng.t;
  mutable poison : string option;
}

let parent_of path =
  match String.rindex_opt path '/' with
  | Some i -> String.sub path 0 i
  | None -> "" (* direct child of root, or root itself *)

let leaf_of path =
  match String.rindex_opt path '/' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let join dir name = if String.equal dir "" then name else dir ^ "/" ^ name

let handle_for t path =
  match Hashtbl.find_opt t.paths2h path with
  | Some h -> h
  | None ->
    let h = "H:" ^ Base_util.Hex.encode (Bytes.to_string (Prng.bytes t.prng 6)) in
    Hashtbl.replace t.handles h path;
    Hashtbl.replace t.paths2h path h;
    h

let path_of_fh t fh =
  match Hashtbl.find_opt t.handles fh with
  | Some path when Hashtbl.mem t.nodes path -> Ok path
  | Some _ | None -> Error Estale

let node_at t path =
  match Hashtbl.find_opt t.nodes path with Some n -> Ok n | None -> Error Estale

let fresh_node t kind ~mode ~uid ~gid ~data =
  let id = t.next_id in
  t.next_id <- id + 1;
  let now = t.now () in
  { id; kind; mode; uid; gid; data; atime = now; mtime = now; ctime = now }

let attr_of t path (n : node) =
  let size =
    match n.kind with
    | Reg | Lnk -> String.length n.data
    | Dir ->
      (* Derived from a table scan: hash file systems have no dir blocks. *)
      Hashtbl.fold
        (fun p _ acc ->
          if (not (String.equal p "")) && String.equal (parent_of p) path then acc + 1
          else acc)
        t.nodes 0
      * 64
  in
  {
    Server_intf.a_ftype = n.kind;
    a_mode = n.mode;
    a_uid = n.uid;
    a_gid = n.gid;
    a_size = size;
    a_fsid = t.fsid;
    a_fileid = n.id;
    a_atime = n.atime;
    a_mtime = n.mtime;
    a_ctime = n.ctime;
  }

(* Deterministic latent bug: when armed, writes whose payload contains the
   poison string are silently corrupted. *)
let poison_filter t data =
  match t.poison with
  | Some p when Base_util.Str_contains.contains data p ->
    String.map (fun c -> Char.chr (Char.code c lxor 0x01)) data
  | Some _ | None -> data

let children t dir_path =
  Hashtbl.fold
    (fun p n acc ->
      if (not (String.equal p "")) && String.equal (parent_of p) dir_path then
        (leaf_of p, p, n) :: acc
      else acc)
    t.nodes []

let make ~seed ~now =
  let prng = Prng.create seed in
  let t =
    {
      now;
      fsid = 0x2000 + Prng.int prng 0xdfff;
      nodes = Hashtbl.create 256;
      handles = Hashtbl.create 256;
      paths2h = Hashtbl.create 256;
      next_id = 1;
      prng;
      poison = None;
    }
  in
  Hashtbl.replace t.nodes "" (fresh_node t Dir ~mode:0o755 ~uid:0 ~gid:0 ~data:"");
  t

let with_dir t fh k =
  match path_of_fh t fh with
  | Error e -> Error e
  | Ok path -> (
    match node_at t path with
    | Error e -> Error e
    | Ok n -> if n.kind <> Dir then Error Enotdir else k path n)

let add t ~dir ~name kind ~mode ~uid ~gid ~data =
    with_dir t dir (fun dpath dnode ->
        let cpath = join dpath name in
        if Hashtbl.mem t.nodes cpath then Error Eexist
        else begin
          let n = fresh_node t kind ~mode ~uid ~gid ~data in
          Hashtbl.replace t.nodes cpath n;
          dnode.mtime <- t.now ();
          dnode.ctime <- dnode.mtime;
          Ok (handle_for t cpath, attr_of t cpath n)
        end)

let delete_path t path =
  Hashtbl.remove t.nodes path;
  (match Hashtbl.find_opt t.paths2h path with
  | Some h ->
    Hashtbl.remove t.handles h;
    Hashtbl.remove t.paths2h path
  | None -> ())

(* Re-key a whole subtree from old_path to new_path (rename). *)
let move_subtree t old_path new_path =
  let prefix = old_path ^ "/" in
  let moved =
    Hashtbl.fold
      (fun p n acc ->
        if String.equal p old_path then (p, new_path, n) :: acc
        else if String.length p > String.length prefix
                && String.equal (String.sub p 0 (String.length prefix)) prefix then
          (p, new_path ^ "/" ^ String.sub p (String.length prefix)
                            (String.length p - String.length prefix),
           n)
          :: acc
        else acc)
      t.nodes []
  in
  List.iter
    (fun (old_p, new_p, n) ->
      delete_path t old_p;
      Hashtbl.replace t.nodes new_p n;
      ignore (handle_for t new_p))
    moved

let create t =
  {
    Server_intf.name = "hashfs(path)";
    root = (fun () -> handle_for t "");
    lookup =
      (fun ~dir ~name ->
        with_dir t dir (fun dpath _ ->
            let cpath = join dpath name in
            match node_at t cpath with
            | Error _ -> Error Enoent
            | Ok n -> Ok (handle_for t cpath, attr_of t cpath n)));
    getattr =
      (fun ~fh ->
        match path_of_fh t fh with
        | Error e -> Error e
        | Ok path -> ( match node_at t path with Error e -> Error e | Ok n -> Ok (attr_of t path n)));
    setattr =
      (fun ~fh (c : Server_intf.csattr) ->
        match path_of_fh t fh with
        | Error e -> Error e
        | Ok path -> (
          match node_at t path with
          | Error e -> Error e
          | Ok n -> (
            Option.iter (fun m -> n.mode <- m) c.c_mode;
            Option.iter (fun u -> n.uid <- u) c.c_uid;
            Option.iter (fun g -> n.gid <- g) c.c_gid;
            n.ctime <- t.now ();
            match (c.c_size, n.kind) with
            | None, _ -> Ok (attr_of t path n)
            | Some size, Reg ->
              n.data <- Server_intf.string_resize n.data size;
              n.mtime <- t.now ();
              Ok (attr_of t path n)
            | Some _, Dir -> Error Eisdir
            | Some _, Lnk -> Error Einval)));
    read =
      (fun ~fh ~off ~count ->
        match path_of_fh t fh with
        | Error e -> Error e
        | Ok path -> (
          match node_at t path with
          | Error e -> Error e
          | Ok n -> (
            match n.kind with
            | Reg ->
              n.atime <- t.now ();
              Ok (Server_intf.substr n.data ~off ~count)
            | Dir -> Error Eisdir
            | Lnk -> Error Einval)));
    write =
      (fun ~fh ~off ~data ->
        match path_of_fh t fh with
        | Error e -> Error e
        | Ok path -> (
            match node_at t path with
            | Error e -> Error e
            | Ok n -> (
              match n.kind with
              | Reg -> (
                let data = poison_filter t data in
                match Server_intf.string_splice n.data ~off ~data ~max_size:max_file_size with
                | Error e -> Error e
                | Ok data' ->
                  n.data <- data';
                  n.mtime <- t.now ();
                  n.ctime <- n.mtime;
                  Ok ())
              | Dir -> Error Eisdir
              | Lnk -> Error Einval)));
    create =
      (fun ~dir ~name ~mode ~uid ~gid -> add t ~dir ~name Reg ~mode ~uid ~gid ~data:"");
    mkdir = (fun ~dir ~name ~mode ~uid ~gid -> add t ~dir ~name Dir ~mode ~uid ~gid ~data:"");
    symlink =
      (fun ~dir ~name ~target ~mode ~uid ~gid ->
        add t ~dir ~name Lnk ~mode ~uid ~gid ~data:target);
    readlink =
      (fun ~fh ->
        match path_of_fh t fh with
        | Error e -> Error e
        | Ok path -> (
          match node_at t path with
          | Error e -> Error e
          | Ok n -> if n.kind = Lnk then Ok n.data else Error Einval));
    remove =
      (fun ~dir ~name ->
        with_dir t dir (fun dpath dnode ->
            let cpath = join dpath name in
            match node_at t cpath with
            | Error _ -> Error Enoent
            | Ok n ->
              if n.kind = Dir then Error Eisdir
              else begin
                delete_path t cpath;
                dnode.mtime <- t.now ();
                dnode.ctime <- dnode.mtime;
                Ok ()
              end));
    rmdir =
      (fun ~dir ~name ->
        with_dir t dir (fun dpath dnode ->
            let cpath = join dpath name in
            match node_at t cpath with
            | Error _ -> Error Enoent
            | Ok n ->
              if n.kind <> Dir then Error Enotdir
              else if children t cpath <> [] then Error Enotempty
              else begin
                delete_path t cpath;
                dnode.mtime <- t.now ();
                dnode.ctime <- dnode.mtime;
                Ok ()
              end));
    rename =
      (fun ~sdir ~sname ~ddir ~dname ->
          with_dir t sdir (fun spath snode ->
              with_dir t ddir (fun dpath dnode ->
                  let src = join spath sname in
                  let dst = join dpath dname in
                  match node_at t src with
                  | Error _ -> Error Enoent
                  | Ok _ ->
                    if String.equal src dst then Ok ()
                    else begin
                      (match node_at t dst with
                      | Ok victim ->
                        if victim.kind = Dir then
                          List.iter (fun (_, p, _) -> delete_path t p) (children t dst);
                        delete_path t dst
                      | Error _ -> ());
                      move_subtree t src dst;
                      snode.mtime <- t.now ();
                      snode.ctime <- snode.mtime;
                      dnode.mtime <- t.now ();
                      dnode.ctime <- dnode.mtime;
                      Ok ()
                    end)));
    readdir =
      (fun ~dir ->
        with_dir t dir (fun dpath _ ->
            (* Hash order: whatever the table iteration yields. *)
            Ok (List.map (fun (name, p, _) -> (name, handle_for t p)) (children t dpath))));
    identity =
      (fun ~fh ->
        match path_of_fh t fh with
        | Error e -> Error e
        | Ok path -> ( match node_at t path with Error e -> Error e | Ok n -> Ok (t.fsid, n.id)));
    restart =
      (fun () ->
        (* The handle tables are in volatile memory. *)
        t.handles <- Hashtbl.create 256;
        t.paths2h <- Hashtbl.create 256);
    corrupt =
      (fun ~prng ~count ->
        let files =
          Hashtbl.fold
            (fun _ n acc -> if n.kind = Reg && String.length n.data > 0 then n :: acc else acc)
            t.nodes []
          |> Array.of_list
        in
        let damaged = min count (Array.length files) in
        for _ = 1 to damaged do
          let n = Prng.pick prng files in
          let pos = Prng.int prng (String.length n.data) in
          let b = Bytes.of_string n.data in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
          n.data <- Bytes.to_string b
        done;
        damaged);
    set_poison = (fun p -> t.poison <- p);
  }
