(** See {!module-type:Fs_fat} interface comment: FAT-style layout with
    cluster chains, slot-ordered directories and two-second timestamps. *)

open Base_nfs.Nfs_types
module Prng = Base_util.Prng

let cluster_size = 512

type node = {
  id : int;  (* stable serial: the persistent fileid *)
  mutable kind : ftype;
  mutable mode : int;
  mutable uid : int;
  mutable gid : int;
  mutable size : int;  (* valid bytes of the cluster chain (Reg) *)
  mutable chain : int list;  (* cluster numbers holding the data (Reg) *)
  mutable target : string;  (* symlink target *)
  mutable slots : (string * int) option array;  (* directory slots (Dir) *)
  mutable atime : int64;
  mutable mtime : int64;
  mutable ctime : int64;
}

type t = {
  now : unit -> int64;
  fsid : int;
  mutable clusters : bytes array;  (* the "disk" *)
  mutable fat_free : bool array;  (* free map *)
  mutable cursor : int;  (* next-fit allocation cursor *)
  nodes : (int, node) Hashtbl.t;
  mutable next_id : int;
  mutable mount_gen : int;
  mutable poison : string option;
}

(* FAT keeps two-second timestamps. *)
let clock t = Int64.mul (Int64.div (t.now ()) 2_000_000L) 2_000_000L

let fh_of t id = Printf.sprintf "F:%d:%d" id t.mount_gen

let node_of_fh t fh =
  match String.split_on_char ':' fh with
  | [ "F"; id; gen ] when Option.equal Int.equal (int_of_string_opt gen) (Some t.mount_gen)
    -> (
    match int_of_string_opt id with
    | Some i -> ( match Hashtbl.find_opt t.nodes i with Some n -> Ok n | None -> Error Estale)
    | None -> Error Estale)
  | _ -> Error Estale

(* --- cluster management ------------------------------------------------------ *)

let grow_disk t =
  let old = Array.length t.clusters in
  let clusters = Array.init (2 * old) (fun i -> if i < old then t.clusters.(i) else Bytes.create cluster_size) in
  let fat_free = Array.init (2 * old) (fun i -> if i < old then t.fat_free.(i) else true) in
  t.clusters <- clusters;
  t.fat_free <- fat_free

let rec alloc_cluster t =
  let n = Array.length t.fat_free in
  let rec scan tried i =
    if tried >= n then None else if t.fat_free.(i) then Some i else scan (tried + 1) ((i + 1) mod n)
  in
  match scan 0 t.cursor with
  | Some c ->
    t.fat_free.(c) <- false;
    t.cursor <- (c + 1) mod n;
    Bytes.fill t.clusters.(c) 0 cluster_size '\000';
    c
  | None ->
    grow_disk t;
    alloc_cluster t

let free_chain t n =
  List.iter (fun c -> t.fat_free.(c) <- true) n.chain;
  n.chain <- [];
  n.size <- 0

let read_chain t n ~off ~count =
  let len = n.size in
  let off = min off len in
  let count = min count (len - off) in
  let out = Bytes.create count in
  let chain = Array.of_list n.chain in
  for k = 0 to count - 1 do
    let pos = off + k in
    let c = chain.(pos / cluster_size) in
    Bytes.set out k (Bytes.get t.clusters.(c) (pos mod cluster_size))
  done;
  Bytes.unsafe_to_string out

let write_chain t n ~off ~data =
  let new_len = max n.size (off + String.length data) in
  let needed = (new_len + cluster_size - 1) / cluster_size in
  while List.length n.chain < needed do
    n.chain <- n.chain @ [ alloc_cluster t ]
  done;
  let chain = Array.of_list n.chain in
  String.iteri
    (fun k ch ->
      let pos = off + k in
      Bytes.set t.clusters.(chain.(pos / cluster_size)) (pos mod cluster_size) ch)
    data;
  n.size <- new_len

let resize_chain t n size =
  if size < n.size then begin
    let needed = (size + cluster_size - 1) / cluster_size in
    let keep = ref [] in
    List.iteri (fun i c -> if i < needed then keep := c :: !keep else t.fat_free.(c) <- true) n.chain;
    n.chain <- List.rev !keep;
    n.size <- size
  end
  else if size > n.size then begin
    (* Zero-extend through the write path. *)
    let grow_from = n.size in
    n.size <- n.size;
    write_chain t n ~off:grow_from ~data:(String.make (size - grow_from) '\000')
  end

(* --- directory slots ---------------------------------------------------------- *)

let slot_find n name =
  let found = ref None in
  Array.iteri
    (fun i s ->
      match s with
      | Some (nm, id) when String.equal nm name && !found = None -> found := Some (i, id)
      | _ -> ())
    n.slots;
  !found

let slot_insert n name id =
  let rec find_free i =
    if i >= Array.length n.slots then begin
      let bigger = Array.make (2 * Array.length n.slots) None in
      Array.blit n.slots 0 bigger 0 (Array.length n.slots);
      n.slots <- bigger;
      find_free i
    end
    else if n.slots.(i) = None then i
    else find_free (i + 1)
  in
  n.slots.(find_free 0) <- Some (name, id)

let slot_remove n name =
  match slot_find n name with
  | Some (i, _) -> n.slots.(i) <- None
  | None -> ()

let listing n =
  Array.to_list n.slots |> List.filter_map Fun.id

(* --- construction -------------------------------------------------------------- *)

let fresh t kind ~mode ~uid ~gid =
  let id = t.next_id in
  t.next_id <- id + 1;
  let now = clock t in
  let n =
    {
      id;
      kind;
      mode;
      uid;
      gid;
      size = 0;
      chain = [];
      target = "";
      slots = Array.make 8 None;
      atime = now;
      mtime = now;
      ctime = now;
    }
  in
  Hashtbl.replace t.nodes id n;
  n

let make ~seed ~now =
  let prng = Prng.create seed in
  let t =
    {
      now;
      fsid = 0xF000 + Prng.int prng 0xfff;
      clusters = Array.init 64 (fun _ -> Bytes.create cluster_size);
      fat_free = Array.make 64 true;
      cursor = Prng.int prng 64;
      nodes = Hashtbl.create 128;
      next_id = 3;
      mount_gen = Prng.int prng 10_000;
      poison = None;
    }
  in
  let root = fresh t Dir ~mode:0o755 ~uid:0 ~gid:0 in
  assert (root.id = 3);
  t

let attr_of t (n : node) =
  let size =
    match n.kind with
    | Reg -> n.size
    | Lnk -> String.length n.target
    | Dir -> cluster_size * (1 + (Array.length n.slots / 16))
  in
  {
    Server_intf.a_ftype = n.kind;
    a_mode = n.mode;
    a_uid = n.uid;
    a_gid = n.gid;
    a_size = size;
    a_fsid = t.fsid;
    a_fileid = n.id;
    a_atime = n.atime;
    a_mtime = n.mtime;
    a_ctime = n.ctime;
  }

let poison_filter t data =
  match t.poison with
  | Some p when Base_util.Str_contains.contains data p ->
    String.map (fun c -> Char.chr (Char.code c lxor 0x01)) data
  | Some _ | None -> data

let with_dir t fh k =
  match node_of_fh t fh with
  | Error e -> Error e
  | Ok n -> if n.kind <> Dir then Error Enotdir else k n

let touch t n =
  n.mtime <- clock t;
  n.ctime <- n.mtime

let add t ~dir ~name kind ~mode ~uid ~gid ~target =
  with_dir t dir (fun dn ->
      match slot_find dn name with
      | Some _ -> Error Eexist
      | None ->
        let n = fresh t kind ~mode ~uid ~gid in
        n.target <- target;
        slot_insert dn name n.id;
        touch t dn;
        Ok (fh_of t n.id, attr_of t n))

let delete_node t (n : node) =
  free_chain t n;
  Hashtbl.remove t.nodes n.id

let create t =
  {
    Server_intf.name = "fatfs(cluster)";
    root = (fun () -> fh_of t 3);
    lookup =
      (fun ~dir ~name ->
        with_dir t dir (fun dn ->
            match slot_find dn name with
            | None -> Error Enoent
            | Some (_, id) -> (
              match Hashtbl.find_opt t.nodes id with
              | Some n -> Ok (fh_of t id, attr_of t n)
              | None -> Error Eio)));
    getattr =
      (fun ~fh -> match node_of_fh t fh with Error e -> Error e | Ok n -> Ok (attr_of t n));
    setattr =
      (fun ~fh (c : Server_intf.csattr) ->
        match node_of_fh t fh with
        | Error e -> Error e
        | Ok n -> (
          Option.iter (fun m -> n.mode <- m) c.c_mode;
          Option.iter (fun u -> n.uid <- u) c.c_uid;
          Option.iter (fun g -> n.gid <- g) c.c_gid;
          n.ctime <- clock t;
          match (c.c_size, n.kind) with
          | None, _ -> Ok (attr_of t n)
          | Some size, Reg ->
            resize_chain t n size;
            touch t n;
            Ok (attr_of t n)
          | Some _, Dir -> Error Eisdir
          | Some _, Lnk -> Error Einval));
    read =
      (fun ~fh ~off ~count ->
        match node_of_fh t fh with
        | Error e -> Error e
        | Ok n -> (
          match n.kind with
          | Reg ->
            n.atime <- clock t;
            Ok (read_chain t n ~off ~count)
          | Dir -> Error Eisdir
          | Lnk -> Error Einval));
    write =
      (fun ~fh ~off ~data ->
        match node_of_fh t fh with
        | Error e -> Error e
        | Ok n -> (
          match n.kind with
          | Reg ->
            if off + String.length data > max_file_size then Error Efbig
            else begin
              let data = poison_filter t data in
              write_chain t n ~off ~data;
              touch t n;
              Ok ()
            end
          | Dir -> Error Eisdir
          | Lnk -> Error Einval));
    create =
      (fun ~dir ~name ~mode ~uid ~gid -> add t ~dir ~name Reg ~mode ~uid ~gid ~target:"");
    mkdir = (fun ~dir ~name ~mode ~uid ~gid -> add t ~dir ~name Dir ~mode ~uid ~gid ~target:"");
    symlink =
      (fun ~dir ~name ~target ~mode ~uid ~gid -> add t ~dir ~name Lnk ~mode ~uid ~gid ~target);
    readlink =
      (fun ~fh ->
        match node_of_fh t fh with
        | Error e -> Error e
        | Ok n -> if n.kind = Lnk then Ok n.target else Error Einval);
    remove =
      (fun ~dir ~name ->
        with_dir t dir (fun dn ->
            match slot_find dn name with
            | None -> Error Enoent
            | Some (_, id) -> (
              match Hashtbl.find_opt t.nodes id with
              | None -> Error Eio
              | Some n ->
                if n.kind = Dir then Error Eisdir
                else begin
                  slot_remove dn name;
                  delete_node t n;
                  touch t dn;
                  Ok ()
                end)));
    rmdir =
      (fun ~dir ~name ->
        with_dir t dir (fun dn ->
            match slot_find dn name with
            | None -> Error Enoent
            | Some (_, id) -> (
              match Hashtbl.find_opt t.nodes id with
              | None -> Error Eio
              | Some n ->
                if n.kind <> Dir then Error Enotdir
                else if listing n <> [] then Error Enotempty
                else begin
                  slot_remove dn name;
                  delete_node t n;
                  touch t dn;
                  Ok ()
                end)));
    rename =
      (fun ~sdir ~sname ~ddir ~dname ->
        with_dir t sdir (fun sdn ->
            with_dir t ddir (fun ddn ->
                match slot_find sdn sname with
                | None -> Error Enoent
                | Some (_, id) ->
                  if sdn.id = ddn.id && String.equal sname dname then Ok ()
                  else begin
                    (match slot_find ddn dname with
                    | Some (_, victim_id) -> (
                      slot_remove ddn dname;
                      match Hashtbl.find_opt t.nodes victim_id with
                      | Some victim -> delete_node t victim
                      | None -> ())
                    | None -> ());
                    slot_remove sdn sname;
                    slot_insert ddn dname id;
                    touch t sdn;
                    touch t ddn;
                    Ok ()
                  end)));
    readdir =
      (fun ~dir ->
        with_dir t dir (fun dn ->
            (* Slot order: creation order with holes reused — FAT style. *)
            Ok (List.map (fun (name, id) -> (name, fh_of t id)) (listing dn))));
    identity =
      (fun ~fh -> match node_of_fh t fh with Error e -> Error e | Ok n -> Ok (t.fsid, n.id));
    restart = (fun () -> t.mount_gen <- t.mount_gen + 1);
    corrupt =
      (fun ~prng ~count ->
        let files =
          Hashtbl.fold (fun _ n acc -> if n.kind = Reg && n.size > 0 then n :: acc else acc)
            t.nodes []
          |> Array.of_list
        in
        let damaged = min count (Array.length files) in
        for _ = 1 to damaged do
          let n = Prng.pick prng files in
          (* Flip a byte in one of the file's clusters: silent disk rot. *)
          let pos = Prng.int prng n.size in
          let chain = Array.of_list n.chain in
          let c = chain.(pos / cluster_size) in
          let o = pos mod cluster_size in
          Bytes.set t.clusters.(c) o (Char.chr (Char.code (Bytes.get t.clusters.(c) o) lxor 0xff))
        done;
        damaged);
    set_poison = (fun p -> t.poison <- p);
  }
