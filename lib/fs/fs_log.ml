(** "LogFS": a log-structured file system.

    All updates append immutable node versions to a log; an index maps node
    ids to their latest log offset, and the log is compacted when garbage
    accumulates.  Quirks:
    - file handles encode (boot epoch, node id) and die with the epoch;
    - directory entries are kept in reverse insertion order;
    - timestamps come from the host's own clock, with a fixed boot offset
      (this server's clock was never synchronised). *)

open Base_nfs.Nfs_types
module Prng = Base_util.Prng

type version = {
  id : int;
  kind : ftype;
  mode : int;
  uid : int;
  gid : int;
  data : string;  (* file content or symlink target *)
  entries : (string * int) list;  (* reverse insertion order, dirs only *)
  atime : int64;
  mtime : int64;
  ctime : int64;
}

type t = {
  now : unit -> int64;
  clock_offset : int64;
  fsid : int;
  mutable log : version option array;  (* None = hole left by compaction *)
  mutable log_len : int;
  index : (int, int) Hashtbl.t;  (* id -> offset of latest version *)
  mutable next_id : int;
  mutable epoch : int;
  mutable live : int;
  mutable poison : string option;
}

let fh_of t id = Printf.sprintf "L:%d:%d" t.epoch id

let id_of_fh t fh =
  match String.split_on_char ':' fh with
  | [ "L"; epoch; id ] when Option.equal Int.equal (int_of_string_opt epoch) (Some t.epoch)
    -> (
    match int_of_string_opt id with Some i -> Ok i | None -> Error Estale)
  | _ -> Error Estale

let clock t = Int64.add (t.now ()) t.clock_offset

let append t v =
  if t.log_len >= Array.length t.log then begin
    let bigger = Array.make (2 * Array.length t.log) None in
    Array.blit t.log 0 bigger 0 t.log_len;
    t.log <- bigger
  end;
  t.log.(t.log_len) <- Some v;
  (if not (Hashtbl.mem t.index v.id) then t.live <- t.live + 1);
  Hashtbl.replace t.index v.id t.log_len;
  t.log_len <- t.log_len + 1

let compact t =
  let survivors =
    Hashtbl.fold (fun _ off acc -> (off, Option.get t.log.(off)) :: acc) t.index []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let fresh = Array.make (max 64 (2 * List.length survivors)) None in
  Hashtbl.reset t.index;
  t.log <- fresh;
  t.log_len <- 0;
  t.live <- 0;
  List.iter (fun (_, v) -> append t v) survivors

let maybe_compact t = if t.log_len > 64 && t.log_len > 4 * t.live then compact t

let latest t id =
  match Hashtbl.find_opt t.index id with
  | Some off -> ( match t.log.(off) with Some v -> Ok v | None -> Error Eio)
  | None -> Error Estale

let update t (v : version) =
  append t v;
  maybe_compact t

let drop t id =
  Hashtbl.remove t.index id;
  t.live <- t.live - 1

let node_of_fh t fh =
  match id_of_fh t fh with Error e -> Error e | Ok id -> latest t id

let attr_of t (v : version) =
  let size =
    match v.kind with
    | Reg | Lnk -> String.length v.data
    | Dir -> 128 + (40 * List.length v.entries)
  in
  {
    Server_intf.a_ftype = v.kind;
    a_mode = v.mode;
    a_uid = v.uid;
    a_gid = v.gid;
    a_size = size;
    a_fsid = t.fsid;
    a_fileid = v.id;
    a_atime = v.atime;
    a_mtime = v.mtime;
    a_ctime = v.ctime;
  }

(* Deterministic latent bug: when armed, writes whose payload contains the
   poison string are silently corrupted. *)
let poison_filter t data =
  match t.poison with
  | Some p when Base_util.Str_contains.contains data p ->
    String.map (fun c -> Char.chr (Char.code c lxor 0x01)) data
  | Some _ | None -> data

let make ~seed ~now =
  let prng = Prng.create seed in
  let t =
    {
      now;
      clock_offset = Int64.of_int (Prng.int prng 10_000_000);
      fsid = 0x4000 + Prng.int prng 0xbfff;
      log = Array.make 64 None;
      log_len = 0;
      index = Hashtbl.create 256;
      next_id = 2;
      epoch = Prng.int prng 1000;
      live = 0;
      poison = None;
    }
  in
  let now0 = clock t in
  append t
    {
      id = 1;
      kind = Dir;
      mode = 0o755;
      uid = 0;
      gid = 0;
      data = "";
      entries = [];
      atime = now0;
      mtime = now0;
      ctime = now0;
    };
  t

let fresh t kind ~mode ~uid ~gid ~data =
  let id = t.next_id in
  t.next_id <- id + 1;
  let now = clock t in
  { id; kind; mode; uid; gid; data; entries = []; atime = now; mtime = now; ctime = now }

let with_dir t fh k =
  match node_of_fh t fh with
  | Error e -> Error e
  | Ok v -> if v.kind <> Dir then Error Enotdir else k v

let touch_dir t (v : version) entries =
  let now = clock t in
  update t { v with entries; mtime = now; ctime = now }

let add t ~dir ~name kind ~mode ~uid ~gid ~data =
    with_dir t dir (fun dv ->
        if List.mem_assoc name dv.entries then Error Eexist
        else begin
          let v = fresh t kind ~mode ~uid ~gid ~data in
          append t v;
          touch_dir t dv ((name, v.id) :: dv.entries);
          Ok (fh_of t v.id, attr_of t v)
        end)

let create t =
  {
    Server_intf.name = "logfs";
    root = (fun () -> fh_of t 1);
    lookup =
      (fun ~dir ~name ->
        with_dir t dir (fun dv ->
            match List.assoc_opt name dv.entries with
            | None -> Error Enoent
            | Some id -> (
              match latest t id with
              | Error e -> Error e
              | Ok v -> Ok (fh_of t id, attr_of t v))));
    getattr =
      (fun ~fh -> match node_of_fh t fh with Error e -> Error e | Ok v -> Ok (attr_of t v));
    setattr =
      (fun ~fh (c : Server_intf.csattr) ->
        match node_of_fh t fh with
        | Error e -> Error e
        | Ok v -> (
          let v =
            {
              v with
              mode = Option.value c.c_mode ~default:v.mode;
              uid = Option.value c.c_uid ~default:v.uid;
              gid = Option.value c.c_gid ~default:v.gid;
              ctime = clock t;
            }
          in
          match (c.c_size, v.kind) with
          | None, _ ->
            update t v;
            Ok (attr_of t v)
          | Some size, Reg ->
            let v = { v with data = Server_intf.string_resize v.data size; mtime = clock t } in
            update t v;
            Ok (attr_of t v)
          | Some _, Dir -> Error Eisdir
          | Some _, Lnk -> Error Einval));
    read =
      (fun ~fh ~off ~count ->
        match node_of_fh t fh with
        | Error e -> Error e
        | Ok v -> (
          match v.kind with
          | Reg -> Ok (Server_intf.substr v.data ~off ~count)
          | Dir -> Error Eisdir
          | Lnk -> Error Einval));
    write =
      (fun ~fh ~off ~data ->
        match node_of_fh t fh with
        | Error e -> Error e
        | Ok v -> (
          match v.kind with
          | Reg -> (
            let data = poison_filter t data in
            match Server_intf.string_splice v.data ~off ~data ~max_size:max_file_size with
            | Error e -> Error e
            | Ok data' ->
              let now = clock t in
              update t { v with data = data'; mtime = now; ctime = now };
              Ok ())
          | Dir -> Error Eisdir
          | Lnk -> Error Einval));
    create = (fun ~dir ~name ~mode ~uid ~gid -> add t ~dir ~name Reg ~mode ~uid ~gid ~data:"");
    mkdir = (fun ~dir ~name ~mode ~uid ~gid -> add t ~dir ~name Dir ~mode ~uid ~gid ~data:"");
    symlink =
      (fun ~dir ~name ~target ~mode ~uid ~gid ->
        add t ~dir ~name Lnk ~mode ~uid ~gid ~data:target);
    readlink =
      (fun ~fh ->
        match node_of_fh t fh with
        | Error e -> Error e
        | Ok v -> if v.kind = Lnk then Ok v.data else Error Einval);
    remove =
      (fun ~dir ~name ->
        with_dir t dir (fun dv ->
            match List.assoc_opt name dv.entries with
            | None -> Error Enoent
            | Some id -> (
              match latest t id with
              | Error e -> Error e
              | Ok v ->
                if v.kind = Dir then Error Eisdir
                else begin
                  drop t id;
                  touch_dir t dv (List.remove_assoc name dv.entries);
                  Ok ()
                end)));
    rmdir =
      (fun ~dir ~name ->
        with_dir t dir (fun dv ->
            match List.assoc_opt name dv.entries with
            | None -> Error Enoent
            | Some id -> (
              match latest t id with
              | Error e -> Error e
              | Ok v ->
                if v.kind <> Dir then Error Enotdir
                else if v.entries <> [] then Error Enotempty
                else begin
                  drop t id;
                  touch_dir t dv (List.remove_assoc name dv.entries);
                  Ok ()
                end)));
    rename =
      (fun ~sdir ~sname ~ddir ~dname ->
          with_dir t sdir (fun sv ->
              with_dir t ddir (fun dv ->
                  match List.assoc_opt sname sv.entries with
                  | None -> Error Enoent
                  | Some id ->
                    if sv.id = dv.id && String.equal sname dname then Ok ()
                    else if sv.id = dv.id then begin
                      (match List.assoc_opt dname sv.entries with
                      | Some victim -> drop t victim
                      | None -> ());
                      let entries =
                        List.remove_assoc dname (List.remove_assoc sname sv.entries)
                      in
                      touch_dir t sv ((dname, id) :: entries);
                      Ok ()
                    end
                    else begin
                      (match List.assoc_opt dname dv.entries with
                      | Some victim -> drop t victim
                      | None -> ());
                      touch_dir t sv (List.remove_assoc sname sv.entries);
                      (* Re-read the destination: touch_dir appended a new
                         version of the source directory to the log. *)
                      (match latest t dv.id with
                      | Ok dv' ->
                        touch_dir t dv' ((dname, id) :: List.remove_assoc dname dv'.entries)
                      | Error _ -> ());
                      Ok ()
                    end)));
    readdir =
      (fun ~dir ->
        with_dir t dir (fun dv ->
            Ok (List.map (fun (name, id) -> (name, fh_of t id)) dv.entries)));
    identity =
      (fun ~fh ->
        match node_of_fh t fh with Error e -> Error e | Ok v -> Ok (t.fsid, v.id));
    restart = (fun () -> t.epoch <- t.epoch + 1);
    corrupt =
      (fun ~prng ~count ->
        let files =
          Hashtbl.fold
            (fun id _ acc ->
              match latest t id with
              | Ok v when v.kind = Reg && String.length v.data > 0 -> v :: acc
              | Ok _ | Error _ -> acc)
            t.index []
          |> Array.of_list
        in
        let damaged = min count (Array.length files) in
        for _ = 1 to damaged do
          let v = Prng.pick prng files in
          let pos = Prng.int prng (String.length v.data) in
          let b = Bytes.of_string v.data in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
          update t { v with data = Bytes.to_string b }
        done;
        damaged);
    set_poison = (fun p -> t.poison <- p);
  }
