(** XDR-style external data representation (RFC 1014 subset).

    The paper encodes every entry of the abstract file-service state with XDR
    so that heterogeneous replicas agree on the byte-level value of the
    abstract state.  This module provides the encoder/decoder pair used for
    abstract objects and protocol payloads.

    Conventions follow RFC 1014: all quantities are big-endian and padded to
    4-byte multiples; variable-length data is length-prefixed.

    Both directions are built for the hot path: the encoder writes into a
    growable byte buffer without per-character checks, and a decoder is a
    cursor over a slice of the backing string, so nested records decode
    zero-copy through {!read_view}/{!view_decoder} — only fields the caller
    actually stores are materialised ({!read_opaque}). *)

type encoder

val encoder : unit -> encoder

val u32 : encoder -> int -> unit
(** Encode an unsigned 32-bit quantity.  Raises [Invalid_argument] if the
    value does not fit. *)

val i64 : encoder -> int64 -> unit

val bool : encoder -> bool -> unit

val opaque : encoder -> string -> unit
(** Variable-length opaque data: u32 length + bytes + padding. *)

val str : encoder -> string -> unit
(** Same wire format as {!opaque}; kept separate for readability. *)

val list : encoder -> (encoder -> 'a -> unit) -> 'a list -> unit
(** u32 count followed by each element. *)

val option : encoder -> (encoder -> 'a -> unit) -> 'a option -> unit

val contents : encoder -> string
(** The bytes encoded so far. *)

(** Decoding raises {!Decode_error} on malformed input — truncation, bad
    discriminants, or trailing garbage (via {!expect_end}). *)

exception Decode_error of string

type decoder

val decoder : ?pos:int -> ?len:int -> string -> decoder
(** A cursor over [data.[pos .. pos+len)] (the whole string by default).
    Raises [Base_util.Invariant.Violation] if the slice is out of bounds —
    slicing is a caller decision, not wire input. *)

val read_u32 : decoder -> int

val read_i64 : decoder -> int64

val read_bool : decoder -> bool

val read_opaque : decoder -> string
(** Materialises an owned copy of the field.  Use {!read_view} when the
    bytes are only inspected, compared or re-decoded. *)

val read_str : decoder -> string

val read_list : decoder -> (decoder -> 'a) -> 'a list

val read_option : decoder -> (decoder -> 'a) -> 'a option

val expect_end : decoder -> unit

val remaining : decoder -> int

(** {1 Zero-copy views}

    A view is the coordinates of an opaque field inside the backing string:
    no bytes move until the caller decides they must. *)

type view = { view_base : string; view_pos : int; view_len : int }

val read_view : decoder -> view
(** Wire-compatible with {!read_opaque}, without the copy. *)

val view_to_string : view -> string

val view_decoder : view -> decoder
(** Decode the view's bytes in place — replaces the
    [decoder (read_opaque d)] pattern for nested structures. *)

val view_equal_string : view -> string -> bool
(** Bytewise comparison without materialising the view. *)

(** {1 Reference readers (test-only)}

    The pre-overhaul allocating readers, kept verbatim as the oracle for
    the differential decode fuzz suite: on every input the slice readers
    must produce identical values and identical {!Decode_error}s.  Not for
    production use. *)

module Ref : sig
  type decoder

  val decoder : string -> decoder

  val read_u32 : decoder -> int

  val read_i64 : decoder -> int64

  val read_bool : decoder -> bool

  val read_opaque : decoder -> string

  val read_str : decoder -> string

  val read_list : decoder -> (decoder -> 'a) -> 'a list

  val read_option : decoder -> (decoder -> 'a) -> 'a option

  val expect_end : decoder -> unit

  val remaining : decoder -> int
end
