type encoder = Buffer.t

exception Decode_error of string

let encoder () = Buffer.create 256

let u32 buf v =
  Base_util.Invariant.require (v >= 0 && v <= 0xffffffff) "Xdr.u32: out of range";
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let i64 buf v =
  for i = 7 downto 0 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))
  done

let bool buf b = u32 buf (if b then 1 else 0)

let pad_len n = (4 - (n mod 4)) mod 4

let opaque buf s =
  u32 buf (String.length s);
  Buffer.add_string buf s;
  for _ = 1 to pad_len (String.length s) do
    Buffer.add_char buf '\000'
  done

let str = opaque

let list buf enc xs =
  u32 buf (List.length xs);
  List.iter (enc buf) xs

let option buf enc = function
  | None -> u32 buf 0
  | Some x ->
    u32 buf 1;
    enc buf x

let contents = Buffer.contents

type decoder = { data : string; mutable pos : int }

let decoder data = { data; pos = 0 }

let need d n =
  if d.pos + n > String.length d.data then raise (Decode_error "truncated input")

let read_u32 d =
  need d 4;
  let b i = Char.code d.data.[d.pos + i] in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  d.pos <- d.pos + 4;
  v

let read_i64 d =
  need d 8;
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code d.data.[d.pos + i]))
  done;
  d.pos <- d.pos + 8;
  !v

let read_bool d =
  match read_u32 d with
  | 0 -> false
  | 1 -> true
  | n -> raise (Decode_error (Printf.sprintf "bad bool discriminant %d" n))

let read_opaque d =
  let len = read_u32 d in
  need d (len + pad_len len);
  let s = String.sub d.data d.pos len in
  d.pos <- d.pos + len + pad_len len;
  s

let read_str = read_opaque

let read_list d dec =
  let n = read_u32 d in
  if n > String.length d.data - d.pos then raise (Decode_error "implausible list length");
  List.init n (fun _ -> dec d)

let read_option d dec =
  match read_u32 d with
  | 0 -> None
  | 1 -> Some (dec d)
  | n -> raise (Decode_error (Printf.sprintf "bad option discriminant %d" n))

let expect_end d =
  if d.pos <> String.length d.data then raise (Decode_error "trailing bytes")

let remaining d = String.length d.data - d.pos
