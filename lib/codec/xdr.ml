exception Decode_error of string

(* --- encoding --------------------------------------------------------------

   The encoder writes straight into a growable [Bytes.t].  Buffer.add_char
   per byte (the previous implementation, kept under {!Ref}) pays a bounds
   check and a capacity check per character; sealing hashes and MACs every
   protocol message, so encode cost is pure hot-path overhead.  All stores
   below go through [Bytes.unsafe_set] only after [ensure] has established
   capacity. *)

type encoder = { mutable buf : Bytes.t; mutable len : int }

let encoder () = { buf = Bytes.create 256; len = 0 }

let ensure e n =
  let cap = Bytes.length e.buf in
  if e.len + n > cap then begin
    let new_cap = ref (if cap = 0 then 256 else 2 * cap) in
    while e.len + n > !new_cap do
      new_cap := 2 * !new_cap
    done;
    let b = Bytes.create !new_cap in
    Bytes.blit e.buf 0 b 0 e.len;
    e.buf <- b
  end

let u32 e v =
  Base_util.Invariant.require (v >= 0 && v <= 0xffffffff) "Xdr.u32: out of range";
  ensure e 4;
  let p = e.len in
  Bytes.unsafe_set e.buf p (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set e.buf (p + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set e.buf (p + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set e.buf (p + 3) (Char.unsafe_chr (v land 0xff));
  e.len <- p + 4

let i64 e v =
  ensure e 8;
  Bytes.set_int64_be e.buf e.len v;
  e.len <- e.len + 8

let bool e b = u32 e (if b then 1 else 0)

let pad_len n = (4 - (n mod 4)) mod 4

let opaque e s =
  let n = String.length s in
  let pad = pad_len n in
  u32 e n;
  ensure e (n + pad);
  Bytes.blit_string s 0 e.buf e.len n;
  for i = 0 to pad - 1 do
    Bytes.unsafe_set e.buf (e.len + n + i) '\000'
  done;
  e.len <- e.len + n + pad

let str = opaque

let list e enc xs =
  u32 e (List.length xs);
  List.iter (enc e) xs

let option e enc = function
  | None -> u32 e 0
  | Some x ->
    u32 e 1;
    enc e x

let contents e = Bytes.sub_string e.buf 0 e.len

(* --- decoding --------------------------------------------------------------

   A decoder is a cursor over a [pos, limit) slice of a backing string, so
   nested structures decode in place: {!read_view} yields the coordinates
   of an opaque field without copying it, and {!view_decoder} recurses into
   one without [String.sub].  {!read_opaque} still materialises an owned
   string for callers that store the field. *)

type decoder = { data : string; mutable pos : int; limit : int }

let decoder ?(pos = 0) ?len data =
  let limit = match len with Some l -> pos + l | None -> String.length data in
  Base_util.Invariant.require
    (pos >= 0 && limit <= String.length data && pos <= limit)
    "Xdr.decoder: slice out of bounds";
  { data; pos; limit }

let need d n = if n < 0 || d.pos + n > d.limit then raise (Decode_error "truncated input")

let read_u32 d =
  need d 4;
  let b i = Char.code (String.unsafe_get d.data (d.pos + i)) in
  let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  d.pos <- d.pos + 4;
  v

let read_i64 d =
  need d 8;
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (String.unsafe_get d.data (d.pos + i))))
  done;
  d.pos <- d.pos + 8;
  !v

let read_bool d =
  match read_u32 d with
  | 0 -> false
  | 1 -> true
  | n -> raise (Decode_error (Printf.sprintf "bad bool discriminant %d" n))

type view = { view_base : string; view_pos : int; view_len : int }

let read_view d =
  let len = read_u32 d in
  need d (len + pad_len len);
  let v = { view_base = d.data; view_pos = d.pos; view_len = len } in
  d.pos <- d.pos + len + pad_len len;
  v

let view_to_string v = String.sub v.view_base v.view_pos v.view_len

let view_decoder v = { data = v.view_base; pos = v.view_pos; limit = v.view_pos + v.view_len }

let view_equal_string v s =
  String.length s = v.view_len
  &&
  let rec eq i =
    i >= v.view_len
    || (String.unsafe_get v.view_base (v.view_pos + i) = String.unsafe_get s i && eq (i + 1))
  in
  eq 0

let read_opaque d = view_to_string (read_view d)

let read_str = read_opaque

let read_list d dec =
  let n = read_u32 d in
  if n > d.limit - d.pos then raise (Decode_error "implausible list length");
  List.init n (fun _ -> dec d)

let read_option d dec =
  match read_u32 d with
  | 0 -> None
  | 1 -> Some (dec d)
  | n -> raise (Decode_error (Printf.sprintf "bad option discriminant %d" n))

let expect_end d = if d.pos <> d.limit then raise (Decode_error "trailing bytes")

let remaining d = d.limit - d.pos

(* --- reference implementation ----------------------------------------------

   The pre-overhaul readers, verbatim: a [Buffer]-style cursor over the
   whole backing string with a [String.sub] per opaque field.  Kept only as
   the oracle for the differential fuzz suite (test_fuzz_decode.ml): the
   slice readers above must produce identical values and identical typed
   errors on every input, while allocating strictly less. *)

module Ref = struct
  type decoder = { data : string; mutable pos : int }

  let decoder data = { data; pos = 0 }

  let need d n =
    if n < 0 || d.pos + n > String.length d.data then raise (Decode_error "truncated input")

  let read_u32 d =
    need d 4;
    let b i = Char.code d.data.[d.pos + i] in
    let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    d.pos <- d.pos + 4;
    v

  let read_i64 d =
    need d 8;
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code d.data.[d.pos + i]))
    done;
    d.pos <- d.pos + 8;
    !v

  let read_bool d =
    match read_u32 d with
    | 0 -> false
    | 1 -> true
    | n -> raise (Decode_error (Printf.sprintf "bad bool discriminant %d" n))

  let read_opaque d =
    let len = read_u32 d in
    need d (len + pad_len len);
    let s = String.sub d.data d.pos len in
    d.pos <- d.pos + len + pad_len len;
    s

  let read_str = read_opaque

  let read_list d dec =
    let n = read_u32 d in
    if n > String.length d.data - d.pos then raise (Decode_error "implausible list length");
    List.init n (fun _ -> dec d)

  let read_option d dec =
    match read_u32 d with
    | 0 -> None
    | 1 -> Some (dec d)
    | n -> raise (Decode_error (Printf.sprintf "bad option discriminant %d" n))

  let expect_end d = if d.pos <> String.length d.data then raise (Decode_error "trailing bytes")

  let remaining d = String.length d.data - d.pos
end
