(* Tests of the workload machinery: the Andrew generator's determinism and
   accounting, the cost model, and functional equivalence of the replicated
   service and the raw baseline on the same workload. *)

module Systems = Base_workload.Systems
module Fs_iface = Base_workload.Fs_iface
module Andrew = Base_workload.Andrew
module Cost_model = Base_workload.Cost_model
module S = Base_fs.Server_intf

let phases (r : Andrew.result) = List.map (fun p -> p.Andrew.phase) r.Andrew.phases

let test_andrew_phases_and_accounting () =
  let raw = Systems.make_direct ~impl:"btree" () in
  let r = Andrew.run ~scale:2 (Fs_iface.of_direct raw) in
  Alcotest.(check (list string)) "five phases in order"
    [ "mkdir"; "copy"; "scan"; "read"; "make" ]
    (phases r);
  List.iter
    (fun (p : Andrew.phase_result) ->
      Alcotest.(check bool) (p.Andrew.phase ^ " did ops") true (p.Andrew.ops > 0);
      Alcotest.(check bool) (p.Andrew.phase ^ " took time") true (p.Andrew.seconds > 0.0))
    r.Andrew.phases;
  (* The read phase reads back exactly the bytes the copy phase wrote. *)
  let by_name n = List.find (fun p -> p.Andrew.phase = n) r.Andrew.phases in
  Alcotest.(check int) "read = copy bytes" (by_name "copy").Andrew.bytes
    (by_name "read").Andrew.bytes

let test_andrew_scales () =
  let run scale =
    let raw = Systems.make_direct ~impl:"inode" () in
    (Andrew.run ~scale (Fs_iface.of_direct raw)).Andrew.total_bytes
  in
  let b1 = run 1 and b3 = run 3 in
  Alcotest.(check bool)
    (Printf.sprintf "scale grows the data volume (%d -> %d)" b1 b3)
    true (b3 > 2 * b1)

let test_andrew_deterministic () =
  let run () =
    let raw = Systems.make_direct ~impl:"log" () in
    let r = Andrew.run ~scale:1 (Fs_iface.of_direct raw) in
    (r.Andrew.total_bytes, r.Andrew.total_seconds)
  in
  Alcotest.(check bool) "same run twice" true (run () = run ())

let test_cost_model_monotone () =
  let c = Cost_model.default in
  Alcotest.(check bool) "reads cheaper than writes" true
    (Cost_model.op_cost_us c ~read_only:true ~bytes:1024
    < Cost_model.op_cost_us c ~read_only:false ~bytes:1024);
  Alcotest.(check bool) "bigger payload costs more" true
    (Cost_model.op_cost_us c ~read_only:false ~bytes:8192
    > Cost_model.op_cost_us c ~read_only:false ~bytes:512)

(* The decisive functional check: the replicated service and the raw
   baseline expose the same file-system contents after the same workload. *)
let rec tree_listing (fs : Fs_iface.t) dir prefix =
  List.concat_map
    (fun (name, fh) ->
      match fs.Fs_iface.lookup ~dir ~name with
      | Some (fh', Base_nfs.Nfs_types.Dir) ->
        (prefix ^ name ^ "/", "") :: tree_listing fs fh' (prefix ^ name ^ "/")
      | Some (_, Base_nfs.Nfs_types.Reg) ->
        let size = fs.Fs_iface.size_of ~fh in
        let data = fs.Fs_iface.read ~fh ~off:0 ~count:size in
        [ (prefix ^ name, data) ]
      | Some (_, Base_nfs.Nfs_types.Lnk) | None -> [ (prefix ^ name ^ "@", "") ])
    (fs.Fs_iface.readdir ~dir)

let test_raw_and_replicated_equivalent () =
  let raw = Systems.make_direct ~impl:"hash" () in
  let fs_raw = Fs_iface.of_direct raw in
  ignore (Andrew.run ~scale:1 fs_raw);
  let sys = Systems.make_basefs ~hetero:true ~n_clients:1 () in
  let fs_rep = Fs_iface.of_runtime ~client:0 sys.Systems.runtime in
  ignore (Andrew.run ~scale:1 fs_rep);
  let sort = List.sort compare in
  let raw_tree = sort (tree_listing fs_raw fs_raw.Fs_iface.root "") in
  let rep_tree = sort (tree_listing fs_rep fs_rep.Fs_iface.root "") in
  Alcotest.(check int) "same number of objects" (List.length raw_tree) (List.length rep_tree);
  List.iter2
    (fun (n1, d1) (n2, d2) ->
      Alcotest.(check string) "same name" n1 n2;
      if d1 <> d2 then Alcotest.failf "contents of %s differ" n1)
    raw_tree rep_tree

let test_micro_rows_sane () =
  let rows = Base_workload.Micro.run ~n:5 () in
  Alcotest.(check bool) "has rows" true (List.length rows >= 6);
  List.iter
    (fun (r : Base_workload.Micro.row) ->
      Alcotest.(check bool) (r.Base_workload.Micro.op ^ " positive") true
        (r.Base_workload.Micro.base_us > 0.0 && r.Base_workload.Micro.raw_us > 0.0))
    rows;
  (* Read-only ops must be much closer to raw than read-write ops. *)
  let mean sel =
    let xs = List.filter sel rows in
    List.fold_left (fun a r -> a +. Base_workload.Micro.slowdown r) 0.0 xs
    /. float_of_int (List.length xs)
  in
  let ro = mean (fun r -> r.Base_workload.Micro.read_only) in
  let rw = mean (fun r -> not r.Base_workload.Micro.read_only) in
  Alcotest.(check bool)
    (Printf.sprintf "ro (%.2fx) cheaper than rw (%.2fx)" ro rw)
    true (ro < rw)

let suite =
  [
    Alcotest.test_case "andrew phases + accounting" `Quick test_andrew_phases_and_accounting;
    Alcotest.test_case "andrew scales" `Quick test_andrew_scales;
    Alcotest.test_case "andrew deterministic" `Quick test_andrew_deterministic;
    Alcotest.test_case "cost model monotone" `Quick test_cost_model_monotone;
    Alcotest.test_case "raw and replicated equivalent" `Slow test_raw_and_replicated_equivalent;
    Alcotest.test_case "micro-benchmark rows sane" `Slow test_micro_rows_sane;
  ]
