(* Focused tests of the proactive-recovery and catch-up machinery: STATUS
   retransmission, rollback-and-replay repair, recovery under continuous
   load, and key refresh. *)

open Helpers
module Runtime = Base_core.Runtime
module Objrepo = Base_core.Objrepo
module Replica = Base_bft.Replica
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time

let settle sys seconds =
  Engine.run ~until:(Sim_time.add (Runtime.now sys) (Sim_time.of_sec seconds))
    (Runtime.engine sys)

let drive_load sys ~ops ~gap_ms =
  for i = 0 to ops - 1 do
    ignore (set sys ~client:0 (i mod 8) (Printf.sprintf "load%d" i));
    Engine.advance_to (Runtime.engine sys)
      (Sim_time.add (Runtime.now sys) (Sim_time.of_ms gap_ms))
  done

let roots sys =
  Array.map (fun node -> Objrepo.current_root node.Runtime.repo) (Runtime.replicas sys)

let converged sys =
  let rs = roots sys in
  Array.for_all (fun r -> Base_crypto.Digest_t.equal r rs.(0)) rs

let test_status_refills_briefly_down_replica () =
  (* A replica that misses a handful of messages (no checkpoint boundary
     crossed) is refilled by STATUS retransmission, without state
     transfer. *)
  let sys, kvs = make_system ~seed:41L ~checkpoint_period:64 () in
  ignore (set sys ~client:0 0 "pre");
  Engine.set_node_up (Runtime.engine sys) 2 false;
  for i = 0 to 4 do
    ignore (set sys ~client:0 1 (Printf.sprintf "gap%d" i))
  done;
  Engine.set_node_up (Runtime.engine sys) 2 true;
  settle sys 2.0;
  let node2 = Runtime.replica sys 2 in
  Alcotest.(check int) "no state transfer needed" 0
    (Replica.stats node2.Runtime.replica).Replica.fetches;
  Alcotest.(check string) "caught up via retransmission" "gap4" kvs.(2).slots.(1)

let test_recovery_under_continuous_load () =
  let sys, _ = make_system ~seed:42L ~checkpoint_period:8 () in
  Runtime.enable_proactive_recovery ~reboot_us:80_000 ~period_us:1_200_000 sys;
  drive_load sys ~ops:60 ~gap_ms:150;
  Runtime.disable_proactive_recovery sys;
  settle sys 3.0;
  let total_recoveries =
    Array.fold_left
      (fun acc node -> acc + node.Runtime.recovery_stats.Runtime.recoveries)
      0 (Runtime.replicas sys)
  in
  Alcotest.(check bool)
    (Printf.sprintf "many recoveries happened (%d)" total_recoveries)
    true (total_recoveries >= 8);
  Alcotest.(check bool) "states converged" true (converged sys);
  (* And the service still works. *)
  Alcotest.(check string) "final op" "ok" (set sys ~client:0 0 "final")

let test_repair_of_corrupt_state () =
  (* Directly corrupt one replica's service state behind the wrapper's
     back; its digests still claim health (cached), but the recovery
     traversal recomputes them and state transfer repairs the damage. *)
  let sys, kvs = make_system ~seed:43L ~checkpoint_period:8 () in
  drive_load sys ~ops:20 ~gap_ms:50;
  kvs.(1).slots.(3) <- "CORRUPTED";
  (* The group is still fine (one faulty replica), reads are right. *)
  Alcotest.(check bool) "corruption invisible to clients" true
    (value_part (get sys ~client:0 3) <> "CORRUPTED");
  (* Keep load flowing and run replica 1 through recovery, then stop the
     watchdogs so the convergence check is not racing a fresh reboot. *)
  Runtime.enable_proactive_recovery ~reboot_us:50_000 ~period_us:800_000 sys;
  drive_load sys ~ops:30 ~gap_ms:120;
  Runtime.disable_proactive_recovery sys;
  drive_load sys ~ops:8 ~gap_ms:120;
  settle sys 3.0;
  Alcotest.(check bool) "corruption repaired" true (kvs.(1).slots.(3) <> "CORRUPTED");
  Alcotest.(check bool) "states converged" true (converged sys)

let test_recovery_refreshes_keys () =
  (* After recovery the replica has fresh MAC keys and still interoperates:
     operations keep completing after every replica recovered. *)
  let sys, _ = make_system ~seed:44L ~checkpoint_period:8 () in
  Runtime.enable_proactive_recovery ~reboot_us:50_000 ~period_us:600_000 sys;
  drive_load sys ~ops:25 ~gap_ms:120;
  Runtime.disable_proactive_recovery sys;
  Array.iter
    (fun node ->
      Alcotest.(check bool)
        (Printf.sprintf "replica %d recovered" node.Runtime.rid)
        true
        (node.Runtime.recovery_stats.Runtime.recoveries >= 1))
    (Runtime.replicas sys);
  Alcotest.(check string) "system alive with refreshed keys" "ok" (set sys ~client:0 5 "alive")

let test_rollback_replay_exact () =
  (* Force a rollback-and-replay: recover a replica right after it executed
     past the latest certified checkpoint; afterwards all replicas agree
     and the service state reflects every executed op exactly once. *)
  let sys, kvs = make_system ~seed:45L ~checkpoint_period:8 () in
  drive_load sys ~ops:12 ~gap_ms:20;
  Runtime.recover_now ~reboot_us:100_000 sys 2;
  settle sys 1.5;
  drive_load sys ~ops:4 ~gap_ms:20;
  settle sys 3.0;
  Alcotest.(check bool) "converged after rollback+replay" true (converged sys);
  (* Slot 7 was last written by op 7 of the first batch; the replay must
     reproduce it exactly once, not lose or duplicate it. *)
  Alcotest.(check string) "replayed value correct" "load7" kvs.(2).slots.(7);
  Alcotest.(check string) "post-recovery value correct" "load3" kvs.(2).slots.(3)

let test_staggering_limits_concurrent_recoveries () =
  let sys, _ = make_system ~seed:46L ~checkpoint_period:8 () in
  (* Watchdogs fire at period/4 offsets; with an 80 ms reboot and 1 s
     period, at most one replica is ever down. *)
  Runtime.enable_proactive_recovery ~reboot_us:80_000 ~period_us:1_000_000 sys;
  let max_down = ref 0 in
  for _ = 1 to 40 do
    Engine.advance_to (Runtime.engine sys)
      (Sim_time.add (Runtime.now sys) (Sim_time.of_ms 100));
    let down = ref 0 in
    for r = 0 to 3 do
      if not (Engine.node_is_up (Runtime.engine sys) r) then incr down
    done;
    max_down := max !max_down !down
  done;
  Alcotest.(check bool)
    (Printf.sprintf "at most 1 replica down at once (saw %d)" !max_down)
    true (!max_down <= 1)

let suite =
  [
    Alcotest.test_case "status refills a briefly-down replica" `Quick
      test_status_refills_briefly_down_replica;
    Alcotest.test_case "recovery under continuous load" `Quick
      test_recovery_under_continuous_load;
    Alcotest.test_case "repair of corrupt state" `Quick test_repair_of_corrupt_state;
    Alcotest.test_case "recovery refreshes keys" `Quick test_recovery_refreshes_keys;
    Alcotest.test_case "rollback and replay exact" `Quick test_rollback_replay_exact;
    Alcotest.test_case "staggering limits concurrent recoveries" `Quick
      test_staggering_limits_concurrent_recoveries;
  ]
