(* Tests of the NFS protocol codecs and the executable abstract
   specification itself (the reference model the wrappers are held to). *)

open Base_nfs.Nfs_types
module Proto = Base_nfs.Nfs_proto
module Spec = Base_nfs.Abstract_spec
module Gen = QCheck2.Gen

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- codec round-trips ---------------------------------------------------------- *)

let gen_oid = Gen.map2 (fun index gen -> { index; gen }) (Gen.int_bound 500) (Gen.int_bound 50)

let gen_sattr =
  let opt g = Gen.option g in
  Gen.map
    (fun ((m, u), (g, (s, t))) ->
      { s_mode = m; s_uid = u; s_gid = g; s_size = s; s_mtime = t })
    (Gen.pair
       (Gen.pair (opt (Gen.int_bound 0o777)) (opt (Gen.int_bound 100)))
       (Gen.pair (opt (Gen.int_bound 100))
          (Gen.pair (opt (Gen.int_bound 10_000)) (opt (Gen.map Int64.of_int Gen.nat)))))

let gen_name = Gen.oneofl [ "a"; "file.txt"; "Z"; "with space"; "x" ]

let gen_call =
  Gen.oneof
    [
      Gen.map (fun o -> Proto.Getattr o) gen_oid;
      Gen.map2 (fun o s -> Proto.Setattr (o, s)) gen_oid gen_sattr;
      Gen.map2 (fun o n -> Proto.Lookup (o, n)) gen_oid gen_name;
      Gen.map (fun o -> Proto.Readlink o) gen_oid;
      Gen.map3 (fun o off c -> Proto.Read (o, off, c)) gen_oid Gen.nat Gen.nat;
      Gen.map3 (fun o off d -> Proto.Write (o, off, d)) gen_oid Gen.nat Gen.string;
      Gen.map3 (fun o n s -> Proto.Create (o, n, s)) gen_oid gen_name gen_sattr;
      Gen.map2 (fun o n -> Proto.Remove (o, n)) gen_oid gen_name;
      Gen.map2
        (fun (so, sn) (dd, dn) -> Proto.Rename (so, sn, dd, dn))
        (Gen.pair gen_oid gen_name) (Gen.pair gen_oid gen_name);
      Gen.map3 (fun o n t -> Proto.Symlink (o, n, t, sattr_empty)) gen_oid gen_name Gen.string;
      Gen.map2 (fun o n -> Proto.Mkdir (o, n, sattr_empty)) gen_oid gen_name;
      Gen.map2 (fun o n -> Proto.Rmdir (o, n)) gen_oid gen_name;
      Gen.map (fun o -> Proto.Readdir o) gen_oid;
      Gen.pure Proto.Statfs;
    ]

let call_roundtrip =
  qtest "nfs call encode/decode round-trip" gen_call (fun c ->
      Proto.decode_call (Proto.encode_call c) = c)

let gen_fattr =
  Gen.map3
    (fun ftype (mode, size) fileid ->
      {
        ftype;
        mode;
        nlink = (match ftype with Dir -> 2 | _ -> 1);
        uid = 0;
        gid = 0;
        size;
        fsid = 1;
        fileid;
        atime = 5L;
        mtime = 5L;
        ctime = 7L;
      })
    (Gen.oneofl [ Reg; Dir; Lnk ])
    (Gen.pair (Gen.int_bound 0o777) (Gen.int_bound 100_000))
    (Gen.int_bound 512)

let gen_reply =
  Gen.oneof
    [
      Gen.map (fun e -> Proto.R_err e)
        (Gen.oneofl [ Enoent; Eexist; Enotdir; Eisdir; Einval; Efbig; Enospc; Enotempty; Estale ]);
      Gen.map (fun a -> Proto.R_attr a) gen_fattr;
      Gen.map2 (fun o a -> Proto.R_lookup (o, a)) gen_oid gen_fattr;
      Gen.map (fun s -> Proto.R_readlink s) Gen.string;
      Gen.map2 (fun d a -> Proto.R_read (d, a)) Gen.string gen_fattr;
      Gen.map2 (fun o a -> Proto.R_create (o, a)) gen_oid gen_fattr;
      Gen.pure Proto.R_ok;
      Gen.map (fun entries -> Proto.R_readdir entries) (Gen.list (Gen.pair gen_name gen_oid));
      Gen.map2
        (fun total_slots free_slots -> Proto.R_statfs { total_slots; free_slots })
        (Gen.int_bound 1000) (Gen.int_bound 1000);
    ]

let reply_roundtrip =
  qtest "nfs reply encode/decode round-trip" gen_reply (fun r ->
      Proto.decode_reply (Proto.encode_reply r) = r)

let entry_roundtrip =
  let gen_meta =
    Gen.map2
      (fun mode uid -> { Spec.mode; uid; gid = uid; mtime = 3L; ctime = 9L })
      (Gen.int_bound 0o777) (Gen.int_bound 50)
  in
  let gen_obj =
    Gen.oneof
      [
        Gen.pure Spec.Null;
        Gen.map2 (fun meta data -> Spec.File { meta; data }) gen_meta Gen.string;
        Gen.map2
          (fun meta entries ->
            Spec.Directory { meta; entries = List.sort_uniq compare entries })
          gen_meta
          (Gen.list (Gen.pair gen_name gen_oid));
        Gen.map2 (fun meta target -> Spec.Symlink { meta; target }) gen_meta Gen.string;
      ]
  in
  qtest "abstract entry encode/decode round-trip"
    (Gen.map2 (fun gen obj -> { Spec.gen; obj }) (Gen.int_bound 100) gen_obj)
    (fun en -> Spec.decode_entry (Spec.encode_entry en) = en)

(* --- model semantics -------------------------------------------------------------- *)

let fresh () = Spec.create ~n_objects:16

let exec m ?(ts = 1000L) c = Spec.execute m ~ts c

let get_create_oid = function
  | Proto.R_create (o, _) -> o
  | r -> Alcotest.failf "expected R_create, got %s" (Base_util.Hex.short (Proto.encode_reply r))

let test_model_create_write_read () =
  let m = fresh () in
  let f = get_create_oid (exec m (Proto.Create (root_oid, "f", sattr_empty))) in
  (match exec m ~ts:2000L (Proto.Write (f, 0, "hello world")) with
  | Proto.R_attr a ->
    Alcotest.(check int) "size" 11 a.size;
    Alcotest.(check int64) "mtime from ts" 2000L a.mtime
  | _ -> Alcotest.fail "write");
  match exec m (Proto.Read (f, 6, 100)) with
  | Proto.R_read (data, _) -> Alcotest.(check string) "read tail" "world" data
  | _ -> Alcotest.fail "read"

let test_model_write_extends_with_zeros () =
  let m = fresh () in
  let f = get_create_oid (exec m (Proto.Create (root_oid, "f", sattr_empty))) in
  ignore (exec m (Proto.Write (f, 4, "x")));
  match exec m (Proto.Read (f, 0, 10)) with
  | Proto.R_read (data, _) -> Alcotest.(check string) "hole zero-filled" "\000\000\000\000x" data
  | _ -> Alcotest.fail "read"

let test_model_oid_reuse_bumps_generation () =
  let m = fresh () in
  let a = get_create_oid (exec m (Proto.Create (root_oid, "a", sattr_empty))) in
  ignore (exec m (Proto.Remove (root_oid, "a")));
  let b = get_create_oid (exec m (Proto.Create (root_oid, "b", sattr_empty))) in
  Alcotest.(check int) "slot reused" a.index b.index;
  Alcotest.(check bool) "generation bumped" true (b.gen > a.gen);
  (* The old oid is now stale. *)
  match exec m (Proto.Getattr a) with
  | Proto.R_err Estale -> ()
  | _ -> Alcotest.fail "expected ESTALE"

let test_model_rename_semantics () =
  let m = fresh () in
  let d1 = get_create_oid (exec m (Proto.Mkdir (root_oid, "d1", sattr_empty))) in
  let d2 = get_create_oid (exec m (Proto.Mkdir (root_oid, "d2", sattr_empty))) in
  let f = get_create_oid (exec m (Proto.Create (d1, "f", sattr_empty))) in
  ignore (exec m (Proto.Write (f, 0, "payload")));
  (* Move between directories. *)
  (match exec m (Proto.Rename (d1, "f", d2, "g")) with
  | Proto.R_ok -> ()
  | _ -> Alcotest.fail "rename");
  (match exec m (Proto.Lookup (d1, "f")) with
  | Proto.R_err Enoent -> ()
  | _ -> Alcotest.fail "gone from source");
  (match exec m (Proto.Lookup (d2, "g")) with
  | Proto.R_lookup (o, _) -> Alcotest.(check bool) "same object" true (oid_equal o f)
  | _ -> Alcotest.fail "in dest");
  (* Renaming a directory under itself is rejected. *)
  let sub = get_create_oid (exec m (Proto.Mkdir (d2, "sub", sattr_empty))) in
  ignore sub;
  match exec m (Proto.Rename (root_oid, "d2", sub, "loop")) with
  | Proto.R_err Einval -> ()
  | _ -> Alcotest.fail "rename into own subtree must fail"

let test_model_rename_overwrite_rules () =
  let m = fresh () in
  let f1 = get_create_oid (exec m (Proto.Create (root_oid, "f1", sattr_empty))) in
  ignore f1;
  ignore (exec m (Proto.Create (root_oid, "f2", sattr_empty)));
  let d = get_create_oid (exec m (Proto.Mkdir (root_oid, "d", sattr_empty))) in
  ignore d;
  (* file over file: allowed, target freed. *)
  (match exec m (Proto.Rename (root_oid, "f1", root_oid, "f2")) with
  | Proto.R_ok -> ()
  | _ -> Alcotest.fail "file over file");
  (* file over dir: EISDIR. *)
  (match exec m (Proto.Rename (root_oid, "f2", root_oid, "d")) with
  | Proto.R_err Eisdir -> ()
  | _ -> Alcotest.fail "file over dir");
  (* dir over non-empty dir: ENOTEMPTY. *)
  let d2 = get_create_oid (exec m (Proto.Mkdir (root_oid, "d2", sattr_empty))) in
  ignore (exec m (Proto.Create (d2, "inner", sattr_empty)));
  match exec m (Proto.Rename (root_oid, "d", root_oid, "d2")) with
  | Proto.R_err Enotempty -> ()
  | _ -> Alcotest.fail "dir over non-empty dir"

let test_model_readdir_sorted () =
  let m = fresh () in
  List.iter
    (fun n -> ignore (exec m (Proto.Create (root_oid, n, sattr_empty))))
    [ "zz"; "aa"; "Mm"; "01" ];
  match exec m (Proto.Readdir root_oid) with
  | Proto.R_readdir entries ->
    Alcotest.(check (list string)) "lexicographic" [ "01"; "Mm"; "aa"; "zz" ]
      (List.map fst entries)
  | _ -> Alcotest.fail "readdir"

let test_model_nospc () =
  let m = Spec.create ~n_objects:3 in
  ignore (exec m (Proto.Create (root_oid, "a", sattr_empty)));
  ignore (exec m (Proto.Create (root_oid, "b", sattr_empty)));
  match exec m (Proto.Create (root_oid, "c", sattr_empty)) with
  | Proto.R_err Enospc -> ()
  | _ -> Alcotest.fail "expected ENOSPC"

let test_model_efbig () =
  let m = fresh () in
  let f = get_create_oid (exec m (Proto.Create (root_oid, "f", sattr_empty))) in
  match exec m (Proto.Write (f, max_file_size - 1, "xy")) with
  | Proto.R_err Efbig -> ()
  | _ -> Alcotest.fail "expected EFBIG"

let test_model_name_validation () =
  let m = fresh () in
  List.iter
    (fun bad ->
      match exec m (Proto.Create (root_oid, bad, sattr_empty)) with
      | Proto.R_err Einval -> ()
      | _ -> Alcotest.failf "name %S should be EINVAL" bad)
    [ ""; "."; ".."; "a/b"; "#hidden"; String.make 300 'x' ]

let test_model_modify_hook_fires () =
  (* The modify callback reports every mutated slot before the mutation. *)
  let m = fresh () in
  let touched = ref [] in
  let modify i = touched := i :: !touched in
  (match Spec.execute ~modify m ~ts:1L (Proto.Create (root_oid, "f", sattr_empty)) with
  | Proto.R_create (o, _) ->
    Alcotest.(check bool) "dir + new object reported" true
      (List.mem 0 !touched && List.mem o.index !touched)
  | _ -> Alcotest.fail "create");
  touched := [];
  ignore (Spec.execute ~modify m ~ts:2L (Proto.Readdir root_oid));
  Alcotest.(check (list int)) "read-only reports nothing" [] !touched

let suite =
  [
    call_roundtrip;
    reply_roundtrip;
    entry_roundtrip;
    Alcotest.test_case "create/write/read" `Quick test_model_create_write_read;
    Alcotest.test_case "write extends with zeros" `Quick test_model_write_extends_with_zeros;
    Alcotest.test_case "oid reuse bumps generation" `Quick test_model_oid_reuse_bumps_generation;
    Alcotest.test_case "rename semantics" `Quick test_model_rename_semantics;
    Alcotest.test_case "rename overwrite rules" `Quick test_model_rename_overwrite_rules;
    Alcotest.test_case "readdir sorted" `Quick test_model_readdir_sorted;
    Alcotest.test_case "ENOSPC when array full" `Quick test_model_nospc;
    Alcotest.test_case "EFBIG on oversized write" `Quick test_model_efbig;
    Alcotest.test_case "name validation" `Quick test_model_name_validation;
    Alcotest.test_case "modify hook contract" `Quick test_model_modify_hook_fires;
  ]
