(* Differential tests of the conformance wrappers against the executable
   abstract specification: every off-the-shelf implementation, once wrapped,
   must produce byte-identical replies and byte-identical abstract states on
   arbitrary operation sequences — that is the paper's conformance claim. *)

open Base_nfs.Nfs_types
module Proto = Base_nfs.Nfs_proto
module Spec = Base_nfs.Abstract_spec
module Service = Base_core.Service
module Prng = Base_util.Prng

let n_objects = 64

(* A fake drifting clock for the implementations' own (masked) timestamps. *)
let impl_clock seed =
  let c = ref (Int64.mul seed 1_000_003L) in
  fun () ->
    c := Int64.add !c 137L;
    !c

let impls : (string * (seed:int64 -> Base_fs.Server_intf.t)) list =
  [
    ("inode", fun ~seed -> Base_fs.Fs_inode.create (Base_fs.Fs_inode.make ~seed ~now:(impl_clock seed)));
    ("hash", fun ~seed -> Base_fs.Fs_hash.create (Base_fs.Fs_hash.make ~seed ~now:(impl_clock seed)));
    ("log", fun ~seed -> Base_fs.Fs_log.create (Base_fs.Fs_log.make ~seed ~now:(impl_clock seed)));
    ("btree", fun ~seed -> Base_fs.Fs_btree.create (Base_fs.Fs_btree.make ~seed ~now:(impl_clock seed)));
    ("fat", fun ~seed -> Base_fs.Fs_fat.create (Base_fs.Fs_fat.make ~seed ~now:(impl_clock seed)));
  ]

let make_wrapper name ~seed =
  let server = (List.assoc name impls) ~seed in
  Base_wrapper.Conformance.make ~server ~n_objects ()

let wrapper_exec (w : Service.wrapper) ~ts call =
  w.Service.execute ~client:100 ~operation:(Proto.encode_call call)
    ~nondet:(Service.nondet_of_clock ts) ~read_only:false ~modify:ignore

let model_exec model ~ts call = Proto.encode_reply (Spec.execute model ~ts call)

(* --- random call generation over the model state --------------------------- *)

let names = [| "a"; "b"; "c"; "file.txt"; "Sub"; "sub"; "z-last"; "0num" |]

let live_oids model ~want =
  let out = ref [] in
  for i = 0 to Spec.n_objects model - 1 do
    match (Spec.slot model i).Spec.obj with
    | Spec.Directory _ when want = `Dir -> out := Spec.oid_at model i :: !out
    | Spec.File _ when want = `File -> out := Spec.oid_at model i :: !out
    | Spec.Symlink _ when want = `Lnk -> out := Spec.oid_at model i :: !out
    | _ -> ()
  done;
  !out

let pick_oid rng model ~want ~fallback =
  match live_oids model ~want with
  | [] -> fallback
  | xs -> List.nth xs (Prng.int rng (List.length xs))

let gen_call rng model =
  let root = root_oid in
  let dir () = pick_oid rng model ~want:`Dir ~fallback:root in
  let file () = pick_oid rng model ~want:`File ~fallback:root in
  let lnk () = pick_oid rng model ~want:`Lnk ~fallback:root in
  let name () = Prng.pick rng names in
  let bogus_oid () = { index = Prng.int rng n_objects; gen = Prng.int rng 3 } in
  let any () =
    match Prng.int rng 4 with
    | 0 -> dir ()
    | 1 -> file ()
    | 2 -> lnk ()
    | _ -> bogus_oid ()
  in
  match Prng.int rng 100 with
  | 0 | 1 | 2 | 3 | 4 | 5 | 6 | 7 | 8 | 9 ->
    Proto.Create (dir (), name (), { sattr_empty with s_mode = Some 0o640 })
  | 10 | 11 | 12 | 13 | 14 | 15 | 16 | 17 ->
    let data = Bytes.to_string (Prng.bytes rng (Prng.int rng 200)) in
    Proto.Write (file (), Prng.int rng 64, data)
  | 18 | 19 | 20 | 21 | 22 | 23 -> Proto.Mkdir (dir (), name (), sattr_empty)
  | 24 | 25 | 26 | 27 -> Proto.Remove (dir (), name ())
  | 28 | 29 | 30 -> Proto.Rmdir (dir (), name ())
  | 31 | 32 | 33 | 34 | 35 -> Proto.Rename (dir (), name (), dir (), name ())
  | 36 | 37 | 38 -> Proto.Symlink (dir (), name (), "target/" ^ name (), sattr_empty)
  | 39 | 40 -> Proto.Readlink (lnk ())
  | 41 | 42 | 43 | 44 | 45 | 46 | 47 | 48 | 49 | 50 ->
    Proto.Read (file (), Prng.int rng 128, 64)
  | 51 | 52 | 53 | 54 | 55 | 56 | 57 | 58 | 59 | 60 -> Proto.Lookup (dir (), name ())
  | 61 | 62 | 63 | 64 | 65 | 66 | 67 | 68 -> Proto.Getattr (any ())
  | 69 | 70 | 71 | 72 | 73 -> Proto.Readdir (dir ())
  | 74 | 75 | 76 ->
    Proto.Setattr
      ( any (),
        {
          s_mode = (if Prng.bool rng then Some (Prng.int rng 0o777) else None);
          s_uid = (if Prng.bool rng then Some (Prng.int rng 10) else None);
          s_gid = None;
          s_size = (if Prng.bool rng then Some (Prng.int rng 300) else None);
          s_mtime = (if Prng.bool rng then Some (Int64.of_int (Prng.int rng 1_000_000)) else None);
        } )
  | 77 | 78 -> Proto.Statfs
  | 79 | 80 | 81 | 82 ->
    (* Deliberately stale/garbage oids. *)
    Proto.Getattr (bogus_oid ())
  | _ ->
    (* Deeper trees: create inside a subdirectory chain. *)
    Proto.Mkdir (dir (), name () ^ string_of_int (Prng.int rng 5), sattr_empty)

(* Run [n] random calls through the model and one wrapper, comparing replies
   after each step and abstract states at the end. *)
let differential_run ~impl ~seed ~n () =
  let rng = Prng.create seed in
  let model = Spec.create ~n_objects in
  let w = make_wrapper impl ~seed in
  for step = 1 to n do
    let call = gen_call rng model in
    let ts = Int64.of_int (step * 1000) in
    let expected = model_exec model ~ts call in
    let got = wrapper_exec w ~ts call in
    if not (String.equal expected got) then
      Alcotest.failf "%s: step %d (%s): reply mismatch\nmodel:   %s\nwrapper: %s" impl step
        (Proto.call_label call)
        (Base_util.Hex.encode expected)
        (Base_util.Hex.encode got)
  done;
  (model, w)

let check_states_equal ~impl model (w : Service.wrapper) =
  for i = 0 to n_objects - 1 do
    let expected = Spec.encode_entry (Spec.slot model i) in
    let got = w.Service.get_obj i in
    if not (String.equal expected got) then
      Alcotest.failf "%s: abstract object %d differs" impl i
  done

let test_differential impl () =
  List.iter
    (fun seed ->
      let model, w = differential_run ~impl ~seed ~n:400 () in
      check_states_equal ~impl model w)
    [ 1L; 2L; 3L ]

let test_cross_impl_agreement () =
  (* All four wrapped implementations produce the same abstract state. *)
  let rng = Prng.create 99L in
  let model = Spec.create ~n_objects in
  let ws = List.map (fun (name, _) -> (name, make_wrapper name ~seed:500L)) impls in
  for step = 1 to 300 do
    let call = gen_call rng model in
    let ts = Int64.of_int (step * 777) in
    let expected = model_exec model ~ts call in
    List.iter
      (fun (name, w) ->
        let got = wrapper_exec w ~ts call in
        if not (String.equal expected got) then
          Alcotest.failf "impl %s diverges at step %d (%s)" name step (Proto.call_label call))
      ws
  done;
  List.iter (fun (name, w) -> check_states_equal ~impl:name model w) ws

let test_restart_preserves_state impl () =
  let model, w = differential_run ~impl ~seed:7L ~n:300 () in
  w.Service.restart ();
  check_states_equal ~impl model w;
  (* The service keeps working after the restart. *)
  let ts = 999_999L in
  let call = Proto.Mkdir (root_oid, "after-restart", sattr_empty) in
  let expected = model_exec model ~ts call in
  let got = wrapper_exec w ~ts call in
  Alcotest.(check bool) "op after restart" true (String.equal expected got);
  check_states_equal ~impl model w

(* The inverse abstraction function: pour the abstract state of a populated
   wrapper into a fresh wrapper running a *different* implementation. *)
let test_put_objs_full impl_src impl_dst () =
  let model, src = differential_run ~impl:impl_src ~seed:11L ~n:300 () in
  let dst = make_wrapper impl_dst ~seed:999L in
  let objs = List.init n_objects (fun i -> (i, src.Service.get_obj i)) in
  dst.Service.put_objs objs;
  check_states_equal ~impl:(impl_src ^ "->" ^ impl_dst) model dst;
  (* And the destination remains a working service. *)
  let ts = 888_888L in
  let call = Proto.Create (root_oid, "fresh", sattr_empty) in
  let expected = model_exec model ~ts call in
  let got = wrapper_exec dst ~ts call in
  Alcotest.(check bool) "op after put_objs" true (String.equal expected got)

(* Incremental repair: run a wrapper to state A, run the model further to
   state B, then put only the differing objects — the wrapper must land
   exactly on B (this is what state transfer does). *)
let test_put_objs_diff impl () =
  let rng = Prng.create 31L in
  let model = Spec.create ~n_objects in
  let w = make_wrapper impl ~seed:3L in
  for step = 1 to 200 do
    let call = gen_call rng model in
    let ts = Int64.of_int (step * 1000) in
    ignore (model_exec model ~ts call);
    ignore (wrapper_exec w ~ts call)
  done;
  let snapshot = Array.init n_objects (fun i -> w.Service.get_obj i) in
  for step = 201 to 320 do
    let call = gen_call rng model in
    ignore (model_exec model ~ts:(Int64.of_int (step * 1000)) call)
  done;
  let diff = ref [] in
  for i = n_objects - 1 downto 0 do
    let want = Spec.encode_entry (Spec.slot model i) in
    if not (String.equal want snapshot.(i)) then diff := (i, want) :: !diff
  done;
  w.Service.put_objs !diff;
  check_states_equal ~impl model w

let suite =
  let diff_tests =
    List.map
      (fun (name, _) ->
        Alcotest.test_case (Printf.sprintf "differential: %s vs model" name) `Quick
          (test_differential name))
      impls
  in
  let restart_tests =
    List.map
      (fun (name, _) ->
        Alcotest.test_case (Printf.sprintf "restart: %s" name) `Quick
          (test_restart_preserves_state name))
      impls
  in
  let put_tests =
    [
      Alcotest.test_case "put_objs: inode -> hash" `Quick (test_put_objs_full "inode" "hash");
      Alcotest.test_case "put_objs: hash -> btree" `Quick (test_put_objs_full "hash" "btree");
      Alcotest.test_case "put_objs: btree -> log" `Quick (test_put_objs_full "btree" "log");
      Alcotest.test_case "put_objs: log -> fat" `Quick (test_put_objs_full "log" "fat");
      Alcotest.test_case "put_objs: fat -> inode" `Quick (test_put_objs_full "fat" "inode");
    ]
  in
  let diff_put_tests =
    List.map
      (fun (name, _) ->
        Alcotest.test_case (Printf.sprintf "incremental put_objs: %s" name) `Quick
          (test_put_objs_diff name))
      impls
  in
  diff_tests
  @ [ Alcotest.test_case "four implementations agree" `Quick test_cross_impl_agreement ]
  @ restart_tests @ put_tests @ diff_put_tests
