(* Combination stress tests: the failure modes the individual suites cover
   one at a time, layered together — recovery under message loss, batching
   during proactive recovery, and an f=2 group with recovery plus a
   Byzantine replica. *)

open Helpers
module Runtime = Base_core.Runtime
module Objrepo = Base_core.Objrepo
module Replica = Base_bft.Replica
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time

let settle sys seconds =
  Engine.run ~until:(Sim_time.add (Runtime.now sys) (Sim_time.of_sec seconds))
    (Runtime.engine sys)

let converged sys =
  let roots =
    Array.map (fun node -> Objrepo.current_root node.Runtime.repo) (Runtime.replicas sys)
  in
  Array.for_all (fun r -> Base_crypto.Digest_t.equal r roots.(0)) roots

let test_recovery_with_message_loss () =
  let sys, _ = make_system ~seed:71L ~checkpoint_period:8 ~drop_p:0.03 () in
  Runtime.enable_proactive_recovery ~reboot_us:60_000 ~period_us:1_500_000 sys;
  for i = 0 to 39 do
    ignore (set sys ~client:0 (i mod 8) (Printf.sprintf "lossy%d" i));
    Engine.advance_to (Runtime.engine sys)
      (Sim_time.add (Runtime.now sys) (Sim_time.of_ms 120))
  done;
  Runtime.disable_proactive_recovery sys;
  settle sys 4.0;
  Alcotest.(check bool) "converged under loss + recovery" true (converged sys);
  Alcotest.(check string) "service alive" "ok" (set sys ~client:0 0 "post")

let test_batching_with_recovery () =
  let sys, kvs =
    make_system ~seed:72L ~n_clients:6 ~checkpoint_period:32 ~batch_max:8 ~max_inflight:2 ()
  in
  Runtime.enable_proactive_recovery ~reboot_us:60_000 ~period_us:1_200_000 sys;
  let completed = ref 0 in
  let stop = ref false in
  let rec issue c i =
    Runtime.invoke sys ~client:c
      ~operation:(Printf.sprintf "set:%d:b%d-%d" (c mod 8) c i)
      (fun _ ->
        incr completed;
        if not !stop then issue c (i + 1))
  in
  for c = 0 to 5 do
    issue c 0
  done;
  settle sys 3.0;
  Runtime.disable_proactive_recovery sys;
  stop := true;
  settle sys 4.0;
  Alcotest.(check bool)
    (Printf.sprintf "throughput under recovery (%d ops)" !completed)
    true (!completed > 200);
  let s0 = Array.copy kvs.(0).slots in
  Array.iteri
    (fun r kv ->
      Alcotest.(check bool) (Printf.sprintf "replica %d agrees" r) true (kv.slots = s0))
    kvs

let test_f2_recovery_with_byzantine () =
  (* Seven replicas, one liar, staggered recoveries: still linearisable and
     convergent. *)
  let sys, kvs = make_system ~seed:73L ~f:2 ~checkpoint_period:8 () in
  Runtime.set_behavior sys 3 Replica.Lie_in_replies;
  Runtime.enable_proactive_recovery ~reboot_us:50_000 ~period_us:2_000_000 sys;
  for i = 0 to 29 do
    let v = Printf.sprintf "f2-%d" i in
    Alcotest.(check string) "op ok" "ok" (set sys ~client:0 (i mod 8) v);
    Alcotest.(check string) "read own write" v (value_part (get sys ~client:0 (i mod 8)));
    Engine.advance_to (Runtime.engine sys)
      (Sim_time.add (Runtime.now sys) (Sim_time.of_ms 150))
  done;
  Runtime.disable_proactive_recovery sys;
  settle sys 4.0;
  (* All seven replicas converge: the liar only lied to clients, and
     recoveries repaired nothing because nothing concrete diverged. *)
  let s0 = Array.copy kvs.(0).slots in
  Array.iteri
    (fun r kv ->
      Alcotest.(check bool) (Printf.sprintf "replica %d of 7 agrees" r) true (kv.slots = s0))
    kvs

let test_mass_corruption_swept_clean () =
  (* Corrupt f replicas heavily, then let a full recovery sweep repair the
     group while it serves load. *)
  let sys, kvs = make_system ~seed:74L ~checkpoint_period:8 () in
  for i = 0 to 15 do
    ignore (set sys ~client:0 (i mod 8) (Printf.sprintf "base%d" i))
  done;
  (* Wreck replica 2's entire store behind the wrapper's back. *)
  for s = 0 to 7 do
    kvs.(2).slots.(s) <- "WRECKED"
  done;
  Runtime.enable_proactive_recovery ~reboot_us:60_000 ~period_us:1_000_000 sys;
  for i = 0 to 19 do
    ignore (set sys ~client:0 (i mod 8) (Printf.sprintf "after%d" i));
    Engine.advance_to (Runtime.engine sys)
      (Sim_time.add (Runtime.now sys) (Sim_time.of_ms 150))
  done;
  Runtime.disable_proactive_recovery sys;
  settle sys 4.0;
  Alcotest.(check bool) "wreckage repaired" true
    (Array.for_all (fun v -> v <> "WRECKED") kvs.(2).slots);
  Alcotest.(check bool) "converged" true (converged sys)

let suite =
  [
    Alcotest.test_case "recovery + message loss" `Slow test_recovery_with_message_loss;
    Alcotest.test_case "batching + recovery" `Slow test_batching_with_recovery;
    Alcotest.test_case "f=2 + byzantine + recovery" `Slow test_f2_recovery_with_byzantine;
    Alcotest.test_case "mass corruption swept clean" `Slow test_mass_corruption_swept_clean;
  ]
