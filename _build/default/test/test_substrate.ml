(* Unit and property tests for the substrate libraries: PRNG, heap, hex,
   stats, SHA-256/HMAC vectors, XDR round-trips, partition tree, object
   repository, simulator. *)

module Prng = Base_util.Prng
module Heap = Base_util.Heap
module Hex = Base_util.Hex
module Stats = Base_util.Stats
module Sha256 = Base_crypto.Sha256
module Hmac = Base_crypto.Hmac
module Digest = Base_crypto.Digest_t
module Auth = Base_crypto.Auth
module Xdr = Base_codec.Xdr
module Tree = Base_core.Partition_tree
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- PRNG ------------------------------------------------------------------- *)

let test_prng_determinism () =
  let a = Prng.create 7L and b = Prng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next64 a) (Prng.next64 b)
  done

let test_prng_bounds () =
  let r = Prng.create 3L in
  for _ = 1 to 10_000 do
    let v = Prng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let f = Prng.float r 2.5 in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 2.5)
  done

let test_prng_split_independent () =
  let a = Prng.create 11L in
  let b = Prng.split a in
  let xs = List.init 50 (fun _ -> Prng.next64 a) in
  let ys = List.init 50 (fun _ -> Prng.next64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_prng_uniformity () =
  (* Chi-square-ish sanity: 8 buckets over 80k draws stay within 5%. *)
  let r = Prng.create 1234L in
  let buckets = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let b = Prng.int r 8 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "roughly uniform" true (frac > 0.115 && frac < 0.135))
    buckets

(* --- Heap ------------------------------------------------------------------- *)

let test_heap_sorts () =
  let h = Heap.create ~cmp:compare in
  let input = [ 5; 3; 9; 1; 7; 3; 0; 12; 5 ] in
  List.iter (Heap.push h) input;
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  Alcotest.(check (list int)) "sorted" (List.sort compare input) (drain [])

let test_heap_fifo_ties () =
  (* Equal keys pop in insertion order (simulation determinism). *)
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
  List.iter (Heap.push h) [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  let order = List.init 4 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "fifo ties" [ "z"; "a"; "b"; "c" ] order

let heap_prop =
  qtest "heap drains sorted" QCheck2.Gen.(list int) (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

(* --- Hex ---------------------------------------------------------------------- *)

let hex_roundtrip =
  qtest "hex round-trip" QCheck2.Gen.string (fun s -> Hex.decode (Hex.encode s) = s)

(* --- Stats --------------------------------------------------------------------- *)

let test_stats () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "p50" 3.0 s.Stats.p50;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Stats.max

(* --- SHA-256 / HMAC ------------------------------------------------------------- *)

let test_sha256_vectors () =
  let check input expected = Alcotest.(check string) input expected (Sha256.hex input) in
  check "" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  check "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  check "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (String.make 1_000_000 'a'))

let test_sha256_incremental () =
  (* Chunked updates produce the same digest as one-shot hashing. *)
  let data = String.init 10_000 (fun i -> Char.chr (i mod 251)) in
  let ctx = Sha256.init () in
  let rec feed off =
    if off < String.length data then begin
      let n = min 97 (String.length data - off) in
      Sha256.update ctx (String.sub data off n);
      feed (off + n)
    end
  in
  feed 0;
  Alcotest.(check string) "incremental = one-shot" (Sha256.digest data) (Sha256.finalize ctx)

let test_hmac_vectors () =
  (* RFC 4231 test cases 1, 2 and 3. *)
  let check ~key msg expected =
    Alcotest.(check string) "hmac" expected (Hex.encode (Hmac.mac ~key msg))
  in
  check ~key:(String.make 20 '\x0b') "Hi There"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7";
  check ~key:"Jefe" "what do ya want for nothing?"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843";
  check ~key:(String.make 20 '\xaa') (String.make 50 '\xdd')
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"

let test_hmac_verify () =
  let key = "secret-key" in
  let tag = Hmac.mac ~key "message" in
  Alcotest.(check bool) "accepts valid" true (Hmac.verify ~key "message" ~tag);
  Alcotest.(check bool) "rejects tampered" false (Hmac.verify ~key "messagf" ~tag);
  Alcotest.(check bool) "rejects wrong key" false (Hmac.verify ~key:"other" "message" ~tag)

let test_auth_keychains () =
  let chains = Auth.create ~seed:5L ~n_principals:5 in
  let msg = "authenticate me" in
  let macs = Auth.authenticator chains.(1) ~n:5 msg in
  for receiver = 0 to 4 do
    Alcotest.(check bool) "verifies" true
      (Auth.check chains.(receiver) ~sender:1 msg ~mac:macs.(receiver))
  done;
  (* Principal 2 cannot forge principal 1's MAC to principal 0. *)
  let forged = Auth.mac_for chains.(2) ~receiver:0 msg in
  Alcotest.(check bool) "forgery rejected" false (Auth.check chains.(0) ~sender:1 msg ~mac:forged);
  (* Key refresh invalidates old MACs. *)
  Auth.refresh_keys chains 1;
  Alcotest.(check bool) "stale mac rejected after refresh" false
    (Auth.check chains.(0) ~sender:1 msg ~mac:macs.(0))

(* --- XDR ------------------------------------------------------------------------ *)

let test_xdr_basic () =
  let e = Xdr.encoder () in
  Xdr.u32 e 42;
  Xdr.i64 e (-7L);
  Xdr.bool e true;
  Xdr.opaque e "hello";
  Xdr.list e Xdr.u32 [ 1; 2; 3 ];
  Xdr.option e Xdr.str (Some "x");
  let d = Xdr.decoder (Xdr.contents e) in
  Alcotest.(check int) "u32" 42 (Xdr.read_u32 d);
  Alcotest.(check int64) "i64" (-7L) (Xdr.read_i64 d);
  Alcotest.(check bool) "bool" true (Xdr.read_bool d);
  Alcotest.(check string) "opaque" "hello" (Xdr.read_opaque d);
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (Xdr.read_list d Xdr.read_u32);
  Alcotest.(check (option string)) "option" (Some "x") (Xdr.read_option d Xdr.read_str);
  Xdr.expect_end d

let test_xdr_padding () =
  (* Opaque data pads to 4-byte multiples, as RFC 1014 requires. *)
  List.iter
    (fun len ->
      let e = Xdr.encoder () in
      Xdr.opaque e (String.make len 'x');
      let total = String.length (Xdr.contents e) in
      Alcotest.(check int) (Printf.sprintf "len %d" len) (4 + ((len + 3) / 4 * 4)) total)
    [ 0; 1; 2; 3; 4; 5; 7; 8 ]

let test_xdr_errors () =
  let raises f = try f () |> ignore; false with Xdr.Decode_error _ -> true in
  Alcotest.(check bool) "truncated" true
    (raises (fun () -> Xdr.read_u32 (Xdr.decoder "ab")));
  Alcotest.(check bool) "trailing" true
    (raises (fun () -> Xdr.expect_end (Xdr.decoder "abcd")));
  Alcotest.(check bool) "bad bool" true
    (raises (fun () -> Xdr.read_bool (Xdr.decoder "\x00\x00\x00\x07")))

let xdr_opaque_roundtrip =
  qtest "xdr opaque round-trip" QCheck2.Gen.string (fun s ->
      let e = Xdr.encoder () in
      Xdr.opaque e s;
      let d = Xdr.decoder (Xdr.contents e) in
      let got = Xdr.read_opaque d in
      Xdr.expect_end d;
      got = s)

let xdr_list_roundtrip =
  qtest "xdr string-list round-trip" QCheck2.Gen.(list string) (fun xs ->
      let e = Xdr.encoder () in
      Xdr.list e Xdr.str xs;
      let d = Xdr.decoder (Xdr.contents e) in
      let got = Xdr.read_list d Xdr.read_str in
      Xdr.expect_end d;
      got = xs)

(* --- Partition tree --------------------------------------------------------------- *)

let test_tree_basics () =
  let t = Tree.create ~n_leaves:100 ~branching:4 in
  Alcotest.(check int) "leaves" 100 (Tree.n_leaves t);
  let d = Digest.of_string "x" in
  let before = Tree.root t in
  Tree.set_leaf t 42 d;
  Alcotest.(check bool) "root changed" false (Digest.equal before (Tree.root t));
  Alcotest.(check bool) "leaf stored" true (Digest.equal d (Tree.leaf t 42))

let test_tree_interior_consistency () =
  let t = Tree.create ~n_leaves:37 ~branching:3 in
  for i = 0 to 36 do
    Tree.set_leaf t i (Digest.of_string (string_of_int i))
  done;
  (* Every interior node equals the digest of its children. *)
  for level = 0 to Tree.levels t - 2 do
    for index = 0 to Tree.width t ~level - 1 do
      let children = Tree.children t ~level ~index in
      let expected = Digest.combine (Array.to_list children) in
      Alcotest.(check bool)
        (Printf.sprintf "node %d.%d" level index)
        true
        (Digest.equal expected (Tree.node t ~level ~index))
    done
  done

let tree_incremental_prop =
  (* Incremental updates give the same root as rebuilding from scratch. *)
  qtest ~count:50 "tree incremental = rebuild"
    QCheck2.Gen.(list (pair (int_bound 63) (small_string ~gen:printable)))
    (fun updates ->
      let a = Tree.create ~n_leaves:64 ~branching:4 in
      let b = Tree.create ~n_leaves:64 ~branching:4 in
      List.iter (fun (i, s) -> Tree.set_leaf a i (Digest.of_string s)) updates;
      (* Rebuild: apply only the last write per leaf, in any order. *)
      let final = Hashtbl.create 16 in
      List.iter (fun (i, s) -> Hashtbl.replace final i s) updates;
      Hashtbl.iter (fun i s -> Tree.set_leaf b i (Digest.of_string s)) final;
      Tree.equal_root a b)

let test_tree_copy_isolated () =
  let t = Tree.create ~n_leaves:16 ~branching:4 in
  Tree.set_leaf t 3 (Digest.of_string "three");
  let snapshot = Tree.copy t in
  Tree.set_leaf t 3 (Digest.of_string "mutated");
  Alcotest.(check bool) "snapshot unchanged" true
    (Digest.equal (Tree.leaf snapshot 3) (Digest.of_string "three"))

(* --- Simulator ---------------------------------------------------------------------- *)

let sim_config () =
  Engine.default_config ~size_of:String.length ~label_of:(fun s -> s)

let test_sim_delivery_order () =
  let engine = Engine.create { (sim_config ()) with jitter_us = 0 } in
  let got = ref [] in
  Engine.add_node engine ~id:0 (fun _ _ -> ());
  Engine.add_node engine ~id:1 (fun _ ev ->
      match ev with
      | Engine.Deliver { msg; _ } -> got := msg :: !got
      | Engine.Timer _ -> ());
  Engine.send engine ~src:0 ~dst:1 "first";
  Engine.send engine ~src:0 ~dst:1 "second";
  Engine.run engine;
  Alcotest.(check (list string)) "fifo same-latency" [ "first"; "second" ] (List.rev !got)

let test_sim_timers () =
  let engine = Engine.create (sim_config ()) in
  let fired = ref [] in
  Engine.add_node engine ~id:0 (fun _ ev ->
      match ev with
      | Engine.Timer { tag; payload } -> fired := (tag, payload) :: !fired
      | Engine.Deliver _ -> ());
  let _t1 = Engine.set_timer engine ~node:0 ~after:(Sim_time.of_ms 10) ~tag:"a" ~payload:1 in
  let t2 = Engine.set_timer engine ~node:0 ~after:(Sim_time.of_ms 5) ~tag:"b" ~payload:2 in
  Engine.cancel_timer engine t2;
  Engine.run engine;
  Alcotest.(check (list (pair string int))) "only uncancelled" [ ("a", 1) ] !fired

let test_sim_partition () =
  let engine = Engine.create (sim_config ()) in
  let got = ref 0 in
  Engine.add_node engine ~id:0 (fun _ _ -> ());
  Engine.add_node engine ~id:1 (fun _ ev ->
      match ev with Engine.Deliver _ -> incr got | Engine.Timer _ -> ());
  Engine.partition engine [ 0 ] [ 1 ];
  Engine.send engine ~src:0 ~dst:1 "lost";
  Engine.run engine;
  Alcotest.(check int) "partitioned" 0 !got;
  Engine.heal engine;
  Engine.send engine ~src:0 ~dst:1 "arrives";
  Engine.run engine;
  Alcotest.(check int) "healed" 1 !got

let test_sim_down_node_loses () =
  let engine = Engine.create (sim_config ()) in
  let got = ref 0 in
  Engine.add_node engine ~id:0 (fun _ _ -> ());
  Engine.add_node engine ~id:1 (fun _ ev ->
      match ev with Engine.Deliver _ -> incr got | Engine.Timer _ -> ());
  Engine.set_node_up engine 1 false;
  Engine.send engine ~src:0 ~dst:1 "lost";
  Engine.run engine;
  Engine.set_node_up engine 1 true;
  Engine.send engine ~src:0 ~dst:1 "kept";
  Engine.run engine;
  Alcotest.(check int) "only post-reboot delivery" 1 !got

let test_sim_clock_skew () =
  let engine = Engine.create (sim_config ()) in
  Engine.add_node engine ~id:0 (fun _ _ -> ());
  Engine.add_node engine ~id:1 (fun _ _ -> ());
  Engine.add_node engine ~id:2 (fun _ _ -> ());
  Engine.send engine ~src:0 ~dst:1 "tick";
  Engine.run engine;
  let clocks = List.init 3 (fun i -> Engine.local_clock engine i) in
  Alcotest.(check bool) "clocks differ" true
    (List.sort_uniq compare clocks = List.sort compare clocks
    && List.length (List.sort_uniq compare clocks) > 1)

let test_sim_bandwidth_cost () =
  (* A 100 KB message takes ~8 ms at 100 Mbit/s, far above base latency. *)
  let engine = Engine.create { (sim_config ()) with jitter_us = 0 } in
  let at = ref Sim_time.zero in
  Engine.add_node engine ~id:0 (fun _ _ -> ());
  Engine.add_node engine ~id:1 (fun engine ev ->
      match ev with Engine.Deliver _ -> at := Engine.now engine | Engine.Timer _ -> ());
  Engine.send engine ~src:0 ~dst:1 (String.make 100_000 'x');
  Engine.run engine;
  let ms = Sim_time.to_ms !at in
  Alcotest.(check bool) (Printf.sprintf "tx time %f ms" ms) true (ms > 7.0 && ms < 10.0)

let test_loc_count () =
  let src = "let x = 1 (* comment; with ; semis *)\n\nlet s = \"str;\" ;;\n" in
  let c = Base_util.Loc_count.count_string src in
  Alcotest.(check int) "lines" 2 c.Base_util.Loc_count.lines;
  Alcotest.(check int) "semicolons" 2 c.Base_util.Loc_count.semicolons

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng split independence" `Quick test_prng_split_independent;
    Alcotest.test_case "prng uniformity" `Quick test_prng_uniformity;
    Alcotest.test_case "heap sorts" `Quick test_heap_sorts;
    Alcotest.test_case "heap fifo ties" `Quick test_heap_fifo_ties;
    heap_prop;
    hex_roundtrip;
    Alcotest.test_case "stats summary" `Quick test_stats;
    Alcotest.test_case "sha256 FIPS vectors" `Quick test_sha256_vectors;
    Alcotest.test_case "sha256 incremental" `Quick test_sha256_incremental;
    Alcotest.test_case "hmac RFC4231 vectors" `Quick test_hmac_vectors;
    Alcotest.test_case "hmac verify" `Quick test_hmac_verify;
    Alcotest.test_case "auth keychains + refresh" `Quick test_auth_keychains;
    Alcotest.test_case "xdr basic" `Quick test_xdr_basic;
    Alcotest.test_case "xdr padding" `Quick test_xdr_padding;
    Alcotest.test_case "xdr errors" `Quick test_xdr_errors;
    xdr_opaque_roundtrip;
    xdr_list_roundtrip;
    Alcotest.test_case "partition tree basics" `Quick test_tree_basics;
    Alcotest.test_case "partition tree interior nodes" `Quick test_tree_interior_consistency;
    tree_incremental_prop;
    Alcotest.test_case "partition tree snapshot" `Quick test_tree_copy_isolated;
    Alcotest.test_case "sim delivery order" `Quick test_sim_delivery_order;
    Alcotest.test_case "sim timers + cancel" `Quick test_sim_timers;
    Alcotest.test_case "sim partitions" `Quick test_sim_partition;
    Alcotest.test_case "sim down node" `Quick test_sim_down_node_loses;
    Alcotest.test_case "sim clock skew" `Quick test_sim_clock_skew;
    Alcotest.test_case "sim bandwidth cost" `Quick test_sim_bandwidth_cost;
    Alcotest.test_case "loc counter" `Quick test_loc_count;
  ]
