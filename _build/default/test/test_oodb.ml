(* Tests of the object database and its conformance wrapper: two instances
   with different seeds (concretely divergent) must agree abstractly on any
   operation sequence, and put_objs must transplant state between them. *)

open Base_oodb.Oodb_proto
module W = Base_oodb.Oodb_wrapper
module Service = Base_core.Service
module Prng = Base_util.Prng

let n_objects = 32

let make_wrapper ~seed =
  let clock = ref (Int64.mul seed 7919L) in
  let now () =
    clock := Int64.add !clock 101L;
    !clock
  in
  W.make ~seed ~now ~n_objects ()

let exec (w : Service.wrapper) ~ts call =
  decode_reply
    (w.Service.execute ~client:9 ~operation:(encode_call call)
       ~nondet:(Service.nondet_of_clock ts) ~read_only:(read_only_call call) ~modify:ignore)

let states_equal a b =
  let rec loop i =
    i >= n_objects
    || (String.equal (a.Service.get_obj i) (b.Service.get_obj i) && loop (i + 1))
  in
  loop 0

let gen_call rng ~live =
  let any_oid () =
    match live with
    | [] -> root_aoid
    | xs -> List.nth xs (Prng.int rng (List.length xs))
  in
  let field () = Prng.pick rng [| "a"; "b"; "name"; "next" |] in
  match Prng.int rng 10 with
  | 0 | 1 -> New
  | 2 | 3 -> Set_field (any_oid (), field (), Printf.sprintf "v%d" (Prng.int rng 100))
  | 4 -> Set_ref (any_oid (), field (), any_oid ())
  | 5 -> Clear_ref (any_oid (), field ())
  | 6 -> Delete (any_oid ())
  | 7 -> Get (any_oid ())
  | 8 -> Get_field (any_oid (), field ())
  | _ -> Count

let run_random_pair seed =
  let rng = Prng.create seed in
  let a = make_wrapper ~seed:1L in
  let b = make_wrapper ~seed:999L in
  let live = ref [ root_aoid ] in
  for step = 1 to 300 do
    let call = gen_call rng ~live:!live in
    let ts = Int64.of_int (step * 100) in
    let ra = exec a ~ts call in
    let rb = exec b ~ts call in
    if encode_reply ra <> encode_reply rb then
      Alcotest.failf "divergent reply at step %d" step;
    (match (call, ra) with
    | New, R_oid o -> live := o :: !live
    | Delete o, R_unit -> live := List.filter (fun x -> x <> o) !live
    | _ -> ())
  done;
  (a, b)

let test_two_seeds_agree () =
  let a, b = run_random_pair 5L in
  Alcotest.(check bool) "abstract states equal" true (states_equal a b)

let test_basic_operations () =
  let w = make_wrapper ~seed:3L in
  let o = match exec w ~ts:10L New with R_oid o -> o | _ -> Alcotest.fail "new" in
  (match exec w ~ts:20L (Set_field (o, "name", "alice")) with
  | R_unit -> ()
  | _ -> Alcotest.fail "set");
  (match exec w ~ts:30L (Get_field (o, "name")) with
  | R_field (Some "alice") -> ()
  | _ -> Alcotest.fail "get");
  (match exec w ~ts:40L (Set_ref (root_aoid, "head", o)) with
  | R_unit -> ()
  | _ -> Alcotest.fail "ref");
  (match exec w ~ts:50L (Get root_aoid) with
  | R_value { refs = [ ("head", o') ]; _ } ->
    Alcotest.(check bool) "ref target" true (o' = o)
  | _ -> Alcotest.fail "get root");
  (* Deleting the object clears dangling references abstractly. *)
  (match exec w ~ts:60L (Delete o) with R_unit -> () | _ -> Alcotest.fail "delete");
  (match exec w ~ts:70L (Get root_aoid) with
  | R_value { refs = []; _ } -> ()
  | _ -> Alcotest.fail "dangling ref visible");
  match exec w ~ts:80L (Get o) with
  | R_stale -> ()
  | _ -> Alcotest.fail "stale oid"

let test_slot_reuse_generation () =
  let w = make_wrapper ~seed:4L in
  let o1 = match exec w ~ts:1L New with R_oid o -> o | _ -> Alcotest.fail "new" in
  ignore (exec w ~ts:2L (Delete o1));
  let o2 = match exec w ~ts:3L New with R_oid o -> o | _ -> Alcotest.fail "new" in
  Alcotest.(check int) "slot reused" o1.index o2.index;
  Alcotest.(check bool) "generation bumped" true (o2.gen > o1.gen)

let test_put_objs_transplant () =
  let a, _ = run_random_pair 11L in
  let c = make_wrapper ~seed:4242L in
  let objs = List.init n_objects (fun i -> (i, a.Service.get_obj i)) in
  c.Service.put_objs objs;
  Alcotest.(check bool) "transplanted state equal" true (states_equal a c);
  (* Still serviceable. *)
  let r1 = exec a ~ts:99_999L New in
  let r2 = exec c ~ts:99_999L New in
  Alcotest.(check bool) "same allocation after transplant" true
    (encode_reply r1 = encode_reply r2)

let test_stamps_from_agreement () =
  let w = make_wrapper ~seed:6L in
  let o = match exec w ~ts:123_456L New with R_oid o -> o | _ -> Alcotest.fail "new" in
  match exec w ~ts:123_456L (Get o) with
  | R_value { stamp; _ } -> Alcotest.(check int64) "stamp = agreed ts" 123_456L stamp
  | _ -> Alcotest.fail "get"

let suite =
  [
    Alcotest.test_case "basic operations" `Quick test_basic_operations;
    Alcotest.test_case "two seeds agree abstractly" `Quick test_two_seeds_agree;
    Alcotest.test_case "slot reuse bumps generation" `Quick test_slot_reuse_generation;
    Alcotest.test_case "put_objs transplants state" `Quick test_put_objs_transplant;
    Alcotest.test_case "stamps from agreed values" `Quick test_stamps_from_agreement;
  ]
