(* Full-system integration: the replicated NFS service (BASE-FS) with four
   heterogeneous off-the-shelf implementations running over the complete
   BFT + BASE stack inside the simulator. *)

open Base_nfs.Nfs_types
module C = Base_nfs.Nfs_client
module Runtime = Base_core.Runtime
module Objrepo = Base_core.Objrepo
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time
module Replica = Base_bft.Replica
module S = Base_fs.Server_intf

let nfs_of sys ~client =
  C.make (fun ~read_only ~operation ->
      Runtime.invoke_sync sys.Base_workload.Systems.runtime ~client ~read_only ~operation ())

let settle sys seconds =
  let rt = sys.Base_workload.Systems.runtime in
  Engine.run ~until:(Sim_time.add (Runtime.now rt) (Sim_time.of_sec seconds)) (Runtime.engine rt)

let roots_agree sys =
  Base_workload.Faults.divergent_replicas sys = 0

let test_basic_tree () =
  let sys = Base_workload.Systems.make_basefs ~hetero:true ~n_clients:1 () in
  let nfs = nfs_of sys ~client:0 in
  let d = C.mkdir_p nfs "/projects/base/src" in
  let f = C.write_file nfs d "main.c" ~chunk:4096 "int main(void){return 0;}" in
  Alcotest.(check string)
    "read back" "int main(void){return 0;}"
    (C.read_file nfs f ~chunk:4096);
  (* Deterministic handles: lookup yields the same oid everywhere. *)
  let o, a = C.ok (C.lookup nfs d "main.c") in
  Alcotest.(check bool) "oid is deterministic" true (o.index > 0 && a.ftype = Reg);
  settle sys 0.5;
  Alcotest.(check bool) "abstract states agree" true (roots_agree sys)

let test_readdir_sorted_and_hidden () =
  let sys = Base_workload.Systems.make_basefs ~hetero:true ~n_clients:1 () in
  let nfs = nfs_of sys ~client:0 in
  List.iter
    (fun n -> ignore (C.ok (C.create nfs root_oid n sattr_empty)))
    [ "zebra"; "alpha"; "Middle" ];
  let names = List.map fst (C.ok (C.readdir nfs root_oid)) in
  (* Sorted lexicographically; the wrapper's staging directory is hidden. *)
  Alcotest.(check (list string)) "sorted" [ "Middle"; "alpha"; "zebra" ] names

let test_timestamps_agreed () =
  (* mtimes come from the agreed nondet values: they are identical across
     replicas even though every implementation has a wildly skewed clock,
     and they are close to virtual time. *)
  let sys = Base_workload.Systems.make_basefs ~hetero:true ~n_clients:1 () in
  let nfs = nfs_of sys ~client:0 in
  let f, _ = C.ok (C.create nfs root_oid "stamped" sattr_empty) in
  ignore (C.ok (C.write nfs f ~off:0 "x"));
  let a = C.ok (C.getattr nfs f) in
  let now_s = Sim_time.to_sec (Runtime.now sys.Base_workload.Systems.runtime) in
  let mtime_s = Int64.to_float a.mtime /. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "mtime %.3f within clock skew of %.3f" mtime_s now_s)
    true
    (Float.abs (mtime_s -. now_s) < 0.5);
  settle sys 0.3;
  Alcotest.(check bool) "states agree" true (roots_agree sys)

let test_errors_replicated () =
  let sys = Base_workload.Systems.make_basefs ~hetero:true ~n_clients:1 () in
  let nfs = nfs_of sys ~client:0 in
  Alcotest.(check bool) "enoent" true (C.lookup nfs root_oid "missing" = Error Enoent);
  ignore (C.ok (C.mkdir nfs root_oid "d" sattr_empty));
  Alcotest.(check bool) "eexist" true
    (match C.mkdir nfs root_oid "d" sattr_empty with Error Eexist -> true | _ -> false);
  let d, _ = C.ok (C.lookup nfs root_oid "d") in
  Alcotest.(check bool) "enotempty" true
    (match
       ignore (C.ok (C.create nfs d "x" sattr_empty));
       C.rmdir nfs root_oid "d"
     with
    | Error Enotempty -> true
    | _ -> false)

let test_poison_masked_when_heterogeneous () =
  let o = Base_workload.Faults.poison_experiment ~hetero:true () in
  Alcotest.(check int) "one buggy replica" 1 o.Base_workload.Faults.buggy_replicas;
  Alcotest.(check bool) "client unaffected" true o.Base_workload.Faults.read_back_correct;
  Alcotest.(check int) "only the buggy replica diverged" 1 o.Base_workload.Faults.divergent

let test_poison_fatal_when_homogeneous () =
  let o = Base_workload.Faults.poison_experiment ~hetero:false () in
  Alcotest.(check int) "four buggy replicas" 4 o.Base_workload.Faults.buggy_replicas;
  (* The common-mode failure: every replica corrupts the data identically,
     so the client reads wrong bytes with a full quorum behind them. *)
  Alcotest.(check bool) "client sees corrupted data" false
    o.Base_workload.Faults.read_back_correct;
  Alcotest.(check int) "and nobody diverged" 0 o.Base_workload.Faults.divergent

let test_corruption_masked_and_repaired () =
  let o =
    Base_workload.Faults.corruption_experiment ~corrupt_replicas:1 ~objects_per_replica:5 ()
  in
  Alcotest.(check bool) "reads correct while <= f corrupt" true
    o.Base_workload.Faults.reads_correct_before_repair;
  Alcotest.(check bool)
    (Printf.sprintf "recovery repaired objects (damaged %d, repaired %d)"
       o.Base_workload.Faults.objects_damaged o.Base_workload.Faults.objects_repaired)
    true
    (o.Base_workload.Faults.objects_repaired >= o.Base_workload.Faults.objects_damaged);
  Alcotest.(check int) "group converged after repair" 0
    o.Base_workload.Faults.divergent_after_repair

let test_andrew_smoke () =
  (* A small Andrew run end-to-end on the replicated service, checked for
     functional correctness (the benchmark harness measures timing). *)
  let sys = Base_workload.Systems.make_basefs ~hetero:true ~n_clients:1 () in
  let fs = Base_workload.Fs_iface.of_runtime ~client:0 sys.Base_workload.Systems.runtime in
  let r = Base_workload.Andrew.run ~scale:1 fs in
  Alcotest.(check int) "five phases" 5 (List.length r.Base_workload.Andrew.phases);
  Alcotest.(check bool) "did real work" true (r.Base_workload.Andrew.total_bytes > 50_000);
  settle sys 0.5;
  Alcotest.(check bool) "states agree after andrew" true (roots_agree sys)

let test_f2_seven_replicas () =
  (* f = 2: seven replicas spanning all five implementations; the system
     masks a mute replica and a lying replica at the same time. *)
  let sys = Base_workload.Systems.make_basefs ~f:2 ~hetero:true ~n_clients:1 () in
  Alcotest.(check int) "seven replicas" 7 (Array.length (Runtime.replicas sys.Base_workload.Systems.runtime));
  let distinct =
    sys.Base_workload.Systems.impl_of |> Array.to_list |> List.sort_uniq compare |> List.length
  in
  Alcotest.(check int) "five implementations in use" 5 distinct;
  Runtime.set_behavior sys.Base_workload.Systems.runtime 1 Replica.Mute;
  Runtime.set_behavior sys.Base_workload.Systems.runtime 2 Replica.Lie_in_replies;
  let nfs = nfs_of sys ~client:0 in
  let d = C.mkdir_p nfs "/two-faults" in
  let f = C.write_file nfs d "file" ~chunk:4096 "still correct" in
  Alcotest.(check string) "reads correct with 2 faults" "still correct"
    (C.read_file nfs f ~chunk:4096)

let suite =
  [
    Alcotest.test_case "basic tree operations" `Quick test_basic_tree;
    Alcotest.test_case "f=2: seven replicas, five impls, two faults" `Quick
      test_f2_seven_replicas;
    Alcotest.test_case "readdir sorted, staging hidden" `Quick test_readdir_sorted_and_hidden;
    Alcotest.test_case "timestamps agreed across replicas" `Quick test_timestamps_agreed;
    Alcotest.test_case "errors replicated deterministically" `Quick test_errors_replicated;
    Alcotest.test_case "N-version masks deterministic bug" `Quick
      test_poison_masked_when_heterogeneous;
    Alcotest.test_case "homogeneous replicas share the bug" `Quick
      test_poison_fatal_when_homogeneous;
    Alcotest.test_case "corruption masked and repaired" `Quick
      test_corruption_masked_and_repaired;
    Alcotest.test_case "andrew benchmark end-to-end" `Slow test_andrew_smoke;
  ]
