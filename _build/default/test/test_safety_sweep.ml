(* Randomised end-to-end safety sweep: across many seeds, with random
   message loss and a random Byzantine behaviour assigned to at most f
   replicas, the system must (a) complete all client operations, (b) return
   results consistent with a single sequential history, and (c) leave all
   honest replicas with identical abstract states. *)

open Helpers
module Runtime = Base_core.Runtime
module Replica = Base_bft.Replica
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time
module Prng = Base_util.Prng

let behaviors = [| Replica.Honest; Replica.Mute; Replica.Lie_in_replies; Replica.Equivocate |]

let run_one seed =
  let rng = Prng.create (Int64.of_int (1000 + seed)) in
  let drop_p = if Prng.bool rng then 0.0 else 0.03 in
  let sys, kvs = make_system ~seed:(Int64.of_int seed) ~drop_p ~checkpoint_period:8 () in
  (* Afflict one random replica with one random behaviour (possibly Honest). *)
  let villain = Prng.int rng 4 in
  let behavior = Prng.pick rng behaviors in
  Runtime.set_behavior sys villain behavior;
  (* The client's view of its own history: last value written per slot. *)
  let expected = Array.make 8 None in
  for i = 0 to 19 do
    let slot = Prng.int rng 8 in
    let v = Printf.sprintf "s%d-i%d" seed i in
    let reply = set sys ~client:0 slot v in
    if reply <> "ok" then failwith "bad reply";
    expected.(slot) <- Some v;
    (* Interleave reads; they must observe the client's own writes. *)
    if Prng.bool rng then begin
      let rslot = Prng.int rng 8 in
      let got = value_part (get sys ~client:0 rslot) in
      let want = Option.value expected.(rslot) ~default:"" in
      if got <> want then
        Alcotest.failf "seed %d (villain %d %s): read %S, wrote %S" seed villain
          (match behavior with
          | Replica.Honest -> "honest"
          | Replica.Mute -> "mute"
          | Replica.Lie_in_replies -> "liar"
          | Replica.Equivocate -> "equivocator")
          got want
    end
  done;
  (* Let traffic settle, then check convergence of the honest replicas
     (a mute replica legitimately lags; liars/equivocators still execute
     the agreed order, so their state matches too). *)
  Engine.run ~until:(Sim_time.add (Runtime.now sys) (Sim_time.of_sec 2.0)) (Runtime.engine sys);
  let honest =
    List.filter (fun r -> not (behavior = Replica.Mute && r = villain)) [ 0; 1; 2; 3 ]
  in
  match honest with
  | [] | [ _ ] -> ()
  | first :: rest ->
    List.iter
      (fun r ->
        if kvs.(r).slots <> kvs.(first).slots then
          Alcotest.failf "seed %d: replica %d diverged from %d" seed r first)
      rest

let test_sweep () =
  for seed = 1 to 12 do
    run_one seed
  done

let suite = [ Alcotest.test_case "randomised safety sweep (12 seeds)" `Slow test_sweep ]
