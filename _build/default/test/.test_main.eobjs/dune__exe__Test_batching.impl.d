test/test_batching.ml: Alcotest Array Base_bft Base_core Base_sim Helpers Printf
