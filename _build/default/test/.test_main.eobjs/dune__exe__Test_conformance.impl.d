test/test_conformance.ml: Alcotest Array Base_core Base_fs Base_nfs Base_util Base_wrapper Bytes Int64 List Printf String
