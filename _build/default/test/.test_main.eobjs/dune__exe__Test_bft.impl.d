test/test_bft.ml: Alcotest Array Base_bft Base_core Base_crypto Base_sim Helpers List Printf
