test/test_bft_wire.ml: Alcotest Array Base_bft Base_codec Base_crypto Int64 List Printf QCheck2 QCheck_alcotest String
