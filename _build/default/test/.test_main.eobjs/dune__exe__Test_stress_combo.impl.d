test/test_stress_combo.ml: Alcotest Array Base_bft Base_core Base_crypto Base_sim Helpers Printf
