test/test_safety_sweep.ml: Alcotest Array Base_bft Base_core Base_sim Base_util Helpers Int64 List Option Printf
