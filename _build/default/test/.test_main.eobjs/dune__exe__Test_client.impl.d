test/test_client.ml: Alcotest Array Base_bft Base_crypto List Option Queue
