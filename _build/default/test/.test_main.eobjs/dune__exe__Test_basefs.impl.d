test/test_basefs.ml: Alcotest Array Base_bft Base_core Base_fs Base_nfs Base_sim Base_workload Float Int64 List Printf
