test/test_substrate.ml: Alcotest Array Base_codec Base_core Base_crypto Base_sim Base_util Char Hashtbl List Option Printf QCheck2 QCheck_alcotest String
