test/test_nfs_model.ml: Alcotest Base_nfs Base_util Int64 List QCheck2 QCheck_alcotest String
