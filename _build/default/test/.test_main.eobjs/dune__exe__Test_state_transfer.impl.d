test/test_state_transfer.ml: Alcotest Array Base_core Base_crypto Base_util Bytes Char List Printf Queue String
