test/test_stack.ml: Alcotest Array Base_bft Base_core Base_sim Helpers Printf
