test/test_oodb.ml: Alcotest Base_core Base_oodb Base_util Int64 List Printf String
