test/test_wrapper_edge.ml: Alcotest Base_core Base_fs Base_nfs Base_util Base_wrapper Int64 List String
