test/helpers.ml: Array Base_bft Base_codec Base_core Base_sim List Option Printf String
