test/test_workload.ml: Alcotest Base_fs Base_nfs Base_workload List Printf
