(* End-to-end tests of the replication stack over the toy register service:
   ordering, read-only ops, checkpointing/GC, view changes on primary
   failure, state transfer for a lagging replica, Byzantine replies, and
   proactive recovery. *)

open Helpers
module Runtime = Base_core.Runtime
module Replica = Base_bft.Replica
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time

let check = Alcotest.(check string)

let test_basic_ops () =
  let sys, _ = make_system () in
  check "set returns ok" "ok" (set sys ~client:0 3 "hello");
  check "get sees the write" "hello" (value_part (get sys ~client:0 3));
  check "read-only get agrees" "hello" (value_part (get_ro sys ~client:0 3))

let test_many_ops_checkpointing () =
  let sys, _ = make_system ~checkpoint_period:8 () in
  for i = 0 to 49 do
    ignore (set sys ~client:0 (i mod 8) (Printf.sprintf "v%d" i))
  done;
  check "final value" "v49" (value_part (get sys ~client:0 1));
  Array.iter
    (fun node ->
      let s = Replica.stats node.Runtime.replica in
      Alcotest.(check bool)
        "took checkpoints" true
        (s.Replica.checkpoints_taken > 2))
    (Runtime.replicas sys);
  (* Garbage collection kicked in: low watermark advanced. *)
  Array.iter
    (fun node ->
      Alcotest.(check bool)
        "watermark advanced" true
        (Replica.low_watermark node.Runtime.replica >= 8))
    (Runtime.replicas sys)

let test_replicas_agree () =
  let sys, kvs = make_system () in
  for i = 0 to 7 do
    ignore (set sys ~client:0 i (Printf.sprintf "x%d" i))
  done;
  (* Let in-flight commits land everywhere. *)
  Engine.run ~until:(Sim_time.add (Runtime.now sys) (Sim_time.of_ms 50)) (Runtime.engine sys);
  Array.iteri
    (fun r kv ->
      for i = 0 to 7 do
        check (Printf.sprintf "replica %d slot %d" r i) (Printf.sprintf "x%d" i) kv.slots.(i)
      done)
    kvs

let test_view_change_on_primary_failure () =
  let sys, _ = make_system () in
  ignore (set sys ~client:0 0 "before");
  (* Silence the primary (replica 0 in view 0): the system must view-change
     and keep executing. *)
  Runtime.set_behavior sys 0 Replica.Mute;
  check "op completes despite dead primary" "ok" (set sys ~client:0 1 "after");
  check "state correct" "after" (value_part (get sys ~client:0 1));
  let view_advanced =
    Array.exists
      (fun node -> Replica.view node.Runtime.replica > 0)
      (Runtime.replicas sys)
  in
  Alcotest.(check bool) "view advanced" true view_advanced

let test_byzantine_replies_masked () =
  let sys, _ = make_system () in
  Runtime.set_behavior sys 2 Replica.Lie_in_replies;
  check "lying replica is outvoted" "ok" (set sys ~client:0 0 "truth");
  check "reads still correct" "truth" (value_part (get sys ~client:0 0))

let test_state_transfer_lagging_replica () =
  let sys, kvs = make_system ~checkpoint_period:8 () in
  (* Take replica 3 down; the other three make progress and garbage-collect
     the messages replica 3 misses; on return it must state-transfer. *)
  Engine.set_node_up (Runtime.engine sys) 3 false;
  for i = 0 to 39 do
    ignore (set sys ~client:0 (i mod 8) (Printf.sprintf "w%d" i))
  done;
  Engine.set_node_up (Runtime.engine sys) 3 true;
  (* Drive the simulation long enough for the status-timer/checkpoint
     machinery to trigger the fetch. *)
  Engine.run
    ~until:(Sim_time.add (Runtime.now sys) (Sim_time.of_sec 3.0))
    ~max_events:2_000_000 (Runtime.engine sys);
  let node3 = Runtime.replica sys 3 in
  Alcotest.(check bool)
    "replica 3 fetched state" true
    ((Replica.stats node3.Runtime.replica).Replica.fetches >= 1);
  check "replica 3 caught up" "w39" kvs.(3).slots.(7)

let test_proactive_recovery_cycle () =
  let sys, kvs = make_system ~checkpoint_period:8 () in
  Runtime.enable_proactive_recovery ~reboot_us:100_000 ~period_us:2_000_000 sys;
  for i = 0 to 79 do
    ignore (set sys ~client:0 (i mod 8) (Printf.sprintf "r%d" i))
  done;
  Engine.run
    ~until:(Sim_time.add (Runtime.now sys) (Sim_time.of_sec 3.0))
    ~max_events:2_000_000 (Runtime.engine sys);
  (* Every replica went through at least one watchdog recovery and the
     implementations were restarted. *)
  Array.iteri
    (fun r node ->
      Alcotest.(check bool)
        (Printf.sprintf "replica %d recovered" r)
        true
        (node.Runtime.recovery_stats.Runtime.recoveries >= 1);
      Alcotest.(check bool)
        (Printf.sprintf "replica %d restarted impl" r)
        true
        (kvs.(r).restarts >= 1))
    (Runtime.replicas sys);
  check "service still correct" "r79" (value_part (get sys ~client:0 7))

let test_deterministic_runs () =
  let run seed =
    let sys, _ = make_system ~seed () in
    for i = 0 to 9 do
      ignore (set sys ~client:0 (i mod 8) (Printf.sprintf "d%d" i))
    done;
    let c = Engine.total_counters (Runtime.engine sys) in
    (c.Engine.sent_msgs, c.Engine.sent_bytes, Sim_time.to_sec (Runtime.now sys))
  in
  let a = run 42L and b = run 42L and c = run 43L in
  Alcotest.(check bool) "same seed, same run" true (a = b);
  Alcotest.(check bool) "different seed, different run" true (a <> c)

let test_message_loss_liveness () =
  let sys, _ = make_system ~drop_p:0.05 ~checkpoint_period:8 () in
  for i = 0 to 29 do
    ignore (set sys ~client:0 (i mod 8) (Printf.sprintf "l%d" i))
  done;
  check "survives 5%% loss" "l29" (value_part (get sys ~client:0 5))

let suite =
  [
    Alcotest.test_case "basic set/get/read-only" `Quick test_basic_ops;
    Alcotest.test_case "checkpointing and GC" `Quick test_many_ops_checkpointing;
    Alcotest.test_case "replicas agree" `Quick test_replicas_agree;
    Alcotest.test_case "view change on primary failure" `Quick test_view_change_on_primary_failure;
    Alcotest.test_case "byzantine replies masked" `Quick test_byzantine_replies_masked;
    Alcotest.test_case "state transfer for lagging replica" `Quick
      test_state_transfer_lagging_replica;
    Alcotest.test_case "proactive recovery cycle" `Quick test_proactive_recovery_cycle;
    Alcotest.test_case "deterministic runs" `Quick test_deterministic_runs;
    Alcotest.test_case "liveness under message loss" `Quick test_message_loss_liveness;
  ]
