(* Edge cases of the conformance wrapper that random differential testing is
   unlikely to hit precisely: staging-directory hiding, name validation,
   deep-rename handle refresh (the path-keyed implementation), capacity
   limits, and abstraction-function behaviour on corrupt state. *)

open Base_nfs.Nfs_types
module Proto = Base_nfs.Nfs_proto
module Spec = Base_nfs.Abstract_spec
module Service = Base_core.Service
module S = Base_fs.Server_intf

let impl_clock seed =
  let c = ref (Int64.mul seed 977L) in
  fun () ->
    c := Int64.add !c 61L;
    !c

let make_pair ?(n_objects = 32) impl =
  let seed = 77L in
  let server =
    match impl with
    | "inode" -> Base_fs.Fs_inode.create (Base_fs.Fs_inode.make ~seed ~now:(impl_clock seed))
    | "hash" -> Base_fs.Fs_hash.create (Base_fs.Fs_hash.make ~seed ~now:(impl_clock seed))
    | "fat" -> Base_fs.Fs_fat.create (Base_fs.Fs_fat.make ~seed ~now:(impl_clock seed))
    | _ -> invalid_arg "impl"
  in
  (server, Base_wrapper.Conformance.make ~server ~n_objects ())

let exec (w : Service.wrapper) ~ts call =
  Proto.decode_reply
    (w.Service.execute ~client:5 ~operation:(Proto.encode_call call)
       ~nondet:(Service.nondet_of_clock ts) ~read_only:false ~modify:ignore)

let created = function
  | Proto.R_create (o, _) -> o
  | _ -> Alcotest.fail "expected create reply"

let test_staging_never_visible () =
  let _, w = make_pair "hash" in
  (* The staging dir exists concretely under the root from construction. *)
  (match exec w ~ts:1L (Proto.Readdir root_oid) with
  | Proto.R_readdir [] -> ()
  | Proto.R_readdir l -> Alcotest.failf "unexpected entries: %s" (String.concat "," (List.map fst l))
  | _ -> Alcotest.fail "readdir");
  (* Nor can clients address names in the reserved namespace. *)
  match exec w ~ts:2L (Proto.Lookup (root_oid, "#staging")) with
  | Proto.R_err Einval -> ()
  | _ -> Alcotest.fail "reserved name must be EINVAL"

let test_bad_names_rejected () =
  let _, w = make_pair "inode" in
  List.iter
    (fun name ->
      match exec w ~ts:1L (Proto.Create (root_oid, name, sattr_empty)) with
      | Proto.R_err Einval -> ()
      | _ -> Alcotest.failf "name %S accepted" name)
    [ ""; "."; ".."; "a/b"; "#x"; String.make 256 'n' ]

let test_deep_rename_refreshes_handles () =
  (* Move a populated directory tree with the path-keyed implementation:
     every handle below it changes concretely; the wrapper must keep
     serving the same oids. *)
  let _, w = make_pair "hash" in
  let d1 = created (exec w ~ts:1L (Proto.Mkdir (root_oid, "top", sattr_empty))) in
  let d2 = created (exec w ~ts:2L (Proto.Mkdir (d1, "mid", sattr_empty))) in
  let f = created (exec w ~ts:3L (Proto.Create (d2, "leaf", sattr_empty))) in
  (match exec w ~ts:4L (Proto.Write (f, 0, "deep payload")) with
  | Proto.R_attr _ -> ()
  | _ -> Alcotest.fail "write");
  (* Rename the top directory: hash re-keys top/mid/leaf. *)
  (match exec w ~ts:5L (Proto.Rename (root_oid, "top", root_oid, "moved")) with
  | Proto.R_ok -> ()
  | _ -> Alcotest.fail "rename");
  (* The oids still work and the data is intact. *)
  (match exec w ~ts:6L (Proto.Read (f, 0, 100)) with
  | Proto.R_read ("deep payload", _) -> ()
  | _ -> Alcotest.fail "read after deep rename");
  match exec w ~ts:7L (Proto.Readdir d2) with
  | Proto.R_readdir [ ("leaf", o) ] -> Alcotest.(check bool) "same oid" true (oid_equal o f)
  | _ -> Alcotest.fail "readdir after deep rename"

let test_capacity_enospc () =
  let _, w = make_pair ~n_objects:4 "inode" in
  (* Slots: 0 = root, 3 free. *)
  ignore (created (exec w ~ts:1L (Proto.Create (root_oid, "a", sattr_empty))));
  ignore (created (exec w ~ts:2L (Proto.Create (root_oid, "b", sattr_empty))));
  ignore (created (exec w ~ts:3L (Proto.Create (root_oid, "c", sattr_empty))));
  (match exec w ~ts:4L (Proto.Create (root_oid, "d", sattr_empty)) with
  | Proto.R_err Enospc -> ()
  | _ -> Alcotest.fail "expected ENOSPC");
  (* Freeing a slot makes creation possible again, with a higher gen. *)
  (match exec w ~ts:5L (Proto.Remove (root_oid, "b")) with
  | Proto.R_ok -> ()
  | _ -> Alcotest.fail "remove");
  let o = created (exec w ~ts:6L (Proto.Create (root_oid, "e", sattr_empty))) in
  Alcotest.(check bool) "gen bumped on reuse" true (o.gen >= 2)

let test_stale_handle_after_reuse () =
  let _, w = make_pair "fat" in
  let a = created (exec w ~ts:1L (Proto.Create (root_oid, "a", sattr_empty))) in
  ignore (exec w ~ts:2L (Proto.Remove (root_oid, "a")));
  let b = created (exec w ~ts:3L (Proto.Create (root_oid, "b", sattr_empty))) in
  Alcotest.(check int) "slot reused" a.index b.index;
  match exec w ~ts:4L (Proto.Getattr a) with
  | Proto.R_err Estale -> ()
  | _ -> Alcotest.fail "stale oid must be ESTALE"

let test_get_obj_reflects_corruption () =
  (* The abstraction function reads the concrete state: silent corruption
     changes the abstract object (and hence its digest), which is exactly
     how the repair machinery notices it. *)
  let server, w = make_pair "inode" in
  let f = created (exec w ~ts:1L (Proto.Create (root_oid, "victim", sattr_empty))) in
  (match exec w ~ts:2L (Proto.Write (f, 0, String.make 64 'v')) with
  | Proto.R_attr _ -> ()
  | _ -> Alcotest.fail "write");
  let before = w.Service.get_obj f.index in
  let prng = Base_util.Prng.create 1L in
  Alcotest.(check int) "one object damaged" 1 (server.S.corrupt ~prng ~count:1);
  let after = w.Service.get_obj f.index in
  Alcotest.(check bool) "abstract value changed" false (String.equal before after)

let test_timestamps_are_the_agreed_values () =
  let _, w = make_pair "fat" in
  (* FAT's 2-second clock must never leak: the abstract mtime is the agreed
     nondet value, microsecond-exact. *)
  let f = created (exec w ~ts:1_234_567L (Proto.Create (root_oid, "t", sattr_empty))) in
  match exec w ~ts:9L (Proto.Getattr f) with
  | Proto.R_attr a -> Alcotest.(check int64) "exact agreed mtime" 1_234_567L a.mtime
  | _ -> Alcotest.fail "getattr"

let test_write_offset_gap () =
  let _, w = make_pair "fat" in
  let f = created (exec w ~ts:1L (Proto.Create (root_oid, "gap", sattr_empty))) in
  (* Write beyond EOF across a cluster boundary: hole is zero-filled. *)
  (match exec w ~ts:2L (Proto.Write (f, 1000, "XYZ")) with
  | Proto.R_attr a -> Alcotest.(check int) "size" 1003 a.size
  | _ -> Alcotest.fail "write");
  match exec w ~ts:3L (Proto.Read (f, 998, 5)) with
  | Proto.R_read ("\000\000XYZ", _) -> ()
  | Proto.R_read (s, _) -> Alcotest.failf "got %S" s
  | _ -> Alcotest.fail "read"

let suite =
  [
    Alcotest.test_case "staging never visible" `Quick test_staging_never_visible;
    Alcotest.test_case "bad names rejected" `Quick test_bad_names_rejected;
    Alcotest.test_case "deep rename refreshes handles" `Quick test_deep_rename_refreshes_handles;
    Alcotest.test_case "capacity ENOSPC + slot reuse" `Quick test_capacity_enospc;
    Alcotest.test_case "stale handle after reuse" `Quick test_stale_handle_after_reuse;
    Alcotest.test_case "get_obj reflects corruption" `Quick test_get_obj_reflects_corruption;
    Alcotest.test_case "timestamps are the agreed values" `Quick
      test_timestamps_are_the_agreed_values;
    Alcotest.test_case "write across cluster gap" `Quick test_write_offset_gap;
  ]
