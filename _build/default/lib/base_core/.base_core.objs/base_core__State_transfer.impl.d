lib/base_core/state_transfer.ml: Array Base_codec Base_crypto Base_util Hashtbl List Objrepo Option Partition_tree Printf Service String
