lib/base_core/runtime.mli: Base_bft Base_crypto Base_sim Objrepo Service State_transfer
