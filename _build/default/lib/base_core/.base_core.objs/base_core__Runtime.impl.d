lib/base_core/runtime.ml: Array Base_bft Base_crypto Base_sim Int64 Objrepo Option Printf Service State_transfer
