lib/base_core/service.ml: Base_codec Base_crypto Int64 String
