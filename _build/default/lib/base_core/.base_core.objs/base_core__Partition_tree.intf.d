lib/base_core/partition_tree.mli: Base_crypto
