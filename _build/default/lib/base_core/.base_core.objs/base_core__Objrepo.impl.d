lib/base_core/objrepo.ml: Base_crypto Hashtbl List Partition_tree Service String
