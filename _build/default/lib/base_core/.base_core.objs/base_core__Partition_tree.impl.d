lib/base_core/partition_tree.ml: Array Base_crypto List
