lib/base_core/objrepo.mli: Base_crypto Hashtbl Partition_tree Service
