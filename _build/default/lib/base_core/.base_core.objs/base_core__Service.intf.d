lib/base_core/service.mli: Base_crypto
