lib/base_core/state_transfer.mli: Base_crypto Objrepo
