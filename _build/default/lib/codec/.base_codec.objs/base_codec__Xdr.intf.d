lib/codec/xdr.mli:
