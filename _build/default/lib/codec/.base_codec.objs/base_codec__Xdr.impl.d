lib/codec/xdr.ml: Buffer Char Int64 List Printf String
