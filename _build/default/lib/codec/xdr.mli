(** XDR-style external data representation (RFC 1014 subset).

    The paper encodes every entry of the abstract file-service state with XDR
    so that heterogeneous replicas agree on the byte-level value of the
    abstract state.  This module provides the encoder/decoder pair used for
    abstract objects and protocol payloads.

    Conventions follow RFC 1014: all quantities are big-endian and padded to
    4-byte multiples; variable-length data is length-prefixed. *)

type encoder

val encoder : unit -> encoder

val u32 : encoder -> int -> unit
(** Encode an unsigned 32-bit quantity.  Raises [Invalid_argument] if the
    value does not fit. *)

val i64 : encoder -> int64 -> unit

val bool : encoder -> bool -> unit

val opaque : encoder -> string -> unit
(** Variable-length opaque data: u32 length + bytes + padding. *)

val str : encoder -> string -> unit
(** Same wire format as {!opaque}; kept separate for readability. *)

val list : encoder -> (encoder -> 'a -> unit) -> 'a list -> unit
(** u32 count followed by each element. *)

val option : encoder -> (encoder -> 'a -> unit) -> 'a option -> unit

val contents : encoder -> string
(** The bytes encoded so far. *)

(** Decoding raises {!Decode_error} on malformed input — truncation, bad
    discriminants, or trailing garbage (via {!expect_end}). *)

exception Decode_error of string

type decoder

val decoder : string -> decoder

val read_u32 : decoder -> int

val read_i64 : decoder -> int64

val read_bool : decoder -> bool

val read_opaque : decoder -> string

val read_str : decoder -> string

val read_list : decoder -> (decoder -> 'a) -> 'a list

val read_option : decoder -> (decoder -> 'a) -> 'a option

val expect_end : decoder -> unit

val remaining : decoder -> int
