lib/sim/engine.mli: Base_util Sim_time
