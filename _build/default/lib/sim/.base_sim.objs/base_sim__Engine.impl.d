lib/sim/engine.ml: Base_util Format Hashtbl Int64 List Printf Sim_time
