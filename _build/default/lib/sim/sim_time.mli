(** Simulated time, in microseconds since the start of the run. *)

type t = int64

val zero : t

val of_us : int -> t

val of_ms : int -> t

val of_sec : float -> t

val of_min : float -> t

val to_sec : t -> float

val to_ms : t -> float

val add : t -> t -> t

val sub : t -> t -> t

val compare : t -> t -> int

val ( < ) : t -> t -> bool

val ( <= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Renders as seconds with microsecond precision, e.g. ["12.000350s"]. *)
