type t = int64

let zero = 0L

let of_us n = Int64.of_int n

let of_ms n = Int64.mul (Int64.of_int n) 1_000L

let of_sec s = Int64.of_float (s *. 1e6)

let of_min m = of_sec (m *. 60.0)

let to_sec t = Int64.to_float t /. 1e6

let to_ms t = Int64.to_float t /. 1e3

let add = Int64.add

let sub = Int64.sub

let compare = Int64.compare

let ( < ) a b = Int64.compare a b < 0

let ( <= ) a b = Int64.compare a b <= 0

let pp ppf t = Format.fprintf ppf "%.6fs" (to_sec t)
