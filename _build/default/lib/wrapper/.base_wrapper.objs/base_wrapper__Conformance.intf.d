lib/wrapper/conformance.mli: Base_core Base_fs
