lib/wrapper/conformance.ml: Array Base_codec Base_core Base_fs Base_nfs Hashtbl List Option Printf String
