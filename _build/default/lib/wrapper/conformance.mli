(** The NFS conformance wrapper (Sections 3.2-3.4 of the paper).

    [make] turns any off-the-shelf file-system implementation (a
    {!Base_fs.Server_intf.t} black box) into a BASE service wrapper that
    behaves exactly according to the common abstract specification
    {!Base_nfs.Abstract_spec}:

    - client-visible file handles are oids; the wrapper translates them to
      the implementation's concrete handles through the conformance rep;
    - oids are assigned deterministically (lowest free index, generation
      incremented);
    - readdir results are sorted lexicographically;
    - timestamps come from the agreed non-deterministic values, never from
      the implementation's clock;
    - [get_obj] implements the abstraction function and [put_objs] one of
      its inverses, using a hidden staging directory for objects that are
      created or evacuated while the concrete state is reshaped;
    - a persistent [<fsid, fileid> -> oid] map supports rebuilding the rep
      after the implementation restarts during proactive recovery (the
      depth-first traversal of Section 3.4). *)

val make :
  ?max_skew_us:int64 ->
  server:Base_fs.Server_intf.t ->
  n_objects:int ->
  unit ->
  Base_core.Service.wrapper
(** [max_skew_us] bounds how far the primary's timestamp proposal may lie
    from a backup's local clock before the backup rejects it (default 5 s,
    covering clock skew plus network delay). *)

(** {1 Exposed for tests} *)

val wrapper_source_files : string list
(** Repo-relative paths making up the wrapper + state conversion functions,
    measured by the code-size experiment (E4). *)
