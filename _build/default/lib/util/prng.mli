(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the repository flows through this module so
    that simulations are reproducible bit-for-bit from a seed.  The generator
    is the splitmix64 mixer of Steele, Lea and Flood, which has a full 2^64
    period and passes BigCrush when used as a stream. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Generators created from the same
    seed yield identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing it. *)

val next64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val int64 : t -> int64 -> int64
(** [int64 t bound] is uniform in [\[0, bound)]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean; used for network
    jitter. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] pseudo-random bytes. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
