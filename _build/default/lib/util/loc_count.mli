(** Source-size metrics for the paper's code-size experiment (E4).

    The paper argues the conformance wrapper plus state-conversion functions
    are small (1105 semicolons, "two orders of magnitude less than the Linux
    2.2 kernel").  This module measures the analogous quantities of this
    repository: statement-terminator counts and non-blank, non-comment lines
    of OCaml source. *)

type counts = {
  files : int;
  lines : int;  (** non-blank, non-comment lines *)
  semicolons : int;  (** [;] occurrences outside comments and string literals *)
}

val zero : counts

val add : counts -> counts -> counts

val count_string : string -> counts
(** Count metrics of one source text (as a single file). *)

val count_file : string -> counts
(** Count metrics of the file at the given path. *)

val count_dir : ?ext:string list -> string -> counts
(** [count_dir dir] recursively counts all files whose suffix is in [ext]
    (default [[".ml"; ".mli"]]). *)
