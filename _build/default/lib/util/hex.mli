(** Hexadecimal encoding of byte strings. *)

val encode : string -> string
(** [encode s] is the lowercase hex rendering of [s]. *)

val decode : string -> string
(** [decode h] inverts {!encode}. Raises [Invalid_argument] on odd length or
    non-hex characters. *)

val short : string -> string
(** First 8 hex digits of [encode s]; used to abbreviate digests in traces. *)
