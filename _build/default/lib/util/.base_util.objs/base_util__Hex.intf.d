lib/util/hex.mli:
