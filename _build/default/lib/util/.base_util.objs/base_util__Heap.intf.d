lib/util/heap.mli:
