lib/util/prng.mli:
