lib/util/str_contains.mli:
