lib/util/loc_count.ml: Array Filename Fun List String Sys
