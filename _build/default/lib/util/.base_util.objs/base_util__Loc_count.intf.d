lib/util/loc_count.mli:
