lib/util/str_contains.ml: String
