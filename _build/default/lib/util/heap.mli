(** Polymorphic binary min-heap.

    Used as the event queue of the discrete-event simulator; ties are broken
    by insertion order so that simulation runs are deterministic. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first).  Elements
    that compare equal pop in insertion order. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val peek : 'a t -> 'a option

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in arbitrary (heap) order; for debugging. *)
