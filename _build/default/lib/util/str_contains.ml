let index_opt hay needle =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then Some 0
  else begin
    let rec at i j = j >= nn || (hay.[i + j] = needle.[j] && at i (j + 1)) in
    let rec scan i = if i + nn > nh then None else if at i 0 then Some i else scan (i + 1) in
    scan 0
  end

let contains hay needle = index_opt hay needle <> None
