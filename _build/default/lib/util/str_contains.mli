(** Substring search (the stdlib has none). *)

val contains : string -> string -> bool
(** [contains haystack needle] — naive search; [true] for the empty needle. *)

val index_opt : string -> string -> int option
