(** Small descriptive-statistics helpers for the benchmark harness. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on the empty list. *)

val percentile : float array -> float -> float
(** [percentile sorted p] with [p] in [\[0,1\]]; [sorted] must be ascending. *)

val mean : float list -> float

val pp_summary : Format.formatter -> summary -> unit
