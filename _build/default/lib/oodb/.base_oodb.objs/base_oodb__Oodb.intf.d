lib/oodb/oodb.mli:
