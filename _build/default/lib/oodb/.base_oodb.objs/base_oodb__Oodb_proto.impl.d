lib/oodb/oodb_proto.ml: Base_codec Printf
