lib/oodb/oodb_wrapper.ml: Array Base_codec Base_core Hashtbl List Oodb Oodb_proto Option Printf
