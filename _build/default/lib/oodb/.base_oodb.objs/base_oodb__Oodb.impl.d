lib/oodb/oodb.ml: Base_util Bytes Hashtbl List
