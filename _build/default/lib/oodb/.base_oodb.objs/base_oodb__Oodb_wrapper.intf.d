lib/oodb/oodb_wrapper.mli: Base_core
