(** Wire protocol of the replicated object database. *)

module Xdr = Base_codec.Xdr

(** Abstract object id: slot index + generation, as in the file service. *)
type aoid = { index : int; gen : int }

let root_aoid = { index = 0; gen = 0 }

type call =
  | New  (** allocate a fresh object; returns its aoid *)
  | Get of aoid  (** full object value *)
  | Set_field of aoid * string * string
  | Get_field of aoid * string
  | Set_ref of aoid * string * aoid
  | Clear_ref of aoid * string
  | Delete of aoid
  | Count

type reply =
  | R_oid of aoid
  | R_value of {
      fields : (string * string) list;  (** sorted *)
      refs : (string * aoid) list;  (** sorted *)
      stamp : int64;
    }
  | R_field of string option
  | R_unit
  | R_count of int
  | R_stale
  | R_full

let read_only_call = function
  | Get _ | Get_field _ | Count -> true
  | New | Set_field _ | Set_ref _ | Clear_ref _ | Delete _ -> false

let enc_aoid e (o : aoid) =
  Xdr.u32 e o.index;
  Xdr.u32 e o.gen

let dec_aoid d =
  let index = Xdr.read_u32 d in
  let gen = Xdr.read_u32 d in
  { index; gen }

let encode_call c =
  let e = Xdr.encoder () in
  (match c with
  | New -> Xdr.u32 e 0
  | Get o ->
    Xdr.u32 e 1;
    enc_aoid e o
  | Set_field (o, f, v) ->
    Xdr.u32 e 2;
    enc_aoid e o;
    Xdr.str e f;
    Xdr.str e v
  | Get_field (o, f) ->
    Xdr.u32 e 3;
    enc_aoid e o;
    Xdr.str e f
  | Set_ref (o, f, target) ->
    Xdr.u32 e 4;
    enc_aoid e o;
    Xdr.str e f;
    enc_aoid e target
  | Clear_ref (o, f) ->
    Xdr.u32 e 5;
    enc_aoid e o;
    Xdr.str e f
  | Delete o ->
    Xdr.u32 e 6;
    enc_aoid e o
  | Count -> Xdr.u32 e 7);
  Xdr.contents e

let decode_call s =
  let d = Xdr.decoder s in
  let c =
    match Xdr.read_u32 d with
    | 0 -> New
    | 1 -> Get (dec_aoid d)
    | 2 ->
      let o = dec_aoid d in
      let f = Xdr.read_str d in
      Set_field (o, f, Xdr.read_str d)
    | 3 ->
      let o = dec_aoid d in
      Get_field (o, Xdr.read_str d)
    | 4 ->
      let o = dec_aoid d in
      let f = Xdr.read_str d in
      Set_ref (o, f, dec_aoid d)
    | 5 ->
      let o = dec_aoid d in
      Clear_ref (o, Xdr.read_str d)
    | 6 -> Delete (dec_aoid d)
    | 7 -> Count
    | n -> raise (Xdr.Decode_error (Printf.sprintf "bad oodb call %d" n))
  in
  Xdr.expect_end d;
  c

let encode_reply r =
  let e = Xdr.encoder () in
  (match r with
  | R_oid o ->
    Xdr.u32 e 0;
    enc_aoid e o
  | R_value { fields; refs; stamp } ->
    Xdr.u32 e 1;
    Xdr.list e
      (fun e (f, v) ->
        Xdr.str e f;
        Xdr.str e v)
      fields;
    Xdr.list e
      (fun e (f, o) ->
        Xdr.str e f;
        enc_aoid e o)
      refs;
    Xdr.i64 e stamp
  | R_field v -> (
    Xdr.u32 e 2;
    match v with
    | None -> Xdr.u32 e 0
    | Some s ->
      Xdr.u32 e 1;
      Xdr.str e s)
  | R_unit -> Xdr.u32 e 3
  | R_count n ->
    Xdr.u32 e 4;
    Xdr.u32 e n
  | R_stale -> Xdr.u32 e 5
  | R_full -> Xdr.u32 e 6);
  Xdr.contents e

let decode_reply s =
  let d = Xdr.decoder s in
  let r =
    match Xdr.read_u32 d with
    | 0 -> R_oid (dec_aoid d)
    | 1 ->
      let fields =
        Xdr.read_list d (fun d ->
            let f = Xdr.read_str d in
            (f, Xdr.read_str d))
      in
      let refs =
        Xdr.read_list d (fun d ->
            let f = Xdr.read_str d in
            (f, dec_aoid d))
      in
      R_value { fields; refs; stamp = Xdr.read_i64 d }
    | 2 -> (
      match Xdr.read_u32 d with
      | 0 -> R_field None
      | 1 -> R_field (Some (Xdr.read_str d))
      | n -> raise (Xdr.Decode_error (Printf.sprintf "bad field option %d" n)))
    | 3 -> R_unit
    | 4 -> R_count (Xdr.read_u32 d)
    | 5 -> R_stale
    | 6 -> R_full
    | n -> raise (Xdr.Decode_error (Printf.sprintf "bad oodb reply %d" n))
  in
  Xdr.expect_end d;
  r
