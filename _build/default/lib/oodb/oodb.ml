(** A small object-oriented database, in the spirit of the OODB the BASE
    abstract mentions ("replicas ran the same, non-deterministic
    implementation").

    The engine stores objects with scalar fields and reference fields.  It
    is deliberately non-deterministic in exactly the ways that break naive
    state-machine replication:

    - internal object identifiers are random tokens drawn from the
      instance's seed;
    - iteration order of the object table depends on those tokens;
    - every update stamps the object with a version timestamp read from the
      host's local clock.

    Replicas running this engine from different seeds diverge immediately at
    the concrete level; the conformance wrapper in {!Oodb_wrapper} hides all
    of it behind the abstract specification. *)

module Prng = Base_util.Prng

type record = {
  mutable fields : (string * string) list;  (* unordered *)
  mutable refs : (string * string) list;  (* field -> internal oid token *)
  mutable version_stamp : int64;  (* from the local clock: divergent *)
}

type t = {
  prng : Prng.t;
  now : unit -> int64;
  objects : (string, record) Hashtbl.t;
  root_token : string;
}

let fresh_token t = "obj-" ^ Base_util.Hex.encode (Bytes.to_string (Prng.bytes t.prng 8))

let create ~seed ~now =
  let prng = Prng.create seed in
  let t = { prng; now; objects = Hashtbl.create 64; root_token = "" } in
  let root = fresh_token t in
  Hashtbl.replace t.objects root { fields = []; refs = []; version_stamp = now () };
  { t with root_token = root }

let root t = t.root_token

let get t token = Hashtbl.find_opt t.objects token

let alloc t =
  let token = fresh_token t in
  Hashtbl.replace t.objects token { fields = []; refs = []; version_stamp = t.now () };
  token

let delete t token = Hashtbl.remove t.objects token

let set_field t token field value =
  match get t token with
  | None -> false
  | Some r ->
    r.fields <- (field, value) :: List.remove_assoc field r.fields;
    r.version_stamp <- t.now ();
    true

let get_field t token field =
  match get t token with None -> None | Some r -> List.assoc_opt field r.fields

let set_ref t token field target =
  match get t token with
  | None -> false
  | Some r ->
    r.refs <- (field, target) :: List.remove_assoc field r.refs;
    r.version_stamp <- t.now ();
    true

let clear_ref t token field =
  match get t token with
  | None -> false
  | Some r ->
    r.refs <- List.remove_assoc field r.refs;
    r.version_stamp <- t.now ();
    true

let count t = Hashtbl.length t.objects

(* Iteration order is hash order over random tokens: non-deterministic. *)
let tokens t = Hashtbl.fold (fun k _ acc -> k :: acc) t.objects []
