(** A small object-oriented database engine with deliberate non-determinism.

    Objects carry scalar fields and reference fields.  Internal object
    identifiers are random tokens, table iteration order depends on them,
    and every update stamps the object from the host's local clock — the
    divergences that break naive state-machine replication and that
    {!Oodb_wrapper} masks. *)

type record = {
  mutable fields : (string * string) list;  (** unordered *)
  mutable refs : (string * string) list;  (** field -> internal oid token *)
  mutable version_stamp : int64;  (** local-clock stamp: divergent per replica *)
}

type t

val create : seed:int64 -> now:(unit -> int64) -> t
(** A fresh database containing only the root object. *)

val root : t -> string
(** Token of the root object. *)

val get : t -> string -> record option

val alloc : t -> string
(** Allocate an empty object; returns its (random) token. *)

val delete : t -> string -> unit

val set_field : t -> string -> string -> string -> bool
(** [set_field t token field value]; [false] if the object is gone. *)

val get_field : t -> string -> string -> string option

val set_ref : t -> string -> string -> string -> bool

val clear_ref : t -> string -> string -> bool

val count : t -> int

val tokens : t -> string list
(** All live tokens, in (non-deterministic) table order. *)
