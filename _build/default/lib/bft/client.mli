(** PBFT client: the [invoke] side of the library interface (Figure 1).

    A client sends an authenticated request to the primary (retransmitting to
    all replicas on timeout) and accepts a result once enough replicas sent
    matching replies: f+1 for read-write operations, 2f+1 for the read-only
    optimisation.  A read-only request that cannot gather a 2f+1 quorum is
    retried as a regular request, as in the BFT library.

    The simulator is event-driven, so [invoke] takes a completion callback
    rather than blocking; one request is outstanding at a time and further
    invocations queue. *)

type net = {
  send : dst:int -> Message.envelope -> unit;
  set_timer : after_us:int -> tag:string -> payload:int -> int;
  cancel_timer : int -> unit;
  now_us : unit -> int64;
}

type stats = {
  mutable completed : int;
  mutable retransmissions : int;
  mutable read_only_fallbacks : int;
  mutable latencies_us : float list;  (** per completed operation *)
}

type t

val create :
  config:Types.config -> id:int -> keychain:Base_crypto.Auth.keychain -> net:net -> t
(** [id] must be [>= config.n] (replica ids come first). *)

val id : t -> int

val invoke : t -> ?read_only:bool -> operation:string -> (string -> unit) -> unit
(** [invoke t ~operation k] schedules the operation and calls [k result] when
    the reply quorum arrives. *)

val receive : t -> Message.envelope -> unit
(** Feed a network delivery (replies) to the client. *)

val on_timer : t -> tag:string -> payload:int -> unit

val outstanding : t -> int
(** Number of queued + in-flight operations (0 when idle). *)

val stats : t -> stats
