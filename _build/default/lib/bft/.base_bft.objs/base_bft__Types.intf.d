lib/bft/types.mli:
