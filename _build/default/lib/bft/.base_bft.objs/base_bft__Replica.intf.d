lib/bft/replica.mli: Base_crypto Message Types
