lib/bft/client.mli: Base_crypto Message Types
