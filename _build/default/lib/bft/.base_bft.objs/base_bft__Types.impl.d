lib/bft/types.ml: Fun List
