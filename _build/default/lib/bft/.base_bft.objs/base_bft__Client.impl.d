lib/bft/client.ml: Base_crypto Hashtbl Int64 Message Queue Types
