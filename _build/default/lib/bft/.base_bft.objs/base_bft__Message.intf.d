lib/bft/message.mli: Base_crypto Types
