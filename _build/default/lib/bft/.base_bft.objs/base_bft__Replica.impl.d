lib/bft/replica.ml: Base_codec Base_crypto Char Hashtbl List Message Queue String Types
