lib/bft/message.ml: Array Base_codec Base_crypto List Printf String Types
