(** Shared protocol types and static configuration for the PBFT substrate. *)

type view = int

type seqno = int

(** Static system configuration.  Replicas occupy simulator node ids
    [0 .. n-1]; clients use ids [n ..]; one extra id is reserved for the
    recovery orchestrator. *)
type config = {
  n : int;  (** number of replicas, always [3f + 1] *)
  f : int;  (** tolerated Byzantine faults *)
  checkpoint_period : int;  (** the paper's [k]: checkpoint every k-th request *)
  log_window : int;  (** [L]: the high watermark is [h + L]; a multiple of [k] *)
  client_timeout_us : int;  (** client retransmission timer *)
  viewchange_timeout_us : int;  (** backup progress timer before a view change *)
  n_principals : int;  (** replicas + clients (MAC keychain universe) *)
  batch_max : int;  (** max client requests ordered per consensus instance *)
  max_inflight : int;  (** proposals outstanding before the primary batches *)
}

val make_config :
  ?checkpoint_period:int ->
  ?log_window:int ->
  ?client_timeout_us:int ->
  ?viewchange_timeout_us:int ->
  ?batch_max:int ->
  ?max_inflight:int ->
  f:int ->
  n_clients:int ->
  unit ->
  config

val primary : config -> view -> int
(** The primary of a view: [view mod n]. *)

val replica_ids : config -> int list

val quorum : config -> int
(** [2f + 1]. *)

val weak_quorum : config -> int
(** [f + 1]: any set this large contains a correct replica. *)

val is_replica : config -> int -> bool
