(** The common abstract specification [S] of the file service (Section 3.1)
    as an executable model.

    The abstract state is a fixed-size array of entries — a generation
    number paired with an object: a file (byte array), a directory
    (lexicographically sorted [name -> oid] sequence), a symbolic link, or
    the null object marking a free entry.  Entry 0 is the root directory;
    oids are assigned deterministically (lowest free index, generation
    incremented).

    This module is simultaneously:
    - the {e specification} every conformance wrapper is differentially
      tested against;
    - the definition of the canonical per-object encoding
      ({!encode_entry}) produced by every replica's [get_obj]; and
    - a directly usable (trivially conformant) reference implementation. *)

open Nfs_types

type meta = { mode : int; uid : int; gid : int; mtime : int64; ctime : int64 }

type obj =
  | Null
  | File of { meta : meta; data : string }
  | Directory of { meta : meta; entries : (string * oid) list (** sorted by name *) }
  | Symlink of { meta : meta; target : string }

type entry = { gen : int; obj : obj }

type t

val create : n_objects:int -> t
(** Fresh state: root directory at index 0, everything else free. *)

val n_objects : t -> int

val slot : t -> int -> entry

val oid_at : t -> int -> oid
(** The oid currently denoting slot [i]. *)

val encode_entry : entry -> string
(** Canonical XDR encoding — the value of one abstract object. *)

val decode_entry : string -> entry

val dir_size : (string * oid) list -> int
(** Deterministic abstract size of a directory. *)

val attr_of : index:int -> entry -> fattr
(** Derived attributes (sizes, nlink, fileid, times) of a non-null entry. *)

val in_subtree : t -> root_idx:int -> int -> bool
(** Subtree membership, for the rename-into-own-descendant rule. *)

val execute : ?modify:(int -> unit) -> t -> ts:int64 -> Nfs_proto.call -> Nfs_proto.reply
(** Apply one operation with the agreed timestamp [ts].  [modify] is called
    with the index of every slot about to change, before it changes — the
    same contract as the BASE [modify] upcall. *)
