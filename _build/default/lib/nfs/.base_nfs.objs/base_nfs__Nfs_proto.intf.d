lib/nfs/nfs_proto.mli: Nfs_types
