lib/nfs/nfs_client.ml: Base_codec Buffer List Nfs_proto Nfs_types String
