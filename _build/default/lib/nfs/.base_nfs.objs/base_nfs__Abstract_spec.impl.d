lib/nfs/abstract_spec.ml: Array Base_codec List Nfs_proto Nfs_types Option Printf String
