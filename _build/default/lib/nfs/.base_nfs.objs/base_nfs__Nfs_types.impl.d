lib/nfs/nfs_types.ml: Format Printf String
