lib/nfs/abstract_spec.mli: Nfs_proto Nfs_types
