lib/nfs/nfs_proto.ml: Base_codec Nfs_types Printf
