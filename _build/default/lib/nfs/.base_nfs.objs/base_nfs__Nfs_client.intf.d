lib/nfs/nfs_client.mli: Nfs_proto Nfs_types
