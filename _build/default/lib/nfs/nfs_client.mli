(** Client-side library for the replicated file service.

    Plays the role of Figure 2's relay + kernel NFS client: turns typed
    calls into encoded operations submitted through an {!invoke} function
    (normally wrapping {!Base_core.Runtime.invoke_sync}) and decodes the
    replies.  Read-only calls are flagged so the replication library can
    use its one-round read-only optimisation. *)

open Nfs_types

type invoke = read_only:bool -> operation:string -> string

type t

val make : invoke -> t

exception Protocol_error of string
(** Raised when a reply cannot be decoded or has the wrong shape — only
    possible if the quorum itself misbehaves beyond the fault assumption. *)

val call : t -> Nfs_proto.call -> Nfs_proto.reply
(** Raw typed call. *)

(** Typed convenience wrappers, one per NFS operation. *)

val getattr : t -> oid -> (fattr, err) result

val setattr : t -> oid -> sattr -> (fattr, err) result

val lookup : t -> oid -> string -> (oid * fattr, err) result

val readlink : t -> oid -> (string, err) result

val read : t -> oid -> off:int -> count:int -> (string * fattr, err) result

val write : t -> oid -> off:int -> string -> (fattr, err) result

val create : t -> oid -> string -> sattr -> (oid * fattr, err) result

val remove : t -> oid -> string -> (unit, err) result

val rename : t -> oid -> string -> oid -> string -> (unit, err) result

val symlink : t -> oid -> string -> string -> sattr -> (oid * fattr, err) result

val mkdir : t -> oid -> string -> sattr -> (oid * fattr, err) result

val rmdir : t -> oid -> string -> (unit, err) result

val readdir : t -> oid -> ((string * oid) list, err) result

val statfs : t -> (int * int, err) result
(** (total slots, free slots). *)

(** {1 Path-level conveniences} *)

val ok : ('a, err) result -> 'a
(** Unwrap or fail with the NFS error name. *)

val split_path : string -> string list

val resolve_path : t -> string -> (oid * fattr, err) result
(** Walk a ["/a/b/c"] path from the root. *)

val mkdir_p : t -> string -> oid
(** Create all missing directories along the path; returns the last one. *)

val write_file : t -> oid -> string -> chunk:int -> string -> oid
(** Create (or reuse) [name] in the directory and write the contents in
    [chunk]-byte calls; returns the file's oid. *)

val read_file : t -> oid -> chunk:int -> string
(** Read a whole file in [chunk]-byte calls. *)
