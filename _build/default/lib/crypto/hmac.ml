let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  if String.length key < block_size then
    key ^ String.make (block_size - String.length key) '\000'
  else key

let xor_pad key pad =
  String.init block_size (fun i -> Char.chr (Char.code key.[i] lxor Char.code pad))

let mac_list ~key msgs =
  let key = normalize_key key in
  let ipad = xor_pad key '\x36' in
  let opad = xor_pad key '\x5c' in
  let inner = Sha256.digest_list (ipad :: msgs) in
  Sha256.digest_list [ opad; inner ]

let mac ~key msg = mac_list ~key [ msg ]

let verify ~key msg ~tag =
  let expected = mac ~key msg in
  if String.length expected <> String.length tag then false
  else begin
    (* Fold over all bytes rather than short-circuiting. *)
    let diff = ref 0 in
    String.iteri (fun i c -> diff := !diff lor (Char.code c lxor Char.code tag.[i])) expected;
    !diff = 0
  end
