lib/crypto/auth.ml: Array Base_util Bytes Hmac
