lib/crypto/digest_t.ml: Base_util Format Sha256 String
