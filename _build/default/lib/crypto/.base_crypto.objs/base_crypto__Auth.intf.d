lib/crypto/auth.mli:
