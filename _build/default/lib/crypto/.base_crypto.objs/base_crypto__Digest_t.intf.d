lib/crypto/digest_t.mli: Format
