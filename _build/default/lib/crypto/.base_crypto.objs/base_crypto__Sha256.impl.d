lib/crypto/sha256.ml: Array Base_util Bytes Char Int64 List String
