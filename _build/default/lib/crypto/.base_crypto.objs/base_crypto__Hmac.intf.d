lib/crypto/hmac.mli:
