type keychain = {
  id : int;
  keys : string array; (* session key with each peer *)
  epochs : int array;
  prng : Base_util.Prng.t; (* key-refresh randomness *)
}

let session_key prng = Bytes.unsafe_to_string (Base_util.Prng.bytes prng 32)

let create ~seed ~n_principals =
  let prng = Base_util.Prng.create seed in
  let chains =
    Array.init n_principals (fun id ->
        {
          id;
          keys = Array.make n_principals "";
          epochs = Array.make n_principals 0;
          prng = Base_util.Prng.split prng;
        })
  in
  for i = 0 to n_principals - 1 do
    for j = i to n_principals - 1 do
      let key = session_key prng in
      chains.(i).keys.(j) <- key;
      chains.(j).keys.(i) <- key
    done
  done;
  chains

let epoch chain peer = chain.epochs.(peer)

let refresh_keys chains i =
  let me = chains.(i) in
  Array.iteri
    (fun j peer ->
      if j <> i then begin
        let key = session_key me.prng in
        me.keys.(j) <- key;
        peer.keys.(i) <- key;
        me.epochs.(j) <- me.epochs.(j) + 1;
        peer.epochs.(i) <- peer.epochs.(i) + 1
      end)
    chains

let mac_for chain ~receiver msg = Hmac.mac ~key:chain.keys.(receiver) msg

let authenticator chain ~n msg = Array.init n (fun receiver -> mac_for chain ~receiver msg)

let check chain ~sender msg ~mac = Hmac.verify ~key:chain.keys.(sender) msg ~tag:mac
