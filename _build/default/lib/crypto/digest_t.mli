(** Abstract 32-byte digest values with total order and pretty-printing. *)

type t

val of_string : string -> t
(** [of_string s] hashes [s]. *)

val of_list : string list -> t
(** Digest of the concatenation of the inputs. *)

val of_raw : string -> t
(** Wrap an existing 32-byte digest. Raises [Invalid_argument] on wrong
    length. *)

val raw : t -> string
(** The underlying 32 bytes. *)

val zero : t
(** The all-zeroes digest, used as the placeholder for empty state. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val combine : t list -> t
(** Digest of child digests, for Merkle-tree interior nodes. *)

val pp : Format.formatter -> t -> unit
(** Abbreviated hex form. *)

val to_hex : t -> string
