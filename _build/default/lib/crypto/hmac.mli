(** HMAC-SHA256 (RFC 2104). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key]. *)

val mac_list : key:string -> string list -> string
(** Tag over the concatenation of the inputs. *)

val verify : key:string -> string -> tag:string -> bool
(** Constant-shape comparison of the expected tag with [tag]. *)
