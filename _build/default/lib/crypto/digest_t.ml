type t = string

let of_string s = Sha256.digest s

let of_list ss = Sha256.digest_list ss

let of_raw s =
  if String.length s <> 32 then invalid_arg "Digest_t.of_raw: expected 32 bytes";
  s

let raw t = t

let zero = String.make 32 '\000'

let equal = String.equal

let compare = String.compare

let combine ds = Sha256.digest_list ds

let to_hex t = Base_util.Hex.encode t

let pp ppf t = Format.pp_print_string ppf (Base_util.Hex.short t)
