(** "LogFS": a log-structured file-system implementation.

    Updates append immutable node versions to a compacting log; handles
    encode a boot epoch and die on restart; directories list entries in
    reverse insertion order; the clock has a fixed boot offset. *)

type t

val make : seed:int64 -> now:(unit -> int64) -> t

val create : t -> Server_intf.t
