(** "FatFS": a FAT-style file-system implementation.

    File contents live in fixed-size clusters linked through a file
    allocation table; directories are tables of slots.  Quirks (masked by
    the conformance wrapper): cluster allocation is next-fit behind a
    rotating cursor, readdir order is directory-slot order (deleted entries
    leave tombstones that later creates reuse), timestamps have two-second
    granularity like real FAT, and handles embed a mount generation that
    changes on every restart. *)

type t

val make : seed:int64 -> now:(unit -> int64) -> t

val create : t -> Server_intf.t
