(** "UnixFS": a classic inode-table file-system implementation.

    One of the four off-the-shelf implementations the replicated file
    service can run behind its conformance wrapper.  Quirks (all masked by
    the wrapper): LIFO inode recycling, insertion-order directories, file
    handles salted per boot, timestamps from the host clock. *)

type t

val make : seed:int64 -> now:(unit -> int64) -> t
(** [make ~seed ~now] creates an empty file system whose internal
    non-determinism derives from [seed] and whose clock is [now] (typically
    the replica's skewed local clock). *)

val create : t -> Server_intf.t
(** The NFS-server face of the instance. *)
