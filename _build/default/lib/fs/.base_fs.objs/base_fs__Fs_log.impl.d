lib/fs/fs_log.ml: Array Base_nfs Base_util Bytes Char Hashtbl Int64 List Option Printf Server_intf String
