lib/fs/fs_inode.mli: Server_intf
