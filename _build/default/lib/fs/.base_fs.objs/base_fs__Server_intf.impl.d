lib/fs/server_intf.ml: Base_nfs Base_util String
