lib/fs/fs_fat.mli: Server_intf
