lib/fs/fs_btree.ml: Array Base_nfs Base_util Bytes Char Hashtbl Int64 List Map Option Printf Server_intf String
