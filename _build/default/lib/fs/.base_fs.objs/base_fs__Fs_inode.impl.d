lib/fs/fs_inode.ml: Array Base_nfs Base_util Bytes Char List Option Printf Server_intf String
