lib/fs/fs_hash.mli: Server_intf
