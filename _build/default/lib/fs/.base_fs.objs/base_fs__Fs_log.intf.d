lib/fs/fs_log.mli: Server_intf
