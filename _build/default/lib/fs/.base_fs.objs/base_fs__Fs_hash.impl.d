lib/fs/fs_hash.ml: Array Base_nfs Base_util Bytes Char Hashtbl List Option Server_intf String
