lib/fs/fs_btree.mli: Server_intf
