lib/fs/fs_fat.ml: Array Base_nfs Base_util Bytes Char Fun Hashtbl Int64 List Option Printf Server_intf String
