(** "HashFS": a path-keyed file-system implementation.

    Every object lives in one hash table keyed by its full path; readdir
    order is hash order, handles are random volatile tokens, and renames
    re-key whole subtrees.  This is also the implementation carrying the
    deterministic latent bug used by the N-version experiment (armed with
    {!Server_intf.t.set_poison}). *)

type t

val make : seed:int64 -> now:(unit -> int64) -> t

val create : t -> Server_intf.t
