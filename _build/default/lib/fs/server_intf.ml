(** The NFS-server-like interface every off-the-shelf file-system
    implementation exposes, and behind which the conformance wrapper treats
    it as a black box.

    Concrete file handles are opaque strings whose format differs per
    implementation, exactly as NFS implementations choose arbitrary handle
    values.  Handles are {e volatile}: after {!t.restart} (a server reboot
    during proactive recovery) old handles return [Estale] and objects must
    be re-found from the root — except through the persistent
    [<fsid, fileid>] identity exposed by {!t.identity} (Section 3.4).

    Each implementation keeps its own notion of time (fed by the replica's
    drifting local clock), its own allocation order, and its own readdir
    order; none of this non-determinism may leak through the wrapper. *)

type attr = {
  a_ftype : Base_nfs.Nfs_types.ftype;
  a_mode : int;
  a_uid : int;
  a_gid : int;
  a_size : int;
  a_fsid : int;
  a_fileid : int;
  a_atime : int64;  (** the implementation's own clock — divergent! *)
  a_mtime : int64;
  a_ctime : int64;
}

(** Concrete settable attributes (times omitted: the wrapper owns abstract
    time). *)
type csattr = {
  c_mode : int option;
  c_uid : int option;
  c_gid : int option;
  c_size : int option;
}

let csattr_empty = { c_mode = None; c_uid = None; c_gid = None; c_size = None }

type err = Base_nfs.Nfs_types.err

type t = {
  name : string;
  root : unit -> string;
  lookup : dir:string -> name:string -> (string * attr, err) result;
  getattr : fh:string -> (attr, err) result;
  setattr : fh:string -> csattr -> (attr, err) result;
  read : fh:string -> off:int -> count:int -> (string, err) result;
  write : fh:string -> off:int -> data:string -> (unit, err) result;
  create : dir:string -> name:string -> mode:int -> uid:int -> gid:int -> (string * attr, err) result;
  mkdir : dir:string -> name:string -> mode:int -> uid:int -> gid:int -> (string * attr, err) result;
  symlink :
    dir:string -> name:string -> target:string -> mode:int -> uid:int -> gid:int ->
    (string * attr, err) result;
  readlink : fh:string -> (string, err) result;
  remove : dir:string -> name:string -> (unit, err) result;
  rmdir : dir:string -> name:string -> (unit, err) result;
  rename : sdir:string -> sname:string -> ddir:string -> dname:string -> (unit, err) result;
  readdir : dir:string -> ((string * string) list, err) result;
      (** (name, child handle) pairs in the implementation's own order *)
  identity : fh:string -> (int * int, err) result;  (** persistent [<fsid, fileid>] *)
  restart : unit -> unit;  (** reboot: volatile handles become stale *)
  corrupt : prng:Base_util.Prng.t -> count:int -> int;
      (** fault injection: silently damage up to [count] stored file objects
          (bit rot, bad sectors); returns how many were damaged *)
  set_poison : string option -> unit;
      (** arm the implementation's deterministic bug, if it has one: further
          operations involving names containing the poison string fail *)
}

(* Helpers shared by the implementations (not part of the interface). *)

let string_splice base ~off ~data ~max_size =
  if off + String.length data > max_size then Error Base_nfs.Nfs_types.Efbig
  else begin
    let len = String.length base in
    let base = if off > len then base ^ String.make (off - len) '\000' else base in
    let head = String.sub base 0 off in
    let tail_start = off + String.length data in
    let tail =
      if tail_start < String.length base then
        String.sub base tail_start (String.length base - tail_start)
      else ""
    in
    Ok (head ^ data ^ tail)
  end

let string_resize base size =
  if size <= String.length base then String.sub base 0 size
  else base ^ String.make (size - String.length base) '\000'

let substr base ~off ~count =
  let len = String.length base in
  let off = min off len in
  let count = min count (len - off) in
  String.sub base off count
