(** "CatFS": a catalogue-based (HFS-flavoured) file-system implementation.

    A single ordered catalogue maps [(parent id, name)] to children with
    case-insensitive collation; node ids are recycled smallest-first; the
    clock ticks in whole milliseconds; handles carry a per-session nonce. *)

type t

val make : seed:int64 -> now:(unit -> int64) -> t

val create : t -> Server_intf.t
