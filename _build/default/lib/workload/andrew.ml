(** A scaled Andrew-style benchmark (Howard et al., with the scale-up of the
    paper's Section 4).

    The classic five phases, parameterised by [scale]:
    + {b mkdir} — create the directory tree;
    + {b copy}  — populate it with source files;
    + {b scan}  — recursive stat of every object (Andrew's "ls -l");
    + {b read}  — read every byte of every file (Andrew's "grep");
    + {b make}  — read the sources in each directory and write an output
      object (the "compile").

    The paper's scaled-up run generates 1 GB of data; [scale] grows the tree
    and the data volume linearly, and the harness reports MB processed so
    runs at different scales are comparable. *)

type phase_result = {
  phase : string;
  ops : int;
  bytes : int;
  seconds : float;
}

type result = {
  label : string;
  scale : int;
  phases : phase_result list;
  total_seconds : float;
  total_bytes : int;
}

(* Deterministic file contents: compressible text-like bytes. *)
let file_body ~dir ~file ~len =
  let pattern =
    Printf.sprintf "int f_%d_%d(void) { return %d; } /* generated */\n" dir file (dir * file)
  in
  let b = Buffer.create len in
  while Buffer.length b < len do
    Buffer.add_string b pattern
  done;
  Buffer.sub b 0 len

let dirs_at ~scale = 4 + (2 * scale)

let files_per_dir ~scale = 3 + min scale 5

let file_len ~scale = 2048 * (1 + min scale 8)

let run ?(cost = Cost_model.default) ~scale (fs : Fs_iface.t) =
  let phases = ref [] in
  let record phase ops bytes f =
    let t0 = fs.Fs_iface.elapsed_s () in
    let o0 = fs.Fs_iface.ops () in
    f ();
    let seconds = fs.Fs_iface.elapsed_s () -. t0 in
    let ops = match ops with Some n -> n | None -> fs.Fs_iface.ops () - o0 in
    phases := { phase; ops; bytes; seconds } :: !phases
  in
  let n_dirs = dirs_at ~scale in
  let n_files = files_per_dir ~scale in
  let flen = file_len ~scale in
  let dir_handles = Array.make n_dirs fs.Fs_iface.root in
  (* Phase 1: mkdir. *)
  record "mkdir" None 0 (fun () ->
      for d = 0 to n_dirs - 1 do
        (* A shallow tree of groups, like Andrew's subtree of dirs. *)
        let parent = if d < 4 then fs.Fs_iface.root else dir_handles.(d mod 4) in
        dir_handles.(d) <- fs.Fs_iface.mkdir ~dir:parent ~name:(Printf.sprintf "dir%03d" d)
      done);
  (* Phase 2: copy. *)
  let copy_bytes = ref 0 in
  record "copy" None 0 (fun () ->
      for d = 0 to n_dirs - 1 do
        for f = 0 to n_files - 1 do
          let body = file_body ~dir:d ~file:f ~len:flen in
          let fh = fs.Fs_iface.create ~dir:dir_handles.(d) ~name:(Printf.sprintf "f%02d.c" f) in
          (* 8 KB wire chunks, like an NFSv2 client. *)
          let rec put off =
            if off < String.length body then begin
              let n = min 8192 (String.length body - off) in
              fs.Fs_iface.write ~fh ~off ~data:(String.sub body off n);
              put (off + n)
            end
          in
          put 0;
          copy_bytes := !copy_bytes + flen
        done
      done);
  (* Patch the recorded bytes for the copy phase. *)
  (phases :=
     match !phases with
     | p :: rest -> { p with bytes = !copy_bytes } :: rest
     | [] -> []);
  (* Phase 3: recursive scan (stat every object). *)
  record "scan" None 0 (fun () ->
      let rec walk dir =
        List.iter
          (fun (name, fh) ->
            ignore (fs.Fs_iface.size_of ~fh);
            match fs.Fs_iface.lookup ~dir ~name with
            | Some (fh', Base_nfs.Nfs_types.Dir) -> walk fh'
            | Some _ | None -> ())
          (fs.Fs_iface.readdir ~dir)
      in
      walk fs.Fs_iface.root);
  (* Phase 4: read every byte. *)
  let read_bytes = ref 0 in
  record "read" None 0 (fun () ->
      let rec walk dir =
        List.iter
          (fun (name, fh) ->
            match fs.Fs_iface.lookup ~dir ~name with
            | Some (fh', Base_nfs.Nfs_types.Dir) -> walk fh'
            | Some (_, Base_nfs.Nfs_types.Reg) ->
              let size = fs.Fs_iface.size_of ~fh in
              let rec get off =
                if off < size then begin
                  let data = fs.Fs_iface.read ~fh ~off ~count:8192 in
                  read_bytes := !read_bytes + String.length data;
                  get (off + 8192)
                end
              in
              get 0
            | Some _ | None -> ())
          (fs.Fs_iface.readdir ~dir)
      in
      walk fs.Fs_iface.root);
  (phases :=
     match !phases with
     | p :: rest -> { p with bytes = !read_bytes } :: rest
     | [] -> []);
  (* Phase 5: make — read sources, burn client CPU, write objects. *)
  let make_bytes = ref 0 in
  record "make" None 0 (fun () ->
      for d = 0 to n_dirs - 1 do
        let sources = fs.Fs_iface.readdir ~dir:dir_handles.(d) in
        let total = ref 0 in
        List.iter
          (fun (name, fh) ->
            if Filename.check_suffix name ".c" then begin
              let size = fs.Fs_iface.size_of ~fh in
              let rec get off =
                if off < size then begin
                  ignore (fs.Fs_iface.read ~fh ~off ~count:8192);
                  get (off + 8192)
                end
              in
              get 0;
              total := !total + size
            end)
          sources;
        fs.Fs_iface.think ~us:(Cost_model.compile_cost_us cost ~bytes:!total);
        let out = fs.Fs_iface.create ~dir:dir_handles.(d) ~name:"output.o" in
        let obj = file_body ~dir:d ~file:999 ~len:(!total / 2) in
        let rec put off =
          if off < String.length obj then begin
            let n = min 8192 (String.length obj - off) in
            fs.Fs_iface.write ~fh:out ~off ~data:(String.sub obj off n);
            put (off + n)
          end
        in
        put 0;
        make_bytes := !make_bytes + !total + (!total / 2)
      done);
  (phases :=
     match !phases with
     | p :: rest -> { p with bytes = !make_bytes } :: rest
     | [] -> []);
  let phases = List.rev !phases in
  {
    label = fs.Fs_iface.label;
    scale;
    phases;
    total_seconds = List.fold_left (fun acc p -> acc +. p.seconds) 0.0 phases;
    total_bytes = List.fold_left (fun acc p -> acc + p.bytes) 0 phases;
  }

let pp_result ppf r =
  Format.fprintf ppf "%-12s scale=%d  (%.1f MB touched)@." r.label r.scale
    (float_of_int r.total_bytes /. 1048576.0);
  List.iter
    (fun p ->
      Format.fprintf ppf "  %-8s %6d ops %10d B %9.3f s@." p.phase p.ops p.bytes p.seconds)
    r.phases;
  Format.fprintf ppf "  %-8s %28s %9.3f s@." "total" "" r.total_seconds
