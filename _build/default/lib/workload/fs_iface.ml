(** One file-system face for the workload generators, with two backends:
    the replicated BASE-FS service (operations travel through the whole
    replication stack inside the simulator) and the unreplicated
    off-the-shelf baseline (direct calls, analytically timed).

    Handles are opaque strings; operation service costs from the
    {!Cost_model} are charged identically on both sides. *)

open Base_nfs.Nfs_types
module Runtime = Base_core.Runtime
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time
module S = Base_fs.Server_intf

type t = {
  label : string;
  root : string;
  mkdir : dir:string -> name:string -> string;
  create : dir:string -> name:string -> string;
  write : fh:string -> off:int -> data:string -> unit;
  read : fh:string -> off:int -> count:int -> string;
  size_of : fh:string -> int;
  lookup : dir:string -> name:string -> (string * ftype) option;
  readdir : dir:string -> (string * string) list;
  remove : dir:string -> name:string -> unit;
  think : us:float -> unit;  (** client-side compute between calls *)
  elapsed_s : unit -> float;
  ops : unit -> int;
}

let fail_err what e = failwith (Printf.sprintf "%s failed: %s" what (err_to_string e))

(* --- replicated backend ------------------------------------------------------ *)

let oid_to_handle (o : oid) = Printf.sprintf "%d:%d" o.index o.gen

let handle_to_oid h =
  match String.split_on_char ':' h with
  | [ i; g ] -> { index = int_of_string i; gen = int_of_string g }
  | _ -> invalid_arg "bad replicated handle"

let of_runtime ?(cost = Cost_model.default) ~client runtime =
  let engine = Runtime.engine runtime in
  let started = Engine.now engine in
  let ops = ref 0 in
  let charge ~read_only ~bytes =
    let us = Cost_model.op_cost_us cost ~read_only ~bytes in
    Engine.advance_to engine (Sim_time.add (Engine.now engine) (Sim_time.of_us (int_of_float us)))
  in
  let invoke ~read_only ~operation =
    incr ops;
    let r = Runtime.invoke_sync runtime ~client ~read_only ~operation () in
    charge ~read_only ~bytes:(String.length operation + String.length r);
    r
  in
  let nfs = Base_nfs.Nfs_client.make invoke in
  let module C = Base_nfs.Nfs_client in
  {
    label = "base-fs";
    root = oid_to_handle root_oid;
    mkdir =
      (fun ~dir ~name ->
        match C.mkdir nfs (handle_to_oid dir) name sattr_empty with
        | Ok (o, _) -> oid_to_handle o
        | Error e -> fail_err "mkdir" e);
    create =
      (fun ~dir ~name ->
        match C.create nfs (handle_to_oid dir) name sattr_empty with
        | Ok (o, _) -> oid_to_handle o
        | Error e -> fail_err "create" e);
    write =
      (fun ~fh ~off ~data ->
        match C.write nfs (handle_to_oid fh) ~off data with
        | Ok _ -> ()
        | Error e -> fail_err "write" e);
    read =
      (fun ~fh ~off ~count ->
        match C.read nfs (handle_to_oid fh) ~off ~count with
        | Ok (data, _) -> data
        | Error e -> fail_err "read" e);
    size_of =
      (fun ~fh ->
        match C.getattr nfs (handle_to_oid fh) with
        | Ok a -> a.size
        | Error e -> fail_err "getattr" e);
    lookup =
      (fun ~dir ~name ->
        match C.lookup nfs (handle_to_oid dir) name with
        | Ok (o, a) -> Some (oid_to_handle o, a.ftype)
        | Error Enoent -> None
        | Error e -> fail_err "lookup" e);
    readdir =
      (fun ~dir ->
        match C.readdir nfs (handle_to_oid dir) with
        | Ok entries -> List.map (fun (n, o) -> (n, oid_to_handle o)) entries
        | Error e -> fail_err "readdir" e);
    remove =
      (fun ~dir ~name ->
        match C.remove nfs (handle_to_oid dir) name with
        | Ok () -> ()
        | Error e -> fail_err "remove" e);
    think =
      (fun ~us ->
        Engine.advance_to engine
          (Sim_time.add (Engine.now engine) (Sim_time.of_us (int_of_float us))));
    elapsed_s = (fun () -> Sim_time.to_sec (Sim_time.sub (Engine.now engine) started));
    ops = (fun () -> !ops);
  }

(* --- direct (unreplicated) backend ------------------------------------------- *)

let of_direct (d : Systems.direct) =
  let ops = ref 0 in
  let call ~read_only ~bytes =
    incr ops;
    Systems.direct_charge d ~read_only ~bytes
  in
  let srv = d.Systems.server in
  {
    label = "raw-" ^ srv.S.name;
    root = srv.S.root ();
    mkdir =
      (fun ~dir ~name ->
        call ~read_only:false ~bytes:64;
        match srv.S.mkdir ~dir ~name ~mode:0o755 ~uid:0 ~gid:0 with
        | Ok (fh, _) -> fh
        | Error e -> fail_err "mkdir" e);
    create =
      (fun ~dir ~name ->
        call ~read_only:false ~bytes:64;
        match srv.S.create ~dir ~name ~mode:0o644 ~uid:0 ~gid:0 with
        | Ok (fh, _) -> fh
        | Error e -> fail_err "create" e);
    write =
      (fun ~fh ~off ~data ->
        call ~read_only:false ~bytes:(String.length data + 32);
        match srv.S.write ~fh ~off ~data with
        | Ok () -> ()
        | Error e -> fail_err "write" e);
    read =
      (fun ~fh ~off ~count ->
        call ~read_only:true ~bytes:(count + 32);
        match srv.S.read ~fh ~off ~count with
        | Ok data -> data
        | Error e -> fail_err "read" e);
    size_of =
      (fun ~fh ->
        call ~read_only:true ~bytes:96;
        match srv.S.getattr ~fh with
        | Ok a -> a.S.a_size
        | Error e -> fail_err "getattr" e);
    lookup =
      (fun ~dir ~name ->
        call ~read_only:true ~bytes:96;
        match srv.S.lookup ~dir ~name with
        | Ok (fh, a) -> Some (fh, a.S.a_ftype)
        | Error Enoent -> None
        | Error e -> fail_err "lookup" e);
    readdir =
      (fun ~dir ->
        call ~read_only:true ~bytes:256;
        match srv.S.readdir ~dir with
        | Ok entries -> entries
        | Error e -> fail_err "readdir" e);
    remove =
      (fun ~dir ~name ->
        call ~read_only:false ~bytes:64;
        match srv.S.remove ~dir ~name with
        | Ok () -> ()
        | Error e -> fail_err "remove" e);
    think = (fun ~us -> d.Systems.elapsed_us <- d.Systems.elapsed_us +. us);
    elapsed_s = (fun () -> d.Systems.elapsed_us /. 1e6);
    ops = (fun () -> !ops);
  }
