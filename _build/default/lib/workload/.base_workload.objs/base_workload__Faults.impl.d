lib/workload/faults.ml: Array Base_core Base_crypto Base_fs Base_nfs Base_sim Base_util Char Float Hashtbl Int64 List Option Printf String Systems
