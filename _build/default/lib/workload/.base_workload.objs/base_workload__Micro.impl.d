lib/workload/micro.ml: Base_core Base_nfs Base_sim Format List Printf String Systems
