lib/workload/msg_census.mli: Base_sim Format
