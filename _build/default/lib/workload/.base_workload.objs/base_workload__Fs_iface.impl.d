lib/workload/fs_iface.ml: Base_core Base_fs Base_nfs Base_sim Cost_model List Printf String Systems
