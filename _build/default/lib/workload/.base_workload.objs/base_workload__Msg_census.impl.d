lib/workload/msg_census.ml: Base_sim Format Hashtbl List Option String
