lib/workload/systems.ml: Array Base_bft Base_core Base_fs Base_sim Base_wrapper Cost_model Int64 Option
