lib/workload/andrew.ml: Array Base_nfs Buffer Cost_model Filename Format Fs_iface List Printf String
