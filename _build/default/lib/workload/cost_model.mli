(** Service-time model for the Andrew-style experiments.

    The simulator accounts for network latency, jitter and bandwidth; this
    model supplies what it cannot know — per-operation server CPU/disk time
    and client think time — charged identically to the replicated service
    and the unreplicated baseline, so measured overheads isolate the
    replication machinery.  Constants approximate the paper's year-2001
    testbed (disk-backed NFS over 100 Mbit/s switched Ethernet). *)

type t = {
  op_base_us : float;  (** fixed server CPU + disk cost per mutating call *)
  op_per_kb_us : float;  (** incremental cost per data KB moved *)
  ro_base_us : float;  (** cheaper cost of cached read-only calls *)
  think_per_op_us : float;  (** client-side processing between calls *)
  compile_per_kb_us : float;  (** client CPU per KB in the compile phase *)
}

val default : t

val op_cost_us : t -> read_only:bool -> bytes:int -> float

val compile_cost_us : t -> bytes:int -> float
