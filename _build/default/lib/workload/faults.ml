(** Fault-injection scenarios: opportunistic N-version programming against a
    deterministic software bug (E6), state corruption with proactive-recovery
    repair (E9), and availability probes used by the recovery experiment
    (E5). *)

open Base_nfs.Nfs_types
module Runtime = Base_core.Runtime
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time
module Objrepo = Base_core.Objrepo
module S = Base_fs.Server_intf

let nfs_of sys ~client =
  Base_nfs.Nfs_client.make (fun ~read_only ~operation ->
      Runtime.invoke_sync sys.Systems.runtime ~client ~read_only ~operation ())

(* Distinct abstract-state roots across the replica group (0 divergent =
   everybody agrees). *)
let divergent_replicas sys =
  let roots =
    Array.map
      (fun node -> Objrepo.current_root node.Runtime.repo)
      (Runtime.replicas sys.Systems.runtime)
  in
  let counts = Hashtbl.create 4 in
  Array.iter
    (fun r ->
      let k = Base_crypto.Digest_t.raw r in
      Hashtbl.replace counts k (1 + Option.value (Hashtbl.find_opt counts k) ~default:0))
    roots;
  let majority = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  Array.length roots - majority

(* --- E6: deterministic bug vs N-version programming -------------------------- *)

type poison_outcome = {
  configuration : string;
  read_back_correct : bool;  (** did the client read what it wrote? *)
  divergent : int;  (** replicas whose abstract state differs from majority *)
  buggy_replicas : int;
}

(* Arm the latent bug on every replica running [buggy_impl], then have the
   client write data that triggers it and read the data back. *)
let poison_experiment ?(seed = 5L) ~hetero () =
  let sys = Systems.make_basefs ~seed ~hetero ~n_clients:1 () in
  let buggy = ref 0 in
  Array.iteri
    (fun rid name ->
      if name = "hash" then begin
        incr buggy;
        sys.Systems.servers.(rid).S.set_poison (Some "BUG")
      end)
    sys.Systems.impl_of;
  let nfs = nfs_of sys ~client:0 in
  let module C = Base_nfs.Nfs_client in
  let payload = "static int BUG_trigger = 42; /* crosses the bad code path */" in
  let file, _ = C.ok (C.create nfs root_oid "poisoned.c" sattr_empty) in
  ignore (C.ok (C.write nfs file ~off:0 payload));
  let got, _ = C.ok (C.read nfs file ~off:0 ~count:(String.length payload)) in
  (* Let in-flight protocol traffic settle before inspecting the replicas. *)
  Engine.run
    ~until:(Sim_time.add (Runtime.now sys.Systems.runtime) (Sim_time.of_ms 100))
    (Runtime.engine sys.Systems.runtime);
  {
    configuration = (if hetero then "heterogeneous (4 distinct impls)" else "homogeneous (4 x hash)");
    read_back_correct = String.equal got payload;
    divergent = divergent_replicas sys;
    buggy_replicas = !buggy;
  }

(* --- E9: concrete-state corruption and repair --------------------------------- *)

type corruption_outcome = {
  corrupt_replicas : int;
  objects_damaged : int;
  reads_correct_before_repair : bool;
  objects_repaired : int;  (** fetched during proactive recovery *)
  divergent_after_repair : int;
}

let populate nfs ~files ~len =
  let module C = Base_nfs.Nfs_client in
  List.init files (fun i ->
      let name = Printf.sprintf "data%02d" i in
      let body = String.init len (fun k -> Char.chr (((i * 31) + k) mod 256)) in
      let fh, _ = C.ok (C.create nfs root_oid name sattr_empty) in
      ignore (C.ok (C.write nfs fh ~off:0 body));
      (fh, body))

let corruption_experiment ?(seed = 9L) ~corrupt_replicas ~objects_per_replica () =
  let sys = Systems.make_basefs ~seed ~hetero:true ~checkpoint_period:16 ~n_clients:1 () in
  let rt = sys.Systems.runtime in
  let nfs = nfs_of sys ~client:0 in
  let module C = Base_nfs.Nfs_client in
  let files = populate nfs ~files:12 ~len:4096 in
  (* Silent bit rot on the first [corrupt_replicas] replicas. *)
  let prng = Base_util.Prng.create (Int64.add seed 1000L) in
  let damaged = ref 0 in
  for rid = 0 to corrupt_replicas - 1 do
    damaged := !damaged + sys.Systems.servers.(rid).S.corrupt ~prng ~count:objects_per_replica
  done;
  (* Reads must still be correct while no more than f replicas are corrupt:
     the wrapped, corrupted replicas are simply outvoted. *)
  let reads_ok =
    List.for_all
      (fun (fh, body) ->
        let got, _ = C.ok (C.read nfs fh ~off:0 ~count:(String.length body)) in
        String.equal got body)
      files
  in
  (* Proactive recovery sweeps every replica; keep light load running so
     checkpoints keep certifying fresh states. *)
  Runtime.enable_proactive_recovery ~reboot_us:50_000 ~period_us:1_500_000 rt;
  for i = 0 to 40 do
    let fh, _ = List.nth files (i mod 12) in
    ignore (C.ok (C.write nfs fh ~off:0 (Printf.sprintf "tick %d" i)));
    Engine.advance_to (Runtime.engine rt)
      (Sim_time.add (Runtime.now rt) (Sim_time.of_ms 200))
  done;
  Runtime.disable_proactive_recovery rt;
  Engine.run ~until:(Sim_time.add (Runtime.now rt) (Sim_time.of_sec 3.0)) (Runtime.engine rt);
  let repaired =
    Array.fold_left
      (fun acc node -> acc + node.Runtime.recovery_stats.Runtime.total_objects_fetched)
      0 (Runtime.replicas rt)
  in
  {
    corrupt_replicas;
    objects_damaged = !damaged;
    reads_correct_before_repair = reads_ok;
    objects_repaired = repaired;
    divergent_after_repair = divergent_replicas sys;
  }

(* --- E5: availability probe ---------------------------------------------------- *)

type window = { w_start_s : float; w_ops : int }

(* Continuous closed-loop load; returns completed-operation counts per
   [window_s]-second window of virtual time. *)
let throughput_trace ?(seed = 13L) ~duration_s ~window_s ~recovery () =
  let sys = Systems.make_basefs ~seed ~hetero:true ~checkpoint_period:32 ~n_clients:1 () in
  let rt = sys.Systems.runtime in
  (match recovery with
  | Some (period_us, reboot_us) ->
    Runtime.enable_proactive_recovery ~reboot_us ~period_us rt
  | None -> ());
  let nfs = nfs_of sys ~client:0 in
  let module C = Base_nfs.Nfs_client in
  let fh, _ = C.ok (C.create nfs root_oid "probe" sattr_empty) in
  let completions = ref [] in
  let n = ref 0 in
  while Sim_time.to_sec (Runtime.now rt) < duration_s do
    incr n;
    ignore (C.ok (C.write nfs fh ~off:0 (Printf.sprintf "op%d" !n)));
    completions := Sim_time.to_sec (Runtime.now rt) :: !completions
  done;
  let buckets = int_of_float (Float.ceil (duration_s /. window_s)) in
  let counts = Array.make buckets 0 in
  List.iter
    (fun t ->
      let b = int_of_float (t /. window_s) in
      if b >= 0 && b < buckets then counts.(b) <- counts.(b) + 1)
    !completions;
  ( sys,
    Array.to_list (Array.mapi (fun i c -> { w_start_s = float_of_int i *. window_s; w_ops = c }) counts)
  )
