(** Message census: protocol-traffic counts by message type, collected
    through the simulator's tracer (used by the experiment harness to report
    e.g. how many PREPAREs an Andrew run costs). *)

type t

val create : unit -> t

val install : t -> 'msg Base_sim.Engine.t -> unit
(** Installs a tracer on the engine (replacing any existing one). *)

val rows : t -> (string * int) list
(** (message type, sends) pairs, most frequent first. *)

val total : t -> int

val pp : Format.formatter -> t -> unit
