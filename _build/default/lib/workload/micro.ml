(** Operation-level micro-benchmarks of the replicated file service:
    latency per NFS call type, replicated vs unreplicated, separating
    read-write calls (full agreement) from read-only calls (the one-round
    optimisation).  The same measurement style as the BFT library's
    micro-benchmarks. *)

open Base_nfs.Nfs_types
module Runtime = Base_core.Runtime
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time
module C = Base_nfs.Nfs_client

type row = {
  op : string;
  read_only : bool;
  base_us : float;  (** mean latency through the replicated service *)
  raw_us : float;  (** analytic latency against the unwrapped server *)
}

let slowdown r = r.base_us /. r.raw_us

(* Latency of [n] repetitions of a call through the replicated stack,
   measured in virtual time (protocol only; the service-time model applies
   equally to both sides, so it is excluded here to isolate replication
   cost). *)
let measure_replicated sys ~client ~n make_call =
  let rt = sys.Systems.runtime in
  let nfs =
    C.make (fun ~read_only ~operation ->
        Runtime.invoke_sync rt ~client ~read_only ~operation ())
  in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    let t0 = Sim_time.to_sec (Runtime.now rt) in
    make_call nfs i;
    total := !total +. (Sim_time.to_sec (Runtime.now rt) -. t0)
  done;
  !total /. float_of_int n *. 1e6

(* The unreplicated baseline answers in one request/response exchange. *)
let raw_rtt_us ~bytes = (2.0 *. (60.0 +. 15.0)) +. (float_of_int (bytes * 8) /. 100e6 *. 1e6)

let run ?(seed = 3L) ?(n = 30) () =
  let sys = Systems.make_basefs ~seed ~hetero:true ~n_clients:1 () in
  let rt = sys.Systems.runtime in
  let nfs =
    C.make (fun ~read_only ~operation -> Runtime.invoke_sync rt ~client:0 ~read_only ~operation ())
  in
  (* Fixtures. *)
  let dir = C.mkdir_p nfs "/micro" in
  let file = C.write_file nfs dir "target" ~chunk:8192 (String.make 8192 'd') in
  let rows = ref [] in
  let bench op read_only ~raw_bytes make_call =
    let base_us = measure_replicated sys ~client:0 ~n make_call in
    rows := { op; read_only; base_us; raw_us = raw_rtt_us ~bytes:raw_bytes } :: !rows
  in
  bench "getattr" true ~raw_bytes:128 (fun nfs _ -> ignore (C.ok (C.getattr nfs file)));
  bench "lookup" true ~raw_bytes:128 (fun nfs _ -> ignore (C.ok (C.lookup nfs dir "target")));
  bench "read-8k" true ~raw_bytes:8300 (fun nfs _ ->
      ignore (C.ok (C.read nfs file ~off:0 ~count:8192)));
  bench "readdir" true ~raw_bytes:512 (fun nfs _ -> ignore (C.ok (C.readdir nfs dir)));
  bench "write-1k" false ~raw_bytes:1200 (fun nfs i ->
      ignore (C.ok (C.write nfs file ~off:(1024 * (i mod 8)) (String.make 1024 'w'))));
  bench "write-8k" false ~raw_bytes:8300 (fun nfs _ ->
      ignore (C.ok (C.write nfs file ~off:0 (String.make 8192 'W'))));
  bench "create+remove" false ~raw_bytes:256 (fun nfs i ->
      let name = Printf.sprintf "tmp%d" i in
      ignore (C.ok (C.create nfs dir name sattr_empty));
      ignore (C.ok (C.remove nfs dir name)));
  bench "setattr" false ~raw_bytes:160 (fun nfs i ->
      ignore (C.ok (C.setattr nfs file { sattr_empty with s_mode = Some (0o600 + (i mod 8)) })));
  List.rev !rows

let pp_rows ppf rows =
  Format.fprintf ppf "  %-14s %-6s %12s %12s %10s@." "operation" "kind" "base-fs(us)"
    "raw(us)" "slowdown";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-14s %-6s %12.0f %12.0f %9.2fx@." r.op
        (if r.read_only then "ro" else "rw")
        r.base_us r.raw_us (slowdown r))
    rows
