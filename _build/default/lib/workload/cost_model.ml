(** Service-time model for the Andrew-style experiments.

    The discrete-event simulator accounts for network latency, jitter and
    bandwidth; what it cannot know is how long the file server spends on CPU
    and disk per operation, or how long the client "thinks" between
    operations (the compile phase).  Those costs are injected from this
    model, identically for the replicated service and for the unreplicated
    baseline, so the reported overhead isolates the replication machinery —
    the quantity the paper reports.

    Constants are calibrated to year-2001 hardware (the paper's testbed):
    NFS operations over a 100 Mbit/s switched LAN against a disk-backed
    server, a few hundred microseconds to a few milliseconds per call. *)

type t = {
  op_base_us : float;  (** fixed server CPU + disk cost per operation *)
  op_per_kb_us : float;  (** incremental cost per data KB moved *)
  ro_base_us : float;  (** cheaper server-side cost of cached reads *)
  think_per_op_us : float;  (** client-side processing between calls *)
  compile_per_kb_us : float;  (** client CPU per KB in the compile phase *)
}

let default =
  {
    op_base_us = 340.0;
    op_per_kb_us = 30.0;
    ro_base_us = 120.0;
    think_per_op_us = 30.0;
    compile_per_kb_us = 160.0;
  }

let op_cost_us t ~read_only ~bytes =
  let base = if read_only then t.ro_base_us else t.op_base_us in
  base +. (t.op_per_kb_us *. float_of_int bytes /. 1024.0) +. t.think_per_op_us

let compile_cost_us t ~bytes = t.compile_per_kb_us *. float_of_int bytes /. 1024.0
