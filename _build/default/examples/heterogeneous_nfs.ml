(* Opportunistic N-version programming (Section 1 of the paper).

   A deterministic latent bug — writes whose payload crosses a particular
   code path get silently corrupted — lives in one of the four off-the-shelf
   file-system implementations.  With four *distinct* implementations the
   buggy replica is outvoted and the client never notices; with four copies
   of the *same* implementation the bug is a common-mode failure and the
   client reads corrupted data backed by a full quorum.

   Run with: dune exec examples/heterogeneous_nfs.exe *)

module Faults = Base_workload.Faults

let report (o : Faults.poison_outcome) =
  Printf.printf "%s\n" o.Faults.configuration;
  Printf.printf "  replicas with the buggy implementation : %d\n" o.Faults.buggy_replicas;
  Printf.printf "  client read back what it wrote         : %b\n" o.Faults.read_back_correct;
  Printf.printf "  replicas diverging from the majority   : %d\n" o.Faults.divergent;
  if o.Faults.read_back_correct then
    Printf.printf "  => the bug was masked by the other implementations\n\n"
  else Printf.printf "  => common-mode failure: every replica corrupted the data identically\n\n"

let () =
  Printf.printf "Writing a file whose contents trigger the latent bug...\n\n";
  report (Faults.poison_experiment ~hetero:true ());
  report (Faults.poison_experiment ~hetero:false ())
