(* Network partition demo: safety over liveness.

   A 2+2 partition leaves neither side with a 2f+1 quorum, so the service
   stops — it never forks.  Healing restores liveness: the stuck operation
   commits exactly once and every replica converges on the same history.

   Run with: dune exec examples/partition_demo.exe *)

open Base_nfs.Nfs_types
module C = Base_nfs.Nfs_client
module Runtime = Base_core.Runtime
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time
module Systems = Base_workload.Systems

let () =
  let sys = Systems.make_basefs ~hetero:true ~n_clients:1 () in
  let rt = sys.Systems.runtime in
  let engine = Runtime.engine rt in
  let nfs =
    C.make (fun ~read_only ~operation -> Runtime.invoke_sync rt ~client:0 ~read_only ~operation ())
  in
  let f = C.write_file nfs root_oid "ledger" ~chunk:4096 "before partition\n" in
  Printf.printf "wrote ledger before the partition\n";
  (* Split the replicas 2+2: no quorum on either side. *)
  Engine.partition engine [ 0; 1 ] [ 2; 3 ];
  Printf.printf "partitioned {0,1} | {2,3}; issuing a write...\n";
  let committed = ref false in
  Runtime.invoke rt ~client:0
    ~operation:
      (Base_nfs.Nfs_proto.encode_call (Base_nfs.Nfs_proto.Write (f, 0, "during partition!\n")))
    (fun _ -> committed := true);
  Engine.run ~until:(Sim_time.add (Runtime.now rt) (Sim_time.of_sec 3.0)) engine;
  Printf.printf "after 3 s of partition: committed = %b (safety: no split brain)\n" !committed;
  Engine.heal engine;
  Printf.printf "healed the network...\n";
  let budget = ref 0 in
  while (not !committed) && !budget < 2_000_000 do
    ignore (Engine.step engine);
    incr budget
  done;
  Printf.printf "after healing: committed = %b\n" !committed;
  let data = C.read_file nfs f ~chunk:4096 in
  Printf.printf "ledger now reads: %S\n" data;
  Engine.run ~until:(Sim_time.add (Runtime.now rt) (Sim_time.of_sec 1.0)) engine;
  Printf.printf "replicas diverging from majority: %d (must be 0)\n"
    (Base_workload.Faults.divergent_replicas sys)
