examples/quickstart.ml: Array Base_bft Base_codec Base_core List Printf String
