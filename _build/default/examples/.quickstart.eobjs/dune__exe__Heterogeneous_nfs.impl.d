examples/heterogeneous_nfs.ml: Base_workload Printf
