examples/oodb_rejuvenation.mli:
