examples/heterogeneous_nfs.mli:
