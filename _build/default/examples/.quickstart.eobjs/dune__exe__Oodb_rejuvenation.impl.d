examples/oodb_rejuvenation.ml: Array Base_bft Base_core Base_crypto Base_oodb Base_sim Format Int64 List Printf String
