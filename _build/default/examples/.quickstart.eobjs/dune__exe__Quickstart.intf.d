examples/quickstart.mli:
