examples/replicated_fs.mli:
