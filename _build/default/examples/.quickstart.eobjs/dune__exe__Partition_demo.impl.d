examples/partition_demo.ml: Base_core Base_nfs Base_sim Base_workload Printf
