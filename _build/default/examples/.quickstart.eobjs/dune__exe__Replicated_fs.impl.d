examples/replicated_fs.ml: Array Base_core Base_crypto Base_fs Base_nfs Base_workload Format Int64 List Printf
