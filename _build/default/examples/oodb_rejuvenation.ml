(* Software rejuvenation of a replicated object database.

   All four replicas run the *same* non-deterministic OODB engine (random
   internal object identifiers, local version clocks) from different seeds —
   the configuration the paper's abstract describes.  The conformance
   wrapper keeps the abstract states identical, and staggered proactive
   recovery periodically reboots each replica and repairs its state from the
   group.

   Run with: dune exec examples/oodb_rejuvenation.exe *)

module Runtime = Base_core.Runtime
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time
open Base_oodb.Oodb_proto

let n_objects = 64

let () =
  let config = Base_bft.Types.make_config ~checkpoint_period:16 ~log_window:32 ~f:1 ~n_clients:1 () in
  let engine_cell = ref None in
  let make_wrapper rid =
    let now () =
      match !engine_cell with
      | Some e -> Engine.local_clock e rid
      | None -> 0L
    in
    Base_oodb.Oodb_wrapper.make ~seed:(Int64.of_int (1000 + rid)) ~now ~n_objects ()
  in
  let sys = Runtime.create ~config ~make_wrapper ~n_clients:1 () in
  engine_cell := Some (Runtime.engine sys);
  let call c =
    decode_reply
      (Runtime.invoke_sync sys ~client:0 ~read_only:(read_only_call c)
         ~operation:(encode_call c) ())
  in
  (* Build a small object graph: a root pointing at two "accounts". *)
  let new_obj () = match call New with R_oid o -> o | _ -> failwith "new" in
  let alice = new_obj () and bob = new_obj () in
  ignore (call (Set_field (alice, "name", "alice")));
  ignore (call (Set_field (alice, "balance", "100")));
  ignore (call (Set_field (bob, "name", "bob")));
  ignore (call (Set_field (bob, "balance", "250")));
  ignore (call (Set_ref (root_aoid, "alice", alice)));
  ignore (call (Set_ref (root_aoid, "bob", bob)));
  (match call (Get root_aoid) with
  | R_value { refs; _ } ->
    Printf.printf "root object references: %s\n"
      (String.concat ", " (List.map (fun (f, (o : aoid)) -> Printf.sprintf "%s->%d.%d" f o.index o.gen) refs))
  | _ -> failwith "get root");
  (* Turn on rejuvenation and keep updating balances while every replica is
     rebooted in turn. *)
  Runtime.enable_proactive_recovery ~reboot_us:100_000 ~period_us:1_200_000 sys;
  for day = 1 to 30 do
    ignore (call (Set_field (alice, "balance", string_of_int (100 + day))));
    Engine.advance_to (Runtime.engine sys)
      (Sim_time.add (Runtime.now sys) (Sim_time.of_ms 150))
  done;
  (* Stop the watchdogs and let the last repair finish before inspecting. *)
  Runtime.disable_proactive_recovery sys;
  Engine.run ~until:(Sim_time.add (Runtime.now sys) (Sim_time.of_sec 3.0)) (Runtime.engine sys);
  (match call (Get_field (alice, "balance")) with
  | R_field (Some v) -> Printf.printf "alice's balance after 30 updates: %s\n" v
  | _ -> failwith "get_field");
  Printf.printf "\nrecoveries per replica:\n";
  Array.iter
    (fun node ->
      Printf.printf "  replica %d: %d recoveries, %d objects fetched during repair\n"
        node.Runtime.rid node.Runtime.recovery_stats.Runtime.recoveries
        node.Runtime.recovery_stats.Runtime.total_objects_fetched)
    (Runtime.replicas sys);
  (* The replicas' concrete object tokens all differ; their abstract states
     are identical. *)
  Printf.printf "\nabstract roots: ";
  Array.iter
    (fun node ->
      Format.printf "%a " Base_crypto.Digest_t.pp
        (Base_core.Objrepo.current_root node.Runtime.repo))
    (Runtime.replicas sys);
  print_newline ()
