(* BASE-FS: the paper's replicated NFS file service.

   Four replicas run four different off-the-shelf file-system
   implementations behind conformance wrappers; the client mounts one
   logical file system and cannot tell them apart.

   Run with: dune exec examples/replicated_fs.exe *)

open Base_nfs.Nfs_types
module C = Base_nfs.Nfs_client
module Runtime = Base_core.Runtime
module Systems = Base_workload.Systems

let () =
  let sys = Systems.make_basefs ~hetero:true ~n_clients:1 () in
  let rt = sys.Systems.runtime in
  Printf.printf "replica -> implementation:\n";
  Array.iteri (fun rid name -> Printf.printf "  replica %d runs %s\n" rid name)
    sys.Systems.impl_of;
  let nfs =
    C.make (fun ~read_only ~operation -> Runtime.invoke_sync rt ~client:0 ~read_only ~operation ())
  in
  (* Build a small project tree. *)
  let src = C.mkdir_p nfs "/home/alice/project/src" in
  let _readme =
    C.write_file nfs (C.mkdir_p nfs "/home/alice/project") "README" ~chunk:4096
      "A file stored on four different file systems at once.\n"
  in
  let main_c = C.write_file nfs src "main.c" ~chunk:4096 "int main(void) { return 0; }\n" in
  ignore (C.ok (C.symlink nfs src "main.link" "main.c" sattr_empty));
  (* Read it back through the replicated service. *)
  Printf.printf "\n/home/alice/project/src:\n";
  List.iter
    (fun (name, o) ->
      let a = C.ok (C.getattr nfs o) in
      Printf.printf "  %-10s %s %5d bytes oid=%d.%d mtime=%.3fs\n" name
        (ftype_to_string a.ftype) a.size o.index o.gen
        (Int64.to_float a.mtime /. 1e6))
    (C.ok (C.readdir nfs src));
  Printf.printf "\nmain.c says: %s" (C.read_file nfs main_c ~chunk:4096);
  (* Show that the four concrete states agree abstractly... *)
  Printf.printf "\nabstract state roots:\n";
  Array.iter
    (fun node ->
      Format.printf "  replica %d (%s): %a@." node.Runtime.rid
        node.Runtime.wrapper.Base_core.Service.name Base_crypto.Digest_t.pp
        (Base_core.Objrepo.current_root node.Runtime.repo))
    (Runtime.replicas rt);
  (* ...while their concrete file handles differ wildly. *)
  Printf.printf "\nconcrete root handles (the non-determinism BASE hides):\n";
  Array.iteri
    (fun rid (server : Base_fs.Server_intf.t) ->
      Printf.printf "  replica %d: %S\n" rid (server.Base_fs.Server_intf.root ()))
    sys.Systems.servers
