(* base_demo: command-line front end for the BASE reproduction.

     base_demo andrew --scale 2 --system base|raw [--recovery]
     base_demo trace  [--ops N]
     base_demo nversion
     base_demo metrics [--duration S] [--json]
     base_demo loc [DIR]

   See README.md for a tour. *)

open Cmdliner
module Runtime = Base_core.Runtime
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time
module Systems = Base_workload.Systems
module Fs_iface = Base_workload.Fs_iface
module Andrew = Base_workload.Andrew
module Faults = Base_workload.Faults

let andrew_cmd =
  let scale =
    Arg.(value & opt int 2 & info [ "scale" ] ~docv:"N" ~doc:"Benchmark scale factor.")
  in
  let system =
    Arg.(
      value
      & opt (enum [ ("base", `Base); ("raw", `Raw) ]) `Base
      & info [ "system" ] ~doc:"Run against the replicated service (base) or the raw impl.")
  in
  let recovery =
    Arg.(value & flag & info [ "recovery" ] ~doc:"Enable staggered proactive recovery.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.") in
  let run scale system recovery seed =
    let r =
      match system with
      | `Raw ->
        let raw = Systems.make_direct ~seed:(Int64.of_int seed) () in
        Andrew.run ~scale (Fs_iface.of_direct raw)
      | `Base ->
        let sys =
          Systems.make_basefs ~seed:(Int64.of_int seed) ~hetero:true ~n_clients:1 ()
        in
        if recovery then
          Runtime.enable_proactive_recovery ~period_us:3_000_000 sys.Systems.runtime;
        Andrew.run ~scale (Fs_iface.of_runtime ~client:0 sys.Systems.runtime)
    in
    Format.printf "%a" Andrew.pp_result r
  in
  Cmd.v
    (Cmd.info "andrew" ~doc:"Run the scaled Andrew benchmark.")
    Term.(const run $ scale $ system $ recovery $ seed)

let trace_cmd =
  let ops = Arg.(value & opt int 1 & info [ "ops" ] ~docv:"N" ~doc:"Operations to trace.") in
  let run ops =
    let sys = Systems.make_basefs ~hetero:true ~n_clients:1 () in
    let rt = sys.Systems.runtime in
    let nfs =
      Base_nfs.Nfs_client.make (fun ~read_only ~operation ->
          Runtime.invoke_sync rt ~client:0 ~read_only ~operation ())
    in
    Engine.set_tracer (Runtime.engine rt) (fun t line ->
        Printf.printf "%10.6fs %s\n" (Sim_time.to_sec t) line);
    for i = 1 to ops do
      ignore
        (Base_nfs.Nfs_client.ok
           (Base_nfs.Nfs_client.create nfs Base_nfs.Nfs_types.root_oid
              (Printf.sprintf "traced%d" i) Base_nfs.Nfs_types.sattr_empty))
    done
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Print the protocol messages behind NFS operations.")
    Term.(const run $ ops)

let nversion_cmd =
  let run () =
    let report (o : Faults.poison_outcome) =
      Printf.printf "%-38s buggy=%d correct=%b divergent=%d\n" o.Faults.configuration
        o.Faults.buggy_replicas o.Faults.read_back_correct o.Faults.divergent
    in
    report (Faults.poison_experiment ~hetero:true ());
    report (Faults.poison_experiment ~hetero:false ())
  in
  Cmd.v
    (Cmd.info "nversion" ~doc:"Deterministic-bug experiment: heterogeneous vs homogeneous.")
    Term.(const run $ const ())

let recovery_cmd =
  let duration =
    Arg.(value & opt float 10.0 & info [ "duration" ] ~docv:"SECONDS" ~doc:"Virtual run length.")
  in
  let period =
    Arg.(value & opt float 3.0 & info [ "period" ] ~docv:"SECONDS" ~doc:"Recovery period per replica.")
  in
  let run duration period =
    let _, base =
      Faults.throughput_trace ~duration_s:duration ~window_s:1.0 ~recovery:None ()
    in
    let sys, rec_ =
      Faults.throughput_trace ~duration_s:duration ~window_s:1.0
        ~recovery:(Some (int_of_float (period *. 1e6), 100_000))
        ()
    in
    Printf.printf "%-10s %-16s %-16s\n" "window" "no-recovery" "with-recovery";
    List.iter2
      (fun (a : Faults.window) (b : Faults.window) ->
        Printf.printf "%-10.1f %-16d %-16d\n" a.Faults.w_start_s a.Faults.w_ops b.Faults.w_ops)
      base rec_;
    Array.iter
      (fun node ->
        let rs = node.Runtime.recovery_stats in
        Printf.printf "replica %d: %d recoveries, %d objects fetched\n" node.Runtime.rid
          rs.Runtime.recoveries rs.Runtime.total_objects_fetched)
      (Runtime.replicas sys.Systems.runtime)
  in
  Cmd.v
    (Cmd.info "recovery" ~doc:"Throughput trace with staggered proactive recovery.")
    Term.(const run $ duration $ period)

let throughput_cmd =
  let clients =
    Arg.(value & opt int 8 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent closed-loop clients.")
  in
  let batch =
    Arg.(value & opt int 16 & info [ "batch" ] ~docv:"N" ~doc:"Maximum requests per batch.")
  in
  let run clients batch =
    let sys =
      Systems.make_basefs ~hetero:true ~n_clients:clients ~batch_max:batch ~max_inflight:8 ()
    in
    let rt = sys.Systems.runtime in
    let files =
      List.init clients (fun c ->
          let nfs =
            Base_nfs.Nfs_client.make (fun ~read_only ~operation ->
                Runtime.invoke_sync rt ~client:c ~read_only ~operation ())
          in
          fst
            (Base_nfs.Nfs_client.ok
               (Base_nfs.Nfs_client.create nfs Base_nfs.Nfs_types.root_oid
                  (Printf.sprintf "c%d" c) Base_nfs.Nfs_types.sattr_empty)))
    in
    let completed = ref 0 in
    let payload = String.make 128 'x' in
    let rec issue c fh =
      Runtime.invoke rt ~client:c
        ~operation:(Base_nfs.Nfs_proto.encode_call (Base_nfs.Nfs_proto.Write (fh, 0, payload)))
        (fun _ ->
          incr completed;
          issue c fh)
    in
    List.iteri issue files;
    Engine.run
      ~until:(Sim_time.add (Runtime.now rt) (Sim_time.of_sec 1.0))
      (Runtime.engine rt);
    Printf.printf "%d clients, batch<=%d: %d writes/s of virtual time\n" clients batch !completed
  in
  Cmd.v
    (Cmd.info "throughput" ~doc:"Concurrent-client throughput with request batching.")
    Term.(const run $ clients $ batch)

let metrics_cmd =
  let duration =
    Arg.(value & opt float 6.0 & info [ "duration" ] ~docv:"SECONDS" ~doc:"Virtual run length.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.") in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the full report as deterministic JSON.")
  in
  let run duration seed json =
    let sys = Systems.make_basefs ~seed:(Int64.of_int seed) ~hetero:true ~n_clients:1 () in
    let rt = sys.Systems.runtime in
    Runtime.enable_proactive_recovery ~reboot_us:100_000 ~period_us:2_000_000 rt;
    let nfs =
      Base_nfs.Nfs_client.make (fun ~read_only ~operation ->
          Runtime.invoke_sync rt ~client:0 ~read_only ~operation ())
    in
    let fh, _ =
      Base_nfs.Nfs_client.ok
        (Base_nfs.Nfs_client.create nfs Base_nfs.Nfs_types.root_oid "metrics"
           Base_nfs.Nfs_types.sattr_empty)
    in
    let payload = String.make 128 'm' in
    let rec issue () =
      Runtime.invoke rt ~client:0
        ~operation:(Base_nfs.Nfs_proto.encode_call (Base_nfs.Nfs_proto.Write (fh, 0, payload)))
        (fun _ -> issue ())
    in
    issue ();
    Engine.run
      ~until:(Sim_time.add (Runtime.now rt) (Sim_time.of_sec duration))
      (Runtime.engine rt);
    if json then print_endline (Base_obs.Json.to_string_pretty (Runtime.metrics_report rt))
    else begin
      Format.printf "%a" Base_obs.Metrics.pp (Runtime.metrics rt);
      Printf.printf "\ntraffic by message type:\n";
      Printf.printf "%-14s %10s %14s %10s %8s\n" "label" "sent" "sent-bytes" "recv" "drop";
      List.iter
        (fun (label, c) ->
          Printf.printf "%-14s %10d %14d %10d %8d\n" label c.Engine.sent_msgs
            c.Engine.sent_bytes c.Engine.recv_msgs c.Engine.dropped_msgs)
        (Engine.label_counters (Runtime.engine rt));
      Printf.printf "\nrecovery timelines (simulated seconds):\n";
      List.iter
        (fun tl ->
          let dur = function
            | Some us -> Printf.sprintf "%.3f" (float_of_int us /. 1e6)
            | None -> "-"
          in
          Printf.printf
            "replica %d: start %.3f  %s %s  window %s  %d objects, %d bytes\n"
            tl.Runtime.tl_rid
            (Int64.to_float tl.Runtime.tl_start_us /. 1e6)
            (if tl.Runtime.tl_migrated then "promote" else "reboot")
            (dur (Runtime.timeline_handoff_us tl))
            (dur (Runtime.timeline_window_us tl))
            tl.Runtime.tl_objects tl.Runtime.tl_bytes)
        (Runtime.recovery_timelines rt);
      let st = Runtime.st_totals rt in
      Printf.printf
        "\nstate transfer: %d meta, %d objects, %d bytes, %d retries, %d rejected replies\n"
        st.Base_core.State_transfer.meta_fetched st.Base_core.State_transfer.objects_fetched
        st.Base_core.State_transfer.bytes_fetched st.Base_core.State_transfer.retries
        (Base_core.State_transfer.rejected st)
    end
  in
  Cmd.v
    (Cmd.info "metrics" ~doc:"Run under load and print the observability report.")
    Term.(const run $ duration $ seed $ json)

let loc_cmd =
  let dir = Arg.(value & pos 0 string "lib" & info [] ~docv:"DIR") in
  let run dir =
    let c = Base_util.Loc_count.count_dir dir in
    Printf.printf "%s: %d files, %d non-blank lines, %d semicolons\n" dir
      c.Base_util.Loc_count.files c.Base_util.Loc_count.lines c.Base_util.Loc_count.semicolons
  in
  Cmd.v (Cmd.info "loc" ~doc:"Count source lines (code-size experiment).") Term.(const run $ dir)

let () =
  let doc = "BASE: using abstraction to improve fault tolerance (reproduction)" in
  exit (Cmd.eval (Cmd.group (Cmd.info "base_demo" ~doc) [ andrew_cmd; trace_cmd; nversion_cmd; recovery_cmd; throughput_cmd; metrics_cmd; loc_cmd ]))
