(* Taint basecheck backend: an interprocedural wire→trust dataflow pass
   over the Typedtree stored in dune's [.cmt] files.

   The paper's trust boundary is a dataflow property: every value a
   Byzantine peer controls (decoded message fields, raw wire payloads)
   must pass a bounds check or a MAC verification before it reaches
   anything the replica trusts — allocation sizes, loop bounds, timers,
   partition-tree coordinates, protocol watermarks.  This pass makes the
   property machine-checked:

   - Sources: results of [Message.decode_body] and every [Xdr.read_*],
     plus registered parameters (e.g. [Replica.receive]'s envelope,
     [State_transfer.serve]'s request) — see lint/sanitizers.sexp.
   - Propagation: through lets, tuples/records/constructors and field
     projections, match bindings, arithmetic, and function calls via
     per-function summaries computed to fixpoint over the call graph.
   - Sanitizers: dominating comparisons ([if n < 0 || n > cap then
     reject]), [min] against a clean bound, [land]/[mod] masking,
     measured lengths ([String.length] of materialized data), guard
     helpers that raise on violation ([Xdr.need], [Invariant.require]),
     registered predicates ([Replica.in_window]), and hash-table
     membership of a locally-produced key.
   - Rules: B1 (tainted allocation size / byte range / loop bound),
     B2 (replica state mutated before MAC verification on a handler
     path), B3 (tainted value into a registered trusted sink).

   A taint is two bits — "still needs an upper bound" and "still needs a
   lower bound" — so one-sided guards ([off >= 0]) discharge exactly the
   direction they check, plus the set of enclosing-function parameters
   the value depends on (for summaries).  A conditional sink ("param i of
   f reaches Bytes.create") is recorded on the parameter's owner and
   instantiated at every call site, which is what makes the pass
   interprocedural; [min]/[max] are asymmetric ([min x cap] bounds above,
   [max x floor] does not) so claimed maxima folded with [max] stay
   tainted.  Known blind spots (heap laundering through mutable state,
   recursion bounds, implicit flows) are documented in doc/lint.md and
   pinned by test/lint/taint_blind.ml. *)

module T = Typedtree
open Typedtree

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

(* Shared with the typed backend: load-path bootstrap and env
   reconstruction (including its [env_failures] accounting). *)
let env_of_summary = Typed_checks.env_of_summary

let path_parts = Typed_checks.path_parts

(* --- sanitizer / source / sink registry ------------------------------------ *)

type name_pat = { np_module : string; np_name : string option; np_prefix : string option }

type sanitizer_kind =
  | San_clean  (* call result carries no taint (e.g. digests) *)
  | San_guard of int  (* raises unless arg [i] is in bounds: cleans its idents *)
  | San_require of int  (* raises unless condition arg [i] holds: refines like [if] *)
  | San_predicate of int  (* bool test: the then-branch cleans arg [i]'s idents *)
  | San_validator  (* returns a validated Result/Option: result is clean *)

type sink_target =
  | Sk_fn of name_pat
  | Sk_field of string  (* method-style call through a record field *)
  | Sk_setfield of string  (* assignment to a named mutable field *)

type sink_spec = {
  sk_target : sink_target;
  sk_label : string option;  (* restrict to the argument with this label *)
  sk_pos : int option;  (* restrict to the Nth positional argument *)
  sk_rule : Checks.rule;
  sk_msg : string;
}

type registry = {
  rg_sources : name_pat list;
  rg_param_sources : (string * string * int) list;  (* module, function, param idx *)
  rg_sanitizers : (name_pat * sanitizer_kind) list;
  rg_verifiers : name_pat list;
  rg_benign : name_pat list;
      (* observability-only mutators (profiling probes, trace hooks): their
         writes are not replica state, so they neither count for B2's
         verify-before-mutate ordering nor taint their caller's summary *)
  rg_sinks : sink_spec list;
}

let empty_registry =
  {
    rg_sources = [];
    rg_param_sources = [];
    rg_sanitizers = [];
    rg_verifiers = [];
    rg_benign = [];
    rg_sinks = [];
  }

let parse_entry rg = function
  | Checks.Sexp_list (Checks.Atom kind :: fields) -> (
    let f k = Checks.field k fields in
    let pat () =
      match f "module" with
      | None -> Error "registry: entry needs (module M)"
      | Some m -> Ok { np_module = m; np_name = f "name"; np_prefix = f "prefix" }
    in
    let int_field k =
      match f k with
      | None -> Error (Printf.sprintf "registry: %s entry needs (%s N)" kind k)
      | Some s -> (
        match int_of_string_opt s with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "registry: bad integer %S for (%s ...)" s k))
    in
    match kind with
    | "source" -> (
      match pat () with
      | Error e -> Error e
      | Ok p -> (
        match f "param" with
        | None -> Ok { rg with rg_sources = p :: rg.rg_sources }
        | Some _ -> (
          match (p.np_name, int_field "param") with
          | Some name, Ok i ->
            Ok { rg with rg_param_sources = (p.np_module, name, i) :: rg.rg_param_sources }
          | None, _ -> Error "registry: a (param N) source needs (name ...)"
          | _, Error e -> Error e)))
    | "sanitizer" -> (
      match pat () with
      | Error e -> Error e
      | Ok p -> (
        let kind_res =
          match f "kind" with
          | Some "clean" -> Ok San_clean
          | Some "validator" -> Ok San_validator
          | Some "guard" -> Result.map (fun i -> San_guard i) (int_field "arg")
          | Some "require" -> Result.map (fun i -> San_require i) (int_field "arg")
          | Some "predicate" -> Result.map (fun i -> San_predicate i) (int_field "arg")
          | Some k -> Error (Printf.sprintf "registry: unknown sanitizer kind %S" k)
          | None -> Error "registry: sanitizer needs (kind ...)"
        in
        match kind_res with
        | Error e -> Error e
        | Ok k -> Ok { rg with rg_sanitizers = (p, k) :: rg.rg_sanitizers }))
    | "verifier" -> (
      match pat () with
      | Error e -> Error e
      | Ok p -> Ok { rg with rg_verifiers = p :: rg.rg_verifiers })
    | "benign" -> (
      match pat () with
      | Error e -> Error e
      | Ok p -> Ok { rg with rg_benign = p :: rg.rg_benign })
    | "sink" -> (
      let target =
        match (f "field", f "setfield") with
        | Some fd, None -> Ok (Sk_field fd)
        | None, Some fd -> Ok (Sk_setfield fd)
        | Some _, Some _ -> Error "registry: sink has both (field ...) and (setfield ...)"
        | None, None -> Result.map (fun p -> Sk_fn p) (pat ())
      in
      match target with
      | Error e -> Error e
      | Ok tgt -> (
        match Option.bind (f "rule") Checks.rule_of_name with
        | None -> Error "registry: sink needs (rule B1|B2|B3)"
        | Some rule ->
          let msg =
            match f "msg" with Some m -> m | None -> "wire-tainted value reaches a trusted sink"
          in
          match Option.map int_of_string_opt (f "pos") with
          | Some None -> Error "registry: bad integer for (pos ...)"
          | (None | Some (Some _)) as pos ->
            Ok
              {
                rg with
                rg_sinks =
                  {
                    sk_target = tgt;
                    sk_label = f "arg_label";
                    sk_pos = Option.join pos;
                    sk_rule = rule;
                    sk_msg = msg;
                  }
                  :: rg.rg_sinks;
              }))
    | k -> Error (Printf.sprintf "registry: unknown entry kind %S" k))
  | Checks.Sexp_list [] -> Error "registry: empty entry"
  | Checks.Atom a -> Error (Printf.sprintf "registry: expected a list, got atom %S" a)
  | Checks.Sexp_list (Checks.Sexp_list _ :: _) -> Error "registry: entry must start with a kind atom"

let parse_registry src =
  match Checks.read_sexps src with
  | exception Checks.Sexp_error e -> Error e
  | sexps ->
    List.fold_left
      (fun acc s -> Result.bind acc (fun rg -> parse_entry rg s))
      (Ok empty_registry) sexps

let load_registry path =
  if not (Sys.file_exists path) then Error (Printf.sprintf "%s: no such file" path)
  else begin
    let ic = open_in_bin path in
    let src =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match parse_registry src with
    | Ok rg -> Ok rg
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
  end

(* --- the taint lattice ------------------------------------------------------ *)

module IMap = Map.Make (Int)

(* [wu]/[wl]: the value may still exceed any upper / fall below any lower
   bound an attacker picks, from a source *inside* the current function.
   [deps]: parameters (by global id) of enclosing functions the value is
   derived from, each with its own direction pair — "if the caller's
   argument still lacks an upper/lower bound, so does this value".  A
   dominating [x >= 0] guard therefore discharges the lower direction of
   both planes at once, which is what lets call sites instantiate exactly
   the unproven directions. *)
type taint = { wu : bool; wl : bool; deps : (bool * bool) IMap.t }

let clean = { wu = false; wl = false; deps = IMap.empty }

let wire_full = { wu = true; wl = true; deps = IMap.empty }

let is_wire t = t.wu || t.wl

(* Could the value lack an upper (resp. lower) bound under *some* caller? *)
let may_wu t = t.wu || IMap.exists (fun _ (du, _) -> du) t.deps

let may_wl t = t.wl || IMap.exists (fun _ (_, dl) -> dl) t.deps

let may_wire t = may_wu t || may_wl t

let norm_deps deps = IMap.filter (fun _ (du, dl) -> du || dl) deps

let union_deps a b =
  IMap.union (fun _ (au, al) (bu, bl) -> Some (au || bu, al || bl)) a b

let join a b =
  { wu = a.wu || b.wu; wl = a.wl || b.wl; deps = union_deps a.deps b.deps }

(* Discharge a direction across both planes (global bits and every dep). *)
let mask ~keep_wu ~keep_wl t =
  {
    wu = t.wu && keep_wu;
    wl = t.wl && keep_wl;
    deps = norm_deps (IMap.map (fun (du, dl) -> (du && keep_wu, dl && keep_wl)) t.deps);
  }

let taint_equal a b = a.wu = b.wu && a.wl = b.wl && IMap.equal ( = ) a.deps b.deps

module IdMap = Map.Make (struct
  type t = Ident.t

  let compare = Ident.compare
end)

type venv = taint IdMap.t

(* --- function summaries ----------------------------------------------------- *)

type cond_sink = {
  cs_pid : int;  (* the parameter whose wire-taint fires this sink *)
  cs_wu : bool;  (* fires on a value still lacking an upper bound *)
  cs_wl : bool;  (* ... or a lower bound *)
  cs_rule : Checks.rule;
  cs_file : string;  (* where the underlying sink lives (maybe another unit) *)
  cs_line : int;
  cs_msg : string;
}

let cs_equal a b =
  a.cs_pid = b.cs_pid && a.cs_wu = b.cs_wu && a.cs_wl = b.cs_wl && a.cs_rule = b.cs_rule
  && String.equal a.cs_file b.cs_file && a.cs_line = b.cs_line && String.equal a.cs_msg b.cs_msg

type summary = {
  s_params : int list;  (* global param ids, declaration order *)
  s_labels : string list;  (* "" for positional *)
  mutable s_result : taint;  (* deps refer to params (own or captured) *)
  mutable s_csinks : cond_sink list;
  mutable s_verifies : bool;  (* calls a MAC/digest verifier somewhere *)
  mutable s_mutates : bool;  (* mutates reachable state somewhere *)
}

type state = {
  registry : registry;
  mutable flagging : bool;  (* pass 2: emit findings; pass 1: build summaries *)
  mutable changed : bool;
  global : (string * string, summary) Hashtbl.t;  (* (module, fn) for cross-unit calls *)
  locals : (Ident.t, summary) Hashtbl.t;  (* every let-bound function, by ident *)
  owner : (int, summary * int) Hashtbl.t;  (* param id -> (owner, position) *)
  mutable next_param : int;
  mutable findings : Checks.finding list;
  mutable cur : summary option;  (* function currently being analyzed *)
  mutable cur_rel : string;
  mutable cur_unit : string;  (* module name of the unit being walked *)
}

let new_state registry =
  {
    registry;
    flagging = false;
    changed = false;
    global = Hashtbl.create 256;
    locals = Hashtbl.create 256;
    owner = Hashtbl.create 512;
    next_param = 0;
    findings = [];
    cur = None;
    cur_rel = "";
    cur_unit = "";
  }

let add_finding st ~file ~line ~rule ~msg =
  if Checks.rule_applies rule file then
    st.findings <- { Checks.file; line; rule; msg } :: st.findings

let add_csink st s cs =
  if not (List.exists (cs_equal cs) s.s_csinks) then begin
    s.s_csinks <- cs :: s.s_csinks;
    st.changed <- true
  end

let update_result st s t =
  let j = join s.s_result t in
  if not (taint_equal j s.s_result) then begin
    s.s_result <- j;
    st.changed <- true
  end

let mark_verifies st = function
  | Some s when not s.s_verifies ->
    s.s_verifies <- true;
    st.changed <- true
  | _ -> ()

let mark_mutates st = function
  | Some s when not s.s_mutates ->
    s.s_mutates <- true;
    st.changed <- true
  | _ -> ()

(* The universal sink primitive: wire taint (pass 2) flags; parameter
   dependence (pass 1) records a conditional sink on each parameter's
   owning function — restricted to the directions still unproven locally —
   which call sites then instantiate. *)
let sink_check st ~need_wu ~need_wl ~rule ~file ~line ~msg t =
  if st.flagging && ((need_wu && t.wu) || (need_wl && t.wl)) then
    add_finding st ~file ~line ~rule ~msg;
  if not st.flagging then
    IMap.iter
      (fun pid (du, dl) ->
        let cs_wu = need_wu && du and cs_wl = need_wl && dl in
        if cs_wu || cs_wl then
          match Hashtbl.find_opt st.owner pid with
          | Some (s, _) ->
            add_csink st s
              { cs_pid = pid; cs_wu; cs_wl; cs_rule = rule; cs_file = file; cs_line = line;
                cs_msg = msg }
          | None -> ())
      t.deps

(* --- name resolution -------------------------------------------------------- *)

(* "Base_bft__Message" (dune's wrapped-library mangling) -> "Message". *)
let base_module m =
  let n = String.length m in
  let rec last_sep i best =
    if i + 1 >= n then best
    else if m.[i] = '_' && m.[i + 1] = '_' then last_sep (i + 1) (Some (i + 2))
    else last_sep (i + 1) best
  in
  match last_sep 0 None with
  | Some i when i < n -> String.sub m i (n - i)
  | _ -> m

(* Resolve a value path to (innermost module, name), expanding module
   aliases ([module M = Message]) through the typing env so registry
   entries match however the call site abbreviates. *)
let resolve env_raw (p : Path.t) =
  let p =
    match p with
    | Path.Pdot (m, x) -> (
      match env_of_summary env_raw with
      | Some env -> (
        match Env.normalize_module_path None env m with
        | m' -> Path.Pdot (m', x)
        | exception _ -> p)
      | None -> p)
    | p -> p
  in
  match List.rev (path_parts p) with
  | [] -> (None, "")
  | [ x ] -> (None, x)
  | x :: m :: _ -> (Some (base_module m), x)

let mdl_matches st pat_mdl = function
  | Some m -> String.equal m pat_mdl
  | None -> String.equal st.cur_unit pat_mdl

let pat_matches st pat (mdl, name) =
  mdl_matches st pat.np_module mdl
  && (match pat.np_name with Some n -> String.equal n name | None -> true)
  && match pat.np_prefix with
     | Some pre -> Checks.has_prefix ~prefix:pre name
     | None -> true

let find_sanitizer st key =
  List.find_map
    (fun (p, k) -> if pat_matches st p key then Some k else None)
    st.registry.rg_sanitizers

let is_source st key = List.exists (fun p -> pat_matches st p key) st.registry.rg_sources

let is_verifier st key = List.exists (fun p -> pat_matches st p key) st.registry.rg_verifiers

let is_benign st key = List.exists (fun p -> pat_matches st p key) st.registry.rg_benign

let fn_sinks st key =
  List.filter
    (fun sk -> match sk.sk_target with Sk_fn p -> pat_matches st p key | _ -> false)
    st.registry.rg_sinks

let field_sinks st fname =
  List.filter
    (fun sk ->
      match sk.sk_target with Sk_field f -> String.equal f fname | _ -> false)
    st.registry.rg_sinks

let setfield_sinks st fname =
  List.filter
    (fun sk ->
      match sk.sk_target with Sk_setfield f -> String.equal f fname | _ -> false)
    st.registry.rg_sinks

(* --- builtin classification ------------------------------------------------- *)

let is_stdlib = function Some "Stdlib" | None -> true | Some _ -> false

(* Measured sizes of materialized data are trusted: the bytes exist, so
   their length cannot be an attacker's *claim*.  (A decoded length
   *prefix* is tainted; [String.length] of the decoded payload is not.) *)
let clean_result (mdl, name) =
  match (mdl, name) with
  | ( Some ("String" | "Bytes" | "Array" | "List" | "Queue" | "Hashtbl" | "Buffer"),
      "length" ) ->
    true
  | Some "Hashtbl", ("find" | "find_opt" | "find_all" | "mem" | "hash") -> true
  | Some "Queue", ("take" | "take_opt" | "peek" | "peek_opt" | "pop" | "top" | "is_empty")
    ->
    true
  | _ -> false

(* B1 sinks: (positional arg indices, description).  Both taint directions
   fire: a huge size allocates, a negative one raises mid-handler. *)
let b1_sink (mdl, name) =
  match (mdl, name) with
  | Some "Bytes", ("create" | "make") | Some "String", "make" -> Some ([ 0 ], "allocation size")
  | Some "Array", ("make" | "init" | "create_float") -> Some ([ 0 ], "allocation size")
  | Some "List", "init" -> Some ([ 0 ], "allocation size")
  | Some "Buffer", "create" -> Some ([ 0 ], "allocation size")
  | Some ("String" | "Bytes"), "sub" | Some "Bytes", "sub_string" ->
    Some ([ 1; 2 ], "byte-range position/length")
  | Some "Bytes", ("blit" | "blit_string") | Some "String", "blit" ->
    Some ([ 1; 3; 4 ], "byte-range position/length")
  | Some "Bytes", "fill" -> Some ([ 1; 2 ], "byte-range position/length")
  | _ -> None

let mutation_prim (mdl, name) =
  match (mdl, name) with
  | _, (":=" | "incr" | "decr") when is_stdlib mdl -> true
  | Some "Hashtbl", ("replace" | "add" | "remove" | "reset" | "clear" | "filter_map_inplace")
    ->
    true
  | Some "Queue", ("add" | "push" | "pop" | "take" | "clear" | "transfer") -> true
  | Some "Array", ("set" | "fill" | "blit" | "unsafe_set") -> true
  | Some "Bytes", ("set" | "fill" | "blit" | "blit_string" | "unsafe_set") -> true
  | _ -> false

let diverging_call (mdl, name) =
  match (mdl, name) with
  | _, ("raise" | "raise_notrace" | "failwith" | "invalid_arg" | "exit") when is_stdlib mdl
    ->
    true
  | Some "Invariant", "violated" -> true
  | _ -> false

(* --- expression analysis ---------------------------------------------------- *)

let lookup env id = match IdMap.find_opt id env with Some t -> t | None -> clean

let clear_dir ~upper env id =
  match IdMap.find_opt id env with
  | None -> env
  | Some t ->
    IdMap.add id (mask ~keep_wu:(not upper) ~keep_wl:upper t) env

let clear_both env id = IdMap.add id clean env

let as_ident (e : T.expression) =
  match e.exp_desc with Texp_ident (Path.Pident id, _, _) -> Some id | _ -> None

(* All value idents occurring free in an expression — the targets of a
   guard-style sanitizer ([Xdr.need d (len + pad)] vouches for [len]). *)
let expr_idents (e : T.expression) =
  let acc = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.exp_desc with
          | Texp_ident (Path.Pident id, _, _) -> acc := id :: !acc
          | _ -> ());
          Tast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it e;
  !acc

let pat_value_arg : computation general_pattern -> value general_pattern option =
 fun p -> match p.pat_desc with Tpat_value v -> Some (v :> value general_pattern) | _ -> None

let bind_pattern : type k. venv -> k general_pattern -> taint -> venv =
 fun env pat t ->
  List.fold_left (fun env id -> IdMap.add id t env) env (T.pat_bound_idents pat)

let rec diverges (e : T.expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); exp_env; _ }, _) ->
    diverging_call (resolve exp_env p)
  | Texp_sequence (_, e2) -> diverges e2
  | Texp_let (_, _, body) -> diverges body
  | Texp_assert ({ exp_desc = Texp_construct (_, { cstr_name = "false"; _ }, []); _ }, _) ->
    true
  | _ -> false

(* Split [fun a b -> body] into parameter patterns and the body; a final
   multi-case [function] contributes one more (pattern-matched) param. *)
let rec split_params (e : T.expression) acc =
  match e.exp_desc with
  | Texp_function { cases = [ { c_lhs; c_guard = None; c_rhs } ]; arg_label; _ } ->
    split_params c_rhs ((arg_label, `Pat c_lhs) :: acc)
  | Texp_function { cases; arg_label; _ } -> (List.rev ((arg_label, `Cases cases) :: acc), None)
  | _ -> (List.rev acc, Some e)

let label_name = function
  | Asttypes.Nolabel -> ""
  | Asttypes.Labelled l | Asttypes.Optional l -> l

(* Map call-site arguments onto callee parameter positions: labels match
   by name, positional arguments fill the remaining slots in order. *)
let map_args labels (args : (Asttypes.arg_label * taint) list) =
  let n = List.length labels in
  let slots = Array.make n clean in
  let filled = Array.make n false in
  let labels = Array.of_list labels in
  List.iter
    (fun (lbl, t) ->
      let name = label_name lbl in
      let idx =
        if name <> "" then
          let found = ref None in
          Array.iteri (fun i l -> if !found = None && (not filled.(i)) && l = name then found := Some i) labels;
          !found
        else begin
          let found = ref None in
          Array.iteri (fun i l -> if !found = None && (not filled.(i)) && l = "" then found := Some i) labels;
          !found
        end
      in
      match idx with
      | Some i ->
        slots.(i) <- t;
        filled.(i) <- true
      | None -> ())
    args;
  slots

let rec analyze st env (e : T.expression) : taint =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> lookup env id
  | Texp_ident _ -> clean
  | Texp_constant _ -> clean
  | Texp_let (_, vbs, body) ->
    let env' =
      List.fold_left
        (fun env' (vb : T.value_binding) ->
          match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
          | Tpat_var (id, _), Texp_function _ ->
            analyze_function st ~key:None id vb.vb_expr env;
            IdMap.add id clean env'
          | _ ->
            let t = analyze st env vb.vb_expr in
            bind_pattern env' vb.vb_pat t)
        env vbs
    in
    analyze st env' body
  | Texp_function _ ->
    (* A closure not bound to a name (callback in a record, etc.): walk the
       body so sinks on captured values are still seen; unknown callers
       mean its parameters are unjudgeable — treat them as clean. *)
    let params, body = split_params e [] in
    let env' =
      List.fold_left
        (fun env' (_, p) ->
          match p with
          | `Pat pat -> bind_pattern env' pat clean
          | `Cases _ -> env')
        env params
    in
    (match body with
    | Some b -> ignore (analyze st env' b)
    | None -> (
      match List.rev params with
      | (_, `Cases cases) :: _ ->
        List.iter
          (fun (c : value case) ->
            let envc = bind_pattern env' c.c_lhs clean in
            Option.iter (fun g -> ignore (analyze st envc g)) c.c_guard;
            ignore (analyze st envc c.c_rhs))
          cases
      | _ -> ()));
    clean
  | Texp_apply (fn, args) -> analyze_apply st env e fn args
  | Texp_match (scrut, cases, _) ->
    let ts = analyze st env scrut in
    let results =
      List.map
        (fun (c : computation case) ->
          let envc = bind_pattern env c.c_lhs ts in
          let envc = member_refine st envc scrut c.c_lhs in
          let envc = const_refine envc scrut c.c_lhs in
          let envc =
            match c.c_guard with
            | Some g ->
              let envt, _ = refine st envc g in
              envt
            | None -> envc
          in
          analyze st envc c.c_rhs)
        cases
    in
    List.fold_left join clean results
  | Texp_try (body, cases) ->
    let t = analyze st env body in
    List.fold_left
      (fun acc (c : value case) ->
        let envc = bind_pattern env c.c_lhs clean in
        join acc (analyze st envc c.c_rhs))
      t cases
  | Texp_tuple es | Texp_array es -> List.fold_left (fun acc x -> join acc (analyze st env x)) clean es
  | Texp_construct (_, _, es) ->
    List.fold_left (fun acc x -> join acc (analyze st env x)) clean es
  | Texp_variant (_, eo) -> ( match eo with Some x -> analyze st env x | None -> clean)
  | Texp_record { fields; extended_expression; _ } ->
    let base =
      match extended_expression with Some x -> analyze st env x | None -> clean
    in
    Array.fold_left
      (fun acc (_, def) ->
        match def with
        | Overridden (_, x) -> join acc (analyze st env x)
        | Kept _ -> acc)
      base fields
  | Texp_field (obj, _, _) -> analyze st env obj
  | Texp_setfield (obj, _, lbl, v) ->
    ignore (analyze st env obj);
    let tv = analyze st env v in
    mark_mutates st st.cur;
    List.iter
      (fun sk ->
        sink_check st ~need_wu:true ~need_wl:true ~rule:sk.sk_rule ~file:st.cur_rel
          ~line:(line_of e.exp_loc) ~msg:sk.sk_msg tv)
      (setfield_sinks st lbl.lbl_name);
    clean
  | Texp_ifthenelse (c, th, el) ->
    ignore (analyze st env c);
    let envt, envf = refine st env c in
    let t1 = analyze st envt th in
    let t2 = match el with Some x -> analyze st envf x | None -> clean in
    join t1 t2
  | Texp_sequence (e1, e2) ->
    ignore (analyze st env e1);
    let env' = seq_refine st env e1 in
    analyze st env' e2
  | Texp_while (c, body) ->
    let tc = analyze st env c in
    sink_check st ~need_wu:true ~need_wl:true ~rule:Checks.B1 ~file:st.cur_rel
      ~line:(line_of e.exp_loc)
      ~msg:"wire-tainted while-loop condition; bound the loop by validated local state" tc;
    ignore (analyze st env body);
    clean
  | Texp_for (id, _, lo, hi, dir, body) ->
    let tlo = analyze st env lo in
    let thi = analyze st env hi in
    let msg = "wire-tainted loop bound; clamp the iteration count against a local window" in
    let line = line_of e.exp_loc in
    (match dir with
    | Upto ->
      sink_check st ~need_wu:false ~need_wl:true ~rule:Checks.B1 ~file:st.cur_rel ~line ~msg tlo;
      sink_check st ~need_wu:true ~need_wl:false ~rule:Checks.B1 ~file:st.cur_rel ~line ~msg thi
    | Downto ->
      sink_check st ~need_wu:true ~need_wl:false ~rule:Checks.B1 ~file:st.cur_rel ~line ~msg tlo;
      sink_check st ~need_wu:false ~need_wl:true ~rule:Checks.B1 ~file:st.cur_rel ~line ~msg thi);
    ignore (analyze st (IdMap.add id clean env) body);
    clean
  | Texp_assert (cond, _) ->
    ignore (analyze st env cond);
    clean
  | Texp_lazy x -> analyze st env x
  | Texp_open (_, body) -> analyze st env body
  | Texp_letmodule (_, _, _, _, body) -> analyze st env body
  | Texp_letexception (_, body) -> analyze st env body
  | _ ->
    (* Exotic nodes: walk children with the current env so sinks inside are
       still visited; the node's own value is treated as clean. *)
    let it =
      {
        Tast_iterator.default_iterator with
        expr = (fun _ child -> ignore (analyze st env child));
      }
    in
    Tast_iterator.default_iterator.expr it e;
    clean

(* --- calls ------------------------------------------------------------------ *)

and analyze_apply st env (e : T.expression) fn args =
  let arg_exprs = List.filter_map (fun (l, a) -> Option.map (fun a -> (l, a)) a) args in
  let is_lambda (x : T.expression) =
    match x.exp_desc with Texp_function _ -> true | _ -> false
  in
  (* Evaluate non-function arguments first; lambdas are analyzed below with
     their parameters bound to the other arguments' taint (HOF elements). *)
  let arg_taints =
    List.map
      (fun (l, (a : T.expression)) ->
        if is_lambda a then (l, a, clean) else (l, a, analyze st env a))
      arg_exprs
  in
  let non_fn_join =
    List.fold_left (fun acc (_, a, t) -> if is_lambda a then acc else join acc t) clean
      arg_taints
  in
  List.iter
    (fun (_, (a : T.expression), _) -> if is_lambda a then analyze_hof_lambda st env a non_fn_join)
    arg_taints;
  let positional =
    List.filter_map
      (fun (l, a, t) -> match l with Asttypes.Nolabel -> Some (a, t) | _ -> None)
      arg_taints
  in
  let pos_taint i = match List.nth_opt positional i with Some (_, t) -> t | None -> clean in
  let line = line_of e.exp_loc in
  (* Apply a registered sink to this argument list, honoring its optional
     label / positional-index restriction. *)
  let apply_sink sk =
    let pos = ref 0 in
    List.iter
      (fun (l, _a, t) ->
        let this_pos = match l with Asttypes.Nolabel -> Some !pos | _ -> None in
        (match l with Asttypes.Nolabel -> incr pos | _ -> ());
        let applies =
          match (sk.sk_label, sk.sk_pos) with
          | Some want, _ -> String.equal (label_name l) want
          | None, Some p -> this_pos = Some p
          | None, None -> true
        in
        if applies then
          sink_check st ~need_wu:true ~need_wl:true ~rule:sk.sk_rule ~file:st.cur_rel ~line
            ~msg:sk.sk_msg t)
      arg_taints
  in
  match fn.exp_desc with
  | Texp_field (obj, _, lbl) ->
    ignore (analyze st env obj);
    (* Method-style call through a record field (net.set_timer, the service
       wrapper's get_obj/put_objs): registered field sinks apply. *)
    List.iter apply_sink (field_sinks st lbl.lbl_name);
    non_fn_join
  | Texp_ident (p, _, _) -> (
    let key = resolve fn.exp_env p in
    if is_verifier st key then begin
      mark_verifies st st.cur;
      clean
    end
    else if is_source st key then wire_full
    else if is_benign st key then clean
    else begin
      if mutation_prim key then mark_mutates st st.cur;
      (* Registered function sinks (Partition_tree coordinates, Objrepo
         indices...). *)
      List.iter apply_sink (fn_sinks st key);
      (* Builtin B1 sinks. *)
      (match b1_sink key with
      | Some (idxs, what) ->
        List.iter
          (fun i ->
            sink_check st ~need_wu:true ~need_wl:true ~rule:Checks.B1 ~file:st.cur_rel ~line
              ~msg:
                (Printf.sprintf
                   "wire-tainted int reaches %s as a %s; clamp or reject it first"
                   (match key with Some m, n -> m ^ "." ^ n | None, n -> n)
                   what)
              (pos_taint i))
          idxs
      | None -> ());
      let local =
        match p with Path.Pident id -> Hashtbl.find_opt st.locals id | _ -> None
      in
      match find_sanitizer st key with
      | Some (San_clean | San_validator) -> clean
      | Some (San_guard _ | San_require _) -> clean (* env effect handled in sequences *)
      | Some (San_predicate _) -> non_fn_join (* bool result; refinement at the if *)
      | None -> builtin_or_summary st env key local positional arg_taints non_fn_join
    end)
  | _ ->
    ignore (analyze st env fn);
    non_fn_join

and builtin_or_summary st _env key local positional arg_taints non_fn_join =
  let pos_taint i = match List.nth_opt positional i with Some (_, t) -> t | None -> clean in
  let mdl, name = key in
  if clean_result key then clean
  else if local <> None then summary_call st key local arg_taints non_fn_join
  else if is_stdlib mdl then begin
    match name with
    | "min" ->
      (* [min x cap] is bounded above as soon as either operand is; below
         it is as bad as the worse operand. *)
      let a = pos_taint 0 and b = pos_taint 1 in
      join
        (mask ~keep_wu:b.wu ~keep_wl:true a)
        (mask ~keep_wu:a.wu ~keep_wl:true b)
    | "max" ->
      let a = pos_taint 0 and b = pos_taint 1 in
      join
        (mask ~keep_wu:true ~keep_wl:b.wl a)
        (mask ~keep_wu:true ~keep_wl:a.wl b)
    | "abs" ->
      let a = pos_taint 0 in
      {
        wu = a.wu || a.wl;
        wl = false;
        deps = IMap.map (fun (du, dl) -> (du || dl, false)) a.deps;
      }
    | "~-" ->
      let a = pos_taint 0 in
      { wu = a.wl; wl = a.wu; deps = IMap.map (fun (du, dl) -> (dl, du)) a.deps }
    | "land" ->
      let a = pos_taint 0 and b = pos_taint 1 in
      if (not (is_wire a)) || not (is_wire b) then clean else join a b
    | "mod" ->
      (* [x mod k] with a non-wire modulus is bounded both ways by [k]. *)
      let b = pos_taint 1 in
      if not (is_wire b) then clean else join (pos_taint 0) b
    | "ignore" -> clean
    | _ -> summary_call st key None arg_taints non_fn_join
  end
  else summary_call st key None arg_taints non_fn_join

and summary_call st key local arg_taints non_fn_join =
  let summary =
    match local with
    | Some s -> Some s
    | None -> (
      match key with
      | None, n -> Hashtbl.find_opt st.global (st.cur_unit, n)
      | Some m, n -> Hashtbl.find_opt st.global (m, n))
  in
  match summary with
  | None -> non_fn_join
  | Some s ->
    mark_verifies st (if s.s_verifies then st.cur else None);
    mark_mutates st (if s.s_mutates then st.cur else None);
    let slots = map_args s.s_labels (List.map (fun (l, _, t) -> (l, t)) arg_taints) in
    let params = Array.of_list s.s_params in
    let arg_for_pid pid =
      let found = ref None in
      Array.iteri (fun i p -> if p = pid && i < Array.length slots then found := Some slots.(i)) params;
      !found
    in
    (* Conditional sinks: a parameter of the callee reaches a sink — does
       our argument carry the taint that fires it? *)
    List.iter
      (fun cs ->
        match arg_for_pid cs.cs_pid with
        | Some at ->
          sink_check st ~need_wu:cs.cs_wu ~need_wl:cs.cs_wl ~rule:cs.cs_rule ~file:cs.cs_file
            ~line:cs.cs_line ~msg:cs.cs_msg at
        | None -> ())
      s.s_csinks;
    (* Result: the callee's wire bits, plus our arguments' taint wherever
       the result depends on a parameter (masked to the directions the
       callee actually lets through); captured (foreign) deps pass through
       unchanged. *)
    let base = { wu = s.s_result.wu; wl = s.s_result.wl; deps = IMap.empty } in
    IMap.fold
      (fun pid (du, dl) acc ->
        match arg_for_pid pid with
        | Some at -> join acc (mask ~keep_wu:du ~keep_wl:dl at)
        | None -> join acc { clean with deps = IMap.singleton pid (du, dl) })
      s.s_result.deps base

(* A lambda literal passed to a higher-order function: its parameters see
   the collection/arguments the HOF feeds it ([List.iter (fun x -> ...)
   tainted_list] taints [x]). *)
and analyze_hof_lambda st env (lam : T.expression) arg_taint =
  let params, body = split_params lam [] in
  let env' =
    List.fold_left
      (fun env' (_, p) ->
        match p with `Pat pat -> bind_pattern env' pat arg_taint | `Cases _ -> env')
      env params
  in
  match body with
  | Some b -> ignore (analyze st env' b)
  | None -> (
    match List.rev params with
    | (_, `Cases cases) :: _ ->
      List.iter
        (fun (c : value case) ->
          let envc = bind_pattern env' c.c_lhs arg_taint in
          Option.iter (fun g -> ignore (analyze st envc g)) c.c_guard;
          ignore (analyze st envc c.c_rhs))
        cases
    | _ -> ())

(* --- branch refinement ------------------------------------------------------ *)

(* [refine st env cond] = (env for the then-branch, env for the else-
   branch).  A comparison against a non-wire bound discharges exactly the
   direction it checks; comparisons against attacker-controlled values
   refine nothing. *)
and refine st env (c : T.expression) : venv * venv =
  match c.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); exp_env; _ }, args) -> (
    let key = resolve exp_env p in
    let ops = List.filter_map snd args in
    match (key, ops) with
    | (Some "Stdlib", (("<" | "<=" | ">" | ">=" | "=" | "<>") as op)), [ a; b ] ->
      (* The bound itself must not be wire-derived ([is_wire], bits only):
         values reaching here from a *registered* source param carry wire
         bits and never sanitize, while trusted state threaded through
         ordinary parameters (config fields, local windows) does.  A bound
         taken from an unregistered caller-supplied value is therefore
         trusted — documented blind spot, pinned in taint_blind.ml. *)
      let refine_operand (env_t, env_f) x other ~flip =
        match as_ident x with
        | Some id when not (is_wire (analyze st env other)) -> (
          let op = if flip then (match op with "<" -> ">" | "<=" -> ">=" | ">" -> "<" | ">=" -> "<=" | o -> o) else op in
          match op with
          | "<" | "<=" -> (clear_dir ~upper:true env_t id, clear_dir ~upper:false env_f id)
          | ">" | ">=" -> (clear_dir ~upper:false env_t id, clear_dir ~upper:true env_f id)
          | "=" -> (clear_both env_t id, env_f)
          | "<>" -> (env_t, clear_both env_f id)
          | _ -> (env_t, env_f))
        | _ -> (env_t, env_f)
      in
      let acc = refine_operand (env, env) a b ~flip:false in
      refine_operand acc b a ~flip:true
    | (Some "Stdlib", "&&"), [ a; b ] ->
      let ta, _ = refine st env a in
      let tb, _ = refine st ta b in
      (tb, env)
    | (Some "Stdlib", "||"), [ a; b ] ->
      let _, fa = refine st env a in
      let _, fb = refine st fa b in
      (env, fb)
    | (Some "Stdlib", "not"), [ a ] ->
      let t, f = refine st env a in
      (f, t)
    | (Some "Hashtbl", "mem"), [ _; k ] -> (
      match as_ident k with Some id -> (clear_both env id, env) | None -> (env, env))
    | _ -> (
      match find_sanitizer st key with
      | Some (San_predicate i) -> (
        match List.nth_opt ops i with
        | Some arg ->
          (List.fold_left clear_both env (expr_idents arg), env)
        | None -> (env, env))
      | _ -> (env, env)))
  | _ -> (env, env)

(* Refinement carried across a statement: [if bad then raise ...; rest]
   and guard helpers ([Xdr.need], [Invariant.require]) vouch for the rest
   of the sequence. *)
and seq_refine st env (e1 : T.expression) =
  match e1.exp_desc with
  | Texp_ifthenelse (c, th, None) when diverges th ->
    let _, envf = refine st env c in
    envf
  | Texp_ifthenelse (c, th, Some el) when diverges th && not (diverges el) ->
    let _, envf = refine st env c in
    envf
  | Texp_ifthenelse (c, th, Some el) when diverges el && not (diverges th) ->
    let envt, _ = refine st env c in
    envt
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); exp_env; _ }, args) -> (
    let key = resolve exp_env p in
    let ops = List.filter_map snd args in
    match find_sanitizer st key with
    | Some (San_guard i) -> (
      match List.nth_opt ops i with
      | Some arg -> List.fold_left clear_both env (expr_idents arg)
      | None -> env)
    | Some (San_require i) -> (
      match List.nth_opt ops i with
      | Some cond ->
        let envt, _ = refine st env cond in
        envt
      | None -> env)
    | _ -> env)
  | _ -> env

(* Hash-table membership laundering, deliberately one-way: looking up a
   tainted key in a table *we* populated ([own_cps]) and proceeding only
   on [Some _] proves the key was locally produced. *)
and member_refine _st env (scrut : T.expression) (pat : computation general_pattern) =
  (* The key (an ident, or a tuple of idents) looked up in a table this
     code populated itself: a [Some _] arm proves the key was locally
     produced, so it is bounded. *)
  let key_idents (k : T.expression) =
    match k.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> [ id ]
    | Texp_tuple es -> List.filter_map as_ident es
    | _ -> []
  in
  match (scrut.exp_desc, pat_value_arg pat) with
  | ( Texp_apply ({ exp_desc = Texp_ident (p, _, _); exp_env; _ }, args),
      Some { pat_desc = Tpat_construct (_, { cstr_name = "Some"; _ }, _, _); _ } ) -> (
    match resolve exp_env p with
    | Some "Hashtbl", ("find_opt" | "find") -> (
      match List.filter_map snd args with
      | [ _; k ] -> List.fold_left clear_both env (key_idents k)
      | _ -> env)
    | _ -> env)
  | _ -> env

(* [match tag with 0 -> ... | 1 -> ...]: inside a constant case the
   scrutinee is that constant — bounded. *)
and const_refine env (scrut : T.expression) (pat : computation general_pattern) =
  match (as_ident scrut, pat_value_arg pat) with
  | Some id, Some { pat_desc = Tpat_constant _; _ } -> clear_both env id
  | _ -> env

(* --- function summarization ------------------------------------------------- *)

and analyze_function st ~key id fexpr outer_env =
  let params, body = split_params fexpr [] in
  let labels = List.map (fun (l, _) -> label_name l) params in
  let summary =
    match Hashtbl.find_opt st.locals id with
    | Some s -> s
    | None ->
      let pids =
        List.map
          (fun _ ->
            let pid = st.next_param in
            st.next_param <- st.next_param + 1;
            pid)
          params
      in
      let s =
        {
          s_params = pids;
          s_labels = labels;
          s_result = clean;
          s_csinks = [];
          s_verifies = false;
          s_mutates = false;
        }
      in
      List.iteri (fun i pid -> Hashtbl.replace st.owner pid (s, i)) pids;
      Hashtbl.replace st.locals id s;
      (match key with
      | Some (m, n) -> Hashtbl.replace st.global (m, n) s
      | None -> ());
      s
  in
  let fname = Ident.name id in
  let param_taint i pid =
    let is_src =
      List.exists
        (fun (m, n, pi) ->
          pi = i && String.equal n fname && String.equal m st.cur_unit)
        st.registry.rg_param_sources
      ||
      match key with
      | Some (m, n) ->
        List.exists
          (fun (m', n', pi) -> pi = i && String.equal n' n && String.equal m' m)
          st.registry.rg_param_sources
      | None -> false
    in
    if is_src then { wu = true; wl = true; deps = IMap.singleton pid (true, true) }
    else { clean with deps = IMap.singleton pid (true, true) }
  in
  let env, tail_cases =
    List.fold_left
      (fun (env, _) (i, (_, p), pid) ->
        match p with
        | `Pat pat -> (bind_pattern env pat (param_taint i pid), None)
        | `Cases cases -> (env, Some (cases, param_taint i pid)))
      (outer_env, None)
      (List.mapi (fun i p -> (i, p, List.nth summary.s_params i)) params)
  in
  let prev = st.cur in
  st.cur <- Some summary;
  let result =
    match (body, tail_cases) with
    | Some b, _ -> analyze st env b
    | None, Some (cases, ts) ->
      List.fold_left
        (fun acc (c : value case) ->
          let envc = bind_pattern env c.c_lhs ts in
          let envc =
            match c.c_guard with
            | Some g ->
              ignore (analyze st envc g);
              let envt, _ = refine st envc g in
              envt
            | None -> envc
          in
          join acc (analyze st envc c.c_rhs))
        clean cases
    | None, None -> clean
  in
  update_result st summary result;
  st.cur <- prev

(* --- B2: verify-before-mutate ordering -------------------------------------- *)

(* A second, ordering-sensitive walk (run in pass 2 with summaries fixed):
   build the sequence of mutation / verification events a handler performs
   in evaluation order and flag any mutation that still has a verification
   ahead of it on the same path.  Branches are parallel; lambda bodies are
   deferred callbacks and excluded (documented blind spot). *)
type ev = Mut of int * string | Ver | Seq of ev list | Par of ev list

let rec events st (e : T.expression) : ev list =
  match e.exp_desc with
  | Texp_ident _ | Texp_constant _ | Texp_function _ -> []
  | Texp_let (_, vbs, body) ->
    List.concat_map (fun (vb : T.value_binding) -> events st vb.vb_expr) vbs
    @ events st body
  | Texp_apply (fn, args) -> (
    let arg_evs =
      List.concat_map (fun (_, a) -> match a with Some a -> events st a | None -> []) args
    in
    match fn.exp_desc with
    | Texp_ident (p, _, _) -> (
      let key = resolve fn.exp_env p in
      let name = match key with Some m, n -> m ^ "." ^ n | None, n -> n in
      if is_benign st key then arg_evs
      else if is_verifier st key then arg_evs @ [ Ver ]
      else if mutation_prim key then
        arg_evs
        @ [ Mut (line_of e.exp_loc, Printf.sprintf "%s mutates replica state" name) ]
      else begin
        let summary =
          match key with
          | Some m, n -> Hashtbl.find_opt st.global (m, n)
          | None, n -> Hashtbl.find_opt st.global (st.cur_unit, n)
        in
        match summary with
        | Some s ->
          arg_evs
          @ (if s.s_verifies then [ Ver ] else [])
          @
          if s.s_mutates && not s.s_verifies then
            [ Mut (line_of e.exp_loc, Printf.sprintf "call to %s mutates replica state" name) ]
          else []
        | None -> arg_evs
      end)
    | Texp_field (_, _, _) -> arg_evs
    | _ -> events st fn @ arg_evs)
  | Texp_setfield (obj, _, lbl, v) ->
    events st obj @ events st v
    @ [ Mut (line_of e.exp_loc, Printf.sprintf "field %s is assigned" lbl.lbl_name) ]
  | Texp_ifthenelse (c, th, el) ->
    events st c
    @ [ Par [ Seq (events st th); Seq (match el with Some x -> events st x | None -> []) ] ]
  | Texp_match (scrut, cases, _) ->
    events st scrut
    @ [ Par (List.map (fun (c : computation case) -> Seq (events st c.c_rhs)) cases) ]
  | Texp_try (body, cases) ->
    events st body
    @ [ Par (List.map (fun (c : value case) -> Seq (events st c.c_rhs)) cases) ]
  | Texp_sequence (e1, e2) -> events st e1 @ events st e2
  | Texp_while (c, body) -> events st c @ events st body
  | Texp_for (_, _, lo, hi, _, body) -> events st lo @ events st hi @ events st body
  | Texp_tuple es | Texp_array es -> List.concat_map (events st) es
  | Texp_construct (_, _, es) -> List.concat_map (events st) es
  | Texp_record { fields; extended_expression; _ } ->
    (match extended_expression with Some x -> events st x | None -> [])
    @ List.concat_map
        (fun (_, def) -> match def with Overridden (_, x) -> events st x | Kept _ -> [])
        (Array.to_list fields)
  | Texp_field (obj, _, _) -> events st obj
  | Texp_assert (c, _) -> events st c
  | Texp_lazy x | Texp_open (_, x) | Texp_letmodule (_, _, _, _, x) | Texp_letexception (_, x)
    ->
    events st x
  | _ -> []

(* Right-to-left over a sequence: [ver_after] = a verification happens
   later on this path.  Returns whether this event contains one. *)
let rec scan_ev st ~ver_after ev =
  match ev with
  | Ver -> true
  | Mut (line, what) ->
    if ver_after then
      add_finding st ~file:st.cur_rel ~line ~rule:Checks.B2
        ~msg:
          (Printf.sprintf
             "%s before the message is verified on this handler path (verify-before-mutate)"
             what);
    false
  | Seq l ->
    let _, has =
      List.fold_left
        (fun (va, has) e ->
          let hv = scan_ev st ~ver_after:va e in
          (va || hv, has || hv))
        (ver_after, false)
        (List.rev l)
    in
    has
  | Par l -> List.fold_left (fun acc e -> scan_ev st ~ver_after e || acc) false l

let b2_check_function st fexpr =
  let params, body = split_params fexpr [] in
  let evs =
    match body with
    | Some b -> events st b
    | None -> (
      match List.rev params with
      | (_, `Cases cases) :: _ ->
        [ Par (List.map (fun (c : value case) -> Seq (events st c.c_rhs)) cases) ]
      | _ -> [])
  in
  ignore (scan_ev st ~ver_after:false (Seq evs))

(* --- per-unit walk ----------------------------------------------------------- *)

let module_of_rel rel = String.capitalize_ascii Filename.(remove_extension (basename rel))

let rec walk_structure st ~unit_module (str : T.structure) =
  List.iter
    (fun (item : T.structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : T.value_binding) ->
            match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
            | Tpat_var (id, _), Texp_function _ ->
              analyze_function st ~key:(Some (unit_module, Ident.name id)) id vb.vb_expr
                IdMap.empty
            | _ -> ignore (analyze st IdMap.empty vb.vb_expr))
          vbs
      | Tstr_module mb -> (
        match (mb.mb_id, mb.mb_expr.mod_desc) with
        | Some mid, Tmod_structure sub ->
          let saved = st.cur_unit in
          st.cur_unit <- Ident.name mid;
          walk_structure st ~unit_module:(Ident.name mid) sub;
          st.cur_unit <- saved
        | _ -> ())
      | Tstr_eval (e, _) -> ignore (analyze st IdMap.empty e)
      | _ -> ())
    str.str_items

let analyze_unit st (rel, str) =
  st.cur_rel <- rel;
  st.cur_unit <- module_of_rel rel;
  walk_structure st ~unit_module:st.cur_unit str

let b2_unit st (rel, str) =
  if Checks.rule_applies Checks.B2 rel then begin
    st.cur_rel <- rel;
    st.cur_unit <- module_of_rel rel;
    List.iter
      (fun (item : T.structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : T.value_binding) ->
              match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
              | Tpat_var _, Texp_function _ -> b2_check_function st vb.vb_expr
              | _ -> ())
            vbs
        | _ -> ())
      str.str_items
  end

(* --- entry points ------------------------------------------------------------ *)

let max_rounds = 20

let run st units =
  st.changed <- true;
  let round = ref 0 in
  while st.changed && !round < max_rounds do
    st.changed <- false;
    incr round;
    List.iter (analyze_unit st) units
  done;
  st.flagging <- true;
  List.iter (analyze_unit st) units;
  List.iter (b2_unit st) units;
  List.sort_uniq Checks.compare_finding st.findings

(* Analyze a set of (rel, cmt-path) units *together*, so cross-module
   summaries resolve — the fixture-test entry point. *)
let check_cmts ~registry pairs =
  (match pairs with
  | (_, path0) :: _ when not !Typed_checks.initialized ->
    Typed_checks.init_load_path ~extra_dirs:[ Filename.dirname path0 ]
  | _ -> ());
  let rec load acc = function
    | [] -> Ok (List.rev acc)
    | (rel, path) :: rest -> (
      match Cmt_format.read_cmt path with
      | exception e ->
        Error (Printf.sprintf "%s: cannot read cmt (%s)" path (Printexc.to_string e))
      | cmt -> (
        match cmt.Cmt_format.cmt_annots with
        | Cmt_format.Implementation str -> load ((rel, str) :: acc) rest
        | _ -> load acc rest))
  in
  match load [] pairs with
  | Error e -> Error e
  | Ok units -> Ok (run (new_state registry) units)

let check_cmt ~registry ~rel path = check_cmts ~registry [ (rel, path) ]

(* CLI entry: like {!Typed_checks.scan} but fixpointing over all units at
   once.  Returns the findings and the number of units analyzed. *)
let scan ~registry ~cmt_root ~dirs =
  let cmts =
    List.concat_map
      (fun d -> List.map (Filename.concat cmt_root) (Typed_checks.cmt_files ~cmt_root d))
      dirs
  in
  let units =
    List.filter_map
      (fun path ->
        match Cmt_format.read_cmt path with
        | exception _ -> None
        | cmt -> (
          match (cmt.Cmt_format.cmt_sourcefile, cmt.Cmt_format.cmt_annots) with
          | Some src, Cmt_format.Implementation str
            when Filename.check_suffix src ".ml"
                 && List.exists (fun d -> Checks.has_prefix ~prefix:(d ^ "/") src) dirs ->
            Some (src, str, cmt.Cmt_format.cmt_loadpath)
          | _ -> None))
      cmts
  in
  let units = List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) units in
  let load_dirs =
    List.concat_map
      (fun (_, _, loadpath) ->
        List.filter_map
          (fun d ->
            if d = "" then None
            else if Filename.is_relative d then Some (Filename.concat cmt_root d)
            else Some d)
          loadpath)
      units
  in
  Typed_checks.init_load_path ~extra_dirs:load_dirs;
  let units = List.map (fun (rel, str, _) -> (rel, str)) units in
  (run (new_state registry) units, List.length units)
