(* basecheck: determinism & Byzantine-robustness lint over the replication
   stack.

   The checker parses every [.ml] file with compiler-libs (syntax only, no
   typing) and walks the Parsetree with an {!Ast_iterator}.  Rules are
   therefore syntactic approximations of the semantic properties they
   protect; doc/lint.md documents each rule, its known blind spots, and the
   allowlist policy.  Suppression is never inline: a waiver is a
   [(file, rule, justification)] entry in lint/allowlist.sexp. *)

type rule = D1 | D2 | D3 | D4 | E1 | E2 | B1 | B2 | B3

let rule_name = function
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | D4 -> "D4"
  | E1 -> "E1"
  | E2 -> "E2"
  | B1 -> "B1"
  | B2 -> "B2"
  | B3 -> "B3"

let rule_of_name = function
  | "D1" -> Some D1
  | "D2" -> Some D2
  | "D3" -> Some D3
  | "D4" -> Some D4
  | "E1" -> Some E1
  | "E2" -> Some E2
  | "B1" -> Some B1
  | "B2" -> Some B2
  | "B3" -> Some B3
  | _ -> None

let all_rules = [ D1; D2; D3; D4; E1; E2; B1; B2; B3 ]

type finding = { file : string; line : int; rule : rule; msg : string }

let compare_finding a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else String.compare (rule_name a.rule) (rule_name b.rule)

let pp_finding f = Printf.sprintf "%s:%d: [%s] %s" f.file f.line (rule_name f.rule) f.msg

(* --- rule scoping by repo-relative path ---------------------------------- *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* D2: all scanned code must draw time/randomness from the simulator; the
   seeded generator itself is the one place allowed to sit below that API. *)
let d2_applies rel = not (String.equal rel "lib/util/prng.ml")

(* D4: process-level escape hatches are banned in library code only;
   executables under bin/ and bench/ may exit. *)
let d4_applies rel = has_prefix ~prefix:"lib/" rel

(* E1: Byzantine-facing paths — everything a malicious message can reach. *)
let e1_applies rel =
  has_prefix ~prefix:"lib/bft/" rel
  || has_prefix ~prefix:"lib/base_core/" rel
  || has_prefix ~prefix:"lib/codec/" rel

(* E2: discarded [Result] errors are banned in library code; executables
   may deliberately drop results (e.g. warm-up runs). *)
let e2_applies rel = has_prefix ~prefix:"lib/" rel

(* B1/B3: the taint backend polices the wire→trust boundary in library code;
   executables consume already-validated simulator output.  B2
   (verify-before-mutate) only makes sense where MAC-carrying protocol
   messages are handled. *)
let b1_applies rel = has_prefix ~prefix:"lib/" rel

let b2_applies rel = has_prefix ~prefix:"lib/bft/" rel

let b3_applies rel = has_prefix ~prefix:"lib/" rel

(* Shared by the syntactic (Parsetree) and typed (Typedtree) backends so
   the two passes agree on where each rule is in force. *)
let rule_applies rule rel =
  match rule with
  | D1 | D3 -> true
  | D2 -> d2_applies rel
  | D4 -> d4_applies rel
  | E1 -> e1_applies rel
  | E2 -> e2_applies rel
  | B1 -> b1_applies rel
  | B2 -> b2_applies rel
  | B3 -> b3_applies rel

(* --- identifier helpers --------------------------------------------------- *)

let strip_stdlib = function "Stdlib" :: rest -> rest | p -> p

let is_sort_fn path =
  match strip_stdlib path with
  | [ "List"; ("sort" | "stable_sort" | "fast_sort" | "sort_uniq") ]
  | [ "Array"; ("sort" | "stable_sort") ] ->
    true
  | _ -> false

(* An argument of (=)/(<>) that syntactically allocates structure: comparing
   such a value polymorphically descends into it, which is where determinism
   (functional values, cycles, NaN) and replica-divergence hazards live.
   Variables of structured type are not detectable without typing — that
   blind spot is documented. *)
let structured_operand (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_construct (_, Some _) -> true
  | Pexp_variant (_, Some _) -> true
  | _ -> false

(* --- per-file AST walk ---------------------------------------------------- *)

type ctx = {
  rel : string;  (* normalized repo-relative path, used for scoping *)
  mutable findings : finding list;
  mutable item_has_sort : bool;
      (* does the enclosing top-level structure item call a sort?  D3 treats
         iter/fold in such an item as sorted-before-emit. *)
  mutable deferred_d3 : (int * string) list;
      (* D3 candidates in the current item, resolved once the item is done *)
}

let flag ctx rule line msg =
  if rule_applies rule ctx.rel then
    ctx.findings <- { file = ctx.rel; line; rule; msg } :: ctx.findings

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

(* Checks on an identifier used as a first-class value (not the head of an
   application), e.g. [List.sort compare]. *)
let check_bare ctx path loc =
  let line = line_of loc in
  (match strip_stdlib path with
  | [ "compare" ] ->
    flag ctx D1 line "polymorphic compare used as a value; pass a typed comparator"
  | [ "Hashtbl"; "hash" ] -> flag ctx D1 line "polymorphic Hashtbl.hash"
  | [ ("min" | "max") as f ] ->
    flag ctx D1 line
      (Printf.sprintf "polymorphic %s used as a value; use a typed comparison" f)
  | [ ("=" | "<>") as op ] ->
    flag ctx D1 line
      (Printf.sprintf "polymorphic (%s) used as a value; use a typed equality" op)
  | _ -> ());
  (match path with
  | "Unix" :: _ -> flag ctx D2 line "Unix.* is OS nondeterminism; use Sim_time / Prng"
  | "Random" :: _ | "Stdlib" :: "Random" :: _ ->
    flag ctx D2 line "Random.* is unseeded nondeterminism; use Base_util.Prng"
  | [ "Sys"; "time" ] | [ "Stdlib"; "Sys"; "time" ] ->
    flag ctx D2 line "Sys.time is wall-clock nondeterminism; use Sim_time"
  | _ -> ());
  (match strip_stdlib path with
  | [ "Hashtbl"; ("iter" | "fold") as f ] ->
    ctx.deferred_d3 <-
      ( line,
        Printf.sprintf
          "Hashtbl.%s iterates in hash order; sort before emitting or allowlist" f )
      :: ctx.deferred_d3
  | _ -> ());
  (match path with
  | "Marshal" :: _ -> flag ctx D4 line "Marshal is unchecked (de)serialization"
  | "Obj" :: _ :: _ -> flag ctx D4 line "Obj.* defeats the type system"
  | [ "exit" ] | [ "Stdlib"; "exit" ] ->
    flag ctx D4 line "exit in library code kills the replica"
  | _ -> ());
  match strip_stdlib path with
  | [ ("failwith" | "invalid_arg") as f ] ->
    flag ctx E1 line
      (Printf.sprintf
         "%s is reachable from message handlers; return Result/Option instead" f)
  | _ -> ()

(* Checks on an identifier applied to arguments.  Fully-applied [min]/[max]
   and non-structured (=) are tolerated: on immediates they are the common,
   harmless case, and without types we cannot do better. *)
let check_applied ctx path loc (args : (Asttypes.arg_label * Parsetree.expression) list) =
  let line = line_of loc in
  match strip_stdlib path with
  | [ ("min" | "max") ] when List.length args >= 2 -> ()
  | [ ("=" | "<>") as op ] when List.length args >= 2 ->
    if List.exists (fun (_, a) -> structured_operand a) args then
      flag ctx D1 line
        (Printf.sprintf
           "structural (%s) against a constructed value; use a typed equality" op)
  | _ -> check_bare ctx path loc

let iter_item ctx (item : Parsetree.structure_item) =
  let open Ast_iterator in
  (* Pass 1: does this item sort anywhere?  (D3's sorted-before-emit test.) *)
  ctx.item_has_sort <- false;
  ctx.deferred_d3 <- [];
  let scan =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_ident { txt; _ } ->
            if is_sort_fn (Longident.flatten txt) then ctx.item_has_sort <- true
          | _ -> ());
          default_iterator.expr self e);
    }
  in
  scan.structure_item scan item;
  (* Pass 2: flag. *)
  let check =
    {
      default_iterator with
      expr =
        (fun self e ->
          match e.Parsetree.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; pexp_loc; _ }, args) ->
            check_applied ctx (Longident.flatten txt) pexp_loc args;
            List.iter (fun (_, a) -> self.expr self a) args
          | Pexp_ident { txt; _ } -> check_bare ctx (Longident.flatten txt) e.pexp_loc
          | Pexp_assert
              { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ } ->
            flag ctx E1 (line_of e.pexp_loc)
              "assert false is reachable from message handlers; return Result/Option \
               instead"
          | _ -> default_iterator.expr self e);
    }
  in
  check.structure_item check item;
  if not ctx.item_has_sort then
    List.iter (fun (line, msg) -> flag ctx D3 line msg) ctx.deferred_d3

(* --- entry points --------------------------------------------------------- *)

let parse_impl path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf path;
      Parse.implementation lexbuf)

(* [rel] is the repo-relative path used for rule scoping and reporting;
   [path] is where the bytes live on disk (they differ under dune's
   sandbox and for test fixtures posing as library files). *)
let check_file ~rel path =
  match parse_impl path with
  | exception Sys_error e -> Error e
  | exception _ -> Error (Printf.sprintf "%s: syntax error (file does not parse)" rel)
  | str ->
    let ctx = { rel; findings = []; item_has_sort = false; deferred_d3 = [] } in
    List.iter (iter_item ctx) str;
    Ok (List.sort compare_finding ctx.findings)

(* --- allowlist ------------------------------------------------------------ *)

type waiver = { w_file : string; w_rule : rule; w_justification : string }

let compare_waiver a b =
  let c = String.compare a.w_file b.w_file in
  if c <> 0 then c else String.compare (rule_name a.w_rule) (rule_name b.w_rule)

(* Minimal s-expression reader: atoms, double-quoted strings with
   backslash escapes, lists, and ';' line comments. *)
type sexp = Atom of string | Sexp_list of sexp list

exception Sexp_error of string

let read_sexps src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some ';' ->
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done;
      skip_ws ()
    | _ -> ()
  in
  let read_string () =
    advance ();
    let buf = Buffer.create 32 in
    let rec loop () =
      if !pos >= n then raise (Sexp_error "unterminated string")
      else
        match src.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          if !pos + 1 >= n then raise (Sexp_error "unterminated escape");
          Buffer.add_char buf src.[!pos + 1];
          pos := !pos + 2;
          loop ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let read_atom () =
    let start = !pos in
    let stop = ref false in
    while not !stop do
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';') | None -> stop := true
      | Some _ -> advance ()
    done;
    String.sub src start (!pos - start)
  in
  let rec read_one () =
    skip_ws ();
    match peek () with
    | None -> None
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec loop () =
        skip_ws ();
        match peek () with
        | Some ')' -> advance ()
        | None -> raise (Sexp_error "unterminated list")
        | Some _ -> (
          match read_one () with
          | Some s ->
            items := s :: !items;
            loop ()
          | None -> raise (Sexp_error "unterminated list"))
      in
      loop ();
      Some (Sexp_list (List.rev !items))
    | Some ')' -> raise (Sexp_error "unexpected ')'")
    | Some '"' -> Some (Atom (read_string ()))
    | Some _ -> Some (Atom (read_atom ()))
  in
  let rec all acc =
    match read_one () with Some s -> all (s :: acc) | None -> List.rev acc
  in
  all []

let field key entry =
  List.find_map
    (function
      | Sexp_list [ Atom k; Atom v ] when String.equal k key -> Some v
      | _ -> None)
    entry

let waiver_of_sexp = function
  | Sexp_list entry -> (
    match (field "file" entry, field "rule" entry, field "justification" entry) with
    | Some f, Some r, Some j -> (
      match rule_of_name r with
      | Some rule -> Ok { w_file = f; w_rule = rule; w_justification = j }
      | None -> Error (Printf.sprintf "allowlist: unknown rule %S" r))
    | _ -> Error "allowlist: entry needs (file ...) (rule ...) (justification ...)")
  | Atom a -> Error (Printf.sprintf "allowlist: expected a list, got atom %S" a)

let load_allowlist path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in_bin path in
    let src =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match read_sexps src with
    | exception Sexp_error e -> Error (Printf.sprintf "%s: %s" path e)
    | sexps ->
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | s :: rest -> (
          match waiver_of_sexp s with
          | Ok w -> collect (w :: acc) rest
          | Error e -> Error (Printf.sprintf "%s: %s" path e))
      in
      collect [] sexps
  end

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let save_allowlist path waivers =
  let waivers = List.sort_uniq compare_waiver waivers in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        ";; basecheck allowlist: every waiver is (file, rule, justification).\n";
      output_string oc
        ";; Regenerate deterministically with: dune exec lint/basecheck.exe -- --update \
         lib bin bench\n";
      List.iter
        (fun w ->
          Printf.fprintf oc "((file %s) (rule %s)\n (justification \"%s\"))\n" w.w_file
            (rule_name w.w_rule)
            (escape_string w.w_justification))
        waivers)

let waived waivers (f : finding) =
  List.exists
    (fun w -> String.equal w.w_file f.file && w.w_rule = f.rule)
    waivers

(* --- directory walking ---------------------------------------------------- *)

(* Collect .ml files under [dir] (given relative to [root]), sorted for
   deterministic report order; dot-directories and _build are skipped. *)
let ml_files ~root dir =
  let result = ref [] in
  let rec walk rel =
    let abs = Filename.concat root rel in
    let entries = Sys.readdir abs in
    Array.sort String.compare entries;
    Array.iter
      (fun name ->
        if name <> "" && name.[0] <> '.' && name <> "_build" then begin
          let rel' = rel ^ "/" ^ name in
          if Sys.is_directory (Filename.concat root rel') then walk rel'
          else if Filename.check_suffix name ".ml" then result := rel' :: !result
        end)
      entries
  in
  walk dir;
  List.sort String.compare !result
