(* Markdown link checker for the repository's documentation.

   Scans the given markdown files for inline links [text](target) and
   validates every repository-relative target: the file must exist, and a
   #fragment must name a heading of the target file (GitHub anchor
   slugging).  External schemes (http/https/mailto) are skipped — CI must
   not depend on the network.  Exit 1 lists every dead link with its
   file:line position.

   Usage: linkcheck --root DIR FILE.md ... *)

let root = ref "."

let files = ref []

(* --- markdown scanning ------------------------------------------------------ *)

let read_lines path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  String.split_on_char '\n' s

(* GitHub's heading-anchor slug: lowercase, spaces to hyphens, keep only
   alphanumerics, hyphens and underscores.  Inline code backticks and link
   syntax inside the heading contribute their text only. *)
let slug_of_heading h =
  let b = Buffer.create (String.length h) in
  String.iter
    (fun c ->
      match c with
      | 'A' .. 'Z' -> Buffer.add_char b (Char.lowercase_ascii c)
      | 'a' .. 'z' | '0' .. '9' | '_' | '-' -> Buffer.add_char b c
      | ' ' -> Buffer.add_char b '-'
      | _ -> ())
    (String.trim h);
  Buffer.contents b

(* Strip markdown emphasis/code/link decoration from a heading before
   slugging: "## The [map](x.md) of `lib/`" anchors as the-map-of-lib. *)
let heading_text line =
  let n = String.length line in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n && line.[!i] = '#' do
    incr i
  done;
  let depth = !i in
  while !i < n do
    (match line.[!i] with
    | '`' | '*' -> ()
    | '[' -> ()
    | ']' ->
      (* Drop a following "(target)". *)
      if !i + 1 < n && line.[!i + 1] = '(' then begin
        let j = ref (!i + 2) in
        while !j < n && line.[!j] <> ')' do
          incr j
        done;
        i := !j
      end
    | c -> Buffer.add_char b c);
    incr i
  done;
  (depth, Buffer.contents b)

let anchors_of_file path =
  let anchors = Hashtbl.create 32 in
  let in_code = ref false in
  List.iter
    (fun line ->
      let t = String.trim line in
      if String.length t >= 3 && String.sub t 0 3 = "```" then in_code := not !in_code
      else if (not !in_code) && String.length t > 0 && t.[0] = '#' then begin
        let depth, text = heading_text t in
        if depth >= 1 && depth <= 6 then Hashtbl.replace anchors (slug_of_heading text) ()
      end)
    (read_lines path);
  anchors

(* Extract (target, column) pairs of inline links on one line.  A target is
   the parenthesised part of [text](target); images ![alt](target) match
   too.  Markdown's escape hatches (reference links, autolinks) are not
   used in this repository's docs. *)
let links_of_line line =
  let n = String.length line in
  let acc = ref [] in
  let i = ref 0 in
  while !i < n do
    (if line.[!i] = ']' && !i + 1 < n && line.[!i + 1] = '(' then begin
       let j = ref (!i + 2) in
       while !j < n && line.[!j] <> ')' && line.[!j] <> ' ' do
         incr j
       done;
       if !j < n && line.[!j] = ')' then
         acc := (String.sub line (!i + 2) (!j - !i - 2), !i + 2) :: !acc
     end);
    incr i
  done;
  List.rev !acc

let is_external target =
  let has_prefix p =
    String.length target >= String.length p && String.sub target 0 (String.length p) = p
  in
  has_prefix "http://" || has_prefix "https://" || has_prefix "mailto:"

(* --- checking ---------------------------------------------------------------- *)

let errors = ref 0

let err path line fmt =
  incr errors;
  Printf.ksprintf (fun s -> Printf.eprintf "%s:%d: %s\n" path line s) fmt

let anchor_cache : (string, (string, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 8

let anchors path =
  match Hashtbl.find_opt anchor_cache path with
  | Some a -> a
  | None ->
    let a = anchors_of_file path in
    Hashtbl.add anchor_cache path a;
    a

let check_file relpath =
  let path = Filename.concat !root relpath in
  let dir = Filename.dirname relpath in
  let lineno = ref 0 in
  let in_code = ref false in
  List.iter
    (fun line ->
      incr lineno;
      let t = String.trim line in
      if String.length t >= 3 && String.sub t 0 3 = "```" then in_code := not !in_code
      else if not !in_code then
        List.iter
          (fun (target, _col) ->
            if not (is_external target || target = "") then begin
              let file_part, frag =
                match String.index_opt target '#' with
                | Some i ->
                  ( String.sub target 0 i,
                    Some (String.sub target (i + 1) (String.length target - i - 1)) )
                | None -> (target, None)
              in
              let resolved_rel =
                if file_part = "" then relpath
                else if Filename.is_relative file_part then Filename.concat dir file_part
                else file_part
              in
              let resolved = Filename.concat !root resolved_rel in
              if not (Sys.file_exists resolved) then
                err relpath !lineno "dead link: %s (no such file %s)" target resolved_rel
              else
                match frag with
                | None -> ()
                | Some frag ->
                  if Filename.check_suffix resolved ".md" then
                    if not (Hashtbl.mem (anchors resolved) frag) then
                      err relpath !lineno "dead anchor: %s (no heading #%s in %s)" target
                        frag resolved_rel
            end)
          (links_of_line line))
    (read_lines path)

let () =
  let rec parse = function
    | [] -> ()
    | "--root" :: dir :: rest ->
      root := dir;
      parse rest
    | f :: rest ->
      files := f :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let files = List.rev !files in
  if files = [] then begin
    prerr_endline "linkcheck: no files given";
    exit 2
  end;
  List.iter check_file files;
  if !errors > 0 then begin
    Printf.eprintf "linkcheck: %d dead link(s)\n" !errors;
    exit 1
  end
  else Printf.printf "linkcheck: %d file(s) clean\n" (List.length files)
