; Taint registry for the basecheck taint backend (lint/typed_taint.ml).
;
; Entry kinds:
;   (source    (module M) (name f) [(prefix p)] [(param N)])
;       Without (param N): every call result of the matching function is
;       wire-tainted.  With (param N): parameter N (0-based, declaration
;       order) of the *definition* of M.f is wire-tainted while analyzing
;       that function — the entry points handed raw network input.
;   (sanitizer (module M) (name f|prefix p) (kind K) [(arg N)])
;       kind clean      — result carries no taint (e.g. digest of data)
;       kind validator  — result is a validated value, clean
;       kind guard      — raises unless arg N is in bounds; vouches for
;                         the idents of arg N in the rest of the sequence
;       kind require    — raises unless the condition arg N holds; the
;                         rest of the sequence gets the condition's
;                         then-branch refinements
;       kind predicate  — bool test; the then-branch of an [if] on it
;                         cleans the idents of arg N
;   (verifier  (module M) (name f))
;       MAC/digest verification: marks the handler path verified (B2) and
;       returns a clean bool.
;   (benign    (module M) [(name f|prefix p)])
;       Observability-only mutator (profiling probes, trace hooks): its
;       writes are not replica state, so it is exempt from B2's
;       verify-before-mutate ordering and does not mark its caller as
;       mutating.
;   (sink      (module M) (name f) | (field f) | (setfield f)
;              (rule B1|B2|B3) [(arg_label l)] [(pos N)] (msg "..."))
;       Trusted sink: a wire-tainted argument (or assigned value, for
;       setfield) is a finding under the given rule.  (field f) matches
;       method-style calls through a record field (net.set_timer ...);
;       (arg_label l) restricts to the labeled argument l, (pos N) to the
;       Nth positional argument (0-based, labels excluded).

; --- sources: where attacker bytes enter typed code -------------------------

(source (module Message) (name decode_body))
(source (module Xdr) (prefix read_))
(source (module Replica) (name receive) (param 1))
; receive_wire is [?shard t ~sender ~macs raw]; the optional shard counts,
; so the attacker-controlled params (macs, raw) are 3 and 4.
(source (module Replica) (name receive_wire) (param 3))
(source (module Replica) (name receive_wire) (param 4))
(source (module Client) (name receive) (param 1))
(source (module State_transfer) (name serve) (param 1))
(source (module State_transfer) (name handle_reply) (param 2))

; --- sanitizers -------------------------------------------------------------

(sanitizer (module Xdr) (name need) (kind guard) (arg 1))
(sanitizer (module Invariant) (name require) (kind require) (arg 0))
(sanitizer (module Replica) (name in_window) (kind predicate) (arg 1))
(sanitizer (module Types) (name is_replica) (kind predicate) (arg 1))
(sanitizer (module Digest_t) (kind clean))
; Digest equality is a cryptographic check: inside `if Digest_t.equal a b`
; the compared value is certified.  Must come after the module-wide clean
; entry — later entries win, and the predicate is the more specific rule
; for `equal`.
(sanitizer (module Digest_t) (name equal) (kind predicate) (arg 0))
(sanitizer (module Partition_tree) (name levels) (kind clean))
(sanitizer (module Partition_tree) (name width) (kind clean))

; --- verifiers (B2 / MAC checks) --------------------------------------------

(verifier (module Message) (name verify))
(verifier (module Auth) (name check))

; --- benign observability mutators ------------------------------------------

; Profiling probes mutate only their own counters (calls/ns/alloc), never
; anything a Byzantine message could leverage; bracketing a MAC check with
; start/stop is the whole point of the [bft.verify] probe.
(benign (module Profile))

; --- trusted sinks ----------------------------------------------------------

(sink (module Partition_tree) (name node) (rule B3)
  (msg "wire-tainted partition-tree coordinate; bounds-check level/index first"))
(sink (module Partition_tree) (name children) (rule B3)
  (msg "wire-tainted partition-tree coordinate; bounds-check level/index first"))
(sink (module Partition_tree) (name child_span) (rule B3)
  (msg "wire-tainted partition-tree coordinate; bounds-check level/index first"))
(sink (module Objrepo) (name object_at) (rule B3) (pos 1)
  (msg "wire-tainted object index; bounds-check against Objrepo.n_objects first"))
(sink (module Objrepo) (name modify) (rule B3)
  (msg "wire-tainted object index; bounds-check against Objrepo.n_objects first"))
(sink (field get_obj) (rule B3)
  (msg "wire-tainted index reaches the service get_obj hook; validate it first"))
(sink (field put_objs) (rule B3)
  (msg "wire-tainted data reaches the service put_objs hook; validate it first"))
(sink (field set_timer) (arg_label after_us) (rule B3)
  (msg "wire-tainted timer duration; derive timeouts from config, not the wire"))
(sink (setfield view) (rule B3)
  (msg "wire-tainted value assigned to protocol watermark field; validate it first"))
(sink (setfield next_seq) (rule B3)
  (msg "wire-tainted value assigned to protocol watermark field; validate it first"))
(sink (setfield h) (rule B3)
  (msg "wire-tainted value assigned to protocol watermark field; validate it first"))
(sink (setfield last_exec) (rule B3)
  (msg "wire-tainted value assigned to protocol watermark field; validate it first"))
