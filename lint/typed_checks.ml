(* Typed basecheck backend: the same determinism / Byzantine-robustness
   rules, re-run over the Typedtree stored in dune's [.cmt] files.

   The syntactic pass (Checks) approximates semantic properties from the
   Parsetree alone and has two documented blind spots: [(=)] on a
   *variable* of structured type, and a sort performed by a helper defined
   in a different structure item.  With type and identifier information
   both close:

   - D1-typed flags [(=)]/[(<>)]/[compare]/[min]/[max] whenever the
     instantiation type is not known-immediate (records, lists, strings,
     floats, functions, abstract types...), regardless of the operands'
     syntactic shape.  Comparisons against a constant constructor
     ([x = None], [l = []]) are exempt: tag inspection never descends.
   - D3-typed resolves the identity of sort helpers across structure
     items of the same compilation unit (a fixpoint over the value idents
     each item defines and mentions), so [let sorted = ... List.sort ...]
     in one item satisfies a [Hashtbl.fold] in another.
   - E1-typed re-checks [failwith]/[invalid_arg]/[assert false] with
     resolved paths, catching aliased uses the Parsetree cannot see.
   - E2-typed (new, typed-only) flags a discarded [result]: [ignore e] or
     [let _ = e] where [e : (_, _) result] throws away a decode/validation
     error instead of handling it.

   Scoping and suppression are shared with the syntactic pass
   ({!Checks.rule_applies}, lint/allowlist.sexp). *)

module T = Typedtree
open Typedtree

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

(* Count of expressions whose environment could not be reconstructed from
   the cmt summary (missing cmi on the load path...).  Such sites are
   skipped conservatively; the CLI surfaces a nonzero count so weakened
   runs are never silent. *)
let env_failures = ref 0

let initialized = ref false

(* The load path must contain every directory holding the [.cmi] files the
   scanned units reference (dune's .objs/byte dirs) plus the stdlib. *)
let init_load_path ~extra_dirs =
  let dirs = List.sort_uniq String.compare extra_dirs in
  Load_path.init ~auto_include:Load_path.no_auto_include
    (dirs @ [ Config.standard_library ]);
  initialized := true

let env_of_summary env =
  match Envaux.env_of_only_summary env with
  | env -> Some env
  | exception e ->
    incr env_failures;
    if Sys.getenv_opt "BASECHECK_DEBUG" <> None then
      prerr_endline
        ("env_of_summary: "
        ^
        match e with
        | Envaux.Error err -> Format.asprintf "%a" Envaux.report_error err
        | e -> Printexc.to_string e);
    None

(* --- path classification --------------------------------------------------- *)

let path_parts p =
  let rec go acc = function
    | Path.Pident id -> Ident.name id :: acc
    | Path.Pdot (p, s) -> go (s :: acc) p
    | Path.Papply (p, _) -> go acc p
    | Path.Pextra_ty (p, _) -> go acc p
  in
  go [] p

let strip_stdlib = function "Stdlib" :: rest -> rest | p -> p

(* Only the Stdlib polymorphic comparators: a user-defined [=] resolved to
   some other path *is* the typed equality we are asking for. *)
let d1_target p =
  match path_parts p with
  | [ "Stdlib"; (("=" | "<>" | "compare" | "min" | "max") as f) ] -> Some f
  | _ -> None

let is_sort_fn p =
  match strip_stdlib (path_parts p) with
  | [ ("List" | "ListLabels"); ("sort" | "stable_sort" | "fast_sort" | "sort_uniq") ]
  | [ ("Array" | "ArrayLabels"); ("sort" | "stable_sort") ] ->
    true
  | _ -> false

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* Cross-unit sort helpers cannot be resolved from one cmt; a name match is
   the documented compromise ([Replica.sorted_bindings]...). *)
let name_says_sorted p =
  match List.rev (path_parts p) with
  | last :: _ -> contains_substring (String.lowercase_ascii last) "sort"
  | [] -> false

let is_hashtbl_iter p =
  match path_parts p with
  | [ "Stdlib"; "Hashtbl"; (("iter" | "fold") as f) ] -> Some f
  | _ -> None

let is_failwith p =
  match path_parts p with
  | [ "Stdlib"; (("failwith" | "invalid_arg") as f) ] -> Some f
  | _ -> None

let is_ignore p =
  match path_parts p with [ "Stdlib"; "ignore" ] -> true | _ -> false

(* --- type classification --------------------------------------------------- *)

let predef_immediate p =
  Path.same p Predef.path_int || Path.same p Predef.path_char
  || Path.same p Predef.path_bool || Path.same p Predef.path_unit

let expand env ty = try Ctype.expand_head env ty with _ -> ty

(* Is structural comparison at [ty] definitely tag/value-only?  Type
   variables are unjudgeable at this site (the caller's instantiation is
   checked where it occurs) and declared-immediate types (ints, chars,
   enums, [type view = int]...) compare without descending. *)
let immediate env ty =
  match Types.get_desc (expand env ty) with
  | Tvar _ | Tunivar _ -> true
  | Tconstr (p, _, _) -> (
    predef_immediate p
    ||
    match Env.find_type p env with
    | exception _ -> false
    | decl -> (
      match decl.type_immediate with
      | Always | Always_on_64bits -> true
      | Unknown -> false))
  | _ -> false

let is_result env ty =
  match Types.get_desc (expand env ty) with
  | Tconstr (p, _, _) -> (
    match path_parts p with
    | [ "result" ] | [ "Stdlib"; "result" ] | [ "Stdlib"; "Result"; "t" ] -> true
    | _ -> false)
  | _ -> false

let type_to_string ty =
  try Format.asprintf "%a" Printtyp.type_expr ty with _ -> "?"

(* A constant-constructor operand ([None], [[]], [true]) bounds the
   comparison to a tag check; it never descends into structure. *)
let const_constructor (e : T.expression) =
  match e.exp_desc with
  | Texp_construct (_, cstr, []) -> cstr.cstr_arity = 0
  | _ -> false

(* --- per-unit walk --------------------------------------------------------- *)

type ctx = { rel : string; mutable findings : Checks.finding list }

let flag ctx rule line msg =
  if Checks.rule_applies rule ctx.rel then
    ctx.findings <- { Checks.file = ctx.rel; line; rule; msg } :: ctx.findings

(* Everything D3 needs to know about one top-level structure item. *)
type item_info = {
  mutable defined : Ident.t list;  (* value idents the item binds *)
  mutable locals_used : Ident.t list;  (* local idents the item mentions *)
  mutable sorts : bool;  (* calls a sort (or sort-named helper) directly *)
  mutable hashtbl_uses : (int * string) list;
}

let d1_check ctx env_raw line name (ty : Types.type_expr) =
  match env_of_summary env_raw with
  | None -> ()
  | Some env ->
    if not (immediate env ty) then
      flag ctx Checks.D1 line
        (Printf.sprintf
           "polymorphic %s instantiated at non-immediate type %s; use a typed \
            comparison"
           (match name with "=" | "<>" -> Printf.sprintf "(%s)" name | f -> f)
           (type_to_string ty))

let e2_check ctx env_raw line ~via (e : T.expression) =
  match env_of_summary env_raw with
  | None -> ()
  | Some env ->
    if is_result env e.exp_type then
      flag ctx Checks.E2 line
        (Printf.sprintf
           "%s discards a %s: handle or propagate the error instead" via
           (type_to_string e.exp_type))

let rec check_expr ctx item iter (e : T.expression) =
  let line = line_of e.exp_loc in
  match e.exp_desc with
  | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as fn), args) ->
    let operands = List.filter_map (fun (_, a) -> a) args in
    (match d1_target p with
    | Some name -> (
      (* Instantiation type: the first present operand. *)
      match operands with
      | a0 :: _ when not (List.exists const_constructor operands) ->
        d1_check ctx a0.exp_env (line_of fn.exp_loc) name a0.exp_type
      | _ -> ())
    | None ->
      ident_checks ctx item iter fn;
      if is_ignore p then
        List.iter (fun a -> e2_check ctx a.exp_env line ~via:"ignore" a) operands);
    List.iter (fun a -> iter.Tast_iterator.expr iter a) operands
  | Texp_ident _ -> ident_checks ctx item iter e
  | Texp_assert ({ exp_desc = Texp_construct (_, { cstr_name = "false"; _ }, []); _ }, _)
    ->
    flag ctx Checks.E1 line
      "assert false is reachable from message handlers; return Result/Option instead"
  | Texp_let (_, vbs, _) ->
    List.iter (discarded_result_binding ctx) vbs;
    Tast_iterator.default_iterator.expr iter e
  | _ -> Tast_iterator.default_iterator.expr iter e

(* Checks on an identifier in any position (value or head of application). *)
and ident_checks ctx item _iter (e : T.expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
    let line = line_of e.exp_loc in
    (match p with
    | Path.Pident id -> item.locals_used <- id :: item.locals_used
    | _ -> ());
    if is_sort_fn p || name_says_sorted p then item.sorts <- true;
    (match is_hashtbl_iter p with
    | Some f ->
      item.hashtbl_uses <-
        ( line,
          Printf.sprintf
            "Hashtbl.%s iterates in hash order; sort before emitting or allowlist" f )
        :: item.hashtbl_uses
    | None -> ());
    (match is_failwith p with
    | Some f ->
      flag ctx Checks.E1 line
        (Printf.sprintf
           "%s is reachable from message handlers; return Result/Option instead" f)
    | None -> ());
    (* A bare Stdlib comparator whose *use site* already fixes the argument
       type ([List.mem digest ds] hides an (=) instantiation the syntactic
       pass sees only as a bare value). *)
    match d1_target p with
    | Some name -> (
      match Types.get_desc e.exp_type with
      | Tarrow (_, targ, _, _) -> d1_check ctx e.exp_env line name targ
      | _ -> ())
    | None -> ())
  | _ -> ()

and discarded_result_binding ctx (vb : T.value_binding) =
  match vb.vb_pat.pat_desc with
  | Tpat_any ->
    e2_check ctx vb.vb_expr.exp_env (line_of vb.vb_pat.pat_loc) ~via:"let _"
      vb.vb_expr
  | _ -> ()

let check_item ctx (item : T.structure_item) =
  let info = { defined = []; locals_used = []; sorts = false; hashtbl_uses = [] } in
  (match item.str_desc with
  | Tstr_value (_, vbs) ->
    List.iter
      (fun (vb : T.value_binding) ->
        info.defined <- T.pat_bound_idents vb.vb_pat @ info.defined;
        discarded_result_binding ctx vb)
      vbs
  | _ -> ());
  let it =
    {
      Tast_iterator.default_iterator with
      Tast_iterator.expr = (fun it e -> check_expr ctx info it e);
    }
  in
  it.structure_item it item;
  info

let check_structure ctx (str : T.structure) =
  let infos = List.map (check_item ctx) str.str_items in
  (* Fixpoint: an item "sorts" if it mentions a sorting local helper. *)
  let module ISet = Set.Make (struct
    type t = Ident.t

    let compare = Ident.compare
  end) in
  let sorting = ref ISet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun info ->
        let mentions_sorting =
          info.sorts || List.exists (fun id -> ISet.mem id !sorting) info.locals_used
        in
        if mentions_sorting then
          List.iter
            (fun id ->
              if not (ISet.mem id !sorting) then begin
                sorting := ISet.add id !sorting;
                changed := true
              end)
            info.defined)
      infos
  done;
  List.iter
    (fun info ->
      let sorted =
        info.sorts || List.exists (fun id -> ISet.mem id !sorting) info.locals_used
      in
      if not sorted then
        List.iter (fun (line, msg) -> flag ctx Checks.D3 line msg) info.hashtbl_uses)
    infos

(* --- entry points ---------------------------------------------------------- *)

let check_unit ~rel (cmt : Cmt_format.cmt_infos) =
  match cmt.Cmt_format.cmt_annots with
  | Cmt_format.Implementation str ->
    let ctx = { rel; findings = [] } in
    check_structure ctx str;
    List.sort Checks.compare_finding ctx.findings
  | _ -> []

(* [rel] is the repo-relative source path used for scoping/reporting;
   [path] is the .cmt file.  Used by the fixture tests; the CLI goes
   through {!scan}. *)
let check_cmt ~rel path =
  if not !initialized then init_load_path ~extra_dirs:[ Filename.dirname path ];
  match Cmt_format.read_cmt path with
  | exception e ->
    Error (Printf.sprintf "%s: cannot read cmt (%s)" path (Printexc.to_string e))
  | cmt -> Ok (check_unit ~rel cmt)

(* Collect [.cmt] files under [dir] (relative to [cmt_root]); unlike the
   source walker this descends into dune's dot-directories (.objs). *)
let cmt_files ~cmt_root dir =
  let result = ref [] in
  let rec walk rel =
    let abs = Filename.concat cmt_root rel in
    if Sys.file_exists abs && Sys.is_directory abs then begin
      let entries = Sys.readdir abs in
      Array.sort String.compare entries;
      Array.iter
        (fun name ->
          let rel' = rel ^ "/" ^ name in
          if Sys.is_directory (Filename.concat cmt_root rel') then walk rel'
          else if Filename.check_suffix name ".cmt" then result := rel' :: !result)
        entries
    end
  in
  walk dir;
  List.sort String.compare !result

(* Check every compilation unit below [cmt_root] whose source lives under
   one of [dirs].  The load path is the union of the units' recorded
   compile-time load paths (relative entries resolved against the unit's
   build dir), so cross-library and external (opam) cmis resolve.  Returns
   the findings and the number of units checked. *)
let scan ~cmt_root ~dirs =
  let cmts =
    List.concat_map
      (fun d -> List.map (Filename.concat cmt_root) (cmt_files ~cmt_root d))
      dirs
  in
  let units =
    List.filter_map
      (fun path ->
        match Cmt_format.read_cmt path with
        | exception _ -> None
        | cmt -> (
          match cmt.Cmt_format.cmt_sourcefile with
          | Some src
            when Filename.check_suffix src ".ml"
                 && List.exists (fun d -> Checks.has_prefix ~prefix:(d ^ "/") src) dirs
            ->
            Some (src, cmt)
          | _ -> None))
      cmts
  in
  let units = List.sort (fun (a, _) (b, _) -> String.compare a b) units in
  (* Relative entries are relative to the compilation cwd, which dune
     records as the virtual /workspace_root; the real location is the
     build context we are scanning, i.e. [cmt_root]. *)
  let load_dirs =
    List.concat_map
      (fun (_, cmt) ->
        List.filter_map
          (fun d ->
            if d = "" then None
            else if Filename.is_relative d then Some (Filename.concat cmt_root d)
            else Some d)
          cmt.Cmt_format.cmt_loadpath)
      units
  in
  init_load_path ~extra_dirs:load_dirs;
  let findings = List.concat_map (fun (rel, cmt) -> check_unit ~rel cmt) units in
  (List.sort Checks.compare_finding findings, List.length units)
