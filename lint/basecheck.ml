(* CLI driver for the basecheck lint.

   Usage: basecheck [--root DIR] [--allowlist FILE] [--update] DIR...

   Scans every .ml under the given directories (relative to --root),
   prints non-allowlisted findings as "file:line: [RULE] message" and
   exits 1 if there are any.  --update regenerates the allowlist from the
   current findings (sorted by file then rule, justifications preserved)
   so review diffs are stable. *)

module Checks = Basecheck_lib.Checks

let usage = "usage: basecheck [--root DIR] [--allowlist FILE] [--update] DIR..."

let () =
  let root = ref "." in
  let allowlist_path = ref "lint/allowlist.sexp" in
  let update = ref false in
  let dirs = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--root" :: d :: rest ->
      root := d;
      parse_args rest
    | "--allowlist" :: f :: rest ->
      allowlist_path := f;
      parse_args rest
    | "--update" :: rest ->
      update := true;
      parse_args rest
    | ("--root" | "--allowlist") :: [] | "--help" :: _ ->
      prerr_endline usage;
      exit 2
    | d :: rest ->
      dirs := d :: !dirs;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let dirs = List.rev !dirs in
  if dirs = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let fail msg =
    Printf.eprintf "basecheck: %s\n" msg;
    exit 2
  in
  let files = List.concat_map (Checks.ml_files ~root:!root) dirs in
  let findings =
    List.concat_map
      (fun rel ->
        match Checks.check_file ~rel (Filename.concat !root rel) with
        | Ok fs -> fs
        | Error e -> fail e)
      files
  in
  let findings = List.sort Checks.compare_finding findings in
  if !update then begin
    let old =
      match Checks.load_allowlist !allowlist_path with Ok ws -> ws | Error e -> fail e
    in
    let justification file rule =
      match
        List.find_opt
          (fun (w : Checks.waiver) ->
            String.equal w.w_file file && w.w_rule = rule)
          old
      with
      | Some w -> w.w_justification
      | None -> "TODO: justify or fix (added by --update)"
    in
    let waivers =
      List.map
        (fun (f : Checks.finding) ->
          {
            Checks.w_file = f.file;
            w_rule = f.rule;
            w_justification = justification f.file f.rule;
          })
        findings
    in
    Checks.save_allowlist !allowlist_path waivers;
    Printf.printf "basecheck: wrote %s (%d entries)\n" !allowlist_path
      (List.length (List.sort_uniq Checks.compare_waiver waivers))
  end
  else begin
    let waivers =
      match Checks.load_allowlist !allowlist_path with Ok ws -> ws | Error e -> fail e
    in
    let active = List.filter (fun f -> not (Checks.waived waivers f)) findings in
    List.iter (fun f -> print_endline (Checks.pp_finding f)) active;
    (* Stale waivers are reported (hygiene) but do not fail the build. *)
    List.iter
      (fun (w : Checks.waiver) ->
        if
          not
            (List.exists
               (fun (f : Checks.finding) ->
                 String.equal f.file w.w_file && f.rule = w.w_rule)
               findings)
        then
          Printf.eprintf "basecheck: stale allowlist entry (%s, %s) — no findings\n"
            w.w_file
            (Checks.rule_name w.w_rule))
      waivers;
    if active <> [] then begin
      Printf.eprintf "basecheck: %d finding(s) in %d file(s) scanned\n"
        (List.length active) (List.length files);
      exit 1
    end
    else
      Printf.eprintf "basecheck: clean (%d files scanned, %d waiver(s))\n"
        (List.length files) (List.length waivers)
  end
