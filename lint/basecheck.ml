(* CLI driver for the basecheck lint.

   Usage: basecheck [--root DIR] [--allowlist FILE] [--update] [--typed]
                    [--taint] [--sanitizers FILE] [--cmt-root DIR]
                    [--report FILE] DIR...

   Scans every .ml under the given directories (relative to --root),
   prints non-allowlisted findings as "file:line: [RULE] message" and
   exits 1 if there are any.  --update regenerates the allowlist from the
   current findings (sorted by file then rule, justifications preserved)
   so review diffs are stable.

   --typed additionally runs the typed backend (Typed_checks) over the
   .cmt files below --cmt-root (default: ROOT/_build/default when that
   exists, else ROOT); build them first with `dune build @check`.

   --taint runs the interprocedural taint backend (Typed_taint) over the
   same cmts, with sources/sanitizers/sinks from --sanitizers (default:
   ROOT/lint/sanitizers.sexp).

   --report writes per-rule {found, waived} counts as a canonical
   lib/obs JSON document, so lint trends diff across PRs like the bench
   metrics do. *)

module Checks = Basecheck_lib.Checks
module Typed = Basecheck_lib.Typed_checks
module Taint = Basecheck_lib.Typed_taint
module Json = Base_obs.Json

let usage =
  "usage: basecheck [--root DIR] [--allowlist FILE] [--update] [--typed] [--taint] \
   [--sanitizers FILE] [--cmt-root DIR] [--report FILE] DIR..."

let () =
  let root = ref "." in
  let allowlist_path = ref "lint/allowlist.sexp" in
  let update = ref false in
  let typed = ref false in
  let taint = ref false in
  let sanitizers_path = ref None in
  let report_path = ref None in
  let cmt_root = ref None in
  let dirs = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--root" :: d :: rest ->
      root := d;
      parse_args rest
    | "--allowlist" :: f :: rest ->
      allowlist_path := f;
      parse_args rest
    | "--update" :: rest ->
      update := true;
      parse_args rest
    | "--typed" :: rest ->
      typed := true;
      parse_args rest
    | "--taint" :: rest ->
      taint := true;
      parse_args rest
    | "--sanitizers" :: f :: rest ->
      sanitizers_path := Some f;
      parse_args rest
    | "--report" :: f :: rest ->
      report_path := Some f;
      parse_args rest
    | "--cmt-root" :: d :: rest ->
      cmt_root := Some d;
      parse_args rest
    | ("--root" | "--allowlist" | "--cmt-root" | "--sanitizers" | "--report") :: []
    | "--help" :: _ ->
      prerr_endline usage;
      exit 2
    | d :: rest ->
      dirs := d :: !dirs;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let dirs = List.rev !dirs in
  if dirs = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let fail msg =
    Printf.eprintf "basecheck: %s\n" msg;
    exit 2
  in
  let files = List.concat_map (Checks.ml_files ~root:!root) dirs in
  let syntactic_findings =
    List.concat_map
      (fun rel ->
        match Checks.check_file ~rel (Filename.concat !root rel) with
        | Ok fs -> fs
        | Error e -> fail e)
      files
  in
  let effective_cmt_root () =
    match !cmt_root with
    | Some d -> d
    | None ->
      let dflt = Filename.concat !root "_build/default" in
      if Sys.file_exists dflt then dflt else !root
  in
  let warn_env_failures () =
    if !Typed.env_failures > 0 then
      Printf.eprintf
        "basecheck: warning: %d expression environment(s) could not be reconstructed; \
         typed findings may be incomplete\n"
        !Typed.env_failures
  in
  let typed_findings =
    if not !typed then []
    else begin
      let cmt_root = effective_cmt_root () in
      let findings, n_units = Typed.scan ~cmt_root ~dirs in
      if n_units = 0 then
        fail
          (Printf.sprintf
             "--typed: no .cmt files for %s under %s (run `dune build @check` first)"
             (String.concat " " dirs) cmt_root);
      warn_env_failures ();
      findings
    end
  in
  let taint_findings =
    if not !taint then []
    else begin
      let sanitizers =
        match !sanitizers_path with
        | Some f -> f
        | None -> Filename.concat !root "lint/sanitizers.sexp"
      in
      let registry =
        match Taint.load_registry sanitizers with Ok rg -> rg | Error e -> fail e
      in
      let cmt_root = effective_cmt_root () in
      let findings, n_units = Taint.scan ~registry ~cmt_root ~dirs in
      if n_units = 0 then
        fail
          (Printf.sprintf
             "--taint: no .cmt files for %s under %s (run `dune build @check` first)"
             (String.concat " " dirs) cmt_root);
      warn_env_failures ();
      findings
    end
  in
  let findings =
    List.sort_uniq Checks.compare_finding
      (syntactic_findings @ typed_findings @ taint_findings)
  in
  if !update then begin
    let old =
      match Checks.load_allowlist !allowlist_path with Ok ws -> ws | Error e -> fail e
    in
    let justification file rule =
      match
        List.find_opt
          (fun (w : Checks.waiver) ->
            String.equal w.w_file file && w.w_rule = rule)
          old
      with
      | Some w -> w.w_justification
      | None -> "TODO: justify or fix (added by --update)"
    in
    let waivers =
      List.map
        (fun (f : Checks.finding) ->
          {
            Checks.w_file = f.file;
            w_rule = f.rule;
            w_justification = justification f.file f.rule;
          })
        findings
    in
    Checks.save_allowlist !allowlist_path waivers;
    Printf.printf "basecheck: wrote %s (%d entries)\n" !allowlist_path
      (List.length (List.sort_uniq Checks.compare_waiver waivers))
  end
  else begin
    let waivers =
      match Checks.load_allowlist !allowlist_path with Ok ws -> ws | Error e -> fail e
    in
    let active = List.filter (fun f -> not (Checks.waived waivers f)) findings in
    (* The lint report mirrors BENCH_metrics.json: canonical JSON, one
       {found, waived} pair per rule, so `diff` across PRs shows lint
       trends the same way bench sections do. *)
    (match !report_path with
    | None -> ()
    | Some path ->
      let backends =
        List.filter_map
          (fun (flag, name) -> if flag then Some (Json.Str name) else None)
          [ (true, "syntactic"); (!typed, "typed"); (!taint, "taint") ]
      in
      let per_rule =
        List.map
          (fun rule ->
            let count fs = List.length (List.filter (fun (f : Checks.finding) -> f.rule = rule) fs) in
            ( Checks.rule_name rule,
              Json.obj
                [
                  ("found", Json.Int (count findings));
                  ("waived", Json.Int (count (List.filter (Checks.waived waivers) findings)));
                ] ))
          Checks.all_rules
      in
      let doc =
        Json.obj
          [
            ("backends", Json.List backends);
            ("files_scanned", Json.Int (List.length files));
            ("rules", Json.obj per_rule);
            ("active_findings", Json.Int (List.length active));
          ]
      in
      let oc = open_out path in
      output_string oc (Json.to_string_pretty doc);
      output_char oc '\n';
      close_out oc);
    List.iter (fun f -> print_endline (Checks.pp_finding f)) active;
    (* Stale waivers are reported (hygiene) but do not fail the build. *)
    List.iter
      (fun (w : Checks.waiver) ->
        if
          not
            (List.exists
               (fun (f : Checks.finding) ->
                 String.equal f.file w.w_file && f.rule = w.w_rule)
               findings)
        then
          Printf.eprintf "basecheck: stale allowlist entry (%s, %s) — no findings\n"
            w.w_file
            (Checks.rule_name w.w_rule))
      waivers;
    if active <> [] then begin
      Printf.eprintf "basecheck: %d finding(s) in %d file(s) scanned\n"
        (List.length active) (List.length files);
      exit 1
    end
    else
      Printf.eprintf "basecheck: clean (%d files scanned, %d waiver(s))\n"
        (List.length files) (List.length waivers)
  end
