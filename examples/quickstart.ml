(* Quickstart: replicate a tiny service with BASE.

   This example shows the whole library surface in one file:
   - write a conformance wrapper (the Figure 1 upcalls: execute / get_obj /
     put_objs / modify, plus the non-determinism hooks);
   - build a 4-replica system with `Base_core.Runtime.create`;
   - invoke operations through a client.

   The service is a bank of named counters whose "last updated" time comes
   from the agreed timestamps — the canonical non-determinism example.

   Run with: dune exec examples/quickstart.exe *)

module Service = Base_core.Service
module Runtime = Base_core.Runtime
module Xdr = Base_codec.Xdr

let n_objects = 16

(* One abstract object per counter: value + last-update stamp. *)
let make_wrapper _replica_id =
  let values = Array.make n_objects 0 in
  let stamps = Array.make n_objects 0L in
  let execute ~client:_ ~operation ~nondet ~read_only:_ ~modify =
    match String.split_on_char ' ' operation with
    | [ "add"; i; d ] ->
      let i = int_of_string i in
      modify i;  (* tell the library before touching abstract object i *)
      values.(i) <- values.(i) + int_of_string d;
      stamps.(i) <- Service.clock_of_nondet nondet;
      string_of_int values.(i)
    | [ "get"; i ] -> string_of_int values.(int_of_string i)
    | _ -> "error"
  in
  let get_obj i =
    let e = Xdr.encoder () in
    Xdr.u32 e values.(i);
    Xdr.i64 e stamps.(i);
    Xdr.contents e
  in
  let put_objs objs =
    List.iter
      (fun (i, data) ->
        let d = Xdr.decoder data in
        values.(i) <- Xdr.read_u32 d;
        stamps.(i) <- Xdr.read_i64 d)
      objs
  in
  {
    Service.name = "counter-bank";
    n_objects;
    execute;
    get_obj;
    put_objs;
    restart = (fun () -> ());
    propose_nondet = (fun ~clock_us ~operation:_ -> Service.nondet_of_clock clock_us);
    check_nondet =
      (fun ~clock_us ~operation:_ ~nondet ->
        Service.default_check_nondet ~max_skew_us:1_000_000L ~clock_us ~nondet);
    oids_of_op = Service.no_footprint;
  }

let () =
  (* f = 1 tolerated fault -> n = 4 replicas. *)
  let config = Base_bft.Types.make_config ~f:1 ~n_clients:1 () in
  let sys = Runtime.create ~config ~make_wrapper ~n_clients:1 () in
  Printf.printf "counter 3 += 5   -> %s\n"
    (Runtime.invoke_sync sys ~client:0 ~operation:"add 3 5" ());
  Printf.printf "counter 3 += 37  -> %s\n"
    (Runtime.invoke_sync sys ~client:0 ~operation:"add 3 37" ());
  Printf.printf "read-only get    -> %s\n"
    (Runtime.invoke_sync sys ~client:0 ~read_only:true ~operation:"get 3" ());
  (* Kill the primary: the view change keeps the service available. *)
  Runtime.set_behavior sys 0 Base_bft.Replica.Mute;
  Printf.printf "after primary failure: counter 3 += 1 -> %s\n"
    (Runtime.invoke_sync sys ~client:0 ~operation:"add 3 1" ());
  let replicas = Runtime.replicas sys in
  Array.iter
    (fun node ->
      Printf.printf "replica %d: view=%d executed=%d\n" node.Runtime.rid
        (Base_bft.Replica.view node.Runtime.replica)
        (Base_bft.Replica.stats node.Runtime.replica).Base_bft.Replica.executed)
    replicas
