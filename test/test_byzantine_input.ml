(* Byzantine-input hardening: malformed wire bytes must never crash a
   replica.  They are counted ([stats.rejected_decode], the [bft.reject.*]
   metrics) and dropped, and the system keeps serving valid requests. *)

module M = Base_bft.Message
module Replica = Base_bft.Replica
module Runtime = Base_core.Runtime
module Metrics = Base_obs.Metrics
module Digest = Base_crypto.Digest_t

let valid_prepare_bytes () =
  M.encode_body (M.Prepare { view = 0; seq = 1; digest = Digest.of_string "d"; replica = 1 })

let test_garbage_counted_and_dropped () =
  let sys, _ = Helpers.make_system () in
  let r0 = (Runtime.replica sys 0).replica in
  let valid = valid_prepare_bytes () in
  let garbage =
    [
      "";
      "\x00";
      "\x00\x00\x00\x63";  (* unknown tag *)
      String.make 40 '\xff';
      String.sub valid 0 (String.length valid - 2);  (* truncated real message *)
      valid ^ "\x00\x00\x00\x00";  (* trailing junk *)
    ]
  in
  List.iter (fun raw -> Replica.receive_wire r0 ~sender:1 ~macs:[||] raw) garbage;
  Alcotest.(check int) "every garbage message counted" (List.length garbage)
    (Replica.stats r0).rejected_decode;
  Alcotest.(check int) "metrics counter agrees" (List.length garbage)
    (Metrics.counter_value (Metrics.counter (Runtime.metrics sys) "bft.reject.decode"));
  (* The replica stays live: the system still executes client requests. *)
  Alcotest.(check string) "set still works" "ok" (Helpers.set sys ~client:0 0 "alive");
  Alcotest.(check string) "get sees the write" "alive"
    (Helpers.value_part (Helpers.get sys ~client:0 0))

let test_wellformed_body_bad_mac () =
  (* Well-formed bytes make it past the decoder and into the normal MAC
     check, where a forged authenticator is rejected and counted. *)
  let sys, _ = Helpers.make_system () in
  let r0 = (Runtime.replica sys 0).replica in
  Replica.receive_wire r0 ~sender:1 ~macs:(Array.make 8 "00000000") (valid_prepare_bytes ());
  Alcotest.(check int) "decode accepted" 0 (Replica.stats r0).rejected_decode;
  Alcotest.(check int) "MAC rejected and counted" 1 (Replica.stats r0).rejected_macs;
  Alcotest.(check int) "mac metrics counter agrees" 1
    (Metrics.counter_value (Metrics.counter (Runtime.metrics sys) "bft.reject.mac"))

let suite =
  [
    Alcotest.test_case "garbage bytes: counted, replica live" `Quick
      test_garbage_counted_and_dropped;
    Alcotest.test_case "well-formed body, bad MAC" `Quick test_wellformed_body_bad_mac;
  ]
