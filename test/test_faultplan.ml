(* Fault-plan DSL tests: grammar corners, error reporting, and a fuzzed
   print/parse round-trip over randomly generated plans. *)

module Faultplan = Base_sim.Faultplan
module Gen = QCheck2.Gen

let qtest ?(count = 500) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let parse_exn text =
  match Faultplan.parse text with Ok p -> p | Error e -> Alcotest.fail e

let parse_err text =
  match Faultplan.parse text with
  | Ok _ -> Alcotest.fail ("expected a parse error for " ^ String.escaped text)
  | Error e -> e

(* --- grammar ---------------------------------------------------------------- *)

let test_grammar () =
  let plan =
    parse_exn
      "# full grammar tour\n\
       at 500ms crash 0\n\
       at 900ms reboot 0   # trailing comment\n\
       at 700ms promote 4\n\
       at 750ms crash-standby 4\n\
       at 1s partition 0 1 / 2 3\n\
       at 2s heal\n\
       \n\
       at 1s delay 1->2 extra=300us for 500ms\n\
       at 1s drop *->2 p=0.3 for 500ms\n\
       at 1s corrupt 1->* p=0.25 for 200ms\n\
       at 1s behavior 0 equivocate\n\
       at 1s behavior 1 mute shard=1\n\
       at 1s attack-preprepare 0 mute=0.5 delay=2ms for 1s\n\
       at 1s attack-preprepare 0 mute=0.5 delay=2ms shard=2 for 1s\n"
  in
  Alcotest.(check int) "events parsed" 13 (List.length plan);
  (match List.nth plan 10 with
  | { Faultplan.action = Faultplan.Set_behavior { node = 1; behavior = Faultplan.B_mute; shard = Some 1 }; _ } ->
    ()
  | _ -> Alcotest.fail "shard-qualified behavior mis-parsed");
  (match List.nth plan 12 with
  | { Faultplan.action = Faultplan.Attack_pre_prepare { shard = Some 2; _ }; _ } -> ()
  | _ -> Alcotest.fail "shard-qualified attack-preprepare mis-parsed");
  (match List.nth plan 0 with
  | { Faultplan.at_us = 500_000; action = Faultplan.Crash 0 } -> ()
  | _ -> Alcotest.fail "first event should be crash 0 at 500ms");
  (match List.nth plan 2 with
  | { Faultplan.at_us = 700_000; action = Faultplan.Promote 4 } -> ()
  | _ -> Alcotest.fail "third event should be promote 4 at 700ms");
  (match List.nth plan 3 with
  | { Faultplan.at_us = 750_000; action = Faultplan.Crash_standby 4 } -> ()
  | _ -> Alcotest.fail "fourth event should be crash-standby 4 at 750ms");
  match List.nth plan 4 with
  | { Faultplan.action = Faultplan.Partition ([ 0; 1 ], [ 2; 3 ]); _ } -> ()
  | _ -> Alcotest.fail "partition groups mis-parsed"

let test_errors () =
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (text, expect) ->
      let e = parse_err text in
      Alcotest.(check bool)
        (Printf.sprintf "%S error mentions %S (got %S)" text expect e)
        true (contains e expect))
    [
      ("at 5 crash 0", "unknown time unit");
      ("at 5ms", "no action");
      ("crash 0", "expected 'at TIME ACTION'");
      ("at 5ms crash x", "node id");
      ("at 5ms promote x", "node id");
      ("at 5ms crash-standby -3", "node id");
      ("at 5ms drop 1->2 p=1.5 for 1ms", "probability");
      ("at 5ms delay 12 extra=1us for 1ms", "SRC->DST");
      ("at 5ms partition 0 1 2", "'/'");
      ("at 5ms behavior 0 sleepy", "unknown behavior");
      ("at 5ms frobnicate 3", "unknown action");
      ("ok\nat 1ms crash 0", "line 1");
      ("at 1ms crash 0\nbad", "line 2");
    ]

(* --- fuzzed round-trip -------------------------------------------------------- *)

(* Probabilities from a short-decimal set so the %g rendering is exact. *)
let gen_prob = Gen.map (fun k -> float_of_int k /. 20.0) (Gen.int_bound 20)

let gen_endpoint = Gen.oneof [ Gen.return (-1); Gen.int_bound 6 ]

let gen_duration = Gen.map (fun d -> d + 1) (Gen.int_bound 5_000_000)

let gen_behavior =
  Gen.oneofl [ Faultplan.B_honest; Faultplan.B_mute; Faultplan.B_lie; Faultplan.B_equivocate ]

let gen_action =
  Gen.oneof
    [
      Gen.map (fun n -> Faultplan.Crash n) (Gen.int_bound 6);
      Gen.map (fun n -> Faultplan.Reboot n) (Gen.int_bound 6);
      Gen.map (fun n -> Faultplan.Promote n) (Gen.int_bound 6);
      Gen.map (fun n -> Faultplan.Crash_standby n) (Gen.int_bound 6);
      Gen.map2
        (fun a b -> Faultplan.Partition (a, b))
        (Gen.list_size (Gen.int_range 1 3) (Gen.int_bound 6))
        (Gen.list_size (Gen.int_range 1 3) (Gen.int_bound 6));
      Gen.return Faultplan.Heal;
      Gen.map3
        (fun (src, dst) extra_us for_us -> Faultplan.Delay_link { src; dst; extra_us; for_us })
        (Gen.pair gen_endpoint gen_endpoint) gen_duration gen_duration;
      Gen.map3
        (fun (src, dst) p for_us -> Faultplan.Drop_link { src; dst; p; for_us })
        (Gen.pair gen_endpoint gen_endpoint) gen_prob gen_duration;
      Gen.map3
        (fun (src, dst) p for_us -> Faultplan.Corrupt_link { src; dst; p; for_us })
        (Gen.pair gen_endpoint gen_endpoint) gen_prob gen_duration;
      Gen.map3
        (fun node behavior shard -> Faultplan.Set_behavior { node; behavior; shard })
        (Gen.int_bound 6) gen_behavior
        (Gen.opt (Gen.int_bound 3));
      Gen.map3
        (fun (node, mute_p) (delay_us, shard) for_us ->
          Faultplan.Attack_pre_prepare { node; mute_p; delay_us; for_us; shard })
        (Gen.pair (Gen.int_bound 6) gen_prob)
        (Gen.pair gen_duration (Gen.opt (Gen.int_bound 3)))
        gen_duration;
    ]

let gen_plan =
  Gen.list_size (Gen.int_bound 12)
    (Gen.map2 (fun at_us action -> { Faultplan.at_us; action }) gen_duration gen_action)

(* to_string is canonical, so the round-trip law compares renderings: one
   parse . to_string cycle must be a fixpoint. *)
let roundtrip =
  qtest "print/parse round-trip" gen_plan (fun plan ->
      let text = Faultplan.to_string plan in
      match Faultplan.parse text with
      | Error e -> QCheck2.Test.fail_reportf "canonical text rejected: %s\n%s" e text
      | Ok plan' ->
        let text' = Faultplan.to_string plan' in
        if String.equal text text' then true
        else QCheck2.Test.fail_reportf "not a fixpoint:\n%s\nvs\n%s" text text')

let suite =
  [
    Alcotest.test_case "grammar tour" `Quick test_grammar;
    Alcotest.test_case "error reporting" `Quick test_errors;
    roundtrip;
  ]
