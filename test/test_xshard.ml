(* The deterministic two-phase cross-shard commit: happy path, coordinator
   crash mid-commit, a Byzantine lock-shard primary, and the footprint-abort
   backstop. *)

module Types = Base_bft.Types
module Runtime = Base_core.Runtime
module Service = Base_core.Service
module Engine = Base_sim.Engine

(* A multi-register service whose "mset:<i>:<j>:<v>" writes [v] to both
   slots — the minimal operation with a two-object footprint.  "lie:<i>:<j>"
   under-declares its footprint (claims slot [i] only, then mutates [j]) to
   exercise the runtime's abort backstop. *)
let multireg_wrapper ~n_objects slots : Service.wrapper =
  let execute ~client:_ ~operation ~nondet:_ ~read_only:_ ~modify =
    match String.split_on_char ':' operation with
    | [ "set"; i; v ] ->
      let i = int_of_string i in
      modify i;
      slots.(i) <- v;
      "ok"
    | [ "get"; i ] -> slots.(int_of_string i)
    | [ "mset"; i; j; v ] ->
      let i = int_of_string i and j = int_of_string j in
      modify i;
      slots.(i) <- v;
      modify j;
      slots.(j) <- v;
      "ok"
    | [ "lie"; _; j ] ->
      let j = int_of_string j in
      modify j;
      slots.(j) <- "corrupted";
      "ok"
    | _ -> "bad-op"
  in
  {
    Service.name = "multireg";
    n_objects;
    execute;
    get_obj = (fun i -> slots.(i));
    put_objs = (fun objs -> List.iter (fun (i, data) -> slots.(i) <- data) objs);
    restart = (fun () -> ());
    propose_nondet = (fun ~clock_us:_ ~operation:_ -> "");
    check_nondet = (fun ~clock_us:_ ~operation:_ ~nondet -> String.equal nondet "");
    oids_of_op =
      (fun ~operation ->
        match String.split_on_char ':' operation with
        | [ "set"; i; _ ] | [ "get"; i ] | [ "lie"; i; _ ] -> [ int_of_string i ]
        | [ "mset"; i; j; _ ] -> [ int_of_string i; int_of_string j ]
        | _ -> []);
  }

let make_system ?(seed = 21L) ?(n_clients = 1) ?(n_objects = 8) ?(shards = 2)
    ?(viewchange_timeout_us = 200_000) () =
  let config =
    Types.make_config ~checkpoint_period:16 ~log_window:32 ~viewchange_timeout_us
      ~shard_bounds:(Types.uniform_shards ~shards ~n_objects) ~f:1 ~n_clients ()
  in
  let engine_config =
    {
      (Engine.default_config ~size_of:Runtime.msg_size ~label_of:Runtime.msg_label) with
      seed;
      kind_of = Runtime.msg_kind;
    }
  in
  let slots = Array.init (Types.group_size config) (fun _ -> Array.make n_objects "") in
  let make_wrapper rid = multireg_wrapper ~n_objects slots.(rid) in
  let sys = Runtime.create ~engine_config ~config ~make_wrapper ~n_clients () in
  (sys, slots)

let mset sys ~client i j v =
  Runtime.invoke_sync sys ~client ~operation:(Printf.sprintf "mset:%d:%d:%s" i j v) ()

let get sys ~client i =
  Runtime.invoke_sync sys ~client ~operation:(Printf.sprintf "get:%d" i) ()

let check_agreement ~what slots =
  let reference = slots.(0) in
  for rid = 1 to 3 do
    Alcotest.(check (array string))
      (Printf.sprintf "%s: replica %d agrees with replica 0" what rid)
      reference slots.(rid)
  done

(* --- happy path -------------------------------------------------------------- *)

let test_commit () =
  let sys, slots = make_system () in
  (* Oids 0-3 live in shard 0, 4-7 in shard 1: every mset crosses. *)
  Alcotest.(check string) "cross-shard mset" "ok" (mset sys ~client:0 1 5 "x");
  Alcotest.(check string) "low half" "x" (get sys ~client:0 1);
  Alcotest.(check string) "high half" "x" (get sys ~client:0 5);
  (* Interleave with single-shard traffic and more crossers. *)
  ignore (Runtime.invoke_sync sys ~client:0 ~operation:"set:0:solo" ());
  Alcotest.(check string) "second crosser" "ok" (mset sys ~client:0 3 4 "y");
  Alcotest.(check string) "reversed footprint" "ok" (mset sys ~client:0 6 2 "z");
  Alcotest.(check string) "slot 3" "y" (get sys ~client:0 3);
  Alcotest.(check string) "slot 4" "y" (get sys ~client:0 4);
  Alcotest.(check string) "slot 2" "z" (get sys ~client:0 2);
  Alcotest.(check string) "slot 6" "z" (get sys ~client:0 6);
  Runtime.run_until_idle sys;
  check_agreement ~what:"commit" slots

let test_commit_three_clients () =
  let sys, slots = make_system ~seed:31L ~n_clients:3 () in
  let pending = ref 0 in
  for k = 0 to 8 do
    let client = k mod 3 in
    incr pending;
    Runtime.invoke sys ~client
      ~operation:(Printf.sprintf "mset:%d:%d:w%d" (k mod 4) (4 + ((k + 1) mod 4)) k)
      (fun reply ->
        decr pending;
        Alcotest.(check string) "concurrent mset" "ok" reply)
  done;
  Runtime.run_until_idle sys;
  Alcotest.(check int) "all replies arrived" 0 !pending;
  check_agreement ~what:"three clients" slots

(* --- coordinator crash mid-commit ------------------------------------------- *)

(* Crash the coordinator shard's primary (node 0 hosts shard 0's view-0
   primary) while cross-shard traffic is in flight: the participant shard
   holds its lock, the view change elects a new coordinator primary, the
   client retransmits, and the op commits exactly once. *)
let test_coordinator_crash () =
  let sys, slots = make_system ~seed:41L () in
  (* Prime both shards so checkpoints and locks have history. *)
  Alcotest.(check string) "prime" "ok" (mset sys ~client:0 0 4 "pre");
  let plan =
    match Base_sim.Faultplan.parse "at 10ms crash 0\nat 600ms reboot 0\n" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  Runtime.apply_faultplan sys plan;
  (match Runtime.try_invoke_sync sys ~client:0 ~operation:"mset:2:6:mid" () with
  | Ok reply -> Alcotest.(check string) "mset across the crash" "ok" reply
  | Error e -> Alcotest.fail e);
  Alcotest.(check string) "low half" "mid" (get sys ~client:0 2);
  Alcotest.(check string) "high half" "mid" (get sys ~client:0 6);
  Runtime.run_until_idle sys;
  (* Replica 0 was down for part of the run; only the live replicas are
     required to agree (it catches up via state transfer at its own pace). *)
  let reference = slots.(1) in
  for rid = 2 to 3 do
    Alcotest.(check (array string))
      (Printf.sprintf "crash: replica %d agrees with replica 1" rid)
      reference slots.(rid)
  done

(* --- Byzantine lock-shard primary ------------------------------------------- *)

(* Shard 1's view-0 primary (node 1) equivocates while it holds the
   participant role for cross-shard locks.  Safety must hold: the honest
   quorum either orders the lock consistently or changes the view, and the
   final states of all replicas agree. *)
let test_byzantine_lock_primary () =
  let sys, slots = make_system ~seed:51L () in
  Runtime.set_behavior ~shard:1 sys 1 Base_bft.Replica.Equivocate;
  (match Runtime.try_invoke_sync sys ~client:0 ~operation:"mset:1:6:byz" () with
  | Ok reply -> Alcotest.(check string) "mset despite equivocation" "ok" reply
  | Error e -> Alcotest.fail e);
  Alcotest.(check string) "low half" "byz" (get sys ~client:0 1);
  Alcotest.(check string) "high half" "byz" (get sys ~client:0 6);
  Runtime.run_until_idle sys;
  (* Under an equivocating replica one honest node may lag until the next
     checkpoint-driven transfer; safety needs a 2f+1 quorum in agreement. *)
  let agreed =
    List.length
      (List.filter
         (fun rid -> slots.(rid).(1) = "byz" && slots.(rid).(6) = "byz")
         [ 0; 1; 2; 3 ])
  in
  Alcotest.(check bool) "quorum executed the crosser" true (agreed >= 3)

(* --- footprint abort --------------------------------------------------------- *)

let test_footprint_abort () =
  let sys, slots = make_system ~seed:61L () in
  (* "lie:1:6" claims oid 1 (shard 0) but mutates oid 6 (shard 1): the
     runtime aborts it deterministically before the mutation lands. *)
  Alcotest.(check string) "abort reply" "#xshard-abort"
    (Runtime.invoke_sync sys ~client:0 ~operation:"lie:1:6" ());
  Alcotest.(check string) "slot 6 untouched" "" (get sys ~client:0 6);
  (* The system keeps running normally afterwards. *)
  Alcotest.(check string) "next op fine" "ok" (mset sys ~client:0 1 6 "after");
  Runtime.run_until_idle sys;
  check_agreement ~what:"abort" slots

(* Unsharded systems accept the same under-declared op: the footprint is
   advisory until a boundary is crossed. *)
let test_no_abort_unsharded () =
  let sys, _ = make_system ~seed:71L ~shards:1 () in
  Alcotest.(check string) "unsharded lie executes" "ok"
    (Runtime.invoke_sync sys ~client:0 ~operation:"lie:1:6" ());
  Alcotest.(check string) "slot 6 written" "corrupted" (get sys ~client:0 6)

let suite =
  [
    Alcotest.test_case "two-shard commit" `Quick test_commit;
    Alcotest.test_case "concurrent clients" `Quick test_commit_three_clients;
    Alcotest.test_case "coordinator crash" `Quick test_coordinator_crash;
    Alcotest.test_case "byzantine lock primary" `Quick test_byzantine_lock_primary;
    Alcotest.test_case "footprint abort" `Quick test_footprint_abort;
    Alcotest.test_case "unsharded footprint is advisory" `Quick test_no_abort_unsharded;
  ]
