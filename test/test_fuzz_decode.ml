(* Decode totality fuzzing: every byte string — random or a bit-flip away
   from a valid encoding — must come back from the decoders as a value or
   a typed error ([Result.Error] from [Message.decode_body], [Decode_error]
   from the XDR readers), never as an uncaught exception.  An exception
   here is a remote crash an attacker buys with one malformed packet, so
   this suite is the semantic backstop behind the E1 lint rule.
   Deterministic via [Base_util.Prng]; extends the byzantine-input suite. *)

module M = Base_bft.Message
module Xdr = Base_codec.Xdr
module Prng = Base_util.Prng
module Digest = Base_crypto.Digest_t

let decode_total ~what raw =
  match M.decode_body raw with
  | Ok _ | Error _ -> ()
  | exception e ->
    Alcotest.failf "%s: decode_body raised %s on %s" what (Printexc.to_string e)
      (Base_util.Hex.encode raw)

(* One sample per message constructor, so bit flips explore every decoder
   branch including the nested certificate lists. *)
let sample_bodies : M.body list =
  let d = Digest.of_string "fuzz" in
  let req =
    { M.client = 9; timestamp = 42L; operation = "op-payload"; read_only = false }
  in
  let pp =
    { M.view = 1; seq = 7; digest = d; requests = [ req; M.null_request ]; nondet = "nd" }
  in
  [
    M.Request req;
    M.Pre_prepare pp;
    M.Prepare { view = 1; seq = 7; digest = d; replica = 2 };
    M.Commit { view = 1; seq = 7; digest = d; replica = 3 };
    M.Reply { view = 1; timestamp = 42L; client = 9; replica = 0; result = "r" };
    M.Checkpoint { seq = 20; digest = d; replica = 1 };
    M.View_change
      {
        new_view = 2;
        last_stable = 10;
        stable_digest = d;
        prepared =
          [
            {
              pp_view = 1;
              pp_seq = 11;
              pp_digest = d;
              pp_requests = [ req ];
              pp_nondet = "n";
            };
          ];
        replica = 2;
      };
    M.New_view
      { nv_view = 2; nv_view_changes = [ (0, 10); (2, 10); (3, 8) ]; nv_pre_prepares = [ pp ] };
    M.Status { st_view = 2; st_last_exec = 15; st_h = 10; st_replica = 1 };
  ]

let test_decode_random_bytes () =
  let rng = Prng.create 0xF00DL in
  for i = 1 to 2_000 do
    let len = Prng.int rng 257 in
    let raw = Bytes.to_string (Prng.bytes rng len) in
    decode_total ~what:(Printf.sprintf "random #%d (len %d)" i len) raw
  done

let flip s i =
  let b = Bytes.of_string s in
  let byte = i / 8 in
  Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl (i mod 8))));
  Bytes.to_string b

let test_decode_bit_flips () =
  List.iter
    (fun body ->
      let valid = M.encode_body body in
      (* The valid encoding itself must round-trip... *)
      (match M.decode_body valid with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s: valid encoding rejected: %s" (M.label body) e);
      (* ...and every single-bit corruption must fail *cleanly*. *)
      for i = 0 to (8 * String.length valid) - 1 do
        decode_total ~what:(Printf.sprintf "%s bit %d" (M.label body) i) (flip valid i)
      done;
      (* Truncations and extensions, for every prefix length. *)
      for n = 0 to String.length valid - 1 do
        decode_total ~what:(Printf.sprintf "%s truncated to %d" (M.label body) n)
          (String.sub valid 0 n)
      done;
      decode_total ~what:(M.label body ^ " with trailing junk") (valid ^ "\x01\x02\x03\x04"))
    sample_bodies

(* XDR readers: any outcome but a value or Decode_error is a bug. *)
let xdr_total ~what f =
  match f () with
  | _ -> ()
  | exception Xdr.Decode_error _ -> ()
  | exception e -> Alcotest.failf "%s: raised %s" what (Printexc.to_string e)

let xdr_readers : (string * (Xdr.decoder -> unit)) list =
  [
    ("u32", fun d -> ignore (Xdr.read_u32 d));
    ("i64", fun d -> ignore (Xdr.read_i64 d));
    ("bool", fun d -> ignore (Xdr.read_bool d));
    ("opaque", fun d -> ignore (Xdr.read_opaque d));
    ("str", fun d -> ignore (Xdr.read_str d));
    ("list-u32", fun d -> ignore (Xdr.read_list d Xdr.read_u32));
    ("list-str", fun d -> ignore (Xdr.read_list d Xdr.read_str));
    ("option-i64", fun d -> ignore (Xdr.read_option d Xdr.read_i64));
    ( "record",
      fun d ->
        ignore (Xdr.read_u32 d);
        ignore (Xdr.read_str d);
        ignore (Xdr.read_bool d);
        Xdr.expect_end d );
  ]

let test_xdr_random_bytes () =
  let rng = Prng.create 0xBEEFL in
  for i = 1 to 1_000 do
    let len = Prng.int rng 129 in
    let raw = Bytes.to_string (Prng.bytes rng len) in
    List.iter
      (fun (name, reader) ->
        xdr_total
          ~what:(Printf.sprintf "xdr %s on random #%d (len %d)" name i len)
          (fun () -> reader (Xdr.decoder raw)))
      xdr_readers
  done

let test_xdr_bit_flips () =
  (* A structurally valid multi-field encoding, then every 1-bit
     corruption of it against every reader. *)
  let e = Xdr.encoder () in
  Xdr.u32 e 3;
  Xdr.str e "name";
  Xdr.bool e true;
  Xdr.list e Xdr.u32 [ 1; 2; 3 ];
  Xdr.option e Xdr.i64 (Some 99L);
  Xdr.opaque e "opaque-data";
  let valid = Xdr.contents e in
  for i = 0 to (8 * String.length valid) - 1 do
    let raw = flip valid i in
    List.iter
      (fun (name, reader) ->
        xdr_total
          ~what:(Printf.sprintf "xdr %s on bit-flip %d" name i)
          (fun () -> reader (Xdr.decoder raw)))
      xdr_readers
  done

(* Bounded allocation: a decoder must never allocate in proportion to a
   *claimed* length, only to the bytes actually present — a four-byte
   message claiming a 2^31-entry list must fail before allocating, not
   after.  This is the semantic property behind the taint backend's B1
   waiver for the decoder ([lib/codec/xdr.ml] in lint/allowlist.sexp):
   the waiver stands only while this test holds. *)
let alloc_bounded ~what ?(bound = 1_000_000.) f =
  let before = Gc.allocated_bytes () in
  (match f () with _ -> () | exception _ -> ());
  let allocated = Gc.allocated_bytes () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "%s: allocation bounded by input, got %.0f bytes" what allocated)
    true (allocated < bound)

let test_huge_length_claims_bounded_alloc () =
  (* Raw XDR readers on a tiny buffer whose only word claims a huge size. *)
  List.iter
    (fun claim ->
      let e = Xdr.encoder () in
      Xdr.u32 e claim;
      let raw = Xdr.contents e in
      List.iter
        (fun (name, reader) ->
          alloc_bounded
            ~what:(Printf.sprintf "xdr %s on length claim %d" name claim)
            (fun () -> reader (Xdr.decoder raw)))
        xdr_readers)
    [ 0x7FFF_FFFF; 0xFFF_FFFF; 1_000_000 ];
  (* The full message decoder: overwrite every aligned 32-bit word of each
     valid encoding with a huge value — this systematically hits every
     nested length/count prefix — and decode the still short buffer. *)
  List.iter
    (fun body ->
      let valid = Bytes.of_string (M.encode_body body) in
      for w = 0 to (Bytes.length valid / 4) - 1 do
        let saved = Bytes.get_int32_be valid (w * 4) in
        Bytes.set_int32_be valid (w * 4) 0x7FFF_FFFFl;
        alloc_bounded
          ~what:(Printf.sprintf "%s with word %d set to 2^31-1" (M.label body) w)
          (fun () -> M.decode_body (Bytes.to_string valid));
        Bytes.set_int32_be valid (w * 4) saved
      done)
    sample_bodies

(* Differential decode: the zero-copy slice readers against the verbatim
   pre-overhaul readers kept in [Xdr.Ref].  On every input — random bytes,
   valid encodings, every 1-bit corruption of them — both must produce the
   identical value or the identical [Decode_error], so the overhaul cannot
   have changed what any wire input means. *)

type outcome = Value of string | Failed of string | Raised of string

let run_outcome show f =
  match f () with
  | v -> Value (show v)
  | exception Xdr.Decode_error e -> Failed e
  | exception e -> Raised (Printexc.to_string e)

let show_outcome = function
  | Value v -> "value " ^ v
  | Failed e -> "Decode_error " ^ e
  | Raised e -> "raised " ^ e

(* Each probe reads a value with the new reader and with the reference
   reader and renders it to a comparable string; [remaining] is folded in
   so cursor positions are compared too, not just values. *)
let diff_probes :
    (string * (Xdr.decoder -> string) * (Xdr.Ref.decoder -> string)) list =
  let shown to_s rem v = Printf.sprintf "%s/rem=%d" (to_s v) rem in
  let str_list l = String.concat ";" l in
  [
    ( "u32",
      (fun d -> shown string_of_int (Xdr.remaining d) (Xdr.read_u32 d)),
      fun d -> shown string_of_int (Xdr.Ref.remaining d) (Xdr.Ref.read_u32 d) );
    ( "i64",
      (fun d -> shown Int64.to_string (Xdr.remaining d) (Xdr.read_i64 d)),
      fun d -> shown Int64.to_string (Xdr.Ref.remaining d) (Xdr.Ref.read_i64 d) );
    ( "bool",
      (fun d -> shown string_of_bool (Xdr.remaining d) (Xdr.read_bool d)),
      fun d -> shown string_of_bool (Xdr.Ref.remaining d) (Xdr.Ref.read_bool d) );
    ( "opaque",
      (fun d -> shown Fun.id (Xdr.remaining d) (Xdr.read_opaque d)),
      fun d -> shown Fun.id (Xdr.Ref.remaining d) (Xdr.Ref.read_opaque d) );
    ( "view",
      (* read_view is wire-compatible with read_opaque: same bytes, same
         cursor, no copy — compared against the reference copying reader. *)
      (fun d -> shown Fun.id (Xdr.remaining d) (Xdr.view_to_string (Xdr.read_view d))),
      fun d -> shown Fun.id (Xdr.Ref.remaining d) (Xdr.Ref.read_opaque d) );
    ( "list-str",
      (fun d -> shown str_list (Xdr.remaining d) (Xdr.read_list d Xdr.read_str)),
      fun d ->
        shown str_list (Xdr.Ref.remaining d) (Xdr.Ref.read_list d Xdr.Ref.read_str) );
    ( "option-i64",
      (fun d ->
        shown
          (function None -> "none" | Some v -> Int64.to_string v)
          (Xdr.remaining d)
          (Xdr.read_option d Xdr.read_i64)),
      fun d ->
        shown
          (function None -> "none" | Some v -> Int64.to_string v)
          (Xdr.Ref.remaining d)
          (Xdr.Ref.read_option d Xdr.Ref.read_i64) );
    ( "record-end",
      (fun d ->
        let a = Xdr.read_u32 d in
        let b = Xdr.read_str d in
        Xdr.expect_end d;
        Printf.sprintf "%d:%s" a b),
      fun d ->
        let a = Xdr.Ref.read_u32 d in
        let b = Xdr.Ref.read_str d in
        Xdr.Ref.expect_end d;
        Printf.sprintf "%d:%s" a b );
  ]

let diff_one ~what raw =
  List.iter
    (fun (name, new_read, ref_read) ->
      let got = run_outcome Fun.id (fun () -> new_read (Xdr.decoder raw)) in
      let want = run_outcome Fun.id (fun () -> ref_read (Xdr.Ref.decoder raw)) in
      (match got with
      | Raised e -> Alcotest.failf "%s %s: slice reader raised %s" what name e
      | Value _ | Failed _ -> ());
      if got <> want then
        Alcotest.failf "%s %s: slice reader %s, reference reader %s" what name
          (show_outcome got) (show_outcome want))
    diff_probes

let test_ref_differential_random () =
  let rng = Prng.create 0xD1FFL in
  for i = 1 to 1_500 do
    let len = Prng.int rng 129 in
    let raw = Bytes.to_string (Prng.bytes rng len) in
    diff_one ~what:(Printf.sprintf "random #%d (len %d)" i len) raw
  done

let test_ref_differential_structured () =
  (* A valid multi-field encoding, then every 1-bit corruption, every
     truncation and a trailing extension — the same input family the
     totality test uses, now required to agree with the oracle. *)
  let e = Xdr.encoder () in
  Xdr.u32 e 7;
  Xdr.str e "differential";
  Xdr.bool e false;
  Xdr.list e Xdr.str [ "a"; ""; "long-enough-to-pad" ];
  Xdr.option e Xdr.i64 (Some (-1L));
  Xdr.opaque e "tail";
  let valid = Xdr.contents e in
  diff_one ~what:"valid encoding" valid;
  for i = 0 to (8 * String.length valid) - 1 do
    diff_one ~what:(Printf.sprintf "bit-flip %d" i) (flip valid i)
  done;
  for n = 0 to String.length valid - 1 do
    diff_one ~what:(Printf.sprintf "truncated to %d" n) (String.sub valid 0 n)
  done;
  diff_one ~what:"trailing junk" (valid ^ "\x01")

(* The point of the slice readers: walking a message through views must not
   allocate in proportion to the payload.  A 256 KiB opaque field is read
   as a view with O(1) allocation, where the materialising reader pays the
   full copy. *)
let test_view_path_allocation () =
  let payload = String.make 262_144 'x' in
  let e = Xdr.encoder () in
  Xdr.u32 e 1;
  Xdr.opaque e payload;
  let raw = Xdr.contents e in
  let view_path () =
    let d = Xdr.decoder raw in
    ignore (Xdr.read_u32 d);
    let v = Xdr.read_view d in
    Alcotest.(check bool) "view matches payload" true (Xdr.view_equal_string v payload)
  in
  let copy_path () =
    let d = Xdr.decoder raw in
    ignore (Xdr.read_u32 d);
    Alcotest.(check bool) "opaque matches payload" true
      (String.equal (Xdr.read_opaque d) payload)
  in
  (* Warm up so neither measurement pays one-time setup. *)
  view_path ();
  copy_path ();
  let measure f =
    let before = Gc.allocated_bytes () in
    f ();
    Gc.allocated_bytes () -. before
  in
  let view_alloc = measure view_path in
  let copy_alloc = measure copy_path in
  Alcotest.(check bool)
    (Printf.sprintf "view path allocates O(1), got %.0f bytes" view_alloc)
    true
    (view_alloc < 4_096.);
  Alcotest.(check bool)
    (Printf.sprintf "copy path pays the payload, got %.0f bytes" copy_alloc)
    true
    (copy_alloc >= float_of_int (String.length payload))

let suite =
  [
    Alcotest.test_case "decode_body: random bytes are total" `Quick
      test_decode_random_bytes;
    Alcotest.test_case "decoders: huge length claims allocate O(input)" `Quick
      test_huge_length_claims_bounded_alloc;
    Alcotest.test_case "decode_body: bit flips / truncation are total" `Quick
      test_decode_bit_flips;
    Alcotest.test_case "xdr readers: random bytes are total" `Quick
      test_xdr_random_bytes;
    Alcotest.test_case "xdr readers: bit flips are total" `Quick test_xdr_bit_flips;
    Alcotest.test_case "xdr slice readers = reference readers (random)" `Quick
      test_ref_differential_random;
    Alcotest.test_case "xdr slice readers = reference readers (structured)" `Quick
      test_ref_differential_structured;
    Alcotest.test_case "view path allocates O(1)" `Quick test_view_path_allocation;
  ]
