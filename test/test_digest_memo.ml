(* Differential digest suite: the content-addressed envelope's memoised
   digest must equal a from-scratch SHA-256 of the canonical encoding, for
   every message kind and for fuzzed bodies, on both the seal path and the
   wire-adoption path.  This is the property that lets MACs cover a 32-byte
   digest instead of the whole body: if the memo ever diverged from the
   recomputation, a receiver would accept (or reject) different bytes than
   the sender authenticated. *)

module M = Base_bft.Message
module Auth = Base_crypto.Auth
module Digest = Base_crypto.Digest_t
module Sha256 = Base_crypto.Sha256
module Gen = QCheck2.Gen

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let chains = Auth.create ~seed:11L ~n_principals:8

(* The from-scratch oracle: hash the envelope's wire bytes with the raw
   SHA-256 primitive, bypassing the memo entirely. *)
let oracle_digest env = Digest.of_raw (Sha256.digest env.M.wire)

let check_envelope what env =
  let memoised = M.envelope_digest env in
  if not (Digest.equal memoised (oracle_digest env)) then
    QCheck2.Test.fail_reportf "%s: memoised digest diverges from SHA-256(%S)" what
      env.M.wire;
  (* The memo must be sticky: a second call returns the very same value
     (physical equality — computed at most once per envelope). *)
  if not (M.envelope_digest env == memoised) then
    QCheck2.Test.fail_reportf "%s: envelope_digest recomputed instead of memoised" what;
  true

(* Seal path: for fuzzed bodies of every kind, wire is the canonical
   encoding and the memoised digest matches the oracle. *)
let seal_digest_matches =
  qtest "seal: memoised digest = from-scratch SHA-256" Test_bft_wire.gen_body
    (fun body ->
      let env = M.seal chains.(2) ~sender:2 ~n_receivers:8 body in
      if not (String.equal env.M.wire (M.encode_body body)) then
        QCheck2.Test.fail_reportf "wire is not the canonical encoding of %s"
          (M.label body);
      check_envelope (M.label body) env)

(* Wire path: of_wire adopts the received bytes, so the digest is of what
   arrived — identical to the sender's when nothing was tampered with. *)
let of_wire_digest_matches =
  qtest "of_wire: adopted bytes digest = sender digest" Test_bft_wire.gen_body
    (fun body ->
      let env = M.seal_for chains.(1) ~sender:1 ~receiver:5 body in
      match M.of_wire ~sender:1 ~macs:env.M.macs env.M.wire with
      | Error e ->
        QCheck2.Test.fail_reportf "own wire bytes of %s failed to decode: %s"
          (M.label body) e
      | Ok adopted ->
        ignore (check_envelope (M.label body) adopted);
        Digest.equal (M.envelope_digest adopted) (M.envelope_digest env))

(* Exhaustive kind coverage, independent of generator weights: one fixed
   sample per constructor (shared with the decode-totality suite). *)
let test_every_kind () =
  List.iter
    (fun body ->
      let env = M.seal chains.(0) ~sender:0 ~n_receivers:8 body in
      ignore (check_envelope (M.kind_label body) env);
      match M.of_wire ~sender:0 ~macs:env.M.macs env.M.wire with
      | Error e -> Alcotest.failf "%s: of_wire failed: %s" (M.kind_label body) e
      | Ok adopted ->
        Alcotest.(check bool)
          (M.kind_label body ^ ": wire-path digest equals seal-path digest")
          true
          (Digest.equal (M.envelope_digest adopted) (M.envelope_digest env)))
    Test_fuzz_decode.sample_bodies

(* The digest the protocol orders by (pre-prepare batch digest) is the hash
   of the injective batch encoding — one pass over (requests, nondet). *)
let batch_digest_injective =
  qtest "encode_batch: nondet/batch boundary is unambiguous"
    (Gen.pair (Gen.list_size (Gen.int_bound 4) Test_bft_wire.gen_request) Gen.string)
    (fun (requests, nondet) ->
      let enc = M.encode_batch requests ~nondet in
      (* Moving bytes across the boundary must change the encoding: the
         batch with nondet "x" ^ suffix never collides with the same batch
         with nondet "x" and the suffix elsewhere. *)
      let enc' = M.encode_batch requests ~nondet:(nondet ^ "\x00") in
      not (String.equal enc enc'))

let suite =
  [
    seal_digest_matches;
    of_wire_digest_matches;
    Alcotest.test_case "every message kind: memo = oracle, both paths" `Quick
      test_every_kind;
    batch_digest_injective;
  ]
