(* Engine event-queue determinism: the flat array-backed [Event_heap] must
   dequeue {e identically} to the generic [Base_util.Heap] it replaced
   (comparator on time, insertion-order tie-break) on fuzzed schedules —
   heavy ties, interleaved pushes and pops, bursts — and the engine built
   on it must keep timer semantics exact: FIFO among equal deadlines,
   cancelled timers never fire, timers for down nodes are dropped.  Every
   blessed experiment seed rides on this equivalence. *)

module Event_heap = Base_sim.Event_heap
module Heap = Base_util.Heap
module Engine = Base_sim.Engine
module Sim_time = Base_sim.Sim_time
module Prng = Base_util.Prng

(* Mirror of the pre-overhaul event queue: a generic heap of (time, id)
   ordered by time, relying on insertion order to break ties — verbatim the
   engine's old configuration. *)
let old_heap () = Heap.create ~cmp:(fun (t1, _) (t2, _) -> compare (t1 : int64) t2)

let test_differential_fuzz () =
  let rng = Prng.create 0xCAFEL in
  for round = 1 to 50 do
    let new_q = Event_heap.create () in
    let old_q = old_heap () in
    let id = ref 0 in
    (* A clustered time range forces many exact ties; interleaved pops
       exercise sift-down on partially drained heaps. *)
    let n_ops = 200 + Prng.int rng 400 in
    for _ = 1 to n_ops do
      if Prng.int rng 4 < 3 || Event_heap.is_empty new_q then begin
        let time = Int64.of_int (Prng.int rng 16) in
        incr id;
        Event_heap.push new_q ~time !id;
        Heap.push old_q (time, !id)
      end
      else begin
        let got = Event_heap.pop_exn new_q in
        let got_time = Event_heap.last_time new_q in
        match Heap.pop old_q with
        | None -> Alcotest.failf "round %d: old heap empty, new was not" round
        | Some (want_time, want) ->
          if got <> want || got_time <> want_time then
            Alcotest.failf "round %d: popped (%Ld,%d), old heap says (%Ld,%d)" round
              got_time got want_time want
      end
    done;
    (* Drain both: the tails must agree element by element too. *)
    while not (Event_heap.is_empty new_q) do
      let got = Event_heap.pop_exn new_q in
      match Heap.pop old_q with
      | None -> Alcotest.failf "round %d: drain length mismatch" round
      | Some (_, want) ->
        if got <> want then
          Alcotest.failf "round %d: drain popped %d, old heap says %d" round got want
    done;
    Alcotest.(check bool)
      (Printf.sprintf "round %d: old heap drained too" round)
      true (Heap.is_empty old_q)
  done

let test_min_time_and_length () =
  let q = Event_heap.create () in
  Alcotest.(check (option int64)) "empty min_time" None (Event_heap.min_time q);
  Event_heap.push q ~time:5L "b";
  Event_heap.push q ~time:3L "a";
  Event_heap.push q ~time:5L "c";
  Alcotest.(check (option int64)) "min_time peeks" (Some 3L) (Event_heap.min_time q);
  Alcotest.(check int) "length" 3 (Event_heap.length q);
  Alcotest.(check string) "earliest first" "a" (Event_heap.pop_exn q);
  Alcotest.(check string) "FIFO among ties" "b" (Event_heap.pop_exn q);
  Alcotest.(check string) "FIFO among ties (2)" "c" (Event_heap.pop_exn q);
  Alcotest.(check bool) "drained" true (Event_heap.is_empty q)

let test_rejects_out_of_range_times () =
  let q = Event_heap.create () in
  List.iter
    (fun t ->
      match Event_heap.push q ~time:t () with
      | () -> Alcotest.failf "time %Ld accepted" t
      | exception Base_util.Invariant.Violation _ -> ())
    [ -1L; Int64.min_int; Int64.max_int ]

(* Engine-level schedule fuzz: fuzzed timer schedules with exact-tie
   deadlines, cancellations and timers armed on nodes that then go down.
   Two engines given the identical schedule must dispatch the identical
   event sequence; cancelled and orphaned timers must not appear. *)
let test_engine_timer_schedules () =
  let rng = Prng.create 0xD1CEL in
  for round = 1 to 20 do
    let n_timers = 30 + Prng.int rng 50 in
    (* Pre-draw the schedule so both engines see the same one. *)
    let schedule =
      Array.init n_timers (fun i ->
          let node = Prng.int rng 3 in
          let after = Int64.of_int (10 * (1 + Prng.int rng 8)) in
          let cancelled = Prng.int rng 5 = 0 in
          (i, node, after, cancelled))
    in
    let down_node = Prng.int rng 3 in
    let run () =
      let config =
        Engine.default_config ~size_of:(fun () -> 0) ~label_of:(fun () -> "NONE")
      in
      let engine = Engine.create config in
      let fired = ref [] in
      for node = 0 to 2 do
        Engine.add_node engine ~id:node (fun _ event ->
            match event with
            | Engine.Timer { tag = _; payload } -> fired := (node, payload) :: !fired
            | Engine.Deliver _ -> ())
      done;
      let cancels =
        Array.to_list schedule
        |> List.filter_map (fun (i, node, after, cancelled) ->
               let tid =
                 Engine.set_timer engine ~node ~after ~tag:"t" ~payload:i
               in
               if cancelled then Some tid else None)
      in
      List.iter (Engine.cancel_timer engine) cancels;
      Engine.set_node_up engine down_node false;
      Engine.run engine;
      List.rev !fired
    in
    let a = run () and b = run () in
    if a <> b then Alcotest.failf "round %d: identical schedules diverged" round;
    (* Semantic checks on one of the (identical) runs. *)
    List.iter
      (fun (node, payload) ->
        let _, snode, _, cancelled = schedule.(payload) in
        if cancelled then Alcotest.failf "round %d: cancelled timer %d fired" round payload;
        if node <> snode then Alcotest.failf "round %d: timer %d fired on wrong node" round payload;
        if node = down_node then
          Alcotest.failf "round %d: timer %d fired on down node %d" round payload node)
      a;
    (* Equal deadlines dispatch in arming order per the (time, seq) key:
       the fired sequence must be sorted by (deadline, arming index). *)
    let key (_, payload) =
      let _, _, after, _ = schedule.(payload) in
      (after, payload)
    in
    let rec sorted = function
      | x :: y :: rest ->
        if key x > key y then
          Alcotest.failf "round %d: dispatch order violates (deadline, seq)" round
        else sorted (y :: rest)
      | _ -> ()
    in
    sorted a
  done

let suite =
  [
    Alcotest.test_case "differential fuzz vs generic heap" `Quick test_differential_fuzz;
    Alcotest.test_case "min_time / tie FIFO basics" `Quick test_min_time_and_length;
    Alcotest.test_case "out-of-range times rejected" `Quick
      test_rejects_out_of_range_times;
    Alcotest.test_case "engine timer schedules: deterministic, cancels honoured" `Quick
      test_engine_timer_schedules;
  ]
