(* Unit tests of the hierarchical state-transfer machinery and the
   copy-on-write object repository, exercised directly (no simulator):
   pruning, self-verification against Byzantine replies, checkpoint
   copy-on-write semantics. *)

module St = Base_core.State_transfer
module Objrepo = Base_core.Objrepo
module Service = Base_core.Service
module Digest = Base_crypto.Digest_t
module Prng = Base_util.Prng

let n_objects = 256

let obj_bytes = 64

let synthetic ~seed =
  let prng = Prng.create seed in
  let store = Array.init n_objects (fun _ -> Bytes.to_string (Prng.bytes prng obj_bytes)) in
  let wrapper =
    {
      Service.name = "synthetic";
      n_objects;
      execute = (fun ~client:_ ~operation:_ ~nondet:_ ~read_only:_ ~modify:_ -> "");
      get_obj = (fun i -> store.(i));
      put_objs = (fun objs -> List.iter (fun (i, v) -> store.(i) <- v) objs);
      restart = (fun () -> ());
      propose_nondet = (fun ~clock_us:_ ~operation:_ -> "");
      check_nondet = (fun ~clock_us:_ ~operation:_ ~nondet:_ -> true);
      oids_of_op = Service.no_footprint;
    }
  in
  (store, Objrepo.create ~wrapper ~branching:8 ())

let mutate store repo prng i =
  Objrepo.modify repo i;
  store.(i) <- Bytes.to_string (Prng.bytes prng obj_bytes)

(* Run a fetch over a synchronous in-process channel against one source,
   optionally mangling the server's replies. *)
let transfer ?(tamper = fun m -> m) ~src ~dst ~seq ~digest () =
  let q = Queue.create () in
  let completed = ref false in
  let fetcher =
    St.start ~repo:dst ~sources:[ 0 ] ~target_seq:seq ~target_digest:digest
      ~send:(fun ~dst:_ m -> Queue.add m q)
      ~on_complete:(fun ~seq:_ ~app_root:_ ~client_rows:_ -> completed := true)
      ()
  in
  let rounds = ref 0 in
  while (not (Queue.is_empty q)) && !rounds < 100_000 do
    incr rounds;
    let m = Queue.pop q in
    match St.serve src m with
    | Some reply -> St.handle_reply fetcher ~from:0 (tamper reply)
    | None -> ()
  done;
  (!completed, St.stats fetcher)

let checkpoint repo ~seq =
  let root = Objrepo.take_checkpoint repo ~seq ~client_rows:[] in
  (root, St.combined_digest ~app_root:root ~client_rows:[])

let test_identical_states_fetch_nothing () =
  let _, src = synthetic ~seed:1L in
  let _, dst = synthetic ~seed:1L in
  let _, digest = checkpoint src ~seq:1 in
  let completed, stats = transfer ~src ~dst ~seq:1 ~digest () in
  Alcotest.(check bool) "completed" true completed;
  Alcotest.(check int) "no objects fetched" 0 stats.St.objects_fetched;
  Alcotest.(check int) "no metadata fetched" 0 stats.St.meta_fetched

let test_fetches_only_differences () =
  let store_src, src = synthetic ~seed:1L in
  let _, dst = synthetic ~seed:1L in
  let prng = Prng.create 9L in
  let dirty = [ 3; 77; 200 ] in
  List.iter (fun i -> mutate store_src src prng i) dirty;
  let root, digest = checkpoint src ~seq:1 in
  let completed, stats = transfer ~src ~dst ~seq:1 ~digest () in
  Alcotest.(check bool) "completed" true completed;
  Alcotest.(check int) "exactly the dirty objects" (List.length dirty) stats.St.objects_fetched;
  Alcotest.(check bool) "dst root converged" true
    (Digest.equal (Objrepo.current_root dst) root)

let test_divergent_destination_repaired () =
  (* Corruption on the destination side (its digests recomputed honestly)
     is found and repaired even though the source never changed. *)
  let _, src = synthetic ~seed:1L in
  let store_dst, dst = synthetic ~seed:1L in
  let root, digest = checkpoint src ~seq:1 in
  (* Corrupt dst concretely, then recompute its digests (the recovery
     traversal). *)
  store_dst.(42) <- String.make obj_bytes '!';
  store_dst.(111) <- String.make obj_bytes '?';
  Objrepo.rebuild_all_digests dst;
  let completed, stats = transfer ~src ~dst ~seq:1 ~digest () in
  Alcotest.(check bool) "completed" true completed;
  Alcotest.(check int) "both corrupt objects repaired" 2 stats.St.objects_fetched;
  Alcotest.(check bool) "roots equal" true (Digest.equal (Objrepo.current_root dst) root)

let test_byzantine_object_replies_rejected () =
  (* A faulty server sends garbage object bodies: the fetcher must reject
     every one (self-verification) and never complete against it. *)
  let store_src, src = synthetic ~seed:1L in
  let _, dst = synthetic ~seed:1L in
  let prng = Prng.create 5L in
  mutate store_src src prng 10;
  let _, digest = checkpoint src ~seq:1 in
  let tamper = function
    | St.Obj_reply { seq; index; off; total; data } ->
      St.Obj_reply
        { seq; index; off; total; data = String.map (fun c -> Char.chr (Char.code c lxor 1)) data }
    | m -> m
  in
  let completed, stats = transfer ~tamper ~src ~dst ~seq:1 ~digest () in
  Alcotest.(check bool) "never completes against liar" false completed;
  Alcotest.(check int) "nothing accepted" 0 stats.St.objects_fetched

let test_byzantine_head_rejected () =
  let store_src, src = synthetic ~seed:1L in
  let _, dst = synthetic ~seed:1L in
  let prng = Prng.create 6L in
  mutate store_src src prng 1;
  let _, digest = checkpoint src ~seq:1 in
  let tamper = function
    | St.Head_reply { seq; app_root = _; client_rows } ->
      St.Head_reply { seq; app_root = Digest.of_string "lie"; client_rows }
    | m -> m
  in
  let completed, _ = transfer ~tamper ~src ~dst ~seq:1 ~digest () in
  Alcotest.(check bool) "forged head rejected" false completed

let test_serve_unknown_checkpoint () =
  let _, src = synthetic ~seed:1L in
  ignore (checkpoint src ~seq:1);
  Alcotest.(check bool) "unknown seq unserved" true
    (St.serve src (St.Fetch_head { seq = 99 }) = None)

let test_serve_malformed_coordinates () =
  (* Byzantine fetch requests with out-of-range coordinates: every one
     must be answered [None] — never a crash, never a wrapper upcall with
     an index it was not promised.  (Regression for the taint findings on
     serve's Fetch_meta/Fetch_obj paths.) *)
  let _, src = synthetic ~seed:1L in
  ignore (checkpoint src ~seq:1);
  let unserved m = St.serve src m = None in
  Alcotest.(check bool) "negative meta level" true
    (unserved (St.Fetch_meta { seq = 1; level = -1; index = 0 }));
  Alcotest.(check bool) "negative meta index" true
    (unserved (St.Fetch_meta { seq = 1; level = 0; index = -5 }));
  Alcotest.(check bool) "huge meta level" true
    (unserved (St.Fetch_meta { seq = 1; level = max_int; index = 0 }));
  Alcotest.(check bool) "huge meta index" true
    (unserved (St.Fetch_meta { seq = 1; level = 0; index = max_int }));
  Alcotest.(check bool) "negative object index" true
    (unserved (St.Fetch_obj { seq = 1; index = -1; off = 0; max_bytes = 64 }));
  Alcotest.(check bool) "object index past the repo" true
    (unserved (St.Fetch_obj { seq = 1; index = n_objects; off = 0; max_bytes = 64 }));
  Alcotest.(check bool) "negative offset" true
    (unserved (St.Fetch_obj { seq = 1; index = 0; off = -8; max_bytes = 64 }));
  Alcotest.(check bool) "offset past the object" true
    (unserved (St.Fetch_obj { seq = 1; index = 0; off = obj_bytes + 1; max_bytes = 64 }));
  (* object_at itself is total over the index. *)
  Alcotest.(check bool) "object_at out of range" true
    (Objrepo.object_at src ~seq:1 (-3) = None
    && Objrepo.object_at src ~seq:1 n_objects = None)

let test_cow_checkpoint_values () =
  (* A checkpoint serves the values as of its creation, not current ones. *)
  let store, repo = synthetic ~seed:2L in
  let before = store.(5) in
  ignore (checkpoint repo ~seq:1);
  let prng = Prng.create 7L in
  mutate store repo prng 5;
  Alcotest.(check bool) "cp value is pre-modification" true
    (Objrepo.object_at repo ~seq:1 5 = Some before);
  Alcotest.(check bool) "unmodified object read through" true
    (Objrepo.object_at repo ~seq:1 6 = Some store.(6))

let test_cow_multiple_checkpoints () =
  (* An object modified between two checkpoints has distinct copies. *)
  let store, repo = synthetic ~seed:3L in
  let v1 = store.(9) in
  ignore (checkpoint repo ~seq:1);
  let prng = Prng.create 8L in
  mutate store repo prng 9;
  let v2 = store.(9) in
  ignore (checkpoint repo ~seq:2);
  mutate store repo prng 9;
  Alcotest.(check bool) "cp1 sees v1" true (Objrepo.object_at repo ~seq:1 9 = Some v1);
  Alcotest.(check bool) "cp2 sees v2" true (Objrepo.object_at repo ~seq:2 9 = Some v2);
  (* Discarding below seq 2 frees cp1. *)
  Objrepo.discard_below repo 2;
  Alcotest.(check bool) "cp1 gone" true (Objrepo.object_at repo ~seq:1 9 = None);
  Alcotest.(check bool) "cp2 kept" true (Objrepo.object_at repo ~seq:2 9 = Some v2)

let test_cow_copies_only_once () =
  let store, repo = synthetic ~seed:4L in
  ignore (checkpoint repo ~seq:1);
  let prng = Prng.create 9L in
  let before = (Objrepo.stats repo).Objrepo.objects_copied in
  mutate store repo prng 3;
  mutate store repo prng 3;
  mutate store repo prng 3;
  let after = (Objrepo.stats repo).Objrepo.objects_copied in
  Alcotest.(check int) "one copy per checkpoint interval" 1 (after - before)

let test_meta_traffic_sublinear () =
  (* One dirty object costs a logarithmic number of metadata messages, not
     a full-tree scan. *)
  let store_src, src = synthetic ~seed:1L in
  let _, dst = synthetic ~seed:1L in
  let prng = Prng.create 11L in
  mutate store_src src prng 123;
  let _, digest = checkpoint src ~seq:1 in
  let _, stats = transfer ~src ~dst ~seq:1 ~digest () in
  (* 256 leaves at branching 8 -> 3 interior levels; at most one path. *)
  Alcotest.(check bool)
    (Printf.sprintf "meta messages (%d) follow one path" stats.St.meta_fetched)
    true
    (stats.St.meta_fetched <= 4)

let suite =
  [
    Alcotest.test_case "identical states fetch nothing" `Quick test_identical_states_fetch_nothing;
    Alcotest.test_case "fetches only differences" `Quick test_fetches_only_differences;
    Alcotest.test_case "divergent destination repaired" `Quick test_divergent_destination_repaired;
    Alcotest.test_case "byzantine object replies rejected" `Quick
      test_byzantine_object_replies_rejected;
    Alcotest.test_case "byzantine head rejected" `Quick test_byzantine_head_rejected;
    Alcotest.test_case "unknown checkpoint unserved" `Quick test_serve_unknown_checkpoint;
    Alcotest.test_case "malformed fetch coordinates unserved" `Quick
      test_serve_malformed_coordinates;
    Alcotest.test_case "cow checkpoint values" `Quick test_cow_checkpoint_values;
    Alcotest.test_case "cow multiple checkpoints" `Quick test_cow_multiple_checkpoints;
    Alcotest.test_case "cow copies once per interval" `Quick test_cow_copies_only_once;
    Alcotest.test_case "meta traffic sublinear" `Quick test_meta_traffic_sublinear;
  ]
