(* Stats must be total: empty and NaN-polluted series are the norm when a
   benchmark window happens to contain no samples. *)

module Stats = Base_util.Stats

let check_summary ?(eps = 1e-9) name (expected : Stats.summary) (got : Stats.summary) =
  Alcotest.(check int) (name ^ " count") expected.Stats.count got.Stats.count;
  let f field e g = Alcotest.(check (float eps)) (name ^ " " ^ field) e g in
  f "mean" expected.Stats.mean got.Stats.mean;
  f "min" expected.Stats.min got.Stats.min;
  f "max" expected.Stats.max got.Stats.max;
  f "p50" expected.Stats.p50 got.Stats.p50

let test_empty () =
  let s = Stats.summarize [] in
  Alcotest.(check int) "empty count" 0 s.Stats.count;
  Alcotest.(check (float 0.0)) "empty mean" 0.0 s.Stats.mean;
  Alcotest.(check (float 0.0)) "empty p99" 0.0 s.Stats.p99;
  Alcotest.(check bool) "summarize_opt none" true (Stats.summarize_opt [] = None)

let test_all_nan () =
  let s = Stats.summarize [ Float.nan; Float.nan ] in
  Alcotest.(check int) "all-NaN count" 0 s.Stats.count;
  Alcotest.(check bool) "all-NaN opt" true (Stats.summarize_opt [ Float.nan ] = None)

let test_nan_filtered () =
  (* NaN observations vanish; the rest aggregate as if they were absent. *)
  let s = Stats.summarize [ 2.0; Float.nan; 4.0 ] in
  check_summary "nan-filtered"
    { Stats.empty_summary with Stats.count = 2; mean = 3.0; min = 2.0; max = 4.0; p50 = 3.0 }
    s

let test_single () =
  let s = Stats.summarize [ 7.5 ] in
  check_summary "single"
    { Stats.empty_summary with Stats.count = 1; mean = 7.5; min = 7.5; max = 7.5; p50 = 7.5 }
    s;
  Alcotest.(check (float 1e-9)) "single stddev" 0.0 s.Stats.stddev

let test_percentile_interpolation () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile a 0.0);
  Alcotest.(check (float 1e-9)) "p50 interpolates" 2.5 (Stats.percentile a 0.5);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Stats.percentile a 1.0);
  (* out-of-range p clamps instead of indexing out of bounds *)
  Alcotest.(check (float 1e-9)) "p>1 clamps" 4.0 (Stats.percentile a 1.5);
  Alcotest.(check (float 1e-9)) "p<0 clamps" 1.0 (Stats.percentile a (-0.5));
  Alcotest.(check (float 1e-9)) "empty array" 0.0 (Stats.percentile [||] 0.5)

let test_negative_values () =
  (* Float.compare sorting must order negatives correctly (polymorphic
     compare on floats happens to as well, but this pins the behavior). *)
  let s = Stats.summarize [ 3.0; -1.0; 0.0 ] in
  Alcotest.(check (float 1e-9)) "neg min" (-1.0) s.Stats.min;
  Alcotest.(check (float 1e-9)) "neg max" 3.0 s.Stats.max

let test_population_stddev () =
  (* [2;4;4;4;5;5;7;9]: the textbook population-stddev example, sd = 2. *)
  let s = Stats.summarize [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-9)) "population stddev" 2.0 s.Stats.stddev

let suite =
  [
    Alcotest.test_case "empty series is total" `Quick test_empty;
    Alcotest.test_case "all-NaN series is empty" `Quick test_all_nan;
    Alcotest.test_case "NaN elements are dropped" `Quick test_nan_filtered;
    Alcotest.test_case "single element" `Quick test_single;
    Alcotest.test_case "percentile interpolation + clamping" `Quick
      test_percentile_interpolation;
    Alcotest.test_case "negative values sort correctly" `Quick test_negative_values;
    Alcotest.test_case "stddev is population stddev" `Quick test_population_stddev;
  ]
