(* Property tests for the state-partition tree (Section 2.2): the tree's
   whole job is to let a recovering replica find exactly the out-of-date
   partitions by digest comparison, so the properties pinned here are
   (a) a diff-descent between two trees visits precisely the partitions
   covering the mutated leaves, (b) any leaf tamper changes the root and
   restoring the leaf restores it, and (c) a fetch-and-verify descent
   rebuilds a root-equal tree while fetching only the differing leaves. *)

module PT = Base_core.Partition_tree
module Digest = Base_crypto.Digest_t
module Prng = Base_util.Prng

let shapes = [ (8, 2); (27, 3); (64, 4); (100, 4); (1, 2); (5, 3) ]

let obj_digest tag i gen = Digest.of_string (Printf.sprintf "%s-%d-g%d" tag i gen)

let populated ~n_leaves ~branching =
  let t = PT.create ~n_leaves ~branching in
  for i = 0 to n_leaves - 1 do
    PT.set_leaf t i (obj_digest "obj" i 0)
  done;
  t

(* Diff-descent: walk both trees from the root, descending only into
   partitions whose digests differ; return the differing leaf set. *)
let diff_leaves a b =
  let differ = ref [] in
  let leaf_level = PT.levels a - 1 in
  let rec descend level index =
    if not (Digest.equal (PT.node a ~level ~index) (PT.node b ~level ~index)) then
      if level = leaf_level then differ := index :: !differ
      else
        let first, last = PT.child_span a ~level ~index in
        for i = first to last do
          descend (level + 1) i
        done
  in
  descend 0 0;
  List.sort Int.compare !differ

let sorted_uniq l = List.sort_uniq Int.compare l

let test_diff_descent_finds_exactly_mutated () =
  let rng = Prng.create 0x5EEDL in
  List.iter
    (fun (n_leaves, branching) ->
      for _round = 1 to 20 do
        let a = populated ~n_leaves ~branching in
        let b = PT.copy a in
        (* Mutate a random subset of b's leaves. *)
        let n_mut = Prng.int rng (max 1 (n_leaves / 2)) in
        let mutated = ref [] in
        for _ = 1 to n_mut do
          let i = Prng.int rng n_leaves in
          mutated := i :: !mutated;
          PT.set_leaf b i (obj_digest "obj" i 1)
        done;
        let expected = sorted_uniq !mutated in
        Alcotest.(check (list int))
          (Printf.sprintf "diff-descent %dx%d finds the mutated leaves" n_leaves
             branching)
          expected (diff_leaves a b)
      done)
    shapes

let test_no_diff_no_descent () =
  List.iter
    (fun (n_leaves, branching) ->
      let a = populated ~n_leaves ~branching in
      let b = PT.copy a in
      Alcotest.(check bool) "copies are root-equal" true (PT.equal_root a b);
      Alcotest.(check (list int)) "no differing leaves" [] (diff_leaves a b))
    shapes

let test_tamper_changes_root () =
  let rng = Prng.create 0x7A3FL in
  List.iter
    (fun (n_leaves, branching) ->
      let t = populated ~n_leaves ~branching in
      let before = PT.root t in
      for _ = 1 to min n_leaves 16 do
        let i = Prng.int rng n_leaves in
        let orig = PT.leaf t i in
        PT.set_leaf t i (Digest.of_string (Printf.sprintf "tampered-%d" i));
        Alcotest.(check bool)
          (Printf.sprintf "tampering leaf %d/%d changes the root" i n_leaves)
          false
          (Digest.equal before (PT.root t));
        PT.set_leaf t i orig;
        Alcotest.(check bool)
          (Printf.sprintf "restoring leaf %d restores the root" i)
          true
          (Digest.equal before (PT.root t))
      done)
    shapes

(* Fetch-and-verify: [dst] brings itself up to date against [src] by
   descending only into differing partitions and fetching the differing
   leaves — counting the fetches to pin the bandwidth claim. *)
let sync ~src ~dst =
  let fetched = ref 0 in
  let leaf_level = PT.levels src - 1 in
  let rec descend level index =
    if not (Digest.equal (PT.node src ~level ~index) (PT.node dst ~level ~index))
    then
      if level = leaf_level then begin
        incr fetched;
        PT.set_leaf dst index (PT.leaf src index)
      end
      else
        let first, last = PT.child_span src ~level ~index in
        for i = first to last do
          descend (level + 1) i
        done
  in
  descend 0 0;
  !fetched

let test_fetch_and_verify_sync () =
  let rng = Prng.create 0xCAFEL in
  List.iter
    (fun (n_leaves, branching) ->
      for _round = 1 to 20 do
        let src = populated ~n_leaves ~branching in
        let dst = PT.copy src in
        (* Drift: the source moves on for a subset of objects, the
           destination independently corrupts a few of its own. *)
        let n_drift = Prng.int rng (max 1 n_leaves) in
        let touched = ref [] in
        for _ = 1 to n_drift do
          let i = Prng.int rng n_leaves in
          touched := i :: !touched;
          PT.set_leaf src i (obj_digest "obj" i 2)
        done;
        for _ = 1 to 1 + Prng.int rng 3 do
          let i = Prng.int rng n_leaves in
          touched := i :: !touched;
          PT.set_leaf dst i (Digest.of_string (Printf.sprintf "corrupt-%d" i))
        done;
        let n_diff = List.length (diff_leaves src dst) in
        let fetched = sync ~src ~dst in
        Alcotest.(check bool)
          (Printf.sprintf "sync %dx%d yields a root-equal tree" n_leaves branching)
          true (PT.equal_root src dst);
        Alcotest.(check int) "fetches exactly the differing leaves" n_diff fetched;
        Alcotest.(check bool) "fetched no more than it touched" true
          (fetched <= List.length (sorted_uniq !touched))
      done)
    shapes

let test_interior_nodes_consistent () =
  (* children/node agree: every interior digest is over exactly its
     children's digests, so two trees with equal children arrays at a level
     have equal nodes one level up. *)
  List.iter
    (fun (n_leaves, branching) ->
      let t = populated ~n_leaves ~branching in
      let leaf_level = PT.levels t - 1 in
      for level = 0 to leaf_level - 1 do
        for index = 0 to PT.width t ~level - 1 do
          let kids = PT.children t ~level ~index in
          let first, last = PT.child_span t ~level ~index in
          Alcotest.(check int)
            (Printf.sprintf "span matches children at (%d,%d)" level index)
            (Array.length kids)
            (last - first + 1);
          Array.iteri
            (fun k kid ->
              Alcotest.(check bool) "child digest matches node at level+1" true
                (Digest.equal kid (PT.node t ~level:(level + 1) ~index:(first + k))))
            kids
        done
      done)
    shapes

(* Differential: the bulk [set_leaves] (one recompute per touched interior
   node) must produce a tree node-for-node identical to the sequential
   [set_leaf] fold it replaces — including duplicate indices, where the
   last write wins in both. *)
let test_bulk_matches_sequential () =
  let rng = Prng.create 0xB01DL in
  List.iter
    (fun (n_leaves, branching) ->
      for round = 1 to 25 do
        let bulk = populated ~n_leaves ~branching in
        let seq = PT.copy bulk in
        let n_upd = 1 + Prng.int rng (2 * n_leaves) in
        let updates =
          List.init n_upd (fun k ->
              (* Prng.int n_leaves can repeat: duplicates exercised on purpose. *)
              (Prng.int rng n_leaves, obj_digest "bulk" k round))
        in
        PT.set_leaves bulk updates;
        List.iter (fun (i, d) -> PT.set_leaf seq i d) updates;
        for level = 0 to PT.levels bulk - 1 do
          for index = 0 to PT.width bulk ~level - 1 do
            Alcotest.(check bool)
              (Printf.sprintf "bulk == sequential at (%d,%d), shape %dx%d" level index
                 n_leaves branching)
              true
              (Digest.equal (PT.node bulk ~level ~index) (PT.node seq ~level ~index))
          done
        done
      done)
    shapes;
  (* Degenerate arguments: empty and singleton lists. *)
  let t = populated ~n_leaves:8 ~branching:2 in
  let before = PT.root t in
  PT.set_leaves t [];
  Alcotest.(check bool) "empty update is a no-op" true (Digest.equal before (PT.root t));
  PT.set_leaves t [ (3, obj_digest "one" 3 9) ];
  let u = populated ~n_leaves:8 ~branching:2 in
  PT.set_leaf u 3 (obj_digest "one" 3 9);
  Alcotest.(check bool) "singleton matches set_leaf" true (PT.equal_root t u)

let suite =
  [
    Alcotest.test_case "diff-descent finds exactly the mutated leaves" `Quick
      test_diff_descent_finds_exactly_mutated;
    Alcotest.test_case "bulk set_leaves matches the sequential fold" `Quick
      test_bulk_matches_sequential;
    Alcotest.test_case "equal trees have an empty diff" `Quick test_no_diff_no_descent;
    Alcotest.test_case "leaf tamper flips the root (and back)" `Quick
      test_tamper_changes_root;
    Alcotest.test_case "fetch-and-verify installs a root-equal tree" `Quick
      test_fetch_and_verify_sync;
    Alcotest.test_case "interior nodes cover their child spans" `Quick
      test_interior_nodes_consistent;
  ]
