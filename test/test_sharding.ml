(* Sharded agreement: oid routing, per-shard primaries and view changes,
   and the determinism guarantee for conflict-free workloads (same seed ->
   same final abstract state regardless of shard count). *)

module Types = Base_bft.Types
module Runtime = Base_core.Runtime
module Systems = Base_workload.Systems

(* --- shard-map unit tests ---------------------------------------------------- *)

let test_shard_map () =
  let config =
    Types.make_config ~shard_bounds:[| 4; 8; 16 |] ~f:1 ~n_clients:1 ()
  in
  Alcotest.(check int) "n_shards" 3 (Types.n_shards config);
  Alcotest.(check int) "oid 0" 0 (Types.shard_of_oid config 0);
  Alcotest.(check int) "oid 3" 0 (Types.shard_of_oid config 3);
  Alcotest.(check int) "oid 4" 1 (Types.shard_of_oid config 4);
  Alcotest.(check int) "oid 15" 2 (Types.shard_of_oid config 15);
  (* Out-of-range oids clamp to the last shard rather than raising: the
     footprint hook is service-supplied and treated as untrusted. *)
  Alcotest.(check int) "oid 99 clamps" 2 (Types.shard_of_oid config 99);
  (* In any view the S primaries sit on S distinct nodes, and shard 0's
     rotation coincides with the unsharded one. *)
  for view = 0 to 7 do
    Alcotest.(check int)
      "shard-0 primary is the unsharded primary"
      (Types.primary config view)
      (Types.shard_primary config ~shard:0 view);
    let prims =
      List.init 3 (fun shard -> Types.shard_primary config ~shard view)
      |> List.sort_uniq Int.compare
    in
    Alcotest.(check int) "distinct primaries" 3 (List.length prims)
  done

let test_uniform_shards () =
  Alcotest.(check (array int)) "even split" [| 4; 8 |] (Types.uniform_shards ~shards:2 ~n_objects:8);
  Alcotest.(check (array int))
    "remainder goes to the high shards" [| 2; 5; 8 |]
    (Types.uniform_shards ~shards:3 ~n_objects:8);
  Alcotest.(check (array int)) "one shard" [||] (Types.uniform_shards ~shards:1 ~n_objects:8)

let test_bad_bounds () =
  Alcotest.check_raises "descending bounds rejected"
    (Base_util.Invariant.Violation
       "make_config: shard_bounds must be strictly ascending positive") (fun () ->
      ignore (Types.make_config ~shard_bounds:[| 8; 4 |] ~f:1 ~n_clients:1 ()))

(* --- end-to-end over the registers service ---------------------------------- *)

let set sys ~client i v =
  Runtime.invoke_sync sys ~client ~operation:(Printf.sprintf "set:%d:%s" i v) ()

let get sys ~client i =
  Runtime.invoke_sync sys ~client ~operation:(Printf.sprintf "get:%d" i) ()

let test_routed_operations () =
  let { Systems.reg_runtime = sys; slots } =
    Systems.make_registers ~seed:5L ~shards:2 ~n_objects:8 ~n_clients:2 ()
  in
  Alcotest.(check int) "two shards" 2 (Runtime.n_shards sys);
  (* Writes landing in both shards, from both clients. *)
  for i = 0 to 7 do
    Alcotest.(check string) "set ok" "ok" (set sys ~client:(i mod 2) i (Printf.sprintf "v%d" i))
  done;
  for i = 0 to 7 do
    Alcotest.(check string) "read back" (Printf.sprintf "v%d" i) (get sys ~client:(i mod 2) i)
  done;
  (* All four replicas converge on the same concrete state. *)
  Array.iteri
    (fun rid row ->
      Array.iteri
        (fun i v ->
          Alcotest.(check string) (Printf.sprintf "replica %d slot %d" rid i)
            (Printf.sprintf "v%d" i) v)
        row)
    (Array.sub slots 0 4)

(* Conflict-free determinism: the same single-object workload produces the
   same final abstract state whatever the shard count, because each shard
   executes its slice of the workload in client order and no operation
   crosses a boundary. *)
let test_shard_count_invariance () =
  let final shards =
    let { Systems.reg_runtime = sys; slots } =
      Systems.make_registers ~seed:9L ~shards ~n_objects:12 ~n_clients:1 ()
    in
    for round = 0 to 2 do
      for i = 0 to 11 do
        ignore (set sys ~client:0 i (Printf.sprintf "r%d.%d" round i))
      done
    done;
    Runtime.run_until_idle sys;
    Array.to_list slots.(0)
  in
  let one = final 1 in
  Alcotest.(check (list string)) "S=2 matches S=1" one (final 2);
  Alcotest.(check (list string)) "S=4 matches S=1" one (final 4)

(* A muted primary in one shard forces a view change there; the other shard
   keeps its primary and both make progress. *)
let test_per_shard_view_change () =
  let { Systems.reg_runtime = sys; _ } =
    Systems.make_registers ~seed:11L ~shards:2 ~n_objects:8 ~n_clients:1
      ~viewchange_timeout_us:200_000 ()
  in
  (* Shard 1's view-0 primary is node 1 (rotation offset by the shard id);
     mute only that cell. *)
  Runtime.set_behavior ~shard:1 sys 1 Base_bft.Replica.Mute;
  Alcotest.(check string) "shard 0 unaffected" "ok" (set sys ~client:0 0 "a");
  Alcotest.(check string) "shard 1 recovers via view change" "ok" (set sys ~client:0 7 "b");
  let cell = Runtime.shard_replica sys ~shard:1 0 in
  Alcotest.(check bool) "shard 1 left view 0" true
    (Base_bft.Replica.view cell.Runtime.replica > 0);
  let cell0 = Runtime.replica sys 0 in
  Alcotest.(check int) "shard 0 still in view 0" 0 (Base_bft.Replica.view cell0.Runtime.replica)

(* Sharding composes with neither warm standbys nor proactive recovery. *)
let test_standby_gate () =
  Alcotest.check_raises "standby pool rejected"
    (Base_util.Invariant.Violation
       "Runtime.create: a sharded object space cannot run a standby pool") (fun () ->
      ignore (Systems.make_registers ~shards:2 ~standbys:1 ()))

let suite =
  [
    Alcotest.test_case "shard map" `Quick test_shard_map;
    Alcotest.test_case "uniform bounds" `Quick test_uniform_shards;
    Alcotest.test_case "invalid bounds" `Quick test_bad_bounds;
    Alcotest.test_case "routed operations" `Quick test_routed_operations;
    Alcotest.test_case "shard-count invariance" `Quick test_shard_count_invariance;
    Alcotest.test_case "per-shard view change" `Quick test_per_shard_view_change;
    Alcotest.test_case "standby gate" `Quick test_standby_gate;
  ]
