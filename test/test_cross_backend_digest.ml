(* Cross-backend differential trace: one seeded NFS workload replayed
   through four structurally different implementations (btree, fat, hash,
   log) behind the conformance wrapper.  Every k-th operation the full
   abstract state is digested; the digests must be byte-identical across
   backends at every checkpoint — the strong form of the paper's claim
   that the abstraction function erases implementation nondeterminism
   continuously along a trace, not just at the end of one. *)

module TC = Test_conformance
module Spec = Base_nfs.Abstract_spec
module Service = Base_core.Service
module Prng = Base_util.Prng
module Sha256 = Base_crypto.Sha256

let backends = [ "btree"; "fat"; "hash"; "log" ]

let state_digest (w : Service.wrapper) =
  Sha256.digest_list (List.init TC.n_objects (fun i -> w.Service.get_obj i))

let test_trace ~seed ~n ~k () =
  let rng = Prng.create seed in
  let model = Spec.create ~n_objects:TC.n_objects in
  (* Distinct wrapper seeds on purpose: backend-local nondeterminism
     (allocation order, implementation timestamps) must not leak into the
     abstract state. *)
  let ws =
    List.mapi
      (fun i name -> (name, TC.make_wrapper name ~seed:(Int64.of_int (1000 + i))))
      backends
  in
  let checkpoints = ref 0 in
  for step = 1 to n do
    let call = TC.gen_call rng model in
    let ts = Int64.of_int (step * 1000) in
    (* Advance the model so gen_call keeps drawing live object ids. *)
    ignore (TC.model_exec model ~ts call);
    let replies = List.map (fun (name, w) -> (name, TC.wrapper_exec w ~ts call)) ws in
    (match replies with
    | (ref_name, ref_reply) :: rest ->
      List.iter
        (fun (name, reply) ->
          if not (String.equal ref_reply reply) then
            Alcotest.failf "step %d: %s reply differs from %s" step name ref_name)
        rest
    | [] -> assert false);
    if step mod k = 0 || step = n then begin
      incr checkpoints;
      match List.map (fun (name, w) -> (name, state_digest w)) ws with
      | (ref_name, ref_digest) :: rest ->
        List.iter
          (fun (name, digest) ->
            if not (String.equal ref_digest digest) then
              Alcotest.failf "step %d: abstract-state digest of %s differs from %s (%s vs %s)"
                step name ref_name (Sha256.hex digest) (Sha256.hex ref_digest))
          rest
      | [] -> assert false
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "trace hit %d digest checkpoints" !checkpoints)
    true
    (!checkpoints >= n / k)

let suite =
  [
    Alcotest.test_case "seeded trace: digests agree every 25 ops" `Quick
      (test_trace ~seed:0xD1FFL ~n:500 ~k:25);
    Alcotest.test_case "second seed: digests agree every 40 ops" `Quick
      (test_trace ~seed:0xABCDL ~n:320 ~k:40);
  ]
